//===- examples/replication_explorer.cpp - Size/accuracy explorer ---------===//
//
// Part of the bpcr project (Krall, PLDI 1994 reproduction).
//
//===----------------------------------------------------------------------===//
//
// Interactive-style exploration of the accuracy/size tradeoff (the paper's
// sec. 5): for one benchmark, sweep the per-branch state budget and the
// pipeline size budget, run the real replication every time, and print the
// realized misprediction rates — so one can see where the knee sits for a
// particular program.
//
//   $ ./replication_explorer [workload] [seed]
//
//===----------------------------------------------------------------------===//

#include "core/Pipeline.h"
#include "core/Replication.h"
#include "ir/Verifier.h"
#include "support/TablePrinter.h"
#include "trace/TraceStats.h"
#include "workloads/Workload.h"

#include <cstdio>
#include <cstdlib>
#include <string>

using namespace bpcr;

int main(int argc, char **argv) {
  std::string Name = argc > 1 ? argv[1] : "scheduler";
  uint64_t Seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 1;

  const Workload *W = nullptr;
  for (const Workload &Cand : allWorkloads())
    if (Name == Cand.Name)
      W = &Cand;
  if (!W) {
    std::printf("unknown workload '%s'\n", Name.c_str());
    return 1;
  }

  Module M;
  Trace T = traceWorkload(*W, Seed, M, 500'000);
  TraceStats Stats(static_cast<uint32_t>(M.conditionalBranchCount()));
  Stats.addTrace(T);

  Module P = M;
  annotateProfilePredictions(P, Stats);
  ExecOptions EO;
  EO.MaxBranchEvents = 500'000;
  PredictionStats Baseline = measureAnnotatedPredictions(P, EO);
  std::printf("%s: profile baseline %.1f%% mispredicted (%llu instructions)"
              "\n\n",
              W->Name, Baseline.mispredictionPercent(),
              static_cast<unsigned long long>(M.instructionCount()));

  TablePrinter Table("Realized misprediction after replication, by state "
                     "budget (rows) and size budget (columns)");
  Table.setHeader({"states \\ size", "1.25x", "1.5x", "2x", "4x", "8x"});

  for (unsigned States : {2u, 3u, 4u, 6u, 8u}) {
    std::vector<std::string> Cells{std::to_string(States) + " states"};
    for (double SizeBudget : {1.25, 1.5, 2.0, 4.0, 8.0}) {
      PipelineOptions Opts;
      Opts.Strategy.MaxStates = States;
      Opts.Strategy.NodeBudget = 20'000;
      Opts.MaxSizeFactor = SizeBudget;
      PipelineResult PR = replicateModule(M, T, Opts);
      if (!verifyModule(PR.Transformed).empty()) {
        Cells.push_back("INVALID");
        continue;
      }
      PredictionStats S = measureAnnotatedPredictions(PR.Transformed, EO);
      char Buf[48];
      std::snprintf(Buf, sizeof(Buf), "%s (%.2fx)",
                    formatPercent(S.mispredictionPercent()).c_str(),
                    PR.sizeFactor());
      Cells.push_back(Buf);
    }
    Table.addRow(std::move(Cells));
  }
  std::printf("%s", Table.render().c_str());
  std::printf("\nEach cell: realized misprediction %% (actual size factor "
              "reached).\n");
  return 0;
}
