//===- examples/quickstart.cpp - Library tour in one file -----------------===//
//
// Part of the bpcr project (Krall, PLDI 1994 reproduction).
//
//===----------------------------------------------------------------------===//
//
// The five-minute tour: build a small program in the IR, trace it, train
// the semi-static predictors, run the full profile->replicate pipeline and
// measure the replicated program's realized prediction accuracy.
//
//   $ ./quickstart
//
//===----------------------------------------------------------------------===//

#include "core/Pipeline.h"
#include "core/Replication.h"
#include "interp/Interpreter.h"
#include "ir/IRBuilder.h"
#include "ir/Printer.h"
#include "ir/Verifier.h"
#include "predict/Evaluator.h"
#include "predict/SemiStaticPredictors.h"
#include "trace/Sinks.h"

#include <cstdio>

using namespace bpcr;

int main() {
  // -- 1. Build a program ------------------------------------------------------
  // A loop of 3000 iterations containing an alternating branch (i & 1) and
  // a biased branch (i % 10 == 0).
  Module M;
  M.Name = "quickstart";
  M.MemWords = 8;
  uint32_t Main = M.addFunction("main", 0);
  IRBuilder B(M, Main);
  auto R = [](Reg X) { return Operand::reg(X); };
  auto K = [](int64_t V) { return Operand::imm(V); };

  Reg I = B.newReg(), C = B.newReg(), A = B.newReg();
  uint32_t Entry = B.newBlock("entry");
  uint32_t Header = B.newBlock("header");
  uint32_t Body = B.newBlock("body");
  uint32_t Odd = B.newBlock("odd");
  uint32_t Even = B.newBlock("even");
  uint32_t Tenth = B.newBlock("tenth");
  uint32_t Latch = B.newBlock("latch");
  uint32_t Exit = B.newBlock("exit");

  B.setInsertPoint(Entry);
  B.movImm(I, 0);
  B.movImm(A, 0);
  B.jmp(Header);
  B.setInsertPoint(Header);
  B.cmpLt(C, R(I), K(3000));
  B.br(R(C), Body, Exit);
  B.setInsertPoint(Body);
  B.band(C, R(I), K(1));
  B.br(R(C), Odd, Even); // alternating: profile's worst case
  B.setInsertPoint(Odd);
  B.add(A, R(A), K(3));
  B.jmp(Latch);
  B.setInsertPoint(Even);
  B.add(A, R(A), K(5));
  B.jmp(Latch);
  B.setInsertPoint(Latch);
  B.add(I, R(I), K(1));
  B.rem(C, R(I), K(10));
  B.cmpEq(C, R(C), K(0));
  B.br(R(C), Tenth, Header); // biased 1:9
  B.setInsertPoint(Tenth);
  B.store(K(0), K(0), R(A));
  B.jmp(Header);
  B.setInsertPoint(Exit);
  B.ret(R(A));

  M.assignBranchIds();
  if (!verifyModule(M).empty()) {
    std::printf("module failed verification\n");
    return 1;
  }
  std::printf("== The program ==\n%s\n", printModule(M).c_str());

  // -- 2. Trace it ---------------------------------------------------------------
  CollectingSink Sink;
  ExecResult Res = execute(M, &Sink);
  std::printf("== Execution ==\nreturn=%lld, %llu instructions, %llu branch "
              "events\n\n",
              static_cast<long long>(Res.ReturnValue),
              static_cast<unsigned long long>(Res.InstructionsExecuted),
              static_cast<unsigned long long>(Res.BranchEvents));
  Trace T = Sink.takeTrace();

  // -- 3. Train semi-static predictors --------------------------------------------
  ProfilePredictor Prof;
  LoopCorrelationPredictor LC;
  std::printf("== Semi-static prediction on the trace ==\n");
  std::printf("profile:          %5.1f%% mispredicted\n",
              evaluateSelfTrained(Prof, T).mispredictionPercent());
  std::printf("loop-correlation: %5.1f%% mispredicted\n\n",
              evaluateSelfTrained(LC, T).mispredictionPercent());

  // -- 4. Replicate ----------------------------------------------------------------
  PipelineOptions Opts;
  Opts.Strategy.MaxStates = 4;
  Opts.MaxSizeFactor = 4.0;
  PipelineResult PR = replicateModule(M, T, Opts);
  std::printf("== Replication ==\n%u loop replication(s), %u correlated, "
              "size %llu -> %llu instructions (%.2fx)\n\n",
              PR.LoopReplications, PR.CorrelatedReplications,
              static_cast<unsigned long long>(PR.OrigInstructions),
              static_cast<unsigned long long>(PR.NewInstructions),
              PR.sizeFactor());
  std::printf("== The replicated program ==\n%s\n",
              printModule(PR.Transformed).c_str());

  // -- 5. Measure the replicated program's static predictions ----------------------
  TraceStats Stats(static_cast<uint32_t>(M.conditionalBranchCount()));
  Stats.addTrace(T);
  Module P = M;
  annotateProfilePredictions(P, Stats);
  PredictionStats Before = measureAnnotatedPredictions(P, ExecOptions());
  PredictionStats After =
      measureAnnotatedPredictions(PR.Transformed, ExecOptions());
  std::printf("== Realized semi-static misprediction ==\n");
  std::printf("profile-annotated original:  %5.1f%% (%llu wrong)\n",
              Before.mispredictionPercent(),
              static_cast<unsigned long long>(Before.Mispredictions));
  std::printf("replicated program:          %5.1f%% (%llu wrong)\n",
              After.mispredictionPercent(),
              static_cast<unsigned long long>(After.Mispredictions));
  return 0;
}
