//===- examples/alternating_branch.cpp - The paper's figure 1 -------------===//
//
// Part of the bpcr project (Krall, PLDI 1994 reproduction).
//
//===----------------------------------------------------------------------===//
//
// Reconstructs figure 1 of the paper: "flow graph of an intra loop branch
// and a 2 state machine". A loop contains a branch that alternates between
// taken and not taken; the loop is duplicated and the branch switches
// between the two copies, so that in each copy the branch "is now predicted
// correctly 100% of the time". The copies that cannot be reached ("2b" and
// "3a" in the paper) are discarded.
//
//   $ ./alternating_branch
//
//===----------------------------------------------------------------------===//

#include "core/MachineSearch.h"
#include "core/ProgramAnalysis.h"
#include "core/Replication.h"
#include "interp/Interpreter.h"
#include "ir/IRBuilder.h"
#include "ir/Printer.h"
#include "ir/Verifier.h"
#include "trace/Sinks.h"

#include <cstdio>

using namespace bpcr;

int main() {
  auto R = [](Reg X) { return Operand::reg(X); };
  auto K = [](int64_t V) { return Operand::imm(V); };

  // The paper's flow graph: loop header "1" with the alternating branch,
  // blocks "2"/"3" as its arms, latch "4".
  Module M;
  M.Name = "figure1";
  M.MemWords = 4;
  uint32_t Main = M.addFunction("main", 0);
  IRBuilder B(M, Main);
  Reg I = B.newReg(), C = B.newReg(), A = B.newReg();
  uint32_t Entry = B.newBlock("entry");
  uint32_t B1 = B.newBlock("1");
  uint32_t B2 = B.newBlock("2");
  uint32_t B3 = B.newBlock("3");
  uint32_t B4 = B.newBlock("4");
  uint32_t Exit = B.newBlock("exit");

  B.setInsertPoint(Entry);
  B.movImm(I, 0);
  B.movImm(A, 0);
  B.jmp(B1);
  B.setInsertPoint(B1);
  B.band(C, R(I), K(1));
  B.br(R(C), B2, B3); // alternates T,N,T,N,...
  B.setInsertPoint(B2);
  B.add(A, R(A), K(1));
  B.jmp(B4);
  B.setInsertPoint(B3);
  B.add(A, R(A), K(2));
  B.jmp(B4);
  B.setInsertPoint(B4);
  B.add(I, R(I), K(1));
  B.cmpLt(C, R(I), K(1000));
  B.br(R(C), B1, Exit);
  B.setInsertPoint(Exit);
  B.store(K(0), K(0), R(A));
  B.ret(R(A));
  M.assignBranchIds();

  std::printf("== Original loop (the alternating branch is id 0) ==\n%s\n",
              printFunction(M.Functions[0], &M).c_str());

  // Profile the loop.
  CollectingSink Sink;
  ExecResult Orig = execute(M, &Sink);
  Trace T = Sink.takeTrace();
  ProfileSet Profiles(2);
  Profiles.addTrace(T);
  std::printf("Alternating branch: %llu executions, %llu taken -> profile "
              "mispredicts %llu times\n\n",
              static_cast<unsigned long long>(
                  Profiles.branch(0).executions()),
              static_cast<unsigned long long>(
                  Profiles.branch(0).takenCount()),
              static_cast<unsigned long long>(
                  Profiles.branch(0).profileMispredictions()));

  // Build the 2-state machine (the paper's state "0" / state "1").
  MachineOptions MO;
  MO.MaxStates = 2;
  SuffixMachine Machine = buildIntraLoopMachine(Profiles.branch(0).Table, MO);
  std::printf("2-state machine: %s\n\n", Machine.describe().c_str());

  // Replicate the loop.
  Module X = M;
  ProgramAnalysis PA(X);
  const BranchClass &Cls = PA.classOf(0);
  const Loop &L = PA.loopInfoFor(0).loops()[static_cast<size_t>(Cls.LoopIdx)];
  uint64_t BlocksBefore = X.Functions[0].Blocks.size();
  ReplicationStats RS =
      applyLoopReplication(X.Functions[0], L.Blocks, L.Header, 0, Machine);
  X.assignBranchIds();
  std::printf("== Replicated loop ==\n%s\n",
              printFunction(X.Functions[0], &X).c_str());
  std::printf("Blocks: %llu -> %zu (%u added, %u pruned — the paper's "
              "discarded copies \"2b\" and \"3a\")\n\n",
              static_cast<unsigned long long>(BlocksBefore),
              X.Functions[0].Blocks.size(), RS.BlocksAdded, RS.BlocksPruned);

  if (!verifyModule(X).empty()) {
    std::printf("replicated module failed verification!\n");
    return 1;
  }

  // Same behaviour, near-zero misprediction.
  ExecResult Repl = execute(X);
  std::printf("Return values: original=%lld replicated=%lld (%s)\n",
              static_cast<long long>(Orig.ReturnValue),
              static_cast<long long>(Repl.ReturnValue),
              Orig.ReturnValue == Repl.ReturnValue ? "equal" : "DIFFER");

  TraceStats Stats(2);
  Stats.addTrace(T);
  Module P = M;
  annotateProfilePredictions(P, Stats);
  annotateProfilePredictions(X, Stats);
  PredictionStats Before = measureAnnotatedPredictions(P, ExecOptions());
  PredictionStats After = measureAnnotatedPredictions(X, ExecOptions());
  std::printf("Semi-static mispredictions: %llu before, %llu after "
              "replication\n",
              static_cast<unsigned long long>(Before.Mispredictions),
              static_cast<unsigned long long>(After.Mispredictions));
  return 0;
}
