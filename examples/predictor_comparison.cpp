//===- examples/predictor_comparison.cpp - Predictor zoo demo -------------===//
//
// Part of the bpcr project (Krall, PLDI 1994 reproduction).
//
//===----------------------------------------------------------------------===//
//
// Runs every predictor in the library over one benchmark and prints a
// ranked comparison — including all nine Yeh/Patt two-level variants the
// paper cites.
//
//   $ ./predictor_comparison [workload] [seed]
//   $ ./predictor_comparison ghostview 7
//
//===----------------------------------------------------------------------===//

#include "predict/DynamicPredictors.h"
#include "predict/Evaluator.h"
#include "predict/SemiStaticPredictors.h"
#include "predict/StaticHeuristics.h"
#include "support/TablePrinter.h"
#include "workloads/Workload.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

using namespace bpcr;

int main(int argc, char **argv) {
  std::string Name = argc > 1 ? argv[1] : "ghostview";
  uint64_t Seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 1;

  const Workload *W = nullptr;
  for (const Workload &Cand : allWorkloads())
    if (Name == Cand.Name)
      W = &Cand;
  if (!W) {
    std::printf("unknown workload '%s'; choose one of:", Name.c_str());
    for (const Workload &Cand : allWorkloads())
      std::printf(" %s", Cand.Name);
    std::printf("\n");
    return 1;
  }

  Module M;
  Trace T = traceWorkload(*W, Seed, M, 1'000'000);
  std::printf("%s (seed %llu): %zu branch events, %llu static branches\n\n",
              W->Name, static_cast<unsigned long long>(Seed), T.size(),
              static_cast<unsigned long long>(M.conditionalBranchCount()));

  struct Entry {
    std::string Name;
    double Rate;
    const char *Class;
  };
  std::vector<Entry> Results;

  // Static heuristics.
  auto AddStatic = [&](const char *N, StaticPredictions (*Fn)(const Module &)) {
    Results.push_back(
        {N, evaluateStaticPredictions(Fn(M), T).mispredictionPercent(),
         "static"});
  };
  AddStatic("always taken", predictAlwaysTaken);
  AddStatic("backward taken (BTFN)", predictBackwardTaken);
  AddStatic("opcode heuristic", predictOpcode);
  AddStatic("Ball-Larus chain", predictBallLarus);

  // Dynamic predictors.
  {
    LastDirectionPredictor P;
    Results.push_back({P.name(), evaluatePredictor(P, T).mispredictionPercent(),
                       "dynamic"});
  }
  for (unsigned Bits : {1u, 2u, 3u}) {
    CounterPredictor P(Bits);
    Results.push_back({P.name(), evaluatePredictor(P, T).mispredictionPercent(),
                       "dynamic"});
  }
  for (Scope HS : {Scope::Global, Scope::Set, Scope::PerBranch})
    for (Scope PS : {Scope::Global, Scope::Set, Scope::PerBranch}) {
      TwoLevelConfig Cfg;
      Cfg.HistoryScope = HS;
      Cfg.PatternScope = PS;
      TwoLevelPredictor P(Cfg);
      Results.push_back({P.name(),
                         evaluatePredictor(P, T).mispredictionPercent(),
                         "dynamic"});
    }

  // Semi-static predictors.
  {
    ProfilePredictor P;
    Results.push_back({P.name(),
                       evaluateSelfTrained(P, T).mispredictionPercent(),
                       "semi-static"});
  }
  for (unsigned Bits : {1u, 2u, 4u}) {
    CorrelationPredictor P(Bits);
    Results.push_back({P.name(),
                       evaluateSelfTrained(P, T).mispredictionPercent(),
                       "semi-static"});
  }
  for (unsigned Bits : {1u, 4u, 9u}) {
    LoopHistoryPredictor P(Bits);
    Results.push_back({P.name(),
                       evaluateSelfTrained(P, T).mispredictionPercent(),
                       "semi-static"});
  }
  {
    LoopCorrelationPredictor P;
    Results.push_back({P.name(),
                       evaluateSelfTrained(P, T).mispredictionPercent(),
                       "semi-static"});
  }

  std::sort(Results.begin(), Results.end(),
            [](const Entry &A, const Entry &B) { return A.Rate < B.Rate; });

  TablePrinter Table("Predictors ranked by misprediction rate");
  Table.setHeader({"predictor", "class", "mispredict %"});
  for (const Entry &E : Results)
    Table.addRow({E.Name, E.Class, formatPercent(E.Rate)});
  std::printf("%s", Table.render().c_str());
  return 0;
}
