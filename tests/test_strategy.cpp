//===- tests/test_strategy.cpp - Strategy selection and size sweep --------===//
//
// Part of the bpcr project (Krall, PLDI 1994 reproduction).
//
//===----------------------------------------------------------------------===//

#include "core/LoopAwareProfiles.h"
#include "core/SizeSweep.h"
#include "core/StrategySelection.h"
#include "workloads/Workload.h"

#include <gtest/gtest.h>

using namespace bpcr;

namespace {

struct Prepared {
  // Module behind a unique_ptr: ProgramAnalysis keeps a reference into it,
  // which must survive moves of this struct.
  std::unique_ptr<Module> M;
  Trace T;
  std::unique_ptr<ProgramAnalysis> PA;
  std::unique_ptr<ProfileSet> Profiles;
};

Prepared prepare(size_t WorkloadIdx, uint64_t Events = 200'000) {
  Prepared P;
  P.M = std::make_unique<Module>();
  P.T = traceWorkload(allWorkloads()[WorkloadIdx], 1, *P.M, Events);
  P.PA = std::make_unique<ProgramAnalysis>(*P.M);
  P.Profiles = std::make_unique<ProfileSet>(
      buildLoopAwareProfiles(*P.PA, P.T));
  return P;
}

} // namespace

TEST(StrategySelection, NeverWorseThanProfilePerBranch) {
  Prepared P = prepare(1); // c-compiler
  StrategyOptions Opts;
  Opts.MaxStates = 4;
  Opts.NodeBudget = 20'000;
  auto Strategies = selectStrategies(*P.PA, *P.Profiles, P.T, Opts);
  ASSERT_EQ(Strategies.size(), P.PA->numBranches());
  for (const BranchStrategy &S : Strategies) {
    const BranchProfile &BP = P.Profiles->branch(S.BranchId);
    uint64_t ProfCorrect = BP.executions() - BP.profileMispredictions();
    EXPECT_GE(S.Correct, ProfCorrect) << "branch " << S.BranchId;
    EXPECT_EQ(S.Total, BP.executions());
    EXPECT_LE(S.States, Opts.MaxStates);
    if (S.Kind == StrategyKind::Profile) {
      EXPECT_EQ(S.States, 1u);
    }
  }
}

TEST(StrategySelection, StateBudgetIsMonotone) {
  Prepared P = prepare(3); // ghostview
  uint64_t PrevCorrect = 0;
  for (unsigned N = 2; N <= 6; N += 2) {
    StrategyOptions Opts;
    Opts.MaxStates = N;
    Opts.NodeBudget = 20'000;
    auto Strategies = selectStrategies(*P.PA, *P.Profiles, P.T, Opts);
    PredictionStats Total = totalStrategyStats(Strategies);
    EXPECT_GE(Total.correct(), PrevCorrect) << "N=" << N;
    PrevCorrect = Total.correct();
  }
}

TEST(StrategySelection, ColdBranchesStayProfile) {
  Prepared P = prepare(0);
  StrategyOptions Opts;
  Opts.MaxStates = 4;
  Opts.MinExecutions = UINT64_MAX; // everything is "cold"
  auto Strategies = selectStrategies(*P.PA, *P.Profiles, P.T, Opts);
  for (const BranchStrategy &S : Strategies)
    EXPECT_EQ(S.Kind, StrategyKind::Profile);
}

TEST(StrategySelection, KindsMatchBranchClasses) {
  Prepared P = prepare(5); // prolog: all branch kinds appear
  StrategyOptions Opts;
  Opts.MaxStates = 4;
  Opts.NodeBudget = 20'000;
  auto Strategies = selectStrategies(*P.PA, *P.Profiles, P.T, Opts);
  for (const BranchStrategy &S : Strategies) {
    const BranchClass &C = P.PA->classOf(S.BranchId);
    switch (S.Kind) {
    case StrategyKind::IntraLoop:
      EXPECT_EQ(C.Kind, BranchKind::IntraLoop);
      EXPECT_NE(S.Machine, nullptr);
      break;
    case StrategyKind::LoopExit:
      EXPECT_EQ(C.Kind, BranchKind::LoopExit);
      EXPECT_NE(S.Machine, nullptr);
      break;
    case StrategyKind::Correlated:
      EXPECT_NE(S.Corr, nullptr);
      break;
    case StrategyKind::Profile:
      EXPECT_EQ(S.Machine, nullptr);
      EXPECT_EQ(S.Corr, nullptr);
      break;
    }
  }
}

TEST(StrategySelection, GhostviewFindsCorrelation) {
  // The ghostview dispatch cascade is built to correlate; the selection
  // must pick correlated machines for at least one branch and the total
  // must clearly beat profile.
  Prepared P = prepare(3);
  StrategyOptions Opts;
  Opts.MaxStates = 6;
  Opts.NodeBudget = 20'000;
  auto Strategies = selectStrategies(*P.PA, *P.Profiles, P.T, Opts);
  unsigned Correlated = 0;
  uint64_t ProfileMiss = 0, ChosenMiss = 0;
  for (const BranchStrategy &S : Strategies) {
    if (S.Kind == StrategyKind::Correlated)
      ++Correlated;
    ProfileMiss += P.Profiles->branch(S.BranchId).profileMispredictions();
    ChosenMiss += S.mispredicted();
  }
  EXPECT_GE(Correlated, 1u);
  EXPECT_LT(ChosenMiss, ProfileMiss);
}

TEST(StrategyKindNames, AreStable) {
  EXPECT_STREQ(strategyKindName(StrategyKind::Profile), "profile");
  EXPECT_STREQ(strategyKindName(StrategyKind::IntraLoop), "intra-loop");
  EXPECT_STREQ(strategyKindName(StrategyKind::LoopExit), "loop-exit");
  EXPECT_STREQ(strategyKindName(StrategyKind::Correlated), "correlated");
}

// -- Size sweep --------------------------------------------------------------

TEST(SizeSweep, StartsAtProfilePoint) {
  Prepared P = prepare(2); // compress
  SweepOptions Opts;
  Opts.MaxStates = 4;
  Opts.NodeBudget = 10'000;
  auto Points = computeSizeSweep(*P.PA, *P.Profiles, P.T, Opts);
  ASSERT_FALSE(Points.empty());
  EXPECT_DOUBLE_EQ(Points[0].SizeFactor, 1.0);
  EXPECT_EQ(Points[0].BranchId, -1);
  // The first point is the all-profile misprediction rate.
  uint64_t Miss = 0;
  for (uint32_t Id = 0; Id < P.PA->numBranches(); ++Id)
    Miss += P.Profiles->branch(static_cast<int32_t>(Id))
                .profileMispredictions();
  double Expected = 100.0 * static_cast<double>(Miss) /
                    static_cast<double>(P.Profiles->totalExecutions());
  EXPECT_NEAR(Points[0].MispredictPercent, Expected, 1e-9);
}

TEST(SizeSweep, MispredictionMonotoneDecreasing) {
  Prepared P = prepare(3);
  SweepOptions Opts;
  Opts.MaxStates = 5;
  Opts.NodeBudget = 10'000;
  auto Points = computeSizeSweep(*P.PA, *P.Profiles, P.T, Opts);
  for (size_t I = 1; I < Points.size(); ++I) {
    EXPECT_LE(Points[I].MispredictPercent,
              Points[I - 1].MispredictPercent + 1e-9);
    EXPECT_GE(Points[I].SizeFactor, Points[I - 1].SizeFactor - 1e-9);
  }
}

TEST(SizeSweep, EveryStepNamesABranch) {
  Prepared P = prepare(4); // predict
  SweepOptions Opts;
  Opts.MaxStates = 4;
  Opts.NodeBudget = 10'000;
  auto Points = computeSizeSweep(*P.PA, *P.Profiles, P.T, Opts);
  for (size_t I = 1; I < Points.size(); ++I) {
    EXPECT_GE(Points[I].BranchId, 0);
    EXPECT_GE(Points[I].NewStates, 2u);
    EXPECT_LE(Points[I].NewStates, Opts.MaxStates);
  }
}

TEST(SizeSweep, SizeCapStopsTheSweep) {
  Prepared P = prepare(5); // prolog
  SweepOptions Opts;
  Opts.MaxStates = 8;
  Opts.MaxSizeFactor = 1.5;
  Opts.NodeBudget = 10'000;
  auto Points = computeSizeSweep(*P.PA, *P.Profiles, P.T, Opts);
  // At most one point may exceed the cap (the one that crossed it).
  for (size_t I = 0; I + 1 < Points.size(); ++I)
    EXPECT_LE(Points[I].SizeFactor, 1.5);
}

TEST(SizeSweep, FirstStepsGiveTheBiggestDrops) {
  // The paper: "The first states reduce the misprediction rate
  // substantially, later ones increase the [code size] considerably."
  Prepared P = prepare(3);
  SweepOptions Opts;
  Opts.MaxStates = 6;
  Opts.NodeBudget = 10'000;
  auto Points = computeSizeSweep(*P.PA, *P.Profiles, P.T, Opts);
  if (Points.size() >= 5) {
    double FirstDrop = Points[0].MispredictPercent -
                       Points[2].MispredictPercent;
    double LastDrop = Points[Points.size() - 3].MispredictPercent -
                      Points[Points.size() - 1].MispredictPercent;
    EXPECT_GE(FirstDrop, LastDrop);
  }
}
