//===- tests/test_loopaware.cpp - Loop-aware profiling tests --------------===//
//
// Part of the bpcr project (Krall, PLDI 1994 reproduction).
//
// Loop-aware profiles are what keep machine construction honest about the
// accuracy replication can realize: a replicated loop re-enters through its
// initial-state copy, so the per-branch history resets when control leaves
// the loop.
//
//===----------------------------------------------------------------------===//

#include "core/LoopAwareProfiles.h"
#include "core/MachineSearch.h"
#include "interp/Interpreter.h"
#include "ir/IRBuilder.h"
#include "trace/Sinks.h"
#include "workloads/Workload.h"

#include <gtest/gtest.h>

using namespace bpcr;

namespace {

Operand R(Reg X) { return Operand::reg(X); }
Operand K(int64_t V) { return Operand::imm(V); }

/// Nested loop: outer runs Outer times; inner always Inner iterations.
/// Branch 0 = inner header (loop exit kind), branch 1 = outer latch.
Module nested(int64_t Outer, int64_t Inner) {
  Module M;
  M.MemWords = 4;
  uint32_t Main = M.addFunction("main", 0);
  IRBuilder B(M, Main);
  Reg I = B.newReg(), J = B.newReg(), C = B.newReg(), S = B.newReg();
  uint32_t Entry = B.newBlock("entry");
  uint32_t OuterB = B.newBlock("outer");
  uint32_t InnerH = B.newBlock("inner");
  uint32_t InnerBody = B.newBlock("inner_body");
  uint32_t Latch = B.newBlock("latch");
  uint32_t Exit = B.newBlock("exit");
  B.setInsertPoint(Entry);
  B.movImm(I, 0);
  B.movImm(S, 0);
  B.jmp(OuterB);
  B.setInsertPoint(OuterB);
  B.movImm(J, 0);
  B.jmp(InnerH);
  B.setInsertPoint(InnerH);
  B.cmpLt(C, R(J), K(Inner));
  B.br(R(C), InnerBody, Latch);
  B.setInsertPoint(InnerBody);
  B.add(S, R(S), R(J));
  B.add(J, R(J), K(1));
  B.jmp(InnerH);
  B.setInsertPoint(Latch);
  B.add(I, R(I), K(1));
  B.cmpLt(C, R(I), K(Outer));
  B.br(R(C), OuterB, Exit);
  B.setInsertPoint(Exit);
  B.store(K(0), K(0), R(S));
  B.ret(R(S));
  M.assignBranchIds();
  return M;
}

} // namespace

TEST(LoopAware, ResetsAtEveryInnerLoopReentry) {
  Module M = nested(50, 4);
  CollectingSink Sink;
  ASSERT_TRUE(execute(M, &Sink).Ok);
  ProgramAnalysis PA(M);
  ProfileSet P = buildLoopAwareProfiles(PA, Sink.trace());
  // The inner header branch executes 5 times per invocation over 50
  // invocations; each outer iteration interposes the latch branch, so
  // every invocation after the first starts with a reset.
  const BranchProfile &BP = P.branch(0);
  EXPECT_EQ(BP.executions(), 250u);
  EXPECT_EQ(BP.ResetPositions.size(), 49u);
  // The outer latch never resets: nothing executes outside its loop.
  EXPECT_TRUE(P.branch(1).ResetPositions.empty());
}

TEST(LoopAware, PlainProfilesNeverReset) {
  Module M = nested(50, 4);
  CollectingSink Sink;
  ASSERT_TRUE(execute(M, &Sink).Ok);
  ProfileSet P(2);
  P.addTrace(Sink.trace());
  EXPECT_TRUE(P.branch(0).ResetPositions.empty());
}

TEST(LoopAware, SegmentedSimulationMatchesFitScore) {
  // With resets, the exit-chain fit score must equal segment-aware
  // simulation exactly: this is the invariant that makes construction-time
  // scores trustworthy for replication.
  Module M = nested(80, 5);
  CollectingSink Sink;
  ASSERT_TRUE(execute(M, &Sink).Ok);
  ProgramAnalysis PA(M);
  ProfileSet P = buildLoopAwareProfiles(PA, Sink.trace());

  const BranchClass &C = PA.classOf(0);
  ASSERT_EQ(C.Kind, BranchKind::LoopExit);
  ExitChainMachine Mach =
      buildExitMachine(P.branch(0).Table, 7, !C.TakenExits);
  PredictionStats Sim = Mach.simulateSegmented(P.branch(0));
  EXPECT_EQ(Sim.Predictions, Mach.Total);
  EXPECT_EQ(Sim.Mispredictions, Mach.Total - Mach.Correct);
  // A 7-state chain captures the constant trip count perfectly.
  EXPECT_EQ(Sim.Mispredictions, 0u);
}

TEST(LoopAware, WholeTraceHistoryOverestimatesWithoutResets) {
  // A branch whose outcome alternates ACROSS invocations but is constant
  // within one: whole-trace history looks predictable, loop-aware resets
  // reveal that a replicated machine cannot carry that information.
  Module M;
  M.MemWords = 4;
  uint32_t Main = M.addFunction("main", 0);
  IRBuilder B(M, Main);
  Reg I = B.newReg(), J = B.newReg(), C = B.newReg(), Par = B.newReg();
  uint32_t Entry = B.newBlock("entry");
  uint32_t Outer = B.newBlock("outer");
  uint32_t Inner = B.newBlock("inner");
  uint32_t Arm = B.newBlock("arm");
  uint32_t ArmB = B.newBlock("arm_b");
  uint32_t InnerNext = B.newBlock("inner_next");
  uint32_t Latch = B.newBlock("latch");
  uint32_t Exit = B.newBlock("exit");
  B.setInsertPoint(Entry);
  B.movImm(I, 0);
  B.jmp(Outer);
  B.setInsertPoint(Outer);
  B.movImm(J, 0);
  B.band(Par, R(I), K(1));
  B.jmp(Inner);
  B.setInsertPoint(Inner);
  B.cmpLt(C, R(J), K(3));
  B.br(R(C), Arm, Latch);
  B.setInsertPoint(Arm);
  // The interesting branch: direction = outer parity (constant within an
  // invocation, alternating across invocations).
  B.br(R(Par), ArmB, InnerNext);
  B.setInsertPoint(ArmB);
  B.jmp(InnerNext);
  B.setInsertPoint(InnerNext);
  B.add(J, R(J), K(1));
  B.jmp(Inner);
  B.setInsertPoint(Latch);
  B.add(I, R(I), K(1));
  B.cmpLt(C, R(I), K(200));
  B.br(R(C), Outer, Exit);
  B.setInsertPoint(Exit);
  B.ret(R(I));
  M.assignBranchIds();

  CollectingSink Sink;
  ASSERT_TRUE(execute(M, &Sink).Ok);
  ProgramAnalysis PA(M);

  ProfileSet Plain(PA.numBranches());
  Plain.addTrace(Sink.trace());
  ProfileSet Aware = buildLoopAwareProfiles(PA, Sink.trace());

  MachineOptions MO;
  MO.MaxStates = 6; // enough for the period-6 whole-trace pattern
  // The parity branch is id 1 (block order: inner header 0, arm 1, latch 2).
  SuffixMachine PlainM = buildIntraLoopMachine(Plain.branch(1).Table, MO);
  SuffixMachine AwareM = buildIntraLoopMachine(Aware.branch(1).Table, MO);

  double PlainRate = 100.0 *
                     static_cast<double>(PlainM.Total - PlainM.Correct) /
                     static_cast<double>(PlainM.Total);
  double AwareRate = 100.0 *
                     static_cast<double>(AwareM.Total - AwareM.Correct) /
                     static_cast<double>(AwareM.Total);
  // Whole-trace history claims near-perfect prediction; the loop-aware
  // profile admits the cross-invocation information is lost. After a reset
  // the first execution is a coin flip (1 of 3 per invocation).
  EXPECT_LT(PlainRate, 5.0);
  EXPECT_GT(AwareRate, 15.0);
}

TEST(LoopAware, NonLoopBranchesUnaffected) {
  for (size_t WI : {1u, 3u}) {
    Module M;
    Trace T = traceWorkload(allWorkloads()[WI], 1, M, 100'000);
    ProgramAnalysis PA(M);
    ProfileSet Plain(PA.numBranches());
    Plain.addTrace(T);
    ProfileSet Aware = buildLoopAwareProfiles(PA, T);
    for (uint32_t Id = 0; Id < PA.numBranches(); ++Id) {
      EXPECT_EQ(Plain.branch(static_cast<int32_t>(Id)).executions(),
                Aware.branch(static_cast<int32_t>(Id)).executions());
      if (PA.classOf(static_cast<int32_t>(Id)).Kind == BranchKind::NonLoop) {
        EXPECT_TRUE(
            Aware.branch(static_cast<int32_t>(Id)).ResetPositions.empty());
      }
    }
  }
}

TEST(Recursion, DetectedInAbalone) {
  Module M;
  traceWorkload(allWorkloads()[0], 1, M, 1'000);
  ProgramAnalysis PA(M);
  // negamax calls itself; eval_leaf and main do not.
  bool AnyRecursive = false, AnyPlain = false;
  for (uint32_t FI = 0; FI < M.Functions.size(); ++FI) {
    if (PA.isRecursive(FI))
      AnyRecursive = true;
    else
      AnyPlain = true;
  }
  EXPECT_TRUE(AnyRecursive);
  EXPECT_TRUE(AnyPlain);
}

TEST(Recursion, SingleFunctionWorkloadsAreNotRecursive) {
  Module M;
  traceWorkload(allWorkloads()[5], 1, M, 1'000); // prolog
  ProgramAnalysis PA(M);
  for (uint32_t FI = 0; FI < M.Functions.size(); ++FI)
    EXPECT_FALSE(PA.isRecursive(FI));
}
