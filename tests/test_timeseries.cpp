//===- tests/test_timeseries.cpp - Windowed trace telemetry ---------------===//
//
// Part of the bpcr project (Krall, PLDI 1994 reproduction).
//
//===----------------------------------------------------------------------===//

#include "obs/Json.h"
#include "obs/TimeSeries.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

using namespace bpcr;

namespace {

// Deterministic per-event behaviour for synthetic streams.
bool takenAt(uint64_t I) { return I % 3 == 0; }
bool missAt(uint64_t I) { return I % 5 == 0; }

void expectEqualSeries(const TimeSeriesData &A, const TimeSeriesData &B) {
  EXPECT_EQ(A.WindowEvents, B.WindowEvents);
  EXPECT_EQ(A.NumBranches, B.NumBranches);
  EXPECT_EQ(A.TotalEvents, B.TotalEvents);
  EXPECT_EQ(A.TotalTaken, B.TotalTaken);
  EXPECT_EQ(A.TotalMispredictions, B.TotalMispredictions);
  ASSERT_EQ(A.Windows.size(), B.Windows.size());
  for (size_t I = 0; I < A.Windows.size(); ++I) {
    const TimeSeriesWindow &WA = A.Windows[I];
    const TimeSeriesWindow &WB = B.Windows[I];
    EXPECT_EQ(WA.Events, WB.Events) << "window " << I;
    EXPECT_EQ(WA.Taken, WB.Taken) << "window " << I;
    EXPECT_EQ(WA.Mispredictions, WB.Mispredictions) << "window " << I;
    ASSERT_EQ(WA.Branches.size(), WB.Branches.size()) << "window " << I;
    for (size_t B2 = 0; B2 < WA.Branches.size(); ++B2) {
      EXPECT_EQ(WA.Branches[B2].Events, WB.Branches[B2].Events);
      EXPECT_EQ(WA.Branches[B2].Taken, WB.Branches[B2].Taken);
      EXPECT_EQ(WA.Branches[B2].Mispredictions,
                WB.Branches[B2].Mispredictions);
    }
  }
}

// A two-regime series: \p LowWindows windows with \p LowMissPer16 misses per
// 16 events, then \p HighWindows windows with \p HighMissPer16.
TimeSeriesData stepSeries(uint32_t LowWindows, unsigned LowMissPer16,
                          uint32_t HighWindows, unsigned HighMissPer16) {
  TimeSeriesOptions Opts;
  Opts.WindowEvents = 16;
  TimeSeries TS(Opts);
  uint64_t Total = uint64_t(LowWindows + HighWindows) * 16;
  for (uint64_t I = 0; I < Total; ++I) {
    bool High = (I / 16) >= LowWindows;
    unsigned PerWindow = High ? HighMissPer16 : LowMissPer16;
    TS.record(I, 0, takenAt(I), (I % 16) < PerWindow);
  }
  return TS.take();
}

} // namespace

// -- Recorder ----------------------------------------------------------------

TEST(TimeSeries, BucketsByEventIndex) {
  TimeSeriesOptions Opts;
  Opts.WindowEvents = 16;
  TimeSeries TS(Opts);
  for (uint64_t I = 0; I < 64; ++I)
    TS.record(I, 0, takenAt(I), missAt(I));
  TimeSeriesData D = TS.snapshot();
  EXPECT_EQ(D.WindowEvents, 16u);
  EXPECT_EQ(D.TotalEvents, 64u);
  ASSERT_EQ(D.Windows.size(), 4u);
  uint64_t Events = 0, Taken = 0, Miss = 0;
  for (const TimeSeriesWindow &W : D.Windows) {
    EXPECT_EQ(W.Events, 16u);
    Events += W.Events;
    Taken += W.Taken;
    Miss += W.Mispredictions;
  }
  EXPECT_EQ(Events, D.TotalEvents);
  EXPECT_EQ(Taken, D.TotalTaken);
  EXPECT_EQ(Miss, D.TotalMispredictions);
}

TEST(TimeSeries, NonPowerOfTwoWidthFallsBack) {
  TimeSeriesOptions Opts;
  Opts.WindowEvents = 1000;
  TimeSeries TS(Opts);
  EXPECT_EQ(TS.windowEvents(), 1024u);
  EXPECT_FALSE(isPowerOfTwo(0));
  EXPECT_FALSE(isPowerOfTwo(1000));
  EXPECT_TRUE(isPowerOfTwo(1024));
}

TEST(TimeSeries, PercentMapsZeroOverZeroToZero) {
  EXPECT_EQ(TimeSeriesData::percent(0, 0), 0.0);
  EXPECT_EQ(TimeSeriesData::percent(1, 4), 25.0);
}

TEST(TimeSeries, PerBranchCellsFoldOutOfRangeIdsGlobally) {
  TimeSeriesOptions Opts;
  Opts.WindowEvents = 16;
  TimeSeries TS(Opts, /*NumBranches=*/3);
  TS.record(0, 1, true, true);
  TS.record(1, 1, false, false);
  TS.record(2, 7, true, true);  // out of range: global counts only
  TS.record(3, -1, true, true); // synthetic id: global counts only
  TimeSeriesData D = TS.snapshot();
  ASSERT_EQ(D.Windows.size(), 1u);
  const TimeSeriesWindow &W = D.Windows[0];
  EXPECT_EQ(W.Events, 4u);
  EXPECT_EQ(W.Mispredictions, 3u);
  ASSERT_EQ(W.Branches.size(), 3u);
  EXPECT_EQ(W.Branches[1].Events, 2u);
  EXPECT_EQ(W.Branches[1].Taken, 1u);
  EXPECT_EQ(W.Branches[1].Mispredictions, 1u);
  EXPECT_EQ(W.Branches[0].Events, 0u);
  EXPECT_EQ(W.Branches[2].Events, 0u);
}

TEST(TimeSeries, MergeOnOverflowDoublesWidthAndPreservesTotals) {
  TimeSeriesOptions Opts;
  Opts.WindowEvents = 16;
  Opts.MaxWindows = 4;
  TimeSeries TS(Opts, /*NumBranches=*/2);
  for (uint64_t I = 0; I < 128; ++I)
    TS.record(I, int32_t(I % 2), takenAt(I), missAt(I));
  TimeSeriesData D = TS.snapshot();
  // 128 events at width 16 would need 8 windows; one merge doubles the
  // width to 32 and fits the budget of 4.
  EXPECT_EQ(D.WindowEvents, 32u);
  ASSERT_EQ(D.Windows.size(), 4u);
  uint64_t Events = 0, Miss = 0, B0 = 0, B1 = 0;
  for (const TimeSeriesWindow &W : D.Windows) {
    EXPECT_EQ(W.Events, 32u);
    Events += W.Events;
    Miss += W.Mispredictions;
    ASSERT_EQ(W.Branches.size(), 2u);
    B0 += W.Branches[0].Events;
    B1 += W.Branches[1].Events;
  }
  EXPECT_EQ(Events, 128u);
  EXPECT_EQ(Miss, D.TotalMispredictions);
  EXPECT_EQ(B0, 64u);
  EXPECT_EQ(B1, 64u);
}

TEST(TimeSeries, SnapshotIsIndependentOfArrivalOrder) {
  TimeSeriesOptions Opts;
  Opts.WindowEvents = 16;
  Opts.MaxWindows = 4; // force merges in both recorders
  TimeSeries Ordered(Opts, 2), Shuffled(Opts, 2);
  const uint64_t N = 256;
  for (uint64_t I = 0; I < N; ++I)
    Ordered.record(I, int32_t(I % 2), takenAt(I), missAt(I));
  // A fixed full-cycle stride permutation of [0, N): 77 is coprime to 256.
  for (uint64_t K = 0; K < N; ++K) {
    uint64_t I = (K * 77) % N;
    Shuffled.record(I, int32_t(I % 2), takenAt(I), missAt(I));
  }
  expectEqualSeries(Ordered.snapshot(), Shuffled.snapshot());
}

TEST(TimeSeries, TakeMovesAndResets) {
  TimeSeries TS;
  TS.record(0, 0, true, true);
  TimeSeriesData D = TS.take();
  EXPECT_EQ(D.TotalEvents, 1u);
  EXPECT_FALSE(D.empty());
  TimeSeriesData After = TS.snapshot();
  EXPECT_TRUE(After.empty());
  EXPECT_EQ(After.TotalEvents, 0u);
}

TEST(TimeSeries, ConcurrentRecordMatchesSerialReference) {
  TimeSeriesOptions Opts;
  Opts.WindowEvents = 64;
  Opts.MaxWindows = 8; // merges happen under contention too
  const uint64_t N = 1 << 14;
  const unsigned Threads = 4;

  TimeSeries Serial(Opts, 4);
  for (uint64_t I = 0; I < N; ++I)
    Serial.record(I, int32_t(I % 4), takenAt(I), missAt(I));

  TimeSeries Shared(Opts, 4);
  std::vector<std::thread> Pool;
  for (unsigned T = 0; T < Threads; ++T)
    Pool.emplace_back([&Shared, T] {
      for (uint64_t I = T; I < N; I += Threads)
        Shared.record(I, int32_t(I % 4), takenAt(I), missAt(I));
    });
  for (std::thread &Th : Pool)
    Th.join();

  expectEqualSeries(Serial.snapshot(), Shared.snapshot());
}

// -- Phase segmentation ------------------------------------------------------

TEST(Phases, StepChangeSplitsAtTheBoundary) {
  // 4 windows at 1/16 miss, then 4 at 8/16: one clear change point.
  TimeSeriesData D = stepSeries(4, 1, 4, 8);
  std::vector<PhaseSegment> Phases = segmentPhases(D);
  ASSERT_EQ(Phases.size(), 2u);
  EXPECT_EQ(Phases[0].FirstWindow, 0u);
  EXPECT_EQ(Phases[0].LastWindow, 3u);
  EXPECT_EQ(Phases[1].FirstWindow, 4u);
  EXPECT_EQ(Phases[1].LastWindow, 7u);
  EXPECT_EQ(Phases[1].StartEvent, 64u);
  EXPECT_NEAR(Phases[0].missRatePercent(), 6.25, 1e-9);
  EXPECT_NEAR(Phases[1].missRatePercent(), 50.0, 1e-9);
}

TEST(Phases, FlatSeriesIsOnePhase) {
  TimeSeriesData D = stepSeries(8, 4, 0, 0);
  std::vector<PhaseSegment> Phases = segmentPhases(D);
  ASSERT_EQ(Phases.size(), 1u);
  EXPECT_EQ(Phases[0].FirstWindow, 0u);
  EXPECT_EQ(Phases[0].LastWindow, 7u);
  EXPECT_EQ(Phases[0].Events, 128u);
}

TEST(Phases, MinDeltaSuppressesSmallSteps) {
  // 25% vs 31.25% splits (6.25pp >= 2pp)...
  EXPECT_EQ(segmentPhases(stepSeries(4, 4, 4, 5)).size(), 2u);
  // ...but a tightened knob suppresses the same step.
  SegmentationOptions Strict;
  Strict.MinDeltaPercent = 10.0;
  EXPECT_EQ(segmentPhases(stepSeries(4, 4, 4, 5), Strict).size(), 1u);
}

TEST(Phases, MaxPhasesCapsTheSegmentation) {
  TimeSeriesData D = stepSeries(4, 1, 4, 8);
  SegmentationOptions One;
  One.MaxPhases = 1;
  EXPECT_EQ(segmentPhases(D, One).size(), 1u);
}

TEST(Phases, WarmupEndsWhereTheSteadyRunBegins) {
  // High-miss warmup, then steady: warmup boundary is the steady phase's
  // start event.
  TimeSeriesData D = stepSeries(4, 8, 4, 1);
  std::vector<PhaseSegment> Phases = segmentPhases(D);
  ASSERT_EQ(Phases.size(), 2u);
  EXPECT_EQ(estimateWarmupEvents(D, Phases), Phases[1].StartEvent);
  // A flat run has no warmup.
  TimeSeriesData Flat = stepSeries(8, 4, 0, 0);
  EXPECT_EQ(estimateWarmupEvents(Flat, segmentPhases(Flat)), 0u);
}

TEST(Phases, EmptySeriesHasNoPhases) {
  TimeSeriesData Empty;
  EXPECT_TRUE(segmentPhases(Empty).empty());
  EXPECT_EQ(estimateWarmupEvents(Empty, {}), 0u);
}

// -- JSON --------------------------------------------------------------------

TEST(TimelineJson, CarriesSeriesPhasesAndSplits) {
  TimeSeriesOptions Opts;
  Opts.WindowEvents = 16;
  TimeSeries TS(Opts, 2);
  for (uint64_t I = 0; I < 128; ++I) {
    bool High = I >= 64;
    TS.record(I, int32_t(I % 2), takenAt(I), (I % 16) < (High ? 8u : 1u));
  }
  TimeSeriesData D = TS.take();
  JsonValue J = timelineJson(D, {0, 1});

  ASSERT_NE(J.find("window_events"), nullptr);
  EXPECT_EQ(J.find("window_events")->asInt(), 16);
  EXPECT_EQ(J.find("num_windows")->asInt(), 8);
  EXPECT_EQ(J.find("total_events")->asInt(), 128);
  EXPECT_EQ(J.find("phase_count")->asInt(), 2);
  ASSERT_NE(J.find("warmup_events"), nullptr);
  ASSERT_NE(J.find("steady_miss_rate_percent"), nullptr);

  // Phases are an object keyed by index so compare can gate their leaves.
  const JsonValue *Phases = J.find("phases");
  ASSERT_NE(Phases, nullptr);
  const JsonValue *P0 = Phases->find("0");
  ASSERT_NE(P0, nullptr);
  ASSERT_NE(P0->find("miss_rate_percent"), nullptr);
  const JsonValue *Splits = P0->find("branches");
  ASSERT_NE(Splits, nullptr);
  ASSERT_NE(Splits->find("0"), nullptr);
  ASSERT_NE(Splits->find("1")->find("mispredictions"), nullptr);

  // The per-window series rides along as plot data.
  const JsonValue *Windows = J.find("windows");
  ASSERT_NE(Windows, nullptr);
  EXPECT_EQ(Windows->size(), 8u);
}
