//===- tests/test_obs.cpp - Metrics registry, JSON and run reports --------===//
//
// Part of the bpcr project (Krall, PLDI 1994 reproduction).
//
//===----------------------------------------------------------------------===//

#include "core/Pipeline.h"
#include "obs/Attribution.h"
#include "obs/Compare.h"
#include "obs/DecisionLog.h"
#include "obs/Json.h"
#include "obs/Metrics.h"
#include "obs/Profiler.h"
#include "obs/Report.h"
#include "obs/TimeSeries.h"
#include "workloads/Workload.h"

#include <gtest/gtest.h>

#include <cmath>

using namespace bpcr;

namespace {


const Workload &workloadNamed(const char *Name) {
  for (const Workload &W : allWorkloads())
    if (std::string(W.Name) == Name)
      return W;
  ADD_FAILURE() << "no workload named " << Name;
  return allWorkloads()[0];
}

} // namespace

// -- Counter / Gauge / Histogram --------------------------------------------

TEST(Metrics, CounterSemantics) {
  // A private registry per test keeps cases independent of the global one.
  Registry R;
  R.setEnabled(true);
  EXPECT_TRUE(R.empty());
  R.counter("a").inc();
  R.counter("a").inc();
  R.counter("a").add(40);
  EXPECT_EQ(R.counter("a").value(), 42u);
  EXPECT_EQ(R.counter("fresh").value(), 0u); // fetch-or-create defaults to 0
  EXPECT_EQ(R.counters().size(), 2u);
}

TEST(Metrics, GaugeKeepsLastWrite) {
  // A private registry per test keeps cases independent of the global one.
  Registry R;
  R.setEnabled(true);
  R.gauge("g").set(1.5);
  R.gauge("g").set(-2.25);
  EXPECT_DOUBLE_EQ(R.gauge("g").value(), -2.25);
}

TEST(Metrics, HistogramSummarizes) {
  // A private registry per test keeps cases independent of the global one.
  Registry R;
  R.setEnabled(true);
  Histogram &H = R.histogram("h");
  EXPECT_EQ(H.count(), 0u);
  EXPECT_DOUBLE_EQ(H.mean(), 0.0); // empty histogram: mean is defined as 0
  H.record(4.0);
  H.record(-2.0);
  H.record(10.0);
  EXPECT_EQ(H.count(), 3u);
  EXPECT_DOUBLE_EQ(H.sum(), 12.0);
  EXPECT_DOUBLE_EQ(H.min(), -2.0);
  EXPECT_DOUBLE_EQ(H.max(), 10.0);
  EXPECT_DOUBLE_EQ(H.mean(), 4.0);
}

TEST(Metrics, HistogramQuantilesFromLogBuckets) {
  // A private registry per test keeps cases independent of the global one.
  Registry R;
  R.setEnabled(true);
  Histogram &H = R.histogram("q");
  for (int I = 1; I <= 1000; ++I)
    H.record(static_cast<double>(I));
  // Log buckets bound accuracy to a factor of two: the rank-500 sample
  // lies in [256, 512), the rank-990 one in [512, 1000].
  EXPECT_GE(H.p50(), 256.0);
  EXPECT_LE(H.p50(), 512.0);
  EXPECT_GE(H.p99(), 512.0);
  EXPECT_LE(H.p99(), 1000.0); // clamped to the observed max
  EXPECT_LE(H.p50(), H.p95());
  EXPECT_LE(H.p95(), H.p99());
}

TEST(Metrics, HistogramQuantileEdgeCases) {
  Histogram Empty;
  EXPECT_DOUBLE_EQ(Empty.p50(), 0.0);

  Histogram One;
  One.record(5.0);
  EXPECT_DOUBLE_EQ(One.p50(), 5.0);
  EXPECT_DOUBLE_EQ(One.p99(), 5.0);

  // Sub-1.0 and negative samples share bucket 0; estimates stay inside
  // the observed range.
  Histogram Low;
  Low.record(-3.0);
  Low.record(0.25);
  Low.record(0.5);
  EXPECT_GE(Low.p50(), Low.min());
  EXPECT_LE(Low.p99(), Low.max());
}

TEST(Metrics, HistogramIgnoresNonFiniteSamples) {
  Histogram H;
  H.record(std::nan(""));
  H.record(HUGE_VAL);
  H.record(-HUGE_VAL);
  EXPECT_EQ(H.count(), 0u); // dropped, so summaries stay finite
  EXPECT_DOUBLE_EQ(H.mean(), 0.0);
  EXPECT_DOUBLE_EQ(H.p99(), 0.0);
  H.record(2.0);
  H.record(std::nan(""));
  EXPECT_EQ(H.count(), 1u);
  EXPECT_DOUBLE_EQ(H.sum(), 2.0);
}

TEST(Metrics, ClearDropsMetricsButKeepsEnabled) {
  // A private registry per test keeps cases independent of the global one.
  Registry R;
  R.setEnabled(true);
  R.counter("c").inc();
  R.timer("t").record(5.0);
  EXPECT_FALSE(R.empty());
  R.clear();
  EXPECT_TRUE(R.empty());
  EXPECT_TRUE(R.enabled());
}

// -- ScopedTimer -------------------------------------------------------------

TEST(Metrics, ScopedTimerRecordsOnDestruction) {
  // A private registry per test keeps cases independent of the global one.
  Registry R;
  R.setEnabled(true);
  { ScopedTimer T("phase.x", R); }
  ASSERT_EQ(R.timers().count("phase.x"), 1u);
  EXPECT_EQ(R.timers().at("phase.x").count(), 1u);
  EXPECT_GE(R.timers().at("phase.x").min(), 0.0);
}

TEST(Metrics, ScopedTimerExplicitStopIsIdempotent) {
  // A private registry per test keeps cases independent of the global one.
  Registry R;
  R.setEnabled(true);
  ScopedTimer T("phase.y", R);
  T.stop();
  T.stop(); // second stop must not add a sample
  EXPECT_EQ(R.timers().at("phase.y").count(), 1u);
}

TEST(Metrics, ScopedTimersNest) {
  // A private registry per test keeps cases independent of the global one.
  Registry R;
  R.setEnabled(true);
  {
    ScopedTimer Outer("outer", R);
    {
      ScopedTimer Inner("inner", R);
    }
    {
      ScopedTimer Inner("inner", R);
    }
  }
  EXPECT_EQ(R.timers().at("outer").count(), 1u);
  EXPECT_EQ(R.timers().at("inner").count(), 2u);
  // The outer phase encloses both inner phases.
  EXPECT_GE(R.timers().at("outer").sum(), R.timers().at("inner").sum());
}

TEST(Metrics, DisabledRegistryStaysEmpty) {
  Registry R; // disabled by default
  EXPECT_FALSE(R.enabled());
  { ScopedTimer T("never", R); }
  EXPECT_TRUE(R.empty()); // the disabled path allocates nothing
}

// -- DecisionLog -------------------------------------------------------------

TEST(DecisionLog, QueriesByBranchAndAction) {
  DecisionLog L;
  L.add({3, "loop", DecisionAction::Applied, 100, 12, "ok"});
  L.add({5, "correlated", DecisionAction::SkippedBudget, 50, 90, "too big"});
  L.add({3, "profile", DecisionAction::KeptProfile, 0, 0, "fallback"});
  EXPECT_EQ(L.size(), 3u);
  EXPECT_EQ(L.countAction(DecisionAction::Applied), 1u);
  EXPECT_EQ(L.countAction(DecisionAction::SkippedGain), 0u);
  auto For3 = L.forBranch(3);
  ASSERT_EQ(For3.size(), 2u);
  EXPECT_EQ(For3[0]->Strategy, "loop");   // pipeline order preserved
  EXPECT_EQ(For3[1]->Strategy, "profile");
  EXPECT_TRUE(L.forBranch(99).empty());
}

TEST(DecisionLog, ActionNamesAreStable) {
  // The names are part of the JSON schema; renames are schema breaks.
  EXPECT_STREQ(decisionActionName(DecisionAction::Applied), "applied");
  EXPECT_STREQ(decisionActionName(DecisionAction::AppliedJoint),
               "applied-joint");
  EXPECT_STREQ(decisionActionName(DecisionAction::KeptProfile),
               "kept-profile");
  EXPECT_STREQ(decisionActionName(DecisionAction::SkippedGain),
               "skipped-gain");
  EXPECT_STREQ(decisionActionName(DecisionAction::SkippedBudget),
               "skipped-budget");
  EXPECT_STREQ(decisionActionName(DecisionAction::SkippedStructure),
               "skipped-structure");
}

// -- Json --------------------------------------------------------------------

TEST(Json, DumpAndParseRoundTripsEveryKind) {
  JsonValue Doc = JsonValue::object();
  Doc.set("null", JsonValue::null());
  Doc.set("t", JsonValue::boolean(true));
  Doc.set("f", JsonValue::boolean(false));
  Doc.set("int", JsonValue::integer(int64_t{-42}));
  Doc.set("big", JsonValue::integer(uint64_t{1} << 60)); // above 2^53
  Doc.set("dbl", JsonValue::number(3.25));
  Doc.set("str", JsonValue::str("he\"llo\n\tworld \\"));
  JsonValue Arr = JsonValue::array();
  Arr.push(JsonValue::integer(int64_t{1}));
  Arr.push(JsonValue::str("two"));
  Doc.set("arr", std::move(Arr));
  JsonValue Nested = JsonValue::object();
  Nested.set("k", JsonValue::number(0.5));
  Doc.set("obj", std::move(Nested));

  for (unsigned Indent : {0u, 2u}) {
    std::string Error;
    JsonValue Back = parseJson(Doc.dump(Indent), Error);
    EXPECT_TRUE(Error.empty()) << Error;
    EXPECT_EQ(Doc, Back);
  }
}

TEST(Json, IntegersAboveDoublePrecisionSurvive) {
  int64_t Exact = (int64_t{1} << 53) + 1; // not representable as double
  std::string Error;
  JsonValue Back = parseJson(std::to_string(Exact), Error);
  ASSERT_TRUE(Error.empty()) << Error;
  EXPECT_EQ(Back.kind(), JsonValue::Kind::Int);
  EXPECT_EQ(Back.asInt(), Exact);
}

TEST(Json, ObjectsPreserveInsertionOrderAndReplace) {
  JsonValue O = JsonValue::object();
  O.set("z", JsonValue::integer(int64_t{1}));
  O.set("a", JsonValue::integer(int64_t{2}));
  O.set("z", JsonValue::integer(int64_t{3})); // replace keeps position
  ASSERT_EQ(O.members().size(), 2u);
  EXPECT_EQ(O.members()[0].first, "z");
  EXPECT_EQ(O.members()[0].second.asInt(), 3);
  EXPECT_EQ(O.members()[1].first, "a");
  ASSERT_NE(O.find("a"), nullptr);
  EXPECT_EQ(O.find("missing"), nullptr);
}

TEST(Json, ParserRejectsMalformedInput) {
  for (const char *Bad : {"", "{", "[1,]", "{\"a\":}", "tru", "1 2",
                          "\"unterminated", "{\"a\" 1}", "nul", "+1",
                          "[1,2,,3]", "{1: 2}"}) {
    std::string Error;
    parseJson(Bad, Error);
    EXPECT_FALSE(Error.empty()) << "accepted: " << Bad;
  }
}

TEST(Json, ParserErrorsNameTheByteOffset) {
  std::string Error;
  parseJson("{\"a\": !}", Error);
  EXPECT_NE(Error.find("byte"), std::string::npos) << Error;
}

TEST(Json, NumericCrossTypeEquality) {
  EXPECT_EQ(JsonValue::integer(int64_t{2}), JsonValue::number(2.0));
  EXPECT_NE(JsonValue::integer(int64_t{2}), JsonValue::number(2.5));
}

TEST(Json, FindNonFinitePathNamesTheMember) {
  EXPECT_EQ(findNonFinitePath(JsonValue::number(1.5)), "");
  EXPECT_EQ(findNonFinitePath(JsonValue::number(std::nan(""))), "<root>");

  JsonValue Doc = JsonValue::object();
  Doc.set("ok", JsonValue::number(0.5));
  JsonValue Inner = JsonValue::object();
  JsonValue Arr = JsonValue::array();
  Arr.push(JsonValue::number(1.0));
  Arr.push(JsonValue::number(HUGE_VAL));
  Inner.set("samples", std::move(Arr));
  Doc.set("metrics", std::move(Inner));
  EXPECT_EQ(findNonFinitePath(Doc), "metrics.samples.1");

  // Integers can't be non-finite; a clean document reports nothing.
  JsonValue Clean = JsonValue::object();
  Clean.set("n", JsonValue::integer(int64_t{7}));
  EXPECT_EQ(findNonFinitePath(Clean), "");
}

// -- Report ------------------------------------------------------------------

TEST(Report, MetricsJsonShape) {
  // A private registry per test keeps cases independent of the global one.
  Registry R;
  R.setEnabled(true);
  R.counter("c.events").add(7);
  R.gauge("g.rate").set(1.5);
  R.histogram("h.sizes").record(3.0);
  R.timer("p.phase").record(1000.0);

  JsonValue M = metricsJson(R);
  ASSERT_NE(M.find("counters"), nullptr);
  EXPECT_EQ(M.find("counters")->find("c.events")->asInt(), 7);
  EXPECT_DOUBLE_EQ(M.find("gauges")->find("g.rate")->asDouble(), 1.5);
  const JsonValue *H = M.find("histograms")->find("h.sizes");
  ASSERT_NE(H, nullptr);
  EXPECT_EQ(H->find("count")->asInt(), 1);
  const JsonValue *P = M.find("phases")->find("p.phase");
  ASSERT_NE(P, nullptr);
  EXPECT_DOUBLE_EQ(P->find("total_ns")->asDouble(), 1000.0);
}

TEST(Report, BuildReportRoundTripsThroughParser) {
  // A private registry per test keeps cases independent of the global one.
  Registry R;
  R.setEnabled(true);
  R.counter("interp.instructions").add(12345);
  ReportMeta Meta;
  Meta.Tool = "test";
  Meta.Command = "unit";
  Meta.Workload = "compress";
  Meta.Seed = 1;
  Meta.Events = 1000;

  JsonValue Report = buildReport(Meta, R);
  std::string Error;
  JsonValue Back = parseJson(Report.dump(), Error);
  ASSERT_TRUE(Error.empty()) << Error;
  EXPECT_EQ(Report, Back);
  EXPECT_EQ(Back.find("schema_version")->asInt(), ReportSchemaVersion);
  EXPECT_EQ(Back.find("tool")->asString(), "test");
  EXPECT_EQ(Back.find("workload")->asString(), "compress");
  EXPECT_EQ(
      Back.find("metrics")->find("counters")->find("interp.instructions")
          ->asInt(),
      12345);
}

TEST(Report, WriteReportFileFailsWithDescriptiveError) {
  std::string Error;
  EXPECT_FALSE(writeReportFile("/nonexistent/dir/report.json",
                               JsonValue::object(), Error));
  EXPECT_NE(Error.find("/nonexistent/dir/report.json"), std::string::npos)
      << Error;
}

TEST(Report, WriteReportFileRejectsNonFiniteNumbers) {
  JsonValue Doc = JsonValue::object();
  JsonValue Gauges = JsonValue::object();
  Gauges.set("bad.rate", JsonValue::number(std::nan("")));
  Doc.set("gauges", std::move(Gauges));

  // Rejected before any I/O, so even a writable path fails with an error
  // naming the offending member.
  std::string Error;
  EXPECT_FALSE(writeReportFile("/tmp/bpcr_nonfinite_report.json", Doc, Error));
  EXPECT_NE(Error.find("non-finite"), std::string::npos) << Error;
  EXPECT_NE(Error.find("gauges.bad.rate"), std::string::npos) << Error;
}

// -- Compare: branches section flattening ------------------------------------

TEST(Compare, FlattensBranchesLeavesButNotTopArray) {
  AttributionLedger L;
  L.resize(2);
  L.branch(0).Strategy = "profile";
  L.branch(0).MeasuredExecutions = 100;
  L.branch(0).Mispredictions = 25;
  L.branch(1).Strategy = "loop";
  L.branch(1).MeasuredExecutions = 40;
  L.branch(1).Mispredictions = 4;

  JsonValue Report = JsonValue::object();
  Report.set("schema_version",
             JsonValue::integer(int64_t{ReportSchemaVersion}));
  Report.set("branches", attributionJson(L, 10));

  auto Flat = flattenReportMetrics(Report);
  auto Value = [&](const std::string &Name) -> const double * {
    for (const auto &[N, V] : Flat)
      if (N == Name)
        return &V;
    return nullptr;
  };
  const double *Miss0 = Value("branches.by_id.0.miss_rate_percent");
  ASSERT_NE(Miss0, nullptr);
  EXPECT_NEAR(*Miss0, 25.0, 1e-9);
  ASSERT_NE(Value("branches.total_mispredictions"), nullptr);
  ASSERT_NE(Value("branches.coverage_percent"), nullptr);
  // The ordering-churn-prone Pareto array stays out of the gated set.
  for (const auto &[N, V] : Flat)
    EXPECT_EQ(N.find("branches.top."), std::string::npos) << N;

  // Identical reports gate clean under the default rules.
  CompareResult CR = compareReports(Report, Report, CompareOptions());
  EXPECT_TRUE(CR.ok());
}

TEST(Compare, FlattensTimelineLeavesButNotWindowsArray) {
  TimeSeries TS;
  for (uint64_t I = 0; I < 2048; ++I)
    TS.record(I, 0, I % 2 == 0, I % 4 == 0);

  JsonValue Report = JsonValue::object();
  Report.set("schema_version",
             JsonValue::integer(int64_t{ReportSchemaVersion}));
  Report.set("timeline", timelineJson(TS.take(), {}));

  auto Flat = flattenReportMetrics(Report);
  bool SawMissRate = false;
  for (const auto &[N, V] : Flat) {
    SawMissRate |= N == "timeline.miss_rate_percent";
    // The per-window plot data stays out of the gated set.
    EXPECT_EQ(N.find("timeline.windows"), std::string::npos) << N;
  }
  EXPECT_TRUE(SawMissRate);

  CompareResult CR = compareReports(Report, Report, CompareOptions());
  EXPECT_TRUE(CR.ok());
}

namespace {

/// A minimal profile section: one category, one site, one RSS sample and
/// one allocator pool — enough to exercise every flattening shape.
JsonValue profileReportWith(uint64_t Opened, uint64_t SelfWallNs) {
  ProfileData P;
  ProfileCategoryStats C;
  C.Category = "search";
  C.Opened = Opened;
  C.Recorded = Opened;
  C.TotalWallNs = SelfWallNs + 1000;
  C.SelfWallNs = SelfWallNs;
  P.Categories.push_back(C);
  ProfileSiteStats S;
  S.Category = "search";
  S.Name = "search.ladder";
  S.Count = Opened;
  S.TotalWallNs = SelfWallNs + 1000;
  S.SelfWallNs = SelfWallNs;
  P.Sites.push_back(S);
  RssSample R;
  R.Label = "pipeline.start";
  R.Ns = 10;
  R.RssBytes = 1 << 20;
  P.RssSamples.push_back(R);
  P.PeakRssBytes = 2u << 20;
  ProfileAllocStats A;
  A.Tag = "ladder";
  A.Stats.Allocs = 3;
  A.Stats.BytesAllocated = 128;
  P.Allocs.push_back(A);

  JsonValue Report = JsonValue::object();
  Report.set("schema_version",
             JsonValue::integer(int64_t{ReportSchemaVersion}));
  Report.set("profile", profileJson(P));
  return Report;
}

} // namespace

TEST(Compare, FlattensProfileLeavesButNotRssArray) {
  JsonValue Report = profileReportWith(10, 4000);
  auto Flat = flattenReportMetrics(Report);
  auto Value = [&](const std::string &Name) -> const double * {
    for (const auto &[N, V] : Flat)
      if (N == Name)
        return &V;
    return nullptr;
  };
  const double *Opened = Value("profile.categories.search.opened");
  ASSERT_NE(Opened, nullptr);
  EXPECT_NEAR(*Opened, 10.0, 1e-9);
  ASSERT_NE(Value("profile.memory.peak_rss_bytes"), nullptr);
  ASSERT_NE(Value("profile.memory.allocs.ladder.allocs"), nullptr);
  // The RSS sample log is plot data and stays out of the gated set, like
  // every array.
  for (const auto &[N, V] : Flat)
    EXPECT_EQ(N.find("rss_samples"), std::string::npos) << N;

  CompareResult CR = compareReports(Report, Report, CompareOptions());
  EXPECT_TRUE(CR.ok());
}

TEST(Compare, DefaultRulesGateOpenedCountsButSkipProfileTimes) {
  JsonValue Old = profileReportWith(10, 4000);

  // Times drifting (here 2x) is run-to-run noise: report-only.
  CompareResult Drift =
      compareReports(Old, profileReportWith(10, 8000), CompareOptions());
  EXPECT_TRUE(Drift.ok());

  // The schedule-independent opened count moving at all is a regression.
  CompareResult Moved =
      compareReports(Old, profileReportWith(11, 4000), CompareOptions());
  EXPECT_FALSE(Moved.ok());
  bool SawOpenedRule = false;
  for (const MetricDelta &D : Moved.Deltas)
    if (D.Name == "profile.categories.search.opened") {
      EXPECT_TRUE(D.Regressed);
      EXPECT_EQ(D.RulePattern, "profile.categories.*.opened");
      SawOpenedRule = true;
    }
  EXPECT_TRUE(SawOpenedRule);
}

TEST(Compare, PoolGaugesAreReportOnlyByDefault) {
  auto ReportWith = [](double Utilization, double Other) {
    JsonValue Gauges = JsonValue::object();
    Gauges.set("pool.utilization_percent", JsonValue::number(Utilization));
    Gauges.set("pool.queue_depth_hwm", JsonValue::number(Utilization));
    Gauges.set("search.quality", JsonValue::number(Other));
    JsonValue Metrics = JsonValue::object();
    Metrics.set("gauges", Gauges);
    JsonValue Report = JsonValue::object();
    Report.set("schema_version",
               JsonValue::integer(int64_t{ReportSchemaVersion}));
    Report.set("metrics", Metrics);
    return Report;
  };

  // Utilization swings are runner noise: skipped by gauges.pool.*.
  CompareResult PoolOnly =
      compareReports(ReportWith(10.0, 5.0), ReportWith(90.0, 5.0),
                     CompareOptions());
  EXPECT_TRUE(PoolOnly.ok());

  // Control: a non-pool gauge moving past the default band still fails,
  // proving the pass above came from the pool skip rule.
  CompareResult Control =
      compareReports(ReportWith(10.0, 5.0), ReportWith(10.0, 10.0),
                     CompareOptions());
  EXPECT_FALSE(Control.ok());
}

TEST(Compare, ResultJsonCarriesDeltasAndSpellsInfinity) {
  CompareResult R;
  MetricDelta Grew;
  Grew.Name = "counters.interp.instructions";
  Grew.Old = 0.0;
  Grew.New = 10.0;
  Grew.RelDelta = HUGE_VAL;
  Grew.RulePattern = "counters.*";
  Grew.Regressed = true;
  R.Deltas.push_back(Grew);
  R.Regressions = 1;

  JsonValue J = compareResultJson(R);
  EXPECT_FALSE(J.find("ok")->asBool());
  EXPECT_EQ(J.find("regressions")->asInt(), 1);
  const JsonValue &D = J.find("deltas")->at(0);
  EXPECT_EQ(D.find("status")->asString(), "fail");
  // JSON has no infinity; the divide-by-zero delta round-trips as a string.
  EXPECT_EQ(D.find("rel_delta")->asString(), "inf");
  // The spelled-out infinity keeps the document parseable.
  std::string Error;
  JsonValue Back = parseJson(J.dump(2), Error);
  EXPECT_TRUE(Error.empty()) << Error;
  EXPECT_EQ(J, Back);
}

namespace {

/// A two-counter report for the threshold-rule edge-case tests.
JsonValue countersReport(double A, double B) {
  JsonValue Counters = JsonValue::object();
  Counters.set("search.steps", JsonValue::number(A));
  Counters.set("searchXsteps", JsonValue::number(B));
  JsonValue Metrics = JsonValue::object();
  Metrics.set("counters", Counters);
  JsonValue Report = JsonValue::object();
  Report.set("schema_version",
             JsonValue::integer(int64_t{ReportSchemaVersion}));
  Report.set("metrics", Metrics);
  return Report;
}

} // namespace

TEST(Compare, OverlappingGlobsFirstMatchWins) {
  // Both rules match counters.search.steps; the earlier (tighter) one must
  // decide the verdict even though the later one would allow the delta.
  CompareOptions Opts;
  CompareRule Tight;
  Tight.Pattern = "counters.search.*";
  Tight.MaxRelDelta = 0.0;
  CompareRule Loose;
  Loose.Pattern = "counters.*";
  Loose.MaxRelDelta = 10.0;
  Opts.Rules = {Tight, Loose};

  CompareResult R =
      compareReports(countersReport(100, 5), countersReport(110, 5), Opts);
  EXPECT_FALSE(R.ok());
  for (const MetricDelta &D : R.Deltas)
    if (D.Name == "counters.search.steps") {
      EXPECT_EQ(D.RulePattern, "counters.search.*");
      EXPECT_TRUE(D.Regressed);
    }

  // Reversed order: the loose rule is checked first and absorbs the delta.
  Opts.Rules = {Loose, Tight};
  CompareResult R2 =
      compareReports(countersReport(100, 5), countersReport(110, 5), Opts);
  EXPECT_TRUE(R2.ok());
}

TEST(Compare, GlobStarCrossesDotsAndDotIsLiteral) {
  // '*' is a substring wildcard, not a path segment: counters.search.*
  // must not leak onto counters.searchXsteps, and the '.' in a pattern
  // matches only a literal dot (it is not a regex any-char).
  EXPECT_TRUE(globMatch("counters.search.*", "counters.search.steps"));
  EXPECT_TRUE(globMatch("counters.*", "counters.search.cache.hits"));
  EXPECT_FALSE(globMatch("counters.search.*", "counters.searchXsteps"));
  EXPECT_FALSE(globMatch("counters.search.steps", "countersXsearchXsteps"));
  // '*' may match the empty string, including mid-pattern and at the ends.
  EXPECT_TRUE(globMatch("*", ""));
  EXPECT_TRUE(globMatch("a*b", "ab"));
  EXPECT_TRUE(globMatch("*a*", "a"));

  // End to end: a rule skipping counters.search.* leaves searchXsteps on
  // the exact default rule, which flags its drift.
  CompareOptions Opts;
  CompareRule Skip;
  Skip.Pattern = "counters.search.*";
  Skip.Skip = true;
  Opts.Rules = {Skip};
  CompareResult R =
      compareReports(countersReport(100, 5), countersReport(200, 6), Opts);
  EXPECT_FALSE(R.ok());
  for (const MetricDelta &D : R.Deltas) {
    if (D.Name == "counters.search.steps") {
      EXPECT_TRUE(D.Skipped);
    }
    if (D.Name == "counters.searchXsteps") {
      EXPECT_FALSE(D.Skipped);
      EXPECT_TRUE(D.Regressed);
    }
  }
}

TEST(Compare, RuleMatchingNoMetricsWarnsInsteadOfPassingSilently) {
  // A typo'd pattern gates nothing; that must be visible, not a silent
  // pass.
  CompareOptions Opts;
  CompareRule Typo;
  Typo.Pattern = "counters.saerch.*"; // note the transposition
  Typo.MaxRelDelta = 0.5;
  Opts.Rules = {Typo};
  CompareResult R =
      compareReports(countersReport(100, 5), countersReport(100, 5), Opts);
  EXPECT_TRUE(R.ok()); // a warning, not an error
  ASSERT_EQ(R.Warnings.size(), 1u);
  EXPECT_NE(R.Warnings[0].find("'counters.saerch.*' matched no metrics"),
            std::string::npos)
      << R.Warnings[0];

  // Control: the same rule spelled right matches and draws no warning.
  Opts.Rules[0].Pattern = "counters.search.*";
  CompareResult R2 =
      compareReports(countersReport(100, 5), countersReport(100, 5), Opts);
  EXPECT_TRUE(R2.Warnings.empty());
}

TEST(Compare, DifferingSchemaVersionsWarnButStillDiff) {
  // v2 vs v4 reports share most metric names; the diff proceeds with a
  // warning instead of erroring out (satellite of the ledger work: old
  // ledger records replay through compare).
  JsonValue Old = countersReport(100, 5);
  Old.set("schema_version", JsonValue::integer(int64_t{2}));
  JsonValue New = countersReport(100, 5);

  CompareResult R = compareReports(Old, New, CompareOptions());
  EXPECT_TRUE(R.Errors.empty());
  EXPECT_TRUE(R.ok());
  bool SawSchemaNote = false;
  for (const std::string &W : R.Warnings)
    SawSchemaNote |= W.find("schema versions differ: old=2 new=4") !=
                     std::string::npos;
  EXPECT_TRUE(SawSchemaNote);

  // Out-of-range versions are still structural errors.
  Old.set("schema_version", JsonValue::integer(int64_t{0}));
  CompareResult Bad = compareReports(Old, New, CompareOptions());
  EXPECT_FALSE(Bad.Errors.empty());
}

// -- End-to-end pipeline report ----------------------------------------------

TEST(Report, PipelineRunProducesPhasesAndDecisions) {
  Registry &G = Registry::global();
  G.clear();
  G.setEnabled(true);

  Module M;
  Trace T = traceWorkload(workloadNamed("compress"), 1, M, 20'000);
  PipelineOptions Opts;
  Opts.Strategy.MaxStates = 6;
  Opts.Strategy.NodeBudget = 30'000;
  PipelineResult PR = replicateModule(M, T, Opts);

  // Every phase timer fired exactly once for this single run.
  for (const char *Phase :
       {"pipeline.phase.loop_analysis", "pipeline.phase.profiling",
        "pipeline.phase.machine_search", "pipeline.phase.joint_planning",
        "pipeline.phase.replication", "pipeline.phase.annotation",
        "pipeline.phase.attribution"}) {
    ASSERT_EQ(G.timers().count(Phase), 1u) << Phase;
    EXPECT_EQ(G.timers().at(Phase).count(), 1u) << Phase;
  }
  EXPECT_EQ(G.counter("pipeline.runs").value(), 1u);
  EXPECT_GT(G.counter("interp.instructions").value(), 0u);
  EXPECT_GT(G.counter("interp.branch_events").value(), 0u);

  // Every static branch got at least one decision record, each with a
  // non-empty reason.
  ASSERT_FALSE(PR.Decisions.empty());
  for (const BranchDecision &D : PR.Decisions.all()) {
    EXPECT_GE(D.BranchId, 0);
    EXPECT_FALSE(D.Strategy.empty());
    EXPECT_FALSE(D.Reason.empty());
  }

  // The full report serializes and parses back with the pipeline section.
  ReportMeta Meta;
  Meta.Command = "replicate";
  Meta.Workload = "compress";
  JsonValue Report = buildReport(Meta, G, &PR);
  std::string Error;
  JsonValue Back = parseJson(Report.dump(), Error);
  ASSERT_TRUE(Error.empty()) << Error;
  const JsonValue *Pipeline = Back.find("pipeline");
  ASSERT_NE(Pipeline, nullptr);
  EXPECT_EQ(Pipeline->find("decisions")->size(), PR.Decisions.size());
  ASSERT_NE(Pipeline->find("code_size"), nullptr);
  EXPECT_GT(Pipeline->find("code_size")->find("factor")->asDouble(), 0.0);

  // The attribution ledger filled and surfaced as the "branches" section.
  ASSERT_FALSE(PR.Attribution.empty());
  const JsonValue *Branches = Back.find("branches");
  ASSERT_NE(Branches, nullptr);
  EXPECT_EQ(Branches->find("branches_total")->asInt(),
            static_cast<int64_t>(PR.Attribution.size()));
  EXPECT_GT(Branches->find("total_executions")->asInt(), 0);

  G.clear();
  G.setEnabled(false);
}

TEST(Report, DisabledGlobalRegistryRecordsNothing) {
  Registry &G = Registry::global();
  G.clear();
  G.setEnabled(false);

  Module M;
  Trace T = traceWorkload(workloadNamed("compress"), 1, M, 5'000);
  PipelineOptions Opts;
  Opts.Strategy.MaxStates = 4;
  Opts.Strategy.NodeBudget = 10'000;
  PipelineResult PR = replicateModule(M, T, Opts);

  // Metrics are off; the decision log is part of the result and still
  // fills, but the attribution ledger (which costs an extra execution of
  // the transformed module) stays empty.
  EXPECT_TRUE(G.empty());
  EXPECT_FALSE(PR.Decisions.empty());
  EXPECT_TRUE(PR.Attribution.empty());
}
