//===- tests/test_predict.cpp - Predictor zoo tests -----------------------===//
//
// Part of the bpcr project (Krall, PLDI 1994 reproduction).
//
//===----------------------------------------------------------------------===//

#include "predict/DynamicPredictors.h"
#include "predict/Evaluator.h"
#include "predict/SemiStaticPredictors.h"
#include "predict/StaticHeuristics.h"

#include "interp/Interpreter.h"
#include "ir/IRBuilder.h"
#include "support/Rng.h"
#include "trace/Sinks.h"

#include <gtest/gtest.h>

using namespace bpcr;

namespace {

/// One branch alternating T,N,T,N...
Trace alternating(int32_t Id, size_t N) {
  Trace T;
  for (size_t I = 0; I < N; ++I)
    T.push_back({Id, I % 2 == 0});
  return T;
}

/// One branch with a fixed direction.
Trace constant(int32_t Id, size_t N, bool Taken) {
  Trace T(N, BranchEvent{Id, Taken});
  return T;
}

/// Branch 1 copies the previous outcome of branch 0; branch 0 is random.
Trace correlatedPair(size_t N, uint64_t Seed) {
  Rng G(Seed);
  Trace T;
  for (size_t I = 0; I < N; ++I) {
    bool A = G.chance(1, 2);
    T.push_back({0, A});
    T.push_back({1, A});
  }
  return T;
}

} // namespace

// -- Dynamic predictors ----------------------------------------------------------

TEST(LastDirection, PerfectOnConstantBranch) {
  LastDirectionPredictor P;
  PredictionStats S = evaluatePredictor(P, constant(3, 1000, true));
  EXPECT_EQ(S.Mispredictions, 0u);
}

TEST(LastDirection, WorstCaseOnAlternating) {
  LastDirectionPredictor P;
  PredictionStats S = evaluatePredictor(P, alternating(0, 1000));
  // After the first outcome it is always wrong.
  EXPECT_GE(S.Mispredictions, 999u);
}

TEST(Counter, TwoBitAbsorbsRareFlips) {
  CounterPredictor P(2);
  Trace T;
  for (int I = 0; I < 1000; ++I)
    T.push_back({0, I % 10 != 9}); // one not-taken in ten
  PredictionStats S = evaluatePredictor(P, T);
  // The 2-bit counter never flips its prediction on isolated outliers.
  EXPECT_LE(S.mispredictionPercent(), 11.0);
  LastDirectionPredictor L;
  PredictionStats SL = evaluatePredictor(L, T);
  EXPECT_LT(S.Mispredictions, SL.Mispredictions);
}

TEST(Counter, IndependentPerBranch) {
  CounterPredictor P(2);
  Trace T;
  for (int I = 0; I < 100; ++I) {
    T.push_back({0, true});
    T.push_back({1, false});
  }
  PredictionStats S = evaluatePredictor(P, T);
  // Both branches converge to their direction after warmup.
  EXPECT_LE(S.Mispredictions, 4u);
}

TEST(TwoLevel, LearnsAlternation) {
  TwoLevelPredictor P; // paper default: per-branch history, global table
  PredictionStats S = evaluatePredictor(P, alternating(5, 2000));
  EXPECT_LT(S.mispredictionPercent(), 2.0);
}

TEST(TwoLevel, LearnsPeriodicPattern) {
  TwoLevelPredictor P;
  Trace T;
  for (int I = 0; I < 3000; ++I)
    T.push_back({0, (I % 3) != 0}); // N,T,T repeating
  PredictionStats S = evaluatePredictor(P, T);
  EXPECT_LT(S.mispredictionPercent(), 2.0);
}

TEST(TwoLevel, GlobalHistoryCapturesCorrelation) {
  TwoLevelConfig Cfg;
  Cfg.HistoryScope = Scope::Global;
  Cfg.PatternScope = Scope::PerBranch;
  Cfg.HistoryBits = 4;
  TwoLevelPredictor P(Cfg);
  PredictionStats S = evaluatePredictor(P, correlatedPair(4000, 3));
  // Branch 1 is perfectly determined by the global history; branch 0 is a
  // coin flip, so the overall rate approaches 25%.
  EXPECT_LT(S.mispredictionPercent(), 30.0);
  EXPECT_GT(S.mispredictionPercent(), 20.0);
}

TEST(TwoLevel, NamesEncodeConfiguration) {
  TwoLevelConfig Cfg;
  Cfg.HistoryScope = Scope::Global;
  Cfg.PatternScope = Scope::Set;
  TwoLevelPredictor P(Cfg);
  EXPECT_EQ(P.name(), "two level GAs h9");
}

// All nine Yeh/Patt combinations behave sanely on a mixed trace.
class TwoLevelScopes
    : public ::testing::TestWithParam<std::tuple<Scope, Scope>> {};

TEST_P(TwoLevelScopes, ReasonableOnMixedTrace) {
  auto [HS, PS] = GetParam();
  TwoLevelConfig Cfg;
  Cfg.HistoryScope = HS;
  Cfg.PatternScope = PS;
  Cfg.HistoryBits = 6;
  TwoLevelPredictor P(Cfg);
  Rng G(7);
  Trace T;
  for (int I = 0; I < 5000; ++I) {
    T.push_back({0, I % 2 == 0});                      // alternating
    T.push_back({1, true});                            // constant
    T.push_back({2, G.chance(9, 10)});                 // biased
  }
  PredictionStats S = evaluatePredictor(P, T);
  // Alternating + constant are learnable; biased gives ~10% on a third of
  // the trace. Anything above 15% overall means the predictor is broken.
  EXPECT_LT(S.mispredictionPercent(), 15.0);
}

INSTANTIATE_TEST_SUITE_P(
    AllScopes, TwoLevelScopes,
    ::testing::Combine(::testing::Values(Scope::Global, Scope::Set,
                                         Scope::PerBranch),
                       ::testing::Values(Scope::Global, Scope::Set,
                                         Scope::PerBranch)));

// -- Semi-static predictors --------------------------------------------------------

TEST(Profile, PredictsMajorityDirection) {
  ProfilePredictor P;
  Trace T;
  for (int I = 0; I < 100; ++I)
    T.push_back({0, I < 70});
  PredictionStats S = evaluateSelfTrained(P, T);
  EXPECT_EQ(S.Mispredictions, 30u);
}

TEST(Profile, AlternatingIsitsWorstCase) {
  ProfilePredictor P;
  PredictionStats S = evaluateSelfTrained(P, alternating(0, 1000));
  EXPECT_EQ(S.Mispredictions, 500u);
}

TEST(LoopHistory, SolvesAlternation) {
  LoopHistoryPredictor P(1);
  PredictionStats S = evaluateSelfTrained(P, alternating(0, 1000));
  // One bit of local history fully determines the next outcome.
  EXPECT_LE(S.mispredictionPercent(), 1.0);
}

TEST(LoopHistory, NineBitSolvesLongPeriods) {
  LoopHistoryPredictor P(9);
  Trace T;
  for (int I = 0; I < 5000; ++I)
    T.push_back({0, (I % 7) != 0});
  PredictionStats S = evaluateSelfTrained(P, T);
  EXPECT_LE(S.mispredictionPercent(), 1.0);
}

TEST(Correlation, OneBitGlobalSolvesCopyBranch) {
  CorrelationPredictor P(1);
  PredictionStats S = evaluateSelfTrained(P, correlatedPair(4000, 11));
  // Branch 1 is perfectly predicted from branch 0's outcome; branch 0 is a
  // coin flip -> overall ~25%.
  EXPECT_LT(S.mispredictionPercent(), 27.0);
}

TEST(Correlation, ProfileCannotSolveCopyBranch) {
  ProfilePredictor P;
  PredictionStats S = evaluateSelfTrained(P, correlatedPair(4000, 11));
  EXPECT_GT(S.mispredictionPercent(), 45.0);
}

TEST(LoopCorrelation, PicksTheBetterSchemePerBranch) {
  LoopCorrelationPredictor P;
  // Branch 0 random, branch 1 copies it (correlation wins); branch 2
  // alternates (loop history wins).
  Rng G(5);
  Trace T;
  for (int I = 0; I < 3000; ++I) {
    bool A = G.chance(1, 2);
    T.push_back({0, A});
    T.push_back({1, A});
    T.push_back({2, I % 2 == 0});
  }
  PredictionStats S = evaluateSelfTrained(P, T);
  EXPECT_FALSE(P.usesLoopScheme(1));
  EXPECT_TRUE(P.usesLoopScheme(2));
  // Only branch 0 remains unpredictable: ~1/6 of events.
  EXPECT_LT(S.mispredictionPercent(), 20.0);
}

TEST(LoopCorrelation, CountsImprovedBranches) {
  LoopCorrelationPredictor P;
  Trace T = alternating(0, 500);
  Trace C = constant(1, 500, true);
  T.insert(T.end(), C.begin(), C.end());
  P.train(T);
  // The alternating branch improves over profile; the constant one cannot.
  EXPECT_EQ(P.improvedBranchCount(), 1u);
}

// -- Train/test split (dataset sensitivity) -----------------------------------------

TEST(Evaluator, CrossDatasetDegradesGracefully) {
  // Bias direction agrees across datasets; rates may differ.
  Rng G1(1), G2(2);
  Trace Train, Test;
  for (int I = 0; I < 2000; ++I) {
    Train.push_back({0, G1.chance(8, 10)});
    Test.push_back({0, G2.chance(7, 10)});
  }
  ProfilePredictor P;
  PredictionStats S = evaluateTrained(P, Train, Test);
  // Majority direction transfers: misprediction ~30%, not ~70%.
  EXPECT_LT(S.mispredictionPercent(), 40.0);
}

TEST(Evaluator, PerBranchSplitsAgreeWithTotal) {
  LastDirectionPredictor P;
  Trace T = correlatedPair(500, 9);
  PredictionStats Total = evaluatePredictor(P, T);
  P.reset();
  auto Per = evaluatePredictorPerBranch(P, T, 2);
  EXPECT_EQ(Per[0].Predictions + Per[1].Predictions, Total.Predictions);
  EXPECT_EQ(Per[0].Mispredictions + Per[1].Mispredictions,
            Total.Mispredictions);
}

// -- Static heuristics ---------------------------------------------------------------

namespace {

Operand Rg(Reg X) { return Operand::reg(X); }
Operand Km(int64_t V) { return Operand::imm(V); }

/// A loop whose header branch exits on not-taken, plus a guard branch whose
/// true side stores.
Module heuristicModule() {
  Module M;
  M.MemWords = 8;
  uint32_t Main = M.addFunction("main", 0);
  IRBuilder B(M, Main);
  Reg I = B.newReg(), C = B.newReg();
  uint32_t Entry = B.newBlock("entry");
  uint32_t Header = B.newBlock("header");
  uint32_t Body = B.newBlock("body");
  uint32_t StoreSide = B.newBlock("store_side");
  uint32_t Quiet = B.newBlock("quiet");
  uint32_t Latch = B.newBlock("latch");
  uint32_t Exit = B.newBlock("exit");
  B.setInsertPoint(Entry);
  B.movImm(I, 0);
  B.jmp(Header);
  B.setInsertPoint(Header);
  B.cmpLt(C, Rg(I), Km(100));
  B.br(Rg(C), Body, Exit);
  B.setInsertPoint(Body);
  B.band(C, Rg(I), Km(7));
  B.cmpEq(C, Rg(C), Km(0));
  B.br(Rg(C), StoreSide, Quiet);
  B.setInsertPoint(StoreSide);
  B.store(Km(0), Km(0), Rg(I));
  B.jmp(Latch);
  B.setInsertPoint(Quiet);
  B.jmp(Latch);
  B.setInsertPoint(Latch);
  B.add(I, Rg(I), Km(1));
  B.jmp(Header);
  B.setInsertPoint(Exit);
  B.ret(Rg(I));
  M.assignBranchIds();
  return M;
}

} // namespace

TEST(StaticHeuristics, AlwaysTakenPredictsEverythingTaken) {
  Module M = heuristicModule();
  StaticPredictions P = predictAlwaysTaken(M);
  for (Prediction Pr : P)
    EXPECT_EQ(Pr, Prediction::Taken);
}

TEST(StaticHeuristics, BackwardTakenSeparatesDirections) {
  Module M = heuristicModule();
  StaticPredictions P = predictBackwardTaken(M);
  // Branch 0 (header -> body/exit): body is a later block -> forward ->
  // not taken under BTFN.
  EXPECT_EQ(P[0], Prediction::NotTaken);
}

TEST(StaticHeuristics, BallLarusLoopHeuristicKeepsLoop) {
  Module M = heuristicModule();
  StaticPredictions P = predictBallLarus(M);
  // The header branch stays in the loop on taken.
  EXPECT_EQ(P[0], Prediction::Taken);
  // The guard compares == 0 -> opcode heuristic says not taken; the store
  // heuristic agrees (true side stores).
  EXPECT_EQ(P[1], Prediction::NotTaken);
}

TEST(StaticHeuristics, EvaluationAgainstRealExecution) {
  Module M = heuristicModule();
  CollectingSink Sink;
  ASSERT_TRUE(execute(M, &Sink).Ok);
  const Trace &T = Sink.trace();
  PredictionStats BL =
      evaluateStaticPredictions(predictBallLarus(M), T);
  PredictionStats AT =
      evaluateStaticPredictions(predictAlwaysTaken(M), T);
  // Ball-Larus must beat blind always-taken on this loop.
  EXPECT_LT(BL.Mispredictions, AT.Mispredictions);
}

TEST(StaticHeuristics, PointerHeuristicUsesPtrCmpFlag) {
  Module M;
  M.MemWords = 1;
  uint32_t Main = M.addFunction("main", 0);
  IRBuilder B(M, Main);
  Reg C = B.newReg();
  uint32_t Entry = B.newBlock("entry");
  uint32_t A = B.newBlock("a");
  uint32_t Bb = B.newBlock("b");
  B.setInsertPoint(Entry);
  B.cmp(Opcode::CmpEq, C, Km(1), Km(2), /*PtrCmp=*/true);
  B.br(Rg(C), A, Bb);
  B.setInsertPoint(A);
  B.ret(Km(0));
  B.setInsertPoint(Bb);
  B.ret(Km(1));
  M.assignBranchIds();
  StaticPredictions P = predictBallLarus(M);
  EXPECT_EQ(P[0], Prediction::NotTaken); // pointer equality: predict false
}
