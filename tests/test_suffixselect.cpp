//===- tests/test_suffixselect.cpp - Machine-search engine tests ----------===//
//
// Part of the bpcr project (Krall, PLDI 1994 reproduction).
//
//===----------------------------------------------------------------------===//

#include "core/BranchProfiles.h"
#include "core/SuffixSelect.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

using namespace bpcr;

namespace {

ObservedPattern pat(std::initializer_list<uint32_t> Syms, uint64_t Taken,
                    uint64_t NotTaken) {
  ObservedPattern P;
  P.Syms = SymbolString(Syms);
  P.Counts.Taken = Taken;
  P.Counts.NotTaken = NotTaken;
  return P;
}

/// Observed patterns of a perfectly alternating branch with 4-bit history:
/// after ...10 the branch is taken, after ...01 not taken.
std::vector<ObservedPattern> alternatingPatterns(uint64_t N) {
  return {
      pat({1, 0, 1, 0}, N, 0), // last outcome 0 -> next taken
      pat({0, 1, 0, 1}, 0, N), // last outcome 1 -> next not taken
  };
}

} // namespace

TEST(ScoreStateSet, LongestSuffixWins) {
  // States "1" and "01": pattern ...01 must land on "01", not "1".
  std::vector<ObservedPattern> Pats = {pat({0, 0, 0, 1}, 10, 0),
                                       pat({1, 1, 0, 1}, 0, 10)};
  SuffixSelection S = scoreStateSet(Pats, {{1}, {0, 1}});
  // "01" is the longest matching suffix of both patterns -> they merge and
  // split 10/10.
  ASSERT_EQ(S.States.size(), 2u);
  EXPECT_EQ(S.Correct, 10u);
  EXPECT_EQ(S.Total, 20u);
}

TEST(ScoreStateSet, DistinguishingStatesSeparateCounts) {
  std::vector<ObservedPattern> Pats = {pat({0, 0, 0, 1}, 10, 0),
                                       pat({1, 1, 0, 1}, 0, 10)};
  // Adding length-3 states separates the two patterns.
  SuffixSelection S = scoreStateSet(Pats, {{0, 0, 1}, {1, 0, 1}});
  EXPECT_EQ(S.Correct, 20u);
}

TEST(ScoreStateSet, UnmatchedFallsToDefault) {
  std::vector<ObservedPattern> Pats = {pat({1, 1}, 5, 2),
                                       pat({0, 0}, 1, 9)};
  SuffixSelection S = scoreStateSet(Pats, {{1}});
  // {1,1} matches "1"; {0,0} matches nothing -> default predicts not
  // taken.
  EXPECT_EQ(S.DefaultCounts.NotTaken, 9u);
  EXPECT_EQ(S.Correct, 5u + 9u);
}

TEST(ScoreStateSet, EmptyPatternGoesToDefault) {
  std::vector<ObservedPattern> Pats = {pat({}, 3, 7)};
  SuffixSelection S = scoreStateSet(Pats, {{1}});
  EXPECT_EQ(S.DefaultCounts.total(), 10u);
  EXPECT_EQ(S.DefaultPred, 0);
}

TEST(SelectSuffix, TwoStateBaseIsOneBitHistory) {
  SelectOptions Opts;
  Opts.MaxSelected = 2;
  Opts.MaxLen = 4;
  SuffixSelection S =
      selectSuffixStates(alternatingPatterns(100), {{0}, {1}}, Opts);
  // Only the catch-alls fit; they already solve alternation perfectly.
  ASSERT_EQ(S.States.size(), 2u);
  EXPECT_EQ(S.Correct, 200u);
  EXPECT_EQ(S.StatePred[0], 1); // after 0 -> taken
  EXPECT_EQ(S.StatePred[1], 0); // after 1 -> not taken
}

TEST(SelectSuffix, FindsDistinguishingState) {
  // Branch follows a period-3 pattern 0,1,1: after "11" comes 0, after
  // "01" comes 1, after "10" comes 1.
  std::vector<ObservedPattern> Pats = {
      pat({1, 0, 1, 1}, 0, 90), // suffix 11 -> not taken
      pat({0, 1, 1, 0}, 90, 0), // suffix 10 -> taken
      pat({1, 1, 0, 1}, 90, 0), // suffix 01 -> taken
  };
  SelectOptions Opts;
  Opts.MaxSelected = 4;
  Opts.MaxLen = 3;
  SuffixSelection S = selectSuffixStates(Pats, {{0}, {1}}, Opts);
  // With {0,1} alone: state "1" mixes 90T/90N -> 270 correct total is
  // impossible; adding "11" (or "01") separates them for a perfect score.
  EXPECT_EQ(S.Correct, 270u);
  EXPECT_LE(S.States.size(), 4u);
}

TEST(SelectSuffix, RespectsStateBudget) {
  Rng G(3);
  std::vector<ObservedPattern> Pats;
  for (int I = 0; I < 16; ++I)
    Pats.push_back(pat({static_cast<uint32_t>(I >> 3) & 1,
                        static_cast<uint32_t>(I >> 2) & 1,
                        static_cast<uint32_t>(I >> 1) & 1,
                        static_cast<uint32_t>(I) & 1},
                       G.below(100), G.below(100)));
  for (unsigned Budget = 2; Budget <= 6; ++Budget) {
    SelectOptions Opts;
    Opts.MaxSelected = Budget;
    Opts.MaxLen = 4;
    SuffixSelection S = selectSuffixStates(Pats, {{0}, {1}}, Opts);
    EXPECT_LE(S.States.size(), Budget);
  }
}

TEST(SelectSuffix, ScoreIsMonotoneInBudget) {
  Rng G(17);
  std::vector<ObservedPattern> Pats;
  for (int I = 0; I < 16; ++I)
    Pats.push_back(pat({static_cast<uint32_t>(I >> 3) & 1,
                        static_cast<uint32_t>(I >> 2) & 1,
                        static_cast<uint32_t>(I >> 1) & 1,
                        static_cast<uint32_t>(I) & 1},
                       G.below(50), G.below(50)));
  uint64_t Prev = 0;
  for (unsigned Budget = 2; Budget <= 8; ++Budget) {
    SelectOptions Opts;
    Opts.MaxSelected = Budget;
    Opts.MaxLen = 4;
    SuffixSelection S = selectSuffixStates(Pats, {{0}, {1}}, Opts);
    EXPECT_GE(S.Correct, Prev);
    Prev = S.Correct;
  }
}

TEST(SelectSuffix, ExactBeatsOrMatchesGreedy) {
  Rng G(23);
  for (int Round = 0; Round < 10; ++Round) {
    std::vector<ObservedPattern> Pats;
    for (int I = 0; I < 16; ++I)
      Pats.push_back(pat({static_cast<uint32_t>(I >> 3) & 1,
                          static_cast<uint32_t>(I >> 2) & 1,
                          static_cast<uint32_t>(I >> 1) & 1,
                          static_cast<uint32_t>(I) & 1},
                         G.below(100), G.below(100)));
    SelectOptions Greedy;
    Greedy.MaxSelected = 5;
    Greedy.MaxLen = 4;
    Greedy.Exhaustive = false;
    SelectOptions Exact = Greedy;
    Exact.Exhaustive = true;
    uint64_t GS = selectSuffixStates(Pats, {{0}, {1}}, Greedy).Correct;
    uint64_t ES = selectSuffixStates(Pats, {{0}, {1}}, Exact).Correct;
    EXPECT_GE(ES, GS);
  }
}

TEST(SelectSuffix, SuffixClosureHolds) {
  Rng G(29);
  std::vector<ObservedPattern> Pats;
  for (int I = 0; I < 16; ++I)
    Pats.push_back(pat({static_cast<uint32_t>(I >> 3) & 1,
                        static_cast<uint32_t>(I >> 2) & 1,
                        static_cast<uint32_t>(I >> 1) & 1,
                        static_cast<uint32_t>(I) & 1},
                       G.below(100), G.below(100)));
  SelectOptions Opts;
  Opts.MaxSelected = 7;
  Opts.MaxLen = 4;
  SuffixSelection S = selectSuffixStates(Pats, {{0}, {1}}, Opts);
  // Every state's one-shorter suffix must be present.
  auto Has = [&S](const SymbolString &X) {
    for (const SymbolString &St : S.States)
      if (St == X)
        return true;
    return false;
  };
  for (const SymbolString &St : S.States) {
    if (St.size() <= 1)
      continue;
    SymbolString Parent(St.begin() + 1, St.end());
    EXPECT_TRUE(Has(Parent));
  }
}

TEST(SelectSuffix, TotalsAreConserved) {
  std::vector<ObservedPattern> Pats = alternatingPatterns(50);
  Pats.push_back(pat({1, 1, 1, 1}, 7, 3));
  SelectOptions Opts;
  Opts.MaxSelected = 3;
  Opts.MaxLen = 4;
  SuffixSelection S = selectSuffixStates(Pats, {{0}, {1}}, Opts);
  uint64_t Sum = S.DefaultCounts.total();
  for (const DirCounts &C : S.StateCounts)
    Sum += C.total();
  EXPECT_EQ(Sum, S.Total);
  EXPECT_EQ(S.Total, 110u);
  EXPECT_LE(S.Correct, S.Total);
}

TEST(SelectSuffix, NodeBudgetFallsBackGracefully) {
  Rng G(31);
  std::vector<ObservedPattern> Pats;
  for (int I = 0; I < 16; ++I)
    Pats.push_back(pat({static_cast<uint32_t>(I >> 3) & 1,
                        static_cast<uint32_t>(I >> 2) & 1,
                        static_cast<uint32_t>(I >> 1) & 1,
                        static_cast<uint32_t>(I) & 1},
                       G.below(100), G.below(100)));
  SelectOptions Opts;
  Opts.MaxSelected = 6;
  Opts.MaxLen = 4;
  Opts.NodeBudget = 3; // absurdly small
  SuffixSelection S = selectSuffixStates(Pats, {{0}, {1}}, Opts);
  EXPECT_TRUE(S.BudgetExhausted);
  // Still at least as good as the all-catch-all baseline.
  SuffixSelection Base = scoreStateSet(Pats, {{0}, {1}});
  EXPECT_GE(S.Correct, Base.Correct);
}

// -- PatternTable ----------------------------------------------------------------

TEST(PatternTable, RecordsFullPatternsAndMarginals) {
  PatternTable T(3);
  // Outcomes: 1,0,1,1 with zero-filled initial history.
  for (bool O : {true, false, true, true})
    T.record(O);
  // Histories seen: 000,001,010,101.
  EXPECT_EQ(T.full().size(), 4u);
  // Marginal: counts of patterns whose last outcome was 1.
  DirCounts C = T.countsFor(0b1, 1);
  // Histories ending in 1: 001 (outcome 0), 101 (outcome 1).
  EXPECT_EQ(C.Taken, 1u);
  EXPECT_EQ(C.NotTaken, 1u);
}

TEST(PatternTable, DistinctPatternsByWidth) {
  PatternTable T(4);
  for (int I = 0; I < 64; ++I)
    T.record(I % 2 == 0);
  // Steady state alternation: two 4-bit patterns (0101/1010), two 1-bit
  // ones, plus a few warmup artifacts (0000, 0001, 0010).
  EXPECT_LE(T.distinctPatterns(4), 5u);
  EXPECT_GE(T.distinctPatterns(4), 2u);
  EXPECT_EQ(T.distinctPatterns(1), 2u);
}

TEST(ProfileSet, FillRateDropsWithWidth) {
  ProfileSet P(1, 9);
  Trace T;
  Rng G(3);
  for (int I = 0; I < 20000; ++I)
    T.push_back({0, G.chance(1, 2)});
  P.addTrace(T);
  double F1 = P.fillRatePercent(1);
  double F5 = P.fillRatePercent(5);
  double F9 = P.fillRatePercent(9);
  EXPECT_DOUBLE_EQ(F1, 100.0);
  EXPECT_GE(F5, F9); // relative occupancy shrinks with width
  EXPECT_GT(F9, 0.0);
}

TEST(ProfileSet, TracksPerBranchStreams) {
  ProfileSet P(2, 4);
  P.addTrace({{0, true}, {1, false}, {0, true}, {0, false}});
  EXPECT_EQ(P.branch(0).executions(), 3u);
  EXPECT_EQ(P.branch(0).takenCount(), 2u);
  EXPECT_TRUE(P.branch(0).majorityTaken());
  EXPECT_EQ(P.branch(0).profileMispredictions(), 1u);
  EXPECT_EQ(P.branch(1).executions(), 1u);
  EXPECT_EQ(P.executedBranches(), 2u);
  EXPECT_EQ(P.totalExecutions(), 4u);
}

namespace {

/// Brute force: enumerate ALL suffix-closed subsets of candidates up to the
/// budget and return the best assignment score. Only viable for tiny
/// pattern spaces.
uint64_t bruteForceBest(const std::vector<ObservedPattern> &Pats,
                        unsigned MaxSelected, unsigned MaxLen) {
  // Collect candidates (distinct suffixes, len 1..MaxLen), excluding the
  // forced catch-alls {0} and {1}.
  std::vector<SymbolString> Cands;
  auto Has = [&Cands](const SymbolString &S) {
    for (const SymbolString &C : Cands)
      if (C == S)
        return true;
    return false;
  };
  for (const ObservedPattern &P : Pats)
    for (size_t L = 2; L <= std::min<size_t>(P.Syms.size(), MaxLen); ++L) {
      SymbolString S(P.Syms.end() - static_cast<long>(L), P.Syms.end());
      if (!Has(S))
        Cands.push_back(S);
    }

  uint64_t Best = 0;
  size_t N = Cands.size(); // small by construction: 2^N subsets are fine
  for (uint64_t Mask = 0; Mask < (1ull << N); ++Mask) {
    std::vector<SymbolString> Set = {{0}, {1}};
    unsigned Count = 2;
    for (size_t I = 0; I < N; ++I)
      if (Mask & (1ull << I)) {
        Set.push_back(Cands[I]);
        ++Count;
      }
    if (Count > MaxSelected)
      continue;
    // Substring closure (what the machine search enforces): both the
    // drop-oldest suffix and the drop-newest init of every state present.
    bool Closed = true;
    for (const SymbolString &S : Set) {
      if (S.size() <= 1)
        continue;
      SymbolString Parent(S.begin() + 1, S.end());
      SymbolString Init(S.begin(), S.end() - 1);
      bool FoundParent = false, FoundInit = false;
      for (const SymbolString &O : Set) {
        FoundParent |= (O == Parent);
        FoundInit |= (O == Init);
      }
      Closed &= FoundParent && FoundInit;
    }
    if (!Closed)
      continue;
    Best = std::max(Best, scoreStateSet(Pats, Set).Correct);
  }
  return Best;
}

} // namespace

TEST(SelectSuffix, ExactSearchMatchesBruteForce) {
  // Random small tables; the branch-and-bound result must equal the
  // brute-force optimum over all suffix-closed sets.
  for (uint64_t Seed : {101u, 102u, 103u, 104u, 105u}) {
    Rng G(Seed);
    std::vector<ObservedPattern> Pats;
    for (int I = 0; I < 8; ++I) // 3-bit patterns: candidate space ~14
      Pats.push_back(pat({static_cast<uint32_t>(I >> 2) & 1,
                          static_cast<uint32_t>(I >> 1) & 1,
                          static_cast<uint32_t>(I) & 1},
                         G.below(60), G.below(60)));
    for (unsigned Budget : {3u, 4u, 5u}) {
      SelectOptions Opts;
      Opts.MaxSelected = Budget;
      Opts.MaxLen = 3;
      Opts.NodeBudget = 10'000'000;
      Opts.SubstringClosure = true; // what the machine search uses
      SuffixSelection S = selectSuffixStates(Pats, {{0}, {1}}, Opts);
      ASSERT_FALSE(S.BudgetExhausted);
      EXPECT_EQ(S.Correct, bruteForceBest(Pats, Budget, 3))
          << "seed=" << Seed << " budget=" << Budget;
    }
  }
}
