//===- tests/test_sa.cpp - Static analysis framework tests ----------------===//
//
// Part of the bpcr project (Krall, PLDI 1994 reproduction).
//
// Each pass is fed a hand-built module seeded with exactly the defect it
// hunts, and the test asserts the stable fully-qualified rule id — the lint
// output contract that CI SARIF uploads and docs/STATIC_ANALYSIS.md depend
// on. The replication soundness checker is additionally exercised against
// the real pipeline: clean on every workload across a budget/state sweep,
// loud on a corrupted copy->original fold.
//
//===----------------------------------------------------------------------===//

#include "core/Pipeline.h"
#include "ir/IRBuilder.h"
#include "ir/Serializer.h"
#include "ir/Verifier.h"
#include "sa/Baseline.h"
#include "sa/Passes.h"
#include "sa/ReplicationSoundness.h"
#include "workloads/Workload.h"

#include <gtest/gtest.h>

#include <cctype>
#include <random>
#include <string>
#include <vector>

using namespace bpcr;
using sa::Diagnostic;
using sa::Severity;

namespace {

Operand R(Reg X) { return Operand::reg(X); }
Operand K(int64_t V) { return Operand::imm(V); }

size_t countRule(const std::vector<Diagnostic> &Diags,
                 const std::string &FullRuleId) {
  size_t N = 0;
  for (const Diagnostic &D : Diags)
    if (D.fullRuleId() == FullRuleId)
      ++N;
  return N;
}

bool hasRule(const std::vector<Diagnostic> &Diags,
             const std::string &FullRuleId) {
  return countRule(Diags, FullRuleId) > 0;
}

std::string renderAll(const std::vector<Diagnostic> &Diags) {
  std::string S;
  for (const Diagnostic &D : Diags)
    S += D.render() + "\n";
  return S;
}

std::vector<Diagnostic> lint(const Module &M) {
  sa::PassManager PM;
  sa::addStandardPasses(PM);
  return PM.run(M);
}

// -- Use before def -----------------------------------------------------------

TEST(UseBeforeDef, FlagsReadOfUnwrittenRegister) {
  Module M;
  M.MemWords = 8;
  M.addFunction("main", 0);
  IRBuilder B(M, 0);
  uint32_t E = B.newBlock("entry"), T = B.newBlock("then"),
           F = B.newBlock("else");
  B.setInsertPoint(E);
  Reg C = B.newReg();
  B.br(R(C), T, F); // C is never written.
  B.setInsertPoint(T);
  B.ret(K(0));
  B.setInsertPoint(F);
  B.ret(K(1));
  M.assignBranchIds();

  std::vector<Diagnostic> Diags;
  sa::createUseBeforeDefPass()->run(M, Diags);
  ASSERT_EQ(Diags.size(), 1u) << renderAll(Diags);
  EXPECT_EQ(Diags[0].fullRuleId(), "use-before-def.read-before-def");
  EXPECT_EQ(Diags[0].Sev, Severity::Warning);
  EXPECT_EQ(Diags[0].Loc.qualifiedName(), "main.block0.inst0");
}

TEST(UseBeforeDef, ParametersAndDominatingWritesAreClean) {
  Module M;
  M.MemWords = 8;
  M.addFunction("f", 2); // r0, r1 are parameters: defined on entry.
  IRBuilder B(M, 0);
  uint32_t E = B.newBlock("entry"), T = B.newBlock("then"),
           F = B.newBlock("else"), X = B.newBlock("exit");
  B.setInsertPoint(E);
  Reg S = B.newReg();
  B.add(S, R(0), R(1));
  B.br(R(S), T, F);
  B.setInsertPoint(T);
  B.jmp(X);
  B.setInsertPoint(F);
  B.jmp(X);
  B.setInsertPoint(X);
  B.ret(R(S)); // S written on every path (in the entry block).
  M.EntryFunction = 0;
  // Entry function must take no params for the verifier; wrap it.
  uint32_t MainIdx = M.addFunction("main", 0);
  IRBuilder MB(M, MainIdx);
  MB.newBlock("entry");
  MB.setInsertPoint(0);
  Reg V = MB.newReg();
  MB.call(V, 0, {K(1), K(2)});
  MB.ret(R(V));
  M.EntryFunction = MainIdx;
  M.assignBranchIds();

  std::vector<Diagnostic> Diags;
  sa::createUseBeforeDefPass()->run(M, Diags);
  EXPECT_TRUE(Diags.empty()) << renderAll(Diags);
}

// -- Dead code ----------------------------------------------------------------

TEST(DeadCode, FlagsUnreachableBlockAndDeadStore) {
  Module M;
  M.MemWords = 8;
  M.addFunction("main", 0);
  IRBuilder B(M, 0);
  uint32_t E = B.newBlock("entry"), X = B.newBlock("exit"),
           D = B.newBlock("limbo");
  B.setInsertPoint(E);
  Reg A = B.newReg(), Z = B.newReg();
  B.movImm(A, 7);
  B.movImm(Z, 9); // Dead store: Z is never read.
  B.jmp(X);
  B.setInsertPoint(X);
  B.ret(R(A));
  B.setInsertPoint(D); // Unreachable: no edge ever targets "limbo".
  B.ret(K(0));
  M.assignBranchIds();

  std::vector<Diagnostic> Diags;
  sa::createDeadCodePass()->run(M, Diags);
  EXPECT_EQ(countRule(Diags, "dead-code.unreachable-block"), 1u)
      << renderAll(Diags);
  EXPECT_EQ(countRule(Diags, "dead-code.dead-store"), 1u) << renderAll(Diags);
  for (const Diagnostic &Dg : Diags)
    EXPECT_EQ(Dg.Sev, Severity::Warning);
}

// -- Loop shape ---------------------------------------------------------------

TEST(LoopShape, FlagsIrreducibleLoop) {
  // entry branches into both halves of a 1 <-> 2 cycle: neither cycle block
  // dominates the other, so the cycle has no single header.
  Module M;
  M.MemWords = 8;
  M.addFunction("main", 0);
  IRBuilder B(M, 0);
  uint32_t E = B.newBlock("entry"), L = B.newBlock("left"),
           Rt = B.newBlock("right");
  B.setInsertPoint(E);
  Reg C = B.newReg();
  B.movImm(C, 1);
  B.br(R(C), L, Rt);
  B.setInsertPoint(L);
  B.jmp(Rt);
  B.setInsertPoint(Rt);
  B.jmp(L);
  M.assignBranchIds();

  std::vector<Diagnostic> Diags;
  sa::createLoopShapePass()->run(M, Diags);
  ASSERT_TRUE(hasRule(Diags, "loop-shape.irreducible-loop"))
      << renderAll(Diags);
  for (const Diagnostic &D : Diags)
    if (D.fullRuleId() == "loop-shape.irreducible-loop") {
      EXPECT_EQ(D.Sev, Severity::Error);
    }
}

TEST(LoopShape, FlagsHeaderWithoutPreheader) {
  // Two distinct outside edges into the loop header: no preheader.
  Module M;
  M.MemWords = 8;
  M.addFunction("main", 0);
  IRBuilder B(M, 0);
  uint32_t E = B.newBlock("entry"), A = B.newBlock("a"),
           H = B.newBlock("header"), X = B.newBlock("exit");
  B.setInsertPoint(E);
  Reg C = B.newReg(), I = B.newReg(), T = B.newReg();
  B.movImm(C, 1);
  B.movImm(I, 0);
  B.br(R(C), A, H);
  B.setInsertPoint(A);
  B.jmp(H);
  B.setInsertPoint(H);
  B.add(I, R(I), K(1));
  B.cmpLt(T, R(I), K(10));
  B.br(R(T), H, X);
  B.setInsertPoint(X);
  B.ret(R(I));
  M.assignBranchIds();

  std::vector<Diagnostic> Diags;
  sa::createLoopShapePass()->run(M, Diags);
  EXPECT_TRUE(hasRule(Diags, "loop-shape.no-preheader")) << renderAll(Diags);
  EXPECT_FALSE(sa::anyAtOrAbove(Diags, Severity::Error)) << renderAll(Diags);
}

TEST(LoopShape, NaturalLoopWithPreheaderIsClean) {
  Module M;
  M.MemWords = 8;
  M.addFunction("main", 0);
  IRBuilder B(M, 0);
  uint32_t E = B.newBlock("entry"), H = B.newBlock("header"),
           X = B.newBlock("exit");
  B.setInsertPoint(E);
  Reg I = B.newReg(), T = B.newReg();
  B.movImm(I, 0);
  B.jmp(H);
  B.setInsertPoint(H);
  B.add(I, R(I), K(1));
  B.cmpLt(T, R(I), K(10));
  B.br(R(T), H, X);
  B.setInsertPoint(X);
  B.ret(R(I));
  M.assignBranchIds();

  std::vector<Diagnostic> Diags;
  sa::createLoopShapePass()->run(M, Diags);
  EXPECT_TRUE(Diags.empty()) << renderAll(Diags);
}

// -- Branch hygiene -----------------------------------------------------------

/// Diamond with two conditional branches whose ids the test then corrupts.
Module twoBranchModule() {
  Module M;
  M.MemWords = 8;
  M.addFunction("main", 0);
  IRBuilder B(M, 0);
  uint32_t E = B.newBlock("entry"), Mid = B.newBlock("mid"),
           X = B.newBlock("exit");
  B.setInsertPoint(E);
  Reg C = B.newReg(), D = B.newReg();
  B.movImm(C, 1);
  B.movImm(D, 0);
  B.br(R(C), Mid, X);
  B.setInsertPoint(Mid);
  B.br(R(D), X, X);
  B.setInsertPoint(X);
  B.ret(K(0));
  M.assignBranchIds();
  return M;
}

TEST(BranchHygiene, FlagsDuplicateId) {
  Module M = twoBranchModule();
  Function &F = M.Functions[0];
  F.Blocks[1].terminator().BranchId = F.Blocks[0].terminator().BranchId;

  std::vector<Diagnostic> Diags;
  sa::createBranchHygienePass()->run(M, Diags);
  ASSERT_EQ(countRule(Diags, "branch-hygiene.duplicate-id"), 1u)
      << renderAll(Diags);
  const Diagnostic *Dup = nullptr;
  for (const Diagnostic &D : Diags)
    if (D.fullRuleId() == "branch-hygiene.duplicate-id")
      Dup = &D;
  ASSERT_NE(Dup, nullptr);
  EXPECT_EQ(Dup->Sev, Severity::Error);
  ASSERT_FALSE(Dup->Notes.empty()); // Points at the first owner of the id.
}

TEST(BranchHygiene, FlagsMissingAndUnassignedIds) {
  Module M = twoBranchModule();
  M.Functions[0].Blocks[1].terminator().BranchId = NoBranchId;
  std::vector<Diagnostic> Diags;
  sa::createBranchHygienePass()->run(M, Diags);
  EXPECT_EQ(countRule(Diags, "branch-hygiene.missing-id"), 1u)
      << renderAll(Diags);

  // Strip every id: one module-level "never assigned" finding, not a spray
  // of per-branch ones.
  Module M2 = twoBranchModule();
  for (BasicBlock &BB : M2.Functions[0].Blocks)
    if (BB.terminator().isConditionalBranch())
      BB.terminator().BranchId = NoBranchId;
  Diags.clear();
  sa::createBranchHygienePass()->run(M2, Diags);
  ASSERT_EQ(Diags.size(), 1u) << renderAll(Diags);
  EXPECT_EQ(Diags[0].fullRuleId(), "branch-hygiene.ids-unassigned");
}

TEST(BranchHygiene, FlagsBranchInUncalledFunction) {
  Module M = twoBranchModule();
  uint32_t Dead = M.addFunction("never_called", 0);
  IRBuilder B(M, Dead);
  uint32_t E = B.newBlock("entry"), X = B.newBlock("exit");
  B.setInsertPoint(E);
  Reg C = B.newReg();
  B.movImm(C, 0);
  B.br(R(C), X, X);
  B.setInsertPoint(X);
  B.ret(K(0));
  M.assignBranchIds();

  std::vector<Diagnostic> Diags;
  sa::createBranchHygienePass()->run(M, Diags);
  EXPECT_EQ(countRule(Diags, "branch-hygiene.unreachable-branch"), 1u)
      << renderAll(Diags);
}

// -- Replication soundness ----------------------------------------------------

struct SweepModule {
  Module Orig;
  PipelineResult PR;
};

/// Runs the real pipeline over one workload and returns both sides of the
/// simulation relation.
SweepModule runPipeline(const Workload &W, unsigned MaxStates = 4,
                        double SizeFactor = 8.0) {
  SweepModule S;
  Trace T = traceWorkload(W, 1, S.Orig, 20'000);
  PipelineOptions Opts;
  Opts.Strategy.MaxStates = MaxStates;
  Opts.JointMaxStates = MaxStates;
  Opts.MaxSizeFactor = SizeFactor;
  S.PR = replicateModule(S.Orig, T, Opts);
  return S;
}

/// First transformed branch that is a genuine copy (folds onto a different
/// original id), or any branch if none was replicated.
Instruction *findReplicatedBranch(Module &M) {
  Instruction *Any = nullptr;
  for (Function &F : M.Functions)
    for (BasicBlock &BB : F.Blocks)
      for (Instruction &I : BB.Insts)
        if (I.isConditionalBranch()) {
          Any = &I;
          if (I.OrigBranchId != I.BranchId)
            return &I;
        }
  return Any;
}

TEST(ReplicationSoundness, PipelineOutputPassesAndCarriesNoFindings) {
  SweepModule S = runPipeline(allWorkloads()[0]);
  EXPECT_TRUE(S.PR.Soundness.empty()) << renderAll(S.PR.Soundness);
  std::vector<Diagnostic> Diags =
      sa::checkReplicationSoundness(S.Orig, S.PR.Transformed);
  EXPECT_TRUE(Diags.empty()) << renderAll(Diags);
}

TEST(ReplicationSoundness, RejectsCorruptedFold) {
  // Find a workload where replication actually fired so the corruption hits
  // a real copy.
  for (const Workload &W : allWorkloads()) {
    SweepModule S = runPipeline(W);
    Instruction *Br = findReplicatedBranch(S.PR.Transformed);
    if (!Br || Br->OrigBranchId == Br->BranchId)
      continue;
    // Fold the copy onto the wrong original branch.
    int32_t Valid =
        static_cast<int32_t>(S.Orig.conditionalBranchCount());
    Br->OrigBranchId = (Br->OrigBranchId + 1) % Valid;
    std::vector<Diagnostic> Diags =
        sa::checkReplicationSoundness(S.Orig, S.PR.Transformed);
    ASSERT_TRUE(sa::anyAtOrAbove(Diags, Severity::Error))
        << W.Name << ": corruption went undetected";
    EXPECT_TRUE(hasRule(Diags, "replication-soundness.wrong-fold"))
        << W.Name << ":\n"
        << renderAll(Diags);
    return;
  }
  FAIL() << "no workload replicated any branch at the sweep settings";
}

TEST(ReplicationSoundness, RejectsOutOfRangeFold) {
  SweepModule S = runPipeline(allWorkloads()[0]);
  Instruction *Br = findReplicatedBranch(S.PR.Transformed);
  ASSERT_NE(Br, nullptr);
  Br->OrigBranchId =
      static_cast<int32_t>(S.Orig.conditionalBranchCount()) + 5;
  std::vector<Diagnostic> Diags =
      sa::checkReplicationSoundness(S.Orig, S.PR.Transformed);
  EXPECT_TRUE(hasRule(Diags, "replication-soundness.orphan-copy"))
      << renderAll(Diags);
}

TEST(ReplicationSoundness, RejectsCorruptedCopyToOrigMap) {
  SweepModule S = runPipeline(allWorkloads()[0]);
  // Build the honest copy->original map, then corrupt one entry.
  std::vector<BranchRef> Locs = S.PR.Transformed.branchLocations();
  ASSERT_GE(Locs.size(), 2u);
  std::vector<int32_t> Map(Locs.size(), NoBranchId);
  for (size_t I = 0; I < Locs.size(); ++I) {
    const BranchRef &L = Locs[I];
    Map[I] = S.PR.Transformed.Functions[L.FuncIdx]
                 .Blocks[L.BlockIdx]
                 .Insts[L.InstIdx]
                 .OrigBranchId;
  }
  std::vector<Diagnostic> Clean =
      sa::checkReplicationSoundness(S.Orig, S.PR.Transformed, &Map);
  ASSERT_TRUE(Clean.empty()) << renderAll(Clean);

  int32_t Valid = static_cast<int32_t>(S.Orig.conditionalBranchCount());
  Map[0] = (Map[0] + 1) % Valid;
  std::vector<Diagnostic> Diags =
      sa::checkReplicationSoundness(S.Orig, S.PR.Transformed, &Map);
  EXPECT_TRUE(hasRule(Diags, "replication-soundness.map-mismatch"))
      << renderAll(Diags);
}

TEST(ReplicationSoundness, RejectsMutatedComputation) {
  SweepModule S = runPipeline(allWorkloads()[0]);
  // Flip the opcode of the first non-terminator instruction.
  Instruction *Victim = nullptr;
  for (Function &F : S.PR.Transformed.Functions) {
    for (BasicBlock &BB : F.Blocks)
      for (Instruction &I : BB.Insts)
        if (!isTerminator(I.Op)) {
          Victim = &I;
          break;
        }
    if (Victim)
      break;
  }
  ASSERT_NE(Victim, nullptr);
  Victim->Op = Victim->Op == Opcode::Mov ? Opcode::Add : Opcode::Mov;
  std::vector<Diagnostic> Diags =
      sa::checkReplicationSoundness(S.Orig, S.PR.Transformed);
  EXPECT_TRUE(hasRule(Diags, "replication-soundness.instruction-mismatch"))
      << renderAll(Diags);
}

/// Workload names as gtest-legal identifiers ("c-compiler" -> "c_compiler").
std::string paramName(size_t Idx) {
  std::string N = allWorkloads()[Idx].Name;
  for (char &C : N)
    if (!std::isalnum(static_cast<unsigned char>(C)))
      C = '_';
  return N;
}

// -- Acceptance: soundness holds at every sweep point -------------------------

class SoundnessSweep : public ::testing::TestWithParam<size_t> {};

TEST_P(SoundnessSweep, CleanAcrossBudgetAndStateGrid) {
  const Workload &W = allWorkloads()[GetParam()];
  Module M;
  Trace T = traceWorkload(W, 1, M, 20'000);
  for (double SizeFactor : {1.5, 4.0, 8.0}) {
    for (unsigned States : {2u, 8u}) {
      PipelineOptions Opts;
      Opts.Strategy.MaxStates = States;
      Opts.JointMaxStates = States;
      Opts.MaxSizeFactor = SizeFactor;
      PipelineResult PR = replicateModule(M, T, Opts);
      EXPECT_TRUE(PR.Soundness.empty())
          << W.Name << " budget=" << SizeFactor << " states=" << States
          << ":\n"
          << renderAll(PR.Soundness);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllWorkloads, SoundnessSweep,
                         ::testing::Range<size_t>(0, 8),
                         [](const ::testing::TestParamInfo<size_t> &Info) {
                           return paramName(Info.param);
                         });

// -- Acceptance: every workload lints clean -----------------------------------

class WorkloadLint : public ::testing::TestWithParam<size_t> {};

TEST_P(WorkloadLint, NoErrorsAndOnlyBaselinedWarnings) {
  const Workload &W = allWorkloads()[GetParam()];
  // The two calibrated true-positive warnings live in known-findings
  // baselines (mirroring tests/data/lint_doduc.baseline and
  // lint_prolog.baseline, consumed by `bpcr lint --baseline`). After
  // applying the baseline NOTHING at warning level may remain: a new
  // finding survives the filter, and a finding that disappeared turns its
  // entry into a lint-baseline.stale-entry warning — both regressions.
  sa::LintBaseline BL;
  if (std::string(W.Name) == "doduc")
    BL.Keys = {"use-before-def.read-before-def main.block18.inst1"};
  else if (std::string(W.Name) == "prolog")
    BL.Keys = {"loop-shape.scattered-exits main.block6"};
  for (uint64_t Seed : {1u, 2u, 7u}) {
    Module M = W.Build(Seed);
    M.assignBranchIds();
    std::vector<Diagnostic> Diags = BL.apply(lint(M));
    EXPECT_FALSE(sa::anyAtOrAbove(Diags, Severity::Warning))
        << W.Name << " seed " << Seed << ":\n"
        << renderAll(Diags);
  }
}

INSTANTIATE_TEST_SUITE_P(AllWorkloads, WorkloadLint,
                         ::testing::Range<size_t>(0, 8),
                         [](const ::testing::TestParamInfo<size_t> &Info) {
                           return paramName(Info.param);
                         });

// -- Fuzz-ish: random modules never crash the passes and survive round-trip ---

TEST(LintFuzz, RandomModulesLintAndRoundTripStably) {
  std::mt19937_64 Rng(0xB9C5);
  for (int Iter = 0; Iter < 60; ++Iter) {
    Module M;
    M.Name = "fuzz";
    M.MemWords = 8;
    M.addFunction("main", 0);
    IRBuilder B(M, 0);
    B.func().NumRegs = 4;
    std::uniform_int_distribution<uint32_t> BlockCount(2, 7);
    uint32_t NB = BlockCount(Rng);
    for (uint32_t I = 0; I < NB; ++I) {
      std::string BlockName = "b";
      BlockName += std::to_string(I);
      B.newBlock(BlockName);
    }
    std::uniform_int_distribution<uint32_t> Target(0, NB - 1);
    std::uniform_int_distribution<int> RegPick(0, 3);
    std::uniform_int_distribution<int> Kind(0, 2);
    for (uint32_t I = 0; I < NB; ++I) {
      B.setInsertPoint(I);
      Reg D = static_cast<Reg>(RegPick(Rng));
      B.movImm(D, static_cast<int64_t>(Rng() % 100));
      switch (Kind(Rng)) {
      case 0:
        B.ret(R(static_cast<Reg>(RegPick(Rng))));
        break;
      case 1:
        B.jmp(Target(Rng));
        break;
      default:
        B.br(R(static_cast<Reg>(RegPick(Rng))), Target(Rng), Target(Rng));
        break;
      }
    }
    M.assignBranchIds();

    // Whatever the shape (unreachable blocks, entry back edges, strange
    // cycles), the passes must terminate without crashing.
    std::vector<Diagnostic> Before = lint(M);

    // And the findings must be stable across a serializer round-trip.
    std::string Text = writeModuleText(M);
    Module M2;
    std::string Err;
    ASSERT_TRUE(parseModuleText(Text, M2, Err)) << Err << "\n" << Text;
    std::vector<Diagnostic> After = lint(M2);
    ASSERT_EQ(Before.size(), After.size()) << Text;
    for (size_t I = 0; I < Before.size(); ++I)
      EXPECT_EQ(Before[I].fullRuleId(), After[I].fullRuleId());
  }
}

} // namespace
