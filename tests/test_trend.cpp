//===- tests/test_trend.cpp - Cross-run trend analytics and gating --------===//
//
// Part of the bpcr project (Krall, PLDI 1994 reproduction).
//
//===----------------------------------------------------------------------===//

#include "obs/Compare.h"
#include "obs/Ledger.h"
#include "obs/Report.h"
#include "obs/Trend.h"

#include <gtest/gtest.h>

#include <cmath>

using namespace bpcr;

namespace {

/// One deterministic-metric record per value, matching readLedger order
/// (oldest first).
std::vector<LedgerRecord> ledgerOf(const std::vector<double> &Values,
                                   const std::string &Name =
                                       "counters.bench.ops") {
  std::vector<LedgerRecord> Records;
  for (double V : Values) {
    LedgerRecord R;
    R.SchemaVersion = ReportSchemaVersion;
    R.Meta.Tool = "bench_fixture";
    R.Meta.Workload = "synthetic";
    R.Metrics.emplace_back(Name, V);
    Records.push_back(std::move(R));
  }
  return Records;
}

const TrendSeries *seriesNamed(const TrendResult &R, const std::string &N) {
  for (const TrendSeries &S : R.Series)
    if (S.Name == N)
      return &S;
  return nullptr;
}

/// The synthetic 12-run fixtures from tests/data/: a clean +30% step at run
/// 8, and pure +-0.3% noise.
const std::vector<double> StepValues = {1000, 1002, 999,  1001, 1000, 998,
                                        1001, 1000, 1300, 1302, 1299, 1301};
const std::vector<double> NoiseValues = {1000, 1002, 998, 1001, 999,  1003,
                                         997,  1000, 1002, 998, 1001, 999};

} // namespace

// -- Robust statistics --------------------------------------------------------

TEST(Trend, RobustStatsOnKnownSeries) {
  TrendResult R = analyzeTrends(ledgerOf(NoiseValues), TrendOptions());
  ASSERT_EQ(R.Series.size(), 1u);
  const TrendSeries &S = R.Series[0];
  EXPECT_EQ(S.Values.size(), 12u);
  // Median of the noise fixture is 1000 (or the midpoint of the two middle
  // values); the MAD band is a couple of counts wide.
  EXPECT_NEAR(S.Median, 1000.0, 0.5);
  EXPECT_GT(S.Madn, 0.0);
  EXPECT_LT(S.Madn, 10.0);
  EXPECT_GT(S.Sigma, 0.0);
}

TEST(Trend, ConstantSeriesHasZeroSpreadAndNoFindings) {
  TrendResult R =
      analyzeTrends(ledgerOf({5, 5, 5, 5, 5, 5}), TrendOptions());
  ASSERT_EQ(R.Series.size(), 1u);
  const TrendSeries &S = R.Series[0];
  EXPECT_DOUBLE_EQ(S.Madn, 0.0);
  EXPECT_DOUBLE_EQ(S.Sigma, 0.0);
  EXPECT_TRUE(S.Outliers.empty());
  EXPECT_FALSE(S.HasStep);
  EXPECT_EQ(R.Regressions, 0u);
  EXPECT_EQ(R.LatestOutliers, 0u);
}

// -- Step detection -----------------------------------------------------------

TEST(Trend, DetectsInjectedStepAtTheRightRun) {
  TrendResult R = analyzeTrends(ledgerOf(StepValues), TrendOptions());
  ASSERT_EQ(R.Series.size(), 1u);
  const TrendSeries &S = R.Series[0];
  ASSERT_TRUE(S.HasStep);
  EXPECT_EQ(S.StepAt, 8u); // Values[8] starts the new level
  EXPECT_NEAR(S.StepBefore, 1000.0, 2.0);
  EXPECT_NEAR(S.StepAfter, 1300.0, 2.0);
  EXPECT_NEAR(S.StepRelDelta, 0.3, 0.01);
  // A deterministic counter moving at all regresses under the default
  // exact-match tail rule; direction Both catches either sign.
  EXPECT_TRUE(S.Regressed);
  EXPECT_EQ(R.Regressions, 1u);
}

TEST(Trend, PureNoiseStaysClean) {
  TrendResult R = analyzeTrends(ledgerOf(NoiseValues), TrendOptions());
  ASSERT_EQ(R.Series.size(), 1u);
  const TrendSeries &S = R.Series[0];
  EXPECT_FALSE(S.HasStep);
  EXPECT_FALSE(S.Regressed);
  EXPECT_TRUE(S.Outliers.empty());
  EXPECT_EQ(R.Regressions, 0u);
  EXPECT_EQ(R.LatestOutliers, 0u);
}

TEST(Trend, DownwardStepAlsoRegressesUnderBothDirection) {
  std::vector<double> Down = {1000, 1001, 999, 1000, 1002, 1000,
                              700,  701,  699, 700,  702,  700};
  TrendResult R = analyzeTrends(ledgerOf(Down), TrendOptions());
  ASSERT_EQ(R.Series.size(), 1u);
  ASSERT_TRUE(R.Series[0].HasStep);
  EXPECT_EQ(R.Series[0].StepAt, 6u);
  EXPECT_LT(R.Series[0].StepRelDelta, 0.0);
  EXPECT_TRUE(R.Series[0].Regressed);
}

// -- Outliers -----------------------------------------------------------------

TEST(Trend, LatestRunOutlierFailsButHistoricalOnesOnlyReport) {
  // One historic spike: reported, but the gate already failed on that run.
  std::vector<double> Historic = NoiseValues;
  Historic[4] = 1500;
  TrendResult R1 = analyzeTrends(ledgerOf(Historic), TrendOptions());
  ASSERT_EQ(R1.Series.size(), 1u);
  ASSERT_EQ(R1.Series[0].Outliers.size(), 1u);
  EXPECT_EQ(R1.Series[0].Outliers[0], 4u);
  EXPECT_EQ(R1.LatestOutliers, 0u);

  // The same spike on the newest run fails the gate.
  std::vector<double> Latest = NoiseValues;
  Latest.back() = 1500;
  TrendResult R2 = analyzeTrends(ledgerOf(Latest), TrendOptions());
  ASSERT_EQ(R2.Series.size(), 1u);
  ASSERT_FALSE(R2.Series[0].Outliers.empty());
  EXPECT_EQ(R2.LatestOutliers, 1u);
}

// -- Rules, windowing, contexts -----------------------------------------------

TEST(Trend, SkipRuleSilencesWallClockSeries) {
  // A stepping perf series matches the built-in *per_sec* skip: shown, but
  // never a regression.
  TrendResult R = analyzeTrends(
      ledgerOf(StepValues, "gauges.interp.events_per_sec"), TrendOptions());
  ASSERT_EQ(R.Series.size(), 1u);
  EXPECT_TRUE(R.Series[0].Skipped);
  EXPECT_EQ(R.Series[0].RulePattern, "*per_sec*");
  EXPECT_FALSE(R.Series[0].Regressed);
  EXPECT_EQ(R.Regressions, 0u);
  EXPECT_EQ(R.LatestOutliers, 0u);
}

TEST(Trend, UserRuleThresholdAllowsTheStep) {
  // A user rule allowing 50% drift outranks the default exact tail.
  TrendOptions Opts;
  CompareRule Rule;
  Rule.Pattern = "counters.bench.*";
  Rule.MaxRelDelta = 0.5;
  Opts.Rules.Rules.push_back(Rule);
  TrendResult R = analyzeTrends(ledgerOf(StepValues), Opts);
  ASSERT_EQ(R.Series.size(), 1u);
  EXPECT_TRUE(R.Series[0].HasStep);
  EXPECT_FALSE(R.Series[0].Regressed);
  EXPECT_EQ(R.Series[0].RulePattern, "counters.bench.*");
}

TEST(Trend, ShortHistoryIsNeverGated) {
  TrendResult R = analyzeTrends(ledgerOf({1000, 1300, 1301}), TrendOptions());
  ASSERT_EQ(R.Series.size(), 1u);
  EXPECT_TRUE(R.Series[0].Skipped);
  EXPECT_EQ(R.Series[0].RulePattern, "(short history)");
  EXPECT_EQ(R.Regressions, 0u);
  EXPECT_EQ(R.LatestOutliers, 0u);
}

TEST(Trend, LastNRestrictsTheWindow) {
  TrendOptions Opts;
  Opts.LastN = 4;
  TrendResult R = analyzeTrends(ledgerOf(StepValues), Opts);
  EXPECT_EQ(R.RunsAnalyzed, 4u);
  ASSERT_EQ(R.Series.size(), 1u);
  // Only the post-step plateau remains: no step, and the run indices still
  // point into the whole file.
  EXPECT_EQ(R.Series[0].Values.size(), 4u);
  EXPECT_FALSE(R.Series[0].HasStep);
  EXPECT_EQ(R.Series[0].Runs.front(), 8u);
}

TEST(Trend, MetricGlobDropsNonMatchingSeries) {
  std::vector<LedgerRecord> Records = ledgerOf(NoiseValues);
  for (LedgerRecord &R : Records)
    R.Perf.emplace_back("gauges.interp.events_per_sec", 50000.0);
  TrendOptions Opts;
  Opts.MetricGlob = "counters.*";
  TrendResult R = analyzeTrends(Records, Opts);
  ASSERT_EQ(R.Series.size(), 1u);
  EXPECT_EQ(R.Series[0].Name, "counters.bench.ops");
}

TEST(Trend, MixedContextsPrefixSeriesAndStillMatchRules) {
  // Two tools in one ledger: same metric name, different series — and the
  // rule match still sees the unprefixed name.
  std::vector<LedgerRecord> A = ledgerOf(StepValues);
  std::vector<LedgerRecord> B = ledgerOf(NoiseValues);
  for (LedgerRecord &R : B)
    R.Meta.Tool = "other_bench";
  std::vector<LedgerRecord> All = A;
  All.insert(All.end(), B.begin(), B.end());

  TrendResult R = analyzeTrends(All, TrendOptions());
  ASSERT_EQ(R.Warnings.size(), 1u);
  EXPECT_NE(R.Warnings[0].find("mixes 2 tool/workload contexts"),
            std::string::npos);
  const TrendSeries *SA =
      seriesNamed(R, "bench_fixture/synthetic:counters.bench.ops");
  const TrendSeries *SB =
      seriesNamed(R, "other_bench/synthetic:counters.bench.ops");
  ASSERT_NE(SA, nullptr);
  ASSERT_NE(SB, nullptr);
  EXPECT_TRUE(SA->Regressed);
  EXPECT_FALSE(SB->Regressed);
  EXPECT_EQ(SA->RulePattern, "*"); // matched unprefixed
}

// -- Renderers ----------------------------------------------------------------

TEST(Trend, TableMarksRegressionsAndSummarizes) {
  TrendResult R = analyzeTrends(ledgerOf(StepValues), TrendOptions());
  std::string Table = renderTrendTable(R, /*Sparkline=*/false);
  EXPECT_NE(Table.find("REGRESSED step@8 +30.0%"), std::string::npos)
      << Table;
  EXPECT_NE(Table.find("12 runs, 1 series: 1 step regression"),
            std::string::npos)
      << Table;

  std::string Csv = renderTrendCsv(R);
  EXPECT_EQ(Csv.rfind("metric,runs,median,madn,sigma,latest,outliers,"
                      "step_at,step_rel_delta,rule,status\n",
                      0),
            0u);
  EXPECT_NE(Csv.find("counters.bench.ops,12,"), std::string::npos);
  EXPECT_NE(Csv.find(",regressed\n"), std::string::npos);
}

TEST(Trend, JsonCarriesStepAndRoundTrips) {
  TrendResult R = analyzeTrends(ledgerOf(StepValues), TrendOptions());
  JsonValue J = trendJson(R);
  EXPECT_FALSE(J.find("ok")->asBool());
  EXPECT_EQ(J.find("step_regressions")->asInt(), 1);
  const JsonValue &Row = J.find("series")->at(0);
  EXPECT_EQ(Row.find("metric")->asString(), "counters.bench.ops");
  ASSERT_NE(Row.find("step"), nullptr);
  EXPECT_EQ(Row.find("step")->find("at")->asInt(), 8);
  std::string Error;
  JsonValue Back = parseJson(J.dump(2), Error);
  EXPECT_TRUE(Error.empty()) << Error;
  EXPECT_EQ(J, Back);
}

// -- compareAgainstLedger -----------------------------------------------------

namespace {

JsonValue reportWithOps(double Ops) {
  JsonValue Counters = JsonValue::object();
  Counters.set("bench.ops", JsonValue::number(Ops));
  JsonValue Metrics = JsonValue::object();
  Metrics.set("counters", Counters);
  JsonValue Report = JsonValue::object();
  Report.set("schema_version",
             JsonValue::integer(int64_t{ReportSchemaVersion}));
  Report.set("tool", JsonValue::str("bench_fixture"));
  Report.set("workload", JsonValue::str("synthetic"));
  Report.set("metrics", Metrics);
  return Report;
}

} // namespace

TEST(Trend, LedgerCompareGatesAgainstTheRollingBand) {
  std::vector<LedgerRecord> History = ledgerOf(NoiseValues);
  TrendOptions Opts;
  // Allow 2% around the rolling median before the MAD band takes over.
  CompareRule Rule;
  Rule.Pattern = "counters.bench.*";
  Rule.MaxRelDelta = 0.02;
  Opts.Rules.Rules.push_back(Rule);

  // In-band value passes.
  CompareResult Ok = compareAgainstLedger(History, reportWithOps(1003), Opts);
  EXPECT_TRUE(Ok.ok()) << renderCompareResult(Ok);
  ASSERT_EQ(Ok.Deltas.size(), 1u);
  EXPECT_NEAR(Ok.Deltas[0].Old, 1000.0, 0.5); // Old is the rolling median

  // A step far outside both the threshold and the MAD band fails.
  CompareResult Bad = compareAgainstLedger(History, reportWithOps(1300), Opts);
  EXPECT_FALSE(Bad.ok());
  EXPECT_EQ(Bad.Regressions, 1u);
  EXPECT_TRUE(Bad.Deltas[0].Regressed);
}

TEST(Trend, LedgerCompareNeverGatesShortOrMissingHistory) {
  // One-record history: too short for a band.
  CompareResult Short = compareAgainstLedger(ledgerOf({1000}),
                                             reportWithOps(9999),
                                             TrendOptions());
  EXPECT_TRUE(Short.ok());
  ASSERT_EQ(Short.Deltas.size(), 1u);
  EXPECT_TRUE(Short.Deltas[0].Skipped);
  EXPECT_EQ(Short.Deltas[0].RulePattern, "(short history)");

  // Metric absent from the history: reported as missing, never gated.
  CompareResult Missing = compareAgainstLedger(
      ledgerOf(NoiseValues, "counters.other.metric"), reportWithOps(1000),
      TrendOptions());
  EXPECT_TRUE(Missing.ok());
  bool SawMissing = false;
  for (const MetricDelta &D : Missing.Deltas)
    if (D.Name == "counters.bench.ops") {
      EXPECT_TRUE(D.MissingOld);
      EXPECT_TRUE(D.Skipped);
      SawMissing = true;
    }
  EXPECT_TRUE(SawMissing);
}

TEST(Trend, LedgerCompareFiltersHistoryToTheReportContext) {
  // Matching-context records form the band; foreign-context records with a
  // wildly different level are ignored.
  std::vector<LedgerRecord> History = ledgerOf(NoiseValues);
  std::vector<LedgerRecord> Foreign = ledgerOf(
      std::vector<double>(12, 500000.0));
  for (LedgerRecord &R : Foreign)
    R.Meta.Tool = "other_bench";
  History.insert(History.end(), Foreign.begin(), Foreign.end());

  CompareResult R =
      compareAgainstLedger(History, reportWithOps(1001), TrendOptions());
  EXPECT_TRUE(R.Warnings.empty());
  ASSERT_EQ(R.Deltas.size(), 1u);
  EXPECT_NEAR(R.Deltas[0].Old, 1000.0, 0.5);

  // No matching context at all: fall back to everything, with a warning.
  std::vector<LedgerRecord> OnlyForeign = Foreign;
  CompareResult Fallback =
      compareAgainstLedger(OnlyForeign, reportWithOps(1001), TrendOptions());
  ASSERT_EQ(Fallback.Warnings.size(), 1u);
  EXPECT_NE(Fallback.Warnings[0].find("no ledger records match context"),
            std::string::npos);
}

TEST(Trend, LedgerCompareRejectsNonReports) {
  CompareResult R = compareAgainstLedger(ledgerOf(NoiseValues),
                                         JsonValue::object(), TrendOptions());
  ASSERT_EQ(R.Errors.size(), 1u);
  EXPECT_FALSE(R.ok());
}
