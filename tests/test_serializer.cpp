//===- tests/test_serializer.cpp - Textual module format tests ------------===//
//
// Part of the bpcr project (Krall, PLDI 1994 reproduction).
//
//===----------------------------------------------------------------------===//

#include "core/Pipeline.h"
#include "interp/Interpreter.h"
#include "ir/Serializer.h"
#include "ir/Verifier.h"
#include "trace/Sinks.h"
#include "workloads/Workload.h"

#include <gtest/gtest.h>

using namespace bpcr;

namespace {

/// Structural equality via the canonical text rendering.
void expectSameModule(const Module &A, const Module &B) {
  EXPECT_EQ(writeModuleText(A), writeModuleText(B));
}

} // namespace

class SerializerRoundTrip : public ::testing::TestWithParam<size_t> {};

TEST_P(SerializerRoundTrip, WorkloadSurvivesTextRoundTrip) {
  const Workload &W = allWorkloads()[GetParam()];
  Module M = W.Build(1);
  M.assignBranchIds();

  std::string Text = writeModuleText(M);
  Module Back;
  std::string Error;
  ASSERT_TRUE(parseModuleText(Text, Back, Error)) << Error;
  EXPECT_TRUE(verifyModule(Back).empty()) << W.Name;
  expectSameModule(M, Back);

  // Same behaviour, same trace.
  ExecOptions EO;
  EO.MaxBranchEvents = 30'000;
  CollectingSink SA, SB;
  ExecResult RA = execute(M, &SA, EO);
  ExecResult RB = execute(Back, &SB, EO);
  ASSERT_TRUE(RA.Ok) << RA.Error;
  ASSERT_TRUE(RB.Ok) << RB.Error;
  EXPECT_EQ(RA.ReturnValue, RB.ReturnValue);
  EXPECT_EQ(SA.trace(), SB.trace());
}

INSTANTIATE_TEST_SUITE_P(All, SerializerRoundTrip,
                         ::testing::Range<size_t>(0, 8));

TEST(Serializer, ReplicatedModuleRoundTripsWithAnnotations) {
  Module M;
  Trace T = traceWorkload(allWorkloads()[2], 1, M, 100'000);
  PipelineOptions Opts;
  Opts.Strategy.MaxStates = 4;
  Opts.Strategy.NodeBudget = 10'000;
  PipelineResult PR = replicateModule(M, T, Opts);

  std::string Text = writeModuleText(PR.Transformed);
  Module Back;
  std::string Error;
  ASSERT_TRUE(parseModuleText(Text, Back, Error)) << Error;
  expectSameModule(PR.Transformed, Back);

  // Predicted annotations and orig ids survive.
  bool SawPrediction = false, SawOrig = false;
  for (const Function &F : Back.Functions)
    for (const BasicBlock &BB : F.Blocks)
      for (const Instruction &I : BB.Insts) {
        SawPrediction |= I.Predicted != Prediction::Unknown;
        SawOrig |= (I.isConditionalBranch() && I.OrigBranchId != I.BranchId);
      }
  EXPECT_TRUE(SawPrediction);
  EXPECT_TRUE(SawOrig);
}

TEST(Serializer, FileRoundTrip) {
  Module M = buildWorkload("prolog", 2);
  M.assignBranchIds();
  std::string Path = ::testing::TempDir() + "/bpcr_module_test.bpcrir";
  ASSERT_TRUE(writeModuleFile(Path, M));
  Module Back;
  std::string Error;
  ASSERT_TRUE(readModuleFile(Path, Back, Error)) << Error;
  expectSameModule(M, Back);
}

TEST(Serializer, SparseDataRunsAreCompact) {
  Module M;
  M.Name = "sparse";
  M.MemWords = 1'000'000;
  M.InitialMemory.assign(1'000'000, 0);
  M.InitialMemory[5] = 42;
  M.InitialMemory[999'999] = -7;
  uint32_t F = M.addFunction("main", 0);
  Function &Fn = M.Functions[F];
  BasicBlock BB;
  BB.Name = "entry";
  Instruction Ret;
  Ret.Op = Opcode::Ret;
  Ret.A = Operand::imm(0);
  BB.Insts.push_back(Ret);
  Fn.Blocks.push_back(BB);

  std::string Text = writeModuleText(M);
  // Zero words are skipped: the text must stay tiny.
  EXPECT_LT(Text.size(), 300u);
  Module Back;
  std::string Error;
  ASSERT_TRUE(parseModuleText(Text, Back, Error)) << Error;
  ASSERT_GE(Back.InitialMemory.size(), 1'000'000u);
  EXPECT_EQ(Back.InitialMemory[5], 42);
  EXPECT_EQ(Back.InitialMemory[999'999], -7);
}

// -- Error reporting ------------------------------------------------------------

namespace {

std::string parseError(const std::string &Text) {
  Module M;
  std::string Error;
  EXPECT_FALSE(parseModuleText(Text, M, Error));
  return Error;
}

} // namespace

TEST(Serializer, ReportsUnknownOpcode) {
  std::string E = parseError("module m\nmem 1\nentry 0\n"
                             "func f params 0 regs 1\nblock b\n"
                             "  frobnicate r0, 1, 2\nendfunc\n");
  EXPECT_NE(E.find("line 6"), std::string::npos);
  EXPECT_NE(E.find("frobnicate"), std::string::npos);
}

TEST(Serializer, ReportsInstructionOutsideBlock) {
  std::string E = parseError("module m\nmem 1\nentry 0\n"
                             "func f params 0 regs 1\n  mov r0, 1\n");
  EXPECT_NE(E.find("outside a block"), std::string::npos);
}

TEST(Serializer, ReportsMissingEndfunc) {
  std::string E = parseError("module m\nmem 1\nentry 0\n"
                             "func f params 0 regs 1\nblock b\n  ret 0\n");
  EXPECT_NE(E.find("endfunc"), std::string::npos);
}

TEST(Serializer, ReportsBadBranchAnnotation) {
  std::string E = parseError("module m\nmem 1\nentry 0\n"
                             "func f params 0 regs 1\nblock b\n"
                             "  br r0, 0, 0 wibble\nendfunc\n");
  EXPECT_NE(E.find("annotation"), std::string::npos);
}

TEST(Serializer, ReportsOversizedData) {
  std::string E = parseError("module m\nmem 2\nentry 0\ndata 5 1\n"
                             "func f params 0 regs 1\nblock b\n  ret 0\n"
                             "endfunc\n");
  EXPECT_NE(E.find("memory"), std::string::npos);
}

TEST(Serializer, AcceptsComments) {
  Module M;
  std::string Error;
  ASSERT_TRUE(parseModuleText("# a program\nmodule m\nmem 1\nentry 0\n"
                              "func f params 0 regs 1\nblock b # entry\n"
                              "  ret 0\nendfunc\n",
                              M, Error))
      << Error;
  EXPECT_TRUE(verifyModule(M).empty());
}
