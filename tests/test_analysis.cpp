//===- tests/test_analysis.cpp - CFG, dominators, loops, paths ------------===//
//
// Part of the bpcr project (Krall, PLDI 1994 reproduction).
//
//===----------------------------------------------------------------------===//

#include "analysis/CFG.h"
#include "analysis/Dominators.h"
#include "analysis/LoopInfo.h"
#include "analysis/PathEnum.h"
#include "ir/IRBuilder.h"

#include <gtest/gtest.h>

#include <algorithm>

using namespace bpcr;

namespace {

Operand R(Reg X) { return Operand::reg(X); }
Operand K(int64_t V) { return Operand::imm(V); }

/// A diamond: entry -> (left | right) -> join -> ret.
Module diamond() {
  Module M;
  M.MemWords = 1;
  uint32_t Main = M.addFunction("main", 0);
  IRBuilder B(M, Main);
  Reg C = B.newReg();
  uint32_t Entry = B.newBlock("entry");
  uint32_t Left = B.newBlock("left");
  uint32_t Right = B.newBlock("right");
  uint32_t Join = B.newBlock("join");
  B.setInsertPoint(Entry);
  B.movImm(C, 1);
  B.br(R(C), Left, Right);
  B.setInsertPoint(Left);
  B.jmp(Join);
  B.setInsertPoint(Right);
  B.jmp(Join);
  B.setInsertPoint(Join);
  B.ret(K(0));
  M.assignBranchIds();
  return M;
}

/// entry -> header; header -> (body | exit); body -> header.
Module simpleLoop() {
  Module M;
  M.MemWords = 1;
  uint32_t Main = M.addFunction("main", 0);
  IRBuilder B(M, Main);
  Reg I = B.newReg(), C = B.newReg();
  uint32_t Entry = B.newBlock("entry");
  uint32_t Header = B.newBlock("header");
  uint32_t Body = B.newBlock("body");
  uint32_t Exit = B.newBlock("exit");
  B.setInsertPoint(Entry);
  B.movImm(I, 0);
  B.jmp(Header);
  B.setInsertPoint(Header);
  B.cmpLt(C, R(I), K(10));
  B.br(R(C), Body, Exit);
  B.setInsertPoint(Body);
  B.add(I, R(I), K(1));
  B.jmp(Header);
  B.setInsertPoint(Exit);
  B.ret(R(I));
  M.assignBranchIds();
  return M;
}

/// Nested loops: outer header 1 (blocks 1-5), inner header 2 (blocks 2-3).
Module nestedLoops() {
  Module M;
  M.MemWords = 1;
  uint32_t Main = M.addFunction("main", 0);
  IRBuilder B(M, Main);
  Reg I = B.newReg(), J = B.newReg(), C = B.newReg();
  uint32_t Entry = B.newBlock("entry");
  uint32_t Outer = B.newBlock("outer");
  uint32_t Inner = B.newBlock("inner");
  uint32_t InnerBody = B.newBlock("inner_body");
  uint32_t OuterLatch = B.newBlock("outer_latch");
  uint32_t Exit = B.newBlock("exit");
  B.setInsertPoint(Entry);
  B.movImm(I, 0);
  B.jmp(Outer);
  B.setInsertPoint(Outer);
  B.movImm(J, 0);
  B.jmp(Inner);
  B.setInsertPoint(Inner);
  B.cmpLt(C, R(J), K(3));
  B.br(R(C), InnerBody, OuterLatch);
  B.setInsertPoint(InnerBody);
  B.add(J, R(J), K(1));
  B.jmp(Inner);
  B.setInsertPoint(OuterLatch);
  B.add(I, R(I), K(1));
  B.cmpLt(C, R(I), K(5));
  B.br(R(C), Outer, Exit);
  B.setInsertPoint(Exit);
  B.ret(R(I));
  M.assignBranchIds();
  return M;
}

} // namespace

// -- CFG ---------------------------------------------------------------------

TEST(CFG, DiamondEdges) {
  Module M = diamond();
  CFG G(M.Functions[0]);
  EXPECT_EQ(G.successors(0), (std::vector<uint32_t>{1, 2}));
  EXPECT_EQ(G.predecessors(3), (std::vector<uint32_t>{1, 2}));
  EXPECT_TRUE(G.successors(3).empty());
}

TEST(CFG, ReversePostOrderStartsAtEntry) {
  Module M = diamond();
  CFG G(M.Functions[0]);
  const auto &RPO = G.reversePostOrder();
  ASSERT_EQ(RPO.size(), 4u);
  EXPECT_EQ(RPO.front(), 0u);
  // Join comes after both left and right.
  EXPECT_GT(G.rpoIndex(3), G.rpoIndex(1));
  EXPECT_GT(G.rpoIndex(3), G.rpoIndex(2));
}

TEST(CFG, UnreachableBlockDetected) {
  Module M = diamond();
  // Add a block nothing targets.
  IRBuilder B(M, 0);
  uint32_t Dead = B.newBlock("dead");
  B.setInsertPoint(Dead);
  B.ret(K(0));
  CFG G(M.Functions[0]);
  EXPECT_FALSE(G.isReachable(Dead));
  EXPECT_TRUE(G.isReachable(0));
  EXPECT_EQ(G.rpoIndex(Dead), UINT32_MAX);
}

// -- Dominators -----------------------------------------------------------------

TEST(Dominators, DiamondStructure) {
  Module M = diamond();
  CFG G(M.Functions[0]);
  Dominators D(G);
  EXPECT_EQ(D.immediateDominator(0), 0u);
  EXPECT_EQ(D.immediateDominator(1), 0u);
  EXPECT_EQ(D.immediateDominator(2), 0u);
  EXPECT_EQ(D.immediateDominator(3), 0u); // join's idom is the entry
  EXPECT_TRUE(D.dominates(0, 3));
  EXPECT_FALSE(D.dominates(1, 3));
  EXPECT_TRUE(D.dominates(2, 2));
}

TEST(Dominators, LoopHeaderDominatesBody) {
  Module M = simpleLoop();
  CFG G(M.Functions[0]);
  Dominators D(G);
  EXPECT_TRUE(D.dominates(1, 2)); // header dominates body
  EXPECT_TRUE(D.dominates(1, 3)); // and the exit
  EXPECT_FALSE(D.dominates(2, 1));
}

// -- LoopInfo -------------------------------------------------------------------

TEST(LoopInfo, FindsSimpleLoop) {
  Module M = simpleLoop();
  CFG G(M.Functions[0]);
  Dominators D(G);
  LoopInfo LI(G, D);
  ASSERT_EQ(LI.loops().size(), 1u);
  const Loop &L = LI.loops()[0];
  EXPECT_EQ(L.Header, 1u);
  EXPECT_EQ(L.Blocks, (std::vector<uint32_t>{1, 2}));
  EXPECT_EQ(L.Depth, 1u);
  EXPECT_EQ(LI.innermostLoop(2), 0);
  EXPECT_EQ(LI.innermostLoop(0), -1);
  EXPECT_EQ(LI.innermostLoop(3), -1);
}

TEST(LoopInfo, NestedLoopsAndDepths) {
  Module M = nestedLoops();
  CFG G(M.Functions[0]);
  Dominators D(G);
  LoopInfo LI(G, D);
  ASSERT_EQ(LI.loops().size(), 2u);
  const Loop *Outer = nullptr, *Inner = nullptr;
  for (const Loop &L : LI.loops())
    (L.Header == 1 ? Outer : Inner) = &L;
  ASSERT_NE(Outer, nullptr);
  ASSERT_NE(Inner, nullptr);
  EXPECT_EQ(Inner->Header, 2u);
  EXPECT_EQ(Outer->Depth, 1u);
  EXPECT_EQ(Inner->Depth, 2u);
  EXPECT_TRUE(Outer->contains(2));
  EXPECT_TRUE(Outer->contains(4));
  EXPECT_FALSE(Inner->contains(4));
  // The inner body belongs to the inner loop first.
  const Loop &InnermostOf3 =
      LI.loops()[static_cast<size_t>(LI.innermostLoop(3))];
  EXPECT_EQ(InnermostOf3.Header, 2u);
}

TEST(LoopInfo, AcyclicFunctionHasNoLoops) {
  Module M = diamond();
  CFG G(M.Functions[0]);
  Dominators D(G);
  LoopInfo LI(G, D);
  EXPECT_TRUE(LI.loops().empty());
}

// -- Branch classification -------------------------------------------------------

TEST(BranchClass, LoopExitAndNonLoop) {
  Module M = simpleLoop();
  const Function &F = M.Functions[0];
  CFG G(F);
  Dominators D(G);
  LoopInfo LI(G, D);
  std::vector<BranchClass> Classes;
  classifyBranches(F, G, LI, Classes);
  ASSERT_EQ(Classes.size(), 1u);
  EXPECT_EQ(Classes[0].Kind, BranchKind::LoopExit);
  EXPECT_EQ(Classes[0].LoopIdx, 0);
  // The taken edge goes to the body (stays); not-taken exits.
  EXPECT_FALSE(Classes[0].TakenExits);
}

TEST(BranchClass, IntraLoopBranch) {
  // Loop with an if inside: header -> (exit | body); body -> (a|b) -> header.
  Module M;
  M.MemWords = 1;
  uint32_t Main = M.addFunction("main", 0);
  IRBuilder B(M, Main);
  Reg I = B.newReg(), C = B.newReg(), C2 = B.newReg();
  uint32_t Entry = B.newBlock("entry");
  uint32_t Header = B.newBlock("header");
  uint32_t Body = B.newBlock("body");
  uint32_t ThenB = B.newBlock("then");
  uint32_t ElseB = B.newBlock("else");
  uint32_t Exit = B.newBlock("exit");
  B.setInsertPoint(Entry);
  B.movImm(I, 0);
  B.jmp(Header);
  B.setInsertPoint(Header);
  B.cmpLt(C, R(I), K(8));
  B.br(R(C), Body, Exit);
  B.setInsertPoint(Body);
  B.band(C2, R(I), K(1));
  B.br(R(C2), ThenB, ElseB);
  B.setInsertPoint(ThenB);
  B.add(I, R(I), K(1));
  B.jmp(Header);
  B.setInsertPoint(ElseB);
  B.add(I, R(I), K(1));
  B.jmp(Header);
  B.setInsertPoint(Exit);
  B.ret(R(I));
  M.assignBranchIds();

  const Function &F = M.Functions[0];
  CFG G(F);
  Dominators D(G);
  LoopInfo LI(G, D);
  std::vector<BranchClass> Classes;
  classifyBranches(F, G, LI, Classes);
  ASSERT_EQ(Classes.size(), 2u);
  EXPECT_EQ(Classes[0].Kind, BranchKind::LoopExit);
  EXPECT_EQ(Classes[1].Kind, BranchKind::IntraLoop);
}

TEST(BranchClass, NonLoopBranch) {
  Module M = diamond();
  const Function &F = M.Functions[0];
  CFG G(F);
  Dominators D(G);
  LoopInfo LI(G, D);
  std::vector<BranchClass> Classes;
  classifyBranches(F, G, LI, Classes);
  ASSERT_EQ(Classes.size(), 1u);
  EXPECT_EQ(Classes[0].Kind, BranchKind::NonLoop);
}

// -- Path enumeration -------------------------------------------------------------

TEST(PathEnum, DiamondJoinHasTwoSingleStepPaths) {
  Module M = diamond();
  const Function &F = M.Functions[0];
  CFG G(F);
  // Paths into the join pass through the jumps of left/right, carrying the
  // decision of branch 0.
  std::vector<BranchPath> Paths = enumerateBackwardPaths(F, G, 3, 2);
  ASSERT_EQ(Paths.size(), 2u);
  for (const BranchPath &P : Paths) {
    ASSERT_EQ(P.Steps.size(), 1u);
    EXPECT_EQ(P.Steps[0].BranchId, 0);
  }
  EXPECT_NE(Paths[0].Steps[0].Taken, Paths[1].Steps[0].Taken);
}

TEST(PathEnum, DirectModeSkipsJumpMediatedPaths) {
  Module M = diamond();
  const Function &F = M.Functions[0];
  CFG G(F);
  // Without jump traversal, the only predecessors of the join are the
  // jump-terminated blocks, so no decision paths are found.
  std::vector<BranchPath> Paths =
      enumerateBackwardPaths(F, G, 3, 2, /*ThroughJumps=*/false);
  EXPECT_TRUE(Paths.empty());
}

TEST(PathEnum, ChainOfBranchesYieldsLongPaths) {
  // b0 -> (x|y), both -> b1 block with a branch -> target.
  Module M;
  M.MemWords = 1;
  uint32_t Main = M.addFunction("main", 0);
  IRBuilder B(M, Main);
  Reg C = B.newReg();
  uint32_t Entry = B.newBlock("entry");  // branch 0
  uint32_t Mid = B.newBlock("mid");      // branch 1
  uint32_t Other = B.newBlock("other");  // branch 2 (also targets Mid)
  uint32_t Target = B.newBlock("target");
  uint32_t End = B.newBlock("end");
  B.setInsertPoint(Entry);
  B.movImm(C, 1);
  B.br(R(C), Mid, Other);
  B.setInsertPoint(Other);
  B.br(R(C), Mid, End);
  B.setInsertPoint(Mid);
  B.br(R(C), Target, End);
  B.setInsertPoint(Target);
  B.ret(K(0));
  B.setInsertPoint(End);
  B.ret(K(1));
  M.assignBranchIds();

  const Function &F = M.Functions[0];
  CFG G(F);
  std::vector<BranchPath> Paths = enumerateBackwardPaths(F, G, Target, 2);
  // Length-1: (mid, taken). Length-2: (entry taken, mid taken) and
  // (other taken, mid taken).
  ASSERT_EQ(Paths.size(), 3u);
  int Len1 = 0, Len2 = 0;
  for (const BranchPath &P : Paths)
    (P.Steps.size() == 1 ? Len1 : Len2)++;
  EXPECT_EQ(Len1, 1);
  EXPECT_EQ(Len2, 2);
}

TEST(PathEnum, TerminatesOnCycles) {
  Module M = simpleLoop();
  const Function &F = M.Functions[0];
  CFG G(F);
  // Walking backward from the header cycles through the body; the length
  // cap must terminate the walk.
  std::vector<BranchPath> Paths = enumerateBackwardPaths(F, G, 1, 4);
  EXPECT_FALSE(Paths.empty());
  for (const BranchPath &P : Paths)
    EXPECT_LE(P.Steps.size(), 4u);
}
