//===- tests/test_tracespans.cpp - Span tracer and report compare ---------===//
//
// Part of the bpcr project (Krall, PLDI 1994 reproduction).
//
//===----------------------------------------------------------------------===//

#include "obs/Compare.h"
#include "obs/Json.h"
#include "obs/Metrics.h"
#include "obs/Report.h"
#include "obs/TraceSpans.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <vector>

using namespace bpcr;

namespace {

JsonValue mustParse(const std::string &Text) {
  std::string Error;
  JsonValue V = parseJson(Text, Error);
  EXPECT_TRUE(Error.empty()) << Error;
  return V;
}

/// A minimal but schema-valid run report for compare tests. \p Extra is
/// spliced into the metrics object verbatim.
std::string reportText(const std::string &Extra) {
  return "{\"schema_version\": " + std::to_string(ReportSchemaVersion) +
         ", \"tool\": \"unit\", \"command\": \"test\","
         " \"workload\": \"compress\", \"seed\": 1, \"events\": 1000,"
         " \"metrics\": {" +
         Extra +
         "}, \"pipeline\": {\"code_size\": {\"factor\": 1.5}}}";
}

} // namespace

// -- SpanTracer recording -----------------------------------------------------

TEST(TraceSpans, DisabledTracerRecordsNothing) {
  SpanTracer T; // disabled by default
  EXPECT_FALSE(T.enabled());
  {
    Span S("pipeline.replicate", "pipeline", T);
    S.arg("events", int64_t{42}); // must be a no-op, not a crash
  }
  EXPECT_EQ(T.spanCount(), 0u);
  EXPECT_EQ(T.droppedCount(), 0u);
}

TEST(TraceSpans, NestedSpansTrackDepthAndContainment) {
  SpanTracer T;
  T.setEnabled(true);
  {
    Span Outer("pipeline.replicate", "pipeline", T);
    {
      Span Inner("pipeline.phase.profiling", "pipeline", T);
    }
    {
      Span Inner("pipeline.phase.machine_search", "pipeline", T);
    }
  }
  std::vector<SpanEvent> Events = T.snapshot();
  ASSERT_EQ(Events.size(), 3u);

  // Per-thread buffers hold completion order: children before the parent.
  EXPECT_STREQ(Events[0].Name, "pipeline.phase.profiling");
  EXPECT_STREQ(Events[1].Name, "pipeline.phase.machine_search");
  EXPECT_STREQ(Events[2].Name, "pipeline.replicate");
  const SpanEvent &Parent = Events[2];
  EXPECT_EQ(Parent.Depth, 0u);
  for (int I = 0; I < 2; ++I) {
    const SpanEvent &Child = Events[I];
    EXPECT_EQ(Child.Depth, 1u);
    EXPECT_EQ(Child.Tid, Parent.Tid);
    // The child's interval lies inside the parent's.
    EXPECT_GE(Child.StartNs, Parent.StartNs);
    EXPECT_LE(Child.StartNs + Child.DurNs, Parent.StartNs + Parent.DurNs);
  }
  // The two siblings do not overlap.
  EXPECT_LE(Events[0].StartNs + Events[0].DurNs, Events[1].StartNs);
}

TEST(TraceSpans, ExplicitEndIsIdempotent) {
  SpanTracer T;
  T.setEnabled(true);
  {
    Span S("search.exit.candidate", "search", T);
    S.end();
    S.end(); // second end (and the destructor) must not double-record
  }
  EXPECT_EQ(T.spanCount(), 1u);
  std::vector<SpanEvent> Events = T.snapshot();
  ASSERT_EQ(Events.size(), 1u);
  EXPECT_EQ(Events[0].Depth, 0u);
}

TEST(TraceSpans, SamplingCapDropsAndCountsPerCategory) {
  Registry &G = Registry::global();
  G.clear();
  G.setEnabled(true);

  SpanTracer T;
  T.setEnabled(true);
  T.setSampleLimit(2);
  for (int I = 0; I < 5; ++I) {
    Span S("search.intra_loop.candidate", "search", T);
  }
  // A different category has its own budget.
  {
    Span S("cache.run", "cache", T);
  }
  EXPECT_EQ(T.spanCount(), 3u); // 2 search + 1 cache
  EXPECT_EQ(T.droppedCount(), 3u);
  EXPECT_EQ(G.counter("obs.trace.spans_dropped").value(), 3u);

  // Sampled-out spans must still balance the nesting depth.
  {
    Span Dropped("search.intra_loop.candidate", "search", T);
    Span Kept("cache.run", "cache", T);
    Kept.end();
    std::vector<SpanEvent> Events = T.snapshot();
    EXPECT_EQ(Events.back().Depth, 1u); // nested under the dropped span
  }

  G.clear();
  G.setEnabled(false);
}

TEST(TraceSpans, ClearResetsSpansAndDropCounter) {
  SpanTracer T;
  T.setEnabled(true);
  T.setSampleLimit(1);
  for (int I = 0; I < 3; ++I) {
    Span S("sweep.point", "sweep", T);
  }
  EXPECT_EQ(T.spanCount(), 1u);
  EXPECT_EQ(T.droppedCount(), 2u);
  T.clear();
  EXPECT_EQ(T.spanCount(), 0u);
  EXPECT_EQ(T.droppedCount(), 0u);
  EXPECT_TRUE(T.enabled()); // clear keeps the enabled flag
  // The per-category budget is reset too: recording works again.
  {
    Span S("sweep.point", "sweep", T);
  }
  EXPECT_EQ(T.spanCount(), 1u);
}

// -- Chrome Trace export ------------------------------------------------------

TEST(TraceSpans, SpansJsonIsValidChromeTrace) {
  SpanTracer T;
  T.setEnabled(true);
  {
    Span Outer("pipeline.replicate", "pipeline", T);
    Outer.arg("orig_instructions", int64_t{128});
    Outer.arg("size_factor", 1.25);
    Outer.arg("workload", "compress");
    {
      Span Inner("pipeline.phase.profiling", "pipeline", T);
    }
  }

  JsonValue Doc = spansJson(T, "unit-test");
  // The document round-trips through the strict parser.
  JsonValue Back = mustParse(Doc.dump(0));
  EXPECT_EQ(Doc, Back);

  const JsonValue *Events = Back.find("traceEvents");
  ASSERT_NE(Events, nullptr);
  ASSERT_EQ(Events->size(), 3u); // metadata + 2 spans

  // First event is the process_name metadata record.
  const JsonValue &Meta = Events->at(0);
  EXPECT_EQ(Meta.find("ph")->asString(), "M");
  EXPECT_EQ(Meta.find("name")->asString(), "process_name");
  EXPECT_EQ(Meta.find("args")->find("name")->asString(), "unit-test");

  // Spans are complete ("X") events with microsecond ts/dur, sorted by
  // start time, so the parent precedes the nested child.
  const JsonValue &Parent = Events->at(1);
  const JsonValue &Child = Events->at(2);
  for (const JsonValue *E : {&Parent, &Child}) {
    EXPECT_EQ(E->find("ph")->asString(), "X");
    EXPECT_EQ(E->find("pid")->asInt(), 1);
    ASSERT_NE(E->find("ts"), nullptr);
    ASSERT_NE(E->find("dur"), nullptr);
    EXPECT_GE(E->find("dur")->asDouble(), 0.0);
    EXPECT_FALSE(E->find("cat")->asString().empty());
  }
  EXPECT_EQ(Parent.find("name")->asString(), "pipeline.replicate");
  EXPECT_EQ(Child.find("name")->asString(), "pipeline.phase.profiling");
  EXPECT_LE(Parent.find("ts")->asDouble(), Child.find("ts")->asDouble());

  // Args of every kind survive the export.
  const JsonValue *Args = Parent.find("args");
  ASSERT_NE(Args, nullptr);
  EXPECT_EQ(Args->find("orig_instructions")->asInt(), 128);
  EXPECT_DOUBLE_EQ(Args->find("size_factor")->asDouble(), 1.25);
  EXPECT_EQ(Args->find("workload")->asString(), "compress");

  EXPECT_EQ(Back.find("otherData")->find("span_count")->asInt(), 2);
  EXPECT_EQ(Back.find("otherData")->find("spans_dropped")->asInt(), 0);
  EXPECT_EQ(Back.find("displayTimeUnit")->asString(), "ms");
}

TEST(TraceSpans, WriteSpanTraceFailsWithDescriptiveError) {
  SpanTracer T;
  std::string Error;
  EXPECT_FALSE(
      writeSpanTrace("/nonexistent/dir/trace.json", T, "unit", Error));
  EXPECT_NE(Error.find("/nonexistent/dir/trace.json"), std::string::npos)
      << Error;
}

TEST(TraceSpans, ExtractTraceOutFlagSplicesArgv) {
  char A0[] = "bpcr", A1[] = "replicate", A2[] = "--trace-out",
       A3[] = "/tmp/bpcr_test_trace.json", A4[] = "compress";
  char *Argv[] = {A0, A1, A2, A3, A4};
  int Argc = 5;
  std::string Path, Error;
  ASSERT_TRUE(extractTraceOutFlag(Argc, Argv, Path, Error)) << Error;
  EXPECT_EQ(Path, "/tmp/bpcr_test_trace.json");
  // The flag pair is gone and the remaining order is preserved.
  ASSERT_EQ(Argc, 3);
  EXPECT_STREQ(Argv[0], "bpcr");
  EXPECT_STREQ(Argv[1], "replicate");
  EXPECT_STREQ(Argv[2], "compress");
  // Finding a path enables the global tracer; undo for other tests.
  EXPECT_TRUE(SpanTracer::global().enabled());
  SpanTracer::global().setEnabled(false);
  SpanTracer::global().clear();
}

TEST(TraceSpans, ExtractTraceOutFlagRejectsMissingValue) {
  char A0[] = "bpcr", A1[] = "--trace-out";
  char *Argv[] = {A0, A1};
  int Argc = 2;
  std::string Path, Error;
  EXPECT_FALSE(extractTraceOutFlag(Argc, Argv, Path, Error));
  EXPECT_NE(Error.find("--trace-out"), std::string::npos) << Error;
  EXPECT_TRUE(Path.empty());
  EXPECT_FALSE(SpanTracer::global().enabled());
}

TEST(TraceSpans, ExtractTraceOutFlagFallsBackToEnv) {
  ::setenv("BPCR_TRACE_OUT", "/tmp/bpcr_env_trace.json", 1);
  char A0[] = "bpcr", A1[] = "list";
  char *Argv[] = {A0, A1};
  int Argc = 2;
  std::string Path, Error;
  ASSERT_TRUE(extractTraceOutFlag(Argc, Argv, Path, Error)) << Error;
  EXPECT_EQ(Path, "/tmp/bpcr_env_trace.json");
  EXPECT_EQ(Argc, 2); // nothing spliced
  ::unsetenv("BPCR_TRACE_OUT");
  SpanTracer::global().setEnabled(false);
  SpanTracer::global().clear();
}

// -- Glob and rule matching ---------------------------------------------------

TEST(Compare, GlobMatchSemantics) {
  EXPECT_TRUE(globMatch("*", ""));
  EXPECT_TRUE(globMatch("*", "anything.at.all"));
  EXPECT_TRUE(globMatch("phases.*", "phases.pipeline.phase.profiling"));
  EXPECT_FALSE(globMatch("phases.*", "gauges.phases"));
  EXPECT_TRUE(globMatch("*_ns*", "phases.x.total_ns"));
  EXPECT_TRUE(globMatch("*_ns*", "gauges.a_ns_rate"));
  EXPECT_FALSE(globMatch("*_ns*", "counters.events"));
  EXPECT_TRUE(globMatch("counters.obs.trace.*",
                        "counters.obs.trace.spans_dropped"));
  EXPECT_TRUE(globMatch("a*b*c", "a-x-b-y-c"));
  EXPECT_FALSE(globMatch("a*b*c", "a-x-c"));
  EXPECT_FALSE(globMatch("exact", "exact.not"));
  EXPECT_TRUE(globMatch("exact", "exact"));
}

// -- compareReports -----------------------------------------------------------

TEST(Compare, IdenticalReportsPass) {
  JsonValue Doc = mustParse(reportText(
      "\"counters\": {\"interp.branch_events\": 1000},"
      " \"gauges\": {\"replication.realized.rate\": 4.25}"));
  CompareResult R = compareReports(Doc, Doc, CompareOptions{});
  EXPECT_TRUE(R.ok());
  EXPECT_EQ(R.Regressions, 0u);
  EXPECT_TRUE(R.Warnings.empty());
  // counters + gauges + pipeline.code_size.factor all flattened.
  EXPECT_EQ(R.Deltas.size(), 3u);
}

TEST(Compare, ExactEqualityGateCatchesAnyDrift) {
  JsonValue Old =
      mustParse(reportText("\"counters\": {\"interp.branch_events\": 1000}"));
  JsonValue New =
      mustParse(reportText("\"counters\": {\"interp.branch_events\": 1001}"));
  CompareResult R = compareReports(Old, New, CompareOptions{});
  EXPECT_FALSE(R.ok());
  EXPECT_EQ(R.Regressions, 1u);
  const MetricDelta *D = nullptr;
  for (const MetricDelta &Cand : R.Deltas)
    if (Cand.Name == "counters.interp.branch_events")
      D = &Cand;
  ASSERT_NE(D, nullptr);
  EXPECT_TRUE(D->Regressed);
  EXPECT_NEAR(D->RelDelta, 0.001, 1e-9);
  EXPECT_EQ(D->RulePattern, "*");
}

TEST(Compare, WallClockMetricsAreReportOnly) {
  JsonValue Old = mustParse(reportText(
      "\"phases\": {\"pipeline.phase.profiling\": {\"total_ns\": 100.0}},"
      " \"gauges\": {\"interp.events_per_sec\": 1e6}"));
  JsonValue New = mustParse(reportText(
      "\"phases\": {\"pipeline.phase.profiling\": {\"total_ns\": 900.0}},"
      " \"gauges\": {\"interp.events_per_sec\": 9e6}"));
  CompareResult R = compareReports(Old, New, CompareOptions{});
  EXPECT_TRUE(R.ok()) << renderCompareResult(R);
  for (const MetricDelta &D : R.Deltas) {
    if (D.Name.find("phases.") == 0 ||
        D.Name.find("per_sec") != std::string::npos) {
      EXPECT_TRUE(D.Skipped) << D.Name;
    }
  }
}

TEST(Compare, ThresholdRuleAllowsBoundedDelta) {
  JsonValue Old =
      mustParse(reportText("\"gauges\": {\"table1.profile.compress\": 10.0}"));
  JsonValue New =
      mustParse(reportText("\"gauges\": {\"table1.profile.compress\": 10.9}"));

  CompareOptions Opts;
  std::string Error;
  ASSERT_TRUE(parseThresholdRules(
      "{\"rules\": [{\"pattern\": \"gauges.table1.*\","
      " \"max_rel_delta\": 0.10, \"direction\": \"up\"}]}",
      Opts, Error))
      << Error;
  // +9% under a 10% up-gate passes...
  EXPECT_TRUE(compareReports(Old, New, Opts).ok());
  // ...and the same movement down passes trivially under direction "up".
  EXPECT_TRUE(compareReports(New, Old, Opts).ok());

  // +12% crosses it.
  JsonValue Worse =
      mustParse(reportText("\"gauges\": {\"table1.profile.compress\": 11.2}"));
  CompareResult R = compareReports(Old, Worse, Opts);
  EXPECT_FALSE(R.ok());
  EXPECT_EQ(R.Regressions, 1u);
}

TEST(Compare, DefaultKeyLoosensTheCatchAll) {
  JsonValue Old =
      mustParse(reportText("\"counters\": {\"interp.branch_events\": 100}"));
  JsonValue New =
      mustParse(reportText("\"counters\": {\"interp.branch_events\": 104}"));
  CompareOptions Opts;
  std::string Error;
  ASSERT_TRUE(parseThresholdRules("{\"default\": 0.05}", Opts, Error))
      << Error;
  EXPECT_TRUE(compareReports(Old, New, Opts).ok());
  EXPECT_FALSE(compareReports(Old, New, CompareOptions{}).ok());
}

TEST(Compare, RemovedGatedMetricRegressesAddedOnePasses) {
  JsonValue Both = mustParse(reportText(
      "\"counters\": {\"a.events\": 1, \"b.events\": 2}"));
  JsonValue OnlyA =
      mustParse(reportText("\"counters\": {\"a.events\": 1}"));
  // Removing a gated metric fails (the gate cannot be dodged by deletion).
  CompareResult Removed = compareReports(Both, OnlyA, CompareOptions{});
  EXPECT_FALSE(Removed.ok());
  // A brand-new metric has no baseline yet and passes.
  CompareResult Added = compareReports(OnlyA, Both, CompareOptions{});
  EXPECT_TRUE(Added.ok()) << renderCompareResult(Added);
}

TEST(Compare, ContextMismatchWarnsButCompares) {
  JsonValue Old = mustParse(reportText("\"counters\": {\"a.events\": 1}"));
  std::string NewText =
      "{\"schema_version\": " + std::to_string(ReportSchemaVersion) +
      ", \"tool\": \"unit\", \"command\": \"test\","
      " \"workload\": \"abalone\", \"seed\": 2, \"events\": 1000,"
      " \"metrics\": {\"counters\": {\"a.events\": 1}},"
      " \"pipeline\": {\"code_size\": {\"factor\": 1.5}}}";
  CompareResult R = compareReports(Old, mustParse(NewText), CompareOptions{});
  EXPECT_EQ(R.Regressions, 0u);
  ASSERT_EQ(R.Warnings.size(), 2u); // workload and seed differ
  EXPECT_NE(R.Warnings[0].find("workload"), std::string::npos);
  EXPECT_NE(R.Warnings[1].find("seed"), std::string::npos);
}

TEST(Compare, SchemaVersionIsValidated) {
  JsonValue Good = mustParse(reportText("\"counters\": {}"));
  JsonValue NoVersion = mustParse("{\"metrics\": {}}");
  JsonValue WrongVersion = mustParse(
      "{\"schema_version\": 99, \"metrics\": {\"counters\": {}}}");
  for (const JsonValue *Bad : {&NoVersion, &WrongVersion}) {
    CompareResult R = compareReports(Good, *Bad, CompareOptions{});
    EXPECT_FALSE(R.ok());
    ASSERT_FALSE(R.Errors.empty());
    EXPECT_TRUE(R.Deltas.empty()); // structural error: no diff attempted
  }
}

// -- Threshold file parsing ---------------------------------------------------

TEST(Compare, ThresholdFileRejectsMalformedInput) {
  struct Case {
    const char *Text;
    const char *ErrorPart;
  } Cases[] = {
      {"not json", "byte"},
      {"[]", "must be a JSON object"},
      {"{\"bogus\": 1}", "unknown top-level key"},
      {"{\"rules\": 5}", "'rules' must be an array"},
      {"{\"rules\": [{\"max_rel_delta\": 0.1}]}", "missing 'pattern'"},
      {"{\"rules\": [{\"pattern\": \"\"}]}", "non-empty string"},
      {"{\"rules\": [{\"pattern\": \"a\", \"max_rel_delta\": -1}]}",
       "must be a number >= 0"},
      {"{\"rules\": [{\"pattern\": \"a\", \"direction\": \"sideways\"}]}",
       "'direction'"},
      {"{\"rules\": [{\"pattern\": \"a\", \"skip\": 1}]}",
       "'skip' must be a boolean"},
      {"{\"rules\": [{\"pattern\": \"a\", \"frobnicate\": 1}]}",
       "unknown key"},
      {"{\"default\": -0.5}", "must be >= 0"},
      {"{\"rules\": [true]}", "number or an object"},
  };
  for (const Case &C : Cases) {
    CompareOptions Opts;
    std::string Error;
    EXPECT_FALSE(parseThresholdRules(C.Text, Opts, Error)) << C.Text;
    EXPECT_NE(Error.find(C.ErrorPart), std::string::npos)
        << "input: " << C.Text << "\nerror: " << Error;
  }
}

TEST(Compare, ThresholdFileErrorsNameTheRuleIndex) {
  CompareOptions Opts;
  std::string Error;
  EXPECT_FALSE(parseThresholdRules(
      "{\"rules\": [{\"pattern\": \"ok\"}, {\"pattern\": \"a\", \"bad\": 1}]}",
      Opts, Error));
  EXPECT_NE(Error.find("rules[1]"), std::string::npos) << Error;
}
