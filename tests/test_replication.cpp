//===- tests/test_replication.cpp - Code replication tests ----------------===//
//
// Part of the bpcr project (Krall, PLDI 1994 reproduction).
//
// The key properties: replication NEVER changes program behaviour (same
// return value, memory image and original-branch outcome stream), and the
// replicated program's per-copy static predictions realize the machine's
// accuracy.
//
//===----------------------------------------------------------------------===//

#include "core/MachineSearch.h"
#include "core/Pipeline.h"
#include "core/ProgramAnalysis.h"
#include "core/Replication.h"
#include "interp/Interpreter.h"
#include "ir/IRBuilder.h"
#include "ir/Verifier.h"
#include "trace/Sinks.h"
#include "workloads/Workload.h"

#include <gtest/gtest.h>

using namespace bpcr;

namespace {

Operand R(Reg X) { return Operand::reg(X); }
Operand K(int64_t V) { return Operand::imm(V); }

/// The paper's figure-1 situation: a loop with an alternating intra-loop
/// branch. Branch 0: loop exit (header). Branch 1: alternating (i & 1).
Module alternatingLoop(int64_t Iters) {
  Module M;
  M.MemWords = 8;
  uint32_t Main = M.addFunction("main", 0);
  IRBuilder B(M, Main);
  Reg I = B.newReg(), C = B.newReg(), A = B.newReg(), Bc = B.newReg();
  uint32_t Entry = B.newBlock("entry");
  uint32_t Header = B.newBlock("header");
  uint32_t Body = B.newBlock("body");
  uint32_t Odd = B.newBlock("odd");
  uint32_t Even = B.newBlock("even");
  uint32_t Latch = B.newBlock("latch");
  uint32_t Exit = B.newBlock("exit");
  B.setInsertPoint(Entry);
  B.movImm(I, 0);
  B.movImm(A, 0);
  B.movImm(Bc, 0);
  B.jmp(Header);
  B.setInsertPoint(Header);
  B.cmpLt(C, R(I), K(Iters));
  B.br(R(C), Body, Exit);
  B.setInsertPoint(Body);
  B.band(C, R(I), K(1));
  B.br(R(C), Odd, Even);
  B.setInsertPoint(Odd);
  B.add(A, R(A), K(3));
  B.jmp(Latch);
  B.setInsertPoint(Even);
  B.add(Bc, R(Bc), K(5));
  B.jmp(Latch);
  B.setInsertPoint(Latch);
  B.add(I, R(I), K(1));
  B.jmp(Header);
  B.setInsertPoint(Exit);
  B.store(K(0), K(0), R(A));
  B.store(K(0), K(1), R(Bc));
  B.ret(R(A));
  M.assignBranchIds();
  return M;
}

/// Runs \p M collecting the original-id trace.
struct RunResult {
  ExecResult Exec;
  Trace OrigTrace;
};

RunResult run(const Module &M) {
  RunResult R;
  OrigIdCollectingSink Sink;
  R.Exec = execute(M, &Sink);
  R.OrigTrace = Sink.takeTrace();
  return R;
}

/// Asserts behavioural equivalence of an original and transformed module.
void expectEquivalent(const Module &Orig, const Module &Xform) {
  RunResult A = run(Orig);
  RunResult B = run(Xform);
  ASSERT_TRUE(A.Exec.Ok) << A.Exec.Error;
  ASSERT_TRUE(B.Exec.Ok) << B.Exec.Error;
  EXPECT_EQ(A.Exec.ReturnValue, B.Exec.ReturnValue);
  EXPECT_EQ(A.Exec.Memory, B.Exec.Memory);
  EXPECT_EQ(A.OrigTrace, B.OrigTrace);
}

} // namespace

// -- Loop replication -----------------------------------------------------------

TEST(LoopReplication, Figure1TwoStateMachine) {
  Module M = alternatingLoop(200);
  Trace T;
  {
    CollectingSink Sink;
    ASSERT_TRUE(execute(M, &Sink).Ok);
    T = Sink.takeTrace();
  }

  // Build a 2-state machine for the alternating branch (id 1).
  ProfileSet Profiles(2);
  Profiles.addTrace(T);
  MachineOptions MO;
  MO.MaxStates = 2;
  SuffixMachine Machine = buildIntraLoopMachine(Profiles.branch(1).Table, MO);

  Module X = M;
  ProgramAnalysis PA(X);
  const BranchClass &C = PA.classOf(1);
  ASSERT_EQ(C.Kind, BranchKind::IntraLoop);
  const Loop &L = PA.loopInfoFor(1).loops()[static_cast<size_t>(C.LoopIdx)];
  ReplicationStats RS =
      applyLoopReplication(X.Functions[0], L.Blocks, L.Header, 1, Machine);
  ASSERT_TRUE(RS.Applied);
  X.assignBranchIds();

  EXPECT_TRUE(verifyModule(X).empty());
  expectEquivalent(M, X);

  // The paper discards the unreachable copies ("2b" and "3a"): the
  // replicated function must be smaller than a full 2x duplication.
  EXPECT_LT(X.Functions[0].Blocks.size(), M.Functions[0].Blocks.size() * 2);

  // Measured predictions: annotate the rest with profile and execute.
  TraceStats Stats(2);
  Stats.addTrace(T);
  annotateProfilePredictions(X, Stats);
  PredictionStats Measured = measureAnnotatedPredictions(X, ExecOptions());
  // The alternating branch is now perfectly predicted; the loop branch
  // mispredicts once (the exit). Allow a little warmup slack.
  EXPECT_LE(Measured.Mispredictions, 3u);

  // Baseline: profile-only annotation mispredicts half the alternating
  // branch's executions.
  Module P = M;
  annotateProfilePredictions(P, Stats);
  PredictionStats Profile = measureAnnotatedPredictions(P, ExecOptions());
  EXPECT_GT(Profile.Mispredictions, 90u);
}

TEST(LoopReplication, ExitChainOnConstantTripLoop) {
  // Outer loop runs 100 times; inner loop always 4 iterations.
  Module M;
  M.MemWords = 4;
  uint32_t Main = M.addFunction("main", 0);
  IRBuilder B(M, Main);
  Reg I = B.newReg(), J = B.newReg(), C = B.newReg(), S = B.newReg();
  uint32_t Entry = B.newBlock("entry");
  uint32_t Outer = B.newBlock("outer");
  uint32_t Inner = B.newBlock("inner");
  uint32_t InnerBody = B.newBlock("inner_body");
  uint32_t Latch = B.newBlock("latch");
  uint32_t Exit = B.newBlock("exit");
  B.setInsertPoint(Entry);
  B.movImm(I, 0);
  B.movImm(S, 0);
  B.jmp(Outer);
  B.setInsertPoint(Outer);
  B.movImm(J, 0);
  B.jmp(Inner);
  B.setInsertPoint(Inner);
  B.cmpLt(C, R(J), K(4));
  B.br(R(C), InnerBody, Latch);
  B.setInsertPoint(InnerBody);
  B.add(S, R(S), R(J));
  B.add(J, R(J), K(1));
  B.jmp(Inner);
  B.setInsertPoint(Latch);
  B.add(I, R(I), K(1));
  B.cmpLt(C, R(I), K(100));
  B.br(R(C), Outer, Exit);
  B.setInsertPoint(Exit);
  B.store(K(0), K(0), R(S));
  B.ret(R(S));
  M.assignBranchIds();

  Trace T;
  {
    CollectingSink Sink;
    ASSERT_TRUE(execute(M, &Sink).Ok);
    T = Sink.takeTrace();
  }
  ProfileSet Profiles(2);
  Profiles.addTrace(T);

  ProgramAnalysis PA(M);
  const BranchClass &C0 = PA.classOf(0); // inner header branch
  ASSERT_EQ(C0.Kind, BranchKind::LoopExit);
  ExitChainMachine Machine =
      buildExitMachine(Profiles.branch(0).Table, 6, !C0.TakenExits);

  Module X = M;
  const Loop &L =
      PA.loopInfoFor(0).loops()[static_cast<size_t>(C0.LoopIdx)];
  ReplicationStats RS =
      applyLoopReplication(X.Functions[0], L.Blocks, L.Header, 0, Machine);
  ASSERT_TRUE(RS.Applied);
  X.assignBranchIds();
  EXPECT_TRUE(verifyModule(X).empty());
  expectEquivalent(M, X);

  TraceStats Stats(2);
  Stats.addTrace(T);
  annotateProfilePredictions(X, Stats);
  PredictionStats Measured = measureAnnotatedPredictions(X, ExecOptions());
  // 500 executions of the inner branch: profile gets 100 wrong (the
  // exits); the chain machine gets nearly all right.
  EXPECT_LE(Measured.Mispredictions, 10u);
}

TEST(LoopReplication, HandlesAllMachineSizes) {
  for (unsigned States = 2; States <= 6; ++States) {
    Module M = alternatingLoop(64);
    Trace T;
    {
      CollectingSink Sink;
      ASSERT_TRUE(execute(M, &Sink).Ok);
      T = Sink.takeTrace();
    }
    ProfileSet Profiles(2);
    Profiles.addTrace(T);
    MachineOptions MO;
    MO.MaxStates = States;
    SuffixMachine Machine =
        buildIntraLoopMachine(Profiles.branch(1).Table, MO);
    Module X = M;
    ProgramAnalysis PA(X);
    const BranchClass &C = PA.classOf(1);
    const Loop &L =
        PA.loopInfoFor(1).loops()[static_cast<size_t>(C.LoopIdx)];
    ReplicationStats RS =
        applyLoopReplication(X.Functions[0], L.Blocks, L.Header, 1, Machine);
    ASSERT_TRUE(RS.Applied);
    X.assignBranchIds();
    ASSERT_TRUE(verifyModule(X).empty()) << "states=" << States;
    expectEquivalent(M, X);
  }
}

// -- Correlated replication -------------------------------------------------------

namespace {

/// b0 branches into X directly on both edges; the branch in X repeats b0's
/// decision. One-step correlated paths predict it perfectly.
Module copyBranchModule(int64_t Iters) {
  Module M;
  M.MemWords = 8;
  uint32_t Main = M.addFunction("main", 0);
  IRBuilder B(M, Main);
  Reg I = B.newReg(), C = B.newReg(), A = B.newReg();
  uint32_t Entry = B.newBlock("entry");
  uint32_t Header = B.newBlock("header");
  uint32_t Decide = B.newBlock("decide"); // b1 (id 1)
  uint32_t X = B.newBlock("x");           // b2 (id 2): copies b1
  uint32_t Yes = B.newBlock("yes");
  uint32_t No = B.newBlock("no");
  uint32_t Latch = B.newBlock("latch");
  uint32_t Exit = B.newBlock("exit");
  B.setInsertPoint(Entry);
  B.movImm(I, 0);
  B.movImm(A, 0);
  B.jmp(Header);
  B.setInsertPoint(Header);
  B.cmpLt(C, R(I), K(Iters)); // id 0
  B.br(R(C), Decide, Exit);
  B.setInsertPoint(Decide);
  B.band(C, R(I), K(2));
  B.br(R(C), X, X); // id 1: both edges into X (decision is recorded)
  B.setInsertPoint(X);
  B.band(C, R(I), K(2));
  B.br(R(C), Yes, No); // id 2: same decision as id 1
  B.setInsertPoint(Yes);
  B.add(A, R(A), K(7));
  B.jmp(Latch);
  B.setInsertPoint(No);
  B.add(A, R(A), K(1));
  B.jmp(Latch);
  B.setInsertPoint(Latch);
  B.add(I, R(I), K(1));
  B.jmp(Header);
  B.setInsertPoint(Exit);
  B.store(K(0), K(0), R(A));
  B.ret(R(A));
  M.assignBranchIds();
  return M;
}

} // namespace

TEST(CorrelatedReplication, OneStepPathsSplitTheCopyBranch) {
  Module M = copyBranchModule(200);
  Trace T;
  {
    CollectingSink Sink;
    ASSERT_TRUE(execute(M, &Sink).Ok);
    T = Sink.takeTrace();
  }

  ProgramAnalysis PA(M);
  std::vector<BranchPath> Cands =
      PA.backwardPaths(2, 1, /*ThroughJumps=*/false);
  ASSERT_EQ(Cands.size(), 2u); // (1,T) and (1,F)

  CorrelatedOptions CO;
  CO.MaxStates = 3;
  CO.MaxPathLen = 1;
  CorrelatedMachine CM = buildCorrelatedMachine(2, Cands, T, CO);
  EXPECT_EQ(CM.Total - CM.Correct, 0u);

  Module X = M;
  ReplicationStats RS = applyCorrelatedReplication(X.Functions[0], 2, CM);
  ASSERT_TRUE(RS.Applied);
  X.assignBranchIds();
  EXPECT_TRUE(verifyModule(X).empty());
  expectEquivalent(M, X);

  TraceStats Stats(3);
  Stats.addTrace(T);
  annotateProfilePredictions(X, Stats);
  PredictionStats Measured = measureAnnotatedPredictions(X, ExecOptions());
  // Branches 1 and 2 alternate in phase (i & 2): local machines would also
  // work, but here branch 2's copies must be perfect thanks to the paths.
  // Remaining mispredictions: loop exit (1) and branch 1's profile errors.
  Module P = M;
  annotateProfilePredictions(P, Stats);
  PredictionStats Profile = measureAnnotatedPredictions(P, ExecOptions());
  EXPECT_LE(Measured.Mispredictions + 95, Profile.Mispredictions);
}

TEST(CorrelatedReplication, SkipsWhenTargetAmbiguous) {
  Module M = copyBranchModule(50);
  Module X = M;
  // Duplicate the target block so the transform cannot identify a unique
  // instance; it must refuse rather than corrupt the function.
  Function &F = X.Functions[0];
  F.Blocks.push_back(F.Blocks[3]);
  CorrelatedMachine CM;
  CM.BranchId = 2;
  CM.MaxPathLen = 1;
  CM.Paths.push_back(BranchPath{{PathStep{1, true}}});
  CM.PathPred = {1};
  ReplicationStats RS = applyCorrelatedReplication(F, 2, CM);
  EXPECT_FALSE(RS.Applied);
}

// -- Utilities ----------------------------------------------------------------------

TEST(PruneUnreachable, RemovesAndRemaps) {
  Module M = alternatingLoop(10);
  Function &F = M.Functions[0];
  // Add two unreachable blocks referencing each other.
  IRBuilder B(M, 0);
  uint32_t Dead1 = B.newBlock("dead1");
  uint32_t Dead2 = B.newBlock("dead2");
  B.setInsertPoint(Dead1);
  B.jmp(Dead2);
  B.setInsertPoint(Dead2);
  B.jmp(Dead1);
  ASSERT_TRUE(verifyModule(M).empty());
  uint32_t Removed = pruneUnreachableBlocks(F);
  EXPECT_EQ(Removed, 2u);
  EXPECT_TRUE(verifyModule(M).empty());
  ASSERT_TRUE(execute(M).Ok);
}

TEST(PruneUnreachable, NoOpOnCleanFunction) {
  Module M = alternatingLoop(10);
  EXPECT_EQ(pruneUnreachableBlocks(M.Functions[0]), 0u);
}

TEST(Annotation, ProfileAnnotationMatchesTraceStats) {
  Module M = alternatingLoop(100);
  Trace T;
  {
    CollectingSink Sink;
    ASSERT_TRUE(execute(M, &Sink).Ok);
    T = Sink.takeTrace();
  }
  TraceStats Stats(2);
  Stats.addTrace(T);
  annotateProfilePredictions(M, Stats);
  PredictionStats Measured = measureAnnotatedPredictions(M, ExecOptions());
  uint64_t ExpectedMiss = Stats.branch(0).profileMispredictions() +
                          Stats.branch(1).profileMispredictions();
  EXPECT_EQ(Measured.Mispredictions, ExpectedMiss);
}

// -- End-to-end pipeline over the whole suite ---------------------------------------

class PipelineOnWorkload : public ::testing::TestWithParam<size_t> {};

TEST_P(PipelineOnWorkload, PreservesBehaviourAndImprovesPrediction) {
  const Workload &W = allWorkloads()[GetParam()];
  Module M;
  Trace T = traceWorkload(W, 1, M, 300'000);

  PipelineOptions Opts;
  Opts.Strategy.MaxStates = 4;
  Opts.Strategy.NodeBudget = 20'000;
  Opts.MaxSizeFactor = 8.0;
  PipelineResult PR = replicateModule(M, T, Opts);

  ASSERT_TRUE(verifyModule(PR.Transformed).empty()) << W.Name;

  // Behavioural equivalence under the same branch-event budget.
  ExecOptions EO;
  EO.MaxBranchEvents = 300'000;
  OrigIdCollectingSink SA, SB;
  ExecResult RA = execute(M, &SA, EO);
  ExecResult RB = execute(PR.Transformed, &SB, EO);
  ASSERT_TRUE(RA.Ok) << RA.Error;
  ASSERT_TRUE(RB.Ok) << RB.Error;
  EXPECT_EQ(RA.ReturnValue, RB.ReturnValue) << W.Name;
  EXPECT_EQ(RA.Memory, RB.Memory) << W.Name;
  EXPECT_EQ(SA.trace(), SB.trace()) << W.Name;

  // Prediction quality: the replicated program must not be worse than the
  // profile-annotated original.
  Module P = M;
  TraceStats Stats(static_cast<uint32_t>(M.conditionalBranchCount()));
  Stats.addTrace(T);
  annotateProfilePredictions(P, Stats);
  PredictionStats ProfileStats = measureAnnotatedPredictions(P, EO);
  PredictionStats ReplStats =
      measureAnnotatedPredictions(PR.Transformed, EO);
  EXPECT_LE(ReplStats.Mispredictions,
            ProfileStats.Mispredictions + ProfileStats.Predictions / 100)
      << W.Name;
}

INSTANTIATE_TEST_SUITE_P(AllWorkloads, PipelineOnWorkload,
                         ::testing::Range<size_t>(0, 8));

namespace {

/// Two-step correlated chain: b0 decides, then b1's block (reached directly
/// from b0 on both edges) decides, then X repeats b0's decision — only the
/// 2-step path (b0, b1) disambiguates X.
Module twoStepPathModule(int64_t Iters) {
  Module M;
  M.MemWords = 8;
  uint32_t Main = M.addFunction("main", 0);
  IRBuilder B(M, Main);
  Reg I = B.newReg(), C = B.newReg(), A = B.newReg();
  uint32_t Entry = B.newBlock("entry");
  uint32_t Header = B.newBlock("header");    // id 0
  uint32_t First = B.newBlock("first");      // id 1: i & 2
  uint32_t Second = B.newBlock("second");    // id 2: i & 1 (noise)
  uint32_t X = B.newBlock("x");              // id 3: repeats id 1
  uint32_t Yes = B.newBlock("yes");
  uint32_t No = B.newBlock("no");
  uint32_t Latch = B.newBlock("latch");
  uint32_t Exit = B.newBlock("exit");
  B.setInsertPoint(Entry);
  B.movImm(I, 0);
  B.movImm(A, 0);
  B.jmp(Header);
  B.setInsertPoint(Header);
  B.cmpLt(C, R(I), K(Iters));
  B.br(R(C), First, Exit);
  B.setInsertPoint(First);
  B.band(C, R(I), K(2));
  B.br(R(C), Second, Second); // decision recorded, both edges to Second
  B.setInsertPoint(Second);
  B.band(C, R(I), K(1));
  B.br(R(C), X, X); // interleaved noise decision
  B.setInsertPoint(X);
  B.band(C, R(I), K(2));
  B.br(R(C), Yes, No); // equals branch 1's decision
  B.setInsertPoint(Yes);
  B.add(A, R(A), K(3));
  B.jmp(Latch);
  B.setInsertPoint(No);
  B.add(A, R(A), K(5));
  B.jmp(Latch);
  B.setInsertPoint(Latch);
  B.add(I, R(I), K(1));
  B.jmp(Header);
  B.setInsertPoint(Exit);
  B.store(K(0), K(0), R(A));
  B.ret(R(A));
  M.assignBranchIds();
  return M;
}

} // namespace

TEST(CorrelatedReplication, TwoStepPathsChainThroughMiddleBlock) {
  Module M = twoStepPathModule(240);
  Trace T;
  {
    CollectingSink Sink;
    ASSERT_TRUE(execute(M, &Sink).Ok);
    T = Sink.takeTrace();
  }

  ProgramAnalysis PA(M);
  std::vector<BranchPath> Cands = PA.backwardPaths(3, 2);
  CorrelatedOptions CO;
  CO.MaxStates = 6;
  CO.MaxPathLen = 2;
  CorrelatedMachine CM = buildCorrelatedMachine(3, Cands, T, CO);
  // The 1-step path (branch 2) is noise; the 2-step paths through branch 1
  // predict branch 3 perfectly.
  EXPECT_EQ(CM.Total - CM.Correct, 0u);
  bool HasTwoStep = false;
  for (const BranchPath &P : CM.Paths)
    HasTwoStep |= (P.Steps.size() == 2);
  EXPECT_TRUE(HasTwoStep);

  Module X = M;
  ReplicationStats RS = applyCorrelatedReplication(X.Functions[0], 3, CM);
  ASSERT_TRUE(RS.Applied);
  X.assignBranchIds();
  ASSERT_TRUE(verifyModule(X).empty());
  expectEquivalent(M, X);

  TraceStats Stats(4);
  Stats.addTrace(T);
  annotateProfilePredictions(X, Stats);
  PredictionStats Measured = measureAnnotatedPredictions(X, ExecOptions());
  Module P = M;
  annotateProfilePredictions(P, Stats);
  PredictionStats Profile = measureAnnotatedPredictions(P, ExecOptions());
  // Branch 3 executes 240 times at ~50% profile misprediction; the chained
  // replication should recover nearly all of it.
  EXPECT_LE(Measured.Mispredictions + 100, Profile.Mispredictions);
}
