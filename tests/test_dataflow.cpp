//===- tests/test_dataflow.cpp - Dataflow proof engine tests --------------===//
//
// Part of the bpcr project (Krall, PLDI 1994 reproduction).
//
// The monotone-framework solver and the proof passes built on it, pinned
// against hand-computed fixpoints: forward interval propagation (the
// const-prop proofs the pipeline prunes the machine search with), backward
// liveness cross-checked against the dead-code pass's own fixpoint, profile
// realizability over hand-built flows, and the proof-pruning quality
// identity — replication with pruning on and off must choose byte-identical
// strategies, because a proven branch can never win the search it skips.
//
//===----------------------------------------------------------------------===//

#include "analysis/CFG.h"
#include "core/Pipeline.h"
#include "ir/IRBuilder.h"
#include "ir/Serializer.h"
#include "obs/Metrics.h"
#include "sa/Baseline.h"
#include "sa/Dataflow.h"
#include "sa/Passes.h"
#include "sa/ProfileVerify.h"
#include "workloads/Workload.h"

#include <gtest/gtest.h>

#include <random>
#include <string>
#include <vector>

using namespace bpcr;
using sa::BranchProofs;
using sa::Diagnostic;
using sa::Interval;
using sa::Severity;

namespace {

Operand R(Reg X) { return Operand::reg(X); }
Operand K(int64_t V) { return Operand::imm(V); }

bool hasRule(const std::vector<Diagnostic> &Diags, const std::string &Id) {
  for (const Diagnostic &D : Diags)
    if (D.fullRuleId() == Id)
      return true;
  return false;
}

std::string renderAll(const std::vector<Diagnostic> &Diags) {
  std::string S;
  for (const Diagnostic &D : Diags)
    S += D.render() + "\n";
  return S;
}

// -- Interval lattice algebra -------------------------------------------------

TEST(Interval, HullAndPredicates) {
  EXPECT_TRUE(Interval::bottom().isBottom());
  EXPECT_TRUE(Interval::top().isTop());
  EXPECT_TRUE(Interval::constant(7).isConstant());
  EXPECT_TRUE(Interval::range(0, 9).nonNegative());
  EXPECT_FALSE(Interval::range(-1, 9).nonNegative());

  EXPECT_EQ(sa::hull(Interval::constant(2), Interval::constant(5)),
            Interval::range(2, 5));
  EXPECT_EQ(sa::hull(Interval::bottom(), Interval::constant(3)),
            Interval::constant(3));
  EXPECT_TRUE(sa::hull(Interval::top(), Interval::constant(3)).isTop());
}

TEST(Interval, TransferMirrorsInterpreter) {
  // Constant folding through exact arithmetic.
  EXPECT_EQ(sa::evalBinop(Opcode::Add, Interval::constant(4),
                          Interval::constant(5)),
            Interval::constant(9));
  // Mul only folds constants (or annihilates on a constant zero): a range
  // times a constant can wrap, so it conservatively collapses to top.
  EXPECT_EQ(sa::evalBinop(Opcode::Mul, Interval::constant(0),
                          Interval::range(2, 3)),
            Interval::constant(0));
  EXPECT_TRUE(sa::evalBinop(Opcode::Mul, Interval::range(2, 3),
                            Interval::constant(10))
                  .isTop());
  // Wrap-around risk collapses to top instead of producing a wrong range.
  EXPECT_TRUE(sa::evalBinop(Opcode::Add, Interval::top(),
                            Interval::constant(1))
                  .isTop());

  // The two rules the workload hash-table guards depend on:
  // x & mask is [0, mask] even when x is unbounded...
  EXPECT_EQ(sa::evalBinop(Opcode::And, Interval::top(),
                          Interval::constant(4095)),
            Interval::range(0, 4095));
  // ...and nonneg % m is [0, m-1].
  EXPECT_EQ(sa::evalBinop(Opcode::Rem, Interval::range(0, 1 << 30),
                          Interval::constant(211)),
            Interval::range(0, 210));

  // Compares decide when the ranges are disjoint and stay [0,1] otherwise.
  EXPECT_EQ(sa::evalBinop(Opcode::CmpGe, Interval::range(0, 4095),
                          Interval::constant(4096)),
            Interval::constant(0));
  EXPECT_EQ(sa::evalBinop(Opcode::CmpLt, Interval::range(0, 4095),
                          Interval::constant(4096)),
            Interval::constant(1));
  EXPECT_EQ(sa::evalBinop(Opcode::CmpEq, Interval::range(0, 10),
                          Interval::range(5, 6)),
            Interval::range(0, 1));
}

// -- Forward const-prop: hand-computed fixpoints ------------------------------

TEST(ConstProp, StraightLineConstantsReachTheirUses) {
  Module M;
  M.Name = "straight";
  M.MemWords = 8;
  M.addFunction("main", 0);
  IRBuilder B(M, 0);
  Reg A = B.newReg(), C = B.newReg(), D = B.newReg();
  B.newBlock("entry");
  B.setInsertPoint(0);
  B.movImm(A, 5);
  B.add(C, R(A), K(3));
  B.mul(D, R(C), R(C));
  B.ret(R(D));

  sa::IntervalAnalysis IA(M.Functions[0]);
  EXPECT_TRUE(IA.stats().Converged);
  EXPECT_EQ(IA.valueBefore(0, 1, A), Interval::constant(5));
  EXPECT_EQ(IA.valueBefore(0, 2, C), Interval::constant(8));
  EXPECT_EQ(IA.valueBefore(0, 3, D), Interval::constant(64));
}

TEST(ConstProp, DiamondJoinIsTheHull) {
  // entry: br c -> then | else;  then: r1 = 2;  else: r1 = 9;  join: use r1.
  Module M;
  M.Name = "diamond";
  M.MemWords = 8;
  M.addFunction("main", 0);
  IRBuilder B(M, 0);
  Reg C = B.newReg(), V = B.newReg(), I = B.newReg();
  uint32_t Entry = B.newBlock("entry");
  uint32_t Then = B.newBlock("then");
  uint32_t Else = B.newBlock("else");
  uint32_t Join = B.newBlock("join");
  B.setInsertPoint(Entry);
  B.movImm(I, 0);
  B.load(C, K(0), R(I)); // unknown condition
  B.br(R(C), Then, Else);
  B.setInsertPoint(Then);
  B.movImm(V, 2);
  B.jmp(Join);
  B.setInsertPoint(Else);
  B.movImm(V, 9);
  B.jmp(Join);
  B.setInsertPoint(Join);
  B.ret(R(V));

  sa::IntervalAnalysis IA(M.Functions[0]);
  EXPECT_TRUE(IA.stats().Converged);
  // After each arm's movImm the register holds that arm's constant.
  EXPECT_EQ(IA.valueBefore(Then, 1, V), Interval::constant(2));
  EXPECT_EQ(IA.valueBefore(Else, 1, V), Interval::constant(9));
  // At the join the two constants hull to [2, 9].
  EXPECT_EQ(IA.valueBefore(Join, 0, V), Interval::range(2, 9));
  // The condition came from memory: top, no proof.
  EXPECT_TRUE(IA.valueBefore(Entry, 2, C).isTop());
}

TEST(ConstProp, LoopCounterWidensAndConverges) {
  // i = (i + 1) & 255 around a loop — the growing upper bound forces
  // widening, the masked re-entry then restores a non-negative bound, and
  // the solver must converge there instead of oscillating.
  Module M;
  M.Name = "loop";
  M.MemWords = 8;
  M.addFunction("main", 0);
  IRBuilder B(M, 0);
  Reg I = B.newReg(), C = B.newReg(), T = B.newReg();
  uint32_t Entry = B.newBlock("entry");
  uint32_t Head = B.newBlock("head");
  uint32_t Body = B.newBlock("body");
  uint32_t Exit = B.newBlock("exit");
  B.setInsertPoint(Entry);
  B.movImm(I, 0);
  B.jmp(Head);
  B.setInsertPoint(Head);
  B.cmpGe(C, R(I), K(200));
  B.br(R(C), Exit, Body);
  B.setInsertPoint(Body);
  B.add(T, R(I), K(1));
  B.band(I, R(T), K(255));
  B.jmp(Head);
  B.setInsertPoint(Exit);
  B.ret(R(I));

  sa::IntervalAnalysis IA(M.Functions[0]);
  EXPECT_TRUE(IA.stats().Converged);
  // Unwidened the head would see [0,0], [0,1], [0,2], ... forever.
  EXPECT_GT(IA.stats().Widenings, 0u);
  // Widening shoots the upper bound to the sentinel, but the mask keeps
  // the counter provably non-negative at the backedge join.
  Interval AtHead = IA.valueBefore(Head, 0, I);
  EXPECT_TRUE(AtHead.nonNegative());
  EXPECT_FALSE(AtHead.isTop());
  // The comparison itself stays undecided: both directions execute.
  EXPECT_EQ(sa::evalBinop(Opcode::CmpGe, AtHead, Interval::constant(200)),
            Interval::range(0, 1));
}

TEST(BranchProofs, MaskedGuardIsProvenNeverTaken) {
  // The Compress idiom: slot = h & (TS-1); if (slot >= TS) clamp — the
  // guard can never fire and the proof engine must see that.
  Module M;
  M.Name = "guard";
  M.MemWords = 8;
  M.addFunction("main", 0);
  IRBuilder B(M, 0);
  Reg H = B.newReg(), S = B.newReg(), C = B.newReg(), I = B.newReg();
  uint32_t Entry = B.newBlock("entry");
  uint32_t Oob = B.newBlock("oob");
  uint32_t Ok = B.newBlock("ok");
  B.setInsertPoint(Entry);
  B.movImm(I, 0);
  B.load(H, K(0), R(I)); // unbounded hash value
  B.band(S, R(H), K(4095));
  B.cmpGe(C, R(S), K(4096));
  B.br(R(C), Oob, Ok);
  B.setInsertPoint(Oob);
  B.ret(K(1));
  B.setInsertPoint(Ok);
  B.ret(K(0));
  M.assignBranchIds();

  BranchProofs P = sa::computeBranchProofs(M);
  EXPECT_EQ(P.provenCount(), 1u);
  EXPECT_EQ(P.dirOf(0), Prediction::NotTaken);
  // Out-of-range ids answer Unknown instead of reading out of bounds.
  EXPECT_EQ(P.dirOf(-1), Prediction::Unknown);
  EXPECT_EQ(P.dirOf(999), Prediction::Unknown);

  std::vector<Diagnostic> Diags;
  sa::PassManager PM;
  sa::addStandardPasses(PM);
  Diags = PM.run(M);
  EXPECT_TRUE(hasRule(Diags, "const-prop.never-taken")) << renderAll(Diags);
}

TEST(BranchProofs, ConstantConditionIsProvenAlwaysTaken) {
  Module M;
  M.Name = "taken";
  M.MemWords = 8;
  M.addFunction("main", 0);
  IRBuilder B(M, 0);
  Reg C = B.newReg();
  uint32_t Entry = B.newBlock("entry");
  uint32_t Then = B.newBlock("then");
  uint32_t Else = B.newBlock("else");
  B.setInsertPoint(Entry);
  B.movImm(C, 3);
  B.br(R(C), Then, Else);
  B.setInsertPoint(Then);
  B.ret(K(0));
  B.setInsertPoint(Else);
  B.ret(K(1));
  M.assignBranchIds();

  BranchProofs P = sa::computeBranchProofs(M);
  EXPECT_EQ(P.dirOf(0), Prediction::Taken);

  sa::PassManager PM;
  sa::addStandardPasses(PM);
  std::vector<Diagnostic> Diags = PM.run(M);
  EXPECT_TRUE(hasRule(Diags, "const-prop.always-taken")) << renderAll(Diags);
}

TEST(BranchProofs, DataDependentBranchesStayUnproven) {
  // Sanity bound against over-proving: on every workload a proof means the
  // training trace is unidirectional for that branch — checked exactly by
  // the pipeline soundness test below; here just assert proofs exist only
  // on the two workloads that carry provable guards.
  for (const Workload &W : allWorkloads()) {
    Module M = W.Build(1);
    M.assignBranchIds();
    BranchProofs P = sa::computeBranchProofs(M);
    std::string Name(W.Name);
    if (Name == "compress" || Name == "c-compiler") {
      EXPECT_GT(P.provenCount(), 0u) << Name;
    }
    Trace T;
    Module Traced = W.Build(1);
    T = traceWorkload(W, 1, Traced, 20'000);
    std::vector<uint64_t> Taken(M.conditionalBranchCount(), 0);
    std::vector<uint64_t> Total(M.conditionalBranchCount(), 0);
    for (const BranchEvent &E : T) {
      if (E.BranchId < 0 ||
          static_cast<size_t>(E.BranchId) >= Total.size())
        continue;
      ++Total[static_cast<size_t>(E.BranchId)];
      Taken[static_cast<size_t>(E.BranchId)] += E.Taken ? 1 : 0;
    }
    for (size_t Id = 0; Id < Total.size(); ++Id) {
      Prediction Dir = P.dirOf(static_cast<int32_t>(Id));
      if (Dir == Prediction::Unknown || Total[Id] == 0)
        continue;
      uint64_t Agree =
          Dir == Prediction::Taken ? Taken[Id] : Total[Id] - Taken[Id];
      EXPECT_EQ(Agree, Total[Id])
          << Name << " branch " << Id << ": proof contradicts the trace";
    }
  }
}

// -- Backward liveness vs the dead-code pass ----------------------------------

/// Solves LivenessClient over \p F and returns per-block live-in sets.
std::vector<std::vector<uint8_t>> solveLiveness(const Function &F) {
  CFG G(F);
  sa::LivenessClient C(F);
  sa::DataflowSolver<sa::LivenessClient> S(G, C);
  EXPECT_TRUE(S.solve().Converged);
  std::vector<std::vector<uint8_t>> In;
  In.reserve(G.numBlocks());
  for (uint32_t B = 0; B < G.numBlocks(); ++B)
    In.push_back(S.before(B));
  return In;
}

TEST(Liveness, HandComputedDiamond) {
  // entry(def a, def b) -> then(use a) | else(use b) -> join(use c?): c is
  // never written, so it is live-in everywhere it is read and dead where
  // not.
  Module M;
  M.Name = "live";
  M.MemWords = 8;
  M.addFunction("main", 0);
  IRBuilder B(M, 0);
  Reg A = B.newReg(), Bb = B.newReg(), C = B.newReg();
  uint32_t Entry = B.newBlock("entry");
  uint32_t Then = B.newBlock("then");
  uint32_t Else = B.newBlock("else");
  B.setInsertPoint(Entry);
  B.movImm(A, 1);
  B.movImm(Bb, 2);
  B.br(R(C), Then, Else); // C read by the branch
  B.setInsertPoint(Then);
  B.ret(R(A));
  B.setInsertPoint(Else);
  B.ret(R(Bb));

  std::vector<std::vector<uint8_t>> In = solveLiveness(M.Functions[0]);
  // Entry: only C is live-in (A and B are written before their reads).
  EXPECT_FALSE(In[Entry][A]);
  EXPECT_FALSE(In[Entry][Bb]);
  EXPECT_TRUE(In[Entry][C]);
  // Each arm needs exactly its returned register.
  EXPECT_TRUE(In[Then][A]);
  EXPECT_FALSE(In[Then][Bb]);
  EXPECT_TRUE(In[Else][Bb]);
  EXPECT_FALSE(In[Else][A]);
}

TEST(Liveness, LoopCarriedRegisterStaysLive) {
  Module M;
  M.Name = "liveloop";
  M.MemWords = 8;
  M.addFunction("main", 0);
  IRBuilder B(M, 0);
  Reg I = B.newReg(), C = B.newReg(), Dead = B.newReg();
  uint32_t Entry = B.newBlock("entry");
  uint32_t Head = B.newBlock("head");
  uint32_t Body = B.newBlock("body");
  uint32_t Exit = B.newBlock("exit");
  B.setInsertPoint(Entry);
  B.movImm(I, 0);
  B.jmp(Head);
  B.setInsertPoint(Head);
  B.cmpGe(C, R(I), K(10));
  B.br(R(C), Exit, Body);
  B.setInsertPoint(Body);
  B.movImm(Dead, 42); // never read anywhere
  B.add(I, R(I), K(1));
  B.jmp(Head);
  B.setInsertPoint(Exit);
  B.ret(K(0));

  std::vector<std::vector<uint8_t>> In = solveLiveness(M.Functions[0]);
  // The counter is live around the whole loop, the dead def never is.
  EXPECT_TRUE(In[Head][I]);
  EXPECT_TRUE(In[Body][I]);
  EXPECT_FALSE(In[Head][Dead]);
  EXPECT_FALSE(In[Body][Dead]);

  // Cross-check: the dead-code pass's own fixpoint flags exactly that def.
  sa::PassManager PM;
  PM.add(sa::createDeadCodePass());
  std::vector<Diagnostic> Diags = PM.run(M);
  EXPECT_TRUE(hasRule(Diags, "dead-code.dead-store")) << renderAll(Diags);
}

TEST(Liveness, AgreesWithDeadCodePassOnWorkloads) {
  // Engine cross-check at scale: wherever the dead-code pass reports a
  // dead store, replaying the solver's block-exit state backward to that
  // instruction must show the destination register dead — two independent
  // fixpoints, one answer.
  for (const Workload &W : allWorkloads()) {
    Module M = W.Build(1);
    M.assignBranchIds();
    sa::PassManager PM;
    PM.add(sa::createDeadCodePass());
    std::vector<Diagnostic> Diags = PM.run(M);
    for (const Diagnostic &D : Diags) {
      if (D.fullRuleId() != "dead-code.dead-store")
        continue;
      ASSERT_GE(D.Loc.FuncIdx, 0);
      const Function &F = M.Functions[static_cast<size_t>(D.Loc.FuncIdx)];
      CFG G(F);
      sa::LivenessClient C(F);
      sa::DataflowSolver<sa::LivenessClient> S(G, C);
      ASSERT_TRUE(S.solve().Converged);
      uint32_t BI = static_cast<uint32_t>(D.Loc.BlockIdx);
      // after(B) is the backward solver's state at the block bottom; walk
      // the instructions below the finding to get liveness at its def.
      std::vector<uint8_t> Live = S.after(BI);
      const std::vector<Instruction> &Insts = F.Blocks[BI].Insts;
      for (size_t II = Insts.size(); II-- > 0;) {
        if (II == static_cast<size_t>(D.Loc.InstIdx)) {
          EXPECT_FALSE(Live[Insts[II].Dst])
              << W.Name << ": " << D.render();
          break;
        }
        const Instruction &I = Insts[II];
        if (writesRegister(I.Op) && I.Dst < Live.size())
          Live[I.Dst] = 0;
        sa::forEachReadRegister(I, [&](Reg Rd) {
          if (Rd < Live.size())
            Live[Rd] = 1;
        });
      }
    }
  }
}

// -- Profile realizability ----------------------------------------------------

/// entry -> loop { body -> (left|right) -> loop } -> exit, conditions from
/// memory; branch 0 is the loop header, branch 1 the body split.
Module buildFlowModule() {
  Module M;
  M.Name = "flow";
  M.MemWords = 16;
  M.addFunction("main", 0);
  M.EntryFunction = 0;
  IRBuilder B(M, 0);
  Reg C = B.newReg(), D = B.newReg(), I = B.newReg();
  uint32_t Entry = B.newBlock("entry");
  uint32_t Loop = B.newBlock("loop");
  uint32_t Body = B.newBlock("body");
  uint32_t Left = B.newBlock("left");
  uint32_t Right = B.newBlock("right");
  uint32_t Exit = B.newBlock("exit");
  B.setInsertPoint(Entry);
  B.movImm(I, 0);
  B.jmp(Loop);
  B.setInsertPoint(Loop);
  B.load(C, K(0), R(I));
  B.br(R(C), Body, Exit);
  B.setInsertPoint(Body);
  B.load(D, K(1), R(I));
  B.br(R(D), Left, Right);
  B.setInsertPoint(Left);
  B.jmp(Loop);
  B.setInsertPoint(Right);
  B.jmp(Loop);
  B.setInsertPoint(Exit);
  B.ret(K(0));
  M.assignBranchIds();
  return M;
}

sa::BranchProfileCounts counts(uint64_t T0, uint64_t N0, uint64_t T1,
                               uint64_t N1) {
  sa::BranchProfileCounts P;
  P.Counts = {{T0, N0}, {T1, N1}};
  return P;
}

TEST(ProfileVerify, RealizableProfilePassesClean) {
  Module M = buildFlowModule();
  // 10 iterations: header 10 taken + 1 exit; body splits 6/4.
  std::vector<Diagnostic> D =
      verifyProfileRealizability(M, counts(10, 1, 6, 4));
  EXPECT_TRUE(D.empty()) << renderAll(D);
}

TEST(ProfileVerify, CountShapeMismatchIsRejected) {
  Module M = buildFlowModule();
  sa::BranchProfileCounts P;
  P.Counts = {{5, 5}}; // one slot, two branches
  std::vector<Diagnostic> D = verifyProfileRealizability(M, P);
  ASSERT_EQ(D.size(), 1u) << renderAll(D);
  EXPECT_EQ(D[0].fullRuleId(), "profile-verify.count-shape");
  EXPECT_EQ(D[0].Sev, Severity::Error);
}

TEST(ProfileVerify, UnknownBranchEventsAreRejected) {
  Module M = buildFlowModule();
  Trace T;
  for (int N = 0; N < 4; ++N)
    T.push_back({0, true});
  T.push_back({9, true}); // no branch 9
  sa::BranchProfileCounts P =
      sa::BranchProfileCounts::fromTrace(M.conditionalBranchCount(), T);
  EXPECT_EQ(P.OutOfRange, 1u);
  std::vector<Diagnostic> D = verifyProfileRealizability(M, P);
  EXPECT_TRUE(hasRule(D, "profile-verify.unknown-branch")) << renderAll(D);
}

TEST(ProfileVerify, OverfullBlockIsAFlowMismatch) {
  Module M = buildFlowModule();
  // Body is entered 10 times but its branch claims 15 executions.
  std::vector<Diagnostic> D =
      verifyProfileRealizability(M, counts(10, 1, 8, 7));
  EXPECT_TRUE(hasRule(D, "profile-verify.flow-mismatch")) << renderAll(D);
}

TEST(ProfileVerify, TruncatedTailIsANoteUnlessStrict) {
  Module M = buildFlowModule();
  // The trace was cut mid-run: the body fed 10 executions back to the
  // header but the header's own branch only recorded 10 (never the final
  // exit), so in-flow 11 > 10 recorded — legal for a capped trace.
  sa::BranchProfileCounts P = counts(10, 0, 6, 4);
  std::vector<Diagnostic> Lax = verifyProfileRealizability(M, P);
  EXPECT_FALSE(sa::anyAtOrAbove(Lax, Severity::Warning)) << renderAll(Lax);
  EXPECT_TRUE(hasRule(Lax, "profile-verify.truncated-tail"));

  sa::ProfileVerifyOptions Strict;
  Strict.Strict = true;
  std::vector<Diagnostic> Hard = verifyProfileRealizability(M, P, Strict);
  EXPECT_TRUE(hasRule(Hard, "profile-verify.flow-mismatch"))
      << renderAll(Hard);
}

TEST(ProfileVerify, ExitFlowMismatchWhenModuleReturnsTooOften) {
  Module M = buildFlowModule();
  // 21 header executions with 2 exits: the entry function would have to
  // return twice for one recorded run.
  std::vector<Diagnostic> D =
      verifyProfileRealizability(M, counts(20, 2, 12, 8));
  EXPECT_TRUE(hasRule(D, "profile-verify.exit-flow-mismatch"))
      << renderAll(D);
}

TEST(ProfileVerify, UnreachableExecutionIsRejected) {
  Module M;
  M.Name = "unreach";
  M.MemWords = 8;
  M.addFunction("main", 0);
  M.EntryFunction = 0;
  IRBuilder B(M, 0);
  Reg C = B.newReg(), I = B.newReg();
  uint32_t Entry = B.newBlock("entry");
  uint32_t Dead = B.newBlock("dead");
  uint32_t T1 = B.newBlock("t1");
  uint32_t T2 = B.newBlock("t2");
  B.setInsertPoint(Entry);
  B.ret(K(0));
  B.setInsertPoint(Dead); // no edge reaches this block
  B.movImm(I, 0);
  B.load(C, K(0), R(I));
  B.br(R(C), T1, T2);
  B.setInsertPoint(T1);
  B.ret(K(1));
  B.setInsertPoint(T2);
  B.ret(K(2));
  M.assignBranchIds();

  sa::BranchProfileCounts P;
  P.Counts = {{3, 2}};
  std::vector<Diagnostic> D = verifyProfileRealizability(M, P);
  EXPECT_TRUE(hasRule(D, "profile-verify.unreachable-execution"))
      << renderAll(D);
}

TEST(ProfileVerify, RecordedWorkloadTracesAreAdmitted) {
  // The admission gate of the acceptance criteria: a genuinely recorded
  // trace of every workload verifies with nothing at warning or above
  // (truncated-tail notes are expected — the traces are event-capped).
  for (const Workload &W : allWorkloads()) {
    Module M;
    Trace T = traceWorkload(W, 1, M, 20'000);
    sa::BranchProfileCounts P =
        sa::BranchProfileCounts::fromTrace(M.conditionalBranchCount(), T);
    std::vector<Diagnostic> D = verifyProfileRealizability(M, P);
    EXPECT_FALSE(sa::anyAtOrAbove(D, Severity::Warning))
        << W.Name << ":\n"
        << renderAll(D);
  }
}

TEST(ProfileVerify, FlippedWorkloadProfileIsRejected) {
  // Swapping taken/not-taken of the busiest branch of a real trace breaks
  // conservation somewhere downstream — the gate must notice, strict mode
  // makes it an error.
  Module M;
  Trace T = traceWorkload(allWorkloads()[2] /* compress */, 1, M, 20'000);
  sa::BranchProfileCounts P =
      sa::BranchProfileCounts::fromTrace(M.conditionalBranchCount(), T);
  size_t Busiest = 0;
  for (size_t Id = 1; Id < P.Counts.size(); ++Id)
    if (P.Counts[Id].total() > P.Counts[Busiest].total())
      Busiest = Id;
  std::swap(P.Counts[Busiest].Taken, P.Counts[Busiest].NotTaken);
  sa::ProfileVerifyOptions Strict;
  Strict.Strict = true;
  std::vector<Diagnostic> D = verifyProfileRealizability(M, P, Strict);
  EXPECT_TRUE(sa::anyAtOrAbove(D, Severity::Error)) << renderAll(D);
}

// -- Solver robustness: fuzzed modules ----------------------------------------

TEST(SolverFuzz, RandomModulesTerminateAndRoundTripStably) {
  std::mt19937_64 Rng(0xDF01);
  for (int Iter = 0; Iter < 60; ++Iter) {
    Module M;
    M.Name = "fuzz";
    M.MemWords = 8;
    M.addFunction("main", 0);
    IRBuilder B(M, 0);
    B.func().NumRegs = 4;
    std::uniform_int_distribution<uint32_t> BlockCount(2, 7);
    uint32_t NB = BlockCount(Rng);
    for (uint32_t I = 0; I < NB; ++I) {
      std::string BlockName = "b";
      BlockName += std::to_string(I);
      B.newBlock(BlockName);
    }
    std::uniform_int_distribution<uint32_t> Target(0, NB - 1);
    std::uniform_int_distribution<int> RegPick(0, 3);
    std::uniform_int_distribution<int> Kind(0, 3);
    std::uniform_int_distribution<int64_t> Imm(-4, 100);
    for (uint32_t I = 0; I < NB; ++I) {
      B.setInsertPoint(I);
      Reg D = static_cast<Reg>(RegPick(Rng));
      Reg S = static_cast<Reg>(RegPick(Rng));
      switch (Kind(Rng)) {
      case 0:
        B.movImm(D, Imm(Rng));
        break;
      case 1:
        B.add(D, R(S), K(Imm(Rng)));
        break;
      case 2:
        B.band(D, R(S), K(255));
        break;
      default:
        B.cmpGe(D, R(S), K(Imm(Rng)));
        break;
      }
      switch (Kind(Rng)) {
      case 0:
        B.ret(R(static_cast<Reg>(RegPick(Rng))));
        break;
      case 1:
        B.jmp(Target(Rng));
        break;
      default:
        B.br(R(static_cast<Reg>(RegPick(Rng))), Target(Rng), Target(Rng));
        break;
      }
    }
    M.assignBranchIds();

    // Termination: whatever the CFG shape (cycles through every block,
    // unreachable tails, self-loops), both solvers converge within their
    // visit bounds — forced-top is allowed, divergence is not.
    sa::IntervalAnalysis IA(M.Functions[0]);
    EXPECT_TRUE(IA.stats().Converged) << writeModuleText(M);
    CFG G(M.Functions[0]);
    sa::LivenessClient LC(M.Functions[0]);
    sa::DataflowSolver<sa::LivenessClient> LS(G, LC);
    EXPECT_TRUE(LS.solve().Converged) << writeModuleText(M);

    // Monotonicity check at the fixpoint: every block's entry state must
    // be exactly the join of its predecessors' exits — re-running transfer
    // and join cannot change anything.
    BranchProofs P1 = sa::computeBranchProofs(M);

    // Proof stability across a serializer round-trip.
    std::string Text = writeModuleText(M);
    Module M2;
    std::string Err;
    ASSERT_TRUE(parseModuleText(Text, M2, Err)) << Err << "\n" << Text;
    BranchProofs P2 = sa::computeBranchProofs(M2);
    ASSERT_EQ(P1.Dir.size(), P2.Dir.size()) << Text;
    for (size_t I = 0; I < P1.Dir.size(); ++I)
      EXPECT_EQ(P1.Dir[I], P2.Dir[I]) << Text;
  }
}

// -- PassManager parallelism --------------------------------------------------

TEST(PassManagerJobs, DiagnosticsAreIdenticalAcrossWorkerCounts) {
  for (const Workload &W : allWorkloads()) {
    Module M = W.Build(1);
    M.assignBranchIds();
    sa::PassManager PM;
    sa::addStandardPasses(PM);
    std::vector<Diagnostic> One = PM.run(M, 1);
    std::vector<Diagnostic> Four = PM.run(M, 4);
    ASSERT_EQ(One.size(), Four.size()) << W.Name;
    for (size_t I = 0; I < One.size(); ++I) {
      EXPECT_EQ(One[I].render(), Four[I].render()) << W.Name;
      EXPECT_EQ(One[I].Sev, Four[I].Sev) << W.Name;
    }
  }
}

// -- Proof pruning: quality identity and counters -----------------------------

TEST(ProofPruning, PrunedPipelineChoosesIdenticalStrategies) {
  // The soundness argument made executable: a proven branch's profile
  // prediction is already perfect, so no machine can beat it and skipping
  // its search must change nothing about the outcome — strategies, scores,
  // replication counts and code size all identical.
  for (const char *Name : {"compress", "c-compiler"}) {
    const Workload *W = nullptr;
    for (const Workload &Cand : allWorkloads())
      if (std::string(Cand.Name) == Name)
        W = &Cand;
    ASSERT_NE(W, nullptr);
    Module M;
    Trace T = traceWorkload(*W, 1, M, 20'000);

    PipelineOptions On;
    On.Strategy.MaxStates = 4;
    On.Strategy.NodeBudget = 50'000;
    PipelineOptions Off = On;
    Off.UseProofPruning = false;

    PipelineResult ROn = replicateModule(M, T, On);
    PipelineResult ROff = replicateModule(M, T, Off);

    EXPECT_TRUE(ROn.Soundness.empty()) << renderAll(ROn.Soundness);
    ASSERT_EQ(ROn.Strategies.size(), ROff.Strategies.size());
    for (size_t I = 0; I < ROn.Strategies.size(); ++I) {
      const BranchStrategy &A = ROn.Strategies[I];
      const BranchStrategy &B = ROff.Strategies[I];
      EXPECT_EQ(A.Kind, B.Kind) << Name << " branch " << I;
      EXPECT_EQ(A.Correct, B.Correct) << Name << " branch " << I;
      EXPECT_EQ(A.Total, B.Total) << Name << " branch " << I;
      EXPECT_EQ(A.States, B.States) << Name << " branch " << I;
    }
    EXPECT_EQ(ROn.LoopReplications, ROff.LoopReplications) << Name;
    EXPECT_EQ(ROn.JointReplications, ROff.JointReplications) << Name;
    EXPECT_EQ(ROn.NewInstructions, ROff.NewInstructions) << Name;
  }
}

TEST(ProofPruning, SearchCounterRecordsPrunedBranches) {
  Registry &Reg = Registry::global();
  Reg.clear();
  Reg.setEnabled(true);
  for (const char *Name : {"compress", "c-compiler"}) {
    uint64_t Before = Reg.counter("search.pruned_by_proof").value();
    const Workload *W = nullptr;
    for (const Workload &Cand : allWorkloads())
      if (std::string(Cand.Name) == Name)
        W = &Cand;
    ASSERT_NE(W, nullptr);
    Module M;
    Trace T = traceWorkload(*W, 1, M, 20'000);
    PipelineOptions Opts;
    Opts.Strategy.MaxStates = 4;
    Opts.Strategy.NodeBudget = 50'000;
    PipelineResult PR = replicateModule(M, T, Opts);
    EXPECT_GT(Reg.counter("search.pruned_by_proof").value(), Before)
        << Name << ": the workload's proven guard was not pruned";
    EXPECT_GT(Reg.gauge("sa.proofs.pruned_branches").value(), 0.0) << Name;
  }
  Reg.setEnabled(false);
  Reg.clear();
}

// -- Lint baselines -----------------------------------------------------------

TEST(Baseline, SerializeParseRoundTrip) {
  sa::LintBaseline BL;
  BL.Keys = {"loop-shape.scattered-exits main.block6",
             "use-before-def.read-before-def lex.block2.inst4"};
  std::string Text = BL.serialize();
  sa::LintBaseline Back;
  std::string Error;
  ASSERT_TRUE(sa::LintBaseline::parse(Text, Back, Error)) << Error;
  EXPECT_EQ(Back.Keys, BL.Keys);
}

TEST(Baseline, ParseRejectsMalformedInput) {
  sa::LintBaseline Out;
  std::string Error;
  EXPECT_FALSE(sa::LintBaseline::parse("no header\n", Out, Error));
  EXPECT_FALSE(Error.empty());
  EXPECT_FALSE(sa::LintBaseline::parse(
      "# bpcr lint baseline v1\nonly-one-token\n", Out, Error));
  EXPECT_TRUE(sa::LintBaseline::parse(
      "# bpcr lint baseline v1\n\n# comment\nrule.id main.b0\n", Out,
      Error))
      << Error;
  EXPECT_EQ(Out.Keys.size(), 1u);
}

TEST(Baseline, ApplySuppressesAndFlagsStaleEntries) {
  Module M;
  M.Name = "base";
  M.MemWords = 8;
  M.addFunction("main", 0);
  IRBuilder B(M, 0);
  Reg C = B.newReg(), V = B.newReg();
  uint32_t Entry = B.newBlock("entry");
  uint32_t Then = B.newBlock("then");
  uint32_t Else = B.newBlock("else");
  B.setInsertPoint(Entry);
  B.br(R(C), Then, Else); // use-before-def warning on C
  B.setInsertPoint(Then);
  B.movImm(V, 5); // dead store warning
  B.ret(K(0));
  B.setInsertPoint(Else);
  B.ret(K(1));
  M.assignBranchIds();

  sa::PassManager PM;
  sa::addStandardPasses(PM);
  std::vector<Diagnostic> Diags = PM.run(M);
  size_t Warnings = 0;
  for (const Diagnostic &D : Diags)
    Warnings += D.Sev == Severity::Warning ? 1 : 0;
  ASSERT_GE(Warnings, 2u) << renderAll(Diags);

  // Record everything, apply: nothing but notes may survive.
  sa::LintBaseline All = sa::LintBaseline::fromDiagnostics(Diags);
  std::vector<Diagnostic> Left = All.apply(Diags);
  EXPECT_FALSE(sa::anyAtOrAbove(Left, Severity::Warning))
      << renderAll(Left);

  // A stale key surfaces as exactly one lint-baseline.stale-entry warning.
  sa::LintBaseline Stale;
  Stale.Keys = {"dead-code.dead-store gone.block9.inst9"};
  std::vector<Diagnostic> WithStale = Stale.apply(Diags);
  EXPECT_TRUE(hasRule(WithStale, "lint-baseline.stale-entry"))
      << renderAll(WithStale);
  EXPECT_EQ(WithStale.size(), Diags.size() + 1);
}

} // namespace
