//===- tests/test_ledger.cpp - Cross-run ledger records and I/O -----------===//
//
// Part of the bpcr project (Krall, PLDI 1994 reproduction).
//
//===----------------------------------------------------------------------===//

#include "obs/Json.h"
#include "obs/Ledger.h"
#include "obs/Report.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

using namespace bpcr;

namespace {

/// A minimal run report: schema_version plus a metrics section with one
/// deterministic counter, one wall-clock gauge and (optionally) a ladder
/// search counter covered by the migration shim.
JsonValue reportWith(int Schema, bool WithSearchCounter = false) {
  JsonValue Counters = JsonValue::object();
  Counters.set("interp.branch_events", JsonValue::integer(int64_t{45000}));
  if (WithSearchCounter)
    Counters.set("search.cache.hits", JsonValue::integer(int64_t{90}));
  JsonValue Gauges = JsonValue::object();
  Gauges.set("interp.events_per_sec", JsonValue::number(51234.5));
  JsonValue Metrics = JsonValue::object();
  Metrics.set("counters", Counters);
  Metrics.set("gauges", Gauges);
  JsonValue Report = JsonValue::object();
  Report.set("schema_version", JsonValue::integer(int64_t{Schema}));
  Report.set("tool", JsonValue::str("bench_fixture"));
  Report.set("command", JsonValue::str("bench"));
  Report.set("workload", JsonValue::str("synthetic"));
  Report.set("seed", JsonValue::integer(int64_t{7}));
  Report.set("events", JsonValue::integer(int64_t{20000}));
  Report.set("metrics", Metrics);
  return Report;
}

double valueOf(const std::vector<std::pair<std::string, double>> &Flat,
               const std::string &Name) {
  for (const auto &[N, V] : Flat)
    if (N == Name)
      return V;
  ADD_FAILURE() << "no metric named " << Name;
  return 0.0;
}

bool contains(const std::vector<std::pair<std::string, double>> &Flat,
              const std::string &Name) {
  for (const auto &[N, V] : Flat)
    if (N == Name)
      return true;
  return false;
}

/// Unique temp path per test; removed on destruction.
struct TempFile {
  std::string Path;
  explicit TempFile(const char *Tag)
      : Path(std::string(::testing::TempDir()) + "bpcr_ledger_" + Tag +
             ".jsonl") {
    std::remove(Path.c_str());
  }
  ~TempFile() { std::remove(Path.c_str()); }
};

void writeText(const std::string &Path, const std::string &Text) {
  std::FILE *F = std::fopen(Path.c_str(), "wb");
  ASSERT_NE(F, nullptr);
  std::fwrite(Text.data(), 1, Text.size(), F);
  std::fclose(F);
}

} // namespace

// -- Deterministic vs wall-clock partition ----------------------------------

TEST(Ledger, WallClockPartitionMirrorsCompareSkips) {
  EXPECT_FALSE(isWallClockMetric("counters.interp.branch_events"));
  EXPECT_FALSE(isWallClockMetric("counters.search.cache.hits"));
  EXPECT_FALSE(isWallClockMetric("pipeline.code_size.factor"));
  EXPECT_TRUE(isWallClockMetric("phases.analyze.wall_ms"));
  EXPECT_TRUE(isWallClockMetric("gauges.interp.events_per_sec"));
  EXPECT_TRUE(isWallClockMetric("gauges.sweep.wall_ms"));
  EXPECT_TRUE(isWallClockMetric("gauges.pool.utilization_percent"));
  EXPECT_TRUE(isWallClockMetric("counters.obs.trace.spans"));
  // The profile section is timing-dominated except the span-open counts.
  EXPECT_TRUE(isWallClockMetric("profile.categories.search.self_wall_ns"));
  EXPECT_TRUE(isWallClockMetric("profile.memory.peak_rss_bytes"));
  EXPECT_FALSE(isWallClockMetric("profile.categories.search.opened"));
}

TEST(Ledger, MakeRecordPartitionsAndFillsMetaFromReport) {
  LedgerRecord R;
  std::string Error;
  ASSERT_TRUE(makeLedgerRecord(reportWith(ReportSchemaVersion), LedgerMeta(),
                               R, Error))
      << Error;
  EXPECT_EQ(R.SchemaVersion, ReportSchemaVersion);
  // Blank caller meta is filled from the report's context fields.
  EXPECT_EQ(R.Meta.Tool, "bench_fixture");
  EXPECT_EQ(R.Meta.Command, "bench");
  EXPECT_EQ(R.Meta.Workload, "synthetic");
  EXPECT_EQ(R.Meta.Seed, 7u);
  EXPECT_EQ(R.Meta.Events, 20000u);
  // The counter is deterministic, the rate is wall-clock.
  EXPECT_NEAR(valueOf(R.Metrics, "counters.interp.branch_events"), 45000.0,
              1e-9);
  EXPECT_FALSE(contains(R.Metrics, "gauges.interp.events_per_sec"));
  EXPECT_NEAR(valueOf(R.Perf, "gauges.interp.events_per_sec"), 51234.5, 1e-9);
  EXPECT_EQ(R.MigrationDropped, 0u);
}

TEST(Ledger, CallerMetaWinsOverReportContext) {
  LedgerMeta Meta;
  Meta.Tool = "other_tool";
  Meta.Seed = 3;
  LedgerRecord R;
  std::string Error;
  ASSERT_TRUE(
      makeLedgerRecord(reportWith(ReportSchemaVersion), Meta, R, Error));
  EXPECT_EQ(R.Meta.Tool, "other_tool");
  EXPECT_EQ(R.Meta.Seed, 3u);
  // Fields the caller left blank still come from the report.
  EXPECT_EQ(R.Meta.Workload, "synthetic");
}

TEST(Ledger, MakeRecordRejectsUnsupportedSchemas) {
  LedgerRecord R;
  std::string Error;
  EXPECT_FALSE(makeLedgerRecord(reportWith(1), LedgerMeta(), R, Error));
  EXPECT_NE(Error.find("schema_version 1"), std::string::npos) << Error;
  Error.clear();
  EXPECT_FALSE(makeLedgerRecord(reportWith(ReportSchemaVersion + 1),
                                LedgerMeta(), R, Error));
  EXPECT_FALSE(Error.empty());
  Error.clear();
  JsonValue NoSchema = JsonValue::object();
  EXPECT_FALSE(makeLedgerRecord(NoSchema, LedgerMeta(), R, Error));
  EXPECT_NE(Error.find("schema_version"), std::string::npos);
}

// -- Schema-migration shims ---------------------------------------------------

TEST(Ledger, MigrationShimDropsPreLadderSearchCounters) {
  // Schema 2 predates the ladder rewrite of the machine search: its
  // counters.search.* values count something else and must not feed the
  // cross-run trends.
  LedgerRecord Old;
  std::string Error;
  ASSERT_TRUE(makeLedgerRecord(reportWith(2, /*WithSearchCounter=*/true),
                               LedgerMeta(), Old, Error))
      << Error;
  EXPECT_FALSE(contains(Old.Metrics, "counters.search.cache.hits"));
  EXPECT_EQ(Old.MigrationDropped, 1u);
  // Survivors are untouched.
  EXPECT_TRUE(contains(Old.Metrics, "counters.interp.branch_events"));

  // A current-schema report keeps the counter.
  LedgerRecord New;
  ASSERT_TRUE(makeLedgerRecord(
      reportWith(ReportSchemaVersion, /*WithSearchCounter=*/true),
      LedgerMeta(), New, Error));
  EXPECT_TRUE(contains(New.Metrics, "counters.search.cache.hits"));
  EXPECT_EQ(New.MigrationDropped, 0u);
}

TEST(Ledger, ReadLedgerReappliesShimsToHandWrittenRecords) {
  // A hand-built schema-2 line that still carries a search counter
  // normalizes on the way in, exactly like a fresh append would.
  TempFile T("shim");
  writeText(T.Path,
            "{\"ledger_version\":1,\"schema_version\":2,\"metrics\":"
            "{\"counters.search.cache.hits\":5,\"counters.interp.runs\":9}}"
            "\n");
  std::vector<LedgerRecord> Records;
  std::vector<std::string> Warnings;
  std::string Error;
  ASSERT_TRUE(readLedger(T.Path, Records, Warnings, Error)) << Error;
  ASSERT_EQ(Records.size(), 1u);
  EXPECT_TRUE(Warnings.empty());
  EXPECT_FALSE(contains(Records[0].Metrics, "counters.search.cache.hits"));
  EXPECT_TRUE(contains(Records[0].Metrics, "counters.interp.runs"));
  EXPECT_EQ(Records[0].MigrationDropped, 1u);
}

// -- Record line format -------------------------------------------------------

TEST(Ledger, RecordLineKeepsVolatileFieldsAdjacentAndPerfLast) {
  LedgerMeta Meta;
  Meta.Host = "ci-host";
  Meta.GitSha = "abc123";
  Meta.TimestampNs = 42;
  Meta.Jobs = 8;
  LedgerRecord R;
  std::string Error;
  ASSERT_TRUE(
      makeLedgerRecord(reportWith(ReportSchemaVersion), Meta, R, Error));
  std::string Line = ledgerRecordLine(R);

  // Single compact line starting with the version fields.
  EXPECT_EQ(Line.find('\n'), std::string::npos);
  EXPECT_EQ(Line.rfind("{\"ledger_version\":1,\"schema_version\":", 0), 0u)
      << Line;

  // The determinism contract: the volatile triple is one adjacent run
  // (strippable with a single regex) and the wall-clock partition is the
  // last member (strippable with a prefix cut).
  size_t Ts = Line.find("\"ts_ns\":");
  size_t Host = Line.find("\"host\":");
  size_t Sha = Line.find("\"git_sha\":");
  size_t Metrics = Line.find("\"metrics\":");
  size_t Perf = Line.find("\"perf\":");
  ASSERT_NE(Ts, std::string::npos);
  ASSERT_NE(Perf, std::string::npos);
  EXPECT_LT(Ts, Host);
  EXPECT_LT(Host, Sha);
  EXPECT_LT(Sha, Metrics);
  EXPECT_LT(Metrics, Perf);
  // Nothing after the perf object but the record's closing brace.
  EXPECT_EQ(Line.compare(Perf, 8, "\"perf\":{"), 0) << Line;
  EXPECT_EQ(Line.compare(Line.size() - 2, 2, "}}"), 0) << Line;

  // Integral metric values serialize as integers, not 4.5e+04.
  EXPECT_NE(Line.find("\"counters.interp.branch_events\":45000"),
            std::string::npos)
      << Line;
}

// -- Append / read round trip -------------------------------------------------

TEST(Ledger, AppendAndReadRoundTrips) {
  TempFile T("roundtrip");
  LedgerMeta Meta;
  Meta.Host = "h";
  Meta.GitSha = "sha1";
  Meta.TimestampNs = 100;
  Meta.Jobs = 2;
  std::string Error;
  ASSERT_TRUE(appendReportToLedger(T.Path, reportWith(ReportSchemaVersion),
                                   Meta, Error))
      << Error;
  Meta.GitSha = "sha2";
  Meta.TimestampNs = 200;
  ASSERT_TRUE(appendReportToLedger(T.Path, reportWith(ReportSchemaVersion),
                                   Meta, Error));

  std::vector<LedgerRecord> Records;
  std::vector<std::string> Warnings;
  ASSERT_TRUE(readLedger(T.Path, Records, Warnings, Error)) << Error;
  EXPECT_TRUE(Warnings.empty());
  ASSERT_EQ(Records.size(), 2u);
  // Oldest first, metadata and both partitions intact.
  EXPECT_EQ(Records[0].Meta.GitSha, "sha1");
  EXPECT_EQ(Records[1].Meta.GitSha, "sha2");
  EXPECT_EQ(Records[1].Meta.TimestampNs, 200u);
  EXPECT_EQ(Records[1].Meta.Jobs, 2u);
  EXPECT_EQ(Records[1].Meta.Tool, "bench_fixture");
  EXPECT_NEAR(valueOf(Records[0].Metrics, "counters.interp.branch_events"),
              45000.0, 1e-9);
  EXPECT_NEAR(valueOf(Records[0].Perf, "gauges.interp.events_per_sec"),
              51234.5, 1e-9);
}

TEST(Ledger, ReadSkipsBadLinesWithWarningsButKeepsTheRest) {
  TempFile T("badlines");
  writeText(T.Path,
            "this is not json\n"
            "{\"no_ledger_version\":true}\n"
            "{\"ledger_version\":99,\"schema_version\":4}\n"
            "{\"ledger_version\":1,\"schema_version\":1}\n"
            "\n"
            "{\"ledger_version\":1,\"schema_version\":4,\"metrics\":"
            "{\"counters.a\":1}}\n");
  std::vector<LedgerRecord> Records;
  std::vector<std::string> Warnings;
  std::string Error;
  ASSERT_TRUE(readLedger(T.Path, Records, Warnings, Error)) << Error;
  // One good record survives; each bad line gets its own note with the
  // 1-based line number (the blank line is silently skipped).
  ASSERT_EQ(Records.size(), 1u);
  ASSERT_EQ(Warnings.size(), 4u);
  EXPECT_NE(Warnings[0].find("ledger line 1"), std::string::npos);
  EXPECT_NE(Warnings[1].find("missing ledger_version"), std::string::npos);
  EXPECT_NE(Warnings[2].find("unsupported ledger_version 99"),
            std::string::npos);
  EXPECT_NE(Warnings[3].find("unsupported report schema_version"),
            std::string::npos);
}

TEST(Ledger, ReadFailsOnlyWhenFileIsUnreadable) {
  std::vector<LedgerRecord> Records;
  std::vector<std::string> Warnings;
  std::string Error;
  EXPECT_FALSE(
      readLedger("/nonexistent/dir/ledger.jsonl", Records, Warnings, Error));
  EXPECT_NE(Error.find("cannot open"), std::string::npos);
}
