//===- tests/test_cache.cpp - Instruction cache simulator tests -----------===//
//
// Part of the bpcr project (Krall, PLDI 1994 reproduction).
//
//===----------------------------------------------------------------------===//

#include "cache/ICacheRun.h"
#include "ir/IRBuilder.h"

#include <gtest/gtest.h>

using namespace bpcr;

TEST(AddressMap, SequentialLayout) {
  Module M;
  M.MemWords = 1;
  uint32_t F0 = M.addFunction("a", 0);
  {
    IRBuilder B(M, F0);
    uint32_t E = B.newBlock("e");
    B.setInsertPoint(E);
    Reg X = B.newReg();
    B.movImm(X, 1);
    B.movImm(X, 2);
    B.ret(Operand::reg(X));
  }
  uint32_t F1 = M.addFunction("b", 0);
  {
    IRBuilder B(M, F1);
    uint32_t E = B.newBlock("e");
    B.setInsertPoint(E);
    B.ret(Operand::imm(0));
  }
  AddressMap Map(M);
  EXPECT_EQ(Map.address(0, 0, 0), 0u);
  EXPECT_EQ(Map.address(0, 0, 2), 2u);
  EXPECT_EQ(Map.address(1, 0, 0), 3u);
  EXPECT_EQ(Map.codeSize(), 4u);
}

TEST(ICacheSim, ColdMissesThenHits) {
  ICacheConfig Cfg;
  Cfg.CapacityWords = 64;
  Cfg.LineWords = 4;
  Cfg.Ways = 2;
  ICacheSim Sim(Cfg);
  for (uint64_t A = 0; A < 16; ++A)
    Sim.access(A); // 4 lines: 4 cold misses
  EXPECT_EQ(Sim.accesses(), 16u);
  EXPECT_EQ(Sim.misses(), 4u);
  for (uint64_t A = 0; A < 16; ++A)
    Sim.access(A); // everything resident
  EXPECT_EQ(Sim.misses(), 4u);
}

TEST(ICacheSim, CapacityEviction) {
  ICacheConfig Cfg;
  Cfg.CapacityWords = 8; // 2 lines of 4 words, direct mapped
  Cfg.LineWords = 4;
  Cfg.Ways = 1;
  ICacheSim Sim(Cfg);
  // Lines 0 and 2 map to set 0; alternating between them always misses.
  for (int Round = 0; Round < 10; ++Round) {
    Sim.access(0);
    Sim.access(8);
  }
  EXPECT_EQ(Sim.misses(), 20u);
}

TEST(ICacheSim, AssociativityAbsorbsConflicts) {
  ICacheConfig Cfg;
  Cfg.CapacityWords = 16; // 4 lines, 2-way: 2 sets
  Cfg.LineWords = 4;
  Cfg.Ways = 2;
  ICacheSim Sim(Cfg);
  // Lines 0 and 2 share a set but fit in the two ways.
  for (int Round = 0; Round < 10; ++Round) {
    Sim.access(0);
    Sim.access(16);
  }
  EXPECT_EQ(Sim.misses(), 2u); // only the cold misses
}

TEST(ICacheSim, LruPrefersRecentLine) {
  ICacheConfig Cfg;
  Cfg.CapacityWords = 16; // 2 sets x 2 ways
  Cfg.LineWords = 4;
  Cfg.Ways = 2;
  ICacheSim Sim(Cfg);
  Sim.access(0);  // set 0
  Sim.access(16); // set 0, second way
  Sim.access(0);  // refresh line 0
  Sim.access(32); // set 0: evicts line 16 (least recent)
  EXPECT_EQ(Sim.misses(), 3u);
  Sim.access(0); // still resident
  EXPECT_EQ(Sim.misses(), 3u);
  Sim.access(16); // was evicted
  EXPECT_EQ(Sim.misses(), 4u);
}

TEST(ICacheSim, ResetClearsState) {
  ICacheSim Sim;
  Sim.access(0);
  Sim.access(0);
  EXPECT_EQ(Sim.accesses(), 2u);
  Sim.reset();
  EXPECT_EQ(Sim.accesses(), 0u);
  EXPECT_EQ(Sim.misses(), 0u);
  Sim.access(0);
  EXPECT_EQ(Sim.misses(), 1u); // cold again
}

TEST(ICacheRun, CountsEveryFetch) {
  Module M;
  M.MemWords = 1;
  uint32_t Main = M.addFunction("main", 0);
  IRBuilder B(M, Main);
  Reg I = B.newReg(), C = B.newReg();
  uint32_t Entry = B.newBlock("entry");
  uint32_t Loop = B.newBlock("loop");
  uint32_t Exit = B.newBlock("exit");
  B.setInsertPoint(Entry);
  B.movImm(I, 0);
  B.jmp(Loop);
  B.setInsertPoint(Loop);
  B.add(I, Operand::reg(I), Operand::imm(1));
  B.cmpLt(C, Operand::reg(I), Operand::imm(100));
  B.br(Operand::reg(C), Loop, Exit);
  B.setInsertPoint(Exit);
  B.ret(Operand::reg(I));
  M.assignBranchIds();

  ICacheConfig Cfg;
  ICacheRunResult R = runWithICache(M, Cfg);
  ASSERT_TRUE(R.Exec.Ok);
  EXPECT_EQ(R.Fetches, R.Exec.InstructionsExecuted);
  EXPECT_GT(R.Fetches, 300u);
  // The loop fits into the default cache: only cold misses.
  EXPECT_LE(R.Misses, 2u);
  EXPECT_EQ(R.CodeWords, M.instructionCount());
}
