//===- tests/test_ir.cpp - IR construction and verification ---------------===//
//
// Part of the bpcr project (Krall, PLDI 1994 reproduction).
//
//===----------------------------------------------------------------------===//

#include "ir/IRBuilder.h"
#include "ir/Module.h"
#include "ir/Printer.h"
#include "ir/Verifier.h"

#include <gtest/gtest.h>

using namespace bpcr;

namespace {

Operand R(Reg X) { return Operand::reg(X); }
Operand K(int64_t V) { return Operand::imm(V); }

/// Builds: main() { x = 0; loop: x++; if (x < 5) goto loop; return x; }
Module countToFive() {
  Module M;
  M.MemWords = 4;
  uint32_t Main = M.addFunction("main", 0);
  IRBuilder B(M, Main);
  Reg X = B.newReg(), C = B.newReg();
  uint32_t Entry = B.newBlock("entry");
  uint32_t Loop = B.newBlock("loop");
  uint32_t Exit = B.newBlock("exit");
  B.setInsertPoint(Entry);
  B.movImm(X, 0);
  B.jmp(Loop);
  B.setInsertPoint(Loop);
  B.add(X, R(X), K(1));
  B.cmpLt(C, R(X), K(5));
  B.br(R(C), Loop, Exit);
  B.setInsertPoint(Exit);
  B.ret(R(X));
  return M;
}

} // namespace

TEST(Operand, Accessors) {
  Operand A = Operand::reg(7);
  EXPECT_TRUE(A.isReg());
  EXPECT_EQ(A.asReg(), 7);
  Operand B = Operand::imm(-3);
  EXPECT_TRUE(B.isImm());
  EXPECT_EQ(B.Val, -3);
  EXPECT_TRUE(Operand::none().isNone());
}

TEST(BasicBlock, SuccessorsOfTerminators) {
  Module M = countToFive();
  const Function &F = M.Functions[0];
  EXPECT_EQ(F.Blocks[0].successors(), (std::vector<uint32_t>{1}));
  EXPECT_EQ(F.Blocks[1].successors(), (std::vector<uint32_t>{1, 2}));
  EXPECT_TRUE(F.Blocks[2].successors().empty());
}

TEST(IRBuilder, RegistersAreSequential) {
  Module M;
  uint32_t F = M.addFunction("f", 2);
  IRBuilder B(M, F);
  EXPECT_EQ(B.newReg(), 2); // params take 0 and 1
  EXPECT_EQ(B.newReg(), 3);
  EXPECT_EQ(M.Functions[F].NumRegs, 4u);
}

TEST(IRBuilder, CountToFiveIsValid) {
  Module M = countToFive();
  EXPECT_TRUE(verifyModule(M).empty());
}

TEST(Module, AssignBranchIdsIsSequentialAndMirrored) {
  Module M = countToFive();
  EXPECT_EQ(M.assignBranchIds(), 1u);
  const Instruction &Br = M.Functions[0].Blocks[1].terminator();
  EXPECT_EQ(Br.BranchId, 0);
  EXPECT_EQ(Br.OrigBranchId, 0);
}

TEST(Module, ReassignKeepsOrigIds) {
  Module M = countToFive();
  M.assignBranchIds();
  // Simulate replication: clone the loop block; its branch keeps Orig.
  Function &F = M.Functions[0];
  F.Blocks.push_back(F.Blocks[1]);
  M.assignBranchIds();
  EXPECT_EQ(F.Blocks[1].terminator().BranchId, 0);
  EXPECT_EQ(F.Blocks[3].terminator().BranchId, 1);
  EXPECT_EQ(F.Blocks[3].terminator().OrigBranchId, 0);
}

TEST(Module, BranchLocations) {
  Module M = countToFive();
  M.assignBranchIds();
  auto Refs = M.branchLocations();
  ASSERT_EQ(Refs.size(), 1u);
  EXPECT_EQ(Refs[0].FuncIdx, 0u);
  EXPECT_EQ(Refs[0].BlockIdx, 1u);
  EXPECT_EQ(Refs[0].InstIdx, 2u);
}

TEST(Module, InstructionCounts) {
  Module M = countToFive();
  EXPECT_EQ(M.instructionCount(), 6u);
  EXPECT_EQ(M.conditionalBranchCount(), 1u);
}

// -- Verifier negative cases ---------------------------------------------------

TEST(Verifier, DetectsMissingTerminator) {
  Module M;
  M.addFunction("f", 0);
  IRBuilder B(M, 0);
  uint32_t E = B.newBlock("entry");
  B.setInsertPoint(E);
  Reg X = B.newReg();
  B.movImm(X, 1); // no terminator
  auto Errs = verifyModule(M);
  ASSERT_FALSE(Errs.empty());
  EXPECT_NE(Errs[0].find("terminator"), std::string::npos);
}

TEST(Verifier, DetectsEmptyBlock) {
  Module M;
  M.addFunction("f", 0);
  M.Functions[0].Blocks.emplace_back();
  EXPECT_FALSE(verifyModule(M).empty());
}

TEST(Verifier, DetectsBadBranchTarget) {
  Module M = countToFive();
  M.Functions[0].Blocks[1].terminator().TrueTarget = 99;
  EXPECT_FALSE(verifyModule(M).empty());
}

TEST(Verifier, DetectsOutOfRangeRegister) {
  Module M = countToFive();
  M.Functions[0].Blocks[1].Insts[0].A = Operand::reg(60000);
  EXPECT_FALSE(verifyModule(M).empty());
}

TEST(Verifier, DetectsBadCallee) {
  Module M = countToFive();
  Instruction Call;
  Call.Op = Opcode::Call;
  Call.Callee = 42;
  auto &Insts = M.Functions[0].Blocks[0].Insts;
  Insts.insert(Insts.begin(), Call);
  EXPECT_FALSE(verifyModule(M).empty());
}

TEST(Verifier, DetectsArgCountMismatch) {
  Module M = countToFive();
  uint32_t Callee = M.addFunction("g", 2);
  {
    IRBuilder B(M, Callee);
    uint32_t E = B.newBlock("entry");
    B.setInsertPoint(E);
    B.ret(K(0));
  }
  Instruction Call;
  Call.Op = Opcode::Call;
  Call.Callee = Callee;
  Call.Args = {K(1)}; // needs 2
  auto &Insts = M.Functions[0].Blocks[0].Insts;
  Insts.insert(Insts.begin(), Call);
  EXPECT_FALSE(verifyModule(M).empty());
}

TEST(Verifier, DetectsMidBlockTerminator) {
  Module M = countToFive();
  Instruction Jmp;
  Jmp.Op = Opcode::Jmp;
  Jmp.TrueTarget = 0;
  auto &Insts = M.Functions[0].Blocks[0].Insts;
  Insts.insert(Insts.begin(), Jmp);
  EXPECT_FALSE(verifyModule(M).empty());
}

TEST(Verifier, DetectsOversizedMemoryImage) {
  Module M = countToFive();
  M.InitialMemory.assign(M.MemWords + 1, 0);
  EXPECT_FALSE(verifyModule(M).empty());
}

TEST(Verifier, DetectsEntryBlockWithPredecessors) {
  // Regression: an edge back into block 0 used to pass silently, but the
  // interpreter and CFG both treat the entry as a pure reset point.
  Module M = countToFive();
  M.Functions[0].Blocks[1].terminator().TrueTarget = 0;
  auto Diags = verifyModuleDiags(M);
  ASSERT_FALSE(Diags.empty());
  bool Found = false;
  for (const auto &D : Diags)
    Found = Found || D.fullRuleId() == "ir-verify.entry-has-preds";
  EXPECT_TRUE(Found);
}

TEST(Verifier, DetectsFallthroughOnlyBlock) {
  // Regression: a block no explicit edge targets could only execute by
  // falling through past a terminator, which the interpreter never does.
  Module M = countToFive();
  IRBuilder B(M, 0);
  uint32_t Limbo = B.newBlock("limbo");
  B.setInsertPoint(Limbo);
  B.ret(K(0));
  auto Diags = verifyModuleDiags(M);
  ASSERT_FALSE(Diags.empty());
  bool Found = false;
  for (const auto &D : Diags) {
    if (D.fullRuleId() != "ir-verify.no-predecessors")
      continue;
    Found = true;
    EXPECT_EQ(D.PassId, "ir-verify");
    EXPECT_EQ(D.Loc.BlockIdx, static_cast<int32_t>(Limbo));
  }
  EXPECT_TRUE(Found);
}

// -- Printer ---------------------------------------------------------------------

TEST(Printer, MentionsBlocksAndOpcodes) {
  Module M = countToFive();
  M.assignBranchIds();
  std::string S = printModule(M);
  EXPECT_NE(S.find("func main"), std::string::npos);
  EXPECT_NE(S.find("loop"), std::string::npos);
  EXPECT_NE(S.find("br "), std::string::npos);
  EXPECT_NE(S.find("ret "), std::string::npos);
  EXPECT_NE(S.find("id=0"), std::string::npos);
}

TEST(Printer, ShowsPredictionAnnotation) {
  Module M = countToFive();
  M.assignBranchIds();
  M.Functions[0].Blocks[1].terminator().Predicted = Prediction::Taken;
  std::string S = printFunction(M.Functions[0]);
  EXPECT_NE(S.find("predict=T"), std::string::npos);
}

TEST(Opcode, Names) {
  EXPECT_STREQ(opcodeName(Opcode::Add), "add");
  EXPECT_STREQ(opcodeName(Opcode::Br), "br");
  EXPECT_STREQ(opcodeName(Opcode::CmpLe), "cmple");
}

TEST(Opcode, Predicates) {
  EXPECT_TRUE(isTerminator(Opcode::Ret));
  EXPECT_FALSE(isTerminator(Opcode::Add));
  EXPECT_TRUE(isCompare(Opcode::CmpEq));
  EXPECT_FALSE(isCompare(Opcode::Load));
  EXPECT_TRUE(writesRegister(Opcode::Load));
  EXPECT_FALSE(writesRegister(Opcode::Store));
  EXPECT_FALSE(writesRegister(Opcode::Br));
}
