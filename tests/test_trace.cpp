//===- tests/test_trace.cpp - Trace model, format and statistics ----------===//
//
// Part of the bpcr project (Krall, PLDI 1994 reproduction).
//
//===----------------------------------------------------------------------===//

#include "support/Rng.h"
#include "trace/TraceFile.h"
#include "trace/TraceStats.h"

#include <gtest/gtest.h>

using namespace bpcr;

namespace {

Trace randomTrace(uint64_t Seed, size_t N, int32_t MaxId) {
  Rng G(Seed);
  Trace T;
  T.reserve(N);
  for (size_t I = 0; I < N; ++I)
    T.push_back({static_cast<int32_t>(G.below(MaxId)), G.chance(1, 3)});
  return T;
}

} // namespace

TEST(TraceFile, EmptyTraceRoundTrips) {
  Trace T, Out;
  auto Buf = encodeTrace(T);
  ASSERT_TRUE(decodeTrace(Buf, Out));
  EXPECT_TRUE(Out.empty());
}

TEST(TraceFile, SmallTraceRoundTrips) {
  Trace T = {{0, true}, {0, true}, {1, false}, {0, true}, {2, false}};
  Trace Out;
  ASSERT_TRUE(decodeTrace(encodeTrace(T), Out));
  EXPECT_EQ(T, Out);
}

TEST(TraceFile, RandomTracesRoundTrip) {
  for (uint64_t Seed : {1u, 2u, 3u}) {
    Trace T = randomTrace(Seed, 10000, 500);
    Trace Out;
    ASSERT_TRUE(decodeTrace(encodeTrace(T), Out));
    EXPECT_EQ(T, Out);
  }
}

TEST(TraceFile, RunsCompressWell) {
  // A hot loop branch produces long runs; the format should collapse them.
  Trace T;
  for (int I = 0; I < 100000; ++I)
    T.push_back({7, true});
  auto Buf = encodeTrace(T);
  EXPECT_LT(Buf.size(), 64u);
  Trace Out;
  ASSERT_TRUE(decodeTrace(Buf, Out));
  EXPECT_EQ(T, Out);
}

TEST(TraceFile, LoopTraceStaysCompact) {
  // Alternating branches in a loop: id deltas are small, so a few bytes
  // per event group at worst. The paper reports ~1 MB for 5M branches; we
  // should be in the same order (< 2 bytes/event on loopy traces).
  Trace T;
  for (int I = 0; I < 50000; ++I) {
    T.push_back({0, true});
    T.push_back({1, I % 2 == 0});
    T.push_back({2, I % 7 != 0});
  }
  auto Buf = encodeTrace(T);
  EXPECT_LE(Buf.size(), T.size() * 2 + 16);
  Trace Out;
  ASSERT_TRUE(decodeTrace(Buf, Out));
  EXPECT_EQ(T, Out);
}

TEST(TraceFile, RejectsBadMagic) {
  Trace T = {{1, true}};
  auto Buf = encodeTrace(T);
  Buf[0] = 'X';
  Trace Out;
  EXPECT_FALSE(decodeTrace(Buf, Out));
}

TEST(TraceFile, RejectsTruncation) {
  Trace T = randomTrace(4, 1000, 100);
  auto Buf = encodeTrace(T);
  Buf.resize(Buf.size() / 2);
  Trace Out;
  EXPECT_FALSE(decodeTrace(Buf, Out));
}

TEST(TraceFile, RejectsTrailingGarbage) {
  Trace T = {{1, true}};
  auto Buf = encodeTrace(T);
  Buf.push_back(0);
  Trace Out;
  EXPECT_FALSE(decodeTrace(Buf, Out));
}

TEST(TraceFile, FileRoundTrip) {
  Trace T = randomTrace(5, 5000, 50);
  std::string Path = ::testing::TempDir() + "/bpcr_trace_test.bpct";
  ASSERT_TRUE(writeTraceFile(Path, T));
  Trace Out;
  ASSERT_TRUE(readTraceFile(Path, Out));
  EXPECT_EQ(T, Out);
}

TEST(TraceFile, MissingFileFails) {
  Trace Out;
  EXPECT_FALSE(readTraceFile("/nonexistent/dir/x.bpct", Out));
}

// -- TraceStats --------------------------------------------------------------

TEST(TraceStats, PerBranchCounts) {
  TraceStats S(3);
  S.addTrace({{0, true}, {0, false}, {1, true}, {0, true}});
  EXPECT_EQ(S.branch(0).Executions, 3u);
  EXPECT_EQ(S.branch(0).TakenCount, 2u);
  EXPECT_EQ(S.branch(0).notTakenCount(), 1u);
  EXPECT_EQ(S.branch(1).Executions, 1u);
  EXPECT_EQ(S.branch(2).Executions, 0u);
  EXPECT_EQ(S.executedBranches(), 2u);
  EXPECT_EQ(S.totalExecutions(), 4u);
}

TEST(TraceStats, MajorityAndProfileMispredictions) {
  BranchStats B;
  B.Executions = 10;
  B.TakenCount = 7;
  EXPECT_TRUE(B.majorityTaken());
  EXPECT_EQ(B.profileMispredictions(), 3u);
  B.TakenCount = 2;
  EXPECT_FALSE(B.majorityTaken());
  EXPECT_EQ(B.profileMispredictions(), 2u);
  B.TakenCount = 5;
  EXPECT_TRUE(B.majorityTaken()); // ties predict taken
  EXPECT_EQ(B.profileMispredictions(), 5u);
}

TEST(TraceFile, FuzzedBuffersNeverCrash) {
  // Randomly corrupted encodings must be rejected or decoded, never crash
  // or hang; round-trips of the surviving decodes must re-encode cleanly.
  Rng G(77);
  Trace Base = randomTrace(6, 2000, 64);
  auto Buf = encodeTrace(Base);
  for (int Round = 0; Round < 500; ++Round) {
    auto Corrupt = Buf;
    int Flips = 1 + static_cast<int>(G.below(8));
    for (int F = 0; F < Flips; ++F)
      Corrupt[G.below(Corrupt.size())] ^=
          static_cast<uint8_t>(1u << G.below(8));
    Trace Out;
    if (decodeTrace(Corrupt, Out)) {
      // Whatever decoded must re-encode to a decodable buffer.
      Trace Again;
      EXPECT_TRUE(decodeTrace(encodeTrace(Out), Again));
      EXPECT_EQ(Out, Again);
    }
  }
}

TEST(TraceFile, RandomPrefixesNeverCrash) {
  Rng G(78);
  for (int Round = 0; Round < 200; ++Round) {
    std::vector<uint8_t> Junk(G.below(64));
    for (uint8_t &B : Junk)
      B = static_cast<uint8_t>(G.below(256));
    Trace Out;
    decodeTrace(Junk, Out); // must simply return false or a valid trace
  }
}
