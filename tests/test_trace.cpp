//===- tests/test_trace.cpp - Trace model, format and statistics ----------===//
//
// Part of the bpcr project (Krall, PLDI 1994 reproduction).
//
//===----------------------------------------------------------------------===//

#include "interp/Interpreter.h"
#include "support/Rng.h"
#include "trace/Sinks.h"
#include "trace/TraceFile.h"
#include "trace/TraceStats.h"
#include "workloads/Workload.h"

#include <gtest/gtest.h>

using namespace bpcr;

namespace {

Trace randomTrace(uint64_t Seed, size_t N, int32_t MaxId) {
  Rng G(Seed);
  Trace T;
  T.reserve(N);
  for (size_t I = 0; I < N; ++I)
    T.push_back({static_cast<int32_t>(G.below(MaxId)), G.chance(1, 3)});
  return T;
}

} // namespace

TEST(TraceFile, EmptyTraceRoundTrips) {
  Trace T, Out;
  auto Buf = encodeTrace(T);
  ASSERT_TRUE(decodeTrace(Buf, Out));
  EXPECT_TRUE(Out.empty());
}

TEST(TraceFile, SmallTraceRoundTrips) {
  Trace T = {{0, true}, {0, true}, {1, false}, {0, true}, {2, false}};
  Trace Out;
  ASSERT_TRUE(decodeTrace(encodeTrace(T), Out));
  EXPECT_EQ(T, Out);
}

TEST(TraceFile, RandomTracesRoundTrip) {
  for (uint64_t Seed : {1u, 2u, 3u}) {
    Trace T = randomTrace(Seed, 10000, 500);
    Trace Out;
    ASSERT_TRUE(decodeTrace(encodeTrace(T), Out));
    EXPECT_EQ(T, Out);
  }
}

TEST(TraceFile, RunsCompressWell) {
  // A hot loop branch produces long runs; the format should collapse them.
  Trace T;
  for (int I = 0; I < 100000; ++I)
    T.push_back({7, true});
  auto Buf = encodeTrace(T);
  EXPECT_LT(Buf.size(), 64u);
  Trace Out;
  ASSERT_TRUE(decodeTrace(Buf, Out));
  EXPECT_EQ(T, Out);
}

TEST(TraceFile, LoopTraceStaysCompact) {
  // Alternating branches in a loop: id deltas are small, so a few bytes
  // per event group at worst. The paper reports ~1 MB for 5M branches; we
  // should be in the same order (< 2 bytes/event on loopy traces).
  Trace T;
  for (int I = 0; I < 50000; ++I) {
    T.push_back({0, true});
    T.push_back({1, I % 2 == 0});
    T.push_back({2, I % 7 != 0});
  }
  auto Buf = encodeTrace(T);
  EXPECT_LE(Buf.size(), T.size() * 2 + 16);
  Trace Out;
  ASSERT_TRUE(decodeTrace(Buf, Out));
  EXPECT_EQ(T, Out);
}

TEST(TraceFile, RejectsBadMagic) {
  Trace T = {{1, true}};
  auto Buf = encodeTrace(T);
  Buf[0] = 'X';
  Trace Out;
  EXPECT_FALSE(decodeTrace(Buf, Out));
}

TEST(TraceFile, RejectsTruncation) {
  Trace T = randomTrace(4, 1000, 100);
  auto Buf = encodeTrace(T);
  Buf.resize(Buf.size() / 2);
  Trace Out;
  EXPECT_FALSE(decodeTrace(Buf, Out));
}

TEST(TraceFile, RejectsTrailingGarbage) {
  Trace T = {{1, true}};
  auto Buf = encodeTrace(T);
  Buf.push_back(0);
  Trace Out;
  EXPECT_FALSE(decodeTrace(Buf, Out));
}

TEST(TraceFile, FileRoundTrip) {
  Trace T = randomTrace(5, 5000, 50);
  std::string Path = ::testing::TempDir() + "/bpcr_trace_test.bpct";
  ASSERT_TRUE(writeTraceFile(Path, T));
  Trace Out;
  ASSERT_TRUE(readTraceFile(Path, Out));
  EXPECT_EQ(T, Out);
}

TEST(TraceFile, MissingFileFails) {
  Trace Out;
  EXPECT_FALSE(readTraceFile("/nonexistent/dir/x.bpct", Out));
}

// -- TraceStats --------------------------------------------------------------

TEST(TraceStats, PerBranchCounts) {
  TraceStats S(3);
  S.addTrace({{0, true}, {0, false}, {1, true}, {0, true}});
  EXPECT_EQ(S.branch(0).Executions, 3u);
  EXPECT_EQ(S.branch(0).TakenCount, 2u);
  EXPECT_EQ(S.branch(0).notTakenCount(), 1u);
  EXPECT_EQ(S.branch(1).Executions, 1u);
  EXPECT_EQ(S.branch(2).Executions, 0u);
  EXPECT_EQ(S.executedBranches(), 2u);
  EXPECT_EQ(S.totalExecutions(), 4u);
}

TEST(TraceStats, MajorityAndProfileMispredictions) {
  BranchStats B;
  B.Executions = 10;
  B.TakenCount = 7;
  EXPECT_TRUE(B.majorityTaken());
  EXPECT_EQ(B.profileMispredictions(), 3u);
  B.TakenCount = 2;
  EXPECT_FALSE(B.majorityTaken());
  EXPECT_EQ(B.profileMispredictions(), 2u);
  B.TakenCount = 5;
  EXPECT_TRUE(B.majorityTaken()); // ties predict taken
  EXPECT_EQ(B.profileMispredictions(), 5u);
}

TEST(TraceFile, FuzzedBuffersNeverCrash) {
  // Randomly corrupted encodings must be rejected or decoded, never crash
  // or hang; round-trips of the surviving decodes must re-encode cleanly.
  Rng G(77);
  Trace Base = randomTrace(6, 2000, 64);
  auto Buf = encodeTrace(Base);
  for (int Round = 0; Round < 500; ++Round) {
    auto Corrupt = Buf;
    int Flips = 1 + static_cast<int>(G.below(8));
    for (int F = 0; F < Flips; ++F)
      Corrupt[G.below(Corrupt.size())] ^=
          static_cast<uint8_t>(1u << G.below(8));
    Trace Out;
    if (decodeTrace(Corrupt, Out)) {
      // Whatever decoded must re-encode to a decodable buffer.
      Trace Again;
      EXPECT_TRUE(decodeTrace(encodeTrace(Out), Again));
      EXPECT_EQ(Out, Again);
    }
  }
}

TEST(TraceFile, RandomPrefixesNeverCrash) {
  Rng G(78);
  for (int Round = 0; Round < 200; ++Round) {
    std::vector<uint8_t> Junk(G.below(64));
    for (uint8_t &B : Junk)
      B = static_cast<uint8_t>(G.below(256));
    Trace Out;
    decodeTrace(Junk, Out); // must simply return false or a valid trace
  }
}

// -- Descriptive decode errors -----------------------------------------------

TEST(TraceFileErrors, BadMagicIsDescribed) {
  auto Buf = encodeTrace({{1, true}});
  Buf[0] = 'X';
  Trace Out;
  std::string Error;
  EXPECT_FALSE(decodeTrace(Buf, Out, Error));
  EXPECT_NE(Error.find("magic"), std::string::npos) << Error;
}

TEST(TraceFileErrors, BadVersionIsDescribed) {
  auto Buf = encodeTrace({{1, true}});
  Buf[4] = 99; // version byte follows the 4-byte magic
  Trace Out;
  std::string Error;
  EXPECT_FALSE(decodeTrace(Buf, Out, Error));
  EXPECT_NE(Error.find("version"), std::string::npos) << Error;
  EXPECT_NE(Error.find("99"), std::string::npos) << Error;
}

TEST(TraceFileErrors, TruncationIsDescribed) {
  auto Buf = encodeTrace(randomTrace(9, 1000, 100));
  Buf.resize(Buf.size() / 2);
  Trace Out;
  std::string Error;
  EXPECT_FALSE(decodeTrace(Buf, Out, Error));
  EXPECT_NE(Error.find("truncat"), std::string::npos) << Error;
}

TEST(TraceFileErrors, ShortHeaderIsDescribed) {
  std::vector<uint8_t> Buf = {'B', 'P'};
  Trace Out;
  std::string Error;
  EXPECT_FALSE(decodeTrace(Buf, Out, Error));
  EXPECT_NE(Error.find("truncated"), std::string::npos) << Error;
}

TEST(TraceFileErrors, TrailingGarbageIsDescribed) {
  auto Buf = encodeTrace({{1, true}});
  Buf.push_back(0);
  Trace Out;
  std::string Error;
  EXPECT_FALSE(decodeTrace(Buf, Out, Error));
  EXPECT_NE(Error.find("trailing"), std::string::npos) << Error;
}

TEST(TraceFileErrors, MissingFileNamesThePath) {
  Trace Out;
  std::string Error;
  EXPECT_FALSE(readTraceFile("/nonexistent/dir/x.bpct", Out, Error));
  EXPECT_NE(Error.find("/nonexistent/dir/x.bpct"), std::string::npos) << Error;
}

TEST(TraceFileErrors, CorruptedFileNamesThePath) {
  std::string Path = ::testing::TempDir() + "/bpcr_trace_corrupt.bpct";
  Trace T = randomTrace(10, 500, 20);
  ASSERT_TRUE(writeTraceFile(Path, T));
  // Truncate the file on disk to simulate a torn write.
  {
    std::vector<uint8_t> Buf = encodeTrace(T);
    Buf.resize(Buf.size() / 2);
    FILE *F = std::fopen(Path.c_str(), "wb");
    ASSERT_NE(F, nullptr);
    ASSERT_EQ(std::fwrite(Buf.data(), 1, Buf.size(), F), Buf.size());
    std::fclose(F);
  }
  Trace Out;
  std::string Error;
  EXPECT_FALSE(readTraceFile(Path, Out, Error));
  EXPECT_NE(Error.find(Path), std::string::npos) << Error;
  EXPECT_NE(Error.find("truncat"), std::string::npos) << Error;
}

// -- MultiSink ---------------------------------------------------------------

namespace {

/// Appends "<tag>:<branch>:<taken>" to a shared log, to observe fan-out order.
class LoggingSink : public TraceSink {
public:
  LoggingSink(char Tag, std::vector<std::string> &Log) : Tag(Tag), Log(Log) {}

  void onBranch(const Instruction &Br, bool Taken) override {
    Log.push_back(std::string(1, Tag) + ":" + std::to_string(Br.BranchId) +
                  ":" + (Taken ? "1" : "0"));
  }

private:
  char Tag;
  std::vector<std::string> &Log;
};

} // namespace

TEST(MultiSink, FanOutPreservesRegistrationOrder) {
  std::vector<std::string> Log;
  LoggingSink A('a', Log), B('b', Log);
  MultiSink Multi;
  Multi.add(&A);
  Multi.add(&B);

  Instruction Br;
  Br.BranchId = 3;
  Multi.onBranch(Br, true);
  Br.BranchId = 7;
  Multi.onBranch(Br, false);

  ASSERT_EQ(Log.size(), 4u);
  EXPECT_EQ(Log[0], "a:3:1");
  EXPECT_EQ(Log[1], "b:3:1");
  EXPECT_EQ(Log[2], "a:7:0");
  EXPECT_EQ(Log[3], "b:7:0");
}

TEST(MultiSink, MillionEventStressAgreesAcrossSinks) {
  // Drive over a million branch events from real workload runs through one
  // MultiSink and check the counting and collecting views never diverge.
  CountingSink Counting;
  CollectingSink Collecting;
  MultiSink Multi;
  Multi.add(&Counting);
  Multi.add(&Collecting);

  uint64_t FromRuns = 0;
  for (uint64_t Seed = 1; Counting.total() < 1'000'000u; ++Seed) {
    Module Run = buildWorkload("ghostview", Seed);
    Run.assignBranchIds();
    ExecOptions Opts;
    Opts.MaxBranchEvents = 1'000'000;
    FromRuns += execute(Run, &Multi, Opts).BranchEvents;
  }

  EXPECT_GE(Counting.total(), 1'000'000u);
  EXPECT_EQ(Counting.total(), FromRuns);
  EXPECT_EQ(Counting.total(), Collecting.trace().size());

  uint64_t Taken = 0;
  for (const BranchEvent &E : Collecting.trace())
    Taken += E.Taken ? 1 : 0;
  EXPECT_EQ(Taken, Counting.taken());
}

TEST(MultiSink, EmptyAndSingleSinkDegenerateCases) {
  MultiSink Empty;
  Instruction Br;
  Br.BranchId = 0;
  Empty.onBranch(Br, true); // no sinks: must be a no-op, not a crash

  CountingSink Counting;
  MultiSink Single;
  Single.add(&Counting);
  Single.onBranch(Br, true);
  Single.onBranch(Br, false);
  EXPECT_EQ(Counting.total(), 2u);
  EXPECT_EQ(Counting.taken(), 1u);
}
