//===- tests/test_profiler.cpp - Self-profiling layer tests ---------------===//
//
// Part of the bpcr project (Krall, PLDI 1994 reproduction).
//
//===----------------------------------------------------------------------===//
//
// obs/Profiler.h: self-time reconstruction from nested and overlapping
// spans (including spans the sampling cap dropped), per-category
// opened/recorded accounting, the collapsed-stack flamegraph export, the
// counting allocator, and the thread pool's utilization telemetry.
//
//===----------------------------------------------------------------------===//

#include "obs/Json.h"
#include "obs/Profiler.h"
#include "support/CountingAlloc.h"
#include "support/ThreadPool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <thread>
#include <vector>

using namespace bpcr;

namespace {

/// Spins the CPU for roughly \p Us microseconds — real elapsed time, so
/// span durations are nonzero and ordered, without sleeping precision.
void busySpin(unsigned Us) {
  auto End = std::chrono::steady_clock::now() + std::chrono::microseconds(Us);
  while (std::chrono::steady_clock::now() < End)
    ;
}

const ProfileCategoryStats *findCategory(const ProfileData &D,
                                         const std::string &Name) {
  for (const auto &C : D.Categories)
    if (C.Category == Name)
      return &C;
  return nullptr;
}

const ProfileSiteStats *findSite(const ProfileData &D, const std::string &Cat,
                                 const std::string &Name) {
  for (const auto &S : D.Sites)
    if (S.Category == Cat && S.Name == Name)
      return &S;
  return nullptr;
}

} // namespace

// -- Self-time reconstruction ------------------------------------------------

TEST(Profiler, NestedSpansSplitSelfFromTotal) {
  SpanTracer T;
  T.setEnabled(true);
  {
    Span P("parent", "tree", T);
    busySpin(300);
    {
      Span C1("child1", "tree", T);
      busySpin(500);
    }
    {
      Span C2("child2", "tree", T);
      busySpin(500);
    }
    busySpin(300);
  }

  Profiler Prof;
  ProfileData D = Prof.collect(T);

  const ProfileSiteStats *P = findSite(D, "tree", "parent");
  const ProfileSiteStats *C1 = findSite(D, "tree", "child1");
  const ProfileSiteStats *C2 = findSite(D, "tree", "child2");
  ASSERT_NE(P, nullptr);
  ASSERT_NE(C1, nullptr);
  ASSERT_NE(C2, nullptr);
  EXPECT_EQ(P->Count, 1u);

  // Self = duration minus the direct children's durations, exactly: the
  // three numbers come from the same recorded events.
  EXPECT_EQ(P->SelfWallNs + C1->TotalWallNs + C2->TotalWallNs,
            P->TotalWallNs);
  // Leaves have no children, so self == total.
  EXPECT_EQ(C1->SelfWallNs, C1->TotalWallNs);
  EXPECT_EQ(C2->SelfWallNs, C2->TotalWallNs);
  // The parent spent real time outside its children.
  EXPECT_GT(P->SelfWallNs, 0u);
  EXPECT_GT(P->TotalWallNs, C1->TotalWallNs + C2->TotalWallNs);

  const ProfileCategoryStats *Cat = findCategory(D, "tree");
  ASSERT_NE(Cat, nullptr);
  EXPECT_EQ(Cat->Opened, 3u);
  EXPECT_EQ(Cat->Recorded, 3u);
  EXPECT_EQ(Cat->Dropped, 0u);
  EXPECT_FALSE(Cat->SampleCapped);
  EXPECT_DOUBLE_EQ(Cat->SampleScale, 1.0);
  // Category totals count only top-level-within-category once per event:
  // the identity also holds summed over sites.
  EXPECT_EQ(Cat->TotalWallNs,
            P->TotalWallNs + C1->TotalWallNs + C2->TotalWallNs);
  EXPECT_EQ(Cat->SelfWallNs,
            P->SelfWallNs + C1->SelfWallNs + C2->SelfWallNs);

  // Where the platform has a per-thread CPU clock, a busy-spinning span
  // must have accumulated CPU time, bounded by the same identity.
  if (Span::threadCpuNowNs() != 0) {
    EXPECT_GT(P->TotalCpuNs, 0u);
    EXPECT_LE(P->SelfCpuNs, P->TotalCpuNs);
  }
}

TEST(Profiler, OverlappingSpansOnOtherThreadsStayIndependent) {
  SpanTracer T;
  T.setEnabled(true);

  // Two threads run the same site concurrently; a barrier guarantees the
  // spans overlap in wall time. Nesting is per thread, so neither span may
  // be treated as the other's child.
  std::atomic<int> Ready{0};
  auto Work = [&] {
    Ready.fetch_add(1);
    while (Ready.load() < 2)
      ;
    Span S("worker", "overlap", T);
    busySpin(400);
  };
  std::thread A(Work), B(Work);
  A.join();
  B.join();

  Profiler Prof;
  ProfileData D = Prof.collect(T);
  const ProfileSiteStats *S = findSite(D, "overlap", "worker");
  ASSERT_NE(S, nullptr);
  EXPECT_EQ(S->Count, 2u);
  // No parent/child relation across threads: both spans are roots, so
  // self == total for the aggregated site.
  EXPECT_EQ(S->SelfWallNs, S->TotalWallNs);

  const ProfileCategoryStats *Cat = findCategory(D, "overlap");
  ASSERT_NE(Cat, nullptr);
  EXPECT_EQ(Cat->Opened, 2u);
  EXPECT_EQ(Cat->Recorded, 2u);
}

// -- Sampling-cap accounting (the dropped-span satellite) --------------------

TEST(Profiler, CappedCategoryReportsOpenedDroppedAndScale) {
  SpanTracer T;
  T.setEnabled(true);
  T.setSampleLimit(2);
  for (int I = 0; I < 5; ++I) {
    Span S("burst", "hot", T);
    busySpin(50);
  }

  EXPECT_EQ(T.droppedCount(), 3u);

  Profiler Prof;
  ProfileData D = Prof.collect(T);
  EXPECT_EQ(D.SpansDropped, 3u);

  const ProfileCategoryStats *Cat = findCategory(D, "hot");
  ASSERT_NE(Cat, nullptr);
  EXPECT_EQ(Cat->Opened, 5u);
  EXPECT_EQ(Cat->Recorded, 2u);
  EXPECT_EQ(Cat->Dropped, 3u);
  EXPECT_TRUE(Cat->SampleCapped);
  EXPECT_DOUBLE_EQ(Cat->SampleScale, 2.5);

  // The JSON rendering carries the flag and the capped-only estimate so
  // readers are never silently shown under-reported times.
  std::string J = profileJson(D).dump(2);
  EXPECT_NE(J.find("\"sample_capped\": true"), std::string::npos);
  EXPECT_NE(J.find("\"est_self_wall_ns\""), std::string::npos);
  EXPECT_NE(J.find("\"opened\": 5"), std::string::npos);
}

TEST(Profiler, AllDroppedCategoryStillAppears) {
  SpanTracer T;
  T.setEnabled(true);
  T.setSampleLimit(0);
  {
    Span S("ghost", "unsampled", T);
  }

  Profiler Prof;
  ProfileData D = Prof.collect(T);
  const ProfileCategoryStats *Cat = findCategory(D, "unsampled");
  ASSERT_NE(Cat, nullptr);
  EXPECT_EQ(Cat->Opened, 1u);
  EXPECT_EQ(Cat->Recorded, 0u);
  EXPECT_EQ(Cat->Dropped, 1u);
  EXPECT_TRUE(Cat->SampleCapped);
  // Nothing recorded: no basis for an estimate, scale pins to 0.
  EXPECT_DOUBLE_EQ(Cat->SampleScale, 0.0);
  EXPECT_EQ(Cat->TotalWallNs, 0u);
}

TEST(Profiler, ChildrenOfDroppedParentAttachToRecordedAncestor) {
  SpanTracer T;
  T.setEnabled(true);
  T.setSampleLimit(1);
  {
    Span Root("root", "a", T); // recorded (first in "a")
    busySpin(100);
    {
      Span Mid("mid", "a", T); // dropped (cap 1 per category)
      {
        Span Leaf("leaf", "b", T); // recorded, depth 2
        busySpin(100);
      }
    }
  }

  // The leaf's flamegraph path skips the dropped frame and attaches to the
  // nearest recorded ancestor whose interval contains it.
  std::string Flame = collapsedStacks(T);
  EXPECT_NE(Flame.find("bpcr;root;leaf "), std::string::npos) << Flame;
  EXPECT_EQ(Flame.find("mid"), std::string::npos) << Flame;

  // And self-time attribution follows the same tree: the leaf's duration
  // comes out of the root's self time.
  Profiler Prof;
  ProfileData D = Prof.collect(T);
  const ProfileSiteStats *Root = findSite(D, "a", "root");
  const ProfileSiteStats *Leaf = findSite(D, "b", "leaf");
  ASSERT_NE(Root, nullptr);
  ASSERT_NE(Leaf, nullptr);
  EXPECT_EQ(Root->SelfWallNs + Leaf->TotalWallNs, Root->TotalWallNs);
}

// -- Collapsed-stack export --------------------------------------------------

TEST(Profiler, CollapsedStacksAreSortedIntegerMicroseconds) {
  SpanTracer T;
  T.setEnabled(true);
  {
    Span P("outer", "fg", T);
    busySpin(200);
    {
      Span C("inner", "fg", T);
      busySpin(200);
    }
  }

  std::string Flame = collapsedStacks(T);
  ASSERT_FALSE(Flame.empty());

  std::vector<std::string> Lines;
  size_t Pos = 0;
  while (Pos < Flame.size()) {
    size_t Nl = Flame.find('\n', Pos);
    ASSERT_NE(Nl, std::string::npos) << "unterminated line";
    Lines.push_back(Flame.substr(Pos, Nl - Pos));
    Pos = Nl + 1;
  }
  ASSERT_EQ(Lines.size(), 2u);
  // Sorted stack paths, each "bpcr;frame[;frame...] <integer>".
  EXPECT_TRUE(Lines[0] < Lines[1]);
  for (const std::string &L : Lines) {
    EXPECT_EQ(L.rfind("bpcr;", 0), 0u) << L;
    size_t Space = L.rfind(' ');
    ASSERT_NE(Space, std::string::npos) << L;
    std::string Value = L.substr(Space + 1);
    ASSERT_FALSE(Value.empty()) << L;
    for (char C : Value)
      EXPECT_TRUE(C >= '0' && C <= '9') << L;
  }
  EXPECT_NE(Flame.find("bpcr;outer "), std::string::npos);
  EXPECT_NE(Flame.find("bpcr;outer;inner "), std::string::npos);
}

// -- Counting allocator ------------------------------------------------------

TEST(CountingAlloc, TracksTaggedPoolsOnlyWhileEnabled) {
  AllocTracker &Tr = AllocTracker::global();
  bool Was = Tr.enabled();
  Tr.reset();
  Tr.setEnabled(true);

  {
    std::vector<int, CountingAllocator<int, AllocTag::Ladder>> V;
    V.reserve(100);
    AllocTracker::TagStats S = Tr.stats(AllocTag::Ladder);
    EXPECT_EQ(S.Allocs, 1u);
    EXPECT_EQ(S.Frees, 0u);
    EXPECT_EQ(S.BytesAllocated, 100 * sizeof(int));
    EXPECT_EQ(S.PeakLiveBytes, 100 * sizeof(int));
    // Other tags are untouched.
    EXPECT_EQ(Tr.stats(AllocTag::TraceBuffer).Allocs, 0u);
  }
  AllocTracker::TagStats S = Tr.stats(AllocTag::Ladder);
  EXPECT_EQ(S.Frees, 1u);
  EXPECT_EQ(S.BytesFreed, S.BytesAllocated);

  // Disabled: allocations pass through unrecorded.
  Tr.setEnabled(false);
  {
    std::vector<int, CountingAllocator<int, AllocTag::Ladder>> V;
    V.reserve(50);
  }
  AllocTracker::TagStats After = Tr.stats(AllocTag::Ladder);
  EXPECT_EQ(After.Allocs, S.Allocs);
  EXPECT_EQ(After.BytesAllocated, S.BytesAllocated);

  Tr.reset();
  Tr.setEnabled(Was);
}

TEST(CountingAlloc, PeakLiveSaturatesWhenFreesOutrunAllocs) {
  AllocTracker &Tr = AllocTracker::global();
  bool Was = Tr.enabled();
  Tr.reset();
  Tr.setEnabled(true);

  // Enabling mid-run can observe a free of memory allocated while the
  // tracker was off; the live computation must saturate, not wrap.
  Tr.recordFree(AllocTag::PatternTable, 1000);
  Tr.recordAlloc(AllocTag::PatternTable, 100);
  AllocTracker::TagStats S = Tr.stats(AllocTag::PatternTable);
  EXPECT_EQ(S.PeakLiveBytes, 0u);

  Tr.reset();
  Tr.setEnabled(Was);
}

TEST(CountingAlloc, TagNamesAreStable) {
  EXPECT_STREQ(allocTagName(AllocTag::TraceBuffer), "trace_buffer");
  EXPECT_STREQ(allocTagName(AllocTag::Ladder), "ladder");
  EXPECT_STREQ(allocTagName(AllocTag::PatternTable), "pattern_table");
}

// -- Thread pool telemetry ---------------------------------------------------

TEST(ThreadPoolTelemetry, StatsCoverSubmissionsWorkersAndLatency) {
  PoolStats S;
  {
    ThreadPool Pool(2);
    std::vector<std::future<void>> Futures;
    for (int I = 0; I < 8; ++I)
      Futures.push_back(Pool.submit([] { busySpin(200); }));
    for (auto &F : Futures)
      F.wait();
    S = Pool.stats();
  }
  EXPECT_EQ(S.TasksSubmitted, 8u);
  ASSERT_EQ(S.WorkerBusyNs.size(), 2u);
  ASSERT_EQ(S.WorkerIdleNs.size(), 2u);
  uint64_t Busy = S.WorkerBusyNs[0] + S.WorkerBusyNs[1];
  EXPECT_GT(Busy, 0u);
  EXPECT_EQ(S.SubmitLatencyCount, 8u);
  EXPECT_GE(S.SubmitLatencyMaxNs, S.SubmitLatencyTotalNs / 8);
  // Eight tasks on two workers: the queue must have backed up at least once.
  EXPECT_GE(S.QueueDepthHwm, 1u);
}

TEST(ThreadPoolTelemetry, IdlePoolReportsNoWork) {
  ThreadPool Pool(2);
  PoolStats S = Pool.stats();
  EXPECT_EQ(S.TasksSubmitted, 0u);
  EXPECT_EQ(S.SubmitLatencyCount, 0u);
  EXPECT_EQ(S.QueueDepthHwm, 0u);
}

// -- Profiler switch and RSS sampling ----------------------------------------

TEST(Profiler, EnableCascadesToTrackerAndTracer) {
  bool TracerWas = SpanTracer::global().enabled();
  bool AllocWas = AllocTracker::global().enabled();

  Profiler P;
  P.setEnabled(true);
  EXPECT_TRUE(P.enabled());
  EXPECT_TRUE(AllocTracker::global().enabled());
  EXPECT_TRUE(SpanTracer::global().enabled());
  P.setEnabled(false);
  EXPECT_FALSE(AllocTracker::global().enabled());

  SpanTracer::global().setEnabled(TracerWas);
  AllocTracker::global().setEnabled(AllocWas);
  AllocTracker::global().reset();
}

TEST(Profiler, RssSamplesLandInCollectedData) {
  uint64_t Rss = Profiler::currentRssBytes();
#if defined(__linux__)
  EXPECT_GT(Rss, 0u);
#endif
  if (Rss == 0)
    GTEST_SKIP() << "no RSS source on this platform";

  bool TracerWas = SpanTracer::global().enabled();
  bool AllocWas = AllocTracker::global().enabled();

  Profiler P;
  P.setEnabled(true);
  P.sampleRss("phase.one");
  P.sampleRss("phase.two");

  SpanTracer Quiet; // disabled tracer: isolates the RSS/alloc half
  ProfileData D = P.collect(Quiet);
  ASSERT_EQ(D.RssSamples.size(), 2u);
  EXPECT_EQ(D.RssSamples[0].Label, "phase.one");
  EXPECT_EQ(D.RssSamples[1].Label, "phase.two");
  EXPECT_GT(D.RssSamples[0].RssBytes, 0u);
  EXPECT_GT(D.PeakRssBytes, 0u);
  // getrusage peak can never undercut a live statm reading by more than
  // page rounding; sanity-bound it from below.
  EXPECT_GE(D.PeakRssBytes, D.RssSamples[0].RssBytes / 2);

  P.setEnabled(false);
  P.clear();
  SpanTracer::global().setEnabled(TracerWas);
  AllocTracker::global().setEnabled(AllocWas);
  AllocTracker::global().reset();
}

TEST(Profiler, DisabledProfilerSamplesNothing) {
  Profiler P;
  ASSERT_FALSE(P.enabled());
  P.sampleRss("ignored");
  SpanTracer Quiet;
  ProfileData D = P.collect(Quiet);
  EXPECT_TRUE(D.RssSamples.empty());
}
