//===- tests/test_threadpool.cpp ------------------------------------------===//
//
// Part of the bpcr project (Krall, PLDI 1994 reproduction).
//
//===----------------------------------------------------------------------===//
//
// The thread pool underpins every `--jobs` knob, so these tests pin down
// the contracts the parallel callers rely on: each index runs exactly
// once, results written into pre-sized slots are schedule-independent,
// exceptions surface deterministically (lowest index wins), and the
// observability layer stays exact under contention.
//
//===----------------------------------------------------------------------===//

#include "obs/Metrics.h"
#include "obs/TraceSpans.h"
#include "support/ThreadPool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

using namespace bpcr;

TEST(ThreadPool, HardwareThreadsIsAtLeastOne) {
  EXPECT_GE(ThreadPool::hardwareThreads(), 1u);
}

TEST(ThreadPool, ResolveJobsMapsZeroToHardware) {
  EXPECT_EQ(ThreadPool::resolveJobs(0), ThreadPool::hardwareThreads());
  EXPECT_EQ(ThreadPool::resolveJobs(1), 1u);
  EXPECT_EQ(ThreadPool::resolveJobs(7), 7u);
}

TEST(ThreadPool, SubmittedTasksAllRun) {
  ThreadPool Pool(4);
  EXPECT_EQ(Pool.size(), 4u);
  std::atomic<int> Count{0};
  std::vector<std::future<void>> Futures;
  for (int I = 0; I < 64; ++I)
    Futures.push_back(Pool.submit([&Count] { ++Count; }));
  for (auto &F : Futures)
    F.get();
  EXPECT_EQ(Count.load(), 64);
}

TEST(ThreadPool, SingleWorkerRunsTasksInSubmissionOrder) {
  ThreadPool Pool(1);
  std::vector<int> Order;
  std::vector<std::future<void>> Futures;
  for (int I = 0; I < 16; ++I)
    Futures.push_back(Pool.submit([&Order, I] { Order.push_back(I); }));
  for (auto &F : Futures)
    F.get();
  ASSERT_EQ(Order.size(), 16u);
  for (int I = 0; I < 16; ++I)
    EXPECT_EQ(Order[static_cast<size_t>(I)], I);
}

TEST(ThreadPool, SubmitPropagatesExceptionThroughFuture) {
  ThreadPool Pool(2);
  std::future<void> F =
      Pool.submit([] { throw std::runtime_error("task failed"); });
  EXPECT_THROW(F.get(), std::runtime_error);
}

TEST(ThreadPool, ParallelForRunsEveryIndexExactlyOnce) {
  ThreadPool Pool(4);
  constexpr size_t N = 1000;
  std::vector<std::atomic<int>> Hits(N);
  Pool.parallelFor(N, [&Hits](size_t I) { ++Hits[I]; });
  for (size_t I = 0; I < N; ++I)
    EXPECT_EQ(Hits[I].load(), 1) << "index " << I;
}

TEST(ThreadPool, ParallelForIndexedSlotsAreScheduleIndependent) {
  // The determinism convention of every parallel caller: write results
  // into a slot indexed by the loop index, never append.
  ThreadPool Pool(4);
  constexpr size_t N = 256;
  std::vector<uint64_t> Slots(N, 0);
  Pool.parallelFor(N, [&Slots](size_t I) { Slots[I] = I * I + 1; });
  for (size_t I = 0; I < N; ++I)
    EXPECT_EQ(Slots[I], I * I + 1);
}

TEST(ThreadPool, ParallelForRethrowsLowestFailingIndex) {
  ThreadPool Pool(4);
  // Every index past 4 fails; whatever the schedule, index 5's exception
  // must be the one the caller sees.
  std::string Caught;
  try {
    Pool.parallelFor(64, [](size_t I) {
      if (I > 4)
        throw std::runtime_error(std::to_string(I));
    });
  } catch (const std::runtime_error &E) {
    Caught = E.what();
  }
  EXPECT_EQ(Caught, "5");
}

TEST(ThreadPool, ParallelForJobsOneRunsInline) {
  std::thread::id Main = std::this_thread::get_id();
  std::vector<std::thread::id> Seen(8);
  parallelForJobs(1, Seen.size(),
                  [&Seen](size_t I) { Seen[I] = std::this_thread::get_id(); });
  for (const std::thread::id &Id : Seen)
    EXPECT_EQ(Id, Main);
}

TEST(ThreadPool, ParallelForJobsZeroItemsIsANoOp) {
  parallelForJobs(4, 0, [](size_t) { FAIL() << "body must not run"; });
}

TEST(ThreadPool, ParallelForJobsCoversAllIndices) {
  std::vector<std::atomic<int>> Hits(128);
  parallelForJobs(4, Hits.size(), [&Hits](size_t I) { ++Hits[I]; });
  for (size_t I = 0; I < Hits.size(); ++I)
    EXPECT_EQ(Hits[I].load(), 1);
}

//===----------------------------------------------------------------------===//
// Observability under concurrency
//===----------------------------------------------------------------------===//

TEST(ThreadPool, CountersAreExactUnderContention) {
  // A private registry per test keeps cases independent of the global one.
  Registry R;
  R.setEnabled(true);
  Counter &C = R.counter("contended");
  ThreadPool Pool(4);
  constexpr int PerTask = 10'000;
  Pool.parallelFor(8, [&C](size_t) {
    for (int I = 0; I < PerTask; ++I)
      C.inc();
  });
  EXPECT_EQ(C.value(), 8u * PerTask);
}

TEST(ThreadPool, GaugeAndHistogramSurviveConcurrentUpdates) {
  Registry R;
  R.setEnabled(true);
  ThreadPool Pool(4);
  Pool.parallelFor(8, [&R](size_t I) {
    R.gauge("g").set(static_cast<double>(I));
    for (int K = 0; K < 1000; ++K)
      R.histogram("h").record(static_cast<double>(K));
  });
  EXPECT_EQ(R.histogram("h").count(), 8u * 1000u);
}

TEST(ThreadPool, SpansUsePerThreadBuffersUnderConcurrency) {
  // Every worker opens and closes spans concurrently; the tracer's
  // per-thread buffers mean no span is lost or torn (the sampling cap is
  // per category, so stay under it).
  SpanTracer &T = SpanTracer::global();
  T.clear();
  T.setEnabled(true);
  ThreadPool Pool(4);
  Pool.parallelFor(16, [](size_t I) {
    Span S("pool.test.outer", "test");
    S.arg("index", static_cast<uint64_t>(I));
    { Span Inner("pool.test.inner", "test"); }
  });
  size_t Outer = 0, Inner = 0;
  for (const SpanEvent &E : T.snapshot()) {
    if (std::string_view(E.Name) == "pool.test.outer")
      ++Outer;
    else if (std::string_view(E.Name) == "pool.test.inner")
      ++Inner;
  }
  EXPECT_EQ(Outer, 16u);
  EXPECT_EQ(Inner, 16u);
  T.setEnabled(false);
  T.clear();
}
