//===- tests/test_joint.cpp - Joint loop machine tests --------------------===//
//
// Part of the bpcr project (Krall, PLDI 1994 reproduction).
//
// The paper's "Further Work" sec. 6: one machine for all branches of a
// loop, avoiding the multiplicative size blowup of per-branch replication.
//
//===----------------------------------------------------------------------===//

#include "core/JointMachine.h"
#include "core/LoopAwareProfiles.h"
#include "core/MachineSearch.h"
#include "interp/Interpreter.h"
#include "ir/IRBuilder.h"
#include "ir/Verifier.h"
#include "core/Pipeline.h"
#include "trace/Sinks.h"
#include "workloads/Workload.h"

#include <gtest/gtest.h>

using namespace bpcr;

namespace {

Operand R(Reg X) { return Operand::reg(X); }
Operand K(int64_t V) { return Operand::imm(V); }

/// A loop with TWO alternating branches: branch 1 alternates with i, branch
/// 2 with i+1 (anti-phase). Separate 2-state machines multiply to 2*2 = 4
/// loop copies; one joint machine over the shared alternation solves both
/// with epsilon plus the four one-symbol states, of which only 4 survive
/// reachability pruning.
Module twoAlternating(int64_t Iters) {
  Module M;
  M.MemWords = 8;
  uint32_t Main = M.addFunction("main", 0);
  IRBuilder B(M, Main);
  Reg I = B.newReg(), C = B.newReg(), A = B.newReg();
  uint32_t Entry = B.newBlock("entry");
  uint32_t Header = B.newBlock("header");
  uint32_t Body = B.newBlock("body");
  uint32_t P = B.newBlock("p");
  uint32_t Q = B.newBlock("q");
  uint32_t Mid = B.newBlock("mid");
  uint32_t X = B.newBlock("x");
  uint32_t Y = B.newBlock("y");
  uint32_t Latch = B.newBlock("latch");
  uint32_t Exit = B.newBlock("exit");
  B.setInsertPoint(Entry);
  B.movImm(I, 0);
  B.movImm(A, 0);
  B.jmp(Header);
  B.setInsertPoint(Header);
  B.cmpLt(C, R(I), K(Iters)); // id 0
  B.br(R(C), Body, Exit);
  B.setInsertPoint(Body);
  B.band(C, R(I), K(1));
  B.br(R(C), P, Q); // id 1: alternating
  B.setInsertPoint(P);
  B.add(A, R(A), K(1));
  B.jmp(Mid);
  B.setInsertPoint(Q);
  B.add(A, R(A), K(2));
  B.jmp(Mid);
  B.setInsertPoint(Mid);
  Reg C2 = B.newReg();
  B.add(C2, R(I), K(1));
  B.band(C2, R(C2), K(1));
  B.br(R(C2), X, Y); // id 2: anti-phase alternating
  B.setInsertPoint(X);
  B.add(A, R(A), K(4));
  B.jmp(Latch);
  B.setInsertPoint(Y);
  B.add(A, R(A), K(8));
  B.jmp(Latch);
  B.setInsertPoint(Latch);
  B.add(I, R(I), K(1));
  B.jmp(Header);
  B.setInsertPoint(Exit);
  B.store(K(0), K(0), R(A));
  B.ret(R(A));
  M.assignBranchIds();
  return M;
}

} // namespace

TEST(JointProfile, CollectsPerMemberCounts) {
  Module M = twoAlternating(100);
  CollectingSink Sink;
  ASSERT_TRUE(execute(M, &Sink).Ok);
  ProgramAnalysis PA(M);
  JointProfile P = profileJointLoop(PA, {1, 2}, Sink.trace(), 3);
  EXPECT_EQ(P.Executions, 200u);
  uint64_t Sum = 0;
  for (const auto &[Syms, PerMember] : P.PerPattern)
    for (const DirCounts &C : PerMember)
      Sum += C.total();
  EXPECT_EQ(Sum, 200u);
}

TEST(JointMachine, TwoStatesSolveBothAlternations) {
  Module M = twoAlternating(400);
  CollectingSink Sink;
  ASSERT_TRUE(execute(M, &Sink).Ok);
  ProgramAnalysis PA(M);
  JointProfile P = profileJointLoop(PA, {1, 2}, Sink.trace(), 2);

  JointOptions Opts;
  // The joint alphabet has four symbols (two members x two directions);
  // epsilon plus the four one-symbol states capture the anti-phase pair.
  Opts.MaxStates = 5;
  Opts.MaxLen = 1;
  JointLoopMachine JM = buildJointLoopMachine({1, 2}, P, Opts);
  EXPECT_LE(JM.numStates(), 5u);

  PredictionStats S = evaluateJointMachine(JM, PA, Sink.trace());
  EXPECT_EQ(S.Predictions, 800u);
  // The last joint decision determines the next outcome of either member;
  // only the first execution after loop entry is uncertain.
  EXPECT_LE(S.Mispredictions, 2u);
}

TEST(JointMachine, AssignmentScoreMatchesEvaluation) {
  Module M = twoAlternating(300);
  CollectingSink Sink;
  ASSERT_TRUE(execute(M, &Sink).Ok);
  ProgramAnalysis PA(M);
  JointProfile P = profileJointLoop(PA, {1, 2}, Sink.trace(), 3);
  JointOptions Opts;
  Opts.MaxStates = 4;
  Opts.MaxLen = 3;
  JointLoopMachine JM = buildJointLoopMachine({1, 2}, P, Opts);
  PredictionStats S = evaluateJointMachine(JM, PA, Sink.trace());
  EXPECT_EQ(S.Predictions, JM.Total);
  EXPECT_EQ(S.Mispredictions, JM.Total - JM.Correct);
}

TEST(JointMachine, TransitionsFollowLongestSuffix) {
  JointLoopMachine M;
  M.Members = {10, 20};
  // eps, "0T", "1N" (member 0 taken; member 1 not taken).
  M.States = {SymbolString{}, SymbolString{(0u << 1) | 1u},
              SymbolString{(1u << 1) | 0u}};
  M.Predictions = {{1, 1}, {1, 0}, {0, 1}};
  EXPECT_EQ(M.memberIndex(10), 0);
  EXPECT_EQ(M.memberIndex(20), 1);
  EXPECT_EQ(M.memberIndex(15), -1);
  unsigned S = M.initialState();
  S = M.next(S, 0, true); // "0T" is a state
  EXPECT_EQ(S, 1u);
  S = M.next(S, 1, true); // "1T" not a state -> eps
  EXPECT_EQ(S, 0u);
  S = M.next(S, 1, false); // "1N"
  EXPECT_EQ(S, 2u);
}

TEST(JointReplication, TwoStatesInsteadOfFour) {
  Module M = twoAlternating(400);
  CollectingSink Sink;
  ASSERT_TRUE(execute(M, &Sink).Ok);
  Trace T = Sink.takeTrace();
  ProgramAnalysis PA(M);

  JointProfile P = profileJointLoop(PA, {1, 2}, T, 2);
  JointOptions Opts;
  Opts.MaxStates = 5;
  Opts.MaxLen = 1;
  JointLoopMachine JM = buildJointLoopMachine({1, 2}, P, Opts);

  Module X = M;
  const BranchClass &C = PA.classOf(1);
  const Loop &L = PA.loopInfoFor(1).loops()[static_cast<size_t>(C.LoopIdx)];
  uint64_t LoopSize = 0;
  for (uint32_t Bl : L.Blocks)
    LoopSize += M.Functions[0].Blocks[Bl].Insts.size();

  ReplicationStats RS =
      applyJointLoopReplication(X.Functions[0], L.Blocks, L.Header, JM);
  ASSERT_TRUE(RS.Applied);
  X.assignBranchIds();
  ASSERT_TRUE(verifyModule(X).empty());

  // Joint replication: at most 5 loop copies reachable (4 extra loop
  // sizes); after pruning the steady-state cycle is 4 copies.
  EXPECT_LE(X.Functions[0].instructionCount(),
            M.Functions[0].instructionCount() + 4 * LoopSize);

  // Behaviour preserved.
  OrigIdCollectingSink SA, SB;
  ExecResult RA = execute(M, &SA);
  ExecResult RB = execute(X, &SB);
  ASSERT_TRUE(RA.Ok);
  ASSERT_TRUE(RB.Ok);
  EXPECT_EQ(RA.ReturnValue, RB.ReturnValue);
  EXPECT_EQ(SA.trace(), SB.trace());

  // Realized predictions: both alternating branches near-perfect.
  TraceStats Stats(3);
  Stats.addTrace(T);
  annotateProfilePredictions(X, Stats);
  PredictionStats Measured = measureAnnotatedPredictions(X, ExecOptions());
  // 1200 events total; the loop-exit branch mispredicts once; joint
  // members mispredict at most on the first iteration.
  EXPECT_LE(Measured.Mispredictions, 5u);

  // Per-branch sequential replication of the same two branches needs the
  // product of the machine sizes: replicate branch 1 (2 states), then
  // branch 2 on the transformed function (2 states each copy).
  Module Y = M;
  {
    ProfileSet Profiles = buildLoopAwareProfiles(PA, T);
    MachineOptions MO;
    MO.MaxStates = 2;
    SuffixMachine M1 = buildIntraLoopMachine(Profiles.branch(1).Table, MO);
    SuffixMachine M2 = buildIntraLoopMachine(Profiles.branch(2).Table, MO);
    applyLoopReplication(Y.Functions[0], L.Blocks, L.Header, 1, M1);
    // Recompute the merged loop for the second transform.
    CFG G(Y.Functions[0]);
    Dominators D(G);
    LoopInfo LI(G, D);
    // Find an instance of branch 2.
    uint32_t B2Block = UINT32_MAX;
    for (uint32_t BI = 0; BI < Y.Functions[0].Blocks.size(); ++BI) {
      const BasicBlock &BB = Y.Functions[0].Blocks[BI];
      if (BB.isComplete() && BB.terminator().isConditionalBranch() &&
          BB.terminator().OrigBranchId == 2)
        B2Block = BI;
    }
    ASSERT_NE(B2Block, UINT32_MAX);
    int32_t LI2 = LI.innermostLoop(B2Block);
    ASSERT_GE(LI2, 0);
    const Loop &L2 = LI.loops()[static_cast<size_t>(LI2)];
    applyLoopReplication(Y.Functions[0], L2.Blocks, L2.Header, 2, M2);
  }
  Y.assignBranchIds();
  ASSERT_TRUE(verifyModule(Y).empty());

  // The joint version must be at most as large (here: strictly smaller,
  // since the sequential one pays ~2x2 copies before pruning).
  EXPECT_LE(X.instructionCount(), Y.instructionCount());
}

TEST(JointPipeline, FiresWhenLoopBranchesShareAMachine) {
  // Force the ghostview dispatch branches onto loop machines (instead of
  // correlated ones): they share the interpreter loop, so the pipeline
  // should fuse them into one joint machine rather than pay the product.
  Module M;
  Trace T = traceWorkload(allWorkloads()[3], 1, M, 200'000);
  PipelineOptions Opts;
  Opts.Strategy.MaxStates = 4;
  Opts.Strategy.NodeBudget = 20'000;
  Opts.Strategy.CorrelatedForLoopBranches = false;
  Opts.MaxSizeFactor = 4.0;
  Opts.JointMaxStates = 8;
  PipelineResult PR = replicateModule(M, T, Opts);
  ASSERT_TRUE(verifyModule(PR.Transformed).empty());
  EXPECT_GE(PR.JointReplications, 1u);

  // Behaviour preserved.
  ExecOptions EO;
  EO.MaxBranchEvents = 200'000;
  OrigIdCollectingSink SA, SB;
  ExecResult RA = execute(M, &SA, EO);
  ExecResult RB = execute(PR.Transformed, &SB, EO);
  ASSERT_TRUE(RA.Ok);
  ASSERT_TRUE(RB.Ok);
  EXPECT_EQ(RA.Memory, RB.Memory);
  EXPECT_EQ(SA.trace(), SB.trace());

  // And the joint machine must not be worse than profile.
  TraceStats Stats(static_cast<uint32_t>(M.conditionalBranchCount()));
  Stats.addTrace(T);
  Module P = M;
  annotateProfilePredictions(P, Stats);
  PredictionStats Prof = measureAnnotatedPredictions(P, EO);
  PredictionStats Repl = measureAnnotatedPredictions(PR.Transformed, EO);
  EXPECT_LE(Repl.Mispredictions,
            Prof.Mispredictions + Prof.Predictions / 100);
}
