//===- tests/test_interp.cpp - Interpreter semantics ----------------------===//
//
// Part of the bpcr project (Krall, PLDI 1994 reproduction).
//
//===----------------------------------------------------------------------===//

#include "interp/Interpreter.h"
#include "ir/IRBuilder.h"
#include "support/Rng.h"
#include "trace/Sinks.h"

#include <gtest/gtest.h>

#include <limits>

using namespace bpcr;

namespace {

Operand R(Reg X) { return Operand::reg(X); }
Operand K(int64_t V) { return Operand::imm(V); }

/// main() { return a op b; }
Module binOp(Opcode Op, int64_t A, int64_t B) {
  Module M;
  M.MemWords = 1;
  uint32_t Main = M.addFunction("main", 0);
  IRBuilder Bu(M, Main);
  Reg X = Bu.newReg();
  uint32_t E = Bu.newBlock("entry");
  Bu.setInsertPoint(E);
  Instruction I;
  I.Op = Op;
  I.Dst = X;
  I.A = K(A);
  I.B = K(B);
  M.Functions[Main].Blocks[E].Insts.push_back(I);
  Bu.ret(R(X));
  return M;
}

int64_t evalBin(Opcode Op, int64_t A, int64_t B) {
  Module M = binOp(Op, A, B);
  ExecResult Res = execute(M);
  EXPECT_TRUE(Res.Ok) << Res.Error;
  return Res.ReturnValue;
}

} // namespace

// -- Arithmetic ----------------------------------------------------------------

TEST(Interp, Arithmetic) {
  EXPECT_EQ(evalBin(Opcode::Add, 2, 3), 5);
  EXPECT_EQ(evalBin(Opcode::Sub, 2, 3), -1);
  EXPECT_EQ(evalBin(Opcode::Mul, -4, 6), -24);
  EXPECT_EQ(evalBin(Opcode::Div, 7, 2), 3);
  EXPECT_EQ(evalBin(Opcode::Div, -7, 2), -3);
  EXPECT_EQ(evalBin(Opcode::Rem, 7, 3), 1);
  EXPECT_EQ(evalBin(Opcode::And, 0b1100, 0b1010), 0b1000);
  EXPECT_EQ(evalBin(Opcode::Or, 0b1100, 0b1010), 0b1110);
  EXPECT_EQ(evalBin(Opcode::Xor, 0b1100, 0b1010), 0b0110);
  EXPECT_EQ(evalBin(Opcode::Shl, 1, 10), 1024);
  EXPECT_EQ(evalBin(Opcode::Shr, -8, 1), -4); // arithmetic shift
}

TEST(Interp, DivisionEdgeCasesAreDefined) {
  EXPECT_EQ(evalBin(Opcode::Div, 5, 0), 0);
  EXPECT_EQ(evalBin(Opcode::Rem, 5, 0), 0);
  int64_t Min = std::numeric_limits<int64_t>::min();
  EXPECT_EQ(evalBin(Opcode::Div, Min, -1), Min);
  EXPECT_EQ(evalBin(Opcode::Rem, Min, -1), 0);
}

TEST(Interp, Comparisons) {
  EXPECT_EQ(evalBin(Opcode::CmpEq, 3, 3), 1);
  EXPECT_EQ(evalBin(Opcode::CmpEq, 3, 4), 0);
  EXPECT_EQ(evalBin(Opcode::CmpNe, 3, 4), 1);
  EXPECT_EQ(evalBin(Opcode::CmpLt, -1, 0), 1);
  EXPECT_EQ(evalBin(Opcode::CmpLe, 0, 0), 1);
  EXPECT_EQ(evalBin(Opcode::CmpGt, 1, 0), 1);
  EXPECT_EQ(evalBin(Opcode::CmpGe, -1, 0), 0);
}

// -- Memory ----------------------------------------------------------------------

TEST(Interp, LoadStoreRoundTrip) {
  Module M;
  M.MemWords = 8;
  uint32_t Main = M.addFunction("main", 0);
  IRBuilder B(M, Main);
  Reg X = B.newReg();
  uint32_t E = B.newBlock("entry");
  B.setInsertPoint(E);
  B.store(K(2), K(1), K(77)); // mem[3] = 77
  B.load(X, K(0), K(3));
  B.ret(R(X));
  ExecResult Res = execute(M);
  ASSERT_TRUE(Res.Ok) << Res.Error;
  EXPECT_EQ(Res.ReturnValue, 77);
  EXPECT_EQ(Res.Memory[3], 77);
}

TEST(Interp, InitialMemoryIsLoaded) {
  Module M;
  M.MemWords = 4;
  M.InitialMemory = {10, 20, 30};
  uint32_t Main = M.addFunction("main", 0);
  IRBuilder B(M, Main);
  Reg X = B.newReg();
  uint32_t E = B.newBlock("entry");
  B.setInsertPoint(E);
  B.load(X, K(1), K(0));
  B.ret(R(X));
  ExecResult Res = execute(M);
  ASSERT_TRUE(Res.Ok);
  EXPECT_EQ(Res.ReturnValue, 20);
  EXPECT_EQ(Res.Memory[3], 0); // tail is zero-filled
}

TEST(Interp, OutOfBoundsLoadFails) {
  Module M;
  M.MemWords = 4;
  uint32_t Main = M.addFunction("main", 0);
  IRBuilder B(M, Main);
  Reg X = B.newReg();
  uint32_t E = B.newBlock("entry");
  B.setInsertPoint(E);
  B.load(X, K(100), K(0));
  B.ret(R(X));
  ExecResult Res = execute(M);
  EXPECT_FALSE(Res.Ok);
  EXPECT_NE(Res.Error.find("load"), std::string::npos);
}

TEST(Interp, NegativeStoreAddressFails) {
  Module M;
  M.MemWords = 4;
  uint32_t Main = M.addFunction("main", 0);
  IRBuilder B(M, Main);
  uint32_t E = B.newBlock("entry");
  B.setInsertPoint(E);
  B.store(K(-1), K(0), K(5));
  B.ret(K(0));
  ExecResult Res = execute(M);
  EXPECT_FALSE(Res.Ok);
}

// -- Control flow -------------------------------------------------------------------

TEST(Interp, LoopCountsAndEmitsBranchEvents) {
  Module M;
  M.MemWords = 1;
  uint32_t Main = M.addFunction("main", 0);
  IRBuilder B(M, Main);
  Reg X = B.newReg(), C = B.newReg();
  uint32_t Entry = B.newBlock("entry");
  uint32_t Loop = B.newBlock("loop");
  uint32_t Exit = B.newBlock("exit");
  B.setInsertPoint(Entry);
  B.movImm(X, 0);
  B.jmp(Loop);
  B.setInsertPoint(Loop);
  B.add(X, R(X), K(1));
  B.cmpLt(C, R(X), K(5));
  B.br(R(C), Loop, Exit);
  B.setInsertPoint(Exit);
  B.ret(R(X));
  M.assignBranchIds();

  CollectingSink Sink;
  ExecResult Res = execute(M, &Sink);
  ASSERT_TRUE(Res.Ok);
  EXPECT_EQ(Res.ReturnValue, 5);
  ASSERT_EQ(Sink.trace().size(), 5u);
  for (int I = 0; I < 4; ++I)
    EXPECT_TRUE(Sink.trace()[I].Taken);
  EXPECT_FALSE(Sink.trace()[4].Taken);
  EXPECT_EQ(Res.BranchEvents, 5u);
}

TEST(Interp, BranchLimitStopsGracefully) {
  Module M;
  M.MemWords = 1;
  uint32_t Main = M.addFunction("main", 0);
  IRBuilder B(M, Main);
  Reg C = B.newReg();
  uint32_t Entry = B.newBlock("entry");
  uint32_t Loop = B.newBlock("loop");
  uint32_t Exit = B.newBlock("exit");
  B.setInsertPoint(Entry);
  B.movImm(C, 1);
  B.jmp(Loop);
  B.setInsertPoint(Loop);
  B.br(R(C), Loop, Exit); // infinite
  B.setInsertPoint(Exit);
  B.ret(K(0));
  M.assignBranchIds();

  ExecOptions Opts;
  Opts.MaxBranchEvents = 100;
  ExecResult Res = execute(M, nullptr, Opts);
  EXPECT_TRUE(Res.Ok);
  EXPECT_TRUE(Res.HitBranchLimit);
  EXPECT_EQ(Res.BranchEvents, 100u);
}

TEST(Interp, FuelExhaustionIsAnError) {
  Module M;
  M.MemWords = 1;
  uint32_t Main = M.addFunction("main", 0);
  IRBuilder B(M, Main);
  uint32_t Entry = B.newBlock("entry");
  uint32_t Loop = B.newBlock("loop");
  B.setInsertPoint(Entry);
  B.jmp(Loop);
  B.setInsertPoint(Loop);
  B.jmp(Loop); // no branches, so only the fuel stops it
  ExecOptions Opts;
  Opts.MaxInstructions = 1000;
  ExecResult Res = execute(M, nullptr, Opts);
  EXPECT_FALSE(Res.Ok);
  EXPECT_NE(Res.Error.find("budget"), std::string::npos);
}

// -- Calls ------------------------------------------------------------------------

TEST(Interp, CallPassesArgsAndReturns) {
  Module M;
  M.MemWords = 1;
  uint32_t Add = M.addFunction("add2", 2);
  {
    IRBuilder B(M, Add);
    Reg S = B.newReg();
    uint32_t E = B.newBlock("entry");
    B.setInsertPoint(E);
    B.add(S, R(0), R(1));
    B.ret(R(S));
  }
  uint32_t Main = M.addFunction("main", 0);
  M.EntryFunction = Main;
  {
    IRBuilder B(M, Main);
    Reg V = B.newReg();
    uint32_t E = B.newBlock("entry");
    B.setInsertPoint(E);
    B.call(V, Add, {K(30), K(12)});
    B.ret(R(V));
  }
  ExecResult Res = execute(M);
  ASSERT_TRUE(Res.Ok) << Res.Error;
  EXPECT_EQ(Res.ReturnValue, 42);
}

TEST(Interp, RecursionComputesFactorial) {
  Module M;
  M.MemWords = 1;
  uint32_t Fact = M.addFunction("fact", 1);
  {
    IRBuilder B(M, Fact);
    Reg C = B.newReg(), Sub = B.newReg(), V = B.newReg();
    uint32_t E = B.newBlock("entry");
    uint32_t Base = B.newBlock("base");
    uint32_t Rec = B.newBlock("rec");
    B.setInsertPoint(E);
    B.cmpLe(C, R(0), K(1));
    B.br(R(C), Base, Rec);
    B.setInsertPoint(Base);
    B.ret(K(1));
    B.setInsertPoint(Rec);
    B.sub(Sub, R(0), K(1));
    B.call(V, Fact, {R(Sub)});
    B.mul(V, R(V), R(0));
    B.ret(R(V));
  }
  uint32_t Main = M.addFunction("main", 0);
  M.EntryFunction = Main;
  {
    IRBuilder B(M, Main);
    Reg V = B.newReg();
    uint32_t E = B.newBlock("entry");
    B.setInsertPoint(E);
    B.call(V, Fact, {K(10)});
    B.ret(R(V));
  }
  M.assignBranchIds();
  ExecResult Res = execute(M);
  ASSERT_TRUE(Res.Ok) << Res.Error;
  EXPECT_EQ(Res.ReturnValue, 3628800);
}

TEST(Interp, CallDepthLimit) {
  Module M;
  M.MemWords = 1;
  uint32_t F = M.addFunction("inf", 0);
  {
    IRBuilder B(M, F);
    Reg V = B.newReg();
    uint32_t E = B.newBlock("entry");
    B.setInsertPoint(E);
    B.call(V, F, {});
    B.ret(R(V));
  }
  M.EntryFunction = F;
  ExecOptions Opts;
  Opts.MaxCallDepth = 50;
  ExecResult Res = execute(M, nullptr, Opts);
  EXPECT_FALSE(Res.Ok);
  EXPECT_NE(Res.Error.find("depth"), std::string::npos);
}

TEST(Interp, EntryArgsReachMain) {
  Module M;
  M.MemWords = 1;
  uint32_t Main = M.addFunction("main", 2);
  IRBuilder B(M, Main);
  Reg S = B.newReg();
  uint32_t E = B.newBlock("entry");
  B.setInsertPoint(E);
  B.sub(S, R(0), R(1));
  B.ret(R(S));
  ExecOptions Opts;
  Opts.EntryArgs = {50, 8};
  ExecResult Res = execute(M, nullptr, Opts);
  ASSERT_TRUE(Res.Ok);
  EXPECT_EQ(Res.ReturnValue, 42);
}

TEST(Interp, SinkSeesAnnotations) {
  Module M;
  M.MemWords = 1;
  uint32_t Main = M.addFunction("main", 0);
  IRBuilder B(M, Main);
  Reg C = B.newReg();
  uint32_t Entry = B.newBlock("entry");
  uint32_t A = B.newBlock("a");
  B.setInsertPoint(Entry);
  B.movImm(C, 1);
  B.br(R(C), A, A);
  B.setInsertPoint(A);
  B.ret(K(0));
  M.assignBranchIds();
  M.Functions[Main].Blocks[Entry].terminator().Predicted = Prediction::Taken;

  struct CheckSink : TraceSink {
    void onBranch(const Instruction &Br, bool Taken) override {
      SawPrediction = Br.Predicted == Prediction::Taken;
      SawTaken = Taken;
      SawId = Br.BranchId;
    }
    bool SawPrediction = false, SawTaken = false;
    int32_t SawId = -1;
  } Sink;
  ASSERT_TRUE(execute(M, &Sink).Ok);
  EXPECT_TRUE(Sink.SawPrediction);
  EXPECT_TRUE(Sink.SawTaken);
  EXPECT_EQ(Sink.SawId, 0);
}

// -- Differential fuzz --------------------------------------------------------

namespace {

/// Host-side reference for the IR's arithmetic semantics.
int64_t refOp(Opcode Op, int64_t A, int64_t B) {
  uint64_t UA = static_cast<uint64_t>(A), UB = static_cast<uint64_t>(B);
  switch (Op) {
  case Opcode::Add:
    return static_cast<int64_t>(UA + UB);
  case Opcode::Sub:
    return static_cast<int64_t>(UA - UB);
  case Opcode::Mul:
    return static_cast<int64_t>(UA * UB);
  case Opcode::Div:
    if (B == 0)
      return 0;
    if (A == std::numeric_limits<int64_t>::min() && B == -1)
      return A;
    return A / B;
  case Opcode::Rem:
    if (B == 0)
      return 0;
    if (A == std::numeric_limits<int64_t>::min() && B == -1)
      return 0;
    return A % B;
  case Opcode::And:
    return A & B;
  case Opcode::Or:
    return A | B;
  case Opcode::Xor:
    return A ^ B;
  case Opcode::Shl:
    return static_cast<int64_t>(UA << (UB & 63));
  case Opcode::Shr:
    return A >> (UB & 63);
  case Opcode::CmpEq:
    return A == B;
  case Opcode::CmpNe:
    return A != B;
  case Opcode::CmpLt:
    return A < B;
  case Opcode::CmpLe:
    return A <= B;
  case Opcode::CmpGt:
    return A > B;
  case Opcode::CmpGe:
    return A >= B;
  default:
    return 0;
  }
}

} // namespace

class InterpFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(InterpFuzz, RandomStraightLineProgramsMatchHostSemantics) {
  // Generate a straight-line program over a small register file, evaluate
  // it both on the host and in the interpreter, compare every register.
  Rng G(GetParam() * 77 + 5);
  static const Opcode Ops[] = {
      Opcode::Add,   Opcode::Sub,   Opcode::Mul,   Opcode::Div,
      Opcode::Rem,   Opcode::And,   Opcode::Or,    Opcode::Xor,
      Opcode::Shl,   Opcode::Shr,   Opcode::CmpEq, Opcode::CmpNe,
      Opcode::CmpLt, Opcode::CmpLe, Opcode::CmpGt, Opcode::CmpGe,
  };

  constexpr int NumRegs = 6;
  int64_t Ref[NumRegs] = {0};

  Module M;
  M.MemWords = NumRegs + 1;
  uint32_t Main = M.addFunction("main", 0);
  IRBuilder B(M, Main);
  for (int I = 0; I < NumRegs; ++I)
    (void)B.newReg();
  uint32_t Entry = B.newBlock("entry");
  B.setInsertPoint(Entry);

  // Seed the registers with interesting constants.
  for (int I = 0; I < NumRegs; ++I) {
    int64_t V;
    switch (G.below(5)) {
    case 0:
      V = static_cast<int64_t>(G.next());
      break;
    case 1:
      V = std::numeric_limits<int64_t>::min();
      break;
    case 2:
      V = std::numeric_limits<int64_t>::max();
      break;
    case 3:
      V = -1;
      break;
    default:
      V = static_cast<int64_t>(G.below(100)) - 50;
      break;
    }
    B.movImm(static_cast<Reg>(I), V);
    Ref[I] = V;
  }

  for (int Step = 0; Step < 200; ++Step) {
    Opcode Op = Ops[G.below(std::size(Ops))];
    Reg Dst = static_cast<Reg>(G.below(NumRegs));
    Reg A = static_cast<Reg>(G.below(NumRegs));
    Reg Bx = static_cast<Reg>(G.below(NumRegs));
    Instruction I;
    I.Op = Op;
    I.Dst = Dst;
    I.A = Operand::reg(A);
    I.B = Operand::reg(Bx);
    M.Functions[Main].Blocks[Entry].Insts.push_back(I);
    Ref[Dst] = refOp(Op, Ref[A], Ref[Bx]);
  }

  // Store every register to memory and return.
  for (int I = 0; I < NumRegs; ++I)
    B.store(Operand::imm(I), Operand::imm(0),
            Operand::reg(static_cast<Reg>(I)));
  B.ret(Operand::reg(0));

  ExecResult R = execute(M);
  ASSERT_TRUE(R.Ok) << R.Error;
  for (int I = 0; I < NumRegs; ++I)
    EXPECT_EQ(R.Memory[static_cast<size_t>(I)], Ref[I]) << "reg " << I;
}

INSTANTIATE_TEST_SUITE_P(Seeds, InterpFuzz,
                         ::testing::Range<uint64_t>(0, 16));
