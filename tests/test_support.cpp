//===- tests/test_support.cpp - Support library tests ---------------------===//
//
// Part of the bpcr project (Krall, PLDI 1994 reproduction).
//
//===----------------------------------------------------------------------===//

#include "support/BitHistory.h"
#include "support/Csv.h"
#include "support/Rng.h"
#include "support/SaturatingCounter.h"
#include "support/Statistics.h"
#include "support/TablePrinter.h"

#include <gtest/gtest.h>

using namespace bpcr;

// -- BitHistory --------------------------------------------------------------

TEST(BitHistory, NewestOutcomeIsBitZero) {
  BitHistory H(4);
  H.push(true);
  EXPECT_EQ(H.value(), 0b1u);
  H.push(false);
  EXPECT_EQ(H.value(), 0b10u);
  H.push(true);
  EXPECT_EQ(H.value(), 0b101u);
}

TEST(BitHistory, OldOutcomesShiftOut) {
  BitHistory H(3);
  for (bool B : {true, true, true, false, false, false})
    H.push(B);
  EXPECT_EQ(H.value(), 0u);
  H.push(true);
  EXPECT_EQ(H.value(), 0b001u);
}

TEST(BitHistory, WarmupTracksWidth) {
  BitHistory H(5);
  EXPECT_FALSE(H.isWarm());
  for (int I = 0; I < 4; ++I) {
    H.push(true);
    EXPECT_FALSE(H.isWarm());
  }
  H.push(false);
  EXPECT_TRUE(H.isWarm());
  EXPECT_EQ(H.filled(), 5u);
}

TEST(BitHistory, LowBitsExtractsRecentSuffix) {
  BitHistory H(8);
  for (bool B : {true, false, true, true})
    H.push(B);
  EXPECT_EQ(H.lowBits(2), 0b11u);
  EXPECT_EQ(H.lowBits(3), 0b011u);
  EXPECT_EQ(H.lowBits(4), 0b1011u);
}

TEST(BitHistory, ClearResets) {
  BitHistory H(3);
  H.push(true);
  H.push(true);
  H.clear();
  EXPECT_EQ(H.value(), 0u);
  EXPECT_EQ(H.filled(), 0u);
}

TEST(BitHistory, MaxWidthValueMasksCorrectly) {
  BitHistory H(BitHistory::MaxWidth);
  for (unsigned I = 0; I < 40; ++I)
    H.push(true);
  EXPECT_EQ(H.value(), (1u << BitHistory::MaxWidth) - 1);
}

// -- SaturatingCounter ---------------------------------------------------------

TEST(SaturatingCounter, TwoBitSaturatesHigh) {
  SaturatingCounter C(2);
  for (int I = 0; I < 10; ++I)
    C.update(true);
  EXPECT_EQ(C.value(), 3u);
  EXPECT_TRUE(C.predictTaken());
}

TEST(SaturatingCounter, TwoBitSaturatesLow) {
  SaturatingCounter C(2);
  for (int I = 0; I < 10; ++I)
    C.update(false);
  EXPECT_EQ(C.value(), 0u);
  EXPECT_FALSE(C.predictTaken());
}

TEST(SaturatingCounter, DefaultStartsWeaklyNotTaken) {
  SaturatingCounter C(2);
  EXPECT_EQ(C.value(), 1u);
  EXPECT_FALSE(C.predictTaken());
  C.update(true);
  EXPECT_TRUE(C.predictTaken());
}

TEST(SaturatingCounter, HysteresisAbsorbsOneAnomaly) {
  SaturatingCounter C(2, 3);
  C.update(false); // one not-taken outcome
  EXPECT_TRUE(C.predictTaken());
  C.update(false); // the second flips the prediction
  EXPECT_FALSE(C.predictTaken());
}

TEST(SaturatingCounter, OneBitFlipsImmediately) {
  SaturatingCounter C(1, 1);
  EXPECT_TRUE(C.predictTaken());
  C.update(false);
  EXPECT_FALSE(C.predictTaken());
  C.update(true);
  EXPECT_TRUE(C.predictTaken());
}

// Parameterized sweep: after saturating taken, exactly
// ceil(range/2) not-taken updates flip the prediction.
class CounterWidthTest : public ::testing::TestWithParam<unsigned> {};

TEST_P(CounterWidthTest, FlipDistanceIsHalfRange) {
  unsigned Bits = GetParam();
  SaturatingCounter C(Bits);
  for (unsigned I = 0; I < (2u << Bits); ++I)
    C.update(true);
  ASSERT_TRUE(C.predictTaken());
  unsigned Flips = 0;
  while (C.predictTaken()) {
    C.update(false);
    ++Flips;
  }
  // From max to the first value in the lower half.
  EXPECT_EQ(Flips, (1u << (Bits - 1)) + 1u - 1u);
}

INSTANTIATE_TEST_SUITE_P(Widths, CounterWidthTest,
                         ::testing::Values(1u, 2u, 3u, 4u, 6u, 8u));

// -- Rng -----------------------------------------------------------------------

TEST(Rng, DeterministicPerSeed) {
  Rng A(42), B(42);
  for (int I = 0; I < 100; ++I)
    EXPECT_EQ(A.next(), B.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng A(1), B(2);
  int Same = 0;
  for (int I = 0; I < 100; ++I)
    Same += (A.next() == B.next());
  EXPECT_EQ(Same, 0);
}

TEST(Rng, BelowStaysInRange) {
  Rng G(7);
  for (int I = 0; I < 1000; ++I)
    EXPECT_LT(G.below(17), 17u);
}

TEST(Rng, RangeIsInclusive) {
  Rng G(9);
  bool SawLo = false, SawHi = false;
  for (int I = 0; I < 2000; ++I) {
    int64_t V = G.range(-3, 3);
    EXPECT_GE(V, -3);
    EXPECT_LE(V, 3);
    SawLo |= (V == -3);
    SawHi |= (V == 3);
  }
  EXPECT_TRUE(SawLo);
  EXPECT_TRUE(SawHi);
}

TEST(Rng, UnitInHalfOpenInterval) {
  Rng G(11);
  for (int I = 0; I < 1000; ++I) {
    double U = G.unit();
    EXPECT_GE(U, 0.0);
    EXPECT_LT(U, 1.0);
  }
}

TEST(Rng, ChanceRoughlyCalibrated) {
  Rng G(13);
  int Hits = 0;
  for (int I = 0; I < 10000; ++I)
    Hits += G.chance(30, 100);
  EXPECT_NEAR(Hits, 3000, 200);
}

// -- Statistics ------------------------------------------------------------------

TEST(PredictionStats, RateComputation) {
  PredictionStats S;
  for (int I = 0; I < 90; ++I)
    S.record(true);
  for (int I = 0; I < 10; ++I)
    S.record(false);
  EXPECT_EQ(S.Predictions, 100u);
  EXPECT_EQ(S.Mispredictions, 10u);
  EXPECT_DOUBLE_EQ(S.mispredictionPercent(), 10.0);
  EXPECT_EQ(S.correct(), 90u);
}

TEST(PredictionStats, EmptyIsZero) {
  PredictionStats S;
  EXPECT_DOUBLE_EQ(S.mispredictionPercent(), 0.0);
}

TEST(PredictionStats, Merging) {
  PredictionStats A, B;
  A.record(true);
  A.record(false);
  B.record(false);
  A += B;
  EXPECT_EQ(A.Predictions, 3u);
  EXPECT_EQ(A.Mispredictions, 2u);
}

TEST(FormatPercent, OneDecimal) {
  EXPECT_EQ(formatPercent(12.345), "12.3");
  EXPECT_EQ(formatPercent(0.0), "0.0");
  EXPECT_EQ(formatPercent(99.96), "100.0");
}

// -- TablePrinter ------------------------------------------------------------------

TEST(TablePrinter, RendersAlignedColumns) {
  TablePrinter T("Demo");
  T.setHeader({"strategy", "a", "bb"});
  T.addRow({"profile", "1.0", "22.5"});
  T.addRow({"two level", "3.25", "4"});
  std::string Out = T.render();
  EXPECT_NE(Out.find("Demo"), std::string::npos);
  EXPECT_NE(Out.find("profile"), std::string::npos);
  EXPECT_NE(Out.find("22.5"), std::string::npos);
  // Numeric cells right-aligned: "4" is padded to the width of "22.5".
  EXPECT_NE(Out.find("   4"), std::string::npos);
}

TEST(TablePrinter, SeparatorProducesRule) {
  TablePrinter T("S");
  T.setHeader({"x", "y"});
  T.addRow({"a", "1"});
  T.addSeparator();
  T.addRow({"b", "2"});
  std::string Out = T.render();
  // Header rule plus the explicit separator.
  size_t First = Out.find("---");
  ASSERT_NE(First, std::string::npos);
  EXPECT_NE(Out.find("---", First + 3), std::string::npos);
}

TEST(TablePrinter, RenderCsvQuotesAndDropsSeparators) {
  TablePrinter T("Ignored title");
  T.setHeader({"branch", "note"});
  T.addRow({"1", "plain"});
  T.addSeparator();
  T.addRow({"2", "has,comma"});
  T.addRow({"3", "has\"quote"});
  std::string Out = T.renderCsv();
  // Header first, no title, no separator rows, RFC-4180 quoting.
  EXPECT_EQ(Out.find("branch,note"), 0u);
  EXPECT_EQ(Out.find("Ignored title"), std::string::npos);
  EXPECT_EQ(Out.find("---"), std::string::npos);
  EXPECT_NE(Out.find("2,\"has,comma\""), std::string::npos) << Out;
  EXPECT_NE(Out.find("3,\"has\"\"quote\""), std::string::npos) << Out;
}

// -- Csv -----------------------------------------------------------------------

TEST(Csv, PlainCells) {
  CsvWriter W;
  W.addRow({"a", "b", "c"});
  W.addRow({"1", "2", "3"});
  EXPECT_EQ(W.str(), "a,b,c\n1,2,3\n");
}

TEST(Csv, QuotesSpecialCharacters) {
  CsvWriter W;
  W.addRow({"plain", "with,comma", "with\"quote"});
  EXPECT_EQ(W.str(), "plain,\"with,comma\",\"with\"\"quote\"\n");
}

TEST(Csv, WriteFileRoundTrip) {
  CsvWriter W;
  W.addRow({"x", "y"});
  std::string Path = ::testing::TempDir() + "/bpcr_csv_test.csv";
  ASSERT_TRUE(W.writeFile(Path));
  std::FILE *F = std::fopen(Path.c_str(), "r");
  ASSERT_NE(F, nullptr);
  char Buf[64] = {0};
  size_t N = std::fread(Buf, 1, sizeof(Buf) - 1, F);
  std::fclose(F);
  EXPECT_EQ(std::string(Buf, N), "x,y\n");
}
