//===- tests/test_workloads.cpp - Synthetic benchmark suite tests ---------===//
//
// Part of the bpcr project (Krall, PLDI 1994 reproduction).
//
//===----------------------------------------------------------------------===//

#include "interp/Interpreter.h"
#include "ir/Verifier.h"
#include "trace/Sinks.h"
#include "trace/TraceStats.h"
#include "workloads/Workload.h"

#include <gtest/gtest.h>

using namespace bpcr;

TEST(WorkloadSuite, HasTheEightPaperBenchmarks) {
  const auto &Suite = allWorkloads();
  ASSERT_EQ(Suite.size(), 8u);
  EXPECT_STREQ(Suite[0].Name, "abalone");
  EXPECT_STREQ(Suite[1].Name, "c-compiler");
  EXPECT_STREQ(Suite[2].Name, "compress");
  EXPECT_STREQ(Suite[3].Name, "ghostview");
  EXPECT_STREQ(Suite[4].Name, "predict");
  EXPECT_STREQ(Suite[5].Name, "prolog");
  EXPECT_STREQ(Suite[6].Name, "scheduler");
  EXPECT_STREQ(Suite[7].Name, "doduc");
}

TEST(WorkloadSuite, BuildByName) {
  Module M = buildWorkload("compress", 3);
  EXPECT_EQ(M.Name, "compress");
  EXPECT_TRUE(verifyModule(M).empty());
}

class WorkloadTest : public ::testing::TestWithParam<size_t> {};

TEST_P(WorkloadTest, VerifiesAndExecutes) {
  const Workload &W = allWorkloads()[GetParam()];
  Module M = W.Build(1);
  ASSERT_TRUE(verifyModule(M).empty()) << W.Name;
  ExecOptions Opts;
  Opts.MaxBranchEvents = 50'000;
  ExecResult R = execute(M, nullptr, Opts);
  EXPECT_TRUE(R.Ok) << W.Name << ": " << R.Error;
}

TEST_P(WorkloadTest, ProducesSubstantialTraces) {
  const Workload &W = allWorkloads()[GetParam()];
  Module M;
  Trace T = traceWorkload(W, 1, M, 1'000'000);
  // Every benchmark must exercise prediction meaningfully.
  EXPECT_GE(T.size(), 50'000u) << W.Name;
  TraceStats S(static_cast<uint32_t>(M.conditionalBranchCount()));
  S.addTrace(T);
  EXPECT_GE(S.executedBranches(), 5u) << W.Name;
}

TEST_P(WorkloadTest, DeterministicPerSeed) {
  const Workload &W = allWorkloads()[GetParam()];
  Module M1, M2;
  Trace T1 = traceWorkload(W, 7, M1, 20'000);
  Trace T2 = traceWorkload(W, 7, M2, 20'000);
  EXPECT_EQ(T1, T2) << W.Name;
  EXPECT_EQ(M1.InitialMemory, M2.InitialMemory);
}

TEST_P(WorkloadTest, DifferentSeedsGiveDifferentBehaviour) {
  const Workload &W = allWorkloads()[GetParam()];
  Module M1, M2;
  Trace T1 = traceWorkload(W, 1, M1, 20'000);
  Trace T2 = traceWorkload(W, 2, M2, 20'000);
  EXPECT_NE(T1, T2) << W.Name;
}

TEST_P(WorkloadTest, NoBranchIsCompletelyDead) {
  const Workload &W = allWorkloads()[GetParam()];
  Module M;
  Trace T = traceWorkload(W, 1, M, 500'000);
  TraceStats S(static_cast<uint32_t>(M.conditionalBranchCount()));
  S.addTrace(T);
  // The suite is hand-built: every static branch should execute (no dead
  // scaffolding inflating the static counts).
  EXPECT_EQ(S.executedBranches(), M.conditionalBranchCount()) << W.Name;
}

INSTANTIATE_TEST_SUITE_P(All, WorkloadTest, ::testing::Range<size_t>(0, 8));

TEST(WorkloadCharacter, DoducIsHighlyPredictable) {
  // The paper's lone FP benchmark has the lowest misprediction rates.
  Module M;
  Trace T = traceWorkload(allWorkloads()[7], 1, M, 1'000'000);
  TraceStats S(static_cast<uint32_t>(M.conditionalBranchCount()));
  S.addTrace(T);
  uint64_t Miss = 0;
  for (uint32_t I = 0; I < S.numBranches(); ++I)
    Miss += S.branch(static_cast<int32_t>(I)).profileMispredictions();
  double Rate = 100.0 * static_cast<double>(Miss) /
                static_cast<double>(S.totalExecutions());
  EXPECT_LT(Rate, 3.0);
}

TEST(WorkloadCharacter, SearchWorkloadsAreHarderThanDoduc) {
  auto ProfileRate = [](size_t Idx) {
    Module M;
    Trace T = traceWorkload(allWorkloads()[Idx], 1, M, 400'000);
    TraceStats S(static_cast<uint32_t>(M.conditionalBranchCount()));
    S.addTrace(T);
    uint64_t Miss = 0;
    for (uint32_t I = 0; I < S.numBranches(); ++I)
      Miss += S.branch(static_cast<int32_t>(I)).profileMispredictions();
    return 100.0 * static_cast<double>(Miss) /
           static_cast<double>(S.totalExecutions());
  };
  double Abalone = ProfileRate(0);
  double Prolog = ProfileRate(5);
  double Doduc = ProfileRate(7);
  EXPECT_GT(Abalone, Doduc);
  EXPECT_GT(Prolog, Doduc);
  EXPECT_GT(Abalone, 5.0); // integer search codes are genuinely hard
}
