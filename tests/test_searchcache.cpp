//===- tests/test_searchcache.cpp -----------------------------------------===//
//
// Part of the bpcr project (Krall, PLDI 1994 reproduction).
//
//===----------------------------------------------------------------------===//
//
// Ladder memoization contracts: the downward-fill ladders must reproduce
// the per-budget direct searches exactly whenever those searches are
// exact, every rung must be populated even when the node budget runs out,
// and the process-wide cache must return identical results (and
// deterministic hit/miss statistics) for any worker count.
//
//===----------------------------------------------------------------------===//

#include "core/LoopAwareProfiles.h"
#include "core/ProgramAnalysis.h"
#include "core/SearchCache.h"
#include "core/SizeSweep.h"
#include "core/StrategySelection.h"
#include "workloads/Workload.h"

#include <gtest/gtest.h>

#include <string_view>
#include <vector>

using namespace bpcr;

namespace {

/// A pattern table with a biased periodic structure: enough distinct
/// patterns to make the search non-trivial, few enough to stay exact.
PatternTable makeTable(unsigned MaxBits = 9, int Streams = 3) {
  PatternTable T(MaxBits);
  for (int S = 0; S < Streams; ++S) {
    T.resetHistory();
    for (int I = 0; I < 400; ++I) {
      // Period-3 pattern with a seeded disturbance per stream.
      bool Taken = (I % 3 != 0) ^ ((I + S) % 17 == 0);
      T.record(Taken);
    }
  }
  return T;
}

PathProfile makeProfile() {
  PathProfile P;
  P.PerPath.push_back({{0, 2}, {120, 4}});
  P.PerPath.push_back({{0, 3}, {7, 90}});
  P.PerPath.push_back({{1, 2}, {40, 40}});
  P.PerPath.push_back({{1, 2, 4}, {33, 2}});
  P.Unmatched = {55, 60};
  return P;
}

} // namespace

TEST(SearchLadders, IntraLoopLadderMatchesDirectSearchWhenExact) {
  PatternTable T = makeTable();
  MachineOptions Opts;
  Opts.MaxStates = 6;
  Opts.NodeBudget = 5'000'000; // generous: every search stays exact
  IntraLoopLadder L = buildIntraLoopLadder(T, Opts, /*MinBudget=*/2);
  for (unsigned N = 2; N <= Opts.MaxStates; ++N) {
    MachineOptions Direct = Opts;
    Direct.MaxStates = N;
    bool Exhausted = true;
    SuffixMachine M = buildIntraLoopMachine(T, Direct, &Exhausted);
    ASSERT_FALSE(Exhausted) << "test table too hard for the node budget";
    EXPECT_EQ(L.at(N).Correct, M.Correct) << "budget " << N;
    EXPECT_EQ(L.at(N).states(), M.states()) << "budget " << N;
  }
}

TEST(SearchLadders, ExitLadderMatchesDirectFits) {
  PatternTable T = makeTable(9, 2);
  for (bool StayOnTaken : {false, true}) {
    ExitLadder L = buildExitLadder(T, 6, StayOnTaken);
    for (unsigned N = 2; N <= 6; ++N) {
      ExitChainMachine M = buildExitMachine(T, N, StayOnTaken);
      EXPECT_EQ(L.at(N).Correct, M.Correct)
          << "budget " << N << " stay " << StayOnTaken;
    }
  }
}

TEST(SearchLadders, CorrelatedLadderMatchesDirectSearchWhenExact) {
  PathProfile P = makeProfile();
  CorrelatedOptions Opts;
  Opts.MaxStates = 5;
  Opts.MaxPathLen = 3;
  Opts.NodeBudget = 1'000'000;
  CorrelatedLadder L = buildCorrelatedLadder(7, P, Opts, /*MinBudget=*/2);
  for (unsigned N = 2; N <= Opts.MaxStates; ++N) {
    CorrelatedOptions Direct = Opts;
    Direct.MaxStates = N;
    CorrelatedMachine M = buildCorrelatedMachineFromProfile(7, P, Direct);
    EXPECT_EQ(L.at(N).Correct, M.Correct) << "budget " << N;
  }
}

TEST(SearchLadders, ExhaustedSearchStillFillsEveryRung) {
  // A node budget this small exhausts immediately; the ladder must fall
  // back to truncating the deep winner rather than leaving rungs empty.
  PatternTable T = makeTable();
  MachineOptions Opts;
  Opts.MaxStates = 8;
  Opts.NodeBudget = 16;
  IntraLoopLadder L = buildIntraLoopLadder(T, Opts, /*MinBudget=*/2);
  uint64_t Executions = T.executions();
  for (unsigned N = 2; N <= Opts.MaxStates; ++N) {
    EXPECT_GE(L.at(N).numStates(), 1u) << "budget " << N;
    EXPECT_LE(L.at(N).numStates(), N) << "budget " << N;
    EXPECT_GT(L.at(N).Correct, 0u) << "budget " << N;
    EXPECT_LE(L.at(N).Correct, Executions) << "budget " << N;
  }
}

TEST(SearchLadders, TruncationIsDeterministic) {
  PatternTable T = makeTable();
  MachineOptions Opts;
  Opts.MaxStates = 8;
  Opts.NodeBudget = 16;
  IntraLoopLadder A = buildIntraLoopLadder(T, Opts, 2);
  IntraLoopLadder B = buildIntraLoopLadder(T, Opts, 2);
  for (unsigned N = 2; N <= Opts.MaxStates; ++N) {
    EXPECT_EQ(A.at(N).Correct, B.at(N).Correct);
    EXPECT_EQ(A.at(N).states(), B.at(N).states());
  }
}

//===----------------------------------------------------------------------===//
// Cache behaviour
//===----------------------------------------------------------------------===//

TEST(SearchCacheTest, SecondLookupHits) {
  SearchCache &C = SearchCache::global();
  C.clear();
  PatternTable T = makeTable();
  MachineOptions Opts;
  Opts.MaxStates = 4;
  auto A = C.intraLoopLadder(T, Opts, 2);
  auto B = C.intraLoopLadder(T, Opts, 2);
  EXPECT_EQ(A.get(), B.get()) << "hit must return the cached object";
  SearchCache::Stats S = C.stats();
  EXPECT_EQ(S.Misses, 1u);
  EXPECT_EQ(S.Hits, 1u);
  EXPECT_EQ(S.Evictions, 0u);
  C.clear();
}

TEST(SearchCacheTest, KeyCoversOptionsAndMinBudget) {
  SearchCache &C = SearchCache::global();
  C.clear();
  PatternTable T = makeTable();
  MachineOptions Opts;
  Opts.MaxStates = 4;
  (void)C.intraLoopLadder(T, Opts, 2);
  // Different MinBudget, different NodeBudget, different MaxStates: all
  // distinct entries.
  (void)C.intraLoopLadder(T, Opts, 4);
  MachineOptions O2 = Opts;
  O2.NodeBudget += 1;
  (void)C.intraLoopLadder(T, O2, 2);
  MachineOptions O3 = Opts;
  O3.MaxStates = 5;
  (void)C.intraLoopLadder(T, O3, 2);
  EXPECT_EQ(C.stats().Misses, 4u);
  EXPECT_EQ(C.stats().Hits, 0u);
  C.clear();
}

TEST(SearchCacheTest, KeyCoversTableContent) {
  SearchCache &C = SearchCache::global();
  C.clear();
  MachineOptions Opts;
  Opts.MaxStates = 4;
  PatternTable A = makeTable(9, 2);
  PatternTable B = makeTable(9, 3);
  (void)C.intraLoopLadder(A, Opts, 2);
  (void)C.intraLoopLadder(B, Opts, 2);
  EXPECT_EQ(C.stats().Misses, 2u);
  // Content-identical rebuild of A hits even though it is a distinct
  // object.
  PatternTable A2 = makeTable(9, 2);
  (void)C.intraLoopLadder(A2, Opts, 2);
  EXPECT_EQ(C.stats().Hits, 1u);
  C.clear();
}

TEST(SearchCacheTest, DisabledCacheBypassesStorage) {
  SearchCache &C = SearchCache::global();
  C.clear();
  C.setEnabled(false);
  PatternTable T = makeTable();
  MachineOptions Opts;
  Opts.MaxStates = 4;
  auto A = C.intraLoopLadder(T, Opts, 2);
  auto B = C.intraLoopLadder(T, Opts, 2);
  C.setEnabled(true);
  EXPECT_NE(A.get(), B.get());
  SearchCache::Stats S = C.stats();
  EXPECT_EQ(S.Hits + S.Misses, 0u);
  EXPECT_EQ(C.size(), 0u);
  // Disabled lookups still return correct ladders.
  EXPECT_EQ(A->at(4).Correct, B->at(4).Correct);
  C.clear();
}

TEST(SearchCacheTest, EvictionKeepsServingAndCounts) {
  SearchCache &C = SearchCache::global();
  C.clear();
  C.setCapacity(2);
  MachineOptions Opts;
  Opts.MaxStates = 3;
  for (int S = 2; S <= 6; ++S) {
    PatternTable T = makeTable(9, S);
    (void)C.intraLoopLadder(T, Opts, 2);
  }
  SearchCache::Stats St = C.stats();
  EXPECT_EQ(St.Misses, 5u);
  EXPECT_GE(St.Evictions, 3u);
  C.setCapacity(65536);
  C.clear();
}

//===----------------------------------------------------------------------===//
// Whole-pipeline determinism across worker counts
//===----------------------------------------------------------------------===//

TEST(SearchCacheTest, SweepIdenticalAcrossJobsAndCacheStates) {
  const Workload *W = nullptr;
  for (const Workload &Cand : allWorkloads())
    if (std::string_view(Cand.Name) == "compress")
      W = &Cand;
  ASSERT_NE(W, nullptr);
  Module M;
  Trace T = traceWorkload(*W, /*Seed=*/1, M, /*MaxBranchEvents=*/20'000);
  ProgramAnalysis PA(M);
  ProfileSet Profiles = buildLoopAwareProfiles(PA, T);

  SweepOptions Opts;
  Opts.MaxStates = 6;

  SearchCache &C = SearchCache::global();
  C.clear();
  Opts.Jobs = 1;
  std::vector<SweepPoint> Serial = computeSizeSweep(PA, Profiles, T, Opts);
  SearchCache::Stats SerialStats = C.stats();

  C.clear();
  Opts.Jobs = 4;
  std::vector<SweepPoint> Par = computeSizeSweep(PA, Profiles, T, Opts);
  SearchCache::Stats ParStats = C.stats();

  // Warm-cache rerun: everything hits, same curve.
  Opts.Jobs = 4;
  std::vector<SweepPoint> Warm = computeSizeSweep(PA, Profiles, T, Opts);

  ASSERT_EQ(Serial.size(), Par.size());
  ASSERT_EQ(Serial.size(), Warm.size());
  for (size_t I = 0; I < Serial.size(); ++I) {
    EXPECT_EQ(Serial[I].SizeFactor, Par[I].SizeFactor) << "point " << I;
    EXPECT_EQ(Serial[I].MispredictPercent, Par[I].MispredictPercent);
    EXPECT_EQ(Serial[I].BranchId, Par[I].BranchId);
    EXPECT_EQ(Serial[I].NewStates, Par[I].NewStates);
    EXPECT_EQ(Serial[I].SizeFactor, Warm[I].SizeFactor);
    EXPECT_EQ(Serial[I].MispredictPercent, Warm[I].MispredictPercent);
  }

  // In-flight deduplication makes the cold hit/miss split itself
  // schedule-independent.
  EXPECT_EQ(SerialStats.Hits, ParStats.Hits);
  EXPECT_EQ(SerialStats.Misses, ParStats.Misses);
  C.clear();
}

TEST(SearchCacheTest, StrategySelectionIdenticalAcrossJobs) {
  const Workload *W = nullptr;
  for (const Workload &Cand : allWorkloads())
    if (std::string_view(Cand.Name) == "compress")
      W = &Cand;
  ASSERT_NE(W, nullptr);
  Module M;
  Trace T = traceWorkload(*W, /*Seed=*/1, M, /*MaxBranchEvents=*/20'000);
  ProgramAnalysis PA(M);
  ProfileSet Profiles = buildLoopAwareProfiles(PA, T);

  StrategyOptions Opts;
  Opts.MaxStates = 4;
  SearchCache &C = SearchCache::global();

  C.clear();
  Opts.Jobs = 1;
  std::vector<BranchStrategy> Serial = selectStrategies(PA, Profiles, T, Opts);
  C.clear();
  Opts.Jobs = 4;
  std::vector<BranchStrategy> Par = selectStrategies(PA, Profiles, T, Opts);

  ASSERT_EQ(Serial.size(), Par.size());
  for (size_t I = 0; I < Serial.size(); ++I) {
    EXPECT_EQ(Serial[I].BranchId, Par[I].BranchId);
    EXPECT_EQ(Serial[I].Kind, Par[I].Kind) << "branch " << Serial[I].BranchId;
    EXPECT_EQ(Serial[I].Correct, Par[I].Correct);
    EXPECT_EQ(Serial[I].States, Par[I].States);
  }
  C.clear();
}
