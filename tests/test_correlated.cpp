//===- tests/test_correlated.cpp - Correlated path machine tests ----------===//
//
// Part of the bpcr project (Krall, PLDI 1994 reproduction).
//
//===----------------------------------------------------------------------===//

#include "core/CorrelatedMachine.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

using namespace bpcr;

namespace {

BranchPath path(std::initializer_list<std::pair<int32_t, bool>> Steps) {
  BranchPath P;
  for (auto [Id, Taken] : Steps)
    P.Steps.push_back({Id, Taken});
  return P;
}

/// Branch 2's outcome equals branch 0's previous outcome; branch 1 sits in
/// between as noise.
Trace copyThroughNoise(size_t N, uint64_t Seed) {
  Rng G(Seed);
  Trace T;
  for (size_t I = 0; I < N; ++I) {
    bool A = G.chance(1, 2);
    T.push_back({0, A});
    T.push_back({1, G.chance(1, 4)});
    T.push_back({2, A});
  }
  return T;
}

} // namespace

TEST(PathProfiler, CountsLongestMatchingPath) {
  // Candidates for branch 2: [(1,*)] and [(0,*),(1,*)].
  std::vector<std::vector<BranchPath>> Cands(3);
  Cands[2] = {path({{1, true}}),
              path({{1, false}}),
              path({{0, true}, {1, true}}),
              path({{0, true}, {1, false}}),
              path({{0, false}, {1, true}}),
              path({{0, false}, {1, false}})};
  Trace T = copyThroughNoise(1000, 3);
  auto Profiles = profilePaths(Cands, T, 2);
  // Every execution of branch 2 is preceded by (0,x),(1,y): the longest
  // candidates match, so nothing lands in shorter ones or unmatched.
  EXPECT_EQ(Profiles[2].Unmatched.total(), 0u);
  uint64_t Total = 0;
  for (const auto &[Key, C] : Profiles[2].PerPath) {
    EXPECT_EQ(Key.size(), 2u);
    Total += C.total();
  }
  EXPECT_EQ(Total, 1000u);
}

TEST(PathProfiler, UnmatchedBucketCatchesTheRest) {
  std::vector<std::vector<BranchPath>> Cands(3);
  Cands[2] = {path({{1, true}})}; // only one direction covered
  Trace T = copyThroughNoise(1000, 5);
  auto Profiles = profilePaths(Cands, T, 2);
  uint64_t Matched = 0;
  for (const auto &[Key, C] : Profiles[2].PerPath)
    Matched += C.total();
  EXPECT_EQ(Matched + Profiles[2].Unmatched.total(), 1000u);
  EXPECT_GT(Profiles[2].Unmatched.total(), 0u);
}

TEST(CorrelatedMachine, SolvesCopyBranch) {
  std::vector<BranchPath> Cands = {
      path({{0, true}, {1, true}}),   path({{0, true}, {1, false}}),
      path({{0, false}, {1, true}}),  path({{0, false}, {1, false}}),
      path({{1, true}}),              path({{1, false}}),
  };
  Trace T = copyThroughNoise(2000, 7);
  CorrelatedOptions Opts;
  Opts.MaxStates = 5; // 4 paths + catch-all
  Opts.MaxPathLen = 2;
  CorrelatedMachine M = buildCorrelatedMachine(2, Cands, T, Opts);
  PredictionStats S = evaluateCorrelatedMachine(M, T);
  // Branch 2 is fully determined by the (0,x) part of the path.
  EXPECT_LE(S.mispredictionPercent(), 1.0);
  EXPECT_LE(M.numStates(), 5u);
}

TEST(CorrelatedMachine, BudgetTwoUsesBestSinglePath) {
  std::vector<BranchPath> Cands = {path({{1, true}}), path({{1, false}})};
  Trace T;
  // Branch 2 is taken exactly when branch 1 was taken.
  Rng G(9);
  for (int I = 0; I < 1000; ++I) {
    bool A = G.chance(1, 3);
    T.push_back({1, A});
    T.push_back({2, A});
  }
  CorrelatedOptions Opts;
  Opts.MaxStates = 2;
  Opts.MaxPathLen = 1;
  CorrelatedMachine M = buildCorrelatedMachine(2, Cands, T, Opts);
  ASSERT_EQ(M.Paths.size(), 1u);
  // One path plus the default suffices: (1,T)->T, default->N (or the
  // mirror image).
  PredictionStats S = evaluateCorrelatedMachine(M, T);
  EXPECT_EQ(S.Mispredictions, 0u);
}

TEST(CorrelatedMachine, AssignmentScoreMatchesEvaluation) {
  std::vector<BranchPath> Cands = {
      path({{0, true}, {1, true}}),  path({{0, true}, {1, false}}),
      path({{0, false}, {1, true}}), path({{0, false}, {1, false}}),
      path({{1, true}}),             path({{1, false}}),
  };
  Trace T = copyThroughNoise(1500, 11);
  CorrelatedOptions Opts;
  Opts.MaxStates = 4;
  Opts.MaxPathLen = 2;
  CorrelatedMachine M = buildCorrelatedMachine(2, Cands, T, Opts);
  PredictionStats S = evaluateCorrelatedMachine(M, T);
  EXPECT_EQ(S.Predictions, M.Total);
  EXPECT_EQ(S.Mispredictions, M.Total - M.Correct);
}

TEST(CorrelatedMachine, MatchPrefersLongestPath) {
  CorrelatedMachine M;
  M.BranchId = 2;
  M.MaxPathLen = 2;
  M.Paths = {path({{1, true}}), path({{0, true}, {1, true}})};
  M.PathPred = {0, 1};
  M.DefaultPred = 0;
  std::vector<PathStep> Recent = {{0, true}, {1, true}};
  EXPECT_EQ(M.match(Recent), 1);
  Recent = {{0, false}, {1, true}};
  EXPECT_EQ(M.match(Recent), 0);
  Recent = {{0, true}, {1, false}};
  EXPECT_EQ(M.match(Recent), -1);
}

TEST(CorrelatedMachine, InterveningEventBreaksMatch) {
  CorrelatedMachine M;
  M.BranchId = 5;
  M.MaxPathLen = 2;
  M.Paths = {path({{0, true}})};
  M.PathPred = {1};
  M.DefaultPred = 0;
  // (0,T) followed by an unrelated event: the strict suffix no longer
  // starts with (0,T).
  std::vector<PathStep> Recent = {{0, true}, {7, false}};
  EXPECT_EQ(M.match(Recent), -1);
}

TEST(CorrelatedMachine, StateBudgetMonotone) {
  std::vector<BranchPath> Cands = {
      path({{0, true}, {1, true}}),  path({{0, true}, {1, false}}),
      path({{0, false}, {1, true}}), path({{0, false}, {1, false}}),
      path({{1, true}}),             path({{1, false}}),
  };
  Trace T = copyThroughNoise(1500, 13);
  uint64_t Prev = 0;
  for (unsigned States = 2; States <= 6; ++States) {
    CorrelatedOptions Opts;
    Opts.MaxStates = States;
    Opts.MaxPathLen = 2;
    CorrelatedMachine M = buildCorrelatedMachine(2, Cands, T, Opts);
    EXPECT_GE(M.Correct, Prev);
    Prev = M.Correct;
  }
}

TEST(CorrelatedMachine, EncodeDecodeRoundTrip) {
  BranchPath P = path({{5, true}, {3, false}, {9, true}});
  SymbolString S = encodePathSteps(P);
  ASSERT_EQ(S.size(), 3u);
  EXPECT_EQ(S[0], (5u << 1) | 1u);
  EXPECT_EQ(S[1], (3u << 1) | 0u);
  EXPECT_EQ(S[2], (9u << 1) | 1u);
}
