//===- tests/test_attribution.cpp - Misprediction attribution ledger ------===//
//
// Part of the bpcr project (Krall, PLDI 1994 reproduction).
//
//===----------------------------------------------------------------------===//

#include "core/Pipeline.h"
#include "obs/Attribution.h"
#include "obs/Json.h"
#include "obs/Metrics.h"
#include "workloads/Workload.h"

#include <gtest/gtest.h>

#include <map>

using namespace bpcr;

namespace {

const Workload &workloadNamed(const char *Name) {
  for (const Workload &W : allWorkloads())
    if (std::string(W.Name) == Name)
      return W;
  ADD_FAILURE() << "no workload named " << Name;
  return allWorkloads()[0];
}

/// Runs the compress pipeline with the global registry enabled and returns
/// the result; the caller owns restoring the registry.
PipelineResult runObservedPipeline(Module &M, Trace &T) {
  Registry &G = Registry::global();
  G.clear();
  G.setEnabled(true);
  T = traceWorkload(workloadNamed("compress"), 1, M, 20'000);
  PipelineOptions Opts;
  Opts.Strategy.MaxStates = 6;
  Opts.Strategy.NodeBudget = 30'000;
  return replicateModule(M, T, Opts);
}

void restoreRegistry() {
  Registry &G = Registry::global();
  G.clear();
  G.setEnabled(false);
}

} // namespace

// -- Ledger filled by the pipeline -------------------------------------------

TEST(Attribution, LedgerMatchesTrainingTrace) {
  Module M;
  Trace T;
  PipelineResult PR = runObservedPipeline(M, T);

  ASSERT_FALSE(PR.Attribution.empty());
  EXPECT_EQ(PR.Attribution.size(), PR.Strategies.size());

  // Training-side executions/taken counts are the trace's, per branch.
  std::map<int32_t, std::pair<uint64_t, uint64_t>> FromTrace;
  for (const BranchEvent &E : T) {
    FromTrace[E.BranchId].first++;
    if (E.Taken)
      FromTrace[E.BranchId].second++;
  }
  for (const BranchAttribution &B : PR.Attribution.all()) {
    auto It = FromTrace.find(B.BranchId);
    uint64_t Exec = It == FromTrace.end() ? 0 : It->second.first;
    uint64_t Taken = It == FromTrace.end() ? 0 : It->second.second;
    EXPECT_EQ(B.Executions, Exec) << "branch " << B.BranchId;
    EXPECT_EQ(B.TakenCount, Taken) << "branch " << B.BranchId;
  }

  restoreRegistry();
}

TEST(Attribution, ExactlyOneChosenCandidateReconstructsSelection) {
  Module M;
  Trace T;
  PipelineResult PR = runObservedPipeline(M, T);

  for (const BranchAttribution &B : PR.Attribution.all()) {
    ASSERT_FALSE(B.Candidates.empty()) << "branch " << B.BranchId;
    unsigned ChosenCount = 0;
    const CandidateScore *Chosen = nullptr;
    for (const CandidateScore &C : B.Candidates)
      if (C.Chosen) {
        ++ChosenCount;
        Chosen = &C;
      }
    ASSERT_EQ(ChosenCount, 1u) << "branch " << B.BranchId;
    // The chosen candidate is the strategy the pipeline settled on, with
    // the same training score — `bpcr explain --branch` relies on this.
    EXPECT_EQ(Chosen->Strategy, B.Strategy) << "branch " << B.BranchId;
    EXPECT_EQ(Chosen->Correct, B.TrainCorrect) << "branch " << B.BranchId;
    EXPECT_EQ(Chosen->Total, B.TrainTotal) << "branch " << B.BranchId;
    // The runner-up delta is the winner's margin over the best loser.
    if (!B.RunnerUp.empty()) {
      const CandidateScore *BestLoser = nullptr;
      for (const CandidateScore &C : B.Candidates)
        if (!C.Chosen && (!BestLoser || C.Correct > BestLoser->Correct))
          BestLoser = &C;
      ASSERT_NE(BestLoser, nullptr);
      EXPECT_EQ(B.RunnerUp, BestLoser->Strategy);
      EXPECT_EQ(B.RunnerUpDelta, Chosen->Correct > BestLoser->Correct
                                     ? Chosen->Correct - BestLoser->Correct
                                     : 0u);
    }
    // Every executed branch got a verdict from the decision log.
    if (B.Executions > 0) {
      EXPECT_FALSE(B.Action.empty()) << "branch " << B.BranchId;
    }
  }

  restoreRegistry();
}

// -- Replicated copies fold back onto the original branch --------------------

TEST(Attribution, ReplicasAttributeToOriginalBranchId) {
  Module M;
  Trace T;
  PipelineResult PR = runObservedPipeline(M, T);
  ASSERT_GT(PR.LoopReplications + PR.JointReplications +
                PR.CorrelatedReplications,
            0u)
      << "workload must replicate for this test to exercise replicas";

  // Map every branch copy in the transformed module to its original id.
  std::map<int32_t, int32_t> CopyToOrig;
  for (const Function &F : PR.Transformed.Functions)
    for (const BasicBlock &BB : F.Blocks)
      for (const Instruction &I : BB.Insts)
        if (I.Op == Opcode::Br && I.BranchId != NoBranchId)
          CopyToOrig[I.BranchId] = I.OrigBranchId;

  bool SawReplicated = false;
  for (const BranchAttribution &B : PR.Attribution.all()) {
    uint64_t ExecSum = 0, MissSum = 0;
    for (const ReplicaStat &R : B.Replicas) {
      // Each recorded copy exists in the transformed module and descends
      // from this original branch.
      auto It = CopyToOrig.find(R.ReplicaId);
      ASSERT_NE(It, CopyToOrig.end()) << "replica " << R.ReplicaId;
      EXPECT_EQ(It->second, B.BranchId) << "replica " << R.ReplicaId;
      ExecSum += R.Executions;
      MissSum += R.Mispredictions;
    }
    // Per-copy counts sum to the original branch's measured totals.
    EXPECT_EQ(ExecSum, B.MeasuredExecutions) << "branch " << B.BranchId;
    EXPECT_EQ(MissSum, B.Mispredictions) << "branch " << B.BranchId;
    if (B.Replicas.size() > 1)
      SawReplicated = true;
  }
  EXPECT_TRUE(SawReplicated)
      << "expected at least one branch with multiple replica copies";

  restoreRegistry();
}

TEST(Attribution, PerReplicaMeasurementMatchesAggregate) {
  Module M;
  Trace T;
  PipelineResult PR = runObservedPipeline(M, T);

  ExecOptions EO;
  EO.MaxBranchEvents = T.size();
  PredictionStats Agg = measureAnnotatedPredictions(PR.Transformed, EO);
  uint64_t Exec = 0, Miss = 0;
  int32_t PrevOrig = -1, PrevReplica = -1;
  for (const ReplicaMeasurement &C :
       measureAnnotatedPerReplica(PR.Transformed, EO)) {
    EXPECT_GT(C.Executions, 0u); // zero-execution copies are omitted
    // Sorted by (OrigBranchId, ReplicaId).
    EXPECT_TRUE(C.OrigBranchId > PrevOrig ||
                (C.OrigBranchId == PrevOrig && C.ReplicaId > PrevReplica));
    PrevOrig = C.OrigBranchId;
    PrevReplica = C.ReplicaId;
    Exec += C.Executions;
    Miss += C.Mispredictions;
  }
  EXPECT_EQ(Exec, Agg.Predictions);
  EXPECT_EQ(Miss, Agg.Mispredictions);
  EXPECT_EQ(Exec, PR.Attribution.totalMeasuredExecutions());
  EXPECT_EQ(Miss, PR.Attribution.totalMispredictions());

  restoreRegistry();
}

TEST(Attribution, DisabledRegistryLeavesLedgerEmpty) {
  Registry &G = Registry::global();
  G.clear();
  G.setEnabled(false);

  Module M;
  Trace T = traceWorkload(workloadNamed("compress"), 1, M, 5'000);
  PipelineOptions Opts;
  Opts.Strategy.MaxStates = 4;
  Opts.Strategy.NodeBudget = 10'000;
  PipelineResult PR = replicateModule(M, T, Opts);
  EXPECT_TRUE(PR.Attribution.empty());
}

// -- Ledger queries -----------------------------------------------------------

TEST(Attribution, TopByMispredictionsOrdersAndCaps) {
  AttributionLedger L;
  L.resize(5);
  // Branch 4 never executed; 1 and 3 tie on mispredictions.
  L.branch(0).MeasuredExecutions = 100;
  L.branch(0).Mispredictions = 7;
  L.branch(1).MeasuredExecutions = 50;
  L.branch(1).Mispredictions = 20;
  L.branch(2).MeasuredExecutions = 10;
  L.branch(2).Mispredictions = 1;
  L.branch(3).MeasuredExecutions = 80;
  L.branch(3).Mispredictions = 20;

  auto Top = L.topByMispredictions(10);
  ASSERT_EQ(Top.size(), 4u); // the unexecuted branch is excluded
  EXPECT_EQ(Top[0]->BranchId, 1); // ties break toward the lower id
  EXPECT_EQ(Top[1]->BranchId, 3);
  EXPECT_EQ(Top[2]->BranchId, 0);
  EXPECT_EQ(Top[3]->BranchId, 2);

  auto Top2 = L.topByMispredictions(2);
  ASSERT_EQ(Top2.size(), 2u);
  EXPECT_EQ(Top2[0]->BranchId, 1);
  EXPECT_EQ(Top2[1]->BranchId, 3);
}

TEST(Attribution, MaybeBranchBoundsChecks) {
  AttributionLedger L;
  L.resize(3);
  EXPECT_NE(L.maybeBranch(0), nullptr);
  EXPECT_NE(L.maybeBranch(2), nullptr);
  EXPECT_EQ(L.maybeBranch(3), nullptr);
  EXPECT_EQ(L.maybeBranch(-1), nullptr);
}

// -- JSON section -------------------------------------------------------------

TEST(Attribution, JsonCoverageIsConsistent) {
  AttributionLedger L;
  L.resize(4);
  for (int32_t Id = 0; Id < 4; ++Id) {
    BranchAttribution &B = L.branch(Id);
    B.Strategy = "profile";
    B.Action = "kept-profile";
    B.MeasuredExecutions = 100;
    B.Mispredictions = static_cast<uint64_t>(10 * (Id + 1));
    B.Replicas.push_back({Id, B.MeasuredExecutions, B.Mispredictions});
  }

  JsonValue J = attributionJson(L, /*TopK=*/2);
  EXPECT_EQ(J.find("top_k")->asInt(), 2);
  EXPECT_EQ(J.find("branches_total")->asInt(), 4);
  EXPECT_EQ(J.find("total_mispredictions")->asInt(), 10 + 20 + 30 + 40);

  // The top-K misprediction sum IS the covered figure, so the Pareto table
  // can never under-report against the coverage line.
  const JsonValue *Top = J.find("top");
  ASSERT_NE(Top, nullptr);
  ASSERT_EQ(Top->size(), 2u);
  int64_t TopSum = 0;
  for (const JsonValue &E : Top->items())
    TopSum += E.find("mispredictions")->asInt();
  EXPECT_EQ(TopSum, J.find("covered_mispredictions")->asInt());
  EXPECT_GE(TopSum, 40 + 30); // the two worst branches
  EXPECT_NEAR(J.find("coverage_percent")->asDouble(),
              100.0 * static_cast<double>(TopSum) / (10 + 20 + 30 + 40),
              1e-9);

  // Every executed branch appears under by_id with flattenable leaves.
  const JsonValue *ById = J.find("by_id");
  ASSERT_NE(ById, nullptr);
  EXPECT_EQ(ById->size(), 4u);
  const JsonValue *B2 = ById->find("2");
  ASSERT_NE(B2, nullptr);
  EXPECT_EQ(B2->find("executions")->asInt(), 100);
  EXPECT_EQ(B2->find("mispredictions")->asInt(), 30);
  EXPECT_NEAR(B2->find("miss_rate_percent")->asDouble(), 30.0, 1e-9);
}

TEST(Attribution, JsonOfEmptyLedgerHasZeroTotals) {
  AttributionLedger L;
  JsonValue J = attributionJson(L, 5);
  EXPECT_EQ(J.find("branches_total")->asInt(), 0);
  EXPECT_EQ(J.find("total_mispredictions")->asInt(), 0);
  EXPECT_EQ(J.find("top")->size(), 0u);
  EXPECT_DOUBLE_EQ(J.find("coverage_percent")->asDouble(), 0.0);
}
