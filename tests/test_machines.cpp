//===- tests/test_machines.cpp - State machine tests ----------------------===//
//
// Part of the bpcr project (Krall, PLDI 1994 reproduction).
//
//===----------------------------------------------------------------------===//

#include "core/MachineSearch.h"
#include "core/Machines.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

using namespace bpcr;

namespace {

/// Builds a pattern table by replaying an outcome stream.
PatternTable tableOf(const std::vector<uint8_t> &Outcomes,
                     unsigned Bits = 9) {
  PatternTable T(Bits);
  for (uint8_t O : Outcomes)
    T.record(O != 0);
  return T;
}

std::vector<uint8_t> alternating(size_t N) {
  std::vector<uint8_t> V(N);
  for (size_t I = 0; I < N; ++I)
    V[I] = I % 2;
  return V;
}

std::vector<uint8_t> periodic(size_t N, std::initializer_list<int> Period) {
  std::vector<int> P(Period);
  std::vector<uint8_t> V(N);
  for (size_t I = 0; I < N; ++I)
    V[I] = static_cast<uint8_t>(P[I % P.size()]);
  return V;
}

} // namespace

// -- SuffixMachine ------------------------------------------------------------

TEST(SuffixMachine, TwoStateSolvesAlternation) {
  // The paper's figure 1: a 2-state machine predicts an alternating branch
  // perfectly once warmed up.
  PatternTable T = tableOf(alternating(1000));
  MachineOptions Opts;
  Opts.MaxStates = 2;
  SuffixMachine M = buildIntraLoopMachine(T, Opts);
  EXPECT_EQ(M.numStates(), 2u);
  PredictionStats S = M.simulate(alternating(1000));
  EXPECT_LE(S.Mispredictions, 1u);
}

TEST(SuffixMachine, TransitionsFollowLongestSuffix) {
  SuffixSelection Sel;
  Sel.States = {{0}, {1}, {1, 1}};
  Sel.StatePred = {1, 1, 0};
  SuffixMachine M = SuffixMachine::fromSelection(Sel);
  unsigned S0 = M.initialState(); // "0"
  EXPECT_EQ(M.states()[S0], (SymbolString{0}));
  unsigned S1 = M.next(S0, true); // "0"+1 -> "01": longest suffix "1"
  EXPECT_EQ(M.states()[S1], (SymbolString{1}));
  unsigned S11 = M.next(S1, true); // "1"+1 -> "11"
  EXPECT_EQ(M.states()[S11], (SymbolString{1, 1}));
  unsigned S11b = M.next(S11, true); // "11"+1 -> "111": suffix "11"
  EXPECT_EQ(S11b, S11);
  unsigned Back = M.next(S11, false); // "11"+0 -> "110": suffix "0"
  EXPECT_EQ(M.states()[Back], (SymbolString{0}));
}

TEST(SuffixMachine, SimulationMatchesAssignmentScoreWhenClosed) {
  // For suffix-closed machines the assignment score equals simulation up
  // to warmup effects. Check on random-ish periodic streams.
  for (uint64_t Seed : {1u, 2u, 3u, 4u}) {
    Rng G(Seed);
    std::vector<uint8_t> Stream;
    for (int I = 0; I < 4000; ++I)
      Stream.push_back(static_cast<uint8_t>((I % 5 == 0) | (G.below(8) == 0)));
    PatternTable T = tableOf(Stream);
    MachineOptions Opts;
    Opts.MaxStates = 5;
    SuffixMachine M = buildIntraLoopMachine(T, Opts);
    PredictionStats Sim = M.simulate(Stream);
    double AssignRate =
        100.0 * static_cast<double>(M.Total - M.Correct) /
        static_cast<double>(M.Total);
    EXPECT_NEAR(Sim.mispredictionPercent(), AssignRate, 1.0)
        << M.describe();
  }
}

TEST(SuffixMachine, PeriodThreeNeedsMoreStates) {
  std::vector<uint8_t> Stream = periodic(3000, {0, 1, 1});
  PatternTable T = tableOf(Stream);
  MachineOptions Two;
  Two.MaxStates = 2;
  MachineOptions Four;
  Four.MaxStates = 4;
  SuffixMachine M2 = buildIntraLoopMachine(T, Two);
  SuffixMachine M4 = buildIntraLoopMachine(T, Four);
  EXPECT_GT(M4.Correct, M2.Correct);
  PredictionStats S4 = M4.simulate(Stream);
  EXPECT_LE(S4.mispredictionPercent(), 0.5);
}

TEST(SuffixMachine, ReachableStatesFromInitial) {
  SuffixSelection Sel;
  Sel.States = {{0}, {1}, {0, 1}, {1, 1}};
  Sel.StatePred = {0, 1, 1, 0};
  SuffixMachine M = SuffixMachine::fromSelection(Sel);
  std::vector<uint8_t> Reach = M.reachableStates();
  // From "0": push 1 -> "01"; push 1 -> "11"; push 0 -> "0". The bare "1"
  // is shadowed (every ...1 history matches "01" or "11") and stays
  // unreachable, like the discarded copies in the paper's figure 1.
  unsigned Reachable = 0;
  for (uint8_t R : Reach)
    Reachable += R;
  EXPECT_EQ(Reachable, 3u);
  size_t BareOne = 0;
  for (size_t I = 0; I < M.states().size(); ++I)
    if (M.states()[I] == SymbolString{1})
      BareOne = I;
  EXPECT_FALSE(Reach[BareOne]);
}

TEST(SuffixMachine, DescribeListsStates) {
  SuffixSelection Sel;
  Sel.States = {{0}, {1}};
  Sel.StatePred = {1, 0};
  SuffixMachine M = SuffixMachine::fromSelection(Sel);
  EXPECT_EQ(M.describe(), "suffix{0:T,1:N}");
}

TEST(SuffixMachine, CloneBehavesIdentically) {
  PatternTable T = tableOf(periodic(2000, {0, 1, 1, 1}));
  MachineOptions Opts;
  Opts.MaxStates = 5;
  SuffixMachine M = buildIntraLoopMachine(T, Opts);
  std::unique_ptr<BranchMachine> C = M.clone();
  std::vector<uint8_t> Probe = periodic(100, {0, 1, 1, 1});
  EXPECT_EQ(M.simulate(Probe).Mispredictions,
            C->simulate(Probe).Mispredictions);
}

// -- ExitChainMachine -----------------------------------------------------------

TEST(ExitChain, ConstantTripCountBecomesPerfect) {
  // A loop that always runs 5 iterations: stay,stay,stay,stay,exit.
  // Pattern: 1,1,1,1,0 repeating (taken = stay).
  std::vector<uint8_t> Stream = periodic(5000, {1, 1, 1, 1, 0});
  PatternTable T = tableOf(Stream);
  ExitChainMachine M = buildExitMachine(T, /*MaxStates=*/6,
                                        /*StayOnTaken=*/true);
  PredictionStats S = M.simulate(Stream);
  EXPECT_LE(S.mispredictionPercent(), 0.5);
  EXPECT_LE(M.numStates(), 6u);
}

TEST(ExitChain, TooFewStatesDegradeGracefully) {
  std::vector<uint8_t> Stream = periodic(5000, {1, 1, 1, 1, 1, 1, 1, 0});
  PatternTable T = tableOf(Stream);
  ExitChainMachine Small = buildExitMachine(T, 3, true);
  ExitChainMachine Large = buildExitMachine(T, 9, true);
  EXPECT_GE(Large.Correct, Small.Correct);
  // Profile alone mispredicts 1/8 of executions; the large chain is
  // near-perfect.
  EXPECT_LE(Large.simulate(Stream).mispredictionPercent(), 0.5);
}

TEST(ExitChain, ParityVariantSolvesEvenOddLoops) {
  // Trip count alternates 4, 6, 4, 6 ... : with stay=1, the exit happens
  // after 4 or 6 stays; parity of the long tail decides.
  std::vector<uint8_t> Stream;
  for (int I = 0; I < 600; ++I) {
    int Trip = (I % 2) ? 6 : 4;
    for (int J = 0; J < Trip - 1; ++J)
      Stream.push_back(1);
    Stream.push_back(0);
  }
  PatternTable T = tableOf(Stream);
  ExitChainMachine M = buildExitMachine(T, 8, true);
  PredictionStats S = M.simulate(Stream);
  // Not necessarily perfect (the parity interleave is subtle), but far
  // better than profile (which mispredicts every exit, ~20%).
  EXPECT_LT(S.mispredictionPercent(), 12.0);
}

TEST(ExitChain, PolarityFlipsForTakenExits) {
  // Loop exits on TAKEN: stream 0,0,0,1 repeating (stay = not taken).
  std::vector<uint8_t> Stream = periodic(4000, {0, 0, 0, 1});
  PatternTable T = tableOf(Stream);
  ExitChainMachine M = buildExitMachine(T, 5, /*StayOnTaken=*/false);
  PredictionStats S = M.simulate(Stream);
  EXPECT_LE(S.mispredictionPercent(), 0.5);
}

TEST(ExitChain, TransitionsResetOnExit) {
  PatternTable T = tableOf(periodic(100, {1, 1, 0}));
  ExitChainMachine M = ExitChainMachine::fit(T, 2, false, true);
  unsigned S = M.initialState();
  EXPECT_EQ(S, 0u);
  S = M.next(S, true);
  EXPECT_EQ(S, 1u);
  S = M.next(S, true);
  EXPECT_EQ(S, 2u);
  S = M.next(S, true); // saturates
  EXPECT_EQ(S, 2u);
  S = M.next(S, false); // exit resets
  EXPECT_EQ(S, 0u);
}

TEST(ExitChain, ParityTransitionsAlternateAtTop) {
  PatternTable T = tableOf(periodic(100, {1, 1, 0}));
  ExitChainMachine M = ExitChainMachine::fit(T, 2, true, true);
  EXPECT_EQ(M.numStates(), 4u);
  unsigned S = 0;
  S = M.next(S, true); // 1
  S = M.next(S, true); // 2 (chain top)
  EXPECT_EQ(S, 2u);
  S = M.next(S, true); // 3 (parity partner)
  EXPECT_EQ(S, 3u);
  S = M.next(S, true); // back to 2
  EXPECT_EQ(S, 2u);
  EXPECT_EQ(M.next(S, false), 0u);
}

// -- Full-history reference -------------------------------------------------------

TEST(FullHistory, CorrectGrowsWithBits) {
  Rng G(9);
  std::vector<uint8_t> Stream;
  for (int I = 0; I < 8000; ++I)
    Stream.push_back(static_cast<uint8_t>((I % 6) < 2 || G.below(16) == 0));
  PatternTable T = tableOf(Stream);
  uint64_t Prev = 0;
  for (unsigned Bits = 1; Bits <= 9; ++Bits) {
    uint64_t C = fullHistoryCorrect(T, Bits);
    EXPECT_GE(C, Prev);
    Prev = C;
  }
}

TEST(FullHistory, MachineNeverBeatsFullTable) {
  for (uint64_t Seed : {11u, 12u, 13u}) {
    Rng G(Seed);
    std::vector<uint8_t> Stream;
    for (int I = 0; I < 4000; ++I)
      Stream.push_back(static_cast<uint8_t>(G.below(3) != 0));
    PatternTable T = tableOf(Stream);
    MachineOptions Opts;
    Opts.MaxStates = 6;
    SuffixMachine M = buildIntraLoopMachine(T, Opts);
    EXPECT_LE(M.Correct, fullHistoryCorrect(T, 9));
  }
}

// -- Property sweeps -------------------------------------------------------------

/// For suffix-closed machines of any size on any stream, construction-time
/// assignment must equal simulation (the invariant the optimizer relies
/// on). Swept over random stream shapes and machine sizes.
class MachineInvariant
    : public ::testing::TestWithParam<std::tuple<uint64_t, unsigned>> {};

TEST_P(MachineInvariant, AssignmentEqualsSimulationUpToWarmup) {
  auto [Seed, MaxStates] = GetParam();
  Rng G(Seed * 131 + 7);
  std::vector<uint8_t> Stream;
  // A blend of periodic and random sections.
  unsigned Period = 2 + static_cast<unsigned>(G.below(6));
  for (int I = 0; I < 3000; ++I) {
    bool Periodic = (static_cast<unsigned>(I) % Period) == 0;
    bool Noise = G.below(10) == 0;
    Stream.push_back(static_cast<uint8_t>(Periodic ^ Noise));
  }
  PatternTable T = tableOf(Stream);
  MachineOptions MO;
  MO.MaxStates = MaxStates;
  MO.NodeBudget = 50'000;
  SuffixMachine M = buildIntraLoopMachine(T, MO);
  PredictionStats Sim = M.simulate(Stream);
  // With substring closure the assignment score IS the simulation, cold
  // start included: both track the longest state-substring of the
  // (zero-initialized) history.
  EXPECT_EQ(Sim.Mispredictions, M.Total - M.Correct) << M.describe();
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, MachineInvariant,
    ::testing::Combine(::testing::Values(1u, 2u, 3u, 4u, 5u, 6u),
                       ::testing::Values(2u, 3u, 5u, 8u)));

/// Exit machines: the fitted score must equal simulation for every chain
/// length and polarity on trip-count streams.
class ExitInvariant
    : public ::testing::TestWithParam<std::tuple<unsigned, bool>> {};

TEST_P(ExitInvariant, FitEqualsSimulation) {
  auto [Chain, Parity] = GetParam();
  Rng G(Chain * 17 + Parity);
  std::vector<uint8_t> Stream;
  for (int I = 0; I < 800; ++I) {
    unsigned Trip = 2 + static_cast<unsigned>(G.below(5));
    for (unsigned J = 0; J + 1 < Trip; ++J)
      Stream.push_back(1);
    Stream.push_back(0);
  }
  PatternTable T = tableOf(Stream);
  ExitChainMachine M = ExitChainMachine::fit(T, Chain, Parity, true);
  PredictionStats Sim = M.simulate(Stream);
  uint64_t AssignMiss = M.Total - M.Correct;
  uint64_t Delta = Sim.Mispredictions > AssignMiss
                       ? Sim.Mispredictions - AssignMiss
                       : AssignMiss - Sim.Mispredictions;
  // Trailing-count assignment is censored at the 9-bit table width; long
  // trips can differ there, plus warmup.
  EXPECT_LE(Delta, 20u) << M.describe();
}

INSTANTIATE_TEST_SUITE_P(Sweep, ExitInvariant,
                         ::testing::Combine(::testing::Values(1u, 2u, 3u,
                                                              5u, 7u),
                                            ::testing::Bool()));
