//===- tests/test_columnar.cpp - Columnar event-path tests ----------------===//
//
// Part of the bpcr project (Krall, PLDI 1994 reproduction).
//
// The columnar trace (trace/ColumnarTrace.h) and the packed-word scoring
// kernels (core/ScoreKernels.h) replace the object-at-a-time event path.
// Everything here pins the bit-for-bit equivalence that lets the pipeline
// route through the columnar layout without changing a single report:
// round-trips against the legacy trace on all eight workloads, bitstream
// word-boundary edges, scalar-vs-SIMD kernel equality under fuzz, and the
// columnar overloads of profiling, decoding and predictor evaluation.
//
//===----------------------------------------------------------------------===//

#include "core/LoopAwareProfiles.h"
#include "core/Machines.h"
#include "core/ScoreKernels.h"
#include "predict/DynamicPredictors.h"
#include "predict/Evaluator.h"
#include "sa/ProfileVerify.h"
#include "trace/Bitstream.h"
#include "trace/ColumnarTrace.h"
#include "trace/TraceFile.h"
#include "workloads/Workload.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <vector>

using namespace bpcr;

namespace {

/// Deterministic random direction stream of \p N bits with taken
/// probability \p Num/\p Den.
std::vector<uint8_t> randomBits(std::mt19937 &Rng, size_t N, unsigned Num = 1,
                                unsigned Den = 2) {
  std::vector<uint8_t> Bits(N);
  for (size_t I = 0; I < N; ++I)
    Bits[I] = (Rng() % Den) < Num ? 1 : 0;
  return Bits;
}

BitstreamBuilder buildStream(const std::vector<uint8_t> &Bits) {
  BitstreamBuilder B;
  for (uint8_t Bit : Bits)
    B.push(Bit != 0);
  return B;
}

/// The tiers the running CPU/build can actually express; requesting an
/// unsupported tier clamps, so only distinct resolved tiers are listed.
std::vector<SimdTier> availableTiers() {
  std::vector<SimdTier> Tiers{SimdTier::Scalar};
  for (SimdTier T : {SimdTier::SSE2, SimdTier::AVX2}) {
    setSimdTierForTest(T);
    if (activeSimdTier() == T)
      Tiers.push_back(T);
  }
  setSimdTierForTest(SimdTier::AVX2); // restore best supported
  return Tiers;
}

/// Restores the best supported tier when a tier-flipping test exits.
struct TierGuard {
  ~TierGuard() { setSimdTierForTest(SimdTier::AVX2); }
};

bool sameProfiles(const ProfileSet &A, const ProfileSet &B) {
  if (A.numBranches() != B.numBranches())
    return false;
  for (uint32_t Id = 0; Id < A.numBranches(); ++Id) {
    const BranchProfile &PA = A.branch(Id);
    const BranchProfile &PB = B.branch(Id);
    if (PA.Outcomes != PB.Outcomes ||
        PA.ResetPositions != PB.ResetPositions ||
        PA.Table.executions() != PB.Table.executions())
      return false;
    const auto &FA = PA.Table.full();
    const auto &FB = PB.Table.full();
    if (FA.size() != FB.size())
      return false;
    for (const auto &[Pattern, Counts] : FA) {
      auto It = FB.find(Pattern);
      if (It == FB.end() || It->second.Taken != Counts.Taken ||
          It->second.NotTaken != Counts.NotTaken)
        return false;
    }
  }
  return true;
}

} // namespace

//===----------------------------------------------------------------------===//
// Round-trips against the legacy trace
//===----------------------------------------------------------------------===//

TEST(ColumnarTrace, RoundTripsAllEightWorkloads) {
  for (const Workload &W : allWorkloads()) {
    Module M1, M2;
    Trace T = traceWorkload(W, 1, M1, 20000);
    ColumnarTrace CT = traceWorkloadColumnar(W, 1, M2, 20000);
    ASSERT_EQ(CT.size(), T.size()) << W.Name;
    EXPECT_TRUE(CT.materialize() == T) << W.Name;
    EXPECT_TRUE(ColumnarTrace::fromEvents(T).materialize() == T) << W.Name;
    EXPECT_TRUE(CT.indexed()) << W.Name;
  }
}

TEST(ColumnarTrace, IndexMatchesPerBranchSubsequence) {
  Module M;
  const Workload &W = allWorkloads()[2]; // compress
  ColumnarTrace CT = traceWorkloadColumnar(W, 1, M, 20000);
  Trace T = CT.materialize();
  ASSERT_TRUE(CT.indexed());
  ASSERT_EQ(CT.numBranches(), M.conditionalBranchCount());
  for (uint32_t Id = 0; Id < CT.numBranches(); ++Id) {
    std::vector<uint8_t> Expected;
    uint64_t Taken = 0;
    for (const BranchEvent &E : T) {
      if (E.BranchId != static_cast<int32_t>(Id))
        continue;
      Expected.push_back(E.Taken ? 1 : 0);
      Taken += E.Taken;
    }
    BranchColumn C = CT.branch(Id);
    ASSERT_EQ(C.Executions, Expected.size()) << "branch " << Id;
    EXPECT_EQ(C.TakenCount, Taken) << "branch " << Id;
    ASSERT_EQ(C.Bits.size(), Expected.size()) << "branch " << Id;
    for (uint64_t I = 0; I < C.Bits.size(); ++I)
      ASSERT_EQ(C.Bits.bit(I), Expected[I] != 0)
          << "branch " << Id << " event " << I;
  }
  EXPECT_EQ(CT.outOfRange(), 0u);
}

TEST(ColumnarTrace, OutOfRangeEventsCountedNotIndexed) {
  ColumnarTrace CT;
  CT.append(0, true);
  CT.append(5, true);  // beyond NumBranches
  CT.append(1, false);
  CT.append(-3, true); // negative
  CT.append(0, false);
  CT.finalize(2);
  EXPECT_EQ(CT.outOfRange(), 2u);
  EXPECT_EQ(CT.branch(0).Executions, 2u);
  EXPECT_EQ(CT.branch(0).TakenCount, 1u);
  EXPECT_EQ(CT.branch(1).Executions, 1u);
  EXPECT_EQ(CT.branch(1).TakenCount, 0u);
  // The raw columns still hold all five events in order.
  EXPECT_EQ(CT.size(), 5u);
  Trace T = CT.materialize();
  EXPECT_EQ(T[1].BranchId, 5);
  EXPECT_EQ(T[3].BranchId, -3);
}

TEST(ColumnarTrace, EmptyAndSingleEventBranches) {
  ColumnarTrace CT;
  CT.appendRun(1, true, 1);
  CT.finalize(3);
  EXPECT_EQ(CT.branch(0).Executions, 0u);
  EXPECT_EQ(CT.branch(0).Bits.size(), 0u);
  EXPECT_EQ(CT.branch(1).Executions, 1u);
  EXPECT_TRUE(CT.branch(1).Bits.bit(0));
  EXPECT_EQ(CT.branch(2).Executions, 0u);

  CT.clear();
  EXPECT_TRUE(CT.empty());
  EXPECT_FALSE(CT.indexed());
  CT.finalize(0);
  EXPECT_EQ(CT.numBranches(), 0u);
  EXPECT_TRUE(CT.materialize().empty());
}

//===----------------------------------------------------------------------===//
// Bitstream word-boundary edges
//===----------------------------------------------------------------------===//

TEST(Bitstream, AppendRunMatchesPushAtWordBoundaries) {
  for (uint64_t N : {0u, 1u, 63u, 64u, 65u, 127u, 128u, 130u}) {
    for (bool Taken : {false, true}) {
      BitstreamBuilder ByPush, ByRun;
      for (uint64_t I = 0; I < N; ++I)
        ByPush.push(Taken);
      ByRun.appendRun(Taken, N);
      ASSERT_EQ(ByRun.size(), N);
      ASSERT_EQ(ByRun.view().numWords(), ByPush.view().numWords());
      for (size_t W = 0; W < ByRun.view().numWords(); ++W)
        ASSERT_EQ(ByRun.view().word(W), ByPush.view().word(W))
            << "N=" << N << " taken=" << Taken << " word " << W;
    }
  }
}

TEST(Bitstream, AppendRunStraddlesWordsFromUnalignedStart) {
  // 5 seed bits, then a 200-bit taken run: covers the partial head word,
  // full middle words and the partial tail word of appendRun.
  BitstreamBuilder ByRun = buildStream({1, 0, 1, 1, 0});
  BitstreamBuilder ByPush = buildStream({1, 0, 1, 1, 0});
  ByRun.appendRun(true, 200);
  for (int I = 0; I < 200; ++I)
    ByPush.push(true);
  ByRun.appendRun(false, 70);
  for (int I = 0; I < 70; ++I)
    ByPush.push(false);
  ASSERT_EQ(ByRun.size(), ByPush.size());
  for (size_t W = 0; W < ByRun.view().numWords(); ++W)
    ASSERT_EQ(ByRun.view().word(W), ByPush.view().word(W)) << "word " << W;
}

TEST(Bitstream, AppendBitsAlignedAndUnaligned) {
  std::mt19937 Rng(7);
  std::vector<uint8_t> Src = randomBits(Rng, 150);
  BitstreamBuilder Source = buildStream(Src);

  BitstreamBuilder Aligned;
  Aligned.appendBits(Source.view()); // whole-word copy path
  ASSERT_EQ(Aligned.size(), Source.size());
  for (uint64_t I = 0; I < Aligned.size(); ++I)
    ASSERT_EQ(Aligned.bit(I), Source.bit(I));

  BitstreamBuilder Unaligned = buildStream({1, 1, 0});
  Unaligned.appendBits(Source.view()); // bit-loop path
  ASSERT_EQ(Unaligned.size(), 3 + Source.size());
  for (uint64_t I = 0; I < Source.size(); ++I)
    ASSERT_EQ(Unaligned.bit(3 + I), Source.bit(I));
}

TEST(Bitstream, TailBitsPastLogicalLengthStayZero) {
  // Kernels read whole tail words, so bits past size() must be zero no
  // matter how the stream was built.
  std::mt19937 Rng(11);
  for (uint64_t N : {1u, 37u, 63u, 65u, 100u}) {
    BitstreamBuilder ByPush = buildStream(randomBits(Rng, N, 9, 10));
    BitstreamBuilder ByRun;
    ByRun.appendRun(true, N);
    for (const BitstreamBuilder *B : {&ByPush, &ByRun}) {
      BitstreamView V = B->view();
      if (V.size() & 63) {
        uint64_t Tail = V.word(V.numWords() - 1) >> (V.size() & 63);
        EXPECT_EQ(Tail, 0u) << "N=" << N;
      }
    }
  }
}

//===----------------------------------------------------------------------===//
// Scalar-vs-SIMD kernel equality (fuzz)
//===----------------------------------------------------------------------===//

TEST(ScoreKernels, PopcountAndConstantScoreMatchScalarOnEveryTier) {
  TierGuard Restore;
  std::mt19937 Rng(23);
  for (SimdTier Tier : availableTiers()) {
    setSimdTierForTest(Tier);
    for (uint64_t N : {0u, 1u, 64u, 100u, 500u, 4096u}) {
      std::vector<uint8_t> Bits = randomBits(Rng, N, 3, 7);
      BitstreamBuilder B = buildStream(Bits);
      uint64_t Taken = popcountBitsScalar(B.view());
      EXPECT_EQ(popcountBits(B.view()), Taken)
          << simdTierName(Tier) << " N=" << N;
      EXPECT_EQ(scoreConstant(B.view(), true), Taken);
      EXPECT_EQ(scoreConstant(B.view(), false), N - Taken);
    }
  }
}

TEST(ScoreKernels, MachineWalkMatchesVirtualReferenceOnEveryTier) {
  TierGuard Restore;
  std::mt19937 Rng(31);
  for (int Round = 0; Round < 20; ++Round) {
    // A random dense machine: nibble successors < NumStates, random
    // per-state predictions. This covers transition tables no real search
    // would build, which is the point of a fuzz reference.
    unsigned NumStates = 1 + Rng() % 16;
    DenseMachine M;
    M.NumStates = static_cast<uint8_t>(NumStates);
    M.Initial = static_cast<uint8_t>(Rng() % NumStates);
    M.PredMask = static_cast<uint16_t>(Rng() & 0xffff);
    for (int Outcome = 0; Outcome < 2; ++Outcome)
      for (unsigned S = 0; S < 16; ++S)
        M.NextTab[Outcome] |=
            static_cast<uint64_t>(Rng() % NumStates) << (S * 4);

    uint64_t N = 1 + Rng() % 700;
    std::vector<uint8_t> Bits = randomBits(Rng, static_cast<size_t>(N));
    BitstreamBuilder B = buildStream(Bits);

    auto Reference = [&](uint64_t Start, uint64_t Len) {
      unsigned S = M.Initial;
      uint64_t Correct = 0;
      for (uint64_t I = Start; I < Start + Len; ++I) {
        bool Taken = Bits[static_cast<size_t>(I)] != 0;
        Correct += M.predictTaken(S) == Taken;
        S = M.next(S, Taken);
      }
      return Correct;
    };

    uint64_t Start = Rng() % (N + 1);
    uint64_t Len = N - Start;
    for (SimdTier Tier : availableTiers()) {
      setSimdTierForTest(Tier);
      EXPECT_EQ(scoreMachine(M, B.view()), Reference(0, N))
          << simdTierName(Tier) << " round " << Round;
      EXPECT_EQ(scoreMachineRange(M, B.view().data(), Start, Len),
                Reference(Start, Len))
          << simdTierName(Tier) << " round " << Round << " start " << Start;
    }
  }
}

TEST(ScoreKernels, BatchScoringEqualsSingleMachineScores) {
  TierGuard Restore;
  std::mt19937 Rng(47);
  for (size_t K : {1u, 2u, 3u, 4u, 5u, 8u, 9u}) {
    std::vector<DenseMachine> Machines(K);
    for (DenseMachine &M : Machines) {
      unsigned NumStates = 1 + Rng() % 16;
      M.NumStates = static_cast<uint8_t>(NumStates);
      M.Initial = static_cast<uint8_t>(Rng() % NumStates);
      M.PredMask = static_cast<uint16_t>(Rng() & 0xffff);
      for (int Outcome = 0; Outcome < 2; ++Outcome)
        for (unsigned S = 0; S < 16; ++S)
          M.NextTab[Outcome] |=
              static_cast<uint64_t>(Rng() % NumStates) << (S * 4);
    }
    std::vector<uint8_t> Bits = randomBits(Rng, 333);
    BitstreamBuilder B = buildStream(Bits);
    for (SimdTier Tier : availableTiers()) {
      setSimdTierForTest(Tier);
      std::vector<uint64_t> Batch(K);
      scoreMachines(Machines.data(), K, B.view(), Batch.data());
      for (size_t I = 0; I < K; ++I)
        EXPECT_EQ(Batch[I], scoreMachine(Machines[I], B.view()))
            << simdTierName(Tier) << " K=" << K << " machine " << I;
    }
  }
}

TEST(ScoreKernels, FillPatternCountsMatchesRecordLoop) {
  TierGuard Restore;
  std::mt19937 Rng(59);
  for (unsigned MaxBits : {1u, 3u, 6u, 9u}) {
    std::vector<uint8_t> Bits = randomBits(Rng, 900, 2, 3);
    BitstreamBuilder B = buildStream(Bits);

    PatternTable ByRecord(MaxBits);
    for (uint8_t Bit : Bits)
      ByRecord.record(Bit != 0);

    for (SimdTier Tier : availableTiers()) {
      setSimdTierForTest(Tier);
      std::vector<uint64_t> Counts(2ull << MaxBits, 0);
      uint32_t FinalHist = fillPatternCounts(B.view().data(), 0, Bits.size(),
                                             MaxBits, 0, Counts.data());
      PatternTable ByFill(MaxBits);
      ByFill.assignCounts(Counts.data(), FinalHist, Bits.size());

      EXPECT_EQ(ByFill.executions(), ByRecord.executions());
      EXPECT_EQ(ByFill.full().size(), ByRecord.full().size());
      for (const auto &[Pattern, C] : ByRecord.full()) {
        auto It = ByFill.full().find(Pattern);
        ASSERT_NE(It, ByFill.full().end())
            << simdTierName(Tier) << " bits=" << MaxBits;
        EXPECT_EQ(It->second.Taken, C.Taken);
        EXPECT_EQ(It->second.NotTaken, C.NotTaken);
      }
      // Recording one more outcome exercises the fast-forwarded history.
      PatternTable ContinueFill = ByFill, ContinueRecord = ByRecord;
      ContinueFill.record(true);
      ContinueRecord.record(true);
      EXPECT_EQ(ContinueFill.countsFor(1, 1).Taken,
                ContinueRecord.countsFor(1, 1).Taken);
    }
  }
}

TEST(ScoreKernels, FillPatternCountsSplitsAcrossCalls) {
  // Two fills that hand the history across the boundary must equal one
  // fill of the whole stream — the property the per-branch batched fill
  // in BranchProfiles relies on.
  std::mt19937 Rng(61);
  std::vector<uint8_t> Bits = randomBits(Rng, 300);
  BitstreamBuilder B = buildStream(Bits);
  const unsigned MaxBits = 5;

  std::vector<uint64_t> Whole(2ull << MaxBits, 0);
  uint32_t WholeHist =
      fillPatternCounts(B.view().data(), 0, Bits.size(), MaxBits, 0,
                        Whole.data());

  std::vector<uint64_t> Split(2ull << MaxBits, 0);
  uint32_t Mid = 117; // deliberately not word-aligned
  uint32_t H = fillPatternCounts(B.view().data(), 0, Mid, MaxBits, 0,
                                 Split.data());
  uint32_t SplitHist = fillPatternCounts(B.view().data(), Mid,
                                         Bits.size() - Mid, MaxBits, H,
                                         Split.data());
  EXPECT_EQ(SplitHist, WholeHist);
  EXPECT_EQ(Split, Whole);
}

TEST(ScoreKernels, DenseEncodeMatchesVirtualMachine) {
  // A real search product, not a fuzz table: fit an exit chain and check
  // the dense encoding agrees with the virtual walk everywhere.
  std::mt19937 Rng(67);
  PatternTable Table(9);
  for (int I = 0; I < 400; ++I)
    Table.record(I % 7 != 0);
  ExitChainMachine Chain = ExitChainMachine::fit(Table, 5, true, true);

  DenseMachine Dense;
  ASSERT_TRUE(denseEncode(Chain, Dense));
  ASSERT_EQ(Dense.NumStates, Chain.numStates());
  ASSERT_EQ(Dense.Initial, Chain.initialState());
  for (unsigned S = 0; S < Chain.numStates(); ++S) {
    EXPECT_EQ(Dense.predictTaken(S), Chain.predictTaken(S)) << "state " << S;
    for (bool Taken : {false, true})
      EXPECT_EQ(Dense.next(S, Taken), Chain.next(S, Taken)) << "state " << S;
  }

  std::vector<uint8_t> Bits = randomBits(Rng, 500, 6, 7);
  BitstreamBuilder B = buildStream(Bits);
  PredictionStats Sim = Chain.simulate(Bits);
  EXPECT_EQ(scoreMachine(Dense, B.view()),
            Sim.Predictions - Sim.Mispredictions);
}

//===----------------------------------------------------------------------===//
// Columnar overloads of the event-path consumers
//===----------------------------------------------------------------------===//

TEST(ColumnarConsumers, LoopAwareProfilesMatchLegacy) {
  for (const char *Name : {"compress", "scheduler", "prolog"}) {
    const Workload *W = nullptr;
    for (const Workload &Cand : allWorkloads())
      if (std::string(Cand.Name) == Name)
        W = &Cand;
    ASSERT_NE(W, nullptr) << Name;
    Module M1, M2;
    Trace T = traceWorkload(*W, 1, M1, 20000);
    ColumnarTrace CT = traceWorkloadColumnar(*W, 1, M2, 20000);
    ProgramAnalysis PA(M1);
    ProfileSet Legacy = buildLoopAwareProfiles(PA, T);
    ProfileSet Columnar = buildLoopAwareProfiles(PA, CT);
    EXPECT_TRUE(sameProfiles(Legacy, Columnar)) << Name;
  }
}

TEST(ColumnarConsumers, ProfileVerifyCountsMatchFromTrace) {
  Module M;
  const Workload &W = allWorkloads()[2]; // compress
  ColumnarTrace CT = traceWorkloadColumnar(W, 1, M, 20000);
  Trace T = CT.materialize();
  size_t NumBranches = M.conditionalBranchCount();
  sa::BranchProfileCounts Legacy =
      sa::BranchProfileCounts::fromTrace(NumBranches, T);
  sa::BranchProfileCounts Columnar =
      sa::BranchProfileCounts::fromColumnar(NumBranches, CT);
  ASSERT_EQ(Columnar.Counts.size(), Legacy.Counts.size());
  EXPECT_EQ(Columnar.OutOfRange, Legacy.OutOfRange);
  for (size_t I = 0; I < Legacy.Counts.size(); ++I) {
    EXPECT_EQ(Columnar.Counts[I].Taken, Legacy.Counts[I].Taken) << I;
    EXPECT_EQ(Columnar.Counts[I].NotTaken, Legacy.Counts[I].NotTaken) << I;
  }

  // fromColumnar also accepts unfinalized traces (the lint path decodes
  // straight into one without finalizing).
  ColumnarTrace Raw = ColumnarTrace::fromEvents(T);
  sa::BranchProfileCounts FromRaw =
      sa::BranchProfileCounts::fromColumnar(NumBranches, Raw);
  EXPECT_EQ(FromRaw.OutOfRange, Legacy.OutOfRange);
  for (size_t I = 0; I < Legacy.Counts.size(); ++I)
    EXPECT_EQ(FromRaw.Counts[I].Taken, Legacy.Counts[I].Taken) << I;
}

TEST(ColumnarConsumers, EvaluatorMatchesLegacy) {
  Module M;
  const Workload &W = allWorkloads()[6]; // scheduler
  ColumnarTrace CT = traceWorkloadColumnar(W, 1, M, 20000);
  Trace T = CT.materialize();

  LastDirectionPredictor Last;
  PredictionStats LegacyStats = evaluatePredictor(Last, T);
  Last.reset();
  PredictionStats ColumnarStats = evaluatePredictor(Last, CT);
  EXPECT_EQ(ColumnarStats.Predictions, LegacyStats.Predictions);
  EXPECT_EQ(ColumnarStats.Mispredictions, LegacyStats.Mispredictions);

  CounterPredictor Counter(2);
  uint32_t NumBranches = M.conditionalBranchCount();
  std::vector<PredictionStats> LegacyPer =
      evaluatePredictorPerBranch(Counter, T, NumBranches);
  Counter.reset();
  std::vector<PredictionStats> ColumnarPer =
      evaluatePredictorPerBranch(Counter, CT, NumBranches);
  ASSERT_EQ(ColumnarPer.size(), LegacyPer.size());
  for (size_t I = 0; I < LegacyPer.size(); ++I) {
    EXPECT_EQ(ColumnarPer[I].Predictions, LegacyPer[I].Predictions) << I;
    EXPECT_EQ(ColumnarPer[I].Mispredictions, LegacyPer[I].Mispredictions)
        << I;
  }
}

TEST(ColumnarConsumers, DecodeTraceColumnarMatchesLegacyDecoder) {
  Module M;
  const Workload &W = allWorkloads()[0]; // abalone
  Trace T = traceWorkload(W, 1, M, 20000);
  std::vector<uint8_t> Buf = encodeTrace(T);

  Trace Legacy;
  ColumnarTrace Columnar;
  std::string LegacyError, ColumnarError;
  ASSERT_TRUE(decodeTrace(Buf, Legacy, LegacyError));
  ASSERT_TRUE(decodeTraceColumnar(Buf, Columnar, ColumnarError));
  EXPECT_TRUE(Columnar.materialize() == Legacy);
  EXPECT_TRUE(Legacy == T);
}

TEST(ColumnarConsumers, DecoderErrorsAreIdenticalAcrossLayouts) {
  Module M;
  Trace T = traceWorkload(allWorkloads()[0], 1, M, 2000);
  std::vector<uint8_t> Good = encodeTrace(T);

  std::vector<std::vector<uint8_t>> Corruptions;
  Corruptions.push_back({});                         // empty
  Corruptions.push_back({'B', 'P', 'C', 'T'});       // header truncated
  {
    std::vector<uint8_t> Bad = Good;
    Bad[0] = 'X'; // bad magic
    Corruptions.push_back(Bad);
  }
  {
    std::vector<uint8_t> Bad = Good;
    Bad[4] = 9; // unsupported version
    Corruptions.push_back(Bad);
  }
  {
    std::vector<uint8_t> Bad = Good;
    Bad.resize(Bad.size() / 2); // truncated mid-group
    Corruptions.push_back(Bad);
  }
  {
    std::vector<uint8_t> Bad = Good;
    Bad.push_back(0); // trailing bytes
    Bad.push_back(0);
    Corruptions.push_back(Bad);
  }

  for (size_t I = 0; I < Corruptions.size(); ++I) {
    Trace LegacyOut;
    ColumnarTrace ColumnarOut;
    std::string LegacyError, ColumnarError;
    bool LegacyOk = decodeTrace(Corruptions[I], LegacyOut, LegacyError);
    bool ColumnarOk =
        decodeTraceColumnar(Corruptions[I], ColumnarOut, ColumnarError);
    EXPECT_EQ(ColumnarOk, LegacyOk) << "corruption " << I;
    EXPECT_EQ(ColumnarError, LegacyError) << "corruption " << I;
    EXPECT_FALSE(LegacyOk) << "corruption " << I;
  }
}
