//===- bench/table1_strategies.cpp - Paper Table 1 ------------------------===//
//
// Part of the bpcr project (Krall, PLDI 1994 reproduction).
//
//===----------------------------------------------------------------------===//
//
// Reproduces Table 1: "misprediction rates of different branch prediction
// strategies in percent", plus the static/executed/improved branch counts.
// Dynamic strategies adapt while streaming the trace; semi-static ones are
// trained and evaluated on the same trace (the paper's methodology).
//
// As an extension, the static heuristics the paper discusses in sec. 2.1
// (Smith's heuristics, Ball-Larus) are reported in a second section.
//
//===----------------------------------------------------------------------===//

#include "bench/BenchCommon.h"

#include "obs/Metrics.h"
#include "predict/DynamicPredictors.h"
#include "predict/Evaluator.h"
#include "predict/SemiStaticPredictors.h"
#include "predict/StaticHeuristics.h"
#include "support/TablePrinter.h"

#include <cctype>
#include <cstdio>
#include <functional>

using namespace bpcr;

namespace {

/// "two level 4K bit" -> "two_level_4k_bit", for gauge names.
std::string metricName(const std::string &Label) {
  std::string Out;
  for (char C : Label)
    Out.push_back(C == ' ' || C == '-' ? '_' : static_cast<char>(
                                                   std::tolower(C)));
  return Out;
}

} // namespace

int main(int Argc, char **Argv) {
  BenchRunOptions Run;
  if (!parseBenchArgs(Argc, Argv, Run))
    return 2;
  std::vector<WorkloadData> Suite = loadSuite(Run.Seed, Run.Events, Run.Jobs);

  TablePrinter Table(
      "Table 1: misprediction rates of different branch prediction "
      "strategies in percent");
  Table.setHeader(suiteHeader("strategy"));

  // Every cell also lands in a gauge (`table1.<strategy>.<workload>`) so
  // the --metrics report feeds the `bpcr compare` regression gate.
  Registry &Obs = Registry::global();
  auto Row = [&](const std::string &Name,
                 const std::function<double(const WorkloadData &)> &Fn) {
    std::vector<std::string> Cells{Name};
    for (const WorkloadData &D : Suite) {
      double V = Fn(D);
      Cells.push_back(formatPercent(V));
      if (Obs.enabled())
        Obs.gauge("table1." + metricName(Name) + "." + D.W->Name).set(V);
    }
    Table.addRow(std::move(Cells));
  };

  // -- Dynamic strategies ------------------------------------------------------
  Row("last direction", [](const WorkloadData &D) {
    LastDirectionPredictor P;
    return evaluatePredictor(P, D.T).mispredictionPercent();
  });
  Row("2 bit counter", [](const WorkloadData &D) {
    CounterPredictor P(2);
    return evaluatePredictor(P, D.T).mispredictionPercent();
  });
  Row("two level 4K bit", [](const WorkloadData &D) {
    TwoLevelPredictor P(TwoLevelConfig::paperDefault());
    return evaluatePredictor(P, D.T).mispredictionPercent();
  });
  Table.addSeparator();

  // -- Semi-static strategies ---------------------------------------------------
  Row("profile", [](const WorkloadData &D) {
    ProfilePredictor P;
    return evaluateSelfTrained(P, D.T).mispredictionPercent();
  });
  Row("1 bit correlation", [](const WorkloadData &D) {
    CorrelationPredictor P(1);
    return evaluateSelfTrained(P, D.T).mispredictionPercent();
  });
  Row("1 bit loop", [](const WorkloadData &D) {
    LoopHistoryPredictor P(1);
    return evaluateSelfTrained(P, D.T).mispredictionPercent();
  });
  Row("9 bit loop", [](const WorkloadData &D) {
    LoopHistoryPredictor P(9);
    return evaluateSelfTrained(P, D.T).mispredictionPercent();
  });
  Row("loop-correlation", [](const WorkloadData &D) {
    LoopCorrelationPredictor P;
    return evaluateSelfTrained(P, D.T).mispredictionPercent();
  });
  Table.addSeparator();

  // -- Branch population --------------------------------------------------------
  {
    std::vector<std::string> Static{"static branches"};
    std::vector<std::string> Executed{"executed branches"};
    std::vector<std::string> Improved{"improved branches"};
    for (const WorkloadData &D : Suite) {
      Static.push_back(std::to_string(D.M->conditionalBranchCount()));
      Executed.push_back(std::to_string(D.Stats->executedBranches()));
      LoopCorrelationPredictor P;
      P.train(D.T);
      Improved.push_back(std::to_string(P.improvedBranchCount()));
      if (Obs.enabled()) {
        std::string Prefix = std::string("table1.branches.") + D.W->Name;
        Obs.gauge(Prefix + ".static")
            .set(static_cast<double>(D.M->conditionalBranchCount()));
        Obs.gauge(Prefix + ".executed")
            .set(static_cast<double>(D.Stats->executedBranches()));
        Obs.gauge(Prefix + ".improved")
            .set(static_cast<double>(P.improvedBranchCount()));
      }
    }
    Table.addRow(std::move(Static));
    Table.addRow(std::move(Executed));
    Table.addRow(std::move(Improved));
  }

  std::printf("%s\n", Table.render().c_str());

  // -- Extension: static heuristics (paper sec. 2.1) ------------------------------
  TablePrinter Ext("Extension: static (no-profile) heuristics, "
                   "misprediction in percent");
  Ext.setHeader(suiteHeader("heuristic"));
  auto StaticRow = [&](const std::string &Name,
                       StaticPredictions (*Fn)(const Module &)) {
    std::vector<std::string> Cells{Name};
    for (const WorkloadData &D : Suite)
      Cells.push_back(formatPercent(
          evaluateStaticPredictions(Fn(*D.M), D.T).mispredictionPercent()));
    Ext.addRow(std::move(Cells));
  };
  StaticRow("always taken", predictAlwaysTaken);
  StaticRow("backward taken", predictBackwardTaken);
  StaticRow("opcode", predictOpcode);
  StaticRow("Ball-Larus", predictBallLarus);
  std::printf("%s\n", Ext.render().c_str());
  return finishBench(Run, "table1_strategies");
}
