//===- bench/ablation_joint.cpp - Ablation A4: joint loop machines --------===//
//
// Part of the bpcr project (Krall, PLDI 1994 reproduction).
//
//===----------------------------------------------------------------------===//
//
// The paper's "Further Work" sec. 6, carried out: when several branches of
// the same loop deserve machines, per-branch replication multiplies the
// copies; a single joint machine over the loop's combined decision history
// pays once. For every workload loop with at least two improvable
// branches, both schemes run for real and the executed programs are
// compared on size and realized misprediction.
//
//===----------------------------------------------------------------------===//

#include "bench/BenchCommon.h"

#include "core/JointMachine.h"
#include "core/MachineSearch.h"
#include "core/Pipeline.h"
#include "ir/Verifier.h"
#include "support/TablePrinter.h"

#include <cstdio>
#include <map>

using namespace bpcr;

namespace {

/// Applies per-branch loop replication for \p Members sequentially (each
/// transform sees the function the previous one produced).
bool applySequential(Module &X, const std::vector<int32_t> &Members,
                     const ProfileSet &Profiles, unsigned MaxStates) {
  for (int32_t Id : Members) {
    // Locate one instance and its innermost loop in the current function.
    uint32_t FuncIdx = UINT32_MAX, BlockIdx = 0;
    for (uint32_t FI = 0; FI < X.Functions.size() && FuncIdx == UINT32_MAX;
         ++FI)
      for (uint32_t BI = 0; BI < X.Functions[FI].Blocks.size(); ++BI) {
        const BasicBlock &BB = X.Functions[FI].Blocks[BI];
        if (BB.isComplete() && BB.terminator().isConditionalBranch() &&
            BB.terminator().OrigBranchId == Id) {
          FuncIdx = FI;
          BlockIdx = BI;
          break;
        }
      }
    if (FuncIdx == UINT32_MAX)
      return false;
    Function &F = X.Functions[FuncIdx];
    CFG G(F);
    Dominators D(G);
    LoopInfo LI(G, D);
    int32_t LIdx = LI.innermostLoop(BlockIdx);
    if (LIdx < 0)
      return false;
    const Loop &L = LI.loops()[static_cast<size_t>(LIdx)];

    MachineOptions MO;
    MO.MaxStates = MaxStates;
    MO.NodeBudget = 20'000;
    SuffixMachine M = buildIntraLoopMachine(Profiles.branch(Id).Table, MO);
    if (!applyLoopReplication(F, L.Blocks, L.Header, Id, M).Applied)
      return false;
  }
  return true;
}

/// Realized misprediction of the member branches in an annotated module.
PredictionStats measureMembers(const Module &M,
                               const std::vector<int32_t> &Members) {
  struct MemberSink : TraceSink {
    explicit MemberSink(const std::vector<int32_t> &Members)
        : Members(Members) {}
    void onBranch(const Instruction &Br, bool Taken) override {
      bool IsMember = false;
      for (int32_t Id : Members)
        IsMember |= (Br.OrigBranchId == Id);
      if (!IsMember)
        return;
      bool Pred = Br.Predicted != Prediction::NotTaken;
      Stats.record(Pred == Taken);
    }
    const std::vector<int32_t> &Members;
    PredictionStats Stats;
  } Sink(Members);
  ExecOptions EO;
  EO.MaxBranchEvents = 1'000'000;
  execute(M, &Sink, EO);
  return Sink.Stats;
}

} // namespace

int main(int Argc, char **Argv) {
  BenchRunOptions Run;
  if (!parseBenchArgs(Argc, Argv, Run))
    return 2;
  std::vector<WorkloadData> Suite = loadSuite(Run.Seed, Run.Events, Run.Jobs);

  TablePrinter Table("Ablation A4: per-branch (product) vs joint loop "
                     "machines — realized member misprediction % and code "
                     "size factor");
  Table.setHeader({"workload", "loop members", "profile %", "per-branch %",
                   "per-branch size", "joint %", "joint size"});

  for (const WorkloadData &D : Suite) {
    // Group improvable intra-loop branches of non-recursive functions by
    // their innermost loop.
    std::map<std::pair<uint32_t, int32_t>, std::vector<int32_t>> Groups;
    for (uint32_t Id = 0; Id < D.PA->numBranches(); ++Id) {
      const BranchClass &C = D.PA->classOf(static_cast<int32_t>(Id));
      if (C.Kind != BranchKind::IntraLoop)
        continue;
      if (D.PA->isRecursive(D.PA->ref(static_cast<int32_t>(Id)).FuncIdx))
        continue;
      const BranchProfile &P = D.LoopAware->branch(static_cast<int32_t>(Id));
      if (P.executions() < 1000)
        continue;
      MachineOptions MO;
      MO.MaxStates = 4;
      MO.NodeBudget = 20'000;
      SuffixMachine M = buildIntraLoopMachine(P.Table, MO);
      uint64_t ProfCorrect = P.executions() - P.profileMispredictions();
      if (M.Correct <= ProfCorrect)
        continue;
      Groups[{D.PA->ref(static_cast<int32_t>(Id)).FuncIdx, C.LoopIdx}]
          .push_back(static_cast<int32_t>(Id));
    }

    // Pick the group with the most members (>= 2).
    const std::vector<int32_t> *Best = nullptr;
    for (const auto &[Key, Members] : Groups)
      if (Members.size() >= 2 && (!Best || Members.size() > Best->size()))
        Best = &Members;
    if (!Best) {
      Table.addRow({D.W->Name, "-", "-", "-", "-", "-", "-"});
      continue;
    }
    const std::vector<int32_t> &Members = *Best;

    uint64_t ProfMiss = 0, Exec = 0;
    for (int32_t Id : Members) {
      ProfMiss += D.LoopAware->branch(Id).profileMispredictions();
      Exec += D.LoopAware->branch(Id).executions();
    }

    TraceStats Stats(D.PA->numBranches());
    Stats.addTrace(D.T);

    // Per-branch sequential replication (4-state machines each).
    Module Seq = *D.M;
    double SeqRate = -1, SeqSize = -1;
    if (applySequential(Seq, Members, *D.LoopAware, 4) &&
        verifyModule(Seq).empty()) {
      annotateProfilePredictions(Seq, Stats);
      SeqRate = measureMembers(Seq, Members).mispredictionPercent();
      SeqSize = static_cast<double>(Seq.instructionCount()) /
                static_cast<double>(D.M->instructionCount());
    }

    // Joint machine with as many states as the per-branch product.
    unsigned JointBudget = 1;
    for (size_t I = 0; I < Members.size(); ++I)
      JointBudget *= 4;
    JointBudget = std::min(JointBudget, 16u);
    Module Jnt = *D.M;
    double JntRate = -1, JntSize = -1;
    {
      JointProfile JP = profileJointLoop(*D.PA, Members, D.T, 4);
      JointOptions JO;
      JO.MaxStates = JointBudget;
      JO.MaxLen = 4;
      JO.NodeBudget = 50'000;
      JointLoopMachine JM = buildJointLoopMachine(Members, JP, JO);
      const BranchClass &C = D.PA->classOf(Members[0]);
      const Loop &L = D.PA->loopInfoFor(Members[0])
                          .loops()[static_cast<size_t>(C.LoopIdx)];
      uint32_t FuncIdx = D.PA->ref(Members[0]).FuncIdx;
      if (applyJointLoopReplication(Jnt.Functions[FuncIdx], L.Blocks,
                                    L.Header, JM)
              .Applied &&
          verifyModule(Jnt).empty()) {
        annotateProfilePredictions(Jnt, Stats);
        JntRate = measureMembers(Jnt, Members).mispredictionPercent();
        JntSize = static_cast<double>(Jnt.instructionCount()) /
                  static_cast<double>(D.M->instructionCount());
      }
    }

    auto Fmt = [](double V, bool Percent) -> std::string {
      if (V < 0)
        return "-";
      char Buf[32];
      std::snprintf(Buf, sizeof(Buf), Percent ? "%.1f" : "%.2fx", V);
      return Buf;
    };
    Table.addRow({D.W->Name, std::to_string(Members.size()),
                  formatPercent(100.0 * static_cast<double>(ProfMiss) /
                                static_cast<double>(Exec)),
                  Fmt(SeqRate, true), Fmt(SeqSize, false), Fmt(JntRate, true),
                  Fmt(JntSize, false)});
  }

  std::printf("%s\n", Table.render().c_str());
  std::printf("Joint machines pay one set of copies for all member "
              "branches; per-branch machines multiply (paper sec. 6).\n\n");
  return finishBench(Run, "ablation_joint");
}
