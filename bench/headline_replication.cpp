//===- bench/headline_replication.cpp - The paper's headline claim --------===//
//
// Part of the bpcr project (Krall, PLDI 1994 reproduction).
//
//===----------------------------------------------------------------------===//
//
// End-to-end validation of the abstract's claim: "the [misprediction rate]
// can almost be halved while the [code size] is increased by one third."
//
// For every benchmark the full pipeline runs (profile -> per-branch
// strategy selection -> code replication -> profile annotation of the
// rest), the replicated program is EXECUTED, and its realized semi-static
// misprediction rate is compared against the profile-annotated original.
// This is a real measurement on the transformed program, not a table-based
// estimate.
//
//===----------------------------------------------------------------------===//

#include "bench/BenchCommon.h"

#include "core/Pipeline.h"
#include "core/Replication.h"
#include "ir/Verifier.h"
#include "obs/Metrics.h"
#include "obs/Report.h"
#include "support/TablePrinter.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>

using namespace bpcr;

namespace {

/// Runs the pipeline over the suite at one size budget and prints the
/// resulting table.
void runRegime(const std::vector<WorkloadData> &Suite, double SizeBudget,
               uint64_t MaxEvents, unsigned Jobs) {
  char Title[128];
  std::snprintf(Title, sizeof(Title),
                "Headline: realized semi-static misprediction of the "
                "replicated programs (size budget %.2fx)",
                SizeBudget);
  TablePrinter Table(Title);
  Table.setHeader(suiteHeader("metric"));

  std::vector<std::string> ProfRow{"profile only (%)"};
  std::vector<std::string> ReplRow{"replicated (%)"};
  std::vector<std::string> RatioRow{"mispred ratio"};
  std::vector<std::string> SizeRow{"code size factor"};
  std::vector<std::string> LoopRow{"loop replications"};
  std::vector<std::string> JointRow{"joint replications"};
  std::vector<std::string> CorrRow{"corr replications"};

  double GeoRatio = 1.0;
  double MeanSize = 0.0;

  for (const WorkloadData &D : Suite) {
    PipelineOptions Opts;
    Opts.Strategy.MaxStates = 6;
    Opts.Strategy.NodeBudget = 30'000;
    Opts.Strategy.Jobs = Jobs;
    Opts.MaxSizeFactor = SizeBudget;
    PipelineResult PR = replicateModule(*D.M, D.T, Opts);
    if (!verifyModule(PR.Transformed).empty()) {
      std::printf("INVALID transformed module for %s\n", D.W->Name);
      std::exit(1);
    }

    ExecOptions EO;
    EO.MaxBranchEvents = MaxEvents;
    Module P = *D.M;
    annotateProfilePredictions(P, *D.Stats);
    PredictionStats Prof = measureAnnotatedPredictions(P, EO);
    PredictionStats Repl = measureAnnotatedPredictions(PR.Transformed, EO);

    double Ratio = Prof.Mispredictions
                       ? static_cast<double>(Repl.Mispredictions) /
                             static_cast<double>(Prof.Mispredictions)
                       : 1.0;
    GeoRatio *= Ratio;
    MeanSize += PR.sizeFactor();

    // Per-workload trajectory gauges for the BENCH_*.json report.
    char Prefix[96];
    std::snprintf(Prefix, sizeof(Prefix), "headline.budget_%.2f.%s",
                  SizeBudget, D.W->Name);
    Registry &Obs = Registry::global();
    Obs.gauge(std::string(Prefix) + ".mispred_ratio").set(Ratio);
    Obs.gauge(std::string(Prefix) + ".mispred_pct")
        .set(Repl.mispredictionPercent());
    Obs.gauge(std::string(Prefix) + ".size_factor").set(PR.sizeFactor());
    // Concentration of the remaining misprediction cost: the share owed to
    // the single costliest branch, straight from the attribution ledger.
    if (!PR.Attribution.empty()) {
      auto Top1 = PR.Attribution.topByMispredictions(1);
      uint64_t TotalMiss = PR.Attribution.totalMispredictions();
      double Share = (TotalMiss && !Top1.empty())
                         ? static_cast<double>(Top1[0]->Mispredictions) /
                               static_cast<double>(TotalMiss)
                         : 0.0;
      Obs.gauge(std::string(Prefix) + ".top1_mispred_share").set(Share);
    }

    char Buf[32];
    ProfRow.push_back(formatPercent(Prof.mispredictionPercent()));
    ReplRow.push_back(formatPercent(Repl.mispredictionPercent()));
    std::snprintf(Buf, sizeof(Buf), "%.2f", Ratio);
    RatioRow.push_back(Buf);
    std::snprintf(Buf, sizeof(Buf), "%.2f", PR.sizeFactor());
    SizeRow.push_back(Buf);
    LoopRow.push_back(std::to_string(PR.LoopReplications));
    JointRow.push_back(std::to_string(PR.JointReplications));
    CorrRow.push_back(std::to_string(PR.CorrelatedReplications));
  }

  Table.addRow(std::move(ProfRow));
  Table.addRow(std::move(ReplRow));
  Table.addRow(std::move(RatioRow));
  Table.addSeparator();
  Table.addRow(std::move(SizeRow));
  Table.addRow(std::move(LoopRow));
  Table.addRow(std::move(JointRow));
  Table.addRow(std::move(CorrRow));
  std::printf("%s\n", Table.render().c_str());

  GeoRatio = std::pow(GeoRatio, 1.0 / static_cast<double>(Suite.size()));
  MeanSize /= static_cast<double>(Suite.size());
  std::printf("Suite geometric-mean misprediction ratio: %.2f "
              "(paper: ~0.5, 'almost halved')\n",
              GeoRatio);
  std::printf("Suite mean code size factor: %.2f (paper: ~1.33, "
              "'increased by one third')\n\n",
              MeanSize);

  char Prefix[64];
  std::snprintf(Prefix, sizeof(Prefix), "headline.budget_%.2f",
                SizeBudget);
  Registry &Obs = Registry::global();
  Obs.gauge(std::string(Prefix) + ".geomean_mispred_ratio").set(GeoRatio);
  Obs.gauge(std::string(Prefix) + ".mean_size_factor").set(MeanSize);
}

} // namespace

int main(int Argc, char **Argv) {
  BenchRunOptions Run;
  if (!parseBenchArgs(Argc, Argv, Run))
    return 2;
  // Collect phase timers, interpreter throughput and the per-workload
  // headline numbers into one machine-readable run report. The legacy
  // positional output path is kept for callers that predate --metrics.
  Registry::global().setEnabled(true);
  if (Run.MetricsOut.empty())
    Run.MetricsOut = Argc > 1 ? Argv[1] : "BENCH_headline_replication.json";

  std::vector<WorkloadData> Suite = loadSuite(Run.Seed, Run.Events, Run.Jobs);
  // The paper's regime ("code size increased by one third") and a looser
  // budget showing the remaining headroom.
  runRegime(Suite, 1.35, Run.Events, Run.Jobs);
  runRegime(Suite, 2.0, Run.Events, Run.Jobs);

  return finishBench(Run, "headline_replication");
}
