//===- bench/fig_code_size.cpp - Paper Figures 6-13 -----------------------===//
//
// Part of the bpcr project (Krall, PLDI 1994 reproduction).
//
//===----------------------------------------------------------------------===//
//
// Reproduces the appendix figures ("Misprediction Rate vs. Code Size",
// figures 6-13, one per benchmark): the greedy sweep adds machine states in
// the order that buys the most correct predictions per added instruction
// and reports the (size factor, misprediction %) curve. Each curve is also
// written as fig_<benchmark>.csv for plotting.
//
// Expected shape (paper sec. 5): "The first states reduce the misprediction
// rate substantially, later ones increase the [code size] considerably. ...
// every program comes close to the best achievable by increasing the [size]
// by less than 30%" (except abalone).
//
//===----------------------------------------------------------------------===//

#include "bench/BenchCommon.h"

#include "core/SizeSweep.h"
#include "support/Csv.h"
#include "support/TablePrinter.h"

#include <cstdio>

using namespace bpcr;

int main(int Argc, char **Argv) {
  BenchRunOptions Run;
  if (!parseBenchArgs(Argc, Argv, Run))
    return 2;
  std::vector<WorkloadData> Suite = loadSuite(Run.Seed, Run.Events, Run.Jobs);

  // Compute every curve first (the sweeps themselves also fan their
  // per-branch ladders over Run.Jobs workers), then render serially so the
  // figure order never depends on timing.
  std::vector<std::vector<SweepPoint>> Curves(Suite.size());
  for (size_t WI = 0; WI < Suite.size(); ++WI) {
    SweepOptions Opts;
    Opts.MaxStates = 8;
    Opts.MaxSizeFactor = 16.0;
    Opts.NodeBudget = 30'000;
    Opts.Jobs = Run.Jobs;
    Curves[WI] =
        computeSizeSweep(*Suite[WI].PA, *Suite[WI].LoopAware, Suite[WI].T,
                         Opts);
  }

  for (size_t WI = 0; WI < Suite.size(); ++WI) {
    const WorkloadData &D = Suite[WI];
    const std::vector<SweepPoint> &Points = Curves[WI];

    TablePrinter Table("Figure " + std::to_string(6 + WI) + ": " +
                       D.W->Name + " — misprediction rate vs. code size");
    Table.setHeader({"step", "size factor", "mispredict %", "grown branch",
                     "states"});
    CsvWriter Csv;
    Csv.addRow({"size_factor", "mispredict_percent", "branch", "states"});
    for (size_t I = 0; I < Points.size(); ++I) {
      const SweepPoint &P = Points[I];
      char SF[32];
      std::snprintf(SF, sizeof(SF), "%.3f", P.SizeFactor);
      Table.addRow({std::to_string(I), SF,
                    formatPercent(P.MispredictPercent),
                    P.BranchId < 0 ? "-" : std::to_string(P.BranchId),
                    std::to_string(P.NewStates)});
      Csv.addRow({SF, formatPercent(P.MispredictPercent),
                  std::to_string(P.BranchId), std::to_string(P.NewStates)});
    }
    std::printf("%s\n", Table.render().c_str());

    std::string CsvPath = "fig_" + std::string(D.W->Name) + ".csv";
    if (Csv.writeFile(CsvPath))
      std::printf("  (series written to %s)\n\n", CsvPath.c_str());

    if (Points.size() >= 2) {
      double Start = Points.front().MispredictPercent;
      double End = Points.back().MispredictPercent;
      // Find the point where misprediction first comes within 10% of the
      // final rate — the "knee" the paper highlights.
      for (const SweepPoint &P : Points) {
        if (P.MispredictPercent <= End + 0.1 * (Start - End)) {
          std::printf("  knee: %.1f%% -> %.1f%% of %.1f%% final, at size "
                      "factor %.2f\n\n",
                      Start, P.MispredictPercent, End, P.SizeFactor);
          break;
        }
      }
    }
  }
  return finishBench(Run, "fig_code_size");
}
