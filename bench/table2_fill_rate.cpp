//===- bench/table2_fill_rate.cpp - Paper Table 2 -------------------------===//
//
// Part of the bpcr project (Krall, PLDI 1994 reproduction).
//
//===----------------------------------------------------------------------===//
//
// Reproduces Table 2: "fill rate of the history tables in percent" — what
// fraction of the 2^k per-branch pattern-table entries of the executed
// branches were actually used, for history lengths 1..9. The sparsity shown
// here is the paper's justification for compacting the tables into small
// state machines.
//
//===----------------------------------------------------------------------===//

#include "bench/BenchCommon.h"

#include "support/TablePrinter.h"

#include <cstdio>

using namespace bpcr;

int main(int Argc, char **Argv) {
  BenchRunOptions Run;
  if (!parseBenchArgs(Argc, Argv, Run))
    return 2;
  std::vector<WorkloadData> Suite = loadSuite(Run.Seed, Run.Events, Run.Jobs);

  TablePrinter Table("Table 2: fill rate of the history tables in percent");
  Table.setHeader(suiteHeader("history"));

  for (unsigned Bits = 1; Bits <= 9; ++Bits) {
    std::vector<std::string> Cells{std::to_string(Bits) + " bit history"};
    for (const WorkloadData &D : Suite)
      Cells.push_back(formatPercent(D.Plain->fillRatePercent(Bits)));
    Table.addRow(std::move(Cells));
  }

  std::printf("%s\n", Table.render().c_str());
  return finishBench(Run, "table2_fill_rate");
}
