//===- bench/BenchCommon.h - Shared benchmark driver ------------*- C++ -*-===//
//
// Part of the bpcr project (Krall, PLDI 1994 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Shared setup for the table/figure reproduction binaries: build and trace
/// the eight-benchmark suite (capped at one million branch events, like the
/// paper) and precompute the per-branch analyses everything consumes.
///
//===----------------------------------------------------------------------===//

#ifndef BPCR_BENCH_BENCHCOMMON_H
#define BPCR_BENCH_BENCHCOMMON_H

#include "core/BranchProfiles.h"
#include "core/LoopAwareProfiles.h"
#include "core/ProgramAnalysis.h"
#include "trace/TraceStats.h"
#include "workloads/Workload.h"

#include <memory>
#include <string>
#include <vector>

namespace bpcr {

/// One traced benchmark with its analyses. The Module lives behind a
/// unique_ptr so ProgramAnalysis' reference into it survives moves of this
/// struct.
struct WorkloadData {
  const Workload *W = nullptr;
  std::unique_ptr<Module> M;
  Trace T;
  std::unique_ptr<ProgramAnalysis> PA;
  /// Whole-trace profiles: unbounded software history (Tables 1/2).
  std::unique_ptr<ProfileSet> Plain;
  /// Loop-aware profiles: history resets on loop re-entry, matching what
  /// replication realizes (Tables 3/5, figures).
  std::unique_ptr<ProfileSet> LoopAware;
  std::unique_ptr<TraceStats> Stats;
};

/// Traces the whole suite. \p MaxEvents mirrors the paper's 1M-branch cap.
/// \p Jobs fans the independent per-workload trace+analysis pipelines over
/// a worker pool (0 = one per hardware core, 1 = serial); the result is
/// identical for every value.
std::vector<WorkloadData> loadSuite(uint64_t Seed = 1,
                                    uint64_t MaxEvents = 1'000'000,
                                    unsigned Jobs = 1);

/// Short column headers in the paper's order.
std::vector<std::string> suiteHeader(const std::string &RowLabel);

/// Flags shared by every bench binary: `--seed N`, `--events N`,
/// `--jobs N` (worker threads; 0 = hardware concurrency, 1 = serial),
/// `--metrics FILE` (JSON run report), `--ledger FILE` (append one record
/// to the cross-run ledger, obs/Ledger.h) and `--trace-out FILE` (Chrome
/// Trace span timeline). The report and ledger destinations also fall back
/// to $BPCR_METRICS_OUT / $BPCR_LEDGER_OUT so CI can arm every bench via
/// the environment. CI uses the seed/event knobs to run the benches on a
/// small budget, the report for the `bpcr compare` regression gate, and
/// the ledger for `bpcr trend`.
struct BenchRunOptions {
  uint64_t Seed = 1;
  uint64_t Events = 1'000'000;
  /// True when --events was given (runners with a different default budget,
  /// like micro_throughput's sweep modes, honor an explicit value only).
  bool EventsSet = false;
  unsigned Jobs = 0;
  std::string MetricsOut;
  std::string LedgerOut;
  std::string TraceOut;
};

/// Parses and splices the shared flags out of argv (positional arguments
/// are left for the caller), enabling the metrics registry and the span
/// tracer as requested. With \p KeepUnknown, unrecognized `--` options are
/// kept in argv for the caller (micro_throughput forwards them to
/// google-benchmark) instead of being an error. \returns false after
/// printing an error message.
bool parseBenchArgs(int &Argc, char **Argv, BenchRunOptions &Opts,
                    bool KeepUnknown = false);

/// Writes the requested run report, appends it to the run ledger and
/// finishes the span trace. \p Command/\p Workload fill the corresponding
/// report and ledger metadata fields. \returns a process exit code (0 ok).
int finishBench(const BenchRunOptions &Opts, const char *Tool,
                const char *Command = "bench", const char *Workload = "");

} // namespace bpcr

#endif // BPCR_BENCH_BENCHCOMMON_H
