//===- bench/BenchCommon.h - Shared benchmark driver ------------*- C++ -*-===//
//
// Part of the bpcr project (Krall, PLDI 1994 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Shared setup for the table/figure reproduction binaries: build and trace
/// the eight-benchmark suite (capped at one million branch events, like the
/// paper) and precompute the per-branch analyses everything consumes.
///
//===----------------------------------------------------------------------===//

#ifndef BPCR_BENCH_BENCHCOMMON_H
#define BPCR_BENCH_BENCHCOMMON_H

#include "core/BranchProfiles.h"
#include "core/LoopAwareProfiles.h"
#include "core/ProgramAnalysis.h"
#include "trace/TraceStats.h"
#include "workloads/Workload.h"

#include <memory>
#include <string>
#include <vector>

namespace bpcr {

/// One traced benchmark with its analyses. The Module lives behind a
/// unique_ptr so ProgramAnalysis' reference into it survives moves of this
/// struct.
struct WorkloadData {
  const Workload *W = nullptr;
  std::unique_ptr<Module> M;
  Trace T;
  std::unique_ptr<ProgramAnalysis> PA;
  /// Whole-trace profiles: unbounded software history (Tables 1/2).
  std::unique_ptr<ProfileSet> Plain;
  /// Loop-aware profiles: history resets on loop re-entry, matching what
  /// replication realizes (Tables 3/5, figures).
  std::unique_ptr<ProfileSet> LoopAware;
  std::unique_ptr<TraceStats> Stats;
};

/// Traces the whole suite. \p MaxEvents mirrors the paper's 1M-branch cap.
std::vector<WorkloadData> loadSuite(uint64_t Seed = 1,
                                    uint64_t MaxEvents = 1'000'000);

/// Short column headers in the paper's order.
std::vector<std::string> suiteHeader(const std::string &RowLabel);

} // namespace bpcr

#endif // BPCR_BENCH_BENCHCOMMON_H
