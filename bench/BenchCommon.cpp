//===- bench/BenchCommon.cpp ----------------------------------------------===//
//
// Part of the bpcr project (Krall, PLDI 1994 reproduction).
//
//===----------------------------------------------------------------------===//

#include "bench/BenchCommon.h"

#include "obs/Ledger.h"
#include "obs/Metrics.h"
#include "obs/Report.h"
#include "obs/TraceSpans.h"
#include "support/ThreadPool.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>

using namespace bpcr;

std::vector<WorkloadData> bpcr::loadSuite(uint64_t Seed, uint64_t MaxEvents,
                                          unsigned Jobs) {
  const std::vector<Workload> &Suite = allWorkloads();
  std::vector<WorkloadData> Out(Suite.size());
  // Each workload's trace+analysis pipeline is independent; slots are
  // indexed by suite position, so the output order never depends on the
  // worker count.
  parallelForJobs(Jobs, Suite.size(), [&](size_t I) {
    const Workload &W = Suite[I];
    WorkloadData D;
    D.W = &W;
    D.M = std::make_unique<Module>();
    D.T = traceWorkload(W, Seed, *D.M, MaxEvents);
    D.PA = std::make_unique<ProgramAnalysis>(*D.M);
    D.Plain = std::make_unique<ProfileSet>(D.PA->numBranches());
    D.Plain->addTrace(D.T);
    D.LoopAware =
        std::make_unique<ProfileSet>(buildLoopAwareProfiles(*D.PA, D.T));
    D.Stats = std::make_unique<TraceStats>(D.PA->numBranches());
    D.Stats->addTrace(D.T);
    Out[I] = std::move(D);
  });
  return Out;
}

std::vector<std::string> bpcr::suiteHeader(const std::string &RowLabel) {
  std::vector<std::string> H{RowLabel};
  for (const Workload &W : allWorkloads())
    H.push_back(W.Name);
  return H;
}

bool bpcr::parseBenchArgs(int &Argc, char **Argv, BenchRunOptions &Opts,
                          bool KeepUnknown) {
  std::string Error;
  if (!extractTraceOutFlag(Argc, Argv, Opts.TraceOut, Error)) {
    std::fprintf(stderr, "%s: error: %s\n", Argv[0], Error.c_str());
    return false;
  }

  auto ParseU64 = [](const char *V, uint64_t &Out) {
    char *End = nullptr;
    Out = std::strtoull(V, &End, 10);
    return *V != '\0' && End && *End == '\0';
  };

  int Kept = 1;
  for (int I = 1; I < Argc; ++I) {
    const char *Opt = Argv[I];
    auto Next = [&]() -> const char * {
      return (I + 1 < Argc) ? Argv[++I] : nullptr;
    };
    if (std::strcmp(Opt, "--seed") == 0) {
      const char *V = Next();
      if (!V || !ParseU64(V, Opts.Seed)) {
        std::fprintf(stderr,
                     "%s: error: option '--seed' needs an integer value\n",
                     Argv[0]);
        return false;
      }
    } else if (std::strcmp(Opt, "--events") == 0) {
      const char *V = Next();
      if (!V || !ParseU64(V, Opts.Events)) {
        std::fprintf(stderr,
                     "%s: error: option '--events' needs an integer value\n",
                     Argv[0]);
        return false;
      }
      Opts.EventsSet = true;
    } else if (std::strcmp(Opt, "--jobs") == 0) {
      const char *V = Next();
      uint64_t Jobs = 0;
      if (!V || !ParseU64(V, Jobs) || Jobs == 0 || Jobs > 1024) {
        std::fprintf(stderr,
                     "%s: error: option '--jobs' needs an integer value "
                     "between 1 and 1024\n",
                     Argv[0]);
        return false;
      }
      Opts.Jobs = static_cast<unsigned>(Jobs);
    } else if (std::strcmp(Opt, "--metrics") == 0) {
      const char *V = Next();
      if (!V) {
        std::fprintf(stderr,
                     "%s: error: option '--metrics' needs a file argument\n",
                     Argv[0]);
        return false;
      }
      Opts.MetricsOut = V;
    } else if (std::strcmp(Opt, "--ledger") == 0) {
      const char *V = Next();
      if (!V) {
        std::fprintf(stderr,
                     "%s: error: option '--ledger' needs a file argument\n",
                     Argv[0]);
        return false;
      }
      Opts.LedgerOut = V;
    } else if (Opt[0] == '-' && Opt[1] == '-') {
      if (KeepUnknown) {
        // Forwarded verbatim (google-benchmark flags like
        // --benchmark_filter carry their value after '=').
        Argv[Kept++] = Argv[I];
        continue;
      }
      std::fprintf(stderr, "%s: error: unknown option '%s'\n", Argv[0], Opt);
      return false;
    } else {
      // Positional argument (e.g. headline_replication's output path):
      // leave it for the caller.
      Argv[Kept++] = Argv[I];
    }
  }
  Argc = Kept;

  // Environment fallbacks let CI arm every bench invocation of a job
  // without threading flags through each runner's command line.
  if (Opts.MetricsOut.empty())
    if (const char *Env = std::getenv("BPCR_METRICS_OUT"))
      Opts.MetricsOut = Env;
  if (Opts.LedgerOut.empty())
    if (const char *Env = std::getenv("BPCR_LEDGER_OUT"))
      Opts.LedgerOut = Env;

  if (!Opts.MetricsOut.empty() || !Opts.LedgerOut.empty())
    Registry::global().setEnabled(true);
  return true;
}

int bpcr::finishBench(const BenchRunOptions &Opts, const char *Tool,
                      const char *Command, const char *Workload) {
  int RC = 0;
  if (!Opts.MetricsOut.empty() || !Opts.LedgerOut.empty()) {
    ReportMeta Meta;
    Meta.Tool = Tool;
    Meta.Command = Command;
    Meta.Workload = Workload;
    Meta.Seed = Opts.Seed;
    Meta.Events = Opts.Events;
    JsonValue Doc = buildReport(Meta, Registry::global());
    std::string Error;
    if (!Opts.MetricsOut.empty()) {
      if (!writeReportFile(Opts.MetricsOut, Doc, Error)) {
        std::fprintf(stderr, "%s: error: %s\n", Tool, Error.c_str());
        RC = 1;
      } else {
        std::printf("wrote metrics to %s\n", Opts.MetricsOut.c_str());
      }
    }
    if (!Opts.LedgerOut.empty()) {
      LedgerMeta LM = currentLedgerMeta();
      LM.Jobs = Opts.Jobs;
      if (!appendReportToLedger(Opts.LedgerOut, Doc, LM, Error)) {
        std::fprintf(stderr, "%s: error: %s\n", Tool, Error.c_str());
        RC = 1;
      } else {
        std::printf("appended run record to %s\n", Opts.LedgerOut.c_str());
      }
    }
  }
  if (!Opts.TraceOut.empty()) {
    int TraceRC = finishSpanTrace(Opts.TraceOut, Tool);
    if (RC == 0)
      RC = TraceRC;
  }
  return RC;
}
