//===- bench/BenchCommon.cpp ----------------------------------------------===//
//
// Part of the bpcr project (Krall, PLDI 1994 reproduction).
//
//===----------------------------------------------------------------------===//

#include "bench/BenchCommon.h"

using namespace bpcr;

std::vector<WorkloadData> bpcr::loadSuite(uint64_t Seed, uint64_t MaxEvents) {
  std::vector<WorkloadData> Out;
  for (const Workload &W : allWorkloads()) {
    WorkloadData D;
    D.W = &W;
    D.M = std::make_unique<Module>();
    D.T = traceWorkload(W, Seed, *D.M, MaxEvents);
    D.PA = std::make_unique<ProgramAnalysis>(*D.M);
    D.Plain = std::make_unique<ProfileSet>(D.PA->numBranches());
    D.Plain->addTrace(D.T);
    D.LoopAware =
        std::make_unique<ProfileSet>(buildLoopAwareProfiles(*D.PA, D.T));
    D.Stats = std::make_unique<TraceStats>(D.PA->numBranches());
    D.Stats->addTrace(D.T);
    Out.push_back(std::move(D));
  }
  return Out;
}

std::vector<std::string> bpcr::suiteHeader(const std::string &RowLabel) {
  std::vector<std::string> H{RowLabel};
  for (const Workload &W : allWorkloads())
    H.push_back(W.Name);
  return H;
}
