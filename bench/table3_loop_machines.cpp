//===- bench/table3_loop_machines.cpp - Paper Table 3 ---------------------===//
//
// Part of the bpcr project (Krall, PLDI 1994 reproduction).
//
//===----------------------------------------------------------------------===//
//
// Reproduces Table 3: "misprediction rates of loop and loop exit branches
// in percent". For each history length k the paper groups three rows:
//
//   "k bit"            the full k-bit local history table over all loop
//                      branches (intra + exit) — the accuracy ceiling,
//   "k+1 states loop"  the best (k+1)-state intra-loop suffix machine,
//                      over intra-loop branches,
//   "k+1 states exit"  the best (k+1)-state loop-exit chain machine, over
//                      loop-exit branches,
//
// "so we grouped always a history with n bits with a n+1 state machine to
// show the effect of accuracy loss". A leading profile row gives the
// single-state baseline. Loop-aware profiles are used throughout: the
// history a replicated loop can carry resets on loop re-entry.
//
//===----------------------------------------------------------------------===//

#include "bench/BenchCommon.h"

#include "core/MachineSearch.h"
#include "support/TablePrinter.h"

#include <cstdio>

using namespace bpcr;

namespace {

/// Accumulates (mispredicted, total) over a subset of branches.
struct RateAcc {
  uint64_t Miss = 0;
  uint64_t Total = 0;

  void add(uint64_t M, uint64_t T) {
    Miss += M;
    Total += T;
  }

  std::string percent() const {
    if (Total == 0)
      return "-";
    return formatPercent(100.0 * static_cast<double>(Miss) /
                         static_cast<double>(Total));
  }
};

} // namespace

int main(int Argc, char **Argv) {
  BenchRunOptions Run;
  if (!parseBenchArgs(Argc, Argv, Run))
    return 2;
  std::vector<WorkloadData> Suite = loadSuite(Run.Seed, Run.Events, Run.Jobs);

  TablePrinter Table("Table 3: misprediction rates of loop and loop exit "
                     "branches in percent");
  Table.setHeader(suiteHeader("strategy"));

  // Profile baselines per population, so the machine rows are comparable.
  auto ProfileRow = [&](const char *Label, BranchKind Wanted, bool All) {
    std::vector<std::string> Cells{Label};
    for (const WorkloadData &D : Suite) {
      RateAcc Acc;
      for (uint32_t Id = 0; Id < D.PA->numBranches(); ++Id) {
        const BranchClass &C = D.PA->classOf(static_cast<int32_t>(Id));
        if (C.Kind == BranchKind::NonLoop)
          continue;
        if (!All && C.Kind != Wanted)
          continue;
        const BranchProfile &P =
            D.LoopAware->branch(static_cast<int32_t>(Id));
        Acc.add(P.profileMispredictions(), P.executions());
      }
      Cells.push_back(Acc.percent());
    }
    Table.addRow(std::move(Cells));
  };
  ProfileRow("profile (loop branches)", BranchKind::NonLoop, /*All=*/true);
  ProfileRow("profile (intra only)", BranchKind::IntraLoop, /*All=*/false);
  ProfileRow("profile (exit only)", BranchKind::LoopExit, /*All=*/false);
  Table.addSeparator();

  for (unsigned K = 1; K <= 8; ++K) {
    // Full k-bit history table over all loop branches.
    {
      std::vector<std::string> Cells{std::to_string(K) + " bit"};
      for (const WorkloadData &D : Suite) {
        RateAcc Acc;
        for (uint32_t Id = 0; Id < D.PA->numBranches(); ++Id) {
          const BranchClass &C = D.PA->classOf(static_cast<int32_t>(Id));
          if (C.Kind == BranchKind::NonLoop)
            continue;
          const BranchProfile &P =
              D.LoopAware->branch(static_cast<int32_t>(Id));
          uint64_t Correct = fullHistoryCorrect(P.Table, K);
          Acc.add(P.executions() - Correct, P.executions());
        }
        Cells.push_back(Acc.percent());
      }
      Table.addRow(std::move(Cells));
    }

    // (k+1)-state intra-loop machines over intra-loop branches.
    {
      std::vector<std::string> Cells{std::to_string(K + 1) + " states loop"};
      for (const WorkloadData &D : Suite) {
        RateAcc Acc;
        for (uint32_t Id = 0; Id < D.PA->numBranches(); ++Id) {
          const BranchClass &C = D.PA->classOf(static_cast<int32_t>(Id));
          if (C.Kind != BranchKind::IntraLoop)
            continue;
          const BranchProfile &P =
              D.LoopAware->branch(static_cast<int32_t>(Id));
          if (P.executions() == 0)
            continue;
          MachineOptions MO;
          MO.MaxStates = K + 1;
          MO.NodeBudget = 50'000;
          SuffixMachine M = buildIntraLoopMachine(P.Table, MO);
          Acc.add(M.Total - M.Correct, M.Total);
        }
        Cells.push_back(Acc.percent());
      }
      Table.addRow(std::move(Cells));
    }

    // (k+1)-state exit machines over loop-exit branches.
    {
      std::vector<std::string> Cells{std::to_string(K + 1) + " states exit"};
      for (const WorkloadData &D : Suite) {
        RateAcc Acc;
        for (uint32_t Id = 0; Id < D.PA->numBranches(); ++Id) {
          const BranchClass &C = D.PA->classOf(static_cast<int32_t>(Id));
          if (C.Kind != BranchKind::LoopExit)
            continue;
          const BranchProfile &P =
              D.LoopAware->branch(static_cast<int32_t>(Id));
          if (P.executions() == 0)
            continue;
          ExitChainMachine M =
              buildExitMachine(P.Table, K + 1, !C.TakenExits);
          Acc.add(M.Total - M.Correct, M.Total);
        }
        Cells.push_back(Acc.percent());
      }
      Table.addRow(std::move(Cells));
      Table.addSeparator();
    }
  }

  std::printf("%s\n", Table.render().c_str());
  return finishBench(Run, "table3_loop_machines");
}
