//===- bench/ablation_search_depth.cpp - Ablation A1 ----------------------===//
//
// Part of the bpcr project (Krall, PLDI 1994 reproduction).
//
//===----------------------------------------------------------------------===//
//
// Ablation: how much does the exact branch-and-bound machine search buy
// over greedy forward selection, and how does the candidate pattern-length
// budget affect machine quality? The paper performs "an exhaustive search
// in the pattern table to find the best state machine"; this quantifies
// what a cheaper search would lose.
//
//===----------------------------------------------------------------------===//

#include "bench/BenchCommon.h"

#include "core/MachineSearch.h"
#include "support/TablePrinter.h"

#include <chrono>
#include <cstdio>

using namespace bpcr;

namespace {

struct Result {
  uint64_t Miss = 0;
  uint64_t Total = 0;
  double Millis = 0.0;
};

Result runSearch(const WorkloadData &D, bool Exhaustive, unsigned MaxLen) {
  Result R;
  auto Start = std::chrono::steady_clock::now();
  for (uint32_t Id = 0; Id < D.PA->numBranches(); ++Id) {
    const BranchClass &C = D.PA->classOf(static_cast<int32_t>(Id));
    if (C.Kind != BranchKind::IntraLoop)
      continue;
    const BranchProfile &P = D.LoopAware->branch(static_cast<int32_t>(Id));
    if (P.executions() == 0)
      continue;
    MachineOptions MO;
    MO.MaxStates = 6;
    MO.MaxPatternLen = MaxLen;
    MO.Exhaustive = Exhaustive;
    MO.NodeBudget = 100'000;
    SuffixMachine M = buildIntraLoopMachine(P.Table, MO);
    R.Miss += M.Total - M.Correct;
    R.Total += M.Total;
  }
  R.Millis = std::chrono::duration<double, std::milli>(
                 std::chrono::steady_clock::now() - Start)
                 .count();
  return R;
}

} // namespace

int main(int Argc, char **Argv) {
  BenchRunOptions Run;
  if (!parseBenchArgs(Argc, Argv, Run))
    return 2;
  std::vector<WorkloadData> Suite = loadSuite(Run.Seed, Run.Events, Run.Jobs);

  TablePrinter Table("Ablation A1: intra-loop machine search — exact "
                     "branch-and-bound vs greedy, by pattern-length budget "
                     "(6-state machines; misprediction % | ms)");
  std::vector<std::string> Header{"configuration"};
  for (const WorkloadData &D : Suite)
    Header.push_back(D.W->Name);
  Table.setHeader(Header);

  for (unsigned MaxLen : {2u, 3u, 5u, 9u}) {
    for (bool Exhaustive : {false, true}) {
      std::vector<std::string> Cells{
          std::string(Exhaustive ? "exact" : "greedy") + " len<=" +
          std::to_string(MaxLen)};
      for (const WorkloadData &D : Suite) {
        Result R = runSearch(D, Exhaustive, MaxLen);
        char Buf[48];
        if (R.Total == 0) {
          Cells.push_back("-");
          continue;
        }
        std::snprintf(Buf, sizeof(Buf), "%s | %.0fms",
                      formatPercent(100.0 * static_cast<double>(R.Miss) /
                                    static_cast<double>(R.Total))
                          .c_str(),
                      R.Millis);
        Cells.push_back(Buf);
      }
      Table.addRow(std::move(Cells));
    }
    Table.addSeparator();
  }

  std::printf("%s\n", Table.render().c_str());
  return finishBench(Run, "ablation_search_depth");
}
