//===- bench/table4_correlated.cpp - Paper Table 4 ------------------------===//
//
// Part of the bpcr project (Krall, PLDI 1994 reproduction).
//
//===----------------------------------------------------------------------===//
//
// Reproduces Table 4: "misprediction rates of correlated branches in
// percent". The population is the non-loop branches (the correlated-branch
// candidates of sec. 4.3). Rows: the profile baseline, the unbounded 1-bit
// global-history correlation scheme, and correlated path machines with
// 2..7 states ("We used a maximum path length of n for an n state machine
// to keep the size of the replicated code small" — capped at 4 here, the
// cap the replication pipeline uses). The table shows "that the correlation
// information can be compacted with very small loss".
//
//===----------------------------------------------------------------------===//

#include "bench/BenchCommon.h"

#include "core/CorrelatedMachine.h"
#include "predict/Evaluator.h"
#include "predict/SemiStaticPredictors.h"
#include "support/TablePrinter.h"

#include <cstdio>

using namespace bpcr;

namespace {

struct RateAcc {
  uint64_t Miss = 0;
  uint64_t Total = 0;

  std::string percent() const {
    if (Total == 0)
      return "-";
    return formatPercent(100.0 * static_cast<double>(Miss) /
                         static_cast<double>(Total));
  }
};

/// The paper evaluates correlated machines for all branches ("For all
/// branches all predecessors ... are collected"); every executed branch is
/// in the population.
bool isCorrelatedCandidate(const WorkloadData &D, uint32_t Id) {
  return D.Plain->branch(static_cast<int32_t>(Id)).executions() > 0;
}

} // namespace

int main(int Argc, char **Argv) {
  BenchRunOptions Run;
  if (!parseBenchArgs(Argc, Argv, Run))
    return 2;
  std::vector<WorkloadData> Suite = loadSuite(Run.Seed, Run.Events, Run.Jobs);

  TablePrinter Table(
      "Table 4: misprediction rates of correlated branches in percent");
  Table.setHeader(suiteHeader("strategy"));

  // Profile baseline.
  {
    std::vector<std::string> Cells{"profile"};
    for (const WorkloadData &D : Suite) {
      RateAcc Acc;
      for (uint32_t Id = 0; Id < D.PA->numBranches(); ++Id) {
        if (!isCorrelatedCandidate(D, Id))
          continue;
        const BranchProfile &P = D.Plain->branch(static_cast<int32_t>(Id));
        Acc.Miss += P.profileMispredictions();
        Acc.Total += P.executions();
      }
      Cells.push_back(Acc.percent());
    }
    Table.addRow(std::move(Cells));
  }

  // Unbounded 1-bit global correlation over the same branches.
  {
    std::vector<std::string> Cells{"1 bit correlation"};
    for (const WorkloadData &D : Suite) {
      CorrelationPredictor P(1);
      P.train(D.T);
      P.reset();
      auto Per = evaluatePredictorPerBranch(P, D.T, D.PA->numBranches());
      RateAcc Acc;
      for (uint32_t Id = 0; Id < D.PA->numBranches(); ++Id) {
        if (!isCorrelatedCandidate(D, Id))
          continue;
        Acc.Miss += Per[Id].Mispredictions;
        Acc.Total += Per[Id].Predictions;
      }
      Cells.push_back(Acc.percent());
    }
    Table.addRow(std::move(Cells));
  }
  Table.addSeparator();

  // Path machines with 2..7 states.
  const unsigned MaxPathLen = 4;
  for (unsigned States = 2; States <= 7; ++States) {
    std::vector<std::string> Cells{std::to_string(States) + " states"};
    for (const WorkloadData &D : Suite) {
      // Batch path profiles once per workload and budget.
      std::vector<std::vector<BranchPath>> Cands(D.PA->numBranches());
      for (uint32_t Id = 0; Id < D.PA->numBranches(); ++Id)
        if (isCorrelatedCandidate(D, Id))
          Cands[Id] = D.PA->backwardPaths(
              static_cast<int32_t>(Id),
              std::min<unsigned>(States, MaxPathLen), /*ThroughJumps=*/true);
      std::vector<PathProfile> Profiles =
          profilePaths(Cands, D.T, std::min<unsigned>(States, MaxPathLen));

      RateAcc Acc;
      for (uint32_t Id = 0; Id < D.PA->numBranches(); ++Id) {
        if (!isCorrelatedCandidate(D, Id))
          continue;
        CorrelatedOptions CO;
        CO.MaxStates = States;
        CO.MaxPathLen = std::min<unsigned>(States, MaxPathLen);
        CO.NodeBudget = 50'000;
        CorrelatedMachine CM = buildCorrelatedMachineFromProfile(
            static_cast<int32_t>(Id), Profiles[Id], CO);
        Acc.Miss += CM.Total - CM.Correct;
        Acc.Total += CM.Total;
      }
      Cells.push_back(Acc.percent());
    }
    Table.addRow(std::move(Cells));
  }

  std::printf("%s\n", Table.render().c_str());
  return finishBench(Run, "table4_correlated");
}
