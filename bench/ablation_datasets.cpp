//===- bench/ablation_datasets.cpp - Ablation A2 --------------------------===//
//
// Part of the bpcr project (Krall, PLDI 1994 reproduction).
//
//===----------------------------------------------------------------------===//
//
// Ablation from the paper's "Further Work": "Another work to be done is to
// measure the influence of different data sets ... We assume that code
// replicated programs are more sensitive to different data sets than the
// original program."
//
// Every workload runs on two inputs (seeds). Semi-static predictors and
// the per-branch machines are trained on the seed-1 trace and evaluated on
// the seed-2 trace (Fisher/Freudenberger methodology). Reported: profile,
// loop-correlation, and the machine-based strategy selection, each
// self-trained vs cross-trained.
//
//===----------------------------------------------------------------------===//

#include "bench/BenchCommon.h"

#include "core/StrategySelection.h"
#include "predict/Evaluator.h"
#include "predict/SemiStaticPredictors.h"
#include "support/TablePrinter.h"

#include <cstdio>

using namespace bpcr;

int main(int Argc, char **Argv) {
  BenchRunOptions Run;
  if (!parseBenchArgs(Argc, Argv, Run))
    return 2;
  // Train on the given seed, evaluate on the next one.
  std::vector<WorkloadData> Train = loadSuite(Run.Seed, Run.Events, Run.Jobs);
  std::vector<WorkloadData> Test = loadSuite(Run.Seed + 1, Run.Events, Run.Jobs);

  TablePrinter Table("Ablation A2: dataset sensitivity — trained on input "
                     "1, evaluated on input 2 (misprediction %)");
  Table.setHeader(suiteHeader("strategy"));

  auto Row = [&](const std::string &Name, auto Fn) {
    std::vector<std::string> Cells{Name};
    for (size_t WI = 0; WI < Train.size(); ++WI)
      Cells.push_back(formatPercent(Fn(Train[WI], Test[WI])));
    Table.addRow(std::move(Cells));
  };

  Row("profile (self)", [](const WorkloadData &, const WorkloadData &B) {
    ProfilePredictor P;
    return evaluateSelfTrained(P, B.T).mispredictionPercent();
  });
  Row("profile (cross)", [](const WorkloadData &A, const WorkloadData &B) {
    ProfilePredictor P;
    return evaluateTrained(P, A.T, B.T).mispredictionPercent();
  });
  Table.addSeparator();
  Row("loop-correlation (self)",
      [](const WorkloadData &, const WorkloadData &B) {
        LoopCorrelationPredictor P;
        return evaluateSelfTrained(P, B.T).mispredictionPercent();
      });
  Row("loop-correlation (cross)",
      [](const WorkloadData &A, const WorkloadData &B) {
        LoopCorrelationPredictor P;
        return evaluateTrained(P, A.T, B.T).mispredictionPercent();
      });
  Table.addSeparator();

  // Machine-based strategies: select on the training profiles, then
  // replay the chosen machines against the test profiles.
  Row("machines n=4 (self)",
      [&Run](const WorkloadData &, const WorkloadData &B) {
        StrategyOptions Opts;
        Opts.MaxStates = 4;
        Opts.NodeBudget = 30'000;
        Opts.Jobs = Run.Jobs;
        auto S = selectStrategies(*B.PA, *B.LoopAware, B.T, Opts);
        return totalStrategyStats(S).mispredictionPercent();
      });
  Row("machines n=4 (cross)",
      [&Run](const WorkloadData &A, const WorkloadData &B) {
        StrategyOptions Opts;
        Opts.MaxStates = 4;
        Opts.NodeBudget = 30'000;
        Opts.Jobs = Run.Jobs;
        auto Strategies = selectStrategies(*A.PA, *A.LoopAware, A.T, Opts);
        // Replay each trained machine on the test data.
        PredictionStats Total;
        for (const BranchStrategy &S : Strategies) {
          const BranchProfile &TP = B.LoopAware->branch(S.BranchId);
          const BranchProfile &TrainP = A.LoopAware->branch(S.BranchId);
          switch (S.Kind) {
          case StrategyKind::Profile: {
            bool Pred = TrainP.executions() ? TrainP.majorityTaken() : true;
            uint64_t Wrong =
                Pred ? TP.executions() - TP.takenCount() : TP.takenCount();
            Total.Predictions += TP.executions();
            Total.Mispredictions += Wrong;
            break;
          }
          case StrategyKind::IntraLoop:
          case StrategyKind::LoopExit: {
            PredictionStats R = S.Machine->simulateSegmented(TP);
            Total += R;
            break;
          }
          case StrategyKind::Correlated: {
            PredictionStats R = evaluateCorrelatedMachine(*S.Corr, B.T);
            Total += R;
            break;
          }
          }
        }
        return Total.mispredictionPercent();
      });

  std::printf("%s\n", Table.render().c_str());
  std::printf("Fisher/Freudenberger expectation: cross-trained rates stay "
              "close to self-trained ones when the inputs exercise the same "
              "code paths; the machine rows quantify the extra sensitivity "
              "the paper anticipated for replicated programs.\n\n");
  return finishBench(Run, "ablation_datasets");
}
