//===- bench/micro_throughput.cpp - Performance microbenchmarks -----------===//
//
// Part of the bpcr project (Krall, PLDI 1994 reproduction).
//
//===----------------------------------------------------------------------===//
//
// google-benchmark timings for the library's hot paths: interpreter
// throughput, predictor update rates, trace codec, pattern-table
// construction and machine search. The paper notes its tracing slows
// programs ~3x and "the analysis of the trace is done in a few seconds";
// these benches document where this implementation stands.
//
//===----------------------------------------------------------------------===//

#include "bench/BenchCommon.h"
#include "core/CorrelatedMachine.h"
#include "core/LoopAwareProfiles.h"
#include "core/MachineSearch.h"
#include "core/ScoreKernels.h"
#include "core/SearchCache.h"
#include "core/SizeSweep.h"
#include "interp/Interpreter.h"
#include "obs/Metrics.h"
#include "obs/Profiler.h"
#include "obs/Report.h"
#include "obs/TraceSpans.h"
#include "predict/DynamicPredictors.h"
#include "predict/Evaluator.h"
#include "predict/SemiStaticPredictors.h"
#include "trace/Sinks.h"
#include "trace/TraceFile.h"
#include "workloads/Workload.h"

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <string>
#include <tuple>

using namespace bpcr;

namespace {

const Trace &sharedTrace() {
  static Trace T = [] {
    Module M;
    return traceWorkload(allWorkloads()[3], 1, M, 200'000);
  }();
  return T;
}

void BM_InterpreterGhostview(benchmark::State &State) {
  Module M = buildWorkload("ghostview", 1);
  M.assignBranchIds();
  uint64_t Instructions = 0;
  for (auto _ : State) {
    ExecOptions Opts;
    Opts.MaxBranchEvents = 100'000;
    ExecResult R = execute(M, nullptr, Opts);
    benchmark::DoNotOptimize(R.ReturnValue);
    Instructions += R.InstructionsExecuted;
  }
  State.SetItemsProcessed(static_cast<int64_t>(Instructions));
}
BENCHMARK(BM_InterpreterGhostview);

void BM_TwoLevelPredictor(benchmark::State &State) {
  const Trace &T = sharedTrace();
  for (auto _ : State) {
    TwoLevelPredictor P(TwoLevelConfig::paperDefault());
    PredictionStats S = evaluatePredictor(P, T);
    benchmark::DoNotOptimize(S.Mispredictions);
  }
  State.SetItemsProcessed(static_cast<int64_t>(State.iterations()) *
                          static_cast<int64_t>(T.size()));
}
BENCHMARK(BM_TwoLevelPredictor);

void BM_LoopCorrelationTraining(benchmark::State &State) {
  const Trace &T = sharedTrace();
  for (auto _ : State) {
    LoopCorrelationPredictor P;
    P.train(T);
    benchmark::DoNotOptimize(P.improvedBranchCount());
  }
  State.SetItemsProcessed(static_cast<int64_t>(State.iterations()) *
                          static_cast<int64_t>(T.size()));
}
BENCHMARK(BM_LoopCorrelationTraining);

void BM_TraceEncode(benchmark::State &State) {
  const Trace &T = sharedTrace();
  for (auto _ : State) {
    auto Buf = encodeTrace(T);
    benchmark::DoNotOptimize(Buf.size());
  }
  State.SetItemsProcessed(static_cast<int64_t>(State.iterations()) *
                          static_cast<int64_t>(T.size()));
}
BENCHMARK(BM_TraceEncode);

void BM_TraceDecode(benchmark::State &State) {
  static std::vector<uint8_t> Buf = encodeTrace(sharedTrace());
  Trace Out;
  for (auto _ : State) {
    bool Ok = decodeTrace(Buf, Out);
    benchmark::DoNotOptimize(Ok);
  }
  State.SetItemsProcessed(static_cast<int64_t>(State.iterations()) *
                          static_cast<int64_t>(sharedTrace().size()));
}
BENCHMARK(BM_TraceDecode);

void BM_LoopAwareProfiling(benchmark::State &State) {
  static Module M = [] {
    Module X;
    traceWorkload(allWorkloads()[3], 1, X, 1);
    return X;
  }();
  static ProgramAnalysis PA(M);
  const Trace &T = sharedTrace();
  for (auto _ : State) {
    ProfileSet P = buildLoopAwareProfiles(PA, T);
    benchmark::DoNotOptimize(P.totalExecutions());
  }
  State.SetItemsProcessed(static_cast<int64_t>(State.iterations()) *
                          static_cast<int64_t>(T.size()));
}
BENCHMARK(BM_LoopAwareProfiling);

void BM_MachineSearchExact(benchmark::State &State) {
  // A branch with rich history: ghostview's dispatch pattern.
  static PatternTable Table = [] {
    PatternTable T(9);
    Module M;
    Trace Tr = traceWorkload(allWorkloads()[3], 1, M, 200'000);
    for (const BranchEvent &E : Tr)
      if (E.BranchId == 0)
        T.record(E.Taken);
    return T;
  }();
  for (auto _ : State) {
    MachineOptions MO;
    MO.MaxStates = static_cast<unsigned>(State.range(0));
    MO.NodeBudget = 100'000;
    SuffixMachine M = buildIntraLoopMachine(Table, MO);
    benchmark::DoNotOptimize(M.Correct);
  }
}
BENCHMARK(BM_MachineSearchExact)->Arg(3)->Arg(5)->Arg(7);

//===----------------------------------------------------------------------===//
// Sweep wall-time benchmark (--sweep-bench): times computeSizeSweep on the
// largest workload at several --jobs settings and against an emulation of
// the pre-ladder algorithm (family probe at MaxStates plus one fresh
// search per rung, no cache — exactly what core/SizeSweep.cpp did before
// the memoized downward-fill ladders). Emits BENCH_sweep.json. Timing
// gauges are skip-listed in the compare thresholds; the cache hit rate and
// the search counters are deterministic and gated.
//===----------------------------------------------------------------------===//

double wallMs(const std::function<void()> &Fn) {
  auto T0 = std::chrono::steady_clock::now();
  Fn();
  auto T1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(T1 - T0).count();
}

/// The searches the old computeSizeSweep issued, with identical options:
/// per branch, one family-decision probe at the deepest budget, then one
/// independent search per rung N=2..MaxStates. No ladder reuse, no cache.
void legacySweepSearches(const ProgramAnalysis &PA, const ProfileSet &Profiles,
                         const Trace &T, const SweepOptions &Opts) {
  unsigned PathLen = std::min<unsigned>(4, Opts.MaxStates);
  std::vector<std::vector<BranchPath>> Candidates(PA.numBranches());
  for (uint32_t Id = 0; Id < PA.numBranches(); ++Id) {
    const BranchProfile &P = Profiles.branch(static_cast<int32_t>(Id));
    if (P.executions() < Opts.MinExecutions)
      continue;
    Candidates[Id] = PA.backwardPaths(static_cast<int32_t>(Id), PathLen,
                                      /*ThroughJumps=*/true);
  }
  std::vector<PathProfile> Paths = profilePaths(Candidates, T, PathLen);

  for (uint32_t Id = 0; Id < PA.numBranches(); ++Id) {
    const BranchProfile &P = Profiles.branch(static_cast<int32_t>(Id));
    if (P.executions() < Opts.MinExecutions)
      continue;
    const BranchClass &C = PA.classOf(static_cast<int32_t>(Id));

    uint64_t BestLoopCorrect = 0;
    uint64_t BestCorrCorrect = 0;
    if (C.Kind == BranchKind::IntraLoop) {
      MachineOptions MO;
      MO.MaxStates = Opts.MaxStates;
      MO.Exhaustive = Opts.Exhaustive;
      MO.NodeBudget = Opts.NodeBudget;
      BestLoopCorrect = buildIntraLoopMachine(P.Table, MO).Correct;
    } else if (C.Kind == BranchKind::LoopExit) {
      BestLoopCorrect =
          buildExitMachine(P.Table, Opts.MaxStates, !C.TakenExits).Correct;
    }
    if (!Candidates[Id].empty()) {
      CorrelatedOptions CO;
      CO.MaxStates = Opts.MaxStates;
      CO.MaxPathLen = PathLen;
      CO.Exhaustive = Opts.Exhaustive;
      CO.NodeBudget = Opts.NodeBudget;
      BestCorrCorrect = buildCorrelatedMachineFromProfile(
                            static_cast<int32_t>(Id), Paths[Id], CO)
                            .Correct;
    }

    uint64_t ProfileCorrect = P.executions() - P.profileMispredictions();
    bool UseLoopFamily = (C.Kind != BranchKind::NonLoop) &&
                         BestLoopCorrect >= BestCorrCorrect &&
                         BestLoopCorrect > ProfileCorrect;
    bool UseCorrFamily = !UseLoopFamily && BestCorrCorrect > ProfileCorrect;
    for (unsigned N = 2; N <= Opts.MaxStates; ++N) {
      if (UseLoopFamily) {
        if (C.Kind == BranchKind::IntraLoop) {
          MachineOptions MO;
          MO.MaxStates = N;
          MO.Exhaustive = Opts.Exhaustive;
          MO.NodeBudget = Opts.NodeBudget;
          benchmark::DoNotOptimize(buildIntraLoopMachine(P.Table, MO).Correct);
        } else {
          benchmark::DoNotOptimize(
              buildExitMachine(P.Table, N, !C.TakenExits).Correct);
        }
      } else if (UseCorrFamily) {
        CorrelatedOptions CO;
        CO.MaxStates = N;
        CO.MaxPathLen = PathLen;
        CO.Exhaustive = Opts.Exhaustive;
        CO.NodeBudget = Opts.NodeBudget;
        benchmark::DoNotOptimize(
            buildCorrelatedMachineFromProfile(static_cast<int32_t>(Id),
                                              Paths[Id], CO)
                .Correct);
      }
    }
  }
}

int runSweepBench(BenchRunOptions RunOpts) {
  uint64_t Events = 50'000;
  if (const char *E = std::getenv("BPCR_SWEEP_EVENTS"))
    Events = std::strtoull(E, nullptr, 10);
  if (RunOpts.EventsSet)
    Events = RunOpts.Events;
  // Each configuration is timed best-of-N to keep the wall-time gauges
  // stable on noisy (shared/single-core) runners. N is fixed so the
  // deterministic search counters stay reproducible run to run.
  unsigned Reps = 3;
  if (const char *R = std::getenv("BPCR_SWEEP_REPS"))
    Reps = std::max(1u, static_cast<unsigned>(std::strtoul(R, nullptr, 10)));

  // Nothing before the timed region may record (parseBenchArgs arms the
  // registry at parse time when a report or ledger was requested); the
  // report carries the search counters of the timed sweeps only.
  Registry::global().setEnabled(false);

  // The acceptance target is the *largest* workload's sweep; pick it by
  // trace length (branch count breaks ties) instead of hardcoding a name.
  const Workload *Largest = nullptr;
  size_t LargestScore = 0;
  for (const Workload &W : allWorkloads()) {
    Module WM;
    Trace WT = traceWorkload(W, 1, WM, Events);
    ProgramAnalysis WPA(WM);
    size_t Score = WT.size() * 8 + WPA.numBranches();
    if (Score > LargestScore) {
      LargestScore = Score;
      Largest = &W;
    }
  }
  std::printf("sweep bench: largest workload is %s (%llu events cap)\n",
              Largest->Name, static_cast<unsigned long long>(Events));
  Module M;
  Trace T = traceWorkload(*Largest, 1, M, Events);
  Module MC;
  ColumnarTrace CT = traceWorkloadColumnar(*Largest, 1, MC, Events);
  ProgramAnalysis PA(M);
  ProfileSet Profiles = buildLoopAwareProfiles(PA, T);

  SweepOptions Opts;
  Opts.MaxStates = 8;
  Opts.MaxSizeFactor = 16.0;
  Opts.NodeBudget = 30'000;

  Registry &Obs = Registry::global();
  Obs.setEnabled(true);
  SearchCache &Cache = SearchCache::global();

  // The timed sweeps run on the columnar trace (the production layout);
  // the cross-layout guard below re-runs one sweep on the legacy event
  // vector and requires the identical curve.
  auto RunAt = [&](unsigned Jobs, bool Cold,
                   std::vector<SweepPoint> &Out) -> double {
    double Best = 0.0;
    for (unsigned I = 0; I < Reps; ++I) {
      if (Cold)
        Cache.clear();
      SweepOptions O = Opts;
      O.Jobs = Jobs;
      double Ms = wallMs([&] { Out = computeSizeSweep(PA, Profiles, CT, O); });
      if (I == 0 || Ms < Best)
        Best = Ms;
    }
    return Best;
  };

  Cache.clear();
  double LegacyMs = 0.0;
  for (unsigned I = 0; I < Reps; ++I) {
    double Ms = wallMs([&] { legacySweepSearches(PA, Profiles, T, Opts); });
    if (I == 0 || Ms < LegacyMs)
      LegacyMs = Ms;
  }
  Cache.clear();

  std::vector<SweepPoint> P1, P2, P4, P4W;
  double Jobs1Ms = RunAt(1, /*Cold=*/true, P1);
  SearchCache::Stats ColdStats = Cache.stats();
  double Jobs2Ms = RunAt(2, /*Cold=*/true, P2);
  double Jobs4Ms = RunAt(4, /*Cold=*/true, P4);
  double WarmMs = RunAt(4, /*Cold=*/false, P4W);

  // Correctness guard: every run must produce the identical curve.
  auto SameCurve = [](const std::vector<SweepPoint> &A,
                      const std::vector<SweepPoint> &B) {
    if (A.size() != B.size())
      return false;
    for (size_t I = 0; I < A.size(); ++I)
      if (A[I].SizeFactor != B[I].SizeFactor ||
          A[I].MispredictPercent != B[I].MispredictPercent ||
          A[I].BranchId != B[I].BranchId ||
          A[I].NewStates != B[I].NewStates)
        return false;
    return true;
  };
  if (!SameCurve(P1, P2) || !SameCurve(P1, P4) || !SameCurve(P1, P4W)) {
    std::fprintf(stderr,
                 "sweep bench: FAIL — curves differ across --jobs runs\n");
    return 1;
  }
  // Cross-layout guard: the legacy event-of-structs trace must produce
  // the identical curve.
  std::vector<SweepPoint> PLegacy;
  Cache.clear();
  {
    SweepOptions O = Opts;
    O.Jobs = 4;
    PLegacy = computeSizeSweep(PA, Profiles, T, O);
  }
  if (!SameCurve(P1, PLegacy)) {
    std::fprintf(stderr, "sweep bench: FAIL — columnar and legacy traces "
                         "produce different curves\n");
    return 1;
  }

  uint64_t Lookups = ColdStats.Hits + ColdStats.Misses;
  double HitRate = Lookups ? 100.0 * static_cast<double>(ColdStats.Hits) /
                                 static_cast<double>(Lookups)
                           : 0.0;
  double SpeedJobs1 = Jobs1Ms > 0 ? LegacyMs / Jobs1Ms : 0.0;
  double SpeedJobs4 = Jobs4Ms > 0 ? LegacyMs / Jobs4Ms : 0.0;

  //--------------------------------------------------------------------
  // Columnar event path: the tentpole measurement. Legacy = one virtual
  // sink call per event into an event-of-structs vector, then the
  // hash-probe-per-event profile build. Columnar = batched emission into
  // packed id/direction columns, then the flat-count fill kernel over
  // 64-outcome words. Both are timed end to end (module build + trace +
  // loop-aware profiles) best-of-N; the results must match exactly.
  //--------------------------------------------------------------------
  double LegacyPathMs = 0.0, ColumnarPathMs = 0.0;
  Trace PathTrace;
  ColumnarTrace PathCT;
  ProfileSet LegacyProfiles(0), ColumnarProfiles(0);
  for (unsigned I = 0; I < Reps; ++I) {
    double Ms = wallMs([&] {
      Module LM;
      PathTrace = traceWorkload(*Largest, 1, LM, Events);
      LegacyProfiles = buildLoopAwareProfiles(PA, PathTrace);
    });
    if (I == 0 || Ms < LegacyPathMs)
      LegacyPathMs = Ms;
  }
  for (unsigned I = 0; I < Reps; ++I) {
    double Ms = wallMs([&] {
      Module CM;
      PathCT = traceWorkloadColumnar(*Largest, 1, CM, Events);
      ColumnarProfiles = buildLoopAwareProfiles(PA, PathCT);
    });
    if (I == 0 || Ms < ColumnarPathMs)
      ColumnarPathMs = Ms;
  }

  // Correctness guards: identical event stream, identical profiles.
  if (!(PathCT.materialize() == PathTrace)) {
    std::fprintf(stderr, "sweep bench: FAIL — columnar trace does not "
                         "round-trip the legacy event stream\n");
    return 1;
  }
  auto SameProfiles = [](const ProfileSet &A, const ProfileSet &B) {
    if (A.numBranches() != B.numBranches())
      return false;
    for (uint32_t Id = 0; Id < A.numBranches(); ++Id) {
      const BranchProfile &PA_ = A.branch(static_cast<int32_t>(Id));
      const BranchProfile &PB = B.branch(static_cast<int32_t>(Id));
      if (PA_.Outcomes != PB.Outcomes ||
          PA_.ResetPositions != PB.ResetPositions ||
          PA_.Table.executions() != PB.Table.executions())
        return false;
      std::vector<std::tuple<uint32_t, uint64_t, uint64_t>> TA, TB;
      for (const auto &[Pat, C] : PA_.Table.full())
        TA.emplace_back(Pat, C.Taken, C.NotTaken);
      for (const auto &[Pat, C] : PB.Table.full())
        TB.emplace_back(Pat, C.Taken, C.NotTaken);
      std::sort(TA.begin(), TA.end());
      std::sort(TB.begin(), TB.end());
      if (TA != TB)
        return false;
    }
    return true;
  };
  if (!SameProfiles(LegacyProfiles, ColumnarProfiles)) {
    std::fprintf(stderr, "sweep bench: FAIL — columnar profile build "
                         "differs from the legacy build\n");
    return 1;
  }

  double PathEvents = static_cast<double>(PathCT.size());
  double LegacyEps =
      LegacyPathMs > 0 ? 1000.0 * PathEvents / LegacyPathMs : 0.0;
  double ColumnarEps =
      ColumnarPathMs > 0 ? 1000.0 * PathEvents / ColumnarPathMs : 0.0;
  double PathSpeedup = ColumnarPathMs > 0 ? LegacyPathMs / ColumnarPathMs
                                          : 0.0;
  double BytesPerEvent =
      PathCT.size() ? static_cast<double>(PathCT.bytesUsed()) / PathEvents
                    : 0.0;
  double LegacyBytesPerEvent = static_cast<double>(sizeof(BranchEvent));

  Obs.gauge("sweep.workload_events").set(static_cast<double>(T.size()));
  Obs.gauge("sweep.wall_ms.legacy").set(LegacyMs);
  Obs.gauge("sweep.wall_ms.jobs1").set(Jobs1Ms);
  Obs.gauge("sweep.wall_ms.jobs2").set(Jobs2Ms);
  Obs.gauge("sweep.wall_ms.jobs4").set(Jobs4Ms);
  Obs.gauge("sweep.wall_ms.jobs4_warm").set(WarmMs);
  Obs.gauge("sweep.speedup.jobs1_vs_legacy").set(SpeedJobs1);
  Obs.gauge("sweep.speedup.jobs4_vs_legacy").set(SpeedJobs4);
  Obs.gauge("sweep.speedup.jobs4_vs_jobs1")
      .set(Jobs4Ms > 0 ? Jobs1Ms / Jobs4Ms : 0.0);
  Obs.gauge("sweep.cache.hit_rate_percent").set(HitRate);
  Obs.gauge("sweep.events_per_sec.jobs4")
      .set(Jobs4Ms > 0 ? 1000.0 * static_cast<double>(T.size()) / Jobs4Ms
                       : 0.0);
  Obs.gauge("sweep.columnar.events_per_sec").set(ColumnarEps);
  Obs.gauge("sweep.columnar.legacy_events_per_sec").set(LegacyEps);
  Obs.gauge("sweep.columnar.speedup_vs_legacy").set(PathSpeedup);
  Obs.gauge("sweep.columnar.bytes_per_event").set(BytesPerEvent);

  std::printf("sweep bench (%s, %zu events, states<=%u):\n", Largest->Name,
              T.size(), Opts.MaxStates);
  std::printf("  legacy per-rung search : %8.1f ms\n", LegacyMs);
  std::printf("  ladder --jobs 1 (cold) : %8.1f ms  (%.2fx vs legacy)\n",
              Jobs1Ms, SpeedJobs1);
  std::printf("  ladder --jobs 2 (cold) : %8.1f ms\n", Jobs2Ms);
  std::printf("  ladder --jobs 4 (cold) : %8.1f ms  (%.2fx vs legacy)\n",
              Jobs4Ms, SpeedJobs4);
  std::printf("  ladder --jobs 4 (warm) : %8.1f ms\n", WarmMs);
  std::printf("  cache hit rate (cold)  : %7.1f%%  (%llu hits / %llu "
              "lookups)\n",
              HitRate, static_cast<unsigned long long>(ColdStats.Hits),
              static_cast<unsigned long long>(Lookups));
  std::printf("event path (%s, %.0f events, simd tier %s):\n",
              Largest->Name, PathEvents,
              simdTierName(activeSimdTier()));
  std::printf("  legacy event path      : %8.1f ms  (%12.0f events/sec, "
              "%5.2f bytes/event)\n",
              LegacyPathMs, LegacyEps, LegacyBytesPerEvent);
  std::printf("  columnar event path    : %8.1f ms  (%12.0f events/sec, "
              "%5.2f bytes/event, %.2fx vs legacy)\n",
              ColumnarPathMs, ColumnarEps, BytesPerEvent, PathSpeedup);

  if (RunOpts.MetricsOut.empty())
    RunOpts.MetricsOut = "BENCH_sweep.json";
  RunOpts.Seed = 1;
  RunOpts.Events = Events;
  return finishBench(RunOpts, "micro_throughput", "sweep-bench",
                     Largest->Name);
}

//===----------------------------------------------------------------------===//
// Self-profiling benchmark (--profile-bench): runs the size sweep on the
// largest workload with the profiler armed and emits the schema-v4 report
// (profile section included) as BENCH_profile.json plus a collapsed-stack
// flamegraph. The compare gate holds the schedule-independent counts
// (`profile.categories.*.opened`, search counters) to the baseline; every
// time, RSS and allocator figure is report-only.
//===----------------------------------------------------------------------===//

int runProfileBench(BenchRunOptions RunOpts) {
  uint64_t Events = 50'000;
  if (const char *E = std::getenv("BPCR_SWEEP_EVENTS"))
    Events = std::strtoull(E, nullptr, 10);
  if (RunOpts.EventsSet)
    Events = RunOpts.Events;

  // Same selection rule as the sweep bench: largest workload by trace
  // length, branch count breaking ties. Selection runs before the profiler
  // is armed — and with the registry off, in case parseBenchArgs enabled
  // it — so the probe traces pollute neither span nor interp counts.
  Registry::global().setEnabled(false);
  const Workload *Largest = nullptr;
  size_t LargestScore = 0;
  for (const Workload &W : allWorkloads()) {
    Module WM;
    Trace WT = traceWorkload(W, 1, WM, Events);
    ProgramAnalysis WPA(WM);
    size_t Score = WT.size() * 8 + WPA.numBranches();
    if (Score > LargestScore) {
      LargestScore = Score;
      Largest = &W;
    }
  }
  std::printf("profile bench: largest workload is %s (%llu events cap)\n",
              Largest->Name, static_cast<unsigned long long>(Events));

  Registry::global().setEnabled(true);
  Profiler &Prof = Profiler::global();
  Prof.setEnabled(true);
  SearchCache::global().clear();

  // The profiled run exercises the production (columnar) event path, so
  // the interp/kernel profiler categories and the trace.columnar.* /
  // search.simd.* counters land in the report.
  Module M;
  ColumnarTrace CT;
  double PathMs = wallMs([&] {
    CT = traceWorkloadColumnar(*Largest, 1, M, Events);
  });
  ProgramAnalysis PA(M);
  Prof.sampleRss("profile_bench.traced");
  ProfileSet Profiles(0);
  PathMs += wallMs([&] { Profiles = buildLoopAwareProfiles(PA, CT); });
  Registry::global()
      .gauge("profile_bench.columnar.events_per_sec")
      .set(PathMs > 0 ? 1000.0 * static_cast<double>(CT.size()) / PathMs
                      : 0.0);

  SweepOptions Opts;
  Opts.MaxStates = 8;
  Opts.MaxSizeFactor = 16.0;
  Opts.NodeBudget = 30'000;
  Opts.Jobs = 4;
  std::vector<SweepPoint> Points = computeSizeSweep(PA, Profiles, CT, Opts);
  benchmark::DoNotOptimize(Points.data());
  Prof.sampleRss("profile_bench.sweep");

  ProfileData Data = Prof.collect();
  std::fputs(profileTable(Data, &Registry::global()).c_str(), stdout);

  if (RunOpts.MetricsOut.empty())
    RunOpts.MetricsOut = "BENCH_profile.json";
  RunOpts.Seed = 1;
  RunOpts.Events = Events;
  int RC = finishBench(RunOpts, "micro_throughput", "profile-bench",
                       Largest->Name);
  if (RC != 0)
    return RC;

  const char *Flame = std::getenv("BPCR_FLAME_OUT");
  if (!Flame)
    Flame = "BENCH_profile_flame.txt";
  std::string Error;
  if (!writeProfileText(Flame, collapsedStacks(SpanTracer::global()),
                        "flamegraph", Error)) {
    std::fprintf(stderr, "error: %s\n", Error.c_str());
    return 1;
  }
  std::printf("wrote flamegraph to %s\n", Flame);
  return 0;
}

/// Console reporter that additionally mirrors every per-iteration result
/// into the obs registry, so the run can be serialized as a BENCH_*.json
/// trajectory point.
class RecordingReporter : public benchmark::ConsoleReporter {
public:
  void ReportRuns(const std::vector<Run> &Runs) override {
    Registry &Obs = Registry::global();
    for (const Run &R : Runs) {
      if (R.run_type != Run::RT_Iteration || R.error_occurred)
        continue;
      std::string Prefix = "micro." + R.benchmark_name();
      Obs.gauge(Prefix + ".real_ns").set(R.GetAdjustedRealTime());
      Obs.gauge(Prefix + ".cpu_ns").set(R.GetAdjustedCPUTime());
      auto It = R.counters.find("items_per_second");
      if (It != R.counters.end())
        Obs.gauge(Prefix + ".items_per_sec").set(It->second);
    }
    ConsoleReporter::ReportRuns(Runs);
  }
};

} // namespace

int main(int argc, char **argv) {
  // The shared bench flags (--seed/--events/--jobs/--metrics/--ledger/
  // --trace-out plus the $BPCR_*_OUT fallbacks) come out of argv first;
  // everything left over belongs to google-benchmark, so unknown options
  // are kept rather than rejected.
  BenchRunOptions Opts;
  if (!parseBenchArgs(argc, argv, Opts, /*KeepUnknown=*/true))
    return 1;

  // Standalone sweep wall-time / self-profiling modes.
  for (int I = 1; I < argc; ++I) {
    if (std::strcmp(argv[I], "--sweep-bench") == 0)
      return runSweepBench(Opts);
    if (std::strcmp(argv[I], "--profile-bench") == 0)
      return runProfileBench(Opts);
  }

  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv))
    return 1;

  // The registry and the span tracer stay DISABLED while benchmarks run:
  // these numbers are the overhead guard for the instrumentation's disabled
  // path, so nothing may record during timing. Results are mirrored into
  // the registry by the reporter and serialized afterwards; the span
  // timeline (when requested) covers only the post-run export.
  Registry::global().setEnabled(false);
  bool TraceRequested = SpanTracer::global().enabled();
  SpanTracer::global().setEnabled(false);
  RecordingReporter Reporter;
  benchmark::RunSpecifiedBenchmarks(&Reporter);
  benchmark::Shutdown();

  Registry::global().setEnabled(true);
  if (Opts.MetricsOut.empty())
    Opts.MetricsOut = "BENCH_micro_throughput.json";
  // The micro benches have no workload seed or event cap; keep the meta
  // fields zero like the reports always carried.
  Opts.Seed = 0;
  if (!Opts.EventsSet)
    Opts.Events = 0;
  if (TraceRequested)
    SpanTracer::global().setEnabled(true);
  return finishBench(Opts, "micro_throughput");
}
