//===- bench/micro_throughput.cpp - Performance microbenchmarks -----------===//
//
// Part of the bpcr project (Krall, PLDI 1994 reproduction).
//
//===----------------------------------------------------------------------===//
//
// google-benchmark timings for the library's hot paths: interpreter
// throughput, predictor update rates, trace codec, pattern-table
// construction and machine search. The paper notes its tracing slows
// programs ~3x and "the analysis of the trace is done in a few seconds";
// these benches document where this implementation stands.
//
//===----------------------------------------------------------------------===//

#include "core/LoopAwareProfiles.h"
#include "core/MachineSearch.h"
#include "interp/Interpreter.h"
#include "obs/Metrics.h"
#include "obs/Report.h"
#include "obs/TraceSpans.h"
#include "predict/DynamicPredictors.h"
#include "predict/Evaluator.h"
#include "predict/SemiStaticPredictors.h"
#include "trace/Sinks.h"
#include "trace/TraceFile.h"
#include "workloads/Workload.h"

#include <benchmark/benchmark.h>

#include <cstdlib>
#include <string>

using namespace bpcr;

namespace {

const Trace &sharedTrace() {
  static Trace T = [] {
    Module M;
    return traceWorkload(allWorkloads()[3], 1, M, 200'000);
  }();
  return T;
}

void BM_InterpreterGhostview(benchmark::State &State) {
  Module M = buildWorkload("ghostview", 1);
  M.assignBranchIds();
  uint64_t Instructions = 0;
  for (auto _ : State) {
    ExecOptions Opts;
    Opts.MaxBranchEvents = 100'000;
    ExecResult R = execute(M, nullptr, Opts);
    benchmark::DoNotOptimize(R.ReturnValue);
    Instructions += R.InstructionsExecuted;
  }
  State.SetItemsProcessed(static_cast<int64_t>(Instructions));
}
BENCHMARK(BM_InterpreterGhostview);

void BM_TwoLevelPredictor(benchmark::State &State) {
  const Trace &T = sharedTrace();
  for (auto _ : State) {
    TwoLevelPredictor P(TwoLevelConfig::paperDefault());
    PredictionStats S = evaluatePredictor(P, T);
    benchmark::DoNotOptimize(S.Mispredictions);
  }
  State.SetItemsProcessed(static_cast<int64_t>(State.iterations()) *
                          static_cast<int64_t>(T.size()));
}
BENCHMARK(BM_TwoLevelPredictor);

void BM_LoopCorrelationTraining(benchmark::State &State) {
  const Trace &T = sharedTrace();
  for (auto _ : State) {
    LoopCorrelationPredictor P;
    P.train(T);
    benchmark::DoNotOptimize(P.improvedBranchCount());
  }
  State.SetItemsProcessed(static_cast<int64_t>(State.iterations()) *
                          static_cast<int64_t>(T.size()));
}
BENCHMARK(BM_LoopCorrelationTraining);

void BM_TraceEncode(benchmark::State &State) {
  const Trace &T = sharedTrace();
  for (auto _ : State) {
    auto Buf = encodeTrace(T);
    benchmark::DoNotOptimize(Buf.size());
  }
  State.SetItemsProcessed(static_cast<int64_t>(State.iterations()) *
                          static_cast<int64_t>(T.size()));
}
BENCHMARK(BM_TraceEncode);

void BM_TraceDecode(benchmark::State &State) {
  static std::vector<uint8_t> Buf = encodeTrace(sharedTrace());
  Trace Out;
  for (auto _ : State) {
    bool Ok = decodeTrace(Buf, Out);
    benchmark::DoNotOptimize(Ok);
  }
  State.SetItemsProcessed(static_cast<int64_t>(State.iterations()) *
                          static_cast<int64_t>(sharedTrace().size()));
}
BENCHMARK(BM_TraceDecode);

void BM_LoopAwareProfiling(benchmark::State &State) {
  static Module M = [] {
    Module X;
    traceWorkload(allWorkloads()[3], 1, X, 1);
    return X;
  }();
  static ProgramAnalysis PA(M);
  const Trace &T = sharedTrace();
  for (auto _ : State) {
    ProfileSet P = buildLoopAwareProfiles(PA, T);
    benchmark::DoNotOptimize(P.totalExecutions());
  }
  State.SetItemsProcessed(static_cast<int64_t>(State.iterations()) *
                          static_cast<int64_t>(T.size()));
}
BENCHMARK(BM_LoopAwareProfiling);

void BM_MachineSearchExact(benchmark::State &State) {
  // A branch with rich history: ghostview's dispatch pattern.
  static PatternTable Table = [] {
    PatternTable T(9);
    Module M;
    Trace Tr = traceWorkload(allWorkloads()[3], 1, M, 200'000);
    for (const BranchEvent &E : Tr)
      if (E.BranchId == 0)
        T.record(E.Taken);
    return T;
  }();
  for (auto _ : State) {
    MachineOptions MO;
    MO.MaxStates = static_cast<unsigned>(State.range(0));
    MO.NodeBudget = 100'000;
    SuffixMachine M = buildIntraLoopMachine(Table, MO);
    benchmark::DoNotOptimize(M.Correct);
  }
}
BENCHMARK(BM_MachineSearchExact)->Arg(3)->Arg(5)->Arg(7);

/// Console reporter that additionally mirrors every per-iteration result
/// into the obs registry, so the run can be serialized as a BENCH_*.json
/// trajectory point.
class RecordingReporter : public benchmark::ConsoleReporter {
public:
  void ReportRuns(const std::vector<Run> &Runs) override {
    Registry &Obs = Registry::global();
    for (const Run &R : Runs) {
      if (R.run_type != Run::RT_Iteration || R.error_occurred)
        continue;
      std::string Prefix = "micro." + R.benchmark_name();
      Obs.gauge(Prefix + ".real_ns").set(R.GetAdjustedRealTime());
      Obs.gauge(Prefix + ".cpu_ns").set(R.GetAdjustedCPUTime());
      auto It = R.counters.find("items_per_second");
      if (It != R.counters.end())
        Obs.gauge(Prefix + ".items_per_sec").set(It->second);
    }
    ConsoleReporter::ReportRuns(Runs);
  }
};

} // namespace

int main(int argc, char **argv) {
  // --trace-out must come out of argv before google-benchmark sees it.
  std::string TraceOut, TraceError;
  if (!extractTraceOutFlag(argc, argv, TraceOut, TraceError)) {
    std::fprintf(stderr, "micro_throughput: error: %s\n",
                 TraceError.c_str());
    return 1;
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv))
    return 1;

  // The registry and the span tracer stay DISABLED while benchmarks run:
  // these numbers are the overhead guard for the instrumentation's disabled
  // path, so nothing may record during timing. Results are mirrored into
  // the registry by the reporter and serialized afterwards; the span
  // timeline (when requested) covers only the post-run export.
  Registry::global().setEnabled(false);
  bool TraceRequested = SpanTracer::global().enabled();
  SpanTracer::global().setEnabled(false);
  RecordingReporter Reporter;
  benchmark::RunSpecifiedBenchmarks(&Reporter);
  benchmark::Shutdown();

  Registry::global().setEnabled(true);
  const char *Out = std::getenv("BPCR_METRICS_OUT");
  if (!Out)
    Out = "BENCH_micro_throughput.json";
  ReportMeta Meta;
  Meta.Tool = "micro_throughput";
  Meta.Command = "bench";
  std::string Error;
  if (!writeReportFile(Out, buildReport(Meta, Registry::global()), Error)) {
    std::fprintf(stderr, "error: %s\n", Error.c_str());
    return 1;
  }
  std::printf("wrote metrics to %s\n", Out);
  if (TraceRequested)
    SpanTracer::global().setEnabled(true);
  if (!TraceOut.empty())
    return finishSpanTrace(TraceOut, "micro_throughput");
  return 0;
}
