//===- bench/ablation_icache.cpp - Ablation A3: cache cost ----------------===//
//
// Part of the bpcr project (Krall, PLDI 1994 reproduction).
//
//===----------------------------------------------------------------------===//
//
// The cost side of code replication, which the paper flags but defers
// ("Furthermore we will ... evaluate the effects on runtime and
// instruction cache behaviour"): every benchmark runs through a simulated
// instruction cache before and after replication, at several cache sizes.
// Replication grows the working set, so small caches pay for the accuracy
// — exactly the tradeoff the paper's cost function is meant to weigh.
//
//===----------------------------------------------------------------------===//

#include "bench/BenchCommon.h"

#include "cache/ICacheRun.h"
#include "core/Pipeline.h"
#include "support/TablePrinter.h"

#include <cstdio>

using namespace bpcr;

int main(int Argc, char **Argv) {
  BenchRunOptions Run;
  if (!parseBenchArgs(Argc, Argv, Run))
    return 2;
  // Cache simulation touches every fetch, so this bench caps the events
  // lower than the suite default; --events can only shrink it further.
  uint64_t Events = Run.Events < 200'000 ? Run.Events : 200'000;
  std::vector<WorkloadData> Suite = loadSuite(Run.Seed, Events, Run.Jobs);

  TablePrinter Table("Ablation A3: instruction cache miss rate in percent, "
                     "original vs replicated (2-way, 4-word lines; programs are 60-300 words)");
  Table.setHeader(suiteHeader("configuration"));

  for (uint64_t Capacity : {32u, 64u, 160u}) {
    for (bool Replicated : {false, true}) {
      char Label[64];
      std::snprintf(Label, sizeof(Label), "%s, %lluw cache",
                    Replicated ? "replicated" : "original  ",
                    static_cast<unsigned long long>(Capacity));
      std::vector<std::string> Cells{Label};
      for (const WorkloadData &D : Suite) {
        Module Target = *D.M;
        if (Replicated) {
          PipelineOptions Opts;
          Opts.Strategy.MaxStates = 6;
          Opts.Strategy.NodeBudget = 20'000;
          Opts.Strategy.Jobs = Run.Jobs;
          Opts.MaxSizeFactor = 2.0;
          Target = replicateModule(*D.M, D.T, Opts).Transformed;
        }
        ICacheConfig Cfg;
        Cfg.CapacityWords = Capacity;
        Cfg.LineWords = 4;
        Cfg.Ways = 2;
        ExecOptions EO;
        EO.MaxBranchEvents = Events;
        ICacheRunResult R = runWithICache(Target, Cfg, EO);
        Cells.push_back(formatPercent(R.missPercent()));
      }
      Table.addRow(std::move(Cells));
    }
    Table.addSeparator();
  }

  std::printf("%s\n", Table.render().c_str());
  std::printf("Reading: replication leaves the miss rate essentially "
              "unchanged once the cache holds the enlarged hot loops; tiny "
              "caches show the paper's feared degradation.\n\n");
  return finishBench(Run, "ablation_icache");
}
