//===- bench/table5_best.cpp - Paper Table 5 ------------------------------===//
//
// Part of the bpcr project (Krall, PLDI 1994 reproduction).
//
//===----------------------------------------------------------------------===//
//
// Reproduces Table 5: "best achievable misprediction rates in percent" —
// every branch gets the best available strategy (profile / intra-loop
// machine / loop-exit machine / correlated machine) within a per-branch
// state budget of n, for n = 2..10, ignoring the code-size effects (those
// are the figures). A second section reports the strategy mix chosen at
// n = 4, which the paper describes but does not tabulate.
//
//===----------------------------------------------------------------------===//

#include "bench/BenchCommon.h"

#include "core/StrategySelection.h"
#include "support/TablePrinter.h"

#include <cstdio>

using namespace bpcr;

int main(int Argc, char **Argv) {
  BenchRunOptions Run;
  if (!parseBenchArgs(Argc, Argv, Run))
    return 2;
  std::vector<WorkloadData> Suite = loadSuite(Run.Seed, Run.Events, Run.Jobs);

  TablePrinter Table("Table 5: best achievable misprediction rates in "
                     "percent (per-branch state budget n)");
  Table.setHeader(suiteHeader("strategy"));

  // Profile baseline (one state per branch).
  {
    std::vector<std::string> Cells{"profile"};
    for (const WorkloadData &D : Suite) {
      uint64_t Miss = 0;
      for (uint32_t Id = 0; Id < D.PA->numBranches(); ++Id)
        Miss += D.LoopAware->branch(static_cast<int32_t>(Id))
                    .profileMispredictions();
      Cells.push_back(formatPercent(
          100.0 * static_cast<double>(Miss) /
          static_cast<double>(D.LoopAware->totalExecutions())));
    }
    Table.addRow(std::move(Cells));
    Table.addSeparator();
  }

  for (unsigned States = 2; States <= 10; ++States) {
    std::vector<std::string> Cells{std::to_string(States) + " states"};
    for (const WorkloadData &D : Suite) {
      StrategyOptions Opts;
      Opts.MaxStates = States;
      Opts.NodeBudget = 50'000;
      Opts.Jobs = Run.Jobs;
      auto Strategies = selectStrategies(*D.PA, *D.LoopAware, D.T, Opts);
      PredictionStats Total = totalStrategyStats(Strategies);
      Cells.push_back(formatPercent(Total.mispredictionPercent()));
    }
    Table.addRow(std::move(Cells));
  }
  std::printf("%s\n", Table.render().c_str());

  // Strategy mix at n = 4.
  TablePrinter Mix("Strategy mix at 4 states (branches choosing each "
                   "scheme)");
  Mix.setHeader(suiteHeader("scheme"));
  std::vector<std::vector<unsigned>> Counts(
      4, std::vector<unsigned>(Suite.size(), 0));
  for (size_t WI = 0; WI < Suite.size(); ++WI) {
    StrategyOptions Opts;
    Opts.MaxStates = 4;
    Opts.NodeBudget = 50'000;
    Opts.Jobs = Run.Jobs;
    auto Strategies =
        selectStrategies(*Suite[WI].PA, *Suite[WI].LoopAware, Suite[WI].T,
                         Opts);
    for (const BranchStrategy &S : Strategies)
      ++Counts[static_cast<size_t>(S.Kind)][WI];
  }
  const char *KindNames[] = {"profile", "intra-loop", "loop-exit",
                             "correlated"};
  for (size_t K = 0; K < 4; ++K) {
    std::vector<std::string> Cells{KindNames[K]};
    for (size_t WI = 0; WI < Suite.size(); ++WI)
      Cells.push_back(std::to_string(Counts[K][WI]));
    Mix.addRow(std::move(Cells));
  }
  std::printf("%s\n", Mix.render().c_str());
  return finishBench(Run, "table5_best");
}
