//===- workloads/Doduc.cpp - Fixed-point numeric simulation ---------------===//
//
// Part of the bpcr project (Krall, PLDI 1994 reproduction).
//
//===----------------------------------------------------------------------===//
//
// Models the paper's "doduc" benchmark (the SPEC hydrocode simulation, the
// suite's single floating-point program). Arithmetic is 16.16 fixed point;
// the control flow is what matters: long regular loops with constant trip
// counts, an iterative relaxation whose convergence test is strongly
// biased, a monotone table search, and a rarely taken clamping branch.
// This is the workload where every predictor does well and the exit-chain
// machines reach near-zero misprediction.
//
// Memory map:
//   [0]       array size N
//   [A..+N]   state array (fixed point)
//   [B..+N]   scratch array
//   [TBL..+T] monotone lookup table
//   [OUT..+4] checksums
//
//===----------------------------------------------------------------------===//

#include "workloads/Workload.h"

#include "ir/IRBuilder.h"
#include "support/Rng.h"

using namespace bpcr;

Module bpcr::buildDoduc(uint64_t Seed) {
  Module M;
  M.Name = "doduc";

  const int64_t N = 1200;
  const int64_t TblN = 64;
  const int64_t A = 1;
  const int64_t Bb = A + N;
  const int64_t Tbl = Bb + N;
  const int64_t Out = Tbl + TblN;
  M.MemWords = static_cast<uint64_t>(Out + 4);

  Rng Gen(Seed * 0xd6e8feb86659fd93ULL + 5);
  std::vector<int64_t> Mem(static_cast<size_t>(Out + 4), 0);
  Mem[0] = N;
  for (int64_t I = 0; I < N; ++I)
    Mem[static_cast<size_t>(A + I)] =
        static_cast<int64_t>(Gen.below(1 << 20)) + (1 << 12);
  // Monotone table (for the interpolation search).
  {
    int64_t Acc = 0;
    for (int64_t I = 0; I < TblN; ++I) {
      Acc += 1 + static_cast<int64_t>(Gen.below(1 << 14));
      Mem[static_cast<size_t>(Tbl + I)] = Acc;
    }
  }
  M.InitialMemory = std::move(Mem);

  auto R = [](Reg X) { return Operand::reg(X); };
  auto K = [](int64_t C) { return Operand::imm(C); };

  uint32_t Main = M.addFunction("main", 0);
  M.EntryFunction = Main;
  IRBuilder B(M, Main);

  Reg Step = B.newReg(), I = B.newReg(), J = B.newReg();
  Reg X = B.newReg(), Y = B.newReg(), Z = B.newReg();
  Reg Resid = B.newReg(), Cond = B.newReg(), Sum = B.newReg();

  uint32_t Entry = B.newBlock("entry");
  uint32_t StepLoop = B.newBlock("step_loop");
  uint32_t RelaxInit = B.newBlock("relax_init");
  uint32_t Relax = B.newBlock("relax");
  uint32_t RelaxBody = B.newBlock("relax_body");
  uint32_t Clamp = B.newBlock("clamp");
  uint32_t NoClamp = B.newBlock("no_clamp");
  uint32_t RelaxNext = B.newBlock("relax_next");
  uint32_t CopyInit = B.newBlock("copy_init");
  uint32_t Copy = B.newBlock("copy");
  uint32_t CopyBody = B.newBlock("copy_body");
  uint32_t Converge = B.newBlock("converge");
  uint32_t SearchInit = B.newBlock("search_init");
  uint32_t Search = B.newBlock("search");
  uint32_t SearchBody = B.newBlock("search_body");
  uint32_t SearchHit = B.newBlock("search_hit");
  uint32_t SearchNext = B.newBlock("search_next");
  uint32_t StepNext = B.newBlock("step_next");
  uint32_t Done = B.newBlock("done");

  const int64_t Steps = 26;

  B.setInsertPoint(Entry);
  B.movImm(Step, 0);
  B.movImm(Sum, 0);
  B.jmp(StepLoop);

  B.setInsertPoint(StepLoop);
  B.cmpGe(Cond, R(Step), K(Steps));
  B.br(R(Cond), Done, RelaxInit);

  // One relaxation sweep: b[i] = (a[i-1] + 2 a[i] + a[i+1]) / 4, clamped.
  B.setInsertPoint(RelaxInit);
  B.movImm(I, 1);
  B.movImm(Resid, 0);
  B.jmp(Relax);

  B.setInsertPoint(Relax);
  B.cmpGe(Cond, R(I), K(N - 1));
  B.br(R(Cond), CopyInit, RelaxBody);

  B.setInsertPoint(RelaxBody);
  Reg Im1 = B.newReg(), Ip1 = B.newReg();
  B.sub(Im1, R(I), K(1));
  B.add(Ip1, R(I), K(1));
  B.load(X, K(A), R(Im1));
  B.load(Y, K(A), R(I));
  B.load(Z, K(A), R(Ip1));
  B.mul(Y, R(Y), K(2));
  B.add(X, R(X), R(Y));
  B.add(X, R(X), R(Z));
  B.shr(X, R(X), K(2));
  // Rarely taken clamp (values drift down toward the mean).
  B.cmpGt(Cond, R(X), K(1 << 21));
  B.br(R(Cond), Clamp, NoClamp);

  B.setInsertPoint(Clamp);
  B.movImm(X, 1 << 21);
  B.jmp(NoClamp);

  B.setInsertPoint(NoClamp);
  B.store(K(Bb), R(I), R(X));
  // Residual accumulates |change| (approximated by the difference).
  B.load(Y, K(A), R(I));
  B.sub(Y, R(X), R(Y));
  B.mul(Y, R(Y), R(Y));
  B.shr(Y, R(Y), K(16));
  B.add(Resid, R(Resid), R(Y));
  B.jmp(RelaxNext);

  B.setInsertPoint(RelaxNext);
  B.add(I, R(I), K(1));
  B.jmp(Relax);

  B.setInsertPoint(CopyInit);
  B.movImm(I, 1);
  B.jmp(Copy);

  B.setInsertPoint(Copy);
  B.cmpGe(Cond, R(I), K(N - 1));
  B.br(R(Cond), Converge, CopyBody);

  B.setInsertPoint(CopyBody);
  B.load(X, K(Bb), R(I));
  B.store(K(A), R(I), R(X));
  B.add(I, R(I), K(1));
  B.jmp(Copy);

  // Convergence test: strongly biased (residual shrinks monotonically).
  B.setInsertPoint(Converge);
  B.cmpLt(Cond, R(Resid), K(64));
  B.br(R(Cond), Done, SearchInit);

  // Table interpolation: linear scan of the monotone table for a probe
  // value derived from the state (short, biased search loops).
  B.setInsertPoint(SearchInit);
  B.load(X, K(A), K(7));
  B.band(X, R(X), K((1 << 19) - 1));
  B.movImm(J, 0);
  B.jmp(Search);

  B.setInsertPoint(Search);
  B.cmpGe(Cond, R(J), K(TblN));
  B.br(R(Cond), StepNext, SearchBody);

  B.setInsertPoint(SearchBody);
  B.load(Y, K(Tbl), R(J));
  B.cmpGe(Cond, R(Y), R(X));
  B.br(R(Cond), SearchHit, SearchNext);

  B.setInsertPoint(SearchHit);
  B.add(Sum, R(Sum), R(J));
  B.jmp(StepNext);

  B.setInsertPoint(SearchNext);
  B.add(J, R(J), K(1));
  B.jmp(Search);

  B.setInsertPoint(StepNext);
  B.add(Step, R(Step), K(1));
  B.jmp(StepLoop);

  B.setInsertPoint(Done);
  B.store(K(Out), K(0), R(Sum));
  B.store(K(Out), K(1), R(Resid));
  B.ret(R(Sum));

  return M;
}
