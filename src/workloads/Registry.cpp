//===- workloads/Registry.cpp - Workload suite registry -------------------===//
//
// Part of the bpcr project (Krall, PLDI 1994 reproduction).
//
//===----------------------------------------------------------------------===//

#include "workloads/Workload.h"

#include "interp/Interpreter.h"
#include "obs/TraceSpans.h"
#include "trace/Sinks.h"

#include <algorithm>
#include <cassert>

using namespace bpcr;

const std::vector<Workload> &bpcr::allWorkloads() {
  static const std::vector<Workload> Suite = {
      {"abalone", "board game employing alpha-beta search", buildAbalone},
      {"c-compiler", "lcc-style compiler front end (lexer)", buildCCompiler},
      {"compress", "LZW file compression utility", buildCompress},
      {"ghostview", "PostScript-style operator interpreter", buildGhostview},
      {"predict", "branch trace profiling/analysis tool", buildPredictTool},
      {"prolog", "backtracking constraint search", buildProlog},
      {"scheduler", "list instruction scheduler", buildScheduler},
      {"doduc", "hydrocode simulation (fixed point)", buildDoduc},
  };
  return Suite;
}

Module bpcr::buildWorkload(const std::string &Name, uint64_t Seed) {
  for (const Workload &W : allWorkloads())
    if (Name == W.Name)
      return W.Build(Seed);
  assert(false && "unknown workload name");
  return Module();
}

Trace bpcr::traceWorkload(const Workload &W, uint64_t Seed, Module &OutModule,
                          uint64_t MaxBranchEvents) {
  Span S("workload.trace", "interp");
  S.arg("workload", W.Name);
  S.arg("seed", Seed);
  OutModule = W.Build(Seed);
  OutModule.assignBranchIds();
  CollectingSink Sink;
  // The cap is an upper bound on the trace length; short workloads leave
  // slack, but one oversized reservation beats ~20 growth copies of a
  // million-event vector.
  Sink.reserve(static_cast<size_t>(
      std::min<uint64_t>(MaxBranchEvents, 1u << 21)));
  ExecOptions Opts;
  Opts.MaxBranchEvents = MaxBranchEvents;
  ExecResult R = execute(OutModule, &Sink, Opts);
  assert(R.Ok && "workload execution failed");
  S.arg("branch_events", R.BranchEvents);
  (void)R;
  return Sink.takeTrace();
}

ColumnarTrace bpcr::traceWorkloadColumnar(const Workload &W, uint64_t Seed,
                                          Module &OutModule,
                                          uint64_t MaxBranchEvents) {
  Span S("workload.trace_columnar", "interp");
  S.arg("workload", W.Name);
  S.arg("seed", Seed);
  OutModule = W.Build(Seed);
  uint32_t NumBranches = OutModule.assignBranchIds();
  ColumnarCollectingSink Sink;
  Sink.reserve(static_cast<size_t>(
      std::min<uint64_t>(MaxBranchEvents, 1u << 21)));
  ExecOptions Opts;
  Opts.MaxBranchEvents = MaxBranchEvents;
  ExecResult R = execute(OutModule, &Sink, Opts);
  assert(R.Ok && "workload execution failed");
  S.arg("branch_events", R.BranchEvents);
  (void)R;
  ColumnarTrace CT = Sink.takeTrace();
  CT.finalize(NumBranches);
  return CT;
}
