//===- workloads/Compress.cpp - LZW-style compression ---------------------===//
//
// Part of the bpcr project (Krall, PLDI 1994 reproduction).
//
//===----------------------------------------------------------------------===//
//
// Models the paper's "compress" benchmark (the SPEC file compression
// utility): LZW with an open-addressing dictionary over data that mixes
// fresh bytes with repeated earlier phrases, like real files.
//
// Branch behaviour: dictionary probe hit/miss whose outcome correlates with
// the repetitiveness of the input, linear-probe loops with short
// data-dependent trip counts, and a rare dictionary-reset path that clears
// the table (a long burst of one-direction branches).
//
// Memory map:
//   [0]              input length
//   [1..N]           input bytes (0..15)
//   [KEYS..+TS]      dictionary keys (0 = empty)
//   [VALS..+TS]      dictionary codes
//   [OUT..+4]        statistics
//
//===----------------------------------------------------------------------===//

#include "workloads/Workload.h"

#include "ir/IRBuilder.h"
#include "support/Rng.h"

using namespace bpcr;

Module bpcr::buildCompress(uint64_t Seed) {
  Module M;
  M.Name = "compress";

  const int64_t N = 100000;
  const int64_t Data = 1;
  const int64_t TS = 4096; // dictionary size
  const int64_t Keys = Data + N;
  const int64_t Vals = Keys + TS;
  const int64_t Out = Vals + TS;
  M.MemWords = static_cast<uint64_t>(Out + 4);

  // Input: alternate fresh random bytes with copies of earlier phrases.
  Rng Gen(Seed * 0x2545f4914f6cdd1dULL + 99);
  std::vector<int64_t> Mem(static_cast<size_t>(Out + 4), 0);
  Mem[0] = N;
  {
    int64_t I = 0;
    while (I < N) {
      if (I > 64 && Gen.chance(65, 100)) {
        // Repeat an earlier phrase of 4-40 bytes.
        int64_t Src = static_cast<int64_t>(Gen.below(I - 48));
        int64_t Len = 4 + static_cast<int64_t>(Gen.below(37));
        for (int64_t J = 0; J < Len && I < N; ++J, ++I)
          Mem[static_cast<size_t>(Data + I)] =
              Mem[static_cast<size_t>(Data + Src + J)];
      } else {
        Mem[static_cast<size_t>(Data + I++)] =
            static_cast<int64_t>(Gen.below(16));
      }
    }
  }
  M.InitialMemory = std::move(Mem);

  auto R = [](Reg X) { return Operand::reg(X); };
  auto K = [](int64_t V) { return Operand::imm(V); };

  // -- verify(): checksum pass over the input ---------------------------------
  // Fixed 8-byte windows (constant-trip inner loop) with a biased marker
  // test — the kind of post-pass a real utility runs to validate output.
  uint32_t Verify = M.addFunction("verify", 0);
  {
    IRBuilder B(M, Verify);
    Reg I = B.newReg(), J = B.newReg(), Sum = B.newReg();
    Reg Byte = B.newReg(), Cond = B.newReg(), Markers = B.newReg();

    uint32_t Entry = B.newBlock("entry");
    uint32_t Outer = B.newBlock("outer");
    uint32_t Inner = B.newBlock("inner");
    uint32_t InnerBody = B.newBlock("inner_body");
    uint32_t LaneEven = B.newBlock("lane_even");
    uint32_t LaneOdd = B.newBlock("lane_odd");
    uint32_t LaneJoin = B.newBlock("lane_join");
    uint32_t Marker = B.newBlock("marker");
    uint32_t NoMarker = B.newBlock("no_marker");
    uint32_t InnerNext = B.newBlock("inner_next");
    uint32_t OuterNext = B.newBlock("outer_next");
    uint32_t Done = B.newBlock("done");

    B.setInsertPoint(Entry);
    B.movImm(I, 0);
    B.movImm(Sum, 0);
    B.movImm(Markers, 0);
    B.jmp(Outer);

    B.setInsertPoint(Outer);
    B.cmpGe(Cond, R(I), K(N - 8));
    B.br(R(Cond), Done, Inner);

    B.setInsertPoint(Inner);
    B.movImm(J, 0);
    B.jmp(InnerBody);

    B.setInsertPoint(InnerBody);
    B.cmpGe(Cond, R(J), K(8)); // constant trip count
    B.br(R(Cond), OuterNext, InnerNext);

    B.setInsertPoint(InnerNext);
    Reg Addr = B.newReg();
    B.add(Addr, R(I), R(J));
    B.load(Byte, K(Data), R(Addr));
    // Interleaved checksum lanes: the lane flips every byte — an
    // alternating branch profile cannot predict but a 2-state machine can.
    B.band(Cond, R(J), K(1));
    B.br(R(Cond), LaneOdd, LaneEven);

    B.setInsertPoint(LaneEven);
    B.add(Sum, R(Sum), R(Byte));
    B.jmp(LaneJoin);

    B.setInsertPoint(LaneOdd);
    B.mul(Byte, R(Byte), K(3));
    B.add(Sum, R(Sum), R(Byte));
    B.jmp(LaneJoin);

    B.setInsertPoint(LaneJoin);
    // Byte value 15 is a rare "marker": ~1/16 of bytes.
    B.cmpEq(Cond, R(Byte), K(15));
    B.br(R(Cond), Marker, NoMarker);

    B.setInsertPoint(Marker);
    B.add(Markers, R(Markers), K(1));
    B.jmp(NoMarker);

    B.setInsertPoint(NoMarker);
    B.add(J, R(J), K(1));
    B.jmp(InnerBody);

    B.setInsertPoint(OuterNext);
    B.add(I, R(I), K(8));
    B.jmp(Outer);

    B.setInsertPoint(Done);
    B.store(K(Out), K(2), R(Sum));
    B.store(K(Out), K(3), R(Markers));
    B.ret(R(Sum));
  }

  uint32_t Main = M.addFunction("main", 0);
  M.EntryFunction = Main;
  IRBuilder B(M, Main);

  Reg I = B.newReg();
  Reg Ch = B.newReg();
  Reg Prefix = B.newReg();
  Reg Key = B.newReg();
  Reg H = B.newReg();
  Reg Slot = B.newReg();
  Reg T = B.newReg();
  Reg Cond = B.newReg();
  Reg NextCode = B.newReg();
  Reg Codes = B.newReg();
  Reg Resets = B.newReg();
  Reg Clr = B.newReg();

  uint32_t Entry = B.newBlock("entry");
  uint32_t Loop = B.newBlock("loop");
  uint32_t Body = B.newBlock("body");
  uint32_t Probe = B.newBlock("probe");
  uint32_t ProbeNe = B.newBlock("probe_ne");
  uint32_t Advance = B.newBlock("probe_advance");
  uint32_t Found = B.newBlock("found");
  uint32_t Miss = B.newBlock("miss");
  uint32_t CheckFull = B.newBlock("check_full");
  uint32_t Reset = B.newBlock("reset");
  uint32_t ClearLoop = B.newBlock("clear_loop");
  uint32_t ClearBody = B.newBlock("clear_body");
  uint32_t AfterMiss = B.newBlock("after_miss");
  uint32_t Done = B.newBlock("done");
  uint32_t SlotOob = B.newBlock("slot_oob");
  uint32_t ProbePre = B.newBlock("probe_pre");

  B.setInsertPoint(Entry);
  B.load(Prefix, K(Data), K(0));
  B.movImm(I, 1);
  B.movImm(NextCode, 16);
  B.movImm(Codes, 0);
  B.movImm(Resets, 0);
  B.jmp(Loop);

  B.setInsertPoint(Loop);
  B.cmpGe(Cond, R(I), K(N));
  B.br(R(Cond), Done, Body);

  B.setInsertPoint(Body);
  B.load(Ch, K(Data), R(I));
  // key = (prefix + 1) * 16 + ch; never zero.
  B.add(Key, R(Prefix), K(1));
  B.mul(Key, R(Key), K(16));
  B.add(Key, R(Key), R(Ch));
  // h = (key * 40503) & (TS - 1).
  B.mul(H, R(Key), K(40503));
  B.band(Slot, R(H), K(TS - 1));
  // Defensive bounds check before indexing the hash table. The mask above
  // already confines Slot to [0, TS-1], so the guard can never fire. Both
  // paths rejoin in a dedicated preheader so the probe loop keeps a unique
  // dominating entry.
  B.cmpGe(Cond, R(Slot), K(TS));
  B.br(R(Cond), SlotOob, ProbePre);

  B.setInsertPoint(SlotOob);
  B.movImm(Slot, 0);
  B.jmp(ProbePre);

  B.setInsertPoint(ProbePre);
  B.jmp(Probe);

  B.setInsertPoint(Probe);
  B.load(T, K(Keys), R(Slot));
  B.cmpEq(Cond, R(T), R(Key));
  B.br(R(Cond), Found, ProbeNe);

  B.setInsertPoint(ProbeNe);
  B.cmpEq(Cond, R(T), K(0));
  B.br(R(Cond), Miss, Advance);

  B.setInsertPoint(Advance);
  B.add(Slot, R(Slot), K(1));
  B.band(Slot, R(Slot), K(TS - 1));
  B.jmp(Probe);

  B.setInsertPoint(Found);
  B.load(Prefix, K(Vals), R(Slot));
  B.add(I, R(I), K(1));
  B.jmp(Loop);

  B.setInsertPoint(Miss);
  B.store(K(Keys), R(Slot), R(Key));
  B.store(K(Vals), R(Slot), R(NextCode));
  B.add(NextCode, R(NextCode), K(1));
  B.add(Codes, R(Codes), K(1)); // emit code for prefix
  B.mov(Prefix, R(Ch));
  B.add(I, R(I), K(1));
  B.jmp(CheckFull);

  B.setInsertPoint(CheckFull);
  // Reset when the dictionary is 3/4 full (keeps probes terminating).
  B.cmpGe(Cond, R(NextCode), K(16 + (TS * 3) / 4));
  B.br(R(Cond), Reset, AfterMiss);

  B.setInsertPoint(Reset);
  B.add(Resets, R(Resets), K(1));
  B.movImm(NextCode, 16);
  B.movImm(Clr, 0);
  B.jmp(ClearLoop);

  B.setInsertPoint(ClearLoop);
  B.cmpGe(Cond, R(Clr), K(TS));
  B.br(R(Cond), AfterMiss, ClearBody);

  B.setInsertPoint(ClearBody);
  B.store(K(Keys), R(Clr), K(0));
  B.add(Clr, R(Clr), K(1));
  B.jmp(ClearLoop);

  B.setInsertPoint(AfterMiss);
  B.jmp(Loop);

  B.setInsertPoint(Done);
  B.store(K(Out), K(0), R(Codes));
  B.store(K(Out), K(1), R(Resets));
  Reg Check = B.newReg();
  B.call(Check, Verify, {});
  B.add(Check, R(Check), R(Codes));
  B.ret(R(Check));

  return M;
}
