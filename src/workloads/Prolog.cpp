//===- workloads/Prolog.cpp - Backtracking constraint search --------------===//
//
// Part of the bpcr project (Krall, PLDI 1994 reproduction).
//
//===----------------------------------------------------------------------===//
//
// Models the paper's "prolog" benchmark (the minivip Prolog interpreter):
// the characteristic workload of a Prolog engine is depth-first search
// with unification failure and backtracking. The program solves N-queens
// by explicit choice-point backtracking; conflict checks play the role of
// failing unifications.
//
// Branch behaviour: conflict tests that are mostly "no conflict" early in a
// row and flip deeper in the board (correlated with depth), column
// exhaustion (loop exit), and a rare solution branch.
//
// Memory map:
//   [0]       board size
//   [1..n]    column of the queen in each row
//   [OUT..+2] solutions found, nodes visited
//
//===----------------------------------------------------------------------===//

#include "workloads/Workload.h"

#include "ir/IRBuilder.h"

using namespace bpcr;

Module bpcr::buildProlog(uint64_t Seed) {
  Module M;
  M.Name = "prolog";

  // The seed permutes the column probe order via a stride that is coprime
  // with n, so different seeds explore the tree in different orders.
  const int64_t NQ = 9;
  const int64_t Cols = 1;
  const int64_t Out = Cols + NQ;
  M.MemWords = static_cast<uint64_t>(Out + 4);
  std::vector<int64_t> Mem(static_cast<size_t>(Out + 4), 0);
  Mem[0] = NQ;
  M.InitialMemory = std::move(Mem);

  // Strides coprime with NQ=9 so the probe order is a permutation.
  static const int64_t StrideTable[] = {1, 2, 4, 5, 7, 8};
  const int64_t Stride = StrideTable[Seed % 6];

  auto R = [](Reg X) { return Operand::reg(X); };
  auto K = [](int64_t V) { return Operand::imm(V); };

  uint32_t Main = M.addFunction("main", 0);
  M.EntryFunction = Main;
  IRBuilder B(M, Main);

  Reg Row = B.newReg();
  Reg Probe = B.newReg(); // probe index 0..NQ (not the column itself)
  Reg Col = B.newReg();
  Reg Rr = B.newReg();
  Reg Cc = B.newReg();
  Reg D1 = B.newReg();
  Reg D2 = B.newReg();
  Reg Cond = B.newReg();
  Reg Solutions = B.newReg();
  Reg Nodes = B.newReg();
  Reg T = B.newReg();

  uint32_t Entry = B.newBlock("entry");
  uint32_t Advance = B.newBlock("advance");
  uint32_t TryCol = B.newBlock("try_col");
  uint32_t TrailA = B.newBlock("trail_a");
  uint32_t TrailB = B.newBlock("trail_b");
  uint32_t TryCol2 = B.newBlock("try_col2");
  uint32_t Chk = B.newBlock("chk");
  uint32_t ChkBody = B.newBlock("chk_body");
  uint32_t ChkDiag = B.newBlock("chk_diag");
  uint32_t AbsNeg = B.newBlock("abs_neg");
  uint32_t AbsDone = B.newBlock("abs_done");
  uint32_t ChkNext = B.newBlock("chk_next");
  uint32_t Safe = B.newBlock("safe");
  uint32_t Solution = B.newBlock("solution");
  uint32_t RecLoop = B.newBlock("rec_loop");
  uint32_t RecBody = B.newBlock("rec_body");
  uint32_t RecDone = B.newBlock("rec_done");
  uint32_t Descend = B.newBlock("descend");
  uint32_t Backtrack = B.newBlock("backtrack");
  uint32_t Done = B.newBlock("done");

  B.setInsertPoint(Entry);
  B.movImm(Row, 0);
  B.movImm(Solutions, 0);
  B.movImm(Nodes, 0);
  // probe[0] starts at -1; stored probe indexes live in Cols[row].
  B.store(K(Cols), K(0), K(-1));
  B.jmp(Advance);

  // Advance: try the next column in the current row.
  B.setInsertPoint(Advance);
  B.load(Probe, K(Cols), R(Row));
  B.add(Probe, R(Probe), K(1));
  B.store(K(Cols), R(Row), R(Probe));
  B.cmpGe(Cond, R(Probe), K(NQ));
  B.br(R(Cond), Backtrack, TryCol);

  B.setInsertPoint(TryCol);
  B.add(Nodes, R(Nodes), K(1));
  // Choice points alternate between two trail segments (probe parity): an
  // alternating branch within the advance loop.
  B.band(T, R(Probe), K(1));
  B.cmpNe(Cond, R(T), K(0));
  B.br(R(Cond), TrailB, TrailA);

  B.setInsertPoint(TrailA);
  B.store(K(Out), K(3), R(Probe));
  B.jmp(TryCol2);

  B.setInsertPoint(TrailB);
  B.store(K(Out), K(2), R(Probe));
  B.jmp(TryCol2);

  B.setInsertPoint(TryCol2);
  // col = (probe * stride) % NQ.
  B.mul(Col, R(Probe), K(Stride));
  B.rem(Col, R(Col), K(NQ));
  B.movImm(Rr, 0);
  B.jmp(Chk);

  B.setInsertPoint(Chk);
  B.cmpGe(Cond, R(Rr), R(Row));
  B.br(R(Cond), Safe, ChkBody);

  B.setInsertPoint(ChkBody);
  // Column of the queen in row rr (stored as probe; translate).
  B.load(T, K(Cols), R(Rr));
  B.mul(Cc, R(T), K(Stride));
  B.rem(Cc, R(Cc), K(NQ));
  B.cmpEq(Cond, R(Cc), R(Col));
  B.br(R(Cond), Advance, ChkDiag); // column conflict -> fail

  B.setInsertPoint(ChkDiag);
  B.sub(D1, R(Cc), R(Col));
  B.cmpLt(Cond, R(D1), K(0));
  B.br(R(Cond), AbsNeg, AbsDone);

  B.setInsertPoint(AbsNeg);
  B.sub(D1, K(0), R(D1));
  B.jmp(AbsDone);

  B.setInsertPoint(AbsDone);
  B.sub(D2, R(Row), R(Rr));
  B.cmpEq(Cond, R(D1), R(D2));
  B.br(R(Cond), Advance, ChkNext); // diagonal conflict -> fail

  B.setInsertPoint(ChkNext);
  B.add(Rr, R(Rr), K(1));
  B.jmp(Chk);

  B.setInsertPoint(Safe);
  B.add(Row, R(Row), K(1));
  B.cmpGe(Cond, R(Row), K(NQ));
  B.br(R(Cond), Solution, Descend);

  // A solution: record the bindings (constant-trip loop over the board,
  // executed rarely — like a Prolog engine materializing an answer).
  B.setInsertPoint(Solution);
  B.add(Solutions, R(Solutions), K(1));
  B.movImm(Rr, 0);
  B.jmp(RecLoop);

  B.setInsertPoint(RecLoop);
  B.cmpGe(Cond, R(Rr), K(NQ)); // constant trip count
  B.br(R(Cond), RecDone, RecBody);

  B.setInsertPoint(RecBody);
  B.load(T, K(Cols), R(Rr));
  B.store(K(Out), K(2), R(T)); // record the binding
  B.add(Rr, R(Rr), K(1));
  B.jmp(RecLoop);

  B.setInsertPoint(RecDone);
  B.sub(Row, R(Row), K(1));
  B.jmp(Advance);

  B.setInsertPoint(Descend);
  B.store(K(Cols), R(Row), K(-1));
  B.jmp(Advance);

  B.setInsertPoint(Backtrack);
  B.sub(Row, R(Row), K(1));
  B.cmpLt(Cond, R(Row), K(0));
  B.br(R(Cond), Done, Advance);

  B.setInsertPoint(Done);
  B.store(K(Out), K(0), R(Solutions));
  B.store(K(Out), K(1), R(Nodes));
  B.ret(R(Solutions));

  return M;
}
