//===- workloads/Abalone.cpp - Alpha-beta game-tree search ---------------===//
//
// Part of the bpcr project (Krall, PLDI 1994 reproduction).
//
//===----------------------------------------------------------------------===//
//
// Models the paper's "abalone" benchmark: "a board game employing
// alpha-beta search". A recursive negamax walks an implicit random game
// tree; node values and branching factors derive from a mixing hash of the
// node id, so the tree is deterministic per seed without being stored.
//
// Branch behaviour: child loops with small variable trip counts (loop-exit
// machines), beta-cutoff tests whose outcome correlates with move order,
// and best-value updates that fire mostly on the first child.
//
// Memory map:  [0] result accumulator.
//
//===----------------------------------------------------------------------===//

#include "workloads/Workload.h"

#include "ir/IRBuilder.h"

using namespace bpcr;

Module bpcr::buildAbalone(uint64_t Seed) {
  Module M;
  M.Name = "abalone";
  M.MemWords = 64;

  auto R = [](Reg X) { return Operand::reg(X); };
  auto K = [](int64_t V) { return Operand::imm(V); };

  // -- evalLeaf(node) ---------------------------------------------------------
  // Board evaluation: a constant-trip feature loop (8 features) with a
  // biased presence test — the predictable leaf work a real evaluator has.
  uint32_t EvalLeaf = M.addFunction("eval_leaf", 1);
  {
    IRBuilder B(M, EvalLeaf);
    Reg Node = 0;
    Reg H = B.newReg(), Feat = B.newReg(), Score = B.newReg();
    Reg T = B.newReg(), Cond = B.newReg();

    uint32_t Entry = B.newBlock("entry");
    uint32_t Loop = B.newBlock("feat_loop");
    uint32_t Body = B.newBlock("feat_body");
    uint32_t Present = B.newBlock("present");
    uint32_t Absent = B.newBlock("absent");
    uint32_t Next = B.newBlock("next");
    uint32_t Done = B.newBlock("done");

    B.setInsertPoint(Entry);
    B.mul(H, R(Node), K(0x9e3779b97f4a7c15LL));
    B.shr(T, R(H), K(31));
    B.bxor(H, R(H), R(T));
    B.band(H, R(H), K(0x7fffffffffffLL));
    B.movImm(Feat, 0);
    B.movImm(Score, 0);
    B.jmp(Loop);

    B.setInsertPoint(Loop);
    B.cmpGe(Cond, R(Feat), K(8)); // constant trip count
    B.br(R(Cond), Done, Body);

    B.setInsertPoint(Body);
    // Feature present ~ 7/8 of the time: a strongly biased branch.
    B.shr(T, R(H), R(Feat));
    B.band(T, R(T), K(7));
    B.cmpNe(Cond, R(T), K(0));
    B.br(R(Cond), Present, Absent);

    B.setInsertPoint(Present);
    B.add(Score, R(Score), R(Feat));
    B.jmp(Next);

    B.setInsertPoint(Absent);
    B.sub(Score, R(Score), K(2));
    B.jmp(Next);

    B.setInsertPoint(Next);
    B.add(Feat, R(Feat), K(1));
    B.jmp(Loop);

    B.setInsertPoint(Done);
    B.rem(T, R(H), K(201));
    B.sub(T, R(T), K(100));
    B.add(Score, R(Score), R(T));
    B.ret(R(Score));
  }

  // -- negamax(node, depth, alpha, beta) -------------------------------------
  uint32_t Negamax = M.addFunction("negamax", 4);
  {
    IRBuilder B(M, Negamax);
    Reg Node = 0, Depth = 1, Alpha = 2, Beta = 3;
    Reg H = B.newReg();       // mixing hash of the node
    Reg Children = B.newReg();
    Reg Best = B.newReg();
    Reg I = B.newReg();
    Reg Child = B.newReg();
    Reg V = B.newReg();
    Reg T = B.newReg();
    Reg Cond = B.newReg();

    uint32_t Entry = B.newBlock("entry");
    uint32_t Leaf = B.newBlock("leaf");
    uint32_t Inner = B.newBlock("inner");
    uint32_t Loop = B.newBlock("loop");
    uint32_t Body = B.newBlock("body");
    uint32_t Improve = B.newBlock("improve");
    uint32_t AfterBest = B.newBlock("after_best");
    uint32_t Cut = B.newBlock("cut");
    uint32_t Next = B.newBlock("next");
    uint32_t Done = B.newBlock("done");

    B.setInsertPoint(Entry);
    // h = mix(node): h = node * C; h ^= h >> 29; h *= C2; h ^= h >> 32.
    B.mul(H, R(Node), K(0x5851f42d4c957f2dLL));
    B.shr(T, R(H), K(29));
    B.bxor(H, R(H), R(T));
    B.mul(H, R(H), K(0x14057b7ef767814fLL));
    B.shr(T, R(H), K(32));
    B.bxor(H, R(H), R(T));
    // Positive hash for modulo work.
    B.band(H, R(H), K(0x7fffffffffffLL));
    B.cmpEq(Cond, R(Depth), K(0));
    B.br(R(Cond), Leaf, Inner);

    B.setInsertPoint(Leaf);
    B.call(V, EvalLeaf, {R(Node)});
    B.ret(R(V));

    B.setInsertPoint(Inner);
    // children = 2 + h % 3 (2..4 moves).
    B.rem(Children, R(H), K(3));
    B.add(Children, R(Children), K(2));
    B.movImm(Best, -100000);
    B.movImm(I, 0);
    B.jmp(Loop);

    B.setInsertPoint(Loop);
    B.cmpGe(Cond, R(I), R(Children));
    B.br(R(Cond), Done, Body);

    B.setInsertPoint(Body);
    // child id = node * 4 + i + 1 (implicit tree).
    B.mul(Child, R(Node), K(4));
    B.add(Child, R(Child), R(I));
    B.add(Child, R(Child), K(1));
    // lower = max(alpha, best).
    B.cmpGt(Cond, R(Best), R(Alpha));
    Reg Lower = B.newReg();
    B.mov(Lower, R(Alpha));
    // Conditional move via arithmetic select: lower += cond*(best-alpha).
    B.sub(T, R(Best), R(Alpha));
    B.mul(T, R(T), R(Cond));
    B.add(Lower, R(Lower), R(T));
    // v = -negamax(child, depth-1, -beta, -lower).
    Reg NegBeta = B.newReg(), NegLower = B.newReg(), DepthM1 = B.newReg();
    B.sub(NegBeta, K(0), R(Beta));
    B.sub(NegLower, K(0), R(Lower));
    B.sub(DepthM1, R(Depth), K(1));
    B.call(V, Negamax, {R(Child), R(DepthM1), R(NegBeta), R(NegLower)});
    B.sub(V, K(0), R(V));
    B.cmpGt(Cond, R(V), R(Best));
    B.br(R(Cond), Improve, AfterBest);

    B.setInsertPoint(Improve);
    B.mov(Best, R(V));
    B.jmp(AfterBest);

    B.setInsertPoint(AfterBest);
    // Beta cutoff.
    B.cmpGe(Cond, R(Best), R(Beta));
    B.br(R(Cond), Cut, Next);

    B.setInsertPoint(Cut);
    B.ret(R(Best));

    B.setInsertPoint(Next);
    B.add(I, R(I), K(1));
    B.jmp(Loop);

    B.setInsertPoint(Done);
    B.ret(R(Best));
  }

  // -- main: search a series of root positions -------------------------------
  uint32_t Main = M.addFunction("main", 0);
  M.EntryFunction = Main;
  {
    IRBuilder B(M, Main);
    Reg Root = B.newReg();
    Reg Acc = B.newReg();
    Reg V = B.newReg();
    Reg Cond = B.newReg();

    uint32_t Entry = B.newBlock("entry");
    uint32_t Loop = B.newBlock("roots");
    uint32_t Body = B.newBlock("search");
    uint32_t Checkpoint = B.newBlock("checkpoint");
    uint32_t Improved = B.newBlock("improved");
    uint32_t NotImproved = B.newBlock("not_improved");
    uint32_t Next = B.newBlock("next");
    uint32_t Done = B.newBlock("done");

    const int64_t NumRoots = 600;
    const int64_t Depth = 5;
    int64_t SeedBase = static_cast<int64_t>(Seed % 100000) * 131;

    Reg BestRoot = B.newReg();
    Reg T = B.newReg();

    B.setInsertPoint(Entry);
    B.movImm(Root, 0);
    B.movImm(Acc, 0);
    B.movImm(BestRoot, -1000000);
    B.jmp(Loop);

    B.setInsertPoint(Loop);
    B.cmpGe(Cond, R(Root), K(NumRoots));
    B.br(R(Cond), Done, Body);

    B.setInsertPoint(Body);
    Reg Node = B.newReg();
    B.mul(Node, R(Root), K(977));
    B.add(Node, R(Node), K(SeedBase + 7));
    B.call(V, Negamax, {R(Node), K(Depth), K(-100000), K(100000)});
    B.add(Acc, R(Acc), R(V));
    // Periodic checkpoint every 8 root moves: a period-8 local pattern an
    // intra-loop machine can capture.
    B.band(T, R(Root), K(7));
    B.cmpEq(Cond, R(T), K(7));
    B.br(R(Cond), Checkpoint, Next);

    B.setInsertPoint(Checkpoint);
    B.store(K(1), K(0), R(Acc));
    // New best root line? Biased: improvements get rarer as search runs.
    B.cmpGt(Cond, R(V), R(BestRoot));
    B.br(R(Cond), Improved, NotImproved);

    B.setInsertPoint(Improved);
    B.mov(BestRoot, R(V));
    B.jmp(Next);

    B.setInsertPoint(NotImproved);
    B.jmp(Next);

    B.setInsertPoint(Next);
    B.add(Root, R(Root), K(1));
    B.jmp(Loop);

    B.setInsertPoint(Done);
    B.store(K(0), K(0), R(Acc));
    B.ret(R(Acc));
  }

  return M;
}
