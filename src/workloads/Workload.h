//===- workloads/Workload.h - Synthetic benchmark programs ------*- C++ -*-===//
//
// Part of the bpcr project (Krall, PLDI 1994 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The benchmark suite. The paper evaluates eight programs (abalone, the
/// lcc C compiler front end, compress, ghostview, the authors' own predict
/// tool, a Prolog interpreter, an instruction scheduler, and the doduc
/// floating-point simulation). Each synthetic workload here is an IR
/// program modelled on the control-flow character of its namesake:
///
///   abalone     alpha-beta game-tree search (recursion, pruning branches)
///   c-compiler  lexer/parser over synthetic source text (dispatch chains)
///   compress    LZW-style compression (hash probe hit/miss correlation)
///   ghostview   operator-dispatch interpreter with bigram-correlated ops
///   predict     trace-analysis tool (counter updates, bucket searches)
///   prolog      backtracking constraint search (N-queens style)
///   scheduler   list scheduling over random DAGs (ready-scan loops)
///   doduc       fixed-point numeric kernels (regular loops, FP-like)
///
/// Programs take a seed so the dataset-sensitivity ablation can rerun them
/// on different inputs.
///
//===----------------------------------------------------------------------===//

#ifndef BPCR_WORKLOADS_WORKLOAD_H
#define BPCR_WORKLOADS_WORKLOAD_H

#include "ir/Module.h"
#include "trace/ColumnarTrace.h"
#include "trace/Trace.h"

#include <cstdint>
#include <string>
#include <vector>

namespace bpcr {

/// One benchmark program generator.
struct Workload {
  const char *Name;
  const char *Description;
  Module (*Build)(uint64_t Seed);
};

/// The eight-benchmark suite, in the paper's column order.
const std::vector<Workload> &allWorkloads();

/// Builds one workload by name; asserts on unknown names.
Module buildWorkload(const std::string &Name, uint64_t Seed);

/// Builds the workload, executes it (capped at \p MaxBranchEvents like the
/// paper's 1M-branch traces) and returns the trace. Branch ids are assigned
/// on \p OutModule.
Trace traceWorkload(const Workload &W, uint64_t Seed, Module &OutModule,
                    uint64_t MaxBranchEvents = 1'000'000);

/// Like traceWorkload but collects into the columnar representation
/// (trace/ColumnarTrace.h) via batched emission, and finalizes the
/// per-branch index for \p OutModule. Event-for-event identical to the
/// legacy trace.
ColumnarTrace traceWorkloadColumnar(const Workload &W, uint64_t Seed,
                                    Module &OutModule,
                                    uint64_t MaxBranchEvents = 1'000'000);

// Individual builders (exposed for unit tests).
Module buildAbalone(uint64_t Seed);
Module buildCCompiler(uint64_t Seed);
Module buildCompress(uint64_t Seed);
Module buildGhostview(uint64_t Seed);
Module buildPredictTool(uint64_t Seed);
Module buildProlog(uint64_t Seed);
Module buildScheduler(uint64_t Seed);
Module buildDoduc(uint64_t Seed);

} // namespace bpcr

#endif // BPCR_WORKLOADS_WORKLOAD_H
