//===- workloads/Ghostview.cpp - PostScript-style op dispatch -------------===//
//
// Part of the bpcr project (Krall, PLDI 1994 reproduction).
//
//===----------------------------------------------------------------------===//
//
// Models the paper's "ghostview" benchmark (an X PostScript previewer): an
// interpreter loop dispatching page-description operators. The operator
// stream follows a bigram Markov chain (after a MOVETO mostly LINETOs,
// paths end with STROKE or FILL, ...), giving the dispatch cascade strongly
// correlated branch behaviour — the sweet spot of the correlated-branch
// machines.
//
// Operators: 0 MOVETO, 1 LINETO, 2 CURVETO, 3 CLOSE, 4 STROKE, 5 FILL,
//            6 SETGRAY, 7 SHOWPAGE.
//
// Memory map:
//   [0]        op count
//   [1..N]     operator stream
//   [ARG..]    per-op argument words
//   [OUT..+8]  statistics
//
//===----------------------------------------------------------------------===//

#include "workloads/Workload.h"

#include "ir/IRBuilder.h"
#include "support/Rng.h"

using namespace bpcr;

Module bpcr::buildGhostview(uint64_t Seed) {
  Module M;
  M.Name = "ghostview";

  const int64_t N = 90000;
  const int64_t Ops = 1;
  const int64_t Args = Ops + N;
  const int64_t Out = Args + N;
  M.MemWords = static_cast<uint64_t>(Out + 8);

  // Bigram transition table (percent): rows = current op, entries sum 100.
  static const int Trans[8][8] = {
      // MOVE LINE CURVE CLOSE STROKE FILL GRAY PAGE
      {2, 72, 14, 6, 3, 2, 1, 0},   // after MOVETO
      {1, 62, 10, 18, 6, 2, 1, 0},  // after LINETO
      {1, 30, 48, 14, 5, 1, 1, 0},  // after CURVETO
      {10, 2, 1, 2, 48, 32, 4, 1},  // after CLOSE
      {58, 4, 2, 1, 2, 2, 28, 3},   // after STROKE
      {62, 3, 2, 1, 2, 2, 25, 3},   // after FILL
      {78, 8, 4, 1, 2, 2, 2, 3},    // after SETGRAY
      {92, 2, 1, 1, 1, 1, 1, 1},    // after SHOWPAGE
  };

  Rng Gen(Seed * 0x6a09e667f3bcc909ULL + 3);
  std::vector<int64_t> Mem(static_cast<size_t>(Out + 8), 0);
  Mem[0] = N;
  {
    int Cur = 0; // start with MOVETO
    for (int64_t I = 0; I < N; ++I) {
      Mem[static_cast<size_t>(Ops + I)] = Cur;
      Mem[static_cast<size_t>(Args + I)] =
          static_cast<int64_t>(Gen.below(4096));
      int Dice = static_cast<int>(Gen.below(100));
      int Acc = 0;
      for (int Next = 0; Next < 8; ++Next) {
        Acc += Trans[Cur][Next];
        if (Dice < Acc) {
          Cur = Next;
          break;
        }
      }
    }
  }
  M.InitialMemory = std::move(Mem);

  auto R = [](Reg X) { return Operand::reg(X); };
  auto K = [](int64_t V) { return Operand::imm(V); };

  // -- transform(x, y): device-space mapping with a clip test ------------------
  // A 2-iteration constant loop (matrix rows) and a strongly biased
  // clip-bounds guard (~9/10 inside).
  uint32_t Transform = M.addFunction("transform", 2);
  {
    IRBuilder B(M, Transform);
    Reg Xa = 0, Ya = 1;
    Reg Rw = B.newReg(), Acc = B.newReg(), Cond = B.newReg();
    Reg T = B.newReg();

    uint32_t Entry = B.newBlock("entry");
    uint32_t RowLoop = B.newBlock("row_loop");
    uint32_t RowBody = B.newBlock("row_body");
    uint32_t Clip = B.newBlock("clip");
    uint32_t Inside = B.newBlock("inside");
    uint32_t Outside = B.newBlock("outside");

    B.setInsertPoint(Entry);
    B.movImm(Rw, 0);
    B.movImm(Acc, 0);
    B.jmp(RowLoop);

    B.setInsertPoint(RowLoop);
    B.cmpGe(Cond, R(Rw), K(2)); // constant trip count
    B.br(R(Cond), Clip, RowBody);

    B.setInsertPoint(RowBody);
    B.mul(T, R(Xa), K(3));
    B.add(T, R(T), R(Ya));
    B.add(T, R(T), R(Rw));
    B.add(Acc, R(Acc), R(T));
    B.add(Rw, R(Rw), K(1));
    B.jmp(RowLoop);

    B.setInsertPoint(Clip);
    // Device space is 0..8191; coordinates rarely clip.
    B.band(T, R(Acc), K(8191));
    B.cmpGt(Cond, R(T), K(7400));
    B.br(R(Cond), Outside, Inside);

    B.setInsertPoint(Inside);
    B.ret(R(Acc));

    B.setInsertPoint(Outside);
    B.band(Acc, R(Acc), K(4095));
    B.ret(R(Acc));
  }

  uint32_t Main = M.addFunction("main", 0);
  M.EntryFunction = Main;
  IRBuilder B(M, Main);

  Reg I = B.newReg();
  Reg Op = B.newReg();
  Reg Arg = B.newReg();
  Reg Cond = B.newReg();
  Reg X = B.newReg();
  Reg Y = B.newReg();
  Reg Segs = B.newReg();   // segments in the current path
  Reg Gray = B.newReg();
  Reg Pixels = B.newReg(); // accumulated "rendering" work
  Reg Pages = B.newReg();
  Reg J = B.newReg();

  uint32_t Entry = B.newBlock("entry");
  uint32_t Loop = B.newBlock("loop");
  uint32_t Fetch = B.newBlock("fetch");
  uint32_t D1 = B.newBlock("d_moveto");
  uint32_t D2 = B.newBlock("d_lineto");
  uint32_t D3 = B.newBlock("d_curveto");
  uint32_t D4 = B.newBlock("d_close");
  uint32_t D5 = B.newBlock("d_stroke");
  uint32_t D6 = B.newBlock("d_fill");
  uint32_t D7 = B.newBlock("d_setgray");
  uint32_t HMove = B.newBlock("h_moveto");
  uint32_t HLine = B.newBlock("h_lineto");
  uint32_t HCurve = B.newBlock("h_curveto");
  uint32_t HCurveLoop = B.newBlock("h_curve_loop");
  uint32_t HCurveBody = B.newBlock("h_curve_body");
  uint32_t HClose = B.newBlock("h_close");
  uint32_t HStroke = B.newBlock("h_stroke");
  uint32_t HStrokeLoop = B.newBlock("h_stroke_loop");
  uint32_t HStrokeBody = B.newBlock("h_stroke_body");
  uint32_t HStrokeInk = B.newBlock("h_stroke_ink");
  uint32_t HStrokeGap = B.newBlock("h_stroke_gap");
  uint32_t HFill = B.newBlock("h_fill");
  uint32_t HGray = B.newBlock("h_setgray");
  uint32_t HPage = B.newBlock("h_showpage");
  uint32_t NextOp = B.newBlock("next");
  uint32_t Done = B.newBlock("done");

  B.setInsertPoint(Entry);
  B.movImm(I, 0);
  B.movImm(X, 0);
  B.movImm(Y, 0);
  B.movImm(Segs, 0);
  B.movImm(Gray, 0);
  B.movImm(Pixels, 0);
  B.movImm(Pages, 0);
  B.jmp(Loop);

  B.setInsertPoint(Loop);
  B.cmpGe(Cond, R(I), K(N));
  B.br(R(Cond), Done, Fetch);

  // Dispatch cascade ordered by static frequency.
  B.setInsertPoint(Fetch);
  B.load(Op, K(Ops), R(I));
  B.load(Arg, K(Args), R(I));
  B.cmpEq(Cond, R(Op), K(1));
  B.br(R(Cond), HLine, D1);

  B.setInsertPoint(D1);
  B.cmpEq(Cond, R(Op), K(0));
  B.br(R(Cond), HMove, D2);

  B.setInsertPoint(D2);
  B.cmpEq(Cond, R(Op), K(2));
  B.br(R(Cond), HCurve, D3);

  B.setInsertPoint(D3);
  B.cmpEq(Cond, R(Op), K(3));
  B.br(R(Cond), HClose, D4);

  B.setInsertPoint(D4);
  B.cmpEq(Cond, R(Op), K(4));
  B.br(R(Cond), HStroke, D5);

  B.setInsertPoint(D5);
  B.cmpEq(Cond, R(Op), K(5));
  B.br(R(Cond), HFill, D6);

  B.setInsertPoint(D6);
  B.cmpEq(Cond, R(Op), K(6));
  B.br(R(Cond), HGray, D7);

  B.setInsertPoint(D7);
  B.jmp(HPage);

  B.setInsertPoint(HMove);
  B.band(X, R(Arg), K(63));
  B.shr(Y, R(Arg), K(6));
  Reg Dev = B.newReg();
  B.call(Dev, Transform, {R(X), R(Y)});
  B.band(X, R(Dev), K(63));
  B.jmp(NextOp);

  B.setInsertPoint(HLine);
  B.add(X, R(X), K(1));
  B.add(Segs, R(Segs), K(1));
  B.jmp(NextOp);

  // CURVETO: flatten into 4 segments.
  B.setInsertPoint(HCurve);
  B.movImm(J, 0);
  B.jmp(HCurveLoop);

  B.setInsertPoint(HCurveLoop);
  B.cmpGe(Cond, R(J), K(4));
  B.br(R(Cond), NextOp, HCurveBody);

  B.setInsertPoint(HCurveBody);
  B.add(Segs, R(Segs), K(1));
  B.add(Y, R(Y), R(J));
  B.add(J, R(J), K(1));
  B.jmp(HCurveLoop);

  B.setInsertPoint(HClose);
  B.add(Segs, R(Segs), K(1));
  B.jmp(NextOp);

  // STROKE: rasterize each segment of the current path.
  B.setInsertPoint(HStroke);
  B.movImm(J, 0);
  B.jmp(HStrokeLoop);

  B.setInsertPoint(HStrokeLoop);
  B.cmpGe(Cond, R(J), R(Segs));
  B.br(R(Cond), HFill, HStrokeBody); // fall through to reset in HFill

  B.setInsertPoint(HStrokeBody);
  B.add(Pixels, R(Pixels), R(Gray));
  B.add(Pixels, R(Pixels), K(3));
  // Dash pattern: every other segment is inked — a perfectly alternating
  // intra-loop branch (the paper's figure-1 situation).
  B.band(Cond, R(J), K(1));
  B.br(R(Cond), HStrokeGap, HStrokeInk);

  B.setInsertPoint(HStrokeInk);
  B.add(Pixels, R(Pixels), K(2));
  B.add(J, R(J), K(1));
  B.jmp(HStrokeLoop);

  B.setInsertPoint(HStrokeGap);
  B.add(J, R(J), K(1));
  B.jmp(HStrokeLoop);

  // FILL (also the tail of STROKE): account area, reset the path.
  B.setInsertPoint(HFill);
  B.mul(Cond, R(Segs), K(2));
  B.add(Pixels, R(Pixels), R(Cond));
  B.movImm(Segs, 0);
  B.jmp(NextOp);

  B.setInsertPoint(HGray);
  B.band(Gray, R(Arg), K(7));
  B.jmp(NextOp);

  B.setInsertPoint(HPage);
  B.add(Pages, R(Pages), K(1));
  B.movImm(Segs, 0);
  B.jmp(NextOp);

  B.setInsertPoint(NextOp);
  B.add(I, R(I), K(1));
  B.jmp(Loop);

  B.setInsertPoint(Done);
  B.store(K(Out), K(0), R(Pixels));
  B.store(K(Out), K(1), R(Pages));
  B.store(K(Out), K(2), R(X));
  B.store(K(Out), K(3), R(Y));
  B.ret(R(Pixels));

  return M;
}
