//===- workloads/Scheduler.cpp - List instruction scheduler ---------------===//
//
// Part of the bpcr project (Krall, PLDI 1994 reproduction).
//
//===----------------------------------------------------------------------===//
//
// Models the paper's "scheduler" benchmark (an instruction scheduler): list
// scheduling over a stream of random dependence DAGs. Every cycle the
// ready list is scanned for the highest-priority ready node; issuing a
// node decrements its successors' predecessor counts.
//
// Branch behaviour: ready-scan tests whose outcome density changes as the
// DAG drains (correlated with progress), priority-compare branches, and
// per-DAG loops with similar trip counts.
//
// Memory map:
//   [0]           DAG count G
//   [1]           nodes per DAG V
//   [DESC..]      packed successor slots: (g*V + v)*E + e -> succ id
//                 (own id = empty slot)
//   [LAT..]       per-(g,v) latency 1..3
//   [NPRED..+V]   working: remaining predecessor counts
//   [READY..+V]   working: earliest issue cycle
//   [DONE..+V]    working: scheduled flag
//   [OUT..+2]     total cycles, issued nodes
//
//===----------------------------------------------------------------------===//

#include "workloads/Workload.h"

#include "ir/IRBuilder.h"
#include "support/Rng.h"

using namespace bpcr;

Module bpcr::buildScheduler(uint64_t Seed) {
  Module M;
  M.Name = "scheduler";

  const int64_t G = 120; // DAGs
  const int64_t V = 36;  // nodes per DAG
  const int64_t E = 3;   // successor slots per node
  const int64_t Desc = 2;
  const int64_t Lat = Desc + G * V * E;
  const int64_t NPred = Lat + G * V;
  const int64_t Ready = NPred + V;
  const int64_t DoneF = Ready + V;
  const int64_t Out = DoneF + V;
  M.MemWords = static_cast<uint64_t>(Out + 4);

  Rng Gen(Seed * 0x94d049bb133111ebULL + 31);
  std::vector<int64_t> Mem(static_cast<size_t>(Out + 4), 0);
  Mem[0] = G;
  Mem[1] = V;
  for (int64_t GI = 0; GI < G; ++GI)
    for (int64_t VI = 0; VI < V; ++VI) {
      Mem[static_cast<size_t>(Lat + GI * V + VI)] =
          1 + static_cast<int64_t>(Gen.below(3));
      for (int64_t EI = 0; EI < E; ++EI) {
        int64_t Succ = VI; // empty slot
        if (VI + 1 < V && Gen.chance(55, 100))
          Succ = VI + 1 + static_cast<int64_t>(
                              Gen.below(static_cast<uint64_t>(V - VI - 1)));
        Mem[static_cast<size_t>(Desc + (GI * V + VI) * E + EI)] = Succ;
      }
    }
  M.InitialMemory = std::move(Mem);

  auto R = [](Reg X) { return Operand::reg(X); };
  auto K = [](int64_t C) { return Operand::imm(C); };

  uint32_t Main = M.addFunction("main", 0);
  M.EntryFunction = Main;
  IRBuilder B(M, Main);

  Reg Gi = B.newReg(), Vi = B.newReg(), Ei = B.newReg();
  Reg Cycle = B.newReg(), Left = B.newReg();
  Reg BestN = B.newReg(), BestP = B.newReg();
  Reg Base = B.newReg(), Succ = B.newReg();
  Reg T = B.newReg(), T2 = B.newReg(), Cond = B.newReg();
  Reg TotCycles = B.newReg(), Issued = B.newReg();

  uint32_t Entry = B.newBlock("entry");
  uint32_t GraphLoop = B.newBlock("graph_loop");
  uint32_t ResetInit = B.newBlock("reset_init");
  uint32_t ResetLoop = B.newBlock("reset_loop");
  uint32_t ResetBody = B.newBlock("reset_body");
  uint32_t CountInit = B.newBlock("count_init");
  uint32_t CountNode = B.newBlock("count_node");
  uint32_t CountEdgeInit = B.newBlock("count_edge_init");
  uint32_t CountEdge = B.newBlock("count_edge");
  uint32_t CountEdgeBody = B.newBlock("count_edge_body");
  uint32_t CountEdgeInc = B.newBlock("count_edge_inc");
  uint32_t CountEdgeNext = B.newBlock("count_edge_next");
  uint32_t CountNodeNext = B.newBlock("count_node_next");
  uint32_t SchedInit = B.newBlock("sched_init");
  uint32_t ScanInit = B.newBlock("scan_init");
  uint32_t ScanLoop = B.newBlock("scan_loop");
  uint32_t ScanDoneChk = B.newBlock("scan_done_chk");
  uint32_t ScanPredChk = B.newBlock("scan_pred_chk");
  uint32_t ScanTimeChk = B.newBlock("scan_time_chk");
  uint32_t ScanPrio = B.newBlock("scan_prio");
  uint32_t ScanTake = B.newBlock("scan_take");
  uint32_t ScanNext = B.newBlock("scan_next");
  uint32_t BankA = B.newBlock("bank_a");
  uint32_t BankB = B.newBlock("bank_b");
  uint32_t AfterScan = B.newBlock("after_scan");
  uint32_t Stall = B.newBlock("stall");
  uint32_t Issue = B.newBlock("issue");
  uint32_t IssueEdge = B.newBlock("issue_edge");
  uint32_t IssueEdgeBody = B.newBlock("issue_edge_body");
  uint32_t IssueUpd = B.newBlock("issue_upd");
  uint32_t StoreReady = B.newBlock("store_ready");
  uint32_t IssueEdgeNext = B.newBlock("issue_edge_next");
  uint32_t CycleAdv = B.newBlock("cycle_adv");
  uint32_t GraphAdv = B.newBlock("graph_adv");
  uint32_t StatsDump = B.newBlock("stats_dump");
  uint32_t GraphNext = B.newBlock("graph_next");
  uint32_t AllDone = B.newBlock("all_done");

  B.setInsertPoint(Entry);
  B.movImm(Gi, 0);
  B.movImm(TotCycles, 0);
  B.movImm(Issued, 0);
  B.jmp(GraphLoop);

  B.setInsertPoint(GraphLoop);
  B.cmpGe(Cond, R(Gi), K(G));
  B.br(R(Cond), AllDone, ResetInit);

  B.setInsertPoint(ResetInit);
  B.mul(Base, R(Gi), K(V));
  B.movImm(Vi, 0);
  B.jmp(ResetLoop);

  B.setInsertPoint(ResetLoop);
  B.cmpGe(Cond, R(Vi), K(V));
  B.br(R(Cond), CountInit, ResetBody);

  B.setInsertPoint(ResetBody);
  B.store(K(NPred), R(Vi), K(0));
  B.store(K(Ready), R(Vi), K(0));
  B.store(K(DoneF), R(Vi), K(0));
  B.add(Vi, R(Vi), K(1));
  B.jmp(ResetLoop);

  B.setInsertPoint(CountInit);
  B.movImm(Vi, 0);
  B.jmp(CountNode);

  B.setInsertPoint(CountNode);
  B.cmpGe(Cond, R(Vi), K(V));
  B.br(R(Cond), SchedInit, CountEdgeInit);

  B.setInsertPoint(CountEdgeInit);
  B.movImm(Ei, 0);
  B.jmp(CountEdge);

  B.setInsertPoint(CountEdge);
  B.cmpGe(Cond, R(Ei), K(E));
  B.br(R(Cond), CountNodeNext, CountEdgeBody);

  B.setInsertPoint(CountEdgeBody);
  B.add(T, R(Base), R(Vi));
  B.mul(T, R(T), K(E));
  B.add(T, R(T), R(Ei));
  B.load(Succ, K(Desc), R(T));
  B.cmpEq(Cond, R(Succ), R(Vi));
  B.br(R(Cond), CountEdgeNext, CountEdgeInc);

  B.setInsertPoint(CountEdgeInc);
  B.load(T2, K(NPred), R(Succ));
  B.add(T2, R(T2), K(1));
  B.store(K(NPred), R(Succ), R(T2));
  B.jmp(CountEdgeNext);

  B.setInsertPoint(CountEdgeNext);
  B.add(Ei, R(Ei), K(1));
  B.jmp(CountEdge);

  B.setInsertPoint(CountNodeNext);
  B.add(Vi, R(Vi), K(1));
  B.jmp(CountNode);

  B.setInsertPoint(SchedInit);
  B.movImm(Cycle, 0);
  B.movImm(Left, V);
  B.jmp(ScanInit);

  B.setInsertPoint(ScanInit);
  B.movImm(BestN, -1);
  B.movImm(BestP, -1);
  B.movImm(Vi, 0);
  B.jmp(ScanLoop);

  B.setInsertPoint(ScanLoop);
  B.cmpGe(Cond, R(Vi), K(V));
  B.br(R(Cond), AfterScan, ScanDoneChk);

  B.setInsertPoint(ScanDoneChk);
  B.load(T, K(DoneF), R(Vi));
  B.cmpNe(Cond, R(T), K(0));
  B.br(R(Cond), ScanNext, ScanPredChk);

  B.setInsertPoint(ScanPredChk);
  B.load(T, K(NPred), R(Vi));
  B.cmpNe(Cond, R(T), K(0));
  B.br(R(Cond), ScanNext, ScanTimeChk);

  B.setInsertPoint(ScanTimeChk);
  B.load(T, K(Ready), R(Vi));
  B.cmpGt(Cond, R(T), R(Cycle));
  B.br(R(Cond), ScanNext, ScanPrio);

  B.setInsertPoint(ScanPrio);
  B.add(T, R(Base), R(Vi));
  B.load(T, K(Lat), R(T));
  B.cmpGt(Cond, R(T), R(BestP));
  B.br(R(Cond), ScanTake, ScanNext);

  B.setInsertPoint(ScanTake);
  B.mov(BestP, R(T));
  B.mov(BestN, R(Vi));
  B.jmp(ScanNext);

  B.setInsertPoint(ScanNext);
  // Two register banks: nodes alternate banks by index. The bank check
  // flips every scan step — alternation an intra-loop machine removes.
  B.band(T, R(Vi), K(1));
  B.cmpNe(Cond, R(T), K(0));
  B.br(R(Cond), BankB, BankA);

  B.setInsertPoint(BankA);
  B.add(Vi, R(Vi), K(1));
  B.jmp(ScanLoop);

  B.setInsertPoint(BankB);
  B.add(Vi, R(Vi), K(1));
  B.jmp(ScanLoop);

  B.setInsertPoint(AfterScan);
  B.cmpLt(Cond, R(BestN), K(0));
  B.br(R(Cond), Stall, Issue);

  B.setInsertPoint(Stall);
  B.add(Cycle, R(Cycle), K(1));
  B.jmp(ScanInit);

  B.setInsertPoint(Issue);
  B.store(K(DoneF), R(BestN), K(1));
  B.sub(Left, R(Left), K(1));
  B.add(Issued, R(Issued), K(1));
  B.movImm(Ei, 0);
  B.jmp(IssueEdge);

  B.setInsertPoint(IssueEdge);
  B.cmpGe(Cond, R(Ei), K(E));
  B.br(R(Cond), CycleAdv, IssueEdgeBody);

  B.setInsertPoint(IssueEdgeBody);
  B.add(T, R(Base), R(BestN));
  B.mul(T, R(T), K(E));
  B.add(T, R(T), R(Ei));
  B.load(Succ, K(Desc), R(T));
  B.cmpEq(Cond, R(Succ), R(BestN));
  B.br(R(Cond), IssueEdgeNext, IssueUpd);

  B.setInsertPoint(IssueUpd);
  B.load(T2, K(NPred), R(Succ));
  B.sub(T2, R(T2), K(1));
  B.store(K(NPred), R(Succ), R(T2));
  // ready[succ] = max(ready[succ], cycle + latency(best)).
  B.add(T, R(Cycle), R(BestP));
  B.load(T2, K(Ready), R(Succ));
  B.cmpGt(Cond, R(T), R(T2));
  B.br(R(Cond), StoreReady, IssueEdgeNext);

  B.setInsertPoint(StoreReady);
  B.store(K(Ready), R(Succ), R(T));
  B.jmp(IssueEdgeNext);

  B.setInsertPoint(IssueEdgeNext);
  B.add(Ei, R(Ei), K(1));
  B.jmp(IssueEdge);

  B.setInsertPoint(CycleAdv);
  B.add(Cycle, R(Cycle), K(1));
  B.cmpGt(Cond, R(Left), K(0));
  B.br(R(Cond), ScanInit, GraphAdv);

  B.setInsertPoint(GraphAdv);
  B.add(TotCycles, R(TotCycles), R(Cycle));
  // Emit statistics every 8th DAG: a period-8 pattern in the graph loop.
  B.band(T, R(Gi), K(7));
  B.cmpEq(Cond, R(T), K(7));
  B.br(R(Cond), StatsDump, GraphNext);

  B.setInsertPoint(StatsDump);
  B.store(K(Out), K(2), R(TotCycles));
  B.jmp(GraphNext);

  B.setInsertPoint(GraphNext);
  B.add(Gi, R(Gi), K(1));
  B.jmp(GraphLoop);

  B.setInsertPoint(AllDone);
  B.store(K(Out), K(0), R(TotCycles));
  B.store(K(Out), K(1), R(Issued));
  B.ret(R(TotCycles));

  return M;
}
