//===- workloads/CCompiler.cpp - Lexer/parser front end -------------------===//
//
// Part of the bpcr project (Krall, PLDI 1994 reproduction).
//
//===----------------------------------------------------------------------===//
//
// Models the paper's "c-compiler" benchmark ("the lcc compiler front end of
// Fraser & Hanson"): a lexer scans synthetic source text with a character
// classification cascade, identifier/number continuation loops, and a
// symbol-table hash insert; a second pass parses the token stream with a
// dispatch whose outcomes follow token bigrams, nesting-depth guards and a
// constant-trip operator-chain loop.
//
// Branch behaviour: dispatch cascades following the character/token
// distributions, continuation loops with word-length trip counts, hash
// probe hit/miss correlation, biased guards, and a fixed-trip inner loop.
//
// Memory map:
//   [0]            text length N
//   [1..N]         character codes
//   [HASH..+8192]  symbol table keys
//   [TOK]          token count (written by the lexer)
//   [TOK+1..]      token kinds: 0 ident, 1 number, 2 punct, 3 semi,
//                  4 open brace, 5 close brace, 6 assign
//   [CNT..+8]      result counters
//
//===----------------------------------------------------------------------===//

#include "workloads/Workload.h"

#include "ir/IRBuilder.h"
#include "support/Rng.h"

using namespace bpcr;

Module bpcr::buildCCompiler(uint64_t Seed) {
  Module M;
  M.Name = "c-compiler";

  // -- Synthetic source text --------------------------------------------------
  const int64_t N = 110000;
  const int64_t Text = 1;
  // Sized so the at most ~3040 distinct identifiers keep the probe chains
  // short and the table never fills (linear probing must terminate).
  const int64_t HashSize = 8192;
  const int64_t Hash = Text + N;
  const int64_t Tok = Hash + HashSize;
  const int64_t MaxTokens = N; // every char could be a token at worst
  const int64_t Counters = Tok + 1 + MaxTokens;
  M.MemWords = static_cast<uint64_t>(Counters + 8);

  Rng Gen(Seed * 0x9e3779b97f4a7c15ULL + 17);
  std::vector<int64_t> Mem(static_cast<size_t>(Counters + 8), 0);
  Mem[0] = N;
  {
    int64_t I = 0;
    auto Put = [&Mem, &I, N](int64_t C) {
      if (I < N)
        Mem[static_cast<size_t>(Text + I++)] = C;
    };
    // Emit statement templates, not independent tokens: real source has
    // strong token bigrams (after '=' comes an expression, statements end
    // in ';', blocks nest), which is what the parse pass' correlated
    // machines feed on.
    auto PutIdent = [&] {
      // A small pool of hot names makes the symbol-table probes mostly
      // hits, like real source.
      uint64_t Word =
          Gen.below(10) < 7 ? Gen.below(40) : 40 + Gen.below(3000);
      uint64_t Len = 2 + Word % 8; // length is a property of the word
      Rng WordGen(Word * 771247 + 13);
      for (uint64_t J = 0; J < Len; ++J)
        Put(static_cast<int64_t>(97 + WordGen.below(26)));
      Put(32);
    };
    auto PutNumber = [&] {
      uint64_t Len = 1 + Gen.below(5);
      for (uint64_t J = 0; J < Len; ++J)
        Put(static_cast<int64_t>(48 + Gen.below(10)));
      Put(32);
    };
    int BraceDepth = 0;
    while (I < N) {
      uint64_t Kind = Gen.below(100);
      if (Kind < 55) {
        // Assignment statement: ident = <operand> [+ <operand>] ;
        PutIdent();
        Put(61); // '='
        Gen.chance(1, 2) ? PutIdent() : PutNumber();
        if (Gen.chance(2, 5)) {
          Put(43); // '+'
          Gen.chance(1, 2) ? PutIdent() : PutNumber();
        }
        Put(59); // ';'
        Put(10);
      } else if (Kind < 75) {
        // Call statement: ident ( ident , number ) ;
        PutIdent();
        Put(40);
        PutIdent();
        Put(44);
        PutNumber();
        Put(41);
        Put(59);
        Put(10);
      } else if (Kind < 88 && BraceDepth < 6) {
        // Block open: if-like header then '{'.
        PutIdent();
        Put(40);
        PutIdent();
        Put(41);
        Put(123);
        Put(10);
        ++BraceDepth;
      } else if (BraceDepth > 0) {
        Put(125); // '}'
        Put(10);
        --BraceDepth;
      } else {
        Put(10); // blank line
      }
    }
  }
  M.InitialMemory = std::move(Mem);

  auto R = [](Reg X) { return Operand::reg(X); };
  auto K = [](int64_t V) { return Operand::imm(V); };

  // -- parse(): second pass over the token stream ------------------------------
  uint32_t Parse = M.addFunction("parse", 0);
  {
    IRBuilder B(M, Parse);
    Reg I = B.newReg(), Count = B.newReg(), Kind = B.newReg();
    Reg Depth = B.newReg(), Stmts = B.newReg(), Exprs = B.newReg();
    Reg T = B.newReg(), Cond = B.newReg(), J = B.newReg();

    uint32_t Entry = B.newBlock("entry");
    uint32_t Loop = B.newBlock("tok_loop");
    uint32_t Fetch = B.newBlock("fetch");
    uint32_t D1 = B.newBlock("d_number");
    uint32_t D2 = B.newBlock("d_semi");
    uint32_t D3 = B.newBlock("d_open");
    uint32_t D4 = B.newBlock("d_close");
    uint32_t D5 = B.newBlock("d_assign");
    uint32_t HIdent = B.newBlock("h_ident");
    uint32_t HNumber = B.newBlock("h_number");
    uint32_t HSemi = B.newBlock("h_semi");
    uint32_t HOpen = B.newBlock("h_open");
    uint32_t HClose = B.newBlock("h_close");
    uint32_t DepthOk = B.newBlock("depth_ok");
    uint32_t DepthBad = B.newBlock("depth_bad");
    uint32_t HAssign = B.newBlock("h_assign");
    uint32_t ChainLoop = B.newBlock("chain_loop");
    uint32_t ChainBody = B.newBlock("chain_body");
    uint32_t HOther = B.newBlock("h_other");
    uint32_t Next = B.newBlock("next");
    uint32_t Done = B.newBlock("done");

    B.setInsertPoint(Entry);
    B.load(Count, K(Tok), K(0));
    B.movImm(I, 0);
    B.movImm(Depth, 0);
    B.movImm(Stmts, 0);
    B.movImm(Exprs, 0);
    B.jmp(Loop);

    B.setInsertPoint(Loop);
    B.cmpGe(Cond, R(I), R(Count));
    B.br(R(Cond), Done, Fetch);

    // Dispatch cascade ordered by token frequency; outcomes follow the
    // token bigrams of the source.
    B.setInsertPoint(Fetch);
    B.load(Kind, K(Tok + 1), R(I));
    B.cmpEq(Cond, R(Kind), K(0));
    B.br(R(Cond), HIdent, D1);

    B.setInsertPoint(D1);
    B.cmpEq(Cond, R(Kind), K(1));
    B.br(R(Cond), HNumber, D2);

    B.setInsertPoint(D2);
    B.cmpEq(Cond, R(Kind), K(3));
    B.br(R(Cond), HSemi, D3);

    B.setInsertPoint(D3);
    B.cmpEq(Cond, R(Kind), K(4));
    B.br(R(Cond), HOpen, D4);

    B.setInsertPoint(D4);
    B.cmpEq(Cond, R(Kind), K(5));
    B.br(R(Cond), HClose, D5);

    B.setInsertPoint(D5);
    B.cmpEq(Cond, R(Kind), K(6));
    B.br(R(Cond), HAssign, HOther);

    B.setInsertPoint(HIdent);
    B.add(Exprs, R(Exprs), K(1));
    B.jmp(Next);

    B.setInsertPoint(HNumber);
    B.add(Exprs, R(Exprs), K(1));
    B.jmp(Next);

    B.setInsertPoint(HSemi);
    B.add(Stmts, R(Stmts), K(1));
    B.jmp(Next);

    B.setInsertPoint(HOpen);
    B.add(Depth, R(Depth), K(1));
    // Deep nesting is rare: a strongly biased guard.
    B.cmpGt(Cond, R(Depth), K(40));
    B.br(R(Cond), DepthBad, DepthOk);

    B.setInsertPoint(DepthBad);
    B.movImm(Depth, 40);
    B.jmp(Next);

    B.setInsertPoint(DepthOk);
    B.jmp(Next);

    B.setInsertPoint(HClose);
    B.sub(Depth, R(Depth), K(1));
    B.cmpLt(Cond, R(Depth), K(0));
    B.br(R(Cond), DepthBad, Next);

    // Assignment: fold a fixed-length operator chain (constant-trip inner
    // loop, perfect for an exit-chain machine).
    B.setInsertPoint(HAssign);
    B.movImm(J, 0);
    B.jmp(ChainLoop);

    B.setInsertPoint(ChainLoop);
    B.cmpGe(Cond, R(J), K(3));
    B.br(R(Cond), Next, ChainBody);

    B.setInsertPoint(ChainBody);
    B.add(Exprs, R(Exprs), K(1));
    B.add(J, R(J), K(1));
    B.jmp(ChainLoop);

    B.setInsertPoint(HOther);
    B.jmp(Next);

    B.setInsertPoint(Next);
    B.add(I, R(I), K(1));
    B.jmp(Loop);

    B.setInsertPoint(Done);
    B.store(K(Counters), K(5), R(Stmts));
    B.store(K(Counters), K(6), R(Exprs));
    B.add(T, R(Stmts), R(Exprs));
    B.ret(R(T));
  }

  // -- main: the lexer ---------------------------------------------------------
  uint32_t Main = M.addFunction("main", 0);
  M.EntryFunction = Main;
  IRBuilder B(M, Main);

  Reg I = B.newReg();
  Reg C = B.newReg();
  Reg T = B.newReg();
  Reg T2 = B.newReg();
  Reg Cond = B.newReg();
  Reg Idents = B.newReg();
  Reg Nums = B.newReg();
  Reg Puncts = B.newReg();
  Reg Lines = B.newReg();
  Reg HashVal = B.newReg();
  Reg Slot = B.newReg();
  Reg Key = B.newReg();
  Reg NTok = B.newReg();
  Reg ParseRes = B.newReg();

  auto EmitToken = [&](int64_t Kind) {
    B.store(K(Tok + 1), R(NTok), K(Kind));
    B.add(NTok, R(NTok), K(1));
  };

  uint32_t Entry = B.newBlock("entry");
  uint32_t Scan = B.newBlock("scan");
  uint32_t Classify = B.newBlock("classify");
  uint32_t NotLetter = B.newBlock("not_letter");
  uint32_t NotDigit = B.newBlock("not_digit");
  uint32_t NotNl = B.newBlock("not_nl");
  uint32_t Space = B.newBlock("space");
  uint32_t Punct = B.newBlock("punct");
  uint32_t OpenBrace = B.newBlock("open_brace");
  uint32_t CheckClose = B.newBlock("check_close");
  uint32_t CloseBrace = B.newBlock("close_brace");
  uint32_t CheckSemi = B.newBlock("check_semi");
  uint32_t Semi = B.newBlock("semi");
  uint32_t CheckAssign = B.newBlock("check_assign");
  uint32_t Assign = B.newBlock("assign");
  uint32_t OtherPunct = B.newBlock("other_punct");
  uint32_t PunctDone = B.newBlock("punct_done");
  uint32_t Newline = B.newBlock("newline");
  uint32_t Ident = B.newBlock("ident");
  uint32_t IdentLoop = B.newBlock("ident_loop");
  uint32_t IdentChk = B.newBlock("ident_chk");
  uint32_t IdentEnd = B.newBlock("ident_end");
  uint32_t Probe = B.newBlock("probe");
  uint32_t ProbeNext = B.newBlock("probe_next");
  uint32_t ProbeMiss = B.newBlock("probe_miss");
  uint32_t ProbeAdvance = B.newBlock("probe_advance");
  uint32_t Number = B.newBlock("number");
  uint32_t NumLoop = B.newBlock("num_loop");
  uint32_t NumChk = B.newBlock("num_chk");
  uint32_t NumEnd = B.newBlock("num_end");
  uint32_t RunParse = B.newBlock("run_parse");
  uint32_t Done = B.newBlock("done");
  uint32_t SlotOob = B.newBlock("slot_oob");
  uint32_t ProbePre = B.newBlock("probe_pre");

  B.setInsertPoint(Entry);
  B.movImm(I, 0);
  B.movImm(Idents, 0);
  B.movImm(Nums, 0);
  B.movImm(Puncts, 0);
  B.movImm(Lines, 0);
  B.movImm(NTok, 0);
  B.jmp(Scan);

  B.setInsertPoint(Scan);
  B.cmpGe(Cond, R(I), K(N));
  B.br(R(Cond), RunParse, Classify);

  B.setInsertPoint(Classify);
  B.load(C, K(Text), R(I));
  // isLetter: 97 <= c <= 122.
  B.cmpGe(T, R(C), K(97));
  B.cmpLe(T2, R(C), K(122));
  B.band(Cond, R(T), R(T2));
  B.br(R(Cond), Ident, NotLetter);

  B.setInsertPoint(NotLetter);
  B.cmpGe(T, R(C), K(48));
  B.cmpLe(T2, R(C), K(57));
  B.band(Cond, R(T), R(T2));
  B.br(R(Cond), Number, NotDigit);

  B.setInsertPoint(NotDigit);
  B.cmpEq(Cond, R(C), K(10));
  B.br(R(Cond), Newline, NotNl);

  B.setInsertPoint(NotNl);
  B.cmpEq(Cond, R(C), K(32));
  B.br(R(Cond), Space, Punct);

  B.setInsertPoint(Space);
  B.add(I, R(I), K(1));
  B.jmp(Scan);

  B.setInsertPoint(Punct);
  B.add(Puncts, R(Puncts), K(1));
  B.cmpEq(Cond, R(C), K(123)); // '{'
  B.br(R(Cond), OpenBrace, CheckClose);

  B.setInsertPoint(OpenBrace);
  EmitToken(4);
  B.jmp(PunctDone);

  B.setInsertPoint(CheckClose);
  B.cmpEq(Cond, R(C), K(125)); // '}'
  B.br(R(Cond), CloseBrace, CheckSemi);

  B.setInsertPoint(CloseBrace);
  EmitToken(5);
  B.jmp(PunctDone);

  B.setInsertPoint(CheckSemi);
  B.cmpEq(Cond, R(C), K(59)); // ';'
  B.br(R(Cond), Semi, CheckAssign);

  B.setInsertPoint(Semi);
  EmitToken(3);
  B.jmp(PunctDone);

  B.setInsertPoint(CheckAssign);
  B.cmpEq(Cond, R(C), K(61)); // '='
  B.br(R(Cond), Assign, OtherPunct);

  B.setInsertPoint(Assign);
  EmitToken(6);
  B.jmp(PunctDone);

  B.setInsertPoint(OtherPunct);
  EmitToken(2);
  B.jmp(PunctDone);

  B.setInsertPoint(PunctDone);
  B.add(I, R(I), K(1));
  B.jmp(Scan);

  B.setInsertPoint(Newline);
  B.add(Lines, R(Lines), K(1));
  B.add(I, R(I), K(1));
  B.jmp(Scan);

  // Identifier: accumulate a hash while consuming letters.
  B.setInsertPoint(Ident);
  B.add(Idents, R(Idents), K(1));
  EmitToken(0);
  B.movImm(HashVal, 5381);
  B.jmp(IdentLoop);

  B.setInsertPoint(IdentLoop);
  B.mul(HashVal, R(HashVal), K(33));
  B.add(HashVal, R(HashVal), R(C));
  B.add(I, R(I), K(1));
  B.cmpGe(Cond, R(I), K(N));
  B.br(R(Cond), IdentEnd, IdentChk);

  B.setInsertPoint(IdentChk);
  B.load(C, K(Text), R(I));
  B.cmpGe(T, R(C), K(97));
  B.cmpLe(T2, R(C), K(122));
  B.band(Cond, R(T), R(T2));
  B.br(R(Cond), IdentLoop, IdentEnd);

  // Symbol-table insert with linear probing.
  B.setInsertPoint(IdentEnd);
  B.band(HashVal, R(HashVal), K(0x7fffffff));
  B.rem(Key, R(HashVal), K(999983));
  B.add(Key, R(Key), K(1)); // keys are nonzero
  B.rem(Slot, R(HashVal), K(HashSize));
  // Defensive bounds check before indexing the symbol table. HashVal was
  // masked non-negative above, so the remainder is already in
  // [0, HashSize-1] and the guard can never fire. Both paths rejoin in a
  // dedicated preheader so the probe loop keeps a unique dominating entry.
  B.cmpGe(Cond, R(Slot), K(HashSize));
  B.br(R(Cond), SlotOob, ProbePre);

  B.setInsertPoint(SlotOob);
  B.movImm(Slot, 0);
  B.jmp(ProbePre);

  B.setInsertPoint(ProbePre);
  B.jmp(Probe);

  B.setInsertPoint(Probe);
  B.load(T, K(Hash), R(Slot));
  B.cmpEq(Cond, R(T), R(Key));
  B.br(R(Cond), Scan, ProbeNext); // hit: known identifier

  B.setInsertPoint(ProbeNext);
  B.cmpEq(Cond, R(T), K(0));
  B.br(R(Cond), ProbeMiss, ProbeAdvance);

  B.setInsertPoint(ProbeMiss);
  B.store(K(Hash), R(Slot), R(Key));
  B.jmp(Scan);

  B.setInsertPoint(ProbeAdvance);
  B.add(Slot, R(Slot), K(1));
  B.rem(Slot, R(Slot), K(HashSize));
  B.jmp(Probe);

  B.setInsertPoint(Number);
  B.add(Nums, R(Nums), K(1));
  EmitToken(1);
  B.jmp(NumLoop);

  B.setInsertPoint(NumLoop);
  B.add(I, R(I), K(1));
  B.cmpGe(Cond, R(I), K(N));
  B.br(R(Cond), NumEnd, NumChk);

  B.setInsertPoint(NumChk);
  B.load(C, K(Text), R(I));
  B.cmpGe(T, R(C), K(48));
  B.cmpLe(T2, R(C), K(57));
  B.band(Cond, R(T), R(T2));
  B.br(R(Cond), NumLoop, NumEnd);

  B.setInsertPoint(NumEnd);
  B.jmp(Scan);

  B.setInsertPoint(RunParse);
  B.store(K(Tok), K(0), R(NTok));
  B.call(ParseRes, Parse, {});
  B.jmp(Done);

  B.setInsertPoint(Done);
  B.store(K(Counters), K(0), R(Idents));
  B.store(K(Counters), K(1), R(Nums));
  B.store(K(Counters), K(2), R(Puncts));
  B.store(K(Counters), K(3), R(Lines));
  B.store(K(Counters), K(4), R(ParseRes));
  B.ret(R(ParseRes));

  return M;
}
