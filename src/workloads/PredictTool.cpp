//===- workloads/PredictTool.cpp - Trace-analysis tool --------------------===//
//
// Part of the bpcr project (Krall, PLDI 1994 reproduction).
//
//===----------------------------------------------------------------------===//
//
// Models the paper's "predict" benchmark — the authors profiled their own
// profiling/trace tool. The program reads a synthetic branch trace and
// maintains per-branch 2-bit counters and short history registers,
// scoring its own predictions.
//
// Branch behaviour: a data-driven taken/not-taken split (the input trace
// has per-branch biases and alternation), saturation tests that rarely
// fire, and a hit/miss accounting branch correlated with the input bias.
//
// Memory map:
//   [0]          event count
//   [1..2N]      events as (branch, direction) pairs
//   [CNT..+64]   2-bit counters
//   [HIST..+64]  4-bit history registers
//   [OUT..+4]    hit/miss totals
//
//===----------------------------------------------------------------------===//

#include "workloads/Workload.h"

#include "ir/IRBuilder.h"
#include "support/Rng.h"

using namespace bpcr;

Module bpcr::buildPredictTool(uint64_t Seed) {
  Module M;
  M.Name = "predict";

  const int64_t N = 76000;
  const int64_t Events = 1;
  const int64_t Cnt = Events + 2 * N;
  const int64_t Hist = Cnt + 64;
  const int64_t Out = Hist + 64;
  M.MemWords = static_cast<uint64_t>(Out + 4);

  Rng Gen(Seed * 0xbf58476d1ce4e5b9ULL + 7);
  std::vector<int64_t> Mem(static_cast<size_t>(Out + 4), 0);
  Mem[0] = N;
  {
    // Each simulated branch gets a bias and a behaviour class: strongly
    // biased, alternating, or noisy.
    int64_t Bias[64];
    int Class[64];
    int Phase[64] = {0};
    for (int BI = 0; BI < 64; ++BI) {
      Class[BI] = static_cast<int>(Gen.below(10));
      Bias[BI] = 50 + static_cast<int64_t>(Gen.below(50));
    }
    for (int64_t I = 0; I < N; ++I) {
      int BI = static_cast<int>(Gen.below(64));
      int64_t Dir;
      if (Class[BI] < 5) {
        Dir = Gen.below(100) < static_cast<uint64_t>(Bias[BI]) ? 1 : 0;
      } else if (Class[BI] < 8) {
        Dir = Phase[BI] & 1; // alternating
        ++Phase[BI];
      } else {
        Dir = static_cast<int64_t>(Gen.below(2)); // noisy
      }
      Mem[static_cast<size_t>(Events + 2 * I)] = BI;
      Mem[static_cast<size_t>(Events + 2 * I + 1)] = Dir;
    }
  }
  M.InitialMemory = std::move(Mem);

  auto R = [](Reg X) { return Operand::reg(X); };
  auto K = [](int64_t V) { return Operand::imm(V); };

  // -- histogram(): final pass over the 64 counters -----------------------------
  // Constant-trip loop with a biased "counter saturated high" test: the
  // report generation of a real analysis tool.
  uint32_t Histogram = M.addFunction("histogram", 0);
  {
    IRBuilder B(M, Histogram);
    Reg I = B.newReg(), V = B.newReg(), HiCnt = B.newReg();
    Reg Cond = B.newReg();

    uint32_t Entry = B.newBlock("entry");
    uint32_t Loop = B.newBlock("loop");
    uint32_t Body = B.newBlock("body");
    uint32_t High = B.newBlock("high");
    uint32_t Low = B.newBlock("low");
    uint32_t Next = B.newBlock("next");
    uint32_t Done = B.newBlock("done");

    B.setInsertPoint(Entry);
    B.movImm(I, 0);
    B.movImm(HiCnt, 0);
    B.jmp(Loop);

    B.setInsertPoint(Loop);
    B.cmpGe(Cond, R(I), K(64)); // constant trip count
    B.br(R(Cond), Done, Body);

    B.setInsertPoint(Body);
    B.load(V, K(Cnt), R(I));
    B.cmpGe(Cond, R(V), K(3));
    B.br(R(Cond), High, Low);

    B.setInsertPoint(High);
    B.add(HiCnt, R(HiCnt), K(1));
    B.jmp(Next);

    B.setInsertPoint(Low);
    B.jmp(Next);

    B.setInsertPoint(Next);
    B.add(I, R(I), K(1));
    B.jmp(Loop);

    B.setInsertPoint(Done);
    B.store(K(Out), K(2), R(HiCnt));
    B.ret(R(HiCnt));
  }

  uint32_t Main = M.addFunction("main", 0);
  M.EntryFunction = Main;
  IRBuilder B(M, Main);

  Reg I = B.newReg();
  Reg Br = B.newReg();
  Reg Dir = B.newReg();
  Reg C = B.newReg();
  Reg H = B.newReg();
  Reg Pred = B.newReg();
  Reg Cond = B.newReg();
  Reg Hits = B.newReg();
  Reg Miss = B.newReg();

  uint32_t Entry = B.newBlock("entry");
  uint32_t Loop = B.newBlock("loop");
  uint32_t Body = B.newBlock("body");
  uint32_t Taken = B.newBlock("ev_taken");
  uint32_t SatHi = B.newBlock("sat_hi");
  uint32_t IncOk = B.newBlock("inc_ok");
  uint32_t NotTaken = B.newBlock("ev_nottaken");
  uint32_t SatLo = B.newBlock("sat_lo");
  uint32_t DecOk = B.newBlock("dec_ok");
  uint32_t Score = B.newBlock("score");
  uint32_t BufA = B.newBlock("buf_a");
  uint32_t BufB = B.newBlock("buf_b");
  uint32_t Score2 = B.newBlock("score2");
  uint32_t Hit = B.newBlock("hit");
  uint32_t Wrong = B.newBlock("wrong");
  uint32_t Next = B.newBlock("next");
  uint32_t Flush = B.newBlock("flush");
  uint32_t NoFlush = B.newBlock("no_flush");
  uint32_t Done = B.newBlock("done");

  B.setInsertPoint(Entry);
  B.movImm(I, 0);
  B.movImm(Hits, 0);
  B.movImm(Miss, 0);
  B.jmp(Loop);

  B.setInsertPoint(Loop);
  B.cmpGe(Cond, R(I), K(N));
  B.br(R(Cond), Done, Body);

  B.setInsertPoint(Body);
  Reg Off = B.newReg();
  B.mul(Off, R(I), K(2));
  B.load(Br, K(Events), R(Off));
  B.add(Off, R(Off), K(1));
  B.load(Dir, K(Events), R(Off));
  B.load(C, K(Cnt), R(Br));
  // Prediction: counter in upper half (2-bit counter, values 0..3).
  B.cmpGe(Pred, R(C), K(2));
  B.cmpNe(Cond, R(Dir), K(0));
  B.br(R(Cond), Taken, NotTaken);

  B.setInsertPoint(Taken);
  B.cmpGe(Cond, R(C), K(3));
  B.br(R(Cond), SatHi, IncOk);

  B.setInsertPoint(IncOk);
  B.add(C, R(C), K(1));
  B.store(K(Cnt), R(Br), R(C));
  B.jmp(Score);

  B.setInsertPoint(SatHi);
  B.jmp(Score);

  B.setInsertPoint(NotTaken);
  B.cmpLe(Cond, R(C), K(0));
  B.br(R(Cond), SatLo, DecOk);

  B.setInsertPoint(DecOk);
  B.sub(C, R(C), K(1));
  B.store(K(Cnt), R(Br), R(C));
  B.jmp(Score);

  B.setInsertPoint(SatLo);
  B.jmp(Score);

  B.setInsertPoint(Score);
  // Double-buffered event storage: the active buffer flips every event — a
  // perfectly alternating branch (profile-hard, machine-trivial).
  B.band(Cond, R(I), K(1));
  B.br(R(Cond), BufA, BufB);

  B.setInsertPoint(BufA);
  B.store(K(Out), K(3), R(Dir));
  B.jmp(Score2);

  B.setInsertPoint(BufB);
  B.store(K(Out), K(2), R(Dir));
  B.jmp(Score2);

  B.setInsertPoint(Score2);
  // History register update (4 bits).
  B.load(H, K(Hist), R(Br));
  B.mul(H, R(H), K(2));
  B.add(H, R(H), R(Dir));
  B.band(H, R(H), K(15));
  B.store(K(Hist), R(Br), R(H));
  B.cmpEq(Cond, R(Pred), R(Dir));
  B.br(R(Cond), Hit, Wrong);

  B.setInsertPoint(Hit);
  B.add(Hits, R(Hits), K(1));
  B.jmp(Next);

  B.setInsertPoint(Wrong);
  B.add(Miss, R(Miss), K(1));
  B.jmp(Next);

  B.setInsertPoint(Next);
  // Buffered trace writing: flush every 4096 events — a rare, strongly
  // biased branch (profile alone predicts it nearly perfectly).
  B.band(Cond, R(I), K(4095));
  B.cmpEq(Cond, R(Cond), K(4095));
  B.br(R(Cond), Flush, NoFlush);

  B.setInsertPoint(Flush);
  B.store(K(Out), K(3), R(I));
  B.jmp(NoFlush);

  B.setInsertPoint(NoFlush);
  B.add(I, R(I), K(1));
  B.jmp(Loop);

  B.setInsertPoint(Done);
  B.store(K(Out), K(0), R(Hits));
  B.store(K(Out), K(1), R(Miss));
  Reg HiCnt = B.newReg();
  B.call(HiCnt, Histogram, {});
  B.add(HiCnt, R(HiCnt), R(Hits));
  B.ret(R(HiCnt));

  return M;
}
