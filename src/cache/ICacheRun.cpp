//===- cache/ICacheRun.cpp ------------------------------------------------===//
//
// Part of the bpcr project (Krall, PLDI 1994 reproduction).
//
//===----------------------------------------------------------------------===//

#include "cache/ICacheRun.h"

#include "obs/TraceSpans.h"

using namespace bpcr;

namespace {

/// Feeds the fetch stream into the cache model.
class CacheListener : public InstrListener {
public:
  CacheListener(const Module &M, const ICacheConfig &Cfg)
      : Map(M), Sim(Cfg) {}

  void onInstruction(uint32_t FuncIdx, uint32_t BlockIdx,
                     uint32_t InstIdx) override {
    Sim.access(Map.address(FuncIdx, BlockIdx, InstIdx));
  }

  AddressMap Map;
  ICacheSim Sim;
};

} // namespace

ICacheRunResult bpcr::runWithICache(const Module &M, const ICacheConfig &Cfg,
                                    ExecOptions Opts) {
  Span S("cache.run", "cache");
  CacheListener Listener(M, Cfg);
  Opts.Listener = &Listener;

  ICacheRunResult R;
  R.Exec = execute(M, nullptr, Opts);
  R.Fetches = Listener.Sim.accesses();
  R.Misses = Listener.Sim.misses();
  R.CodeWords = Listener.Map.codeSize();
  S.arg("fetches", R.Fetches);
  S.arg("misses", R.Misses);
  S.arg("code_words", R.CodeWords);
  return R;
}
