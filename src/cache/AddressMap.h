//===- cache/AddressMap.h - Instruction address layout ----------*- C++ -*-===//
//
// Part of the bpcr project (Krall, PLDI 1994 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Assigns every instruction of a module a linear code address (one word
/// per instruction, functions and blocks laid out in order). The paper's
/// cost discussion is about exactly this layout: replicated copies push
/// code apart and change instruction-cache behaviour.
///
//===----------------------------------------------------------------------===//

#ifndef BPCR_CACHE_ADDRESSMAP_H
#define BPCR_CACHE_ADDRESSMAP_H

#include "ir/Module.h"

#include <cstdint>
#include <vector>

namespace bpcr {

/// Linear code layout of a module.
class AddressMap {
public:
  explicit AddressMap(const Module &M);

  /// Address of instruction \p InstIdx in block \p BlockIdx of function
  /// \p FuncIdx.
  uint64_t address(uint32_t FuncIdx, uint32_t BlockIdx,
                   uint32_t InstIdx) const {
    return BlockBase[FuncIdx][BlockIdx] + InstIdx;
  }

  /// Total code size in words.
  uint64_t codeSize() const { return Total; }

private:
  std::vector<std::vector<uint64_t>> BlockBase;
  uint64_t Total = 0;
};

} // namespace bpcr

#endif // BPCR_CACHE_ADDRESSMAP_H
