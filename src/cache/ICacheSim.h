//===- cache/ICacheSim.h - Instruction cache simulator ----------*- C++ -*-===//
//
// Part of the bpcr project (Krall, PLDI 1994 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A set-associative instruction cache with LRU replacement. The paper
/// flags the cost side of code replication — "the increase in [code size]
/// (negative impact on instruction cache miss rate)" — and names the
/// i-cache evaluation as further work; this simulator plus the
/// ablation_icache bench carry that evaluation out.
///
//===----------------------------------------------------------------------===//

#ifndef BPCR_CACHE_ICACHESIM_H
#define BPCR_CACHE_ICACHESIM_H

#include <cassert>
#include <cstdint>
#include <vector>

namespace bpcr {

/// Cache geometry. Sizes are in instruction words (the IR's code unit).
struct ICacheConfig {
  /// Total capacity in words.
  uint64_t CapacityWords = 1024;
  /// Words per cache line.
  uint32_t LineWords = 8;
  /// Associativity; 1 = direct mapped.
  uint32_t Ways = 2;
};

/// Set-associative LRU instruction cache.
class ICacheSim {
public:
  explicit ICacheSim(ICacheConfig Cfg = ICacheConfig());

  /// Simulates one instruction fetch.
  void access(uint64_t Address);

  uint64_t accesses() const { return Accesses; }
  uint64_t misses() const { return Misses; }

  double missPercent() const {
    if (Accesses == 0)
      return 0.0;
    return 100.0 * static_cast<double>(Misses) /
           static_cast<double>(Accesses);
  }

  void reset();

  const ICacheConfig &config() const { return Cfg; }

private:
  struct Way {
    uint64_t Tag = UINT64_MAX;
    uint64_t LastUse = 0;
  };

  ICacheConfig Cfg;
  uint32_t NumSets;
  std::vector<Way> Ways; // NumSets x Cfg.Ways
  uint64_t Clock = 0;
  uint64_t Accesses = 0;
  uint64_t Misses = 0;
};

} // namespace bpcr

#endif // BPCR_CACHE_ICACHESIM_H
