//===- cache/ICacheRun.h - Module-under-cache execution ---------*- C++ -*-===//
//
// Part of the bpcr project (Krall, PLDI 1994 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Runs a module while simulating its instruction fetches through an
/// i-cache: the measurement behind the paper's cost-function discussion
/// (replication trades prediction accuracy against cache pressure).
///
//===----------------------------------------------------------------------===//

#ifndef BPCR_CACHE_ICACHERUN_H
#define BPCR_CACHE_ICACHERUN_H

#include "cache/AddressMap.h"
#include "cache/ICacheSim.h"
#include "interp/Interpreter.h"
#include "ir/Module.h"

namespace bpcr {

/// Outcome of a cached execution.
struct ICacheRunResult {
  ExecResult Exec;
  uint64_t Fetches = 0;
  uint64_t Misses = 0;
  uint64_t CodeWords = 0;

  double missPercent() const {
    if (Fetches == 0)
      return 0.0;
    return 100.0 * static_cast<double>(Misses) /
           static_cast<double>(Fetches);
  }
};

/// Executes \p M feeding every instruction fetch through an ICacheSim with
/// geometry \p Cfg. \p Opts may carry branch sinks and event caps; its
/// Listener field is overridden.
ICacheRunResult runWithICache(const Module &M, const ICacheConfig &Cfg,
                              ExecOptions Opts = ExecOptions());

} // namespace bpcr

#endif // BPCR_CACHE_ICACHERUN_H
