//===- cache/AddressMap.cpp -----------------------------------------------===//
//
// Part of the bpcr project (Krall, PLDI 1994 reproduction).
//
//===----------------------------------------------------------------------===//

#include "cache/AddressMap.h"

using namespace bpcr;

AddressMap::AddressMap(const Module &M) {
  BlockBase.resize(M.Functions.size());
  uint64_t Addr = 0;
  for (size_t FI = 0; FI < M.Functions.size(); ++FI) {
    const Function &F = M.Functions[FI];
    BlockBase[FI].resize(F.Blocks.size());
    for (size_t BI = 0; BI < F.Blocks.size(); ++BI) {
      BlockBase[FI][BI] = Addr;
      Addr += F.Blocks[BI].Insts.size();
    }
  }
  Total = Addr;
}
