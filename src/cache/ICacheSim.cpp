//===- cache/ICacheSim.cpp ------------------------------------------------===//
//
// Part of the bpcr project (Krall, PLDI 1994 reproduction).
//
//===----------------------------------------------------------------------===//

#include "cache/ICacheSim.h"

#include <cstddef>

using namespace bpcr;

ICacheSim::ICacheSim(ICacheConfig CfgIn) : Cfg(CfgIn) {
  assert(Cfg.LineWords > 0 && Cfg.Ways > 0 && "degenerate cache geometry");
  uint64_t Lines = Cfg.CapacityWords / Cfg.LineWords;
  assert(Lines >= Cfg.Ways && "capacity below one set");
  NumSets = static_cast<uint32_t>(Lines / Cfg.Ways);
  assert(NumSets > 0 && "cache needs at least one set");
  Ways.assign(static_cast<size_t>(NumSets) * Cfg.Ways, Way());
}

void ICacheSim::access(uint64_t Address) {
  ++Accesses;
  ++Clock;
  uint64_t Line = Address / Cfg.LineWords;
  uint32_t Set = static_cast<uint32_t>(Line % NumSets);
  uint64_t Tag = Line / NumSets;

  Way *SetWays = &Ways[static_cast<size_t>(Set) * Cfg.Ways];
  Way *Victim = &SetWays[0];
  for (uint32_t W = 0; W < Cfg.Ways; ++W) {
    if (SetWays[W].Tag == Tag) {
      SetWays[W].LastUse = Clock;
      return; // hit
    }
    if (SetWays[W].LastUse < Victim->LastUse)
      Victim = &SetWays[W];
  }

  ++Misses;
  Victim->Tag = Tag;
  Victim->LastUse = Clock;
}

void ICacheSim::reset() {
  Ways.assign(Ways.size(), Way());
  Clock = 0;
  Accesses = 0;
  Misses = 0;
}
