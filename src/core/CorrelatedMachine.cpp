//===- core/CorrelatedMachine.cpp -----------------------------------------===//
//
// Part of the bpcr project (Krall, PLDI 1994 reproduction).
//
//===----------------------------------------------------------------------===//

#include "core/CorrelatedMachine.h"

#include "trace/ColumnarTrace.h"

#include <algorithm>
#include <cassert>
#include <map>

using namespace bpcr;

namespace {

/// Packs a decision step into one selection symbol.
uint32_t encodeStep(const PathStep &S) {
  return (static_cast<uint32_t>(S.BranchId) << 1) | (S.Taken ? 1U : 0U);
}

PathStep decodeStep(uint32_t Sym) {
  return {static_cast<int32_t>(Sym >> 1), (Sym & 1U) != 0};
}

BranchPath decodePath(const SymbolString &S) {
  BranchPath P;
  P.Steps.reserve(S.size());
  for (uint32_t Sym : S)
    P.Steps.push_back(decodeStep(Sym));
  return P;
}

} // namespace

SymbolString bpcr::encodePathSteps(const BranchPath &P) {
  SymbolString S;
  S.reserve(P.Steps.size());
  for (const PathStep &Step : P.Steps)
    S.push_back(encodeStep(Step));
  return S;
}

int CorrelatedMachine::match(const std::vector<PathStep> &Recent) const {
  // Paths are sorted by (length, content); probe longest first.
  for (size_t L = std::min<size_t>(Recent.size(), MaxPathLen); L >= 1; --L) {
    BranchPath Probe;
    Probe.Steps.assign(Recent.end() - static_cast<long>(L), Recent.end());
    SymbolString Key = encodePathSteps(Probe);
    for (size_t I = Paths.size(); I-- > 0;) {
      if (Paths[I].Steps.size() != L)
        continue;
      if (encodePathSteps(Paths[I]) == Key)
        return static_cast<int>(I);
    }
    if (L == 1)
      break;
  }
  return -1;
}

namespace {

/// Shared global-order pass of profilePaths. \p EventAt yields the I-th
/// event (id, taken) so the legacy vector-of-structs trace and the
/// columnar trace share one body and stay bit-identical.
template <class EventFn>
std::vector<PathProfile> profilePathsImpl(
    const std::vector<std::vector<BranchPath>> &CandidatesByBranch,
    size_t NumEvents, EventFn EventAt, unsigned MaxPathLen) {
  size_t NumBranches = CandidatesByBranch.size();
  std::vector<PathProfile> Out(NumBranches);

  // Candidate lookup per branch; remember the longest candidate to bound
  // the suffix probing.
  std::vector<std::map<SymbolString, size_t>> Lookup(NumBranches);
  std::vector<size_t> Longest(NumBranches, 0);
  std::vector<std::map<SymbolString, DirCounts>> Accum(NumBranches);
  for (size_t B = 0; B < NumBranches; ++B)
    for (const BranchPath &P : CandidatesByBranch[B]) {
      if (P.Steps.empty() || P.Steps.size() > MaxPathLen)
        continue;
      Lookup[B].emplace(encodePathSteps(P), 0);
      Longest[B] = std::max(Longest[B], P.Steps.size());
    }

  // One pass; the window holds the last MaxPathLen encoded events. Both
  // the window and the probe key are reused across the whole trace — this
  // loop runs once per branch event and must not allocate per event.
  SymbolString Window;
  Window.reserve(MaxPathLen + 1);
  SymbolString Key;
  Key.reserve(MaxPathLen);
  for (size_t I = 0; I < NumEvents; ++I) {
    const PathStep E = EventAt(I);
    size_t B = static_cast<size_t>(E.BranchId);
    if (B < NumBranches && !Lookup[B].empty()) {
      bool Matched = false;
      for (size_t L = std::min(Window.size(), Longest[B]); L >= 1; --L) {
        Key.assign(Window.end() - static_cast<long>(L), Window.end());
        if (Lookup[B].count(Key)) {
          Accum[B][Key].record(E.Taken);
          Matched = true;
          break;
        }
        if (L == 1)
          break;
      }
      if (!Matched)
        Out[B].Unmatched.record(E.Taken);
    } else if (B < NumBranches) {
      Out[B].Unmatched.record(E.Taken);
    }
    if (Window.size() == MaxPathLen)
      Window.erase(Window.begin());
    Window.push_back(encodeStep(E));
  }

  for (size_t B = 0; B < NumBranches; ++B) {
    Out[B].PerPath.reserve(Accum[B].size());
    for (auto &[Path, Counts] : Accum[B])
      Out[B].PerPath.emplace_back(Path, Counts);
  }
  return Out;
}

} // namespace

std::vector<PathProfile> bpcr::profilePaths(
    const std::vector<std::vector<BranchPath>> &CandidatesByBranch,
    const Trace &T, unsigned MaxPathLen) {
  return profilePathsImpl(
      CandidatesByBranch, T.size(),
      [&T](size_t I) {
        return PathStep{T[I].BranchId, T[I].Taken};
      },
      MaxPathLen);
}

std::vector<PathProfile> bpcr::profilePaths(
    const std::vector<std::vector<BranchPath>> &CandidatesByBranch,
    const ColumnarTrace &CT, unsigned MaxPathLen) {
  const int32_t *Ids = CT.ids().data();
  const uint64_t *Dirs = CT.directions().data();
  return profilePathsImpl(
      CandidatesByBranch, CT.size(),
      [Ids, Dirs](size_t I) {
        bool Taken = (Dirs[I >> 6] >> (I & 63)) & 1;
        return PathStep{Ids[I], Taken};
      },
      MaxPathLen);
}

CorrelatedMachine
bpcr::buildCorrelatedMachineFromProfile(int32_t BranchId,
                                        const PathProfile &Profile,
                                        const CorrelatedOptions &Opts) {
  CorrelatedMachine M;
  M.BranchId = BranchId;
  M.MaxPathLen = Opts.MaxPathLen;

  std::vector<ObservedPattern> Patterns;
  for (const auto &[Key, Counts] : Profile.PerPath)
    Patterns.push_back({Key, Counts});
  if (Profile.Unmatched.total() > 0)
    Patterns.push_back({SymbolString(), Profile.Unmatched});

  SelectOptions Sel;
  assert(Opts.MaxStates >= 2 && "need room for a path plus the catch-all");
  Sel.MaxSelected = Opts.MaxStates - 1; // the catch-all takes one state
  Sel.MinLen = 1;
  Sel.MaxLen = Opts.MaxPathLen;
  Sel.Exhaustive = Opts.Exhaustive;
  Sel.NodeBudget = Opts.NodeBudget;

  SuffixSelection Selected = selectSuffixStates(Patterns, {}, Sel);

  for (size_t I = 0; I < Selected.States.size(); ++I) {
    M.Paths.push_back(decodePath(Selected.States[I]));
    M.PathPred.push_back(Selected.StatePred[I]);
  }
  M.DefaultPred = Selected.DefaultPred;
  M.Correct = Selected.Correct;
  M.Total = Selected.Total;
  return M;
}

CorrelatedMachine
bpcr::buildCorrelatedMachine(int32_t BranchId,
                             const std::vector<BranchPath> &CandidatePaths,
                             const Trace &T, const CorrelatedOptions &Opts) {
  std::vector<std::vector<BranchPath>> ByBranch(
      static_cast<size_t>(BranchId) + 1);
  ByBranch[static_cast<size_t>(BranchId)] = CandidatePaths;
  std::vector<PathProfile> Profiles =
      profilePaths(ByBranch, T, Opts.MaxPathLen);
  return buildCorrelatedMachineFromProfile(
      BranchId, Profiles[static_cast<size_t>(BranchId)], Opts);
}

PredictionStats bpcr::evaluateCorrelatedMachine(const CorrelatedMachine &M,
                                                const Trace &T) {
  PredictionStats Stats;
  std::vector<PathStep> Recent;
  for (const BranchEvent &E : T) {
    if (E.BranchId == M.BranchId)
      Stats.record(M.predictFor(Recent) == E.Taken);
    Recent.push_back({E.BranchId, E.Taken});
    if (Recent.size() > M.MaxPathLen)
      Recent.erase(Recent.begin());
  }
  return Stats;
}
