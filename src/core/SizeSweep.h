//===- core/SizeSweep.h - Misprediction vs code size curves -----*- C++ -*-===//
//
// Part of the bpcr project (Krall, PLDI 1994 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Reproduces the paper's figures 6-13 (misprediction rate versus code
/// size): "states were added in such an order that the state that predicted
/// the largest number of branches and that increased the code size by the
/// smallest amount was chosen first." Like the paper (which reports size
/// blowups beyond 1000x that were clearly never built), the curve uses an
/// analytic size model: loop replication multiplies the states of all
/// improved branches sharing a loop; correlated replication adds the
/// duplicated path blocks.
///
//===----------------------------------------------------------------------===//

#ifndef BPCR_CORE_SIZESWEEP_H
#define BPCR_CORE_SIZESWEEP_H

#include "core/ProgramAnalysis.h"
#include "core/StrategySelection.h"

#include <vector>

namespace bpcr {

class ColumnarTrace;

/// One point of the misprediction/size curve.
struct SweepPoint {
  /// Estimated code size relative to the original program.
  double SizeFactor = 1.0;
  /// Overall semi-static misprediction in percent at this point.
  double MispredictPercent = 0.0;
  /// The branch whose machine grew at this step (-1 for the initial
  /// all-profile point).
  int32_t BranchId = -1;
  /// That branch's state count after the step.
  unsigned NewStates = 1;
};

/// Sweep parameters.
struct SweepOptions {
  /// Deepest per-branch machine considered.
  unsigned MaxStates = 8;
  /// Stop when the estimated size factor exceeds this.
  double MaxSizeFactor = 32.0;
  unsigned MaxSteps = 500;
  bool Exhaustive = true;
  uint64_t NodeBudget = 100'000;
  /// Branches executed fewer times are never grown.
  uint64_t MinExecutions = 64;
  bool CorrelatedForLoopBranches = true;
  /// Worker threads for the per-branch ladder construction: 0 = one per
  /// hardware core, 1 = serial (no pool). The sweep result is identical
  /// for every value.
  unsigned Jobs = 0;
  /// Branch-direction proofs from sa const-prop (sa/Dataflow.h). Proven
  /// branches get a flat ladder (their profile rung is already perfect),
  /// so the sweep never grows them and the machine search skips them,
  /// counted in `search.pruned_by_proof`.
  const sa::BranchProofs *Proofs = nullptr;
};

/// Computes the greedy misprediction-vs-size curve. The first point is the
/// all-profile program at size factor 1.0.
std::vector<SweepPoint> computeSizeSweep(const ProgramAnalysis &PA,
                                         const ProfileSet &Profiles,
                                         const Trace &T,
                                         const SweepOptions &Opts);

/// Columnar overload: identical curve driven by the SoA trace.
std::vector<SweepPoint> computeSizeSweep(const ProgramAnalysis &PA,
                                         const ProfileSet &Profiles,
                                         const ColumnarTrace &CT,
                                         const SweepOptions &Opts);

} // namespace bpcr

#endif // BPCR_CORE_SIZESWEEP_H
