//===- core/SearchCache.h - Memoized machine-search ladders -----*- C++ -*-===//
//
// Part of the bpcr project (Krall, PLDI 1994 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Memoization for the per-branch machine search, built around *ladders*:
/// the best machine per state budget N = MinBudget..MaxStates for one
/// branch family. One branch-and-bound run at the deepest budget fills
/// every rung its winner covers — the best machine within budget B that
/// uses K <= B states is also the best for every budget in [K, B], because
/// the feasible sets are nested — so a full ladder costs a handful of
/// searches instead of one per rung. computeSizeSweep and selectStrategies
/// both consume ladders; a selection-only caller passes
/// MinBudget == MaxStates and pays exactly one search.
///
/// The cache keys ladders by a 128-bit content fingerprint (pattern table
/// or path profile) plus every search option, so identical branches across
/// one program — and repeated pipeline runs in one process — share results.
/// Concurrent requests for the same key deduplicate in flight: the first
/// requester computes (one miss), later requesters block on the entry (one
/// hit each), which keeps the `search.cache.{hits,misses,evictions}`
/// counters byte-identical across `--jobs` values.
///
//===----------------------------------------------------------------------===//

#ifndef BPCR_CORE_SEARCHCACHE_H
#define BPCR_CORE_SEARCHCACHE_H

#include "core/CorrelatedMachine.h"
#include "core/MachineSearch.h"
#include "support/CountingAlloc.h"

#include <atomic>
#include <cassert>
#include <condition_variable>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

namespace bpcr {

/// Best machine per state budget for one family. ByBudget[N] is filled for
/// N in [MinBudget, MaxStates]; index 0 and 1 are never populated (one
/// state is the machine-less profile prediction).
template <typename MachineT> struct MachineLadder {
  unsigned MaxStates = 0;
  unsigned MinBudget = 2;
  /// Rung storage reports into the opt-in allocation tracker
  /// (support/CountingAlloc.h): the cached ladders dominate the search's
  /// resident memory, so `bpcr profile` accounts them separately.
  std::vector<MachineT, CountingAllocator<MachineT, AllocTag::Ladder>>
      ByBudget;

  const MachineT &at(unsigned Budget) const {
    assert(Budget >= MinBudget && Budget <= MaxStates &&
           "budget outside the built ladder");
    return ByBudget[Budget];
  }
};

using IntraLoopLadder = MachineLadder<SuffixMachine>;
using ExitLadder = MachineLadder<ExitChainMachine>;
using CorrelatedLadder = MachineLadder<CorrelatedMachine>;

/// Best intra-loop machines for budgets [MinBudget, Opts.MaxStates] via
/// downward fill: search the deepest budget, copy the winner into every
/// rung down to its state count, then search just below that. Exact
/// whenever the underlying search is exact. A search that exhausts its
/// node budget is greedy-quality already, so the rungs below it are filled
/// by greedily truncating its winner (counted in
/// search.intra_loop.truncated_rungs) rather than burning the node budget
/// again per rung.
IntraLoopLadder buildIntraLoopLadder(const PatternTable &Table,
                                     const MachineOptions &Opts,
                                     unsigned MinBudget);

/// Best exit-chain machines for budgets [2, MaxStates]. The chain family
/// is enumerable: one fit per newly admitted (chain length, parity) shape
/// plus a running best, O(MaxStates) fits for the whole ladder.
ExitLadder buildExitLadder(const PatternTable &Table, unsigned MaxStates,
                           bool StayOnTaken);

/// Best correlated machines for budgets [MinBudget, Opts.MaxStates],
/// downward fill like the intra-loop ladder.
CorrelatedLadder buildCorrelatedLadder(int32_t BranchId,
                                       const PathProfile &Profile,
                                       const CorrelatedOptions &Opts,
                                       unsigned MinBudget);

/// Process-wide memoization of ladder construction. Thread-safe; disabled
/// it degrades to calling the builders directly. Entries are evicted LRU
/// only past a deliberately generous capacity — normal runs never evict,
/// so the stats stay schedule-independent.
class SearchCache {
public:
  static SearchCache &global();

  SearchCache();
  ~SearchCache();
  SearchCache(const SearchCache &) = delete;
  SearchCache &operator=(const SearchCache &) = delete;

  std::shared_ptr<const IntraLoopLadder>
  intraLoopLadder(const PatternTable &Table, const MachineOptions &Opts,
                  unsigned MinBudget);
  std::shared_ptr<const ExitLadder>
  exitLadder(const PatternTable &Table, unsigned MaxStates, bool StayOnTaken);
  std::shared_ptr<const CorrelatedLadder>
  correlatedLadder(int32_t BranchId, const PathProfile &Profile,
                   const CorrelatedOptions &Opts, unsigned MinBudget);

  bool enabled() const { return Enabled.load(std::memory_order_relaxed); }
  void setEnabled(bool On) {
    Enabled.store(On, std::memory_order_relaxed);
  }

  /// Max entries per family shard before LRU eviction kicks in.
  void setCapacity(size_t PerShard);

  struct Stats {
    uint64_t Hits = 0;
    uint64_t Misses = 0;
    uint64_t Evictions = 0;
  };
  Stats stats() const;

  size_t size() const;

  /// Drops every entry and zeroes the stats. Requires quiescence (no
  /// concurrent lookups), like the metrics registry's clear().
  void clear();

private:
  struct Impl;
  std::unique_ptr<Impl> P;
  std::atomic<bool> Enabled{true};
};

} // namespace bpcr

#endif // BPCR_CORE_SEARCHCACHE_H
