//===- core/StrategySelection.h - Per-branch strategy choice ----*- C++ -*-===//
//
// Part of the bpcr project (Krall, PLDI 1994 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// "With this information the state machines for loop exit and intra loop
/// branches are selected. For all branches all predecessors with a path
/// length less than the size of the state machine are collected, and the
/// correlated branch state machines are selected. The best available
/// strategy for each branch is chosen." (paper sec. 5)
///
/// This module builds, per branch, the best machine of each applicable
/// family within a state budget and picks the winner; Table 5 aggregates
/// the result, and the replication pipeline materializes it.
///
//===----------------------------------------------------------------------===//

#ifndef BPCR_CORE_STRATEGYSELECTION_H
#define BPCR_CORE_STRATEGYSELECTION_H

#include "core/BranchProfiles.h"
#include "core/CorrelatedMachine.h"
#include "core/MachineSearch.h"
#include "core/ProgramAnalysis.h"
#include "obs/Attribution.h"
#include "trace/Trace.h"

#include <memory>
#include <vector>

namespace bpcr {

class ColumnarTrace;

namespace sa {
struct BranchProofs;
} // namespace sa

/// Which prediction scheme a branch ended up with.
enum class StrategyKind : uint8_t { Profile, IntraLoop, LoopExit, Correlated };

const char *strategyKindName(StrategyKind K);

/// The chosen strategy for one branch.
struct BranchStrategy {
  int32_t BranchId = -1;
  StrategyKind Kind = StrategyKind::Profile;
  /// Machine for IntraLoop/LoopExit strategies.
  std::unique_ptr<BranchMachine> Machine;
  /// Machine for the Correlated strategy.
  std::unique_ptr<CorrelatedMachine> Corr;
  /// Training-trace assignment score of the chosen strategy.
  uint64_t Correct = 0;
  uint64_t Total = 0;
  /// States the strategy uses (1 for Profile).
  unsigned States = 1;

  uint64_t mispredicted() const { return Total - Correct; }
};

/// Selection parameters.
struct StrategyOptions {
  /// State budget per branch.
  unsigned MaxStates = 4;
  /// Maximum correlated path length; 0 derives min(MaxStates, 4) like the
  /// paper ("a maximum path length of n for an n state machine").
  unsigned MaxPathLen = 0;
  /// Restrict correlated paths to direct branch edges. The replication
  /// transform also materializes jump-mediated paths (it clones the jump
  /// chains), so the default admits them.
  bool DirectPathsOnly = false;
  /// Also consider correlated machines for loop branches.
  bool CorrelatedForLoopBranches = true;
  /// Allow loop machines for branches in recursive functions. Off by
  /// default: the replicated per-activation state cannot be modelled by
  /// trace profiling, so the trained scores would be unreliable.
  bool LoopMachinesInRecursiveFunctions = false;
  bool Exhaustive = true;
  uint64_t NodeBudget = 200'000;
  /// Branches executed fewer times keep the plain profile strategy; very
  /// cold branches cannot amortize any replication.
  uint64_t MinExecutions = 16;
  /// Worker threads for the per-branch candidate scoring: 0 = one per
  /// hardware core, 1 = serial (no pool). The selection is identical for
  /// every value.
  unsigned Jobs = 0;
  /// Branch-direction proofs from sa const-prop (sa/Dataflow.h). A proven
  /// branch keeps the profile strategy without scoring any machine — its
  /// profile prediction is already perfect, so no machine can beat it and
  /// skipping the search cannot change the chosen strategies. Each skip
  /// increments the `search.pruned_by_proof` counter.
  const sa::BranchProofs *Proofs = nullptr;
};

/// Optional record of every candidate strategy scored during selection,
/// one list per branch id. The attribution ledger and `bpcr explain
/// --branch` use it to reconstruct why the winner won.
struct SelectionTrace {
  std::vector<std::vector<CandidateScore>> PerBranch;
};

/// Chooses the best strategy for every branch. When \p TraceOut is non-null
/// every candidate score (winner and losers) is recorded into it.
std::vector<BranchStrategy> selectStrategies(const ProgramAnalysis &PA,
                                             const ProfileSet &Profiles,
                                             const Trace &T,
                                             const StrategyOptions &Opts,
                                             SelectionTrace *TraceOut = nullptr);

/// Columnar overload: identical selection driven by the SoA trace (the
/// correlated-path profiling pass reads packed direction words).
std::vector<BranchStrategy> selectStrategies(const ProgramAnalysis &PA,
                                             const ProfileSet &Profiles,
                                             const ColumnarTrace &CT,
                                             const StrategyOptions &Opts,
                                             SelectionTrace *TraceOut = nullptr);

/// Aggregated accuracy of a strategy assignment (Table 5 entries).
PredictionStats totalStrategyStats(const std::vector<BranchStrategy> &S);

} // namespace bpcr

#endif // BPCR_CORE_STRATEGYSELECTION_H
