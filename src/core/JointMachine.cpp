//===- core/JointMachine.cpp ----------------------------------------------===//
//
// Part of the bpcr project (Krall, PLDI 1994 reproduction).
//
//===----------------------------------------------------------------------===//

#include "core/JointMachine.h"

#include "trace/ColumnarTrace.h"

#include <algorithm>
#include <cassert>
#include <set>
#include <utility>

using namespace bpcr;

namespace {

bool stringLess(const SymbolString &A, const SymbolString &B) {
  if (A.size() != B.size())
    return A.size() < B.size();
  return A < B;
}

SymbolString suffixOf(const SymbolString &S, size_t Len) {
  return SymbolString(S.end() - static_cast<long>(Len), S.end());
}

uint32_t symbolOf(int MemberIdx, bool Taken) {
  return (static_cast<uint32_t>(MemberIdx) << 1) | (Taken ? 1U : 0U);
}

/// Shared loop of the members; false when they do not share one.
bool sharedLoop(const ProgramAnalysis &PA, const std::vector<int32_t> &Members,
                uint32_t &FuncIdx, const Loop *&L) {
  if (Members.empty())
    return false;
  const BranchClass &C0 = PA.classOf(Members[0]);
  if (C0.Kind == BranchKind::NonLoop)
    return false;
  FuncIdx = PA.ref(Members[0]).FuncIdx;
  L = &PA.loopInfoFor(Members[0]).loops()[static_cast<size_t>(C0.LoopIdx)];
  for (int32_t M : Members) {
    const BranchClass &C = PA.classOf(M);
    if (PA.ref(M).FuncIdx != FuncIdx || C.Kind == BranchKind::NonLoop ||
        C.LoopIdx != C0.LoopIdx)
      return false;
  }
  return true;
}

/// Branch-and-bound selection with per-(state, member) scoring. A reduced
/// copy of SuffixSelect's engine: the generic one accumulates one counts
/// channel per state, the joint machine needs one per member.
class JointSearch {
public:
  JointSearch(const JointProfile &Profile, size_t NumMembers,
              const JointOptions &Opts)
      : NumMembers(NumMembers), Opts(Opts) {
    // Intern the empty state (id 0) and all candidate suffixes.
    intern(SymbolString());
    for (const auto &[Syms, Counts] : Profile.PerPattern) {
      Patterns.push_back({Syms, Counts});
      size_t MaxL = std::min<size_t>(Syms.size(), Opts.MaxLen);
      for (size_t L = 1; L <= MaxL; ++L)
        intern(suffixOf(Syms, L));
      // Substring closure candidates: every contiguous substring, so long
      // states stay reachable through their prefixes (see
      // SelectOptions::SubstringClosure for the argument).
      for (size_t Start = 0; Start < Syms.size(); ++Start)
        for (size_t L = 1;
             L <= Opts.MaxLen && Start + L <= Syms.size(); ++L)
          intern(SymbolString(Syms.begin() + static_cast<long>(Start),
                              Syms.begin() + static_cast<long>(Start + L)));
    }

    Parent.assign(Strings.size(), 0);
    InitParent.assign(Strings.size(), 0);
    for (size_t Id = 1; Id < Strings.size(); ++Id) {
      const SymbolString &S = Strings[Id];
      if (S.size() <= 1)
        continue; // both parents are the empty state
      auto It = Ids.find(suffixOf(S, S.size() - 1));
      Parent[Id] = It == Ids.end() ? 0 : It->second;
      auto It2 = Ids.find(SymbolString(S.begin(), S.end() - 1));
      InitParent[Id] = It2 == Ids.end() ? 0 : It2->second;
    }

    PatternSuffixes.resize(Patterns.size());
    for (size_t PI = 0; PI < Patterns.size(); ++PI) {
      const SymbolString &S = Patterns[PI].Syms;
      size_t MaxL = std::min<size_t>(S.size(), Opts.MaxLen);
      for (size_t L = MaxL; L >= 1; --L) {
        auto It = Ids.find(suffixOf(S, L));
        if (It != Ids.end())
          PatternSuffixes[PI].push_back(It->second);
        if (L == 1)
          break;
      }
      PatternSuffixes[PI].push_back(0); // the empty state matches always
    }

    for (size_t Id = 1; Id < Strings.size(); ++Id)
      Candidates.push_back(static_cast<int>(Id));
    std::sort(Candidates.begin(), Candidates.end(), [this](int A, int B) {
      return stringLess(Strings[static_cast<size_t>(A)],
                        Strings[static_cast<size_t>(B)]);
    });

    InSet.assign(Strings.size(), 0);
    InSet[0] = 1; // the empty state is always selected
    Acc.assign(Strings.size() * NumMembers, DirCounts());
    Stamp.assign(Strings.size(), 0);
  }

  std::vector<SymbolString> run() {
    greedy();
    if (Opts.Exhaustive) {
      for (int C : Candidates)
        InSet[static_cast<size_t>(C)] = 0;
      SelectedCount = 0;
      dfs(0);
    }
    std::vector<SymbolString> Out;
    for (size_t Id : BestIds)
      Out.push_back(Strings[Id]);
    std::sort(Out.begin(), Out.end(), stringLess);
    return Out;
  }

private:
  struct Pattern {
    SymbolString Syms;
    std::vector<DirCounts> PerMember;
  };

  int intern(const SymbolString &S) {
    auto [It, Inserted] = Ids.emplace(S, static_cast<int>(Strings.size()));
    if (Inserted)
      Strings.push_back(S);
    return It->second;
  }

  uint64_t score() {
    ++Epoch;
    Touched.clear();
    for (size_t PI = 0; PI < Patterns.size(); ++PI) {
      int Assigned = 0;
      for (int Id : PatternSuffixes[PI])
        if (InSet[static_cast<size_t>(Id)]) {
          Assigned = Id;
          break;
        }
      size_t Base = static_cast<size_t>(Assigned) * NumMembers;
      if (Stamp[static_cast<size_t>(Assigned)] != Epoch) {
        Stamp[static_cast<size_t>(Assigned)] = Epoch;
        for (size_t J = 0; J < NumMembers; ++J)
          Acc[Base + J] = DirCounts();
        Touched.push_back(static_cast<size_t>(Assigned));
      }
      const Pattern &P = Patterns[PI];
      for (size_t J = 0; J < NumMembers; ++J) {
        Acc[Base + J].Taken += P.PerMember[J].Taken;
        Acc[Base + J].NotTaken += P.PerMember[J].NotTaken;
      }
    }
    uint64_t S = 0;
    for (size_t Id : Touched) {
      size_t Base = Id * NumMembers;
      for (size_t J = 0; J < NumMembers; ++J)
        S += std::max(Acc[Base + J].Taken, Acc[Base + J].NotTaken);
    }
    return S;
  }

  uint64_t scoreWithRest(size_t From) {
    std::vector<size_t> Flipped;
    for (size_t I = From; I < Candidates.size(); ++I) {
      size_t Id = static_cast<size_t>(Candidates[I]);
      if (!InSet[Id]) {
        InSet[Id] = 1;
        Flipped.push_back(Id);
      }
    }
    uint64_t S = score();
    for (size_t Id : Flipped)
      InSet[Id] = 0;
    return S;
  }

  bool isLegal(int CandId) const {
    return InSet[static_cast<size_t>(Parent[static_cast<size_t>(CandId)])] &&
           InSet[static_cast<size_t>(
               InitParent[static_cast<size_t>(CandId)])];
  }

  unsigned budgetLeft() const {
    // State 0 (empty) counts against the budget too.
    size_t Used = SelectedCount + 1;
    return Opts.MaxStates > Used
               ? static_cast<unsigned>(Opts.MaxStates - Used)
               : 0;
  }

  void consider() {
    uint64_t S = score();
    if (S > BestScore || BestIds.empty()) {
      BestScore = S;
      BestIds.clear();
      for (size_t Id = 0; Id < Strings.size(); ++Id)
        if (InSet[Id])
          BestIds.push_back(Id);
    }
  }

  void dfs(size_t Idx) {
    if (BudgetExhausted)
      return;
    if (++Nodes > Opts.NodeBudget) {
      BudgetExhausted = true;
      return;
    }
    consider();
    if (Idx >= Candidates.size() || budgetLeft() == 0)
      return;
    if (scoreWithRest(Idx) <= BestScore)
      return;

    int Id = Candidates[Idx];
    if (isLegal(Id)) {
      InSet[static_cast<size_t>(Id)] = 1;
      ++SelectedCount;
      dfs(Idx + 1);
      InSet[static_cast<size_t>(Id)] = 0;
      --SelectedCount;
      if (BudgetExhausted)
        return;
    }
    dfs(Idx + 1);
  }

  void greedy() {
    consider();
    while (budgetLeft() > 0) {
      uint64_t Base = score();
      uint64_t BestGain = 0;
      int BestCand = -1;
      for (int C : Candidates) {
        size_t Id = static_cast<size_t>(C);
        if (InSet[Id] || !isLegal(C))
          continue;
        InSet[Id] = 1;
        uint64_t S = score();
        InSet[Id] = 0;
        if (S > Base && S - Base > BestGain) {
          BestGain = S - Base;
          BestCand = C;
        }
      }
      if (BestCand < 0)
        break;
      InSet[static_cast<size_t>(BestCand)] = 1;
      ++SelectedCount;
      consider();
    }
    for (int C : Candidates)
      InSet[static_cast<size_t>(C)] = 0;
    SelectedCount = 0;
  }

  size_t NumMembers;
  const JointOptions &Opts;

  std::map<SymbolString, int> Ids;
  std::vector<SymbolString> Strings;
  std::vector<int> Parent;
  std::vector<int> InitParent;
  std::vector<Pattern> Patterns;
  std::vector<std::vector<int>> PatternSuffixes;
  std::vector<int> Candidates;

  std::vector<uint8_t> InSet;
  size_t SelectedCount = 0;

  std::vector<DirCounts> Acc;
  std::vector<uint32_t> Stamp;
  std::vector<size_t> Touched;
  uint32_t Epoch = 0;

  uint64_t BestScore = 0;
  std::vector<size_t> BestIds;
  uint64_t Nodes = 0;
  bool BudgetExhausted = false;
};

} // namespace

int JointLoopMachine::memberIndex(int32_t OrigId) const {
  auto It = std::lower_bound(Members.begin(), Members.end(), OrigId);
  if (It == Members.end() || *It != OrigId)
    return -1;
  return static_cast<int>(It - Members.begin());
}

unsigned JointLoopMachine::next(unsigned State, int MemberIdx,
                                bool Taken) const {
  size_t MaxLen = States.back().size();
  SymbolString S = States[State];
  S.push_back(symbolOf(MemberIdx, Taken));
  if (S.size() > MaxLen)
    S.erase(S.begin(), S.end() - static_cast<long>(MaxLen));
  for (size_t L = S.size(); L >= 1; --L) {
    SymbolString Probe = suffixOf(S, L);
    auto It =
        std::lower_bound(States.begin(), States.end(), Probe, stringLess);
    if (It != States.end() && *It == Probe)
      return static_cast<unsigned>(It - States.begin());
    if (L == 1)
      break;
  }
  return 0; // the empty state
}

std::string JointLoopMachine::describe() const {
  std::string Out = "joint{members=" + std::to_string(Members.size());
  Out += ",states=";
  for (size_t I = 0; I < States.size(); ++I) {
    if (I)
      Out += '|';
    if (States[I].empty())
      Out += "eps";
    for (uint32_t Sym : States[I]) {
      Out += std::to_string(Sym >> 1);
      Out += (Sym & 1) ? 'T' : 'N';
    }
  }
  Out += '}';
  return Out;
}

namespace {

/// Shared global-order pass of profileJointLoop; \p EventAt yields the
/// I-th (id, taken) so both trace layouts share one body.
template <class EventFn>
JointProfile profileJointLoopImpl(const ProgramAnalysis &PA,
                                  const std::vector<int32_t> &Members,
                                  size_t NumEvents, EventFn EventAt,
                                  unsigned MaxLen) {
  JointProfile Out;
  uint32_t FuncIdx = 0;
  const Loop *L = nullptr;
  if (!sharedLoop(PA, Members, FuncIdx, L))
    return Out;

  std::vector<int32_t> Sorted = Members;
  std::sort(Sorted.begin(), Sorted.end());
  auto MemberIdxOf = [&Sorted](int32_t Id) -> int {
    auto It = std::lower_bound(Sorted.begin(), Sorted.end(), Id);
    return (It != Sorted.end() && *It == Id)
               ? static_cast<int>(It - Sorted.begin())
               : -1;
  };

  SymbolString History;
  for (size_t I = 0; I < NumEvents; ++I) {
    const auto [Id, Taken] = EventAt(I);
    const BranchRef &R = PA.ref(Id);
    bool Inside = R.FuncIdx == FuncIdx && L->contains(R.BlockIdx);
    if (!Inside) {
      History.clear();
      continue;
    }
    int MI = MemberIdxOf(Id);
    if (MI < 0)
      continue; // in-loop non-member: no transition, no reset
    auto &PerMember = Out.PerPattern[History];
    if (PerMember.empty())
      PerMember.resize(Sorted.size());
    PerMember[static_cast<size_t>(MI)].record(Taken);
    ++Out.Executions;
    History.push_back(symbolOf(MI, Taken));
    if (History.size() > MaxLen)
      History.erase(History.begin());
  }
  return Out;
}

} // namespace

JointProfile bpcr::profileJointLoop(const ProgramAnalysis &PA,
                                    const std::vector<int32_t> &Members,
                                    const Trace &T, unsigned MaxLen) {
  return profileJointLoopImpl(
      PA, Members, T.size(),
      [&T](size_t I) {
        return std::pair<int32_t, bool>(T[I].BranchId, T[I].Taken);
      },
      MaxLen);
}

JointProfile bpcr::profileJointLoop(const ProgramAnalysis &PA,
                                    const std::vector<int32_t> &Members,
                                    const ColumnarTrace &CT,
                                    unsigned MaxLen) {
  const int32_t *Ids = CT.ids().data();
  const uint64_t *Dirs = CT.directions().data();
  return profileJointLoopImpl(
      PA, Members, CT.size(),
      [Ids, Dirs](size_t I) {
        bool Taken = (Dirs[I >> 6] >> (I & 63)) & 1;
        return std::pair<int32_t, bool>(Ids[I], Taken);
      },
      MaxLen);
}

JointLoopMachine
bpcr::buildJointLoopMachine(const std::vector<int32_t> &Members,
                            const JointProfile &Profile,
                            const JointOptions &Opts) {
  JointLoopMachine M;
  M.Members = Members;
  std::sort(M.Members.begin(), M.Members.end());

  JointSearch Search(Profile, M.Members.size(), Opts);
  M.States = Search.run(); // sorted; the empty state is index 0
  if (M.States.empty() || !M.States.front().empty())
    M.States.insert(M.States.begin(), SymbolString());

  // Fit per-(state, member) predictions by longest-suffix assignment.
  std::vector<std::vector<DirCounts>> Counts(
      M.States.size(), std::vector<DirCounts>(M.Members.size()));
  auto Assign = [&M](const SymbolString &Syms) -> size_t {
    for (size_t L = Syms.size(); L >= 1; --L) {
      SymbolString Probe = suffixOf(Syms, L);
      auto It = std::lower_bound(M.States.begin(), M.States.end(), Probe,
                                 stringLess);
      if (It != M.States.end() && *It == Probe)
        return static_cast<size_t>(It - M.States.begin());
      if (L == 1)
        break;
    }
    return 0;
  };
  for (const auto &[Syms, PerMember] : Profile.PerPattern) {
    size_t S = Syms.empty() ? 0 : Assign(Syms);
    for (size_t J = 0; J < PerMember.size() && J < M.Members.size(); ++J) {
      Counts[S][J].Taken += PerMember[J].Taken;
      Counts[S][J].NotTaken += PerMember[J].NotTaken;
    }
  }

  M.Predictions.assign(M.States.size(),
                       std::vector<uint8_t>(M.Members.size(), 1));
  M.Correct = 0;
  M.Total = 0;
  for (size_t S = 0; S < M.States.size(); ++S)
    for (size_t J = 0; J < M.Members.size(); ++J) {
      M.Predictions[S][J] = Counts[S][J].majorityTaken() ? 1 : 0;
      M.Correct += std::max(Counts[S][J].Taken, Counts[S][J].NotTaken);
      M.Total += Counts[S][J].total();
    }
  return M;
}

PredictionStats bpcr::evaluateJointMachine(const JointLoopMachine &M,
                                           const ProgramAnalysis &PA,
                                           const Trace &T) {
  PredictionStats Stats;
  if (M.Members.empty())
    return Stats;
  uint32_t FuncIdx = 0;
  const Loop *L = nullptr;
  if (!sharedLoop(PA, M.Members, FuncIdx, L))
    return Stats;

  unsigned State = M.initialState();
  for (const BranchEvent &E : T) {
    const BranchRef &R = PA.ref(E.BranchId);
    bool Inside = R.FuncIdx == FuncIdx && L->contains(R.BlockIdx);
    if (!Inside) {
      State = M.initialState();
      continue;
    }
    int MI = M.memberIndex(E.BranchId);
    if (MI < 0)
      continue;
    Stats.record(M.predictTaken(State, MI) == E.Taken);
    State = M.next(State, MI, E.Taken);
  }
  return Stats;
}

ReplicationStats bpcr::applyJointLoopReplication(
    Function &F, const std::vector<uint32_t> &LoopBlocks, uint32_t Header,
    const JointLoopMachine &M) {
  ReplicationStats Out;
  (void)Header;

  // Reachable states from the initial one under all member transitions.
  unsigned NumStates = M.numStates();
  std::vector<uint8_t> Reachable(NumStates, 0);
  {
    std::vector<unsigned> Work{M.initialState()};
    Reachable[M.initialState()] = 1;
    while (!Work.empty()) {
      unsigned S = Work.back();
      Work.pop_back();
      for (size_t J = 0; J < M.Members.size(); ++J)
        for (bool Taken : {false, true}) {
          unsigned N = M.next(S, static_cast<int>(J), Taken);
          if (!Reachable[N]) {
            Reachable[N] = 1;
            Work.push_back(N);
          }
        }
    }
  }

  auto InLoop = [&LoopBlocks](uint32_t B) {
    return std::binary_search(LoopBlocks.begin(), LoopBlocks.end(), B);
  };
  auto LoopPos = [&LoopBlocks](uint32_t B) {
    return static_cast<size_t>(
        std::lower_bound(LoopBlocks.begin(), LoopBlocks.end(), B) -
        LoopBlocks.begin());
  };

  unsigned Init = M.initialState();
  std::vector<std::vector<uint32_t>> CopyIdx(
      NumStates, std::vector<uint32_t>(LoopBlocks.size(), UINT32_MAX));
  for (size_t P = 0; P < LoopBlocks.size(); ++P)
    CopyIdx[Init][P] = LoopBlocks[P];
  for (unsigned S = 0; S < NumStates; ++S) {
    if (S == Init || !Reachable[S])
      continue;
    for (size_t P = 0; P < LoopBlocks.size(); ++P) {
      BasicBlock Clone = F.Blocks[LoopBlocks[P]];
      Clone.Name += "@j" + std::to_string(S);
      CopyIdx[S][P] = static_cast<uint32_t>(F.Blocks.size());
      F.Blocks.push_back(std::move(Clone));
      ++Out.BlocksAdded;
    }
  }

  for (unsigned S = 0; S < NumStates; ++S) {
    if (!Reachable[S])
      continue;
    for (size_t P = 0; P < LoopBlocks.size(); ++P) {
      BasicBlock &BB = F.Blocks[CopyIdx[S][P]];
      if (!BB.isComplete())
        continue;
      Instruction &T = BB.terminator();

      auto Retarget = [&](uint32_t Old, unsigned NextState) {
        if (!InLoop(Old))
          return Old;
        return CopyIdx[NextState][LoopPos(Old)];
      };

      if (T.Op == Opcode::Jmp) {
        T.TrueTarget = Retarget(T.TrueTarget, S);
        continue;
      }
      if (!T.isConditionalBranch())
        continue;

      int MI = M.memberIndex(T.OrigBranchId);
      if (MI >= 0) {
        T.TrueTarget = Retarget(T.TrueTarget, M.next(S, MI, true));
        T.FalseTarget = Retarget(T.FalseTarget, M.next(S, MI, false));
        T.Predicted = M.predictTaken(S, MI) ? Prediction::Taken
                                            : Prediction::NotTaken;
      } else {
        T.TrueTarget = Retarget(T.TrueTarget, S);
        T.FalseTarget = Retarget(T.FalseTarget, S);
      }
    }
  }

  for (uint8_t R : Reachable)
    Out.StatesMaterialized += R;
  Out.BlocksPruned = pruneUnreachableBlocks(F);
  Out.Applied = true;
  return Out;
}
