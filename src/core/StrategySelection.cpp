//===- core/StrategySelection.cpp -----------------------------------------===//
//
// Part of the bpcr project (Krall, PLDI 1994 reproduction).
//
//===----------------------------------------------------------------------===//

#include "core/StrategySelection.h"

#include "obs/Metrics.h"

#include <cassert>

using namespace bpcr;

const char *bpcr::strategyKindName(StrategyKind K) {
  switch (K) {
  case StrategyKind::Profile:
    return "profile";
  case StrategyKind::IntraLoop:
    return "intra-loop";
  case StrategyKind::LoopExit:
    return "loop-exit";
  case StrategyKind::Correlated:
    return "correlated";
  }
  return "<bad>";
}

std::vector<BranchStrategy>
bpcr::selectStrategies(const ProgramAnalysis &PA, const ProfileSet &Profiles,
                       const Trace &T, const StrategyOptions &Opts,
                       SelectionTrace *TraceOut) {
  assert(Opts.MaxStates >= 2 && "strategy selection needs a state budget");
  if (TraceOut) {
    TraceOut->PerBranch.clear();
    TraceOut->PerBranch.resize(PA.numBranches());
  }
  unsigned PathLen = Opts.MaxPathLen
                         ? Opts.MaxPathLen
                         : std::min<unsigned>(Opts.MaxStates, 4);

  // Collect correlated-path candidates for every eligible branch, then
  // profile them in a single trace pass.
  std::vector<std::vector<BranchPath>> Candidates(PA.numBranches());
  for (uint32_t Id = 0; Id < PA.numBranches(); ++Id) {
    const BranchProfile &P = Profiles.branch(static_cast<int32_t>(Id));
    if (P.executions() < Opts.MinExecutions)
      continue;
    const BranchClass &C = PA.classOf(static_cast<int32_t>(Id));
    if (C.Kind != BranchKind::NonLoop && !Opts.CorrelatedForLoopBranches)
      continue;
    Candidates[Id] = PA.backwardPaths(static_cast<int32_t>(Id), PathLen,
                                      !Opts.DirectPathsOnly);
  }
  std::vector<PathProfile> PathProfiles = profilePaths(Candidates, T, PathLen);

  Registry &Obs = Registry::global();
  const bool ObsOn = Obs.enabled();
  if (ObsOn) {
    uint64_t PathCandidates = 0;
    for (const std::vector<BranchPath> &C : Candidates)
      PathCandidates += C.size();
    Obs.counter("search.correlated.path_candidates").add(PathCandidates);
    Obs.counter("strategy.branches_considered").add(PA.numBranches());
  }

  std::vector<BranchStrategy> Out;
  Out.reserve(PA.numBranches());

  for (uint32_t Id = 0; Id < PA.numBranches(); ++Id) {
    const BranchProfile &P = Profiles.branch(static_cast<int32_t>(Id));
    BranchStrategy S;
    S.BranchId = static_cast<int32_t>(Id);
    S.Kind = StrategyKind::Profile;
    S.Total = P.executions();
    S.Correct = P.executions() - P.profileMispredictions();
    S.States = 1;

    auto RecordCandidate = [&](StrategyKind K, uint64_t Correct,
                               uint64_t Total, unsigned States) {
      if (TraceOut)
        TraceOut->PerBranch[Id].push_back(
            {strategyKindName(K), Correct, Total, States, /*Chosen=*/false});
    };
    RecordCandidate(StrategyKind::Profile, S.Correct, S.Total, 1);
    auto MarkChosen = [&](const BranchStrategy &Final) {
      if (!TraceOut)
        return;
      for (CandidateScore &C : TraceOut->PerBranch[Id])
        if (C.Strategy == strategyKindName(Final.Kind)) {
          C.Chosen = true;
          break;
        }
    };

    if (P.executions() < Opts.MinExecutions) {
      if (ObsOn)
        Obs.counter("strategy.pruned.cold").inc();
      MarkChosen(S);
      Out.push_back(std::move(S));
      continue;
    }

    const BranchClass &C = PA.classOf(static_cast<int32_t>(Id));
    bool LoopMachinesOk =
        Opts.LoopMachinesInRecursiveFunctions ||
        !PA.isRecursive(PA.ref(static_cast<int32_t>(Id)).FuncIdx);

    if (!LoopMachinesOk) {
      // Fall through to the correlated candidates only.
      if (ObsOn)
        Obs.counter("strategy.pruned.recursive").inc();
    } else if (C.Kind == BranchKind::IntraLoop) {
      MachineOptions MO;
      MO.MaxStates = Opts.MaxStates;
      MO.MaxPatternLen = P.Table.maxBits();
      MO.Exhaustive = Opts.Exhaustive;
      MO.NodeBudget = Opts.NodeBudget;
      SuffixMachine M = buildIntraLoopMachine(P.Table, MO);
      RecordCandidate(StrategyKind::IntraLoop, M.Correct, M.Total,
                      M.numStates());
      if (M.Correct > S.Correct) {
        S.Kind = StrategyKind::IntraLoop;
        S.Correct = M.Correct;
        S.Total = M.Total;
        S.States = M.numStates();
        S.Machine = std::make_unique<SuffixMachine>(std::move(M));
      }
    } else if (C.Kind == BranchKind::LoopExit) {
      ExitChainMachine M =
          buildExitMachine(P.Table, Opts.MaxStates, !C.TakenExits);
      RecordCandidate(StrategyKind::LoopExit, M.Correct, M.Total,
                      M.numStates());
      if (M.Correct > S.Correct) {
        S.Kind = StrategyKind::LoopExit;
        S.Correct = M.Correct;
        S.Total = M.Total;
        S.States = M.numStates();
        S.Machine = std::make_unique<ExitChainMachine>(std::move(M));
      }
    }

    if (!Candidates[Id].empty()) {
      CorrelatedOptions CO;
      CO.MaxStates = Opts.MaxStates;
      CO.MaxPathLen = PathLen;
      CO.Exhaustive = Opts.Exhaustive;
      CO.NodeBudget = Opts.NodeBudget;
      CorrelatedMachine CM = buildCorrelatedMachineFromProfile(
          static_cast<int32_t>(Id), PathProfiles[Id], CO);
      RecordCandidate(StrategyKind::Correlated, CM.Correct, CM.Total,
                      CM.numStates());
      if (CM.Correct > S.Correct) {
        S.Kind = StrategyKind::Correlated;
        S.Correct = CM.Correct;
        S.Total = CM.Total;
        S.States = CM.numStates();
        S.Machine.reset();
        S.Corr = std::make_unique<CorrelatedMachine>(std::move(CM));
      }
    }

    if (ObsOn)
      Obs.counter(std::string("strategy.chosen.") +
                  strategyKindName(S.Kind))
          .inc();
    MarkChosen(S);
    Out.push_back(std::move(S));
  }
  return Out;
}

PredictionStats
bpcr::totalStrategyStats(const std::vector<BranchStrategy> &S) {
  PredictionStats Stats;
  for (const BranchStrategy &B : S) {
    Stats.Predictions += B.Total;
    Stats.Mispredictions += B.Total - B.Correct;
  }
  return Stats;
}
