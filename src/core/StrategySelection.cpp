//===- core/StrategySelection.cpp -----------------------------------------===//
//
// Part of the bpcr project (Krall, PLDI 1994 reproduction).
//
//===----------------------------------------------------------------------===//

#include "core/StrategySelection.h"

#include "core/SearchCache.h"
#include "obs/Metrics.h"
#include "trace/ColumnarTrace.h"
#include "sa/Dataflow.h"
#include "support/ThreadPool.h"

#include <cassert>

using namespace bpcr;

const char *bpcr::strategyKindName(StrategyKind K) {
  switch (K) {
  case StrategyKind::Profile:
    return "profile";
  case StrategyKind::IntraLoop:
    return "intra-loop";
  case StrategyKind::LoopExit:
    return "loop-exit";
  case StrategyKind::Correlated:
    return "correlated";
  }
  return "<bad>";
}

namespace {

/// Shared body; \p T is either the legacy Trace or a ColumnarTrace (the
/// only trace use is the single profilePaths pass, which is overloaded
/// for both layouts and produces identical profiles).
template <class TraceT>
std::vector<BranchStrategy>
selectStrategiesImpl(const ProgramAnalysis &PA, const ProfileSet &Profiles,
                     const TraceT &T, const StrategyOptions &Opts,
                     SelectionTrace *TraceOut) {
  assert(Opts.MaxStates >= 2 && "strategy selection needs a state budget");
  if (TraceOut) {
    TraceOut->PerBranch.clear();
    TraceOut->PerBranch.resize(PA.numBranches());
  }
  unsigned PathLen = Opts.MaxPathLen
                         ? Opts.MaxPathLen
                         : std::min<unsigned>(Opts.MaxStates, 4);

  // Collect correlated-path candidates for every eligible branch, then
  // profile them in a single trace pass.
  std::vector<std::vector<BranchPath>> Candidates(PA.numBranches());
  for (uint32_t Id = 0; Id < PA.numBranches(); ++Id) {
    const BranchProfile &P = Profiles.branch(static_cast<int32_t>(Id));
    if (P.executions() < Opts.MinExecutions)
      continue;
    if (Opts.Proofs && Opts.Proofs->proven(static_cast<int32_t>(Id)))
      continue; // proven branches collect no paths: their search is pruned
    const BranchClass &C = PA.classOf(static_cast<int32_t>(Id));
    if (C.Kind != BranchKind::NonLoop && !Opts.CorrelatedForLoopBranches)
      continue;
    Candidates[Id] = PA.backwardPaths(static_cast<int32_t>(Id), PathLen,
                                      !Opts.DirectPathsOnly);
  }
  std::vector<PathProfile> PathProfiles = profilePaths(Candidates, T, PathLen);

  Registry &Obs = Registry::global();
  const bool ObsOn = Obs.enabled();
  if (ObsOn) {
    uint64_t PathCandidates = 0;
    for (const std::vector<BranchPath> &C : Candidates)
      PathCandidates += C.size();
    Obs.counter("search.correlated.path_candidates").add(PathCandidates);
    Obs.counter("strategy.branches_considered").add(PA.numBranches());
  }

  // Score branches in parallel: each branch's candidates are independent,
  // results land in slots indexed by branch id, and the machine searches
  // go through the memoized ladder cache (MinBudget == MaxStates, so a
  // cold cache pays exactly one search per family, like the serial code
  // did). Identical pattern tables across branches now share one search.
  std::vector<BranchStrategy> Out(PA.numBranches());
  SearchCache &Cache = SearchCache::global();

  auto ScoreBranch = [&](size_t Idx) {
    uint32_t Id = static_cast<uint32_t>(Idx);
    const BranchProfile &P = Profiles.branch(static_cast<int32_t>(Id));
    BranchStrategy S;
    S.BranchId = static_cast<int32_t>(Id);
    S.Kind = StrategyKind::Profile;
    S.Total = P.executions();
    S.Correct = P.executions() - P.profileMispredictions();
    S.States = 1;

    auto RecordCandidate = [&](StrategyKind K, uint64_t Correct,
                               uint64_t Total, unsigned States) {
      if (TraceOut)
        TraceOut->PerBranch[Id].push_back(
            {strategyKindName(K), Correct, Total, States, /*Chosen=*/false});
    };
    RecordCandidate(StrategyKind::Profile, S.Correct, S.Total, 1);
    auto MarkChosen = [&](const BranchStrategy &Final) {
      if (!TraceOut)
        return;
      for (CandidateScore &C : TraceOut->PerBranch[Id])
        if (C.Strategy == strategyKindName(Final.Kind)) {
          C.Chosen = true;
          break;
        }
    };

    // A branch proven unidirectional never consults its pattern table and
    // never enters the machine search: its profile prediction already gets
    // every execution right, so Correct == Total and no machine's strict
    // `>` comparison could win. The skip is therefore score-preserving.
    if (Opts.Proofs && Opts.Proofs->proven(static_cast<int32_t>(Id))) {
      if (ObsOn)
        Obs.counter("search.pruned_by_proof").inc();
      MarkChosen(S);
      Out[Idx] = std::move(S);
      return;
    }

    if (P.executions() < Opts.MinExecutions) {
      if (ObsOn)
        Obs.counter("strategy.pruned.cold").inc();
      MarkChosen(S);
      Out[Idx] = std::move(S);
      return;
    }

    const BranchClass &C = PA.classOf(static_cast<int32_t>(Id));
    bool LoopMachinesOk =
        Opts.LoopMachinesInRecursiveFunctions ||
        !PA.isRecursive(PA.ref(static_cast<int32_t>(Id)).FuncIdx);

    if (!LoopMachinesOk) {
      // Fall through to the correlated candidates only.
      if (ObsOn)
        Obs.counter("strategy.pruned.recursive").inc();
    } else if (C.Kind == BranchKind::IntraLoop) {
      MachineOptions MO;
      MO.MaxStates = Opts.MaxStates;
      MO.MaxPatternLen = P.Table.maxBits();
      MO.Exhaustive = Opts.Exhaustive;
      MO.NodeBudget = Opts.NodeBudget;
      auto IL = Cache.intraLoopLadder(P.Table, MO,
                                      /*MinBudget=*/Opts.MaxStates);
      const SuffixMachine &M = IL->at(Opts.MaxStates);
      RecordCandidate(StrategyKind::IntraLoop, M.Correct, M.Total,
                      M.numStates());
      if (M.Correct > S.Correct) {
        S.Kind = StrategyKind::IntraLoop;
        S.Correct = M.Correct;
        S.Total = M.Total;
        S.States = M.numStates();
        S.Machine = std::make_unique<SuffixMachine>(M);
      }
    } else if (C.Kind == BranchKind::LoopExit) {
      auto EL = Cache.exitLadder(P.Table, Opts.MaxStates, !C.TakenExits);
      const ExitChainMachine &M = EL->at(Opts.MaxStates);
      RecordCandidate(StrategyKind::LoopExit, M.Correct, M.Total,
                      M.numStates());
      if (M.Correct > S.Correct) {
        S.Kind = StrategyKind::LoopExit;
        S.Correct = M.Correct;
        S.Total = M.Total;
        S.States = M.numStates();
        S.Machine = std::make_unique<ExitChainMachine>(M);
      }
    }

    if (!Candidates[Id].empty()) {
      CorrelatedOptions CO;
      CO.MaxStates = Opts.MaxStates;
      CO.MaxPathLen = PathLen;
      CO.Exhaustive = Opts.Exhaustive;
      CO.NodeBudget = Opts.NodeBudget;
      auto CL = Cache.correlatedLadder(static_cast<int32_t>(Id),
                                       PathProfiles[Id], CO,
                                       /*MinBudget=*/Opts.MaxStates);
      const CorrelatedMachine &CM = CL->at(Opts.MaxStates);
      RecordCandidate(StrategyKind::Correlated, CM.Correct, CM.Total,
                      CM.numStates());
      if (CM.Correct > S.Correct) {
        S.Kind = StrategyKind::Correlated;
        S.Correct = CM.Correct;
        S.Total = CM.Total;
        S.States = CM.numStates();
        S.Machine.reset();
        S.Corr = std::make_unique<CorrelatedMachine>(CM);
      }
    }

    if (ObsOn)
      Obs.counter(std::string("strategy.chosen.") +
                  strategyKindName(S.Kind))
          .inc();
    MarkChosen(S);
    Out[Idx] = std::move(S);
  };
  parallelForJobs(Opts.Jobs, Out.size(), ScoreBranch);
  return Out;
}

} // namespace

std::vector<BranchStrategy>
bpcr::selectStrategies(const ProgramAnalysis &PA, const ProfileSet &Profiles,
                       const Trace &T, const StrategyOptions &Opts,
                       SelectionTrace *TraceOut) {
  return selectStrategiesImpl(PA, Profiles, T, Opts, TraceOut);
}

std::vector<BranchStrategy>
bpcr::selectStrategies(const ProgramAnalysis &PA, const ProfileSet &Profiles,
                       const ColumnarTrace &CT, const StrategyOptions &Opts,
                       SelectionTrace *TraceOut) {
  return selectStrategiesImpl(PA, Profiles, CT, Opts, TraceOut);
}

PredictionStats
bpcr::totalStrategyStats(const std::vector<BranchStrategy> &S) {
  PredictionStats Stats;
  for (const BranchStrategy &B : S) {
    Stats.Predictions += B.Total;
    Stats.Mispredictions += B.Total - B.Correct;
  }
  return Stats;
}
