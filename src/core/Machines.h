//===- core/Machines.h - Branch prediction state machines -------*- C++ -*-===//
//
// Part of the bpcr project (Krall, PLDI 1994 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's branch prediction state machines (sec. 4): small automata
/// whose states are compacted history information and whose transitions are
/// the branch outcomes. Code replication later materializes one loop copy
/// per state.
///
///  - SuffixMachine: states are binary history strings matched by longest
///    suffix (the intra-loop machines of figures 2-4).
///  - ExitChainMachine: states count iterations since the last loop exit,
///    saturating at the chain end or alternating between the two longest
///    states for even/odd trip counts (figure 5).
///
//===----------------------------------------------------------------------===//

#ifndef BPCR_CORE_MACHINES_H
#define BPCR_CORE_MACHINES_H

#include "core/BranchProfiles.h"
#include "core/ScoreKernels.h"
#include "core/SuffixSelect.h"
#include "support/Statistics.h"

#include <memory>
#include <string>
#include <vector>

namespace bpcr {

/// A per-branch prediction automaton. States are dense indexes; every state
/// carries one static prediction — the property that lets replication give
/// each loop copy a single predicted direction.
class BranchMachine {
public:
  virtual ~BranchMachine();

  virtual unsigned numStates() const = 0;
  virtual unsigned initialState() const = 0;
  virtual unsigned next(unsigned State, bool Taken) const = 0;
  virtual bool predictTaken(unsigned State) const = 0;
  virtual std::string describe() const = 0;
  virtual std::unique_ptr<BranchMachine> clone() const = 0;

  /// Replays an outcome stream through the machine and counts
  /// mispredictions — the realized accuracy, as opposed to the assignment
  /// score used during construction.
  PredictionStats simulate(const std::vector<uint8_t> &Outcomes) const;

  /// Like simulate(), but returns to the initial state at every recorded
  /// loop re-entry — exactly the behaviour of the replicated program.
  PredictionStats simulateSegmented(const BranchProfile &P) const;

  /// States reachable from the initial state (replication prunes the rest,
  /// like the paper discards blocks "2b" and "3a" in figure 1).
  std::vector<uint8_t> reachableStates() const;

  /// Construction-time assignment score.
  uint64_t Correct = 0;
  uint64_t Total = 0;
};

/// Densifies \p M into the kernel representation (core/ScoreKernels.h):
/// nibble transition tables and a prediction bitmask. \returns false when
/// the machine does not fit 16 states, in which case callers fall back to
/// the virtual-dispatch walk. The encoding queries next()/predictTaken()
/// once per (state, outcome) — 2*numStates virtual calls total instead of
/// one per trace event.
bool denseEncode(const BranchMachine &M, DenseMachine &Out);

/// Intra-loop machine: states are history strings over {0,1} (oldest symbol
/// first, most recent last), transition appends the outcome and rematches by
/// longest suffix. Suffix closure (enforced by the search) makes this
/// equivalent to tracking the longest state-suffix of the true history.
class SuffixMachine : public BranchMachine {
public:
  /// Builds from a selection over bit symbols (each symbol 0 or 1).
  static SuffixMachine fromSelection(const SuffixSelection &Sel);

  unsigned numStates() const override {
    return static_cast<unsigned>(States.size());
  }
  unsigned initialState() const override { return Initial; }
  unsigned next(unsigned State, bool Taken) const override;
  bool predictTaken(unsigned State) const override {
    return Preds[State] != 0;
  }
  std::string describe() const override;
  std::unique_ptr<BranchMachine> clone() const override {
    return std::make_unique<SuffixMachine>(*this);
  }

  const std::vector<SymbolString> &states() const { return States; }

private:
  /// Sorted by (length, content); symbols are 0/1.
  std::vector<SymbolString> States;
  std::vector<uint8_t> Preds;
  unsigned Initial = 0;
  unsigned MaxLen = 1;
};

/// Loop-exit machine (paper figure 5): state k means "k loop iterations
/// since the last exit", saturating at the chain end; the parity variant
/// alternates between the two longest states to capture loops with a
/// characteristic even/odd trip count.
class ExitChainMachine : public BranchMachine {
public:
  /// Fits predictions for a chain of the given shape against a pattern
  /// table. \p StayOnTaken gives the outcome polarity that continues the
  /// loop (false when the taken edge exits).
  static ExitChainMachine fit(const PatternTable &Table, unsigned ChainLen,
                              bool Parity, bool StayOnTaken);

  unsigned numStates() const override {
    return ChainLen + 1 + (Parity ? 1 : 0);
  }

  /// The state matching a zero-filled (reset) history: state 0 when taken
  /// continues the loop (zero trailing stays), the saturated chain end
  /// otherwise (a zero history reads as all-stays). Keeping this aligned
  /// with the zero-reset convention of the loop-aware profiles makes the
  /// fit score match what replication realizes.
  unsigned initialState() const override { return StayOnTaken ? 0 : ChainLen; }
  unsigned next(unsigned State, bool Taken) const override;
  bool predictTaken(unsigned State) const override {
    return Preds[State] != 0;
  }
  std::string describe() const override;
  std::unique_ptr<BranchMachine> clone() const override {
    return std::make_unique<ExitChainMachine>(*this);
  }

  unsigned chainLen() const { return ChainLen; }
  bool hasParity() const { return Parity; }

private:
  unsigned ChainLen = 1;
  bool Parity = false;
  bool StayOnTaken = true;
  std::vector<uint8_t> Preds;
};

} // namespace bpcr

#endif // BPCR_CORE_MACHINES_H
