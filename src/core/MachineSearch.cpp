//===- core/MachineSearch.cpp ---------------------------------------------===//
//
// Part of the bpcr project (Krall, PLDI 1994 reproduction).
//
//===----------------------------------------------------------------------===//

#include "core/MachineSearch.h"

#include "obs/Metrics.h"
#include "obs/TraceSpans.h"

#include <algorithm>
#include <unordered_map>

using namespace bpcr;

std::vector<ObservedPattern>
bpcr::patternsFromTable(const PatternTable &Table) {
  std::vector<ObservedPattern> Out;
  Out.reserve(Table.full().size());
  unsigned L = Table.maxBits();
  for (const auto &[Pattern, Counts] : Table.full()) {
    ObservedPattern P;
    P.Syms.reserve(L);
    // Oldest outcome first; bit 0 of the packed pattern is the newest.
    for (unsigned I = L; I-- > 0;)
      P.Syms.push_back((Pattern >> I) & 1U);
    P.Counts = Counts;
    Out.push_back(std::move(P));
  }
  // Deterministic order regardless of hash-map iteration.
  std::sort(Out.begin(), Out.end(),
            [](const ObservedPattern &A, const ObservedPattern &B) {
              return A.Syms < B.Syms;
            });
  return Out;
}

SuffixMachine bpcr::buildIntraLoopMachine(const PatternTable &Table,
                                          const MachineOptions &Opts,
                                          bool *AnyBudgetExhausted) {
  // Candidate machines are built once per (branch, state count) and sweeps
  // evaluate thousands of them — the tracer's per-category sampling cap
  // keeps the trace bounded and counts the overflow in
  // obs.trace.spans_dropped.
  Span S("search.intra_loop.candidate", "search");
  S.arg("max_states", static_cast<uint64_t>(Opts.MaxStates));

  std::vector<ObservedPattern> Patterns = patternsFromTable(Table);

  // Base {"0", "1"}: two catch-all states, chains grow from length 1.
  SelectOptions Sel;
  Sel.MaxSelected = Opts.MaxStates;
  Sel.MinLen = 1;
  Sel.MaxLen = std::min<unsigned>(
      Opts.MaxPatternLen, Opts.MaxStates >= 2 ? Opts.MaxStates - 1 : 1);
  Sel.Exhaustive = Opts.Exhaustive;
  Sel.NodeBudget = Opts.NodeBudget;
  // Substring closure makes the assignment score equal machine simulation
  // exactly (see SelectOptions::SubstringClosure).
  Sel.SubstringClosure = true;

  SuffixSelection Best =
      selectSuffixStates(Patterns, {{0}, {1}}, Sel);
  bool Exhausted = Best.BudgetExhausted;

  // Base {"00","01","10","11"} (paper figure 3): four catch-all states that
  // remember the last two outcomes.
  if (Opts.TryTwoBitBase && Opts.MaxStates >= 4 && Opts.MaxPatternLen >= 2) {
    SelectOptions Sel2 = Sel;
    Sel2.MinLen = 2;
    Sel2.MaxLen = std::min<unsigned>(Opts.MaxPatternLen,
                                     2 + (Opts.MaxStates - 4));
    SuffixSelection Two = selectSuffixStates(
        Patterns, {{0, 0}, {0, 1}, {1, 0}, {1, 1}}, Sel2);
    Exhausted = Exhausted || Two.BudgetExhausted;
    if (Two.Correct > Best.Correct)
      Best = std::move(Two);
  }
  if (AnyBudgetExhausted)
    *AnyBudgetExhausted = Exhausted;

  if (Registry::global().enabled()) {
    Registry &Obs = Registry::global();
    Obs.counter("search.intra_loop.machines").inc();
    Obs.counter("search.intra_loop.patterns").add(Patterns.size());
    if (Best.BudgetExhausted)
      Obs.counter("search.budget_exhausted").inc();
  }
  S.arg("patterns", static_cast<uint64_t>(Patterns.size()));
  S.arg("correct", Best.Correct);

  return SuffixMachine::fromSelection(Best);
}

ExitChainMachine bpcr::buildExitMachine(const PatternTable &Table,
                                        unsigned MaxStates,
                                        bool StayOnTaken) {
  assert(MaxStates >= 2 && "exit machine needs at least two states");
  Span S("search.exit.candidate", "search");
  S.arg("max_states", static_cast<uint64_t>(MaxStates));
  ExitChainMachine Best =
      ExitChainMachine::fit(Table, /*ChainLen=*/1, /*Parity=*/false,
                            StayOnTaken);
  for (unsigned Chain = 1; Chain + 1 <= MaxStates; ++Chain) {
    ExitChainMachine M =
        ExitChainMachine::fit(Table, Chain, /*Parity=*/false, StayOnTaken);
    if (M.Correct > Best.Correct)
      Best = std::move(M);
    if (Chain + 2 <= MaxStates) {
      ExitChainMachine P =
          ExitChainMachine::fit(Table, Chain, /*Parity=*/true, StayOnTaken);
      if (P.Correct > Best.Correct)
        Best = std::move(P);
    }
  }
  if (Registry::global().enabled())
    Registry::global().counter("search.exit.machines").inc();
  S.arg("correct", Best.Correct);
  return Best;
}

uint64_t bpcr::fullHistoryCorrect(const PatternTable &Table, unsigned Bits) {
  uint32_t Mask = (Bits >= 32) ? ~0U : ((1U << Bits) - 1U);
  std::unordered_map<uint32_t, DirCounts> Groups;
  for (const auto &[Pattern, Counts] : Table.full()) {
    DirCounts &G = Groups[Pattern & Mask];
    G.Taken += Counts.Taken;
    G.NotTaken += Counts.NotTaken;
  }
  uint64_t Correct = 0;
  for (const auto &[Pattern, C] : Groups)
    Correct += std::max(C.Taken, C.NotTaken);
  return Correct;
}
