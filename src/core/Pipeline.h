//===- core/Pipeline.h - Profile -> replicate -> annotate -------*- C++ -*-===//
//
// Part of the bpcr project (Krall, PLDI 1994 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The end-to-end optimizer of paper sec. 5: profile a module, choose the
/// best prediction strategy per branch, replicate code for the branches
/// where the accuracy gain justifies the size increase ("an optimizer using
/// code replication ... will not improve the whole program, but only
/// certain branches. ... A cost function will calculate whether the
/// increase in [code size] is worth the gain"), and annotate every
/// remaining branch with its profile prediction.
///
//===----------------------------------------------------------------------===//

#ifndef BPCR_CORE_PIPELINE_H
#define BPCR_CORE_PIPELINE_H

#include "core/Replication.h"
#include "core/StrategySelection.h"
#include "ir/Module.h"
#include "obs/Attribution.h"
#include "obs/DecisionLog.h"
#include "obs/TimeSeries.h"
#include "sa/Diagnostic.h"
#include "trace/Trace.h"

namespace bpcr {

/// Pipeline parameters.
struct PipelineOptions {
  StrategyOptions Strategy;
  /// Minimum training-trace gain (extra correct predictions) a machine must
  /// deliver before its branch is replicated.
  uint64_t MinGain = 1;
  /// Replication stops when the transformed module would exceed this factor
  /// of the original instruction count.
  double MaxSizeFactor = 4.0;
  /// When several branches of one loop earn machines, build a single joint
  /// machine for the whole loop instead of multiplying per-branch copies
  /// (the paper's "Further Work" sec. 6; see bench/ablation_joint).
  bool UseJointMachines = true;
  /// State budget for joint machines.
  unsigned JointMaxStates = 8;
  /// Event-window width for the timeline series recorded during the
  /// attribution measurement run (power of two; 0 keeps the
  /// TimeSeriesOptions default of 1024). Surfaced as `bpcr timeline
  /// --window`.
  uint64_t TimelineWindowEvents = 0;
  /// Run the const-prop proof engine (sa/Dataflow.h) first and fold its
  /// branch-direction proofs through the pipeline: proven branches skip
  /// the pattern-table fill and the machine search (counted in
  /// `search.pruned_by_proof`; proven total in the
  /// `sa.proofs.pruned_branches` gauge), their static prediction is folded
  /// from the proof after annotation, and the soundness report gains an
  /// error if the training trace ever contradicts a proof. Quality gauges
  /// are identical with the flag off — pruning only skips work that could
  /// not have changed the outcome.
  bool UseProofPruning = true;
};

/// Outcome of replicateModule.
struct PipelineResult {
  Module Transformed;
  std::vector<BranchStrategy> Strategies;
  unsigned LoopReplications = 0;
  unsigned JointReplications = 0;
  unsigned CorrelatedReplications = 0;
  unsigned SkippedBudget = 0;
  unsigned SkippedStructure = 0;
  uint64_t OrigInstructions = 0;
  uint64_t NewInstructions = 0;
  /// Why each branch was or was not replicated, in pipeline order (joint
  /// plans first, then per-branch strategies by gain per instruction, then
  /// the branches that kept the profile strategy).
  DecisionLog Decisions;
  /// Per-branch misprediction attribution (candidate scores, runner-up
  /// deltas, measured per-replica correctness). Filled only when the global
  /// observability registry is enabled; empty otherwise.
  AttributionLedger Attribution;
  /// Windowed time-series telemetry of the transformed module's measurement
  /// run (global and per-original-branch taken/misprediction counts per
  /// event window). Filled alongside Attribution when the registry is
  /// enabled; empty otherwise. Feeds `bpcr timeline`, the report's
  /// `timeline` section and the trace viewer's counter tracks.
  TimeSeriesData Timeline;
  /// Findings from the replication soundness checker
  /// (sa/ReplicationSoundness.h), which re-verifies the simulation relation
  /// against the original module after every applied transform and once
  /// more after annotation. Empty means every replicated block provably
  /// simulates its original; tests and `bpcr` fail fast on anything here.
  std::vector<sa::Diagnostic> Soundness;

  double sizeFactor() const {
    return OrigInstructions
               ? static_cast<double>(NewInstructions) /
                     static_cast<double>(OrigInstructions)
               : 1.0;
  }
};

/// Profiles \p M with trace \p T, replicates the profitable branches and
/// annotates everything else with profile predictions. \p M must have
/// branch ids assigned and \p T must stem from it.
PipelineResult replicateModule(const Module &M, const Trace &T,
                               const PipelineOptions &Opts);

/// Columnar primary: the whole pipeline (profiling, strategy search,
/// joint-loop profiling, measurement sizing) reads the SoA trace. The
/// legacy Trace overload packs its events and delegates here. \p CT must
/// be finalized for the module's branch count.
PipelineResult replicateModule(const Module &M, const ColumnarTrace &CT,
                               const PipelineOptions &Opts);

} // namespace bpcr

#endif // BPCR_CORE_PIPELINE_H
