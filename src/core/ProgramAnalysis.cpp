//===- core/ProgramAnalysis.cpp -------------------------------------------===//
//
// Part of the bpcr project (Krall, PLDI 1994 reproduction).
//
//===----------------------------------------------------------------------===//

#include "core/ProgramAnalysis.h"

using namespace bpcr;

ProgramAnalysis::ProgramAnalysis(const Module &M) : M(M) {
  Refs = M.branchLocations();
  Classes.resize(Refs.size());

  CFGs.reserve(M.Functions.size());
  for (const Function &F : M.Functions) {
    CFGs.push_back(std::make_unique<CFG>(F));
    Doms.push_back(std::make_unique<Dominators>(*CFGs.back()));
    Loops.push_back(std::make_unique<LoopInfo>(*CFGs.back(), *Doms.back()));
    classifyBranches(F, *CFGs.back(), *Loops.back(), Classes);
  }

  // Recursion: FuncIdx is recursive when it can reach itself in the call
  // graph. N is small, so one DFS per function is fine.
  size_t N = M.Functions.size();
  std::vector<std::vector<uint32_t>> Callees(N);
  for (size_t FI = 0; FI < N; ++FI)
    for (const BasicBlock &BB : M.Functions[FI].Blocks)
      for (const Instruction &I : BB.Insts)
        if (I.Op == Opcode::Call)
          Callees[FI].push_back(I.Callee);
  Recursive.assign(N, false);
  for (size_t Start = 0; Start < N; ++Start) {
    std::vector<bool> Seen(N, false);
    std::vector<uint32_t> Work = Callees[Start];
    while (!Work.empty()) {
      uint32_t Cur = Work.back();
      Work.pop_back();
      if (Cur == Start) {
        Recursive[Start] = true;
        break;
      }
      if (Seen[Cur])
        continue;
      Seen[Cur] = true;
      for (uint32_t Next : Callees[Cur])
        Work.push_back(Next);
    }
  }
}

std::vector<BranchPath>
ProgramAnalysis::backwardPaths(int32_t Id, unsigned MaxLen,
                               bool ThroughJumps) const {
  const BranchRef &R = ref(Id);
  const Function &F = M.Functions[R.FuncIdx];
  return enumerateBackwardPaths(F, *CFGs[R.FuncIdx], R.BlockIdx, MaxLen,
                                ThroughJumps);
}
