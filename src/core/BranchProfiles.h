//===- core/BranchProfiles.h - Per-branch history profiles ------*- C++ -*-===//
//
// Part of the bpcr project (Krall, PLDI 1994 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Per-branch outcome streams and local-history pattern tables built from a
/// trace (paper sec. 3/4: "For each 9 bit pattern we collected the number of
/// taken and not taken branches"), plus the fill-rate measurements of
/// Table 2.
///
//===----------------------------------------------------------------------===//

#ifndef BPCR_CORE_BRANCHPROFILES_H
#define BPCR_CORE_BRANCHPROFILES_H

#include "predict/SemiStaticPredictors.h" // DirCounts
#include "trace/Bitstream.h"
#include "trace/Trace.h"

#include <algorithm>
#include <cstdint>
#include <unordered_map>
#include <vector>

namespace bpcr {

class ColumnarTrace;

/// Local-history pattern table of one branch: counts per full-width pattern.
/// Shorter-pattern counts are derived by marginalizing over the high
/// (older) bits.
class PatternTable {
public:
  /// Hash map type with the profiling allocator: pattern tables are built
  /// per (branch, width) across the whole search, so their allocation
  /// churn is worth tracking in `bpcr profile`.
  using FullMap = std::unordered_map<
      uint32_t, DirCounts, std::hash<uint32_t>, std::equal_to<uint32_t>,
      CountingAllocator<std::pair<const uint32_t, DirCounts>,
                        AllocTag::PatternTable>>;

public:
  explicit PatternTable(unsigned MaxBits = 9) : MaxBits(MaxBits) {}

  /// Records one outcome under the current local history, then shifts it.
  /// The history starts zero-filled, matching the predictors in
  /// predict/SemiStaticPredictors.
  void record(bool Taken) {
    Full[Hist].record(Taken);
    Hist = ((Hist << 1) | (Taken ? 1U : 0U)) & mask();
    ++Executions;
  }

  /// Zero-fills the running history. Loop-aware profiling calls this when
  /// control left the branch's loop, because a replicated loop re-enters
  /// through its initial-state copy and therefore forgets the history of
  /// the previous invocation.
  void resetHistory() { Hist = 0; }

  /// Pre-sizes the pattern map for a stream of \p Executions outcomes. The
  /// map can never hold more than 2^MaxBits entries, so the hint is capped
  /// there (and at 512 — wider tables are mostly sparse in practice).
  void reserveHint(uint64_t Executions) {
    uint64_t Cap = MaxBits >= 9 ? 512 : (1ULL << MaxBits);
    Full.reserve(static_cast<size_t>(std::min(Executions, Cap)));
  }

  /// Bulk fill from a flat count array as produced by fillPatternCounts
  /// (core/ScoreKernels.h): \p Counts holds 2^(MaxBits+1) entries,
  /// [2*pattern + taken]. Replaces the map contents with every pattern
  /// whose counts are nonzero and fast-forwards the rolling history to
  /// \p FinalHist — the exact end state of an equivalent record() stream,
  /// only reached without a hash probe per event.
  void assignCounts(const uint64_t *Counts, uint32_t FinalHist,
                    uint64_t NumExecutions) {
    Full.clear();
    const uint32_t Patterns = 1U << MaxBits;
    size_t NonZero = 0;
    for (uint32_t P = 0; P < Patterns; ++P)
      NonZero += (Counts[2 * P] | Counts[2 * P + 1]) != 0;
    Full.reserve(NonZero);
    for (uint32_t P = 0; P < Patterns; ++P) {
      uint64_t NT = Counts[2 * P], T = Counts[2 * P + 1];
      if (NT | T)
        Full.emplace(P, DirCounts{T, NT});
    }
    Hist = FinalHist & mask();
    Executions = NumExecutions;
  }

  /// Counts aggregated over all full patterns whose last \p Len outcomes
  /// equal \p Bits (bit 0 = most recent).
  DirCounts countsFor(uint32_t Bits, unsigned Len) const;

  /// Number of distinct \p Bits-wide patterns observed: the numerator of
  /// the paper's Table 2 fill rate.
  unsigned distinctPatterns(unsigned Bits) const;

  const FullMap &full() const { return Full; }
  unsigned maxBits() const { return MaxBits; }
  uint64_t executions() const { return Executions; }

private:
  uint32_t mask() const { return (1U << MaxBits) - 1U; }

  unsigned MaxBits;
  uint32_t Hist = 0;
  uint64_t Executions = 0;
  FullMap Full;
};

/// Everything the machine construction needs about one branch.
struct BranchProfile {
  /// Outcome stream in execution order (1 = taken).
  std::vector<uint8_t> Outcomes;
  /// The same stream bit-packed (64 outcomes per word). ProfileSet keeps
  /// it in sync with Outcomes; machine simulation walks these words
  /// instead of the byte vector, and takenCount() popcounts them.
  BitstreamBuilder DirBits;
  /// Positions in Outcomes before which the history was reset (loop
  /// re-entries); empty for plain whole-trace profiling.
  std::vector<uint64_t> ResetPositions;
  PatternTable Table;

  explicit BranchProfile(unsigned MaxBits = 9) : Table(MaxBits) {}

  uint64_t executions() const { return Outcomes.size(); }
  uint64_t takenCount() const {
    // The packed copy is authoritative when in sync; code that builds
    // Outcomes by hand (tests) still gets the byte-loop answer.
    if (DirBits.size() == Outcomes.size())
      return popcountBitsScalar(DirBits.view());
    uint64_t N = 0;
    for (uint8_t O : Outcomes)
      N += O;
    return N;
  }
  bool majorityTaken() const { return 2 * takenCount() >= executions(); }
  /// Mispredictions of profile (majority) prediction.
  uint64_t profileMispredictions() const {
    uint64_t T = takenCount(), N = executions() - T;
    return T < N ? T : N;
  }
};

/// Profiles for every branch of a traced program.
class ProfileSet {
public:
  /// \param NumBranches static branch count (ids are dense below this).
  /// \param MaxBits pattern-table width (the paper uses 9).
  ProfileSet(uint32_t NumBranches, unsigned MaxBits = 9);

  /// Accumulates a whole trace.
  void addTrace(const Trace &T);

  /// Columnar fast path: per-branch outcome streams come straight from the
  /// finalized index and the pattern tables from the flat-count fill
  /// kernel — no per-event hash probes. The resulting set is equivalent to
  /// addTrace(CT.materialize()) (pattern maps may differ in iteration
  /// order only, which nothing downstream observes).
  void addTrace(const ColumnarTrace &CT);

  /// Records one event.
  void record(int32_t Id, bool Taken) {
    BranchProfile &P = Profiles[static_cast<uint32_t>(Id)];
    P.Outcomes.push_back(Taken ? 1 : 0);
    P.DirBits.push(Taken);
    P.Table.record(Taken);
  }

  /// Records one event into the outcome stream only, leaving the pattern
  /// table empty. Used for branches whose direction is statically proven:
  /// the machine search is pruned for them, so their table is never read,
  /// and skipping the fill keeps the proof savings real.
  void recordOutcomeOnly(int32_t Id, bool Taken) {
    BranchProfile &P = Profiles[static_cast<uint32_t>(Id)];
    P.Outcomes.push_back(Taken ? 1 : 0);
    P.DirBits.push(Taken);
  }

  /// Marks a loop re-entry for branch \p Id: the next recorded outcome
  /// starts from a zero-filled history.
  void resetHistory(int32_t Id) {
    BranchProfile &P = Profiles[static_cast<uint32_t>(Id)];
    P.ResetPositions.push_back(P.Outcomes.size());
    P.Table.resetHistory();
  }

  const BranchProfile &branch(int32_t Id) const {
    return Profiles[static_cast<uint32_t>(Id)];
  }

  /// Mutable access for the columnar bulk-fill builders
  /// (core/LoopAwareProfiles.cpp), which write outcome streams and reset
  /// positions wholesale instead of event-at-a-time.
  BranchProfile &branchMutable(int32_t Id) {
    return Profiles[static_cast<uint32_t>(Id)];
  }

  /// Bulk pattern-table fill for branch \p Id; see
  /// PatternTable::assignCounts.
  void assignTable(int32_t Id, const uint64_t *Counts, uint32_t FinalHist,
                   uint64_t NumExecutions) {
    Profiles[static_cast<uint32_t>(Id)].Table.assignCounts(Counts, FinalHist,
                                                           NumExecutions);
  }

  uint32_t numBranches() const {
    return static_cast<uint32_t>(Profiles.size());
  }

  uint32_t executedBranches() const;
  uint64_t totalExecutions() const;

  /// Table 2: percentage of the 2^Bits pattern-table entries of the
  /// executed branches that were actually used.
  double fillRatePercent(unsigned Bits) const;

private:
  std::vector<BranchProfile> Profiles;
};

} // namespace bpcr

#endif // BPCR_CORE_BRANCHPROFILES_H
