//===- core/BranchProfiles.h - Per-branch history profiles ------*- C++ -*-===//
//
// Part of the bpcr project (Krall, PLDI 1994 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Per-branch outcome streams and local-history pattern tables built from a
/// trace (paper sec. 3/4: "For each 9 bit pattern we collected the number of
/// taken and not taken branches"), plus the fill-rate measurements of
/// Table 2.
///
//===----------------------------------------------------------------------===//

#ifndef BPCR_CORE_BRANCHPROFILES_H
#define BPCR_CORE_BRANCHPROFILES_H

#include "predict/SemiStaticPredictors.h" // DirCounts
#include "trace/Trace.h"

#include <algorithm>
#include <cstdint>
#include <unordered_map>
#include <vector>

namespace bpcr {

/// Local-history pattern table of one branch: counts per full-width pattern.
/// Shorter-pattern counts are derived by marginalizing over the high
/// (older) bits.
class PatternTable {
public:
  /// Hash map type with the profiling allocator: pattern tables are built
  /// per (branch, width) across the whole search, so their allocation
  /// churn is worth tracking in `bpcr profile`.
  using FullMap = std::unordered_map<
      uint32_t, DirCounts, std::hash<uint32_t>, std::equal_to<uint32_t>,
      CountingAllocator<std::pair<const uint32_t, DirCounts>,
                        AllocTag::PatternTable>>;

public:
  explicit PatternTable(unsigned MaxBits = 9) : MaxBits(MaxBits) {}

  /// Records one outcome under the current local history, then shifts it.
  /// The history starts zero-filled, matching the predictors in
  /// predict/SemiStaticPredictors.
  void record(bool Taken) {
    Full[Hist].record(Taken);
    Hist = ((Hist << 1) | (Taken ? 1U : 0U)) & mask();
    ++Executions;
  }

  /// Zero-fills the running history. Loop-aware profiling calls this when
  /// control left the branch's loop, because a replicated loop re-enters
  /// through its initial-state copy and therefore forgets the history of
  /// the previous invocation.
  void resetHistory() { Hist = 0; }

  /// Pre-sizes the pattern map for a stream of \p Executions outcomes. The
  /// map can never hold more than 2^MaxBits entries, so the hint is capped
  /// there (and at 512 — wider tables are mostly sparse in practice).
  void reserveHint(uint64_t Executions) {
    uint64_t Cap = MaxBits >= 9 ? 512 : (1ULL << MaxBits);
    Full.reserve(static_cast<size_t>(std::min(Executions, Cap)));
  }

  /// Counts aggregated over all full patterns whose last \p Len outcomes
  /// equal \p Bits (bit 0 = most recent).
  DirCounts countsFor(uint32_t Bits, unsigned Len) const;

  /// Number of distinct \p Bits-wide patterns observed: the numerator of
  /// the paper's Table 2 fill rate.
  unsigned distinctPatterns(unsigned Bits) const;

  const FullMap &full() const { return Full; }
  unsigned maxBits() const { return MaxBits; }
  uint64_t executions() const { return Executions; }

private:
  uint32_t mask() const { return (1U << MaxBits) - 1U; }

  unsigned MaxBits;
  uint32_t Hist = 0;
  uint64_t Executions = 0;
  FullMap Full;
};

/// Everything the machine construction needs about one branch.
struct BranchProfile {
  /// Outcome stream in execution order (1 = taken).
  std::vector<uint8_t> Outcomes;
  /// Positions in Outcomes before which the history was reset (loop
  /// re-entries); empty for plain whole-trace profiling.
  std::vector<uint64_t> ResetPositions;
  PatternTable Table;

  explicit BranchProfile(unsigned MaxBits = 9) : Table(MaxBits) {}

  uint64_t executions() const { return Outcomes.size(); }
  uint64_t takenCount() const {
    uint64_t N = 0;
    for (uint8_t O : Outcomes)
      N += O;
    return N;
  }
  bool majorityTaken() const { return 2 * takenCount() >= executions(); }
  /// Mispredictions of profile (majority) prediction.
  uint64_t profileMispredictions() const {
    uint64_t T = takenCount(), N = executions() - T;
    return T < N ? T : N;
  }
};

/// Profiles for every branch of a traced program.
class ProfileSet {
public:
  /// \param NumBranches static branch count (ids are dense below this).
  /// \param MaxBits pattern-table width (the paper uses 9).
  ProfileSet(uint32_t NumBranches, unsigned MaxBits = 9);

  /// Accumulates a whole trace.
  void addTrace(const Trace &T);

  /// Records one event.
  void record(int32_t Id, bool Taken) {
    BranchProfile &P = Profiles[static_cast<uint32_t>(Id)];
    P.Outcomes.push_back(Taken ? 1 : 0);
    P.Table.record(Taken);
  }

  /// Records one event into the outcome stream only, leaving the pattern
  /// table empty. Used for branches whose direction is statically proven:
  /// the machine search is pruned for them, so their table is never read,
  /// and skipping the fill keeps the proof savings real.
  void recordOutcomeOnly(int32_t Id, bool Taken) {
    Profiles[static_cast<uint32_t>(Id)].Outcomes.push_back(Taken ? 1 : 0);
  }

  /// Marks a loop re-entry for branch \p Id: the next recorded outcome
  /// starts from a zero-filled history.
  void resetHistory(int32_t Id) {
    BranchProfile &P = Profiles[static_cast<uint32_t>(Id)];
    P.ResetPositions.push_back(P.Outcomes.size());
    P.Table.resetHistory();
  }

  const BranchProfile &branch(int32_t Id) const {
    return Profiles[static_cast<uint32_t>(Id)];
  }

  uint32_t numBranches() const {
    return static_cast<uint32_t>(Profiles.size());
  }

  uint32_t executedBranches() const;
  uint64_t totalExecutions() const;

  /// Table 2: percentage of the 2^Bits pattern-table entries of the
  /// executed branches that were actually used.
  double fillRatePercent(unsigned Bits) const;

private:
  std::vector<BranchProfile> Profiles;
};

} // namespace bpcr

#endif // BPCR_CORE_BRANCHPROFILES_H
