//===- core/JointMachine.h - Joint machines for whole loops -----*- C++ -*-===//
//
// Part of the bpcr project (Krall, PLDI 1994 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's first "Further Work" item, implemented: "A problem of our
/// code replication scheme is that the [code size] is multiplied if more
/// than one branch in a loop should be improved. A possible solution treats
/// all branches of that loop at the same time and constructs a single state
/// machine for all branches using a higher number of states. In that case
/// the search for the optimal state machine must be replaced by a
/// branch-and-bound search since the search time grows exponentially with
/// the number of states."
///
/// A joint machine's states are strings over the loop's *decision alphabet*
/// — symbols (member-branch index, direction) — matched by longest suffix,
/// with per-(state, branch) predictions. Replicating a loop once for a
/// joint machine with S states costs S copies, where separate per-branch
/// machines with s1..sk states cost s1*...*sk copies.
///
//===----------------------------------------------------------------------===//

#ifndef BPCR_CORE_JOINTMACHINE_H
#define BPCR_CORE_JOINTMACHINE_H

#include "core/ProgramAnalysis.h"
#include "core/Replication.h" // ReplicationStats
#include "core/SuffixSelect.h"
#include "support/Statistics.h"
#include "trace/Trace.h"

#include <cstdint>
#include <map>
#include <vector>

namespace bpcr {

class ColumnarTrace;

/// A fitted joint machine for one loop.
class JointLoopMachine {
public:
  /// Member branches (original ids), sorted; their index is the tag used
  /// in state symbols.
  std::vector<int32_t> Members;
  /// States: strings over symbols (memberIdx << 1 | taken), sorted by
  /// (length, content). Always contains the empty string (initial /
  /// catch-all state) at index 0.
  std::vector<SymbolString> States;
  /// Predictions[State][MemberIdx] = 1 to predict taken.
  std::vector<std::vector<uint8_t>> Predictions;
  /// Construction-time assignment score over all member executions.
  uint64_t Correct = 0;
  uint64_t Total = 0;

  unsigned numStates() const { return static_cast<unsigned>(States.size()); }
  unsigned initialState() const { return 0; }

  /// Tag of \p OrigId within this machine, or -1.
  int memberIndex(int32_t OrigId) const;

  /// Transition on member \p MemberIdx going \p Taken: append the symbol
  /// and rematch by longest suffix.
  unsigned next(unsigned State, int MemberIdx, bool Taken) const;

  bool predictTaken(unsigned State, int MemberIdx) const {
    return Predictions[State][static_cast<size_t>(MemberIdx)] != 0;
  }

  std::string describe() const;
};

/// Joint-machine construction parameters.
struct JointOptions {
  /// Total state budget (loop copies).
  unsigned MaxStates = 6;
  /// Longest joint-decision suffix considered as a state.
  unsigned MaxLen = 4;
  bool Exhaustive = true;
  uint64_t NodeBudget = 200'000;
};

/// Joint per-pattern observation: counts per member branch.
struct JointProfile {
  /// Pattern (joint decision string) -> per-member counts. The empty
  /// pattern collects executions right after loop entry.
  std::map<SymbolString, std::vector<DirCounts>> PerPattern;
  uint64_t Executions = 0;
};

/// Profiles the joint decision history of the loop containing the member
/// branches. The history resets when control leaves the loop (same
/// convention as buildLoopAwareProfiles). All members must share one
/// innermost loop.
JointProfile profileJointLoop(const ProgramAnalysis &PA,
                              const std::vector<int32_t> &Members,
                              const Trace &T, unsigned MaxLen);

/// Columnar overload: identical profile from the SoA trace.
JointProfile profileJointLoop(const ProgramAnalysis &PA,
                              const std::vector<int32_t> &Members,
                              const ColumnarTrace &CT, unsigned MaxLen);

/// Selects the best joint machine by branch-and-bound over candidate
/// suffix states (per-(state, member) majority scoring).
JointLoopMachine buildJointLoopMachine(const std::vector<int32_t> &Members,
                                       const JointProfile &Profile,
                                       const JointOptions &Opts);

/// Replays \p T and measures the joint machine's realized accuracy over
/// its member branches (resetting at loop exits, like the profile).
PredictionStats evaluateJointMachine(const JointLoopMachine &M,
                                     const ProgramAnalysis &PA,
                                     const Trace &T);

/// Materializes a joint machine: one copy of \p LoopBlocks per state;
/// every member branch drives the transitions and carries its per-state
/// prediction. Unreachable copies are pruned.
ReplicationStats applyJointLoopReplication(
    Function &F, const std::vector<uint32_t> &LoopBlocks, uint32_t Header,
    const JointLoopMachine &M);

} // namespace bpcr

#endif // BPCR_CORE_JOINTMACHINE_H
