//===- core/ScoreKernels.cpp ----------------------------------------------===//
//
// Part of the bpcr project (Krall, PLDI 1994 reproduction).
//
//===----------------------------------------------------------------------===//
//
// Tier layout: every public kernel is a thin dispatch wrapper that records
// the `search.simd.*` counters (tier-independent, so metrics stay
// byte-identical between scalar and SIMD runs) and jumps to the resolved
// tier. The AVX2 bodies are compiled in this ordinary TU via
// __attribute__((target("avx2"))) and only ever called behind a runtime
// __builtin_cpu_supports check.
//
//===----------------------------------------------------------------------===//

#include "core/ScoreKernels.h"

#include "obs/Metrics.h"

#include <atomic>
#include <cstdlib>
#include <cstring>

#if defined(__x86_64__) && !defined(BPCR_DISABLE_SIMD)
#define BPCR_X86_KERNELS 1
#include <immintrin.h>
#else
#define BPCR_X86_KERNELS 0
#endif

using namespace bpcr;

namespace {

SimdTier bestSupportedTier() {
#if BPCR_X86_KERNELS
  if (__builtin_cpu_supports("avx2"))
    return SimdTier::AVX2;
  return SimdTier::SSE2; // baseline on x86-64
#else
  return SimdTier::Scalar;
#endif
}

SimdTier resolveTier() {
  SimdTier Best = bestSupportedTier();
  const char *Env = std::getenv("BPCR_SIMD");
  if (!Env || !std::strcmp(Env, "auto"))
    return Best;
  SimdTier Want = Best;
  if (!std::strcmp(Env, "scalar"))
    Want = SimdTier::Scalar;
  else if (!std::strcmp(Env, "sse2"))
    Want = SimdTier::SSE2;
  else if (!std::strcmp(Env, "avx2"))
    Want = SimdTier::AVX2;
  return static_cast<int>(Want) <= static_cast<int>(Best) ? Want : Best;
}

std::atomic<int> ForcedTier{-1};

SimdTier currentTier() {
  int Forced = ForcedTier.load(std::memory_order_relaxed);
  if (Forced >= 0)
    return static_cast<SimdTier>(Forced);
  static const SimdTier Resolved = resolveTier();
  return Resolved;
}

void noteKernelCall(uint64_t Words) {
  Registry &Obs = Registry::global();
  if (Obs.enabled()) {
    Obs.counter("search.simd.kernel_calls").inc();
    Obs.counter("search.simd.words").add(Words);
  }
}

//===----------------------------------------------------------------------===//
// Scalar tier
//===----------------------------------------------------------------------===//

uint64_t popcountScalar(const uint64_t *W, size_t N) {
  uint64_t Sum = 0;
  for (size_t I = 0; I < N; ++I)
    Sum += static_cast<uint64_t>(__builtin_popcountll(W[I]));
  return Sum;
}

//===----------------------------------------------------------------------===//
// SSE2 tier: SWAR popcount over 128-bit lanes with a psadbw horizontal
// sum. Batch machine scoring needs per-lane variable 64-bit shifts, which
// x86 only grows at AVX2 (vpsrlvq), so that kernel stays scalar here.
//===----------------------------------------------------------------------===//

#if BPCR_X86_KERNELS
uint64_t popcountSse2(const uint64_t *W, size_t N) {
  const __m128i M1 = _mm_set1_epi8(0x55);
  const __m128i M2 = _mm_set1_epi8(0x33);
  const __m128i M4 = _mm_set1_epi8(0x0f);
  const __m128i Zero = _mm_setzero_si128();
  __m128i Acc = Zero;
  size_t I = 0;
  for (; I + 2 <= N; I += 2) {
    __m128i V = _mm_loadu_si128(reinterpret_cast<const __m128i *>(W + I));
    V = _mm_sub_epi8(V, _mm_and_si128(_mm_srli_epi64(V, 1), M1));
    V = _mm_add_epi8(_mm_and_si128(V, M2),
                     _mm_and_si128(_mm_srli_epi64(V, 2), M2));
    V = _mm_and_si128(_mm_add_epi8(V, _mm_srli_epi64(V, 4)), M4);
    Acc = _mm_add_epi64(Acc, _mm_sad_epu8(V, Zero));
  }
  uint64_t Lanes[2];
  _mm_storeu_si128(reinterpret_cast<__m128i *>(Lanes), Acc);
  uint64_t Sum = Lanes[0] + Lanes[1];
  for (; I < N; ++I)
    Sum += static_cast<uint64_t>(__builtin_popcountll(W[I]));
  return Sum;
}

//===----------------------------------------------------------------------===//
// AVX2 tier
//===----------------------------------------------------------------------===//

__attribute__((target("avx2"))) uint64_t popcountAvx2(const uint64_t *W,
                                                      size_t N) {
  // Nibble-LUT popcount (vpshufb) with psadbw accumulation.
  const __m256i Lut =
      _mm256_setr_epi8(0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4, 0, 1,
                       1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4);
  const __m256i M4 = _mm256_set1_epi8(0x0f);
  const __m256i Zero = _mm256_setzero_si256();
  __m256i Acc = Zero;
  size_t I = 0;
  for (; I + 4 <= N; I += 4) {
    __m256i V = _mm256_loadu_si256(reinterpret_cast<const __m256i *>(W + I));
    __m256i Lo = _mm256_shuffle_epi8(Lut, _mm256_and_si256(V, M4));
    __m256i Hi = _mm256_shuffle_epi8(
        Lut, _mm256_and_si256(_mm256_srli_epi64(V, 4), M4));
    Acc = _mm256_add_epi64(Acc,
                           _mm256_sad_epu8(_mm256_add_epi8(Lo, Hi), Zero));
  }
  uint64_t Lanes[4];
  _mm256_storeu_si256(reinterpret_cast<__m256i *>(Lanes), Acc);
  uint64_t Sum = Lanes[0] + Lanes[1] + Lanes[2] + Lanes[3];
  for (; I < N; ++I)
    Sum += static_cast<uint64_t>(__builtin_popcountll(W[I]));
  return Sum;
}

/// Scores 4 machines (one per 64-bit lane) over the same packed stream.
/// Per event: pred = (PredMask >> state) & 1, miss += pred ^ bit,
/// state = (NextTab[bit] >> 4*state) & 15 — all lanes in parallel via
/// vpsrlvq, the per-lane variable shift.
__attribute__((target("avx2"))) void
scoreMachines4Avx2(const DenseMachine *M, const uint64_t *Words,
                   uint64_t NumBits, uint64_t *CorrectOut) {
  const __m256i T0 = _mm256_setr_epi64x(
      static_cast<long long>(M[0].NextTab[0]),
      static_cast<long long>(M[1].NextTab[0]),
      static_cast<long long>(M[2].NextTab[0]),
      static_cast<long long>(M[3].NextTab[0]));
  const __m256i T1 = _mm256_setr_epi64x(
      static_cast<long long>(M[0].NextTab[1]),
      static_cast<long long>(M[1].NextTab[1]),
      static_cast<long long>(M[2].NextTab[1]),
      static_cast<long long>(M[3].NextTab[1]));
  const __m256i Pred =
      _mm256_setr_epi64x(M[0].PredMask, M[1].PredMask, M[2].PredMask,
                         M[3].PredMask);
  const __m256i One = _mm256_set1_epi64x(1);
  const __m256i Fifteen = _mm256_set1_epi64x(15);
  __m256i S = _mm256_setr_epi64x(M[0].Initial, M[1].Initial, M[2].Initial,
                                 M[3].Initial);
  __m256i Miss = _mm256_setzero_si256();

  for (uint64_t Base = 0; Base < NumBits; Base += 64) {
    uint64_t W = Words[Base >> 6];
    unsigned N = static_cast<unsigned>(
        NumBits - Base < 64 ? NumBits - Base : 64);
    for (unsigned K = 0; K < N; ++K) {
      uint64_t B = (W >> K) & 1;
      __m256i Bv = _mm256_set1_epi64x(static_cast<long long>(B));
      __m256i PredBit = _mm256_and_si256(_mm256_srlv_epi64(Pred, S), One);
      Miss = _mm256_add_epi64(Miss, _mm256_xor_si256(PredBit, Bv));
      __m256i Tab = B ? T1 : T0;
      S = _mm256_and_si256(
          _mm256_srlv_epi64(Tab, _mm256_slli_epi64(S, 2)), Fifteen);
    }
  }
  uint64_t Lanes[4];
  _mm256_storeu_si256(reinterpret_cast<__m256i *>(Lanes), Miss);
  for (int I = 0; I < 4; ++I)
    CorrectOut[I] = NumBits - Lanes[I];
}
#endif // BPCR_X86_KERNELS

/// Uncounted body of scoreMachineRange, shared with the batch kernel's
/// non-AVX2 path so the `search.simd.*` counters stay tier-independent.
uint64_t scoreRangeImpl(const DenseMachine &M, const uint64_t *Words,
                        uint64_t StartBit, uint64_t NumBits) {
  uint64_t Miss = 0;
  unsigned S = M.Initial;
  const uint64_t Pred = M.PredMask;
  uint64_t Idx = StartBit;
  const uint64_t End = StartBit + NumBits;
  while (Idx < End) {
    uint64_t W = Words[Idx >> 6] >> (Idx & 63);
    unsigned Avail = 64 - static_cast<unsigned>(Idx & 63);
    unsigned N = static_cast<unsigned>(
        End - Idx < Avail ? End - Idx : Avail);
    for (unsigned K = 0; K < N; ++K) {
      uint64_t B = W & 1;
      W >>= 1;
      Miss += ((Pred >> S) ^ B) & 1;
      S = static_cast<unsigned>(M.NextTab[B] >> (S * 4)) & 15U;
    }
    Idx += N;
  }
  return NumBits - Miss;
}

} // namespace

SimdTier bpcr::activeSimdTier() { return currentTier(); }

const char *bpcr::simdTierName(SimdTier T) {
  switch (T) {
  case SimdTier::Scalar:
    return "scalar";
  case SimdTier::SSE2:
    return "sse2";
  case SimdTier::AVX2:
    return "avx2";
  }
  return "unknown";
}

void bpcr::setSimdTierForTest(SimdTier T) {
  SimdTier Best = bestSupportedTier();
  if (static_cast<int>(T) > static_cast<int>(Best))
    T = Best;
  ForcedTier.store(static_cast<int>(T), std::memory_order_relaxed);
}

uint64_t bpcr::popcountBits(BitstreamView V) {
  noteKernelCall(V.numWords());
  switch (currentTier()) {
#if BPCR_X86_KERNELS
  case SimdTier::AVX2:
    return popcountAvx2(V.data(), V.numWords());
  case SimdTier::SSE2:
    return popcountSse2(V.data(), V.numWords());
#endif
  default:
    return popcountScalar(V.data(), V.numWords());
  }
}

uint64_t bpcr::scoreConstant(BitstreamView V, bool PredictTaken) {
  uint64_t Taken = popcountBits(V);
  return PredictTaken ? Taken : V.size() - Taken;
}

uint64_t bpcr::scoreMachineRange(const DenseMachine &M, const uint64_t *Words,
                                 uint64_t StartBit, uint64_t NumBits) {
  noteKernelCall((NumBits + 63) / 64);
  // Serial state recurrence: identical branchless walk on every tier.
  return scoreRangeImpl(M, Words, StartBit, NumBits);
}

void bpcr::scoreMachines(const DenseMachine *Machines, size_t K,
                         BitstreamView V, uint64_t *CorrectOut) {
  noteKernelCall(V.numWords() * K);
#if BPCR_X86_KERNELS
  if (currentTier() == SimdTier::AVX2) {
    size_t I = 0;
    for (; I + 4 <= K; I += 4)
      scoreMachines4Avx2(Machines + I, V.data(), V.size(), CorrectOut + I);
    if (I < K) {
      // Pad the last group with machine 0 and drop the spare lanes.
      DenseMachine Pad[4] = {Machines[0], Machines[0], Machines[0],
                             Machines[0]};
      uint64_t Out[4];
      for (size_t J = I; J < K; ++J)
        Pad[J - I] = Machines[J];
      scoreMachines4Avx2(Pad, V.data(), V.size(), Out);
      for (size_t J = I; J < K; ++J)
        CorrectOut[J] = Out[J - I];
    }
    return;
  }
#endif
  for (size_t I = 0; I < K; ++I)
    CorrectOut[I] = scoreRangeImpl(Machines[I], V.data(), 0, V.size());
}

uint32_t bpcr::fillPatternCounts(const uint64_t *Words, uint64_t StartBit,
                                 uint64_t NumBits, unsigned MaxBits,
                                 uint32_t StartHist, uint64_t *Counts) {
  noteKernelCall((NumBits + 63) / 64);
  const uint32_t Mask = (1U << MaxBits) - 1U;
  uint32_t H = StartHist;
  uint64_t Idx = StartBit;
  const uint64_t End = StartBit + NumBits;
  while (Idx < End) {
    uint64_t W = Words[Idx >> 6] >> (Idx & 63);
    unsigned Avail = 64 - static_cast<unsigned>(Idx & 63);
    unsigned N = static_cast<unsigned>(
        End - Idx < Avail ? End - Idx : Avail);
    for (unsigned K = 0; K < N; ++K) {
      uint32_t B = static_cast<uint32_t>(W & 1);
      W >>= 1;
      ++Counts[(H << 1) | B];
      H = ((H << 1) | B) & Mask;
    }
    Idx += N;
  }
  return H;
}
