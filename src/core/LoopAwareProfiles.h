//===- core/LoopAwareProfiles.h - Invocation-aware profiling ----*- C++ -*-===//
//
// Part of the bpcr project (Krall, PLDI 1994 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Profiling that mirrors what loop replication can actually realize: a
/// replicated loop re-enters through its initial-state copy, so the machine
/// state of every loop branch resets whenever control leaves the loop.
/// These profiles reset each loop branch's local history accordingly, which
/// keeps the construction-time assignment scores honest about the accuracy
/// the replicated program will achieve. Plain whole-trace profiles (the
/// semi-static predictor tables of Table 1) deliberately do NOT reset —
/// they model unbounded software history registers.
///
//===----------------------------------------------------------------------===//

#ifndef BPCR_CORE_LOOPAWAREPROFILES_H
#define BPCR_CORE_LOOPAWAREPROFILES_H

#include "core/BranchProfiles.h"
#include "core/ProgramAnalysis.h"
#include "trace/Trace.h"

namespace bpcr {

namespace sa {
struct BranchProofs;
} // namespace sa

/// Builds per-branch profiles where a loop branch's history resets whenever
/// an event outside its innermost loop occurred since its last execution.
/// Events from other functions count as outside (a fresh call re-enters the
/// loop through its header).
///
/// When \p Proofs is non-null, branches proven unidirectional record their
/// outcome stream but skip the pattern-table fill — the machine search is
/// pruned for them, so nothing ever reads their table.
ProfileSet buildLoopAwareProfiles(const ProgramAnalysis &PA, const Trace &T,
                                  unsigned MaxBits = 9,
                                  const sa::BranchProofs *Proofs = nullptr);

/// Columnar fast path, equivalent to the Trace overload on
/// CT.materialize(): the reset scan costs O(loop-nesting depth) per event
/// instead of O(tracked loops) — each tracked loop carries an
/// inside-event counter, and a branch re-entered its loop iff the events
/// since its last execution were not all inside — and the pattern tables
/// come from the flat-count fill kernel over the per-branch bitstreams
/// (one segment per reset) instead of a hash probe per event. \p CT must
/// be finalized for PA.numBranches().
ProfileSet buildLoopAwareProfiles(const ProgramAnalysis &PA,
                                  const ColumnarTrace &CT,
                                  unsigned MaxBits = 9,
                                  const sa::BranchProofs *Proofs = nullptr);

} // namespace bpcr

#endif // BPCR_CORE_LOOPAWAREPROFILES_H
