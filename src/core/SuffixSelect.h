//===- core/SuffixSelect.h - Optimal suffix-state selection -----*- C++ -*-===//
//
// Part of the bpcr project (Krall, PLDI 1994 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's machine construction problem in its general form: given
/// observed history strings with taken/not-taken counts, choose at most N
/// suffix states so that assigning every observed string to its longest
/// selected suffix and predicting each state's majority direction maximizes
/// correct predictions ("we make an exhaustive search in the pattern table
/// to find the best state machine", sec 4.1).
///
/// Two instantiations share this engine:
///  - intra-loop machines: symbols are branch outcomes (0/1), the forced
///    base is {"0","1"} (or all four 2-bit strings, paper figure 3);
///  - correlated machines: symbols are (branch, direction) path steps and
///    the implicit empty suffix is the paper's "state [that] covers the
///    case where the control flow matches none of the paths".
///
/// The search is exact branch-and-bound (the assignment score is monotone
/// in the state set, so the score of "current set plus every remaining
/// candidate" is an admissible bound); a node budget degrades it gracefully
/// to the greedy result for pathological tables.
///
//===----------------------------------------------------------------------===//

#ifndef BPCR_CORE_SUFFIXSELECT_H
#define BPCR_CORE_SUFFIXSELECT_H

#include "predict/SemiStaticPredictors.h" // DirCounts

#include <cstdint>
#include <vector>

namespace bpcr {

/// A history string; symbols are stored oldest first, newest last.
using SymbolString = std::vector<uint32_t>;

/// One observed full-length history with its outcome counts.
struct ObservedPattern {
  SymbolString Syms;
  DirCounts Counts;
};

/// Search configuration.
struct SelectOptions {
  /// Maximum number of selected (non-empty) states, forced states included.
  unsigned MaxSelected = 4;
  /// Longest suffix considered as a state.
  unsigned MaxLen = 9;
  /// Shortest selectable suffix; states of this length need no parent.
  unsigned MinLen = 1;
  /// Exact search; false uses greedy forward selection only.
  bool Exhaustive = true;
  /// Abort exact search after this many nodes and return the best found.
  uint64_t NodeBudget = 2'000'000;
  /// Require closure under dropping the NEWEST symbol as well (full
  /// contiguous-substring closure). For machines that evolve by their own
  /// transitions (the intra-loop suffix machines) this is what makes the
  /// assignment score equal machine simulation EXACTLY: with only
  /// drop-oldest closure, a machine can contain a long state it never
  /// reaches because the intermediate prefix is missing. Correlated path
  /// machines match each execution independently and do not need it.
  bool SubstringClosure = false;
};

/// Result of a selection.
struct SuffixSelection {
  /// Selected states (forced ones included), sorted by (length, content).
  std::vector<SymbolString> States;
  /// Majority prediction of each state (1 = taken), aligned with States.
  std::vector<uint8_t> StatePred;
  /// Prediction of the implicit empty state for unmatched histories.
  uint8_t DefaultPred = 1;
  /// Counts assigned to each state / to the default state.
  std::vector<DirCounts> StateCounts;
  DirCounts DefaultCounts;
  /// Assignment score: correctly predicted executions out of Total.
  uint64_t Correct = 0;
  uint64_t Total = 0;
  /// True when the exact search ran out of node budget (result is the best
  /// seen, typically the greedy solution or better).
  bool BudgetExhausted = false;
};

/// Selects the best suffix-state set.
///
/// \param Patterns observed full histories with counts; an empty-Syms
///        pattern contributes to the default state.
/// \param Forced states that must be in every considered set (e.g. the
///        catch-all states "0" and "1"); counted against MaxSelected.
/// \param Opts search parameters. Suffix closure is enforced: a state of
///        length > MinLen requires its one-shorter suffix to be selected or
///        forced, which keeps machine simulation equal to the assignment
///        used for scoring.
SuffixSelection selectSuffixStates(const std::vector<ObservedPattern> &Patterns,
                                   const std::vector<SymbolString> &Forced,
                                   const SelectOptions &Opts);

/// Scores a fixed state set by longest-suffix assignment (used by tests and
/// by the ablation bench).
SuffixSelection scoreStateSet(const std::vector<ObservedPattern> &Patterns,
                              const std::vector<SymbolString> &States);

} // namespace bpcr

#endif // BPCR_CORE_SUFFIXSELECT_H
