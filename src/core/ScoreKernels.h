//===- core/ScoreKernels.h - Packed-word scoring kernels --------*- C++ -*-===//
//
// Part of the bpcr project (Krall, PLDI 1994 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The branchless scoring kernels of the columnar event path. All of them
/// consume packed direction words (trace/Bitstream.h) instead of
/// object-at-a-time event streams:
///
///  - popcountBits / scoreConstant: taken counts and constant-prediction
///    scores (the profile strategy) straight off the packed words.
///  - DenseMachine + scoreMachineRange: a branch machine densified to a
///    nibble transition table (16 states x 4 bits per outcome packed in
///    one u64) and walked with shift/mask arithmetic only — no virtual
///    next() per event, no branches in the loop body.
///  - scoreMachines: the same walk across several candidate machines of
///    one branch simultaneously (SIMD lanes score one machine each).
///  - fillPatternCounts: local-history pattern-table fill into a flat
///    count array, replacing a hash-map probe per event.
///
/// Dispatch: a scalar reference, an SSE2 tier and an AVX2 tier, selected
/// at runtime (BPCR_SIMD=scalar|sse2|avx2|auto overrides; the CMake option
/// BPCR_DISABLE_SIMD forces scalar at compile time). Every tier computes
/// the identical integers — reports are byte-identical across tiers, which
/// ctest enforces — so the choice is purely a throughput knob. See
/// docs/PERFORMANCE.md for the tier table.
///
//===----------------------------------------------------------------------===//

#ifndef BPCR_CORE_SCOREKERNELS_H
#define BPCR_CORE_SCOREKERNELS_H

#include "trace/Bitstream.h"

#include <cstdint>
#include <cstddef>

namespace bpcr {

/// Kernel implementation tiers, in increasing capability order.
enum class SimdTier : int { Scalar = 0, SSE2 = 1, AVX2 = 2 };

/// \returns the tier the process resolved at first use: the best the CPU
/// supports, lowered by BPCR_DISABLE_SIMD (compile time) or the BPCR_SIMD
/// environment variable (scalar|sse2|avx2|auto).
SimdTier activeSimdTier();

const char *simdTierName(SimdTier T);

/// Test hook: forces \p T (clamped to what the build/CPU supports) for
/// subsequent kernel calls. The scalar-vs-SIMD fuzz tests flip this.
void setSimdTierForTest(SimdTier T);

/// A branch machine densified for the kernels: at most 16 states, the
/// successor of state s under outcome b is nibble s of NextTab[b], and bit
/// s of PredMask is the state's taken prediction. Built from any
/// BranchMachine via denseEncode() in core/Machines.h.
struct DenseMachine {
  uint64_t NextTab[2] = {0, 0};
  uint16_t PredMask = 0;
  uint8_t NumStates = 0;
  uint8_t Initial = 0;

  unsigned next(unsigned S, bool Taken) const {
    return static_cast<unsigned>(NextTab[Taken ? 1 : 0] >> (S * 4)) & 15U;
  }
  bool predictTaken(unsigned S) const { return (PredMask >> S) & 1U; }
};

/// Set bits (taken outcomes) in \p V.
uint64_t popcountBits(BitstreamView V);

/// Correct predictions of the constant prediction \p PredictTaken over
/// \p V: popcount for taken, size-popcount for not-taken.
uint64_t scoreConstant(BitstreamView V, bool PredictTaken);

/// Walks \p M from its initial state over bits [StartBit, StartBit +
/// NumBits) of \p Words and \returns the number of correct predictions.
/// The walk is serial by nature (each transition depends on the previous
/// state), so this kernel is the branchless scalar walk on every tier.
uint64_t scoreMachineRange(const DenseMachine &M, const uint64_t *Words,
                           uint64_t StartBit, uint64_t NumBits);

inline uint64_t scoreMachine(const DenseMachine &M, BitstreamView V) {
  return scoreMachineRange(M, V.data(), 0, V.size());
}

/// Scores \p K candidate machines over the same stream \p V, one lane per
/// machine (4 per AVX2 vector). \p CorrectOut receives K correct counts,
/// equal to scoreMachine() of each machine individually on every tier.
void scoreMachines(const DenseMachine *Machines, size_t K, BitstreamView V,
                   uint64_t *CorrectOut);

/// Local-history pattern fill over bits [StartBit, StartBit + NumBits):
/// for each outcome b under rolling history H (StartHist at entry),
/// increments Counts[2 * H + b] and shifts H like PatternTable::record.
/// \p Counts must hold 2^(MaxBits+1) zero-initialized entries.
/// \returns the final history register.
uint32_t fillPatternCounts(const uint64_t *Words, uint64_t StartBit,
                           uint64_t NumBits, unsigned MaxBits,
                           uint32_t StartHist, uint64_t *Counts);

} // namespace bpcr

#endif // BPCR_CORE_SCOREKERNELS_H
