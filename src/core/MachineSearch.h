//===- core/MachineSearch.h - Best-machine construction ---------*- C++ -*-===//
//
// Part of the bpcr project (Krall, PLDI 1994 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Searches for the best state machine of a given size for one branch
/// (paper sec. 4.1/4.2): intra-loop machines over suffix-state sets with
/// catch-all bases {"0","1"} or all four 2-bit strings, and loop-exit
/// machines over the chain family with an optional even/odd parity tail.
///
//===----------------------------------------------------------------------===//

#ifndef BPCR_CORE_MACHINESEARCH_H
#define BPCR_CORE_MACHINESEARCH_H

#include "core/Machines.h"

namespace bpcr {

/// Intra-loop machine search parameters.
struct MachineOptions {
  /// Machine size budget (number of states).
  unsigned MaxStates = 4;
  /// Longest history suffix considered; further capped by the machine size
  /// (an N-state suffix-closed machine cannot use strings longer than its
  /// chain capacity).
  unsigned MaxPatternLen = 9;
  /// Also try the four-2-bit-catch-alls base (paper figure 3) when the
  /// budget allows it.
  bool TryTwoBitBase = true;
  /// Exact branch-and-bound; false for greedy only.
  bool Exhaustive = true;
  /// Node cap for the exact search; on exhaustion the best solution found
  /// so far (at least the greedy one) is returned.
  uint64_t NodeBudget = 200'000;
};

/// Converts a pattern table into observed-pattern form (bit symbols, oldest
/// first).
std::vector<ObservedPattern> patternsFromTable(const PatternTable &Table);

/// Best intra-loop suffix machine with at most Opts.MaxStates states.
/// \param AnyBudgetExhausted set when any base's exact search hit the node
/// budget (the result is then greedy-quality, not exact); ladder
/// construction uses it to avoid paying for more exhausted searches.
SuffixMachine buildIntraLoopMachine(const PatternTable &Table,
                                    const MachineOptions &Opts,
                                    bool *AnyBudgetExhausted = nullptr);

/// Best loop-exit chain machine with at most \p MaxStates states.
/// \param StayOnTaken outcome polarity that continues the loop.
ExitChainMachine buildExitMachine(const PatternTable &Table,
                                  unsigned MaxStates, bool StayOnTaken);

/// Correct predictions of the *full* k-bit local history table (no
/// compaction): the "n bit" reference rows of the paper's Table 3.
uint64_t fullHistoryCorrect(const PatternTable &Table, unsigned Bits);

} // namespace bpcr

#endif // BPCR_CORE_MACHINESEARCH_H
