//===- core/Pipeline.cpp --------------------------------------------------===//
//
// Part of the bpcr project (Krall, PLDI 1994 reproduction).
//
//===----------------------------------------------------------------------===//

#include "core/Pipeline.h"

#include "core/BranchProfiles.h"
#include "core/JointMachine.h"
#include "core/LoopAwareProfiles.h"
#include "interp/TimelineSink.h"
#include "obs/Metrics.h"
#include "obs/Profiler.h"
#include "obs/TimeSeries.h"
#include "obs/TraceSpans.h"
#include "sa/Dataflow.h"
#include "sa/ReplicationSoundness.h"
#include "trace/ColumnarTrace.h"

#include <algorithm>
#include <map>

using namespace bpcr;

namespace {

/// Mirrors the timeline's windowed misprediction rate onto Chrome Trace
/// counter tracks so the rate curve renders on the span timeline. Uses the
/// wall-clock samples the sink stamped during the measurement run; windows
/// without a sample (tracer enabled mid-run, merged tails) are skipped. A
/// no-op unless the tracer is live.
void publishTimelineCounters(const TimeSeriesData &TS) {
  SpanTracer &Tracer = SpanTracer::global();
  if (!Tracer.enabled() || TS.empty())
    return;
  std::vector<CounterSample> Rate, Events;
  for (const TimeSeriesWindow &W : TS.Windows) {
    if (W.WallNs == 0)
      continue;
    Rate.push_back(
        {W.WallNs, TimeSeriesData::percent(W.Mispredictions, W.Events)});
    Events.push_back({W.WallNs, static_cast<double>(W.Events)});
  }
  Tracer.addCounterTrack("timeline.miss_rate_percent", std::move(Rate));
  Tracer.addCounterTrack("timeline.window_events", std::move(Events));
}

/// Finds the function and block of one instance of \p OrigId in \p M;
/// returns false when absent.
bool findInstance(const Module &M, int32_t OrigId, uint32_t &FuncIdx,
                  uint32_t &BlockIdx) {
  for (uint32_t FI = 0; FI < M.Functions.size(); ++FI) {
    const Function &F = M.Functions[FI];
    for (uint32_t BI = 0; BI < F.Blocks.size(); ++BI) {
      if (!F.Blocks[BI].isComplete())
        continue;
      const Instruction &T = F.Blocks[BI].terminator();
      if (T.isConditionalBranch() && T.OrigBranchId == OrigId) {
        FuncIdx = FI;
        BlockIdx = BI;
        return true;
      }
    }
  }
  return false;
}

} // namespace

PipelineResult bpcr::replicateModule(const Module &M, const Trace &T,
                                     const PipelineOptions &Opts) {
  // Legacy adapter: pack the event vector once and run the columnar
  // pipeline. Identical output — the columnar profiling/search paths are
  // bit-for-bit equivalent to the legacy per-event walks.
  ColumnarTrace CT = ColumnarTrace::fromEvents(T);
  CT.finalize(static_cast<uint32_t>(M.conditionalBranchCount()));
  return replicateModule(M, CT, Opts);
}

PipelineResult bpcr::replicateModule(const Module &M, const ColumnarTrace &T,
                                     const PipelineOptions &Opts) {
  PipelineResult R;
  R.Transformed = M;
  R.OrigInstructions = M.instructionCount();

  Span PipeSpan("pipeline.replicate", "pipeline");
  PipeSpan.arg("orig_instructions", R.OrigInstructions);

  const bool ObsOn = Registry::global().enabled();
  if (ObsOn)
    Registry::global().counter("pipeline.runs").inc();

  // Re-verifies the simulation relation between the original module and the
  // current transformed state. Runs after every applied transform so a
  // soundness break is pinned to the step that introduced it; findings
  // accumulate in R.Soundness for callers to fail fast on.
  auto CheckSoundness = [&R, &M, ObsOn](const char *Stage) {
    ScopedTimer TSound("pipeline.phase.soundness");
    std::vector<sa::Diagnostic> Diags =
        sa::checkReplicationSoundness(M, R.Transformed);
    if (ObsOn) {
      Registry::global().counter("sa.soundness.checks").inc();
      if (!Diags.empty())
        Registry::global().counter("sa.soundness.failures").inc();
    }
    for (sa::Diagnostic &D : Diags) {
      D.note(sa::Location{},
             std::string("detected after the ") + Stage + " step");
      R.Soundness.push_back(std::move(D));
    }
  };

  // Profile and select strategies on the original module. Loop-aware
  // profiles keep the machine scores faithful to the replicated program
  // (the machine state resets on loop re-entry). Each phase carries both a
  // ScopedTimer (aggregate histogram) and a Span (timeline) under the same
  // name so the trace view and the report line up.
  Profiler::global().sampleRss("pipeline.start");

  ScopedTimer TLoops("pipeline.phase.loop_analysis");
  Span SLoops("pipeline.phase.loop_analysis");
  ProgramAnalysis PA(M);
  SLoops.arg("branches", static_cast<uint64_t>(PA.numBranches()));
  SLoops.end();
  TLoops.stop();
  Profiler::global().sampleRss("loop_analysis");

  // Branch-direction proofs: interval propagation over the original module
  // proves some branches unidirectional before any profiling happens. The
  // proofs prune the pattern-table fill and the machine search below and
  // fold the static prediction after annotation.
  ScopedTimer TProof("pipeline.phase.proof_analysis");
  Span SProof("pipeline.phase.proof_analysis");
  sa::BranchProofs Proofs;
  if (Opts.UseProofPruning)
    Proofs = sa::computeBranchProofs(M);
  const sa::BranchProofs *ProofsPtr =
      Opts.UseProofPruning ? &Proofs : nullptr;
  SProof.arg("proven", static_cast<uint64_t>(Proofs.provenCount()));
  SProof.end();
  TProof.stop();
  if (ObsOn)
    Registry::global()
        .gauge("sa.proofs.pruned_branches")
        .set(static_cast<double>(Proofs.provenCount()));
  Profiler::global().sampleRss("proof_analysis");

  ScopedTimer TProfile("pipeline.phase.profiling");
  Span SProfile("pipeline.phase.profiling");
  ProfileSet Profiles = buildLoopAwareProfiles(PA, T, /*MaxBits=*/9,
                                               ProofsPtr);
  TraceStats Stats(PA.numBranches());
  Stats.addTrace(T);
  SProfile.end();
  TProfile.stop();
  Profiler::global().sampleRss("profiling");

  ScopedTimer TSearch("pipeline.phase.machine_search");
  Span SSearch("pipeline.phase.machine_search");
  SelectionTrace SelTrace;
  StrategyOptions StratOpts = Opts.Strategy;
  StratOpts.Proofs = ProofsPtr;
  R.Strategies = selectStrategies(PA, Profiles, T, StratOpts,
                                  ObsOn ? &SelTrace : nullptr);
  SSearch.arg("strategies", static_cast<uint64_t>(R.Strategies.size()));
  SSearch.end();
  TSearch.stop();
  Profiler::global().sampleRss("machine_search");

  // Estimated instructions a strategy's replication adds: the paper's cost
  // function weighing accuracy gain against code growth.
  auto EstimateCost = [&](const BranchStrategy &S) -> uint64_t {
    const BranchRef &Ref = PA.ref(S.BranchId);
    const Function &F = M.Functions[Ref.FuncIdx];
    if (S.Kind == StrategyKind::Correlated) {
      uint64_t Cost = 0;
      for (const BranchPath &Path : S.Corr->Paths) {
        Cost += F.Blocks[Ref.BlockIdx].Insts.size(); // target copy
        for (size_t PI = 1; PI < Path.Steps.size(); ++PI) {
          const BranchRef &StepRef = PA.ref(Path.Steps[PI].BranchId);
          Cost += M.Functions[StepRef.FuncIdx]
                      .Blocks[StepRef.BlockIdx]
                      .Insts.size();
        }
      }
      return Cost;
    }
    // Loop machine: one loop copy per additional reachable state.
    const BranchClass &C = PA.classOf(S.BranchId);
    if (C.LoopIdx < 0 || !S.Machine)
      return 1;
    const Loop &L = PA.loopInfoFor(S.BranchId)
                        .loops()[static_cast<size_t>(C.LoopIdx)];
    uint64_t LoopSize = 0;
    for (uint32_t B : L.Blocks)
      LoopSize += F.Blocks[B].Insts.size();
    unsigned Reachable = 0;
    for (uint8_t Bit : S.Machine->reachableStates())
      Reachable += Bit;
    return LoopSize * (Reachable > 1 ? Reachable - 1 : 1);
  };

  auto Gain = [&R, &Profiles](size_t I) -> uint64_t {
    const BranchStrategy &S = R.Strategies[I];
    const BranchProfile &P = Profiles.branch(S.BranchId);
    uint64_t ProfCorrect = P.executions() - P.profileMispredictions();
    return S.Correct > ProfCorrect ? S.Correct - ProfCorrect : 0;
  };

  // Joint machines (paper sec. 6): when several branches of one loop earn
  // loop machines, one joint machine replaces the multiplicative product of
  // their per-branch copies. Members handled jointly leave the per-branch
  // ordering below.
  struct JointPlan {
    std::vector<int32_t> Members;
    std::vector<size_t> StrategyIndices;
    JointLoopMachine Machine;
    uint64_t Gain = 0;
    uint64_t Cost = 1;
  };
  const uint64_t SizeCap = static_cast<uint64_t>(
      static_cast<double>(R.OrigInstructions) * Opts.MaxSizeFactor);

  std::vector<JointPlan> JointPlans;
  std::vector<bool> HandledJointly(R.Strategies.size(), false);
  ScopedTimer TJoint("pipeline.phase.joint_planning");
  Span SJoint("pipeline.phase.joint_planning");
  if (Opts.UseJointMachines) {
    std::map<std::pair<uint32_t, int32_t>, std::vector<size_t>> Groups;
    for (size_t I = 0; I < R.Strategies.size(); ++I) {
      const BranchStrategy &S = R.Strategies[I];
      if (S.Kind != StrategyKind::IntraLoop &&
          S.Kind != StrategyKind::LoopExit)
        continue;
      const BranchClass &C = PA.classOf(S.BranchId);
      Groups[{PA.ref(S.BranchId).FuncIdx, C.LoopIdx}].push_back(I);
    }
    for (const auto &[Key, Indices] : Groups) {
      if (Indices.size() < 2)
        continue;
      JointPlan Plan;
      uint64_t ProfCorrect = 0;
      for (size_t I : Indices) {
        Plan.Members.push_back(R.Strategies[I].BranchId);
        const BranchProfile &P = Profiles.branch(R.Strategies[I].BranchId);
        ProfCorrect += P.executions() - P.profileMispredictions();
      }
      JointOptions JO;
      JO.MaxStates = Opts.JointMaxStates;
      JO.MaxLen = 4;
      JO.Exhaustive = Opts.Strategy.Exhaustive;
      JO.NodeBudget = Opts.Strategy.NodeBudget;
      JointProfile JP = profileJointLoop(PA, Plan.Members, T, JO.MaxLen);
      if (JP.Executions == 0)
        continue;

      // Loop size (for budget-aware machine sizing below).
      const BranchClass &GroupClass = PA.classOf(
          R.Strategies[Indices.front()].BranchId);
      const Loop &GroupLoop =
          PA.loopInfoFor(R.Strategies[Indices.front()].BranchId)
              .loops()[static_cast<size_t>(GroupClass.LoopIdx)];
      uint64_t GroupLoopSize = 0;
      for (uint32_t B : GroupLoop.Blocks)
        GroupLoopSize += M.Functions[Key.first].Blocks[B].Insts.size();

      // Shrink the machine until its copies fit the size budget.
      bool Fits = false;
      for (unsigned States = Opts.JointMaxStates; States >= 3; --States) {
        JO.MaxStates = States;
        Plan.Machine = buildJointLoopMachine(Plan.Members, JP, JO);
        uint64_t WorstCost =
            GroupLoopSize * (Plan.Machine.numStates() > 1
                                 ? Plan.Machine.numStates() - 1
                                 : 1);
        if (R.OrigInstructions + WorstCost <= SizeCap) {
          Fits = true;
          break;
        }
      }
      if (!Fits || Plan.Machine.Correct <= ProfCorrect + Opts.MinGain)
        continue;
      Plan.Gain = Plan.Machine.Correct - ProfCorrect;

      // Compete with the per-branch alternative on gain per instruction:
      // separate machines pay the PRODUCT of their sizes in loop copies
      // (paper sec. 6), the joint machine pays only its own state count.
      uint64_t PerBranchGain = 0;
      uint64_t PerBranchStatesProduct = 1;
      for (size_t I : Indices) {
        PerBranchGain += Gain(I);
        PerBranchStatesProduct *= std::max(1u, R.Strategies[I].States);
      }

      // Cost: one loop copy per additional *reachable* state.
      unsigned ReachableStates = 0;
      {
        std::vector<uint8_t> Seen(Plan.Machine.numStates(), 0);
        std::vector<unsigned> Work{Plan.Machine.initialState()};
        Seen[Plan.Machine.initialState()] = 1;
        while (!Work.empty()) {
          unsigned S = Work.back();
          Work.pop_back();
          for (size_t J = 0; J < Plan.Members.size(); ++J)
            for (bool Taken : {false, true}) {
              unsigned N = Plan.Machine.next(S, static_cast<int>(J), Taken);
              if (!Seen[N]) {
                Seen[N] = 1;
                Work.push_back(N);
              }
            }
        }
        for (uint8_t B : Seen)
          ReachableStates += B;
      }
      const BranchClass &C = PA.classOf(Plan.Members[0]);
      const Loop &L = PA.loopInfoFor(Plan.Members[0])
                          .loops()[static_cast<size_t>(C.LoopIdx)];
      const Function &F = M.Functions[Key.first];
      uint64_t LoopSize = 0;
      for (uint32_t B : L.Blocks)
        LoopSize += F.Blocks[B].Insts.size();
      Plan.Cost = std::max<uint64_t>(
          LoopSize * (ReachableStates > 1 ? ReachableStates - 1 : 1), 1);

      uint64_t PerBranchCost = std::max<uint64_t>(
          LoopSize * (PerBranchStatesProduct > 1
                          ? PerBranchStatesProduct - 1
                          : 1),
          1);
      double JointRatio = static_cast<double>(Plan.Gain) /
                          static_cast<double>(Plan.Cost);
      double SeparateRatio = static_cast<double>(PerBranchGain) /
                             static_cast<double>(PerBranchCost);
      if (JointRatio < SeparateRatio)
        continue; // separate machines are the better deal here

      Plan.StrategyIndices.assign(Indices.begin(), Indices.end());
      for (size_t I : Indices)
        HandledJointly[I] = true;
      JointPlans.push_back(std::move(Plan));
    }
  }
  SJoint.arg("plans", static_cast<uint64_t>(JointPlans.size()));
  SJoint.end();
  TJoint.stop();
  Profiler::global().sampleRss("joint_planning");

  ScopedTimer TRepl("pipeline.phase.replication");
  Span SRepl("pipeline.phase.replication");

  // Records one decision about the strategy at index \p I.
  auto LogStrategy = [&R](size_t I, DecisionAction Action, uint64_t Gained,
                          uint64_t Cost, std::string Reason) {
    const BranchStrategy &S = R.Strategies[I];
    BranchDecision D;
    D.BranchId = S.BranchId;
    D.Strategy = strategyKindName(S.Kind);
    D.Action = Action;
    D.EstimatedGain = Gained;
    D.SizeCost = Cost;
    D.Reason = std::move(Reason);
    R.Decisions.add(std::move(D));
  };

  // Joint plans first, best gain-per-instruction leading. A plan that is
  // skipped releases its members back to the per-branch path below.
  std::sort(JointPlans.begin(), JointPlans.end(),
            [](const JointPlan &A, const JointPlan &B) {
              return static_cast<double>(A.Gain) /
                         static_cast<double>(A.Cost) >
                     static_cast<double>(B.Gain) /
                         static_cast<double>(B.Cost);
            });
  for (const JointPlan &Plan : JointPlans) {
    Span SApplyJoint("pipeline.apply.joint", "replicate");
    SApplyJoint.arg("members", static_cast<uint64_t>(Plan.Members.size()));
    SApplyJoint.arg("gain", Plan.Gain);
    SApplyJoint.arg("cost", Plan.Cost);
    bool Applied = false;
    DecisionAction SkipAction = DecisionAction::SkippedStructure;
    const char *SkipReason = "";
    do {
      if (R.Transformed.instructionCount() + Plan.Cost > SizeCap) {
        ++R.SkippedBudget;
        SkipAction = DecisionAction::SkippedBudget;
        SkipReason = "joint machine copies exceed the code-size budget";
        break;
      }
      uint32_t FuncIdx = 0, BlockIdx = 0;
      if (!findInstance(R.Transformed, Plan.Members[0], FuncIdx,
                        BlockIdx)) {
        ++R.SkippedStructure;
        SkipReason = "branch instance vanished from the transformed module";
        break;
      }
      Function &F = R.Transformed.Functions[FuncIdx];
      CFG G(F);
      Dominators D(G);
      LoopInfo LI(G, D);
      int32_t LoopIdx = LI.innermostLoop(BlockIdx);
      if (LoopIdx < 0) {
        ++R.SkippedStructure;
        SkipReason = "no innermost loop around the branch instance";
        break;
      }
      const Loop &L = LI.loops()[static_cast<size_t>(LoopIdx)];
      if (!applyJointLoopReplication(F, L.Blocks, L.Header, Plan.Machine)
               .Applied) {
        ++R.SkippedStructure;
        SkipReason = "joint loop transform refused the loop shape";
        break;
      }
      ++R.JointReplications;
      Applied = true;
    } while (false);
    if (Applied)
      CheckSoundness("joint replication");
    if (Applied) {
      std::string Reason = "joint loop machine over " +
                           std::to_string(Plan.Members.size()) + " branches";
      for (size_t I : Plan.StrategyIndices)
        LogStrategy(I, DecisionAction::AppliedJoint, Plan.Gain, Plan.Cost,
                    Reason);
    } else {
      BranchDecision D;
      D.BranchId = Plan.Members[0];
      D.Strategy = "joint";
      D.Action = SkipAction;
      D.EstimatedGain = Plan.Gain;
      D.SizeCost = Plan.Cost;
      D.Reason = std::string(SkipReason) +
                 "; members fall back to per-branch machines";
      R.Decisions.add(std::move(D));
      for (size_t I : Plan.StrategyIndices)
        HandledJointly[I] = false;
    }
  }

  // Apply the best gain-per-instruction per-branch machines next.
  std::vector<size_t> Order;
  for (size_t I = 0; I < R.Strategies.size(); ++I)
    if (R.Strategies[I].Kind != StrategyKind::Profile && !HandledJointly[I])
      Order.push_back(I);
  std::vector<uint64_t> Costs(R.Strategies.size(), 1);
  for (size_t I : Order)
    Costs[I] = std::max<uint64_t>(EstimateCost(R.Strategies[I]), 1);
  std::sort(Order.begin(), Order.end(),
            [&R, &Gain, &Costs](size_t A, size_t B) {
              double RA = static_cast<double>(Gain(A)) /
                          static_cast<double>(Costs[A]);
              double RB = static_cast<double>(Gain(B)) /
                          static_cast<double>(Costs[B]);
              if (RA != RB)
                return RA > RB;
              return R.Strategies[A].BranchId < R.Strategies[B].BranchId;
            });

  for (size_t I : Order) {
    const BranchStrategy &S = R.Strategies[I];
    Span SApply("pipeline.apply", "replicate");
    SApply.arg("branch", static_cast<int64_t>(S.BranchId));
    SApply.arg("strategy", strategyKindName(S.Kind));
    SApply.arg("gain", Gain(I));
    if (Gain(I) < Opts.MinGain) {
      LogStrategy(I, DecisionAction::SkippedGain, Gain(I), Costs[I],
                  "gain " + std::to_string(Gain(I)) + " below minimum " +
                      std::to_string(Opts.MinGain));
      continue;
    }

    uint32_t FuncIdx = 0, BlockIdx = 0;
    if (!findInstance(R.Transformed, S.BranchId, FuncIdx, BlockIdx)) {
      ++R.SkippedStructure;
      LogStrategy(I, DecisionAction::SkippedStructure, Gain(I), Costs[I],
                  "branch instance vanished from the transformed module");
      continue;
    }
    Function &F = R.Transformed.Functions[FuncIdx];

    if (S.Kind == StrategyKind::Correlated) {
      if (R.Transformed.instructionCount() + Costs[I] > SizeCap) {
        ++R.SkippedBudget;
        LogStrategy(I, DecisionAction::SkippedBudget, Gain(I), Costs[I],
                    "path copies exceed the code-size budget");
        continue;
      }
      ReplicationStats RS =
          applyCorrelatedReplication(F, S.BranchId, *S.Corr);
      if (RS.Applied) {
        ++R.CorrelatedReplications;
        CheckSoundness("correlated replication");
        LogStrategy(I, DecisionAction::Applied, Gain(I), Costs[I],
                    "tail-duplicated " + std::to_string(RS.BlocksAdded) +
                        " blocks for the selected paths");
      } else {
        ++R.SkippedStructure;
        LogStrategy(I, DecisionAction::SkippedStructure, Gain(I), Costs[I],
                    "correlated transform could not locate the paths");
      }
      continue;
    }

    // Loop replication: locate the instance's innermost loop in the
    // *transformed* function.
    CFG G(F);
    Dominators D(G);
    LoopInfo LI(G, D);
    int32_t LoopIdx = LI.innermostLoop(BlockIdx);
    if (LoopIdx < 0) {
      ++R.SkippedStructure;
      LogStrategy(I, DecisionAction::SkippedStructure, Gain(I), Costs[I],
                  "no innermost loop around the branch instance");
      continue;
    }
    const Loop &L = LI.loops()[static_cast<size_t>(LoopIdx)];

    // Budget check against the *current* loop size: replicating a loop a
    // second branch shares multiplies the copies (paper sec. 6).
    uint64_t LoopSize = 0;
    for (uint32_t B : L.Blocks)
      LoopSize += F.Blocks[B].Insts.size();
    unsigned Reachable = 0;
    for (uint8_t Bit : S.Machine->reachableStates())
      Reachable += Bit;
    uint64_t Cost = LoopSize * (Reachable > 1 ? Reachable - 1 : 1);
    if (R.Transformed.instructionCount() + Cost > SizeCap) {
      ++R.SkippedBudget;
      LogStrategy(I, DecisionAction::SkippedBudget, Gain(I), Cost,
                  "loop copies exceed the code-size budget");
      continue;
    }

    ReplicationStats RS =
        applyLoopReplication(F, L.Blocks, L.Header, S.BranchId, *S.Machine);
    if (RS.Applied) {
      ++R.LoopReplications;
      CheckSoundness("loop replication");
      LogStrategy(I, DecisionAction::Applied, Gain(I), Cost,
                  "materialized " +
                      std::to_string(RS.StatesMaterialized) +
                      " machine states as loop copies");
    } else {
      ++R.SkippedStructure;
      LogStrategy(I, DecisionAction::SkippedStructure, Gain(I), Cost,
                  "loop transform refused the loop shape");
    }
  }

  // Branches that kept the profile strategy close out the decision log.
  for (size_t I = 0; I < R.Strategies.size(); ++I) {
    const BranchStrategy &S = R.Strategies[I];
    if (S.Kind != StrategyKind::Profile)
      continue;
    uint64_t Execs = Profiles.branch(S.BranchId).executions();
    LogStrategy(I, DecisionAction::KeptProfile, 0, 0,
                Execs < Opts.Strategy.MinExecutions
                    ? "cold branch (" + std::to_string(Execs) +
                          " executions)"
                    : "no machine beat the profile prediction");
  }
  SRepl.arg("loop", static_cast<uint64_t>(R.LoopReplications));
  SRepl.arg("joint", static_cast<uint64_t>(R.JointReplications));
  SRepl.arg("correlated", static_cast<uint64_t>(R.CorrelatedReplications));
  SRepl.end();
  TRepl.stop();
  Profiler::global().sampleRss("replication");

  ScopedTimer TAnnotate("pipeline.phase.annotation");
  Span SAnnotate("pipeline.phase.annotation");
  annotateProfilePredictions(R.Transformed, Stats);
  R.Transformed.assignBranchIds();

  if (ProofsPtr && Proofs.provenCount() > 0) {
    // Fold the proofs into the static predictions. For executed proven
    // branches the trace majority already equals the proven direction, so
    // this is an identity rewrite; for proven branches the training trace
    // never reached it upgrades the annotation from a guess to a fact.
    for (Function &F : R.Transformed.Functions)
      for (BasicBlock &BB : F.Blocks)
        for (Instruction &I : BB.Insts)
          if (I.isConditionalBranch() && Proofs.proven(I.OrigBranchId))
            I.Predicted = Proofs.dirOf(I.OrigBranchId);

    // Re-validate every fold: a single training-trace event disagreeing
    // with a proof means the interval analysis is unsound somewhere, which
    // is a soundness error, not a quality regression.
    for (uint32_t Id = 0; Id < PA.numBranches(); ++Id) {
      if (!Proofs.proven(static_cast<int32_t>(Id)))
        continue;
      const BranchStats &BS = Stats.branch(static_cast<int32_t>(Id));
      Prediction Dir = Proofs.dirOf(static_cast<int32_t>(Id));
      uint64_t Contradicting = Dir == Prediction::Taken
                                   ? BS.Executions - BS.TakenCount
                                   : BS.TakenCount;
      if (Contradicting == 0)
        continue;
      sa::Location Loc;
      R.Soundness.push_back(sa::makeDiag(
          sa::Severity::Error, "const-prop", "proof-contradicted-by-trace",
          Loc,
          "branch #" + std::to_string(Id) + " is proven " +
              (Dir == Prediction::Taken ? "always-taken" : "never-taken") +
              " but the training trace records " +
              std::to_string(Contradicting) +
              " executions in the other direction"));
    }
  }
  SAnnotate.end();
  TAnnotate.stop();
  Profiler::global().sampleRss("annotation");

  // Final soundness pass over the annotated module, this time also
  // cross-validating the materialized copy→original branch map (every
  // replica's OrigBranchId flattened in BranchId order) against the
  // simulation relation.
  {
    ScopedTimer TSound("pipeline.phase.soundness");
    std::vector<int32_t> CopyToOrig;
    for (const BranchRef &Ref : R.Transformed.branchLocations())
      CopyToOrig.push_back(R.Transformed.Functions[Ref.FuncIdx]
                               .Blocks[Ref.BlockIdx]
                               .Insts[Ref.InstIdx]
                               .OrigBranchId);
    std::vector<sa::Diagnostic> Diags =
        sa::checkReplicationSoundness(M, R.Transformed, &CopyToOrig);
    if (ObsOn) {
      Registry::global().counter("sa.soundness.checks").inc();
      if (!Diags.empty())
        Registry::global().counter("sa.soundness.failures").inc();
    }
    for (sa::Diagnostic &D : Diags) {
      D.note(sa::Location{}, "detected after the annotation step");
      R.Soundness.push_back(std::move(D));
    }
    if (ObsOn)
      Registry::global()
          .gauge("sa.soundness.diags")
          .set(static_cast<double>(R.Soundness.size()));
  }

  // Misprediction attribution ledger: selection candidates and runner-up
  // deltas from the strategy trace, the pipeline's verdict from the
  // decision log, and measured per-replica correctness from one execution
  // of the transformed module (capped at the training trace's event count
  // so the measured totals are comparable to the training profile).
  if (ObsOn) {
    ScopedTimer TAttr("pipeline.phase.attribution");
    Span SAttr("pipeline.phase.attribution");
    R.Attribution.resize(PA.numBranches());
    for (uint32_t Id = 0; Id < PA.numBranches(); ++Id) {
      BranchAttribution &A = R.Attribution.branch(static_cast<int32_t>(Id));
      const BranchStats &BS = Stats.branch(static_cast<int32_t>(Id));
      A.Executions = BS.Executions;
      A.TakenCount = BS.TakenCount;
      const BranchStrategy &S = R.Strategies[Id];
      A.Strategy = strategyKindName(S.Kind);
      A.TrainCorrect = S.Correct;
      A.TrainTotal = S.Total;
      A.Candidates = std::move(SelTrace.PerBranch[Id]);
      const CandidateScore *BestLoser = nullptr;
      for (const CandidateScore &C : A.Candidates) {
        if (C.Chosen)
          continue;
        if (!BestLoser || C.Correct > BestLoser->Correct)
          BestLoser = &C;
      }
      if (BestLoser) {
        A.RunnerUp = BestLoser->Strategy;
        A.RunnerUpDelta = S.Correct > BestLoser->Correct
                              ? S.Correct - BestLoser->Correct
                              : 0;
      }
    }
    // The pipeline's verdict: the last per-branch record wins (joint-plan
    // skip records carry the "joint" strategy and describe the plan, not
    // the branch).
    for (const BranchDecision &D : R.Decisions.all()) {
      if (D.Strategy == "joint" || D.BranchId < 0 ||
          static_cast<size_t>(D.BranchId) >= R.Attribution.size())
        continue;
      R.Attribution.branch(D.BranchId).Action = decisionActionName(D.Action);
    }
    ExecOptions EO;
    EO.MaxBranchEvents = T.size();
    // The timeline recorder rides along on the same measurement run: every
    // branch event lands in an event-indexed window, so the windowed series
    // sums to the attribution totals and costs no extra execution.
    TimeSeriesOptions TSO;
    if (Opts.TimelineWindowEvents != 0)
      TSO.WindowEvents = Opts.TimelineWindowEvents;
    TimeSeries TS(TSO, PA.numBranches());
    TimelineSink TLSink(TS);
    for (const ReplicaMeasurement &C :
         measureAnnotatedPerReplica(R.Transformed, EO, &TLSink)) {
      if (C.OrigBranchId < 0 ||
          static_cast<size_t>(C.OrigBranchId) >= R.Attribution.size())
        continue;
      BranchAttribution &A = R.Attribution.branch(C.OrigBranchId);
      A.MeasuredExecutions += C.Executions;
      A.Mispredictions += C.Mispredictions;
      A.Replicas.push_back({C.ReplicaId, C.Executions, C.Mispredictions});
    }
    R.Timeline = TS.take();
    publishTimelineCounters(R.Timeline);
    SAttr.arg("measured_executions", R.Attribution.totalMeasuredExecutions());
    SAttr.arg("mispredictions", R.Attribution.totalMispredictions());
    SAttr.arg("timeline_windows",
              static_cast<uint64_t>(R.Timeline.Windows.size()));
    SAttr.end();
    TAttr.stop();
  }

  R.NewInstructions = R.Transformed.instructionCount();
  PipeSpan.arg("new_instructions", R.NewInstructions);
  PipeSpan.arg("size_factor", R.sizeFactor());
  return R;
}
