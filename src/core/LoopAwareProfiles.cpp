//===- core/LoopAwareProfiles.cpp -----------------------------------------===//
//
// Part of the bpcr project (Krall, PLDI 1994 reproduction).
//
//===----------------------------------------------------------------------===//

#include "core/LoopAwareProfiles.h"

#include "sa/Dataflow.h"

#include <map>

using namespace bpcr;

ProfileSet bpcr::buildLoopAwareProfiles(const ProgramAnalysis &PA,
                                        const Trace &T, unsigned MaxBits,
                                        const sa::BranchProofs *Proofs) {
  uint32_t NumBranches = PA.numBranches();
  ProfileSet P(NumBranches, MaxBits);

  // Tracked loops: innermost loops of loop branches, keyed (func, loop).
  using LoopKey = std::pair<uint32_t, int32_t>;
  std::map<LoopKey, size_t> LoopIndex;
  struct TrackedLoop {
    uint32_t FuncIdx;
    const Loop *L;
    uint64_t LastOutside = 0;
  };
  std::vector<TrackedLoop> Loops;
  std::vector<int32_t> LoopOfBranch(NumBranches, -1);

  for (uint32_t Id = 0; Id < NumBranches; ++Id) {
    const BranchClass &C = PA.classOf(static_cast<int32_t>(Id));
    if (C.Kind == BranchKind::NonLoop)
      continue;
    LoopKey Key{PA.ref(static_cast<int32_t>(Id)).FuncIdx, C.LoopIdx};
    auto [It, Inserted] = LoopIndex.emplace(Key, Loops.size());
    if (Inserted)
      Loops.push_back(
          {Key.first,
           &PA.loopInfoFor(static_cast<int32_t>(Id))
                .loops()[static_cast<size_t>(C.LoopIdx)],
           0});
    LoopOfBranch[Id] = static_cast<int32_t>(It->second);
  }

  std::vector<uint64_t> LastExec(NumBranches, 0);
  uint64_t Time = 0;
  for (const BranchEvent &E : T) {
    ++Time;
    uint32_t Id = static_cast<uint32_t>(E.BranchId);
    const BranchRef &R = PA.ref(E.BranchId);

    // Update the outside markers of every tracked loop this event is not
    // inside of.
    for (TrackedLoop &TL : Loops) {
      bool Inside = TL.FuncIdx == R.FuncIdx && TL.L->contains(R.BlockIdx);
      if (!Inside)
        TL.LastOutside = Time;
    }

    int32_t LI = LoopOfBranch[Id];
    if (LI >= 0 &&
        Loops[static_cast<size_t>(LI)].LastOutside > LastExec[Id])
      P.resetHistory(E.BranchId);
    // Proven-unidirectional branches keep their outcome stream (profile
    // scores and Table 5 need it) but skip the pattern-table fill: no
    // machine search will ever consult their table.
    if (Proofs && Proofs->proven(E.BranchId))
      P.recordOutcomeOnly(E.BranchId, E.Taken);
    else
      P.record(E.BranchId, E.Taken);
    LastExec[Id] = Time;
  }
  return P;
}
