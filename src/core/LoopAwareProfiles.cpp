//===- core/LoopAwareProfiles.cpp -----------------------------------------===//
//
// Part of the bpcr project (Krall, PLDI 1994 reproduction).
//
//===----------------------------------------------------------------------===//

#include "core/LoopAwareProfiles.h"

#include "core/ScoreKernels.h"
#include "obs/TraceSpans.h"
#include "sa/Dataflow.h"
#include "trace/ColumnarTrace.h"

#include <cassert>
#include <map>

using namespace bpcr;

namespace {

/// Tracked loops: innermost loops of loop branches, keyed (func, loop).
/// Shared between the legacy and columnar builders so both reset on
/// exactly the same loop set.
struct TrackedLoopSet {
  struct TrackedLoop {
    uint32_t FuncIdx;
    const Loop *L;
    uint64_t LastOutside = 0;
  };
  std::vector<TrackedLoop> Loops;
  std::vector<int32_t> LoopOfBranch;

  explicit TrackedLoopSet(const ProgramAnalysis &PA)
      : LoopOfBranch(PA.numBranches(), -1) {
    using LoopKey = std::pair<uint32_t, int32_t>;
    std::map<LoopKey, size_t> LoopIndex;
    for (uint32_t Id = 0; Id < PA.numBranches(); ++Id) {
      const BranchClass &C = PA.classOf(static_cast<int32_t>(Id));
      if (C.Kind == BranchKind::NonLoop)
        continue;
      LoopKey Key{PA.ref(static_cast<int32_t>(Id)).FuncIdx, C.LoopIdx};
      auto [It, Inserted] = LoopIndex.emplace(Key, Loops.size());
      if (Inserted)
        Loops.push_back(
            {Key.first,
             &PA.loopInfoFor(static_cast<int32_t>(Id))
                  .loops()[static_cast<size_t>(C.LoopIdx)],
             0});
      LoopOfBranch[Id] = static_cast<int32_t>(It->second);
    }
  }
};

} // namespace

ProfileSet bpcr::buildLoopAwareProfiles(const ProgramAnalysis &PA,
                                        const Trace &T, unsigned MaxBits,
                                        const sa::BranchProofs *Proofs) {
  uint32_t NumBranches = PA.numBranches();
  ProfileSet P(NumBranches, MaxBits);

  TrackedLoopSet TLS(PA);
  std::vector<TrackedLoopSet::TrackedLoop> &Loops = TLS.Loops;
  std::vector<int32_t> &LoopOfBranch = TLS.LoopOfBranch;

  std::vector<uint64_t> LastExec(NumBranches, 0);
  uint64_t Time = 0;
  for (const BranchEvent &E : T) {
    ++Time;
    uint32_t Id = static_cast<uint32_t>(E.BranchId);
    const BranchRef &R = PA.ref(E.BranchId);

    // Update the outside markers of every tracked loop this event is not
    // inside of.
    for (TrackedLoopSet::TrackedLoop &TL : Loops) {
      bool Inside = TL.FuncIdx == R.FuncIdx && TL.L->contains(R.BlockIdx);
      if (!Inside)
        TL.LastOutside = Time;
    }

    int32_t LI = LoopOfBranch[Id];
    if (LI >= 0 &&
        Loops[static_cast<size_t>(LI)].LastOutside > LastExec[Id])
      P.resetHistory(E.BranchId);
    // Proven-unidirectional branches keep their outcome stream (profile
    // scores and Table 5 need it) but skip the pattern-table fill: no
    // machine search will ever consult their table.
    if (Proofs && Proofs->proven(E.BranchId))
      P.recordOutcomeOnly(E.BranchId, E.Taken);
    else
      P.record(E.BranchId, E.Taken);
    LastExec[Id] = Time;
  }
  return P;
}

ProfileSet bpcr::buildLoopAwareProfiles(const ProgramAnalysis &PA,
                                        const ColumnarTrace &CT,
                                        unsigned MaxBits,
                                        const sa::BranchProofs *Proofs) {
  assert(CT.indexed() && CT.numBranches() == PA.numBranches() &&
         "finalize() the columnar trace for this module first");
  Span FillSpan("profiles.columnar_fill", "kernel");
  uint32_t NumBranches = PA.numBranches();
  ProfileSet P(NumBranches, MaxBits);

  TrackedLoopSet TLS(PA);
  const size_t NumLoops = TLS.Loops.size();

  // Per branch id: which tracked loops contain its block. Loop nesting
  // bounds the list length, so the hot pass below is O(depth) per event.
  std::vector<size_t> ContainOffsets(NumBranches + 1, 0);
  std::vector<uint32_t> ContainLists;
  for (uint32_t Id = 0; Id < NumBranches; ++Id) {
    ContainOffsets[Id] = ContainLists.size();
    const BranchRef &R = PA.ref(static_cast<int32_t>(Id));
    for (size_t LI = 0; LI < NumLoops; ++LI) {
      const TrackedLoopSet::TrackedLoop &TL = TLS.Loops[LI];
      if (TL.FuncIdx == R.FuncIdx && TL.L->contains(R.BlockIdx))
        ContainLists.push_back(static_cast<uint32_t>(LI));
    }
  }
  ContainOffsets[NumBranches] = ContainLists.size();

  // Reset scan. Invariant per tracked loop L: InsideCount[L] = events so
  // far inside L. Per branch b with loop L(b): SnapInside[b] is
  // InsideCount[L(b)] right after b's last execution, so b re-entered its
  // loop iff the events since then were not all inside, i.e.
  //   InsideCount[L] - SnapInside[b] != (t-1) - LastExec[b]
  // — exactly the legacy LastOutside > LastExec condition.
  std::vector<uint64_t> InsideCount(NumLoops, 0);
  std::vector<uint64_t> SnapInside(NumBranches, 0);
  std::vector<uint64_t> LastExec(NumBranches, 0);
  std::vector<uint64_t> SeenCount(NumBranches, 0);
  std::vector<std::vector<uint64_t>> Resets(NumBranches);

  const auto &Ids = CT.ids();
  for (size_t I = 0, N = Ids.size(); I != N; ++I) {
    const uint64_t Time = static_cast<uint64_t>(I) + 1;
    const uint32_t Id = static_cast<uint32_t>(Ids[I]);
    const int32_t LI = TLS.LoopOfBranch[Id];
    if (LI >= 0) {
      const size_t L = static_cast<size_t>(LI);
      if (InsideCount[L] - SnapInside[Id] != (Time - 1) - LastExec[Id])
        Resets[Id].push_back(SeenCount[Id]);
    }
    for (size_t C = ContainOffsets[Id], E = ContainOffsets[Id + 1]; C != E;
         ++C)
      ++InsideCount[ContainLists[C]];
    if (LI >= 0)
      SnapInside[Id] = InsideCount[static_cast<size_t>(LI)];
    LastExec[Id] = Time;
    ++SeenCount[Id];
  }

  // Per-branch fill from the index: outcome streams are bulk-expanded and
  // the pattern tables come from the flat-count kernel, one segment per
  // reset (each segment starts from a zero history, like resetHistory).
  std::vector<uint64_t> Counts;
  uint64_t KernelEvents = 0;
  for (uint32_t Id = 0; Id < NumBranches; ++Id) {
    BranchColumn Col = CT.branch(Id);
    if (!Col.Executions)
      continue;
    BranchProfile &BP = P.branchMutable(static_cast<int32_t>(Id));
    BP.Outcomes.resize(Col.Executions);
    expandBitsToBytes(Col.Bits, BP.Outcomes.data());
    BP.DirBits.appendBits(Col.Bits);
    BP.ResetPositions = std::move(Resets[Id]);
    KernelEvents += Col.Executions;

    if (Proofs && Proofs->proven(static_cast<int32_t>(Id)))
      continue; // outcome stream only, table stays empty
    Counts.assign(size_t(2) << MaxBits, 0);
    uint32_t Hist = 0;
    uint64_t Start = 0;
    for (size_t S = 0; S <= BP.ResetPositions.size(); ++S) {
      uint64_t End = S < BP.ResetPositions.size() ? BP.ResetPositions[S]
                                                  : Col.Executions;
      Hist = fillPatternCounts(Col.Bits.data(), Start, End - Start, MaxBits,
                               /*StartHist=*/0, Counts.data());
      Start = End;
    }
    P.assignTable(static_cast<int32_t>(Id), Counts.data(), Hist,
                  Col.Executions);
  }
  FillSpan.arg("events", KernelEvents);
  return P;
}
