//===- core/CorrelatedMachine.h - Path-state machines -----------*- C++ -*-===//
//
// Part of the bpcr project (Krall, PLDI 1994 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Correlated-branch machines (paper sec. 4.3): "A state in a correlated
/// branch state machine represents a path from correlated branches to the
/// branch to be predicted. The correlated branch state machine is the set of
/// those paths which give the lowest [misprediction rate]. One state covers
/// the case where the control flow matches none of the paths."
///
/// Unlike the loop machines, the states do not depend on each other: each
/// execution independently matches the longest selected path against the
/// decisions that led to the branch.
///
//===----------------------------------------------------------------------===//

#ifndef BPCR_CORE_CORRELATEDMACHINE_H
#define BPCR_CORE_CORRELATEDMACHINE_H

#include "analysis/PathEnum.h"
#include "core/SuffixSelect.h"
#include "support/Statistics.h"
#include "trace/Trace.h"

#include <cstdint>
#include <vector>

namespace bpcr {

class ColumnarTrace;

/// A fitted correlated-branch machine for one branch.
struct CorrelatedMachine {
  int32_t BranchId = -1;
  unsigned MaxPathLen = 1;
  /// Selected path states (steps oldest first), sorted by (length, content).
  std::vector<BranchPath> Paths;
  /// Prediction per path, aligned with Paths.
  std::vector<uint8_t> PathPred;
  /// Prediction of the catch-all state.
  uint8_t DefaultPred = 1;
  /// Construction-time assignment score.
  uint64_t Correct = 0;
  uint64_t Total = 0;

  /// Total states: the selected paths plus the catch-all.
  unsigned numStates() const {
    return static_cast<unsigned>(Paths.size()) + 1;
  }

  /// Index of the longest selected path that is a suffix of the recent
  /// decisions (newest last), or -1 for the catch-all state.
  int match(const std::vector<PathStep> &Recent) const;

  /// Prediction for an execution preceded by \p Recent decisions.
  bool predictFor(const std::vector<PathStep> &Recent) const {
    int Idx = match(Recent);
    return Idx < 0 ? DefaultPred != 0
                   : PathPred[static_cast<size_t>(Idx)] != 0;
  }
};

/// Options for correlated machine construction.
struct CorrelatedOptions {
  /// Total state budget including the catch-all state.
  unsigned MaxStates = 4;
  /// Longest considered path; the paper uses "a maximum path length of n
  /// for an n state machine to keep the size of the replicated code small".
  unsigned MaxPathLen = 4;
  bool Exhaustive = true;
  uint64_t NodeBudget = 200'000;
};

/// Per-branch path observation counts: for every execution, the longest
/// matching candidate path (or the unmatched bucket).
struct PathProfile {
  /// Keyed by the encoded path (see encodePathSteps); values are outcome
  /// counts of the predicted branch when reached over that path.
  std::vector<std::pair<SymbolString, DirCounts>> PerPath;
  DirCounts Unmatched;
};

/// Packs decision steps into selection symbols (one per step).
SymbolString encodePathSteps(const BranchPath &P);

/// Profiles candidate paths for many branches in a single trace pass.
///
/// \param CandidatesByBranch candidate paths per branch id (empty entries
///        are skipped).
/// \param MaxPathLen window length (must cover the longest candidate).
std::vector<PathProfile>
profilePaths(const std::vector<std::vector<BranchPath>> &CandidatesByBranch,
             const Trace &T, unsigned MaxPathLen);

/// Columnar overload: same global-order pass over ids() plus the packed
/// direction words; identical profiles to the legacy trace.
std::vector<PathProfile>
profilePaths(const std::vector<std::vector<BranchPath>> &CandidatesByBranch,
             const ColumnarTrace &CT, unsigned MaxPathLen);

/// Fits a correlated machine from a precomputed profile.
CorrelatedMachine buildCorrelatedMachineFromProfile(
    int32_t BranchId, const PathProfile &Profile,
    const CorrelatedOptions &Opts);

/// Convenience wrapper: profiles \p T for one branch and fits the machine.
///
/// \param CandidatePaths CFG-valid decision paths into the branch's block
///        (from enumerateBackwardPaths).
/// \param T training trace.
CorrelatedMachine buildCorrelatedMachine(
    int32_t BranchId, const std::vector<BranchPath> &CandidatePaths,
    const Trace &T, const CorrelatedOptions &Opts);

/// Replays \p T and measures the machine's realized accuracy on its branch.
PredictionStats evaluateCorrelatedMachine(const CorrelatedMachine &M,
                                          const Trace &T);

} // namespace bpcr

#endif // BPCR_CORE_CORRELATEDMACHINE_H
