//===- core/Machines.cpp --------------------------------------------------===//
//
// Part of the bpcr project (Krall, PLDI 1994 reproduction).
//
//===----------------------------------------------------------------------===//

#include "core/Machines.h"

#include <algorithm>
#include <cassert>

using namespace bpcr;

BranchMachine::~BranchMachine() = default;

bool bpcr::denseEncode(const BranchMachine &M, DenseMachine &Out) {
  unsigned N = M.numStates();
  if (N == 0 || N > 16)
    return false;
  Out = DenseMachine();
  Out.NumStates = static_cast<uint8_t>(N);
  Out.Initial = static_cast<uint8_t>(M.initialState());
  for (unsigned S = 0; S < N; ++S) {
    for (unsigned B = 0; B < 2; ++B) {
      unsigned Next = M.next(S, B != 0);
      if (Next >= N)
        return false;
      Out.NextTab[B] |= static_cast<uint64_t>(Next) << (4 * S);
    }
    if (M.predictTaken(S))
      Out.PredMask |= static_cast<uint16_t>(1U << S);
  }
  return true;
}

namespace {

/// Packs a byte outcome stream for the kernels.
void packOutcomes(const std::vector<uint8_t> &Outcomes,
                  BitstreamBuilder &Bits) {
  Bits.reserveBits(Outcomes.size());
  for (uint8_t O : Outcomes)
    Bits.push(O != 0);
}

} // namespace

PredictionStats
BranchMachine::simulate(const std::vector<uint8_t> &Outcomes) const {
  PredictionStats Stats;
  DenseMachine DM;
  if (denseEncode(*this, DM)) {
    // Packed fast path: identical predictions, no virtual call per event.
    BitstreamBuilder Bits;
    packOutcomes(Outcomes, Bits);
    uint64_t Correct = scoreMachine(DM, Bits.view());
    Stats.Predictions = Outcomes.size();
    Stats.Mispredictions = Outcomes.size() - Correct;
    return Stats;
  }
  unsigned S = initialState();
  for (uint8_t O : Outcomes) {
    bool Taken = O != 0;
    Stats.record(predictTaken(S) == Taken);
    S = next(S, Taken);
  }
  return Stats;
}

PredictionStats
BranchMachine::simulateSegmented(const BranchProfile &P) const {
  PredictionStats Stats;
  DenseMachine DM;
  if (denseEncode(*this, DM)) {
    // Each reset restarts the walk from the initial state, so the stream
    // decomposes into independent segments scored over the packed words.
    BitstreamBuilder Scratch;
    BitstreamView Bits;
    if (P.DirBits.size() == P.Outcomes.size()) {
      Bits = P.DirBits.view();
    } else {
      packOutcomes(P.Outcomes, Scratch);
      Bits = Scratch.view();
    }
    uint64_t Correct = 0;
    uint64_t Start = 0;
    for (size_t S = 0; S <= P.ResetPositions.size(); ++S) {
      uint64_t End = S < P.ResetPositions.size()
                         ? std::min<uint64_t>(P.ResetPositions[S],
                                              P.Outcomes.size())
                         : P.Outcomes.size();
      if (End > Start)
        Correct += scoreMachineRange(DM, Bits.data(), Start, End - Start);
      Start = std::max(Start, End);
    }
    Stats.Predictions = P.Outcomes.size();
    Stats.Mispredictions = P.Outcomes.size() - Correct;
    return Stats;
  }
  unsigned S = initialState();
  size_t NextReset = 0;
  for (size_t I = 0; I < P.Outcomes.size(); ++I) {
    while (NextReset < P.ResetPositions.size() &&
           P.ResetPositions[NextReset] == I) {
      S = initialState();
      ++NextReset;
    }
    bool Taken = P.Outcomes[I] != 0;
    Stats.record(predictTaken(S) == Taken);
    S = next(S, Taken);
  }
  return Stats;
}

std::vector<uint8_t> BranchMachine::reachableStates() const {
  std::vector<uint8_t> Seen(numStates(), 0);
  std::vector<unsigned> Work{initialState()};
  Seen[initialState()] = 1;
  while (!Work.empty()) {
    unsigned S = Work.back();
    Work.pop_back();
    for (bool Taken : {false, true}) {
      unsigned N = next(S, Taken);
      if (!Seen[N]) {
        Seen[N] = 1;
        Work.push_back(N);
      }
    }
  }
  return Seen;
}

// -- SuffixMachine -----------------------------------------------------------

namespace {

bool stringLess(const SymbolString &A, const SymbolString &B) {
  if (A.size() != B.size())
    return A.size() < B.size();
  return A < B;
}

} // namespace

SuffixMachine SuffixMachine::fromSelection(const SuffixSelection &Sel) {
  SuffixMachine M;
  M.States = Sel.States;
  M.Preds = Sel.StatePred;
  assert(!M.States.empty() && "machine needs at least one state");
  M.MaxLen = 1;
  for (const SymbolString &S : M.States)
    M.MaxLen = std::max<unsigned>(M.MaxLen, static_cast<unsigned>(S.size()));

  // Initial state: the longest all-zero state (the paper allows any state
  // as the initial one; a cold history reads as not-taken, consistent with
  // the zero-filled history registers elsewhere in the library).
  M.Initial = 0;
  size_t BestLen = 0;
  for (size_t I = 0; I < M.States.size(); ++I) {
    const SymbolString &S = M.States[I];
    if (std::all_of(S.begin(), S.end(), [](uint32_t B) { return B == 0; }) &&
        S.size() >= BestLen) {
      BestLen = S.size();
      M.Initial = static_cast<unsigned>(I);
    }
  }
  M.Correct = Sel.Correct;
  M.Total = Sel.Total;
  return M;
}

unsigned SuffixMachine::next(unsigned State, bool Taken) const {
  SymbolString S = States[State];
  S.push_back(Taken ? 1 : 0);
  if (S.size() > MaxLen)
    S.erase(S.begin(), S.end() - MaxLen);

  for (size_t L = S.size(); L >= 1; --L) {
    SymbolString Probe(S.end() - static_cast<long>(L), S.end());
    auto It =
        std::lower_bound(States.begin(), States.end(), Probe, stringLess);
    if (It != States.end() && *It == Probe)
      return static_cast<unsigned>(It - States.begin());
    if (L == 1)
      break;
  }
  // The forced catch-all states guarantee a match; stay put defensively.
  assert(false && "suffix machine has no catch-all for this outcome");
  return State;
}

std::string SuffixMachine::describe() const {
  std::string Out = "suffix{";
  for (size_t I = 0; I < States.size(); ++I) {
    if (I)
      Out += ',';
    for (uint32_t B : States[I])
      Out += B ? '1' : '0';
    Out += Preds[I] ? ":T" : ":N";
  }
  Out += '}';
  return Out;
}

// -- ExitChainMachine --------------------------------------------------------

ExitChainMachine ExitChainMachine::fit(const PatternTable &Table,
                                       unsigned ChainLen, bool Parity,
                                       bool StayOnTaken) {
  assert(ChainLen >= 1 && "chain needs at least one iteration state");
  ExitChainMachine M;
  M.ChainLen = ChainLen;
  M.Parity = Parity;
  M.StayOnTaken = StayOnTaken;

  unsigned NumStates = M.numStates();
  std::vector<DirCounts> StateCounts(NumStates);

  uint32_t StayBit = StayOnTaken ? 1U : 0U;
  unsigned L = Table.maxBits();
  for (const auto &[Pattern, Counts] : Table.full()) {
    // Trailing iterations since the last exit, capped at the history width.
    unsigned T = 0;
    while (T < L && (((Pattern >> T) & 1U) == StayBit))
      ++T;
    unsigned State;
    if (T < ChainLen)
      State = T;
    else if (!Parity)
      State = ChainLen;
    else
      State = ChainLen + ((T - ChainLen) & 1U);
    StateCounts[State].Taken += Counts.Taken;
    StateCounts[State].NotTaken += Counts.NotTaken;
  }

  M.Preds.resize(NumStates);
  M.Correct = 0;
  M.Total = 0;
  for (unsigned S = 0; S < NumStates; ++S) {
    M.Preds[S] = StateCounts[S].majorityTaken() ? 1 : 0;
    M.Correct += std::max(StateCounts[S].Taken, StateCounts[S].NotTaken);
    M.Total += StateCounts[S].total();
  }
  return M;
}

unsigned ExitChainMachine::next(unsigned State, bool Taken) const {
  bool Stay = (Taken == StayOnTaken);
  if (!Stay)
    return 0;
  if (!Parity)
    return State < ChainLen ? State + 1 : ChainLen;
  if (State < ChainLen)
    return State + 1;
  // The two longest states alternate (even/odd iteration counts).
  return State == ChainLen ? ChainLen + 1 : ChainLen;
}

std::string ExitChainMachine::describe() const {
  std::string Out = "exit{chain=" + std::to_string(ChainLen);
  if (Parity)
    Out += ",parity";
  Out += StayOnTaken ? ",stay=T" : ",stay=N";
  Out += ",pred=";
  for (uint8_t P : Preds)
    Out += P ? 'T' : 'N';
  Out += '}';
  return Out;
}
