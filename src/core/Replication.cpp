//===- core/Replication.cpp -----------------------------------------------===//
//
// Part of the bpcr project (Krall, PLDI 1994 reproduction).
//
//===----------------------------------------------------------------------===//

#include "core/Replication.h"

#include "trace/Sinks.h"

#include <algorithm>
#include <cassert>
#include <map>
#include <set>

using namespace bpcr;

// -- Loop replication --------------------------------------------------------

ReplicationStats
bpcr::applyLoopReplication(Function &F,
                           const std::vector<uint32_t> &LoopBlocks,
                           uint32_t Header, int32_t TargetOrigId,
                           const BranchMachine &M) {
  ReplicationStats Out;
  (void)Header;

  std::vector<uint8_t> Reachable = M.reachableStates();
  unsigned NumStates = M.numStates();
  unsigned Init = M.initialState();

  auto InLoop = [&LoopBlocks](uint32_t B) {
    return std::binary_search(LoopBlocks.begin(), LoopBlocks.end(), B);
  };

  // CopyIdx[State][LoopPos] = block index of that state's copy. The
  // original blocks are the initial-state copy.
  std::vector<std::vector<uint32_t>> CopyIdx(
      NumStates, std::vector<uint32_t>(LoopBlocks.size(), UINT32_MAX));
  for (size_t P = 0; P < LoopBlocks.size(); ++P)
    CopyIdx[Init][P] = LoopBlocks[P];

  for (unsigned S = 0; S < NumStates; ++S) {
    if (S == Init || !Reachable[S])
      continue;
    for (size_t P = 0; P < LoopBlocks.size(); ++P) {
      BasicBlock Clone = F.Blocks[LoopBlocks[P]];
      Clone.Name += "@s" + std::to_string(S);
      CopyIdx[S][P] = static_cast<uint32_t>(F.Blocks.size());
      F.Blocks.push_back(std::move(Clone));
      ++Out.BlocksAdded;
    }
  }

  auto LoopPos = [&LoopBlocks](uint32_t B) {
    return static_cast<size_t>(
        std::lower_bound(LoopBlocks.begin(), LoopBlocks.end(), B) -
        LoopBlocks.begin());
  };

  // Rewire every copy (the originals included, as the initial state).
  for (unsigned S = 0; S < NumStates; ++S) {
    if (!Reachable[S])
      continue;
    for (size_t P = 0; P < LoopBlocks.size(); ++P) {
      BasicBlock &BB = F.Blocks[CopyIdx[S][P]];
      if (!BB.isComplete())
        continue;
      Instruction &T = BB.terminator();

      auto Retarget = [&](uint32_t Old, unsigned NextState) {
        if (!InLoop(Old))
          return Old;
        return CopyIdx[NextState][LoopPos(Old)];
      };

      if (T.Op == Opcode::Jmp) {
        T.TrueTarget = Retarget(T.TrueTarget, S);
        continue;
      }
      if (!T.isConditionalBranch())
        continue;

      if (T.OrigBranchId == TargetOrigId) {
        // The improved branch drives the state transitions and carries the
        // state's prediction.
        T.TrueTarget = Retarget(T.TrueTarget, M.next(S, true));
        T.FalseTarget = Retarget(T.FalseTarget, M.next(S, false));
        T.Predicted =
            M.predictTaken(S) ? Prediction::Taken : Prediction::NotTaken;
      } else {
        T.TrueTarget = Retarget(T.TrueTarget, S);
        T.FalseTarget = Retarget(T.FalseTarget, S);
      }
    }
  }

  for (uint8_t R : Reachable)
    Out.StatesMaterialized += R;
  Out.BlocksPruned = pruneUnreachableBlocks(F);
  Out.Applied = true;
  return Out;
}

// -- Correlated replication --------------------------------------------------

namespace {

/// A trie over the selected paths, keyed oldest decision first. Each node
/// owns one copy of the block *chain* that control traverses after taking
/// the node's last decision: any jump-only pass-through blocks followed by
/// the block where the next decision happens (for full paths that final
/// block is the target branch's block itself). Cloning the jump chains is
/// what Mueller/Whalley's replication does for unconditional jumps.
struct PrefixNode {
  std::vector<PathStep> Prefix;
  /// Blocks this node clones: pass-throughs then the decision block.
  std::vector<uint32_t> SourceChain;
  /// The created clones, aligned with SourceChain.
  std::vector<uint32_t> CloneChain;
  std::map<std::pair<int32_t, bool>, size_t> Children;
};

/// Finds the unique block whose terminator is the (pre-pass) instance of
/// \p OrigId; returns UINT32_MAX when absent or ambiguous.
uint32_t findBranchBlock(const Function &F, int32_t OrigId, uint32_t Limit) {
  uint32_t Found = UINT32_MAX;
  for (uint32_t B = 0; B < Limit; ++B) {
    const BasicBlock &BB = F.Blocks[B];
    if (!BB.isComplete())
      continue;
    const Instruction &T = BB.terminator();
    if (T.isConditionalBranch() && T.OrigBranchId == OrigId) {
      if (Found != UINT32_MAX)
        return UINT32_MAX; // ambiguous (already replicated elsewhere)
      Found = B;
    }
  }
  return Found;
}

/// Follows \p Start through jump-only blocks until a block ending in a
/// conditional branch or return; returns the traversed chain (Start first,
/// decision/ret block last), or empty on a jump cycle.
std::vector<uint32_t> jumpChainFrom(const Function &F, uint32_t Start) {
  std::vector<uint32_t> Chain;
  uint32_t Cur = Start;
  for (unsigned Guard = 0; Guard < 64; ++Guard) {
    Chain.push_back(Cur);
    const BasicBlock &BB = F.Blocks[Cur];
    if (!BB.isComplete())
      return {};
    const Instruction &T = BB.terminator();
    if (T.Op != Opcode::Jmp)
      return Chain;
    Cur = T.TrueTarget;
  }
  return {}; // jump cycle: not materializable
}

} // namespace

ReplicationStats
bpcr::applyCorrelatedReplication(Function &F, int32_t TargetOrigId,
                                 const CorrelatedMachine &M) {
  ReplicationStats Out;
  const uint32_t PreBlocks = static_cast<uint32_t>(F.Blocks.size());

  uint32_t TargetBlock = findBranchBlock(F, TargetOrigId, PreBlocks);
  if (TargetBlock == UINT32_MAX)
    return Out; // absent or already multiply instantiated: skip

  // Build the prefix trie over the selected paths.
  std::vector<PrefixNode> Nodes(1); // node 0 = empty prefix (virtual root)
  for (const BranchPath &P : M.Paths) {
    size_t Cur = 0;
    for (const PathStep &S : P.Steps) {
      auto Key = std::make_pair(S.BranchId, S.Taken);
      auto It = Nodes[Cur].Children.find(Key);
      if (It == Nodes[Cur].Children.end()) {
        PrefixNode N;
        N.Prefix = Nodes[Cur].Prefix;
        N.Prefix.push_back(S);
        Nodes.push_back(std::move(N));
        It = Nodes[Cur]
                 .Children.emplace(Key, Nodes.size() - 1)
                 .first;
      }
      Cur = It->second;
    }
  }
  if (Nodes.size() == 1)
    return Out; // no paths selected

  // Resolve each node's source chain: the jump pass-throughs and the next
  // decision block reached after taking the prefix's last decision, all in
  // the pre-pass graph.
  for (size_t NI = 1; NI < Nodes.size(); ++NI) {
    PrefixNode &N = Nodes[NI];
    const PathStep &Last = N.Prefix.back();
    uint32_t DecisionBlock = findBranchBlock(F, Last.BranchId, PreBlocks);
    if (DecisionBlock == UINT32_MAX)
      return Out; // cannot locate the path branch uniquely: skip transform
    const Instruction &T = F.Blocks[DecisionBlock].terminator();
    N.SourceChain =
        jumpChainFrom(F, Last.Taken ? T.TrueTarget : T.FalseTarget);
    if (N.SourceChain.empty())
      return Out; // jump cycle: skip transform
  }

  // Create clones, children before parents so a parent's chain edge can
  // point at the child clone. Process by decreasing prefix length.
  std::vector<size_t> Order;
  for (size_t NI = 1; NI < Nodes.size(); ++NI)
    Order.push_back(NI);
  std::sort(Order.begin(), Order.end(), [&Nodes](size_t A, size_t B) {
    return Nodes[A].Prefix.size() > Nodes[B].Prefix.size();
  });

  // Chain edges that must not be re-redirected by the root rewiring below:
  // (block, direction) pairs.
  std::set<std::pair<uint32_t, bool>> Locked;

  for (size_t NI : Order) {
    PrefixNode &N = Nodes[NI];
    // Clone the whole chain; intra-chain jumps link clone to clone.
    N.CloneChain.resize(N.SourceChain.size());
    for (size_t CI = N.SourceChain.size(); CI-- > 0;) {
      BasicBlock Clone = F.Blocks[N.SourceChain[CI]];
      Clone.Name += "@p" + std::to_string(NI);
      uint32_t CloneIdx = static_cast<uint32_t>(F.Blocks.size());

      if (CI + 1 < N.SourceChain.size()) {
        // Pass-through block: retarget its jump to the next chain clone.
        assert(Clone.isComplete() && Clone.terminator().Op == Opcode::Jmp &&
               "chain interior must be jump blocks");
        Clone.terminator().TrueTarget = N.CloneChain[CI + 1];
      } else if (Clone.isComplete() &&
                 Clone.terminator().isConditionalBranch()) {
        // Decision block: wire its edges toward the children's chains.
        Instruction &T = Clone.terminator();
        for (const auto &[Key, ChildIdx] : N.Children) {
          if (T.OrigBranchId != Key.first)
            continue; // path deviates from CFG: child unreachable, harmless
          uint32_t ChildClone = Nodes[ChildIdx].CloneChain.front();
          if (Key.second)
            T.TrueTarget = ChildClone;
          else
            T.FalseTarget = ChildClone;
          Locked.insert({CloneIdx, Key.second});
        }
        // Annotate target-branch clones with the machine prediction for
        // the longest selected suffix of this node's context.
        if (T.OrigBranchId == TargetOrigId)
          T.Predicted = M.predictFor(N.Prefix) ? Prediction::Taken
                                               : Prediction::NotTaken;
      }

      N.CloneChain[CI] = CloneIdx;
      F.Blocks.push_back(std::move(Clone));
      ++Out.BlocksAdded;
    }
  }

  // Root rewiring: every instance of a root decision (a, e) sends its
  // e-edge into the root's chain — except edges locked as chain internals.
  for (const auto &[Key, RootIdx] : Nodes[0].Children) {
    uint32_t RootClone = Nodes[RootIdx].CloneChain.front();
    for (uint32_t B = 0; B < F.Blocks.size(); ++B) {
      BasicBlock &BB = F.Blocks[B];
      if (!BB.isComplete())
        continue;
      Instruction &T = BB.terminator();
      if (!T.isConditionalBranch() || T.OrigBranchId != Key.first)
        continue;
      if (Locked.count({B, Key.second}))
        continue;
      if (Key.second)
        T.TrueTarget = RootClone;
      else
        T.FalseTarget = RootClone;
    }
  }

  // The original target block is the catch-all state.
  {
    Instruction &T = F.Blocks[TargetBlock].terminator();
    if (T.isConditionalBranch() && T.OrigBranchId == TargetOrigId)
      T.Predicted =
          M.DefaultPred ? Prediction::Taken : Prediction::NotTaken;
  }

  Out.StatesMaterialized = M.numStates();
  Out.BlocksPruned = pruneUnreachableBlocks(F);
  Out.Applied = true;
  return Out;
}

// -- Utilities ---------------------------------------------------------------

uint32_t bpcr::pruneUnreachableBlocks(Function &F) {
  uint32_t N = static_cast<uint32_t>(F.Blocks.size());
  std::vector<bool> Reach(N, false);
  std::vector<uint32_t> Work{0};
  if (N == 0)
    return 0;
  Reach[0] = true;
  while (!Work.empty()) {
    uint32_t B = Work.back();
    Work.pop_back();
    if (!F.Blocks[B].isComplete())
      continue;
    for (uint32_t S : F.Blocks[B].successors())
      if (!Reach[S]) {
        Reach[S] = true;
        Work.push_back(S);
      }
  }

  std::vector<uint32_t> Remap(N, UINT32_MAX);
  uint32_t Next = 0;
  for (uint32_t B = 0; B < N; ++B)
    if (Reach[B])
      Remap[B] = Next++;
  if (Next == N)
    return 0;

  std::vector<BasicBlock> Kept;
  Kept.reserve(Next);
  for (uint32_t B = 0; B < N; ++B) {
    if (!Reach[B])
      continue;
    BasicBlock BB = std::move(F.Blocks[B]);
    if (BB.isComplete()) {
      Instruction &T = BB.terminator();
      if (T.Op == Opcode::Br) {
        T.TrueTarget = Remap[T.TrueTarget];
        T.FalseTarget = Remap[T.FalseTarget];
      } else if (T.Op == Opcode::Jmp) {
        T.TrueTarget = Remap[T.TrueTarget];
      }
    }
    Kept.push_back(std::move(BB));
  }
  F.Blocks = std::move(Kept);
  return N - Next;
}

void bpcr::annotateProfilePredictions(Module &M, const TraceStats &Stats) {
  for (Function &F : M.Functions)
    for (BasicBlock &BB : F.Blocks)
      for (Instruction &I : BB.Insts) {
        if (!I.isConditionalBranch() || I.Predicted != Prediction::Unknown)
          continue;
        if (I.OrigBranchId < 0 ||
            static_cast<uint32_t>(I.OrigBranchId) >= Stats.numBranches())
          continue;
        I.Predicted = Stats.branch(I.OrigBranchId).majorityTaken()
                          ? Prediction::Taken
                          : Prediction::NotTaken;
      }
}

namespace {

/// Scores Predicted annotations against actual outcomes.
class PredictionCheckSink : public TraceSink {
public:
  void onBranch(const Instruction &Br, bool Taken) override {
    bool Pred = Br.Predicted != Prediction::NotTaken;
    Stats.record(Pred == Taken);
  }

  PredictionStats Stats;
};

} // namespace

PredictionStats bpcr::measureAnnotatedPredictions(const Module &M,
                                                  const ExecOptions &Opts) {
  PredictionCheckSink Sink;
  ExecResult R = execute(M, &Sink, Opts);
  (void)R;
  return Sink.Stats;
}

namespace {

/// Scores Predicted annotations per branch copy, keyed by the copy's
/// BranchId in the transformed module.
class PerReplicaSink : public TraceSink {
public:
  void onBranch(const Instruction &Br, bool Taken) override {
    if (Br.BranchId < 0)
      return;
    size_t Idx = static_cast<size_t>(Br.BranchId);
    if (Idx >= Copies.size())
      Copies.resize(Idx + 1);
    ReplicaMeasurement &C = Copies[Idx];
    C.OrigBranchId = Br.OrigBranchId;
    C.ReplicaId = Br.BranchId;
    ++C.Executions;
    bool Pred = Br.Predicted != Prediction::NotTaken;
    if (Pred != Taken)
      ++C.Mispredictions;
  }

  std::vector<ReplicaMeasurement> Copies;
};

} // namespace

std::vector<ReplicaMeasurement>
bpcr::measureAnnotatedPerReplica(const Module &M, const ExecOptions &Opts,
                                 TraceSink *Extra) {
  PerReplicaSink Sink;
  MultiSink Fan;
  TraceSink *Target = &Sink;
  if (Extra) {
    Fan.add(&Sink);
    Fan.add(Extra);
    Target = &Fan;
  }
  ExecResult R = execute(M, Target, Opts);
  (void)R;
  std::vector<ReplicaMeasurement> Out;
  for (const ReplicaMeasurement &C : Sink.Copies)
    if (C.Executions > 0)
      Out.push_back(C);
  std::sort(Out.begin(), Out.end(),
            [](const ReplicaMeasurement &A, const ReplicaMeasurement &B) {
              if (A.OrigBranchId != B.OrigBranchId)
                return A.OrigBranchId < B.OrigBranchId;
              return A.ReplicaId < B.ReplicaId;
            });
  return Out;
}
