//===- core/ProgramAnalysis.h - Whole-program branch analysis ---*- C++ -*-===//
//
// Part of the bpcr project (Krall, PLDI 1994 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Bundles the per-function analyses (CFG, dominators, natural loops,
/// branch classification, backward paths) into one module-level view keyed
/// by BranchId — the information the paper's profiling tool writes next to
/// the trace ("the description of branches, a control flow graph and loop
/// information").
///
//===----------------------------------------------------------------------===//

#ifndef BPCR_CORE_PROGRAMANALYSIS_H
#define BPCR_CORE_PROGRAMANALYSIS_H

#include "analysis/CFG.h"
#include "analysis/Dominators.h"
#include "analysis/LoopInfo.h"
#include "analysis/PathEnum.h"
#include "ir/Module.h"

#include <memory>
#include <vector>

namespace bpcr {

/// Module-wide analysis snapshot. Invalidated by IR mutation.
class ProgramAnalysis {
public:
  /// \pre Branch ids are assigned.
  explicit ProgramAnalysis(const Module &M);

  uint32_t numBranches() const {
    return static_cast<uint32_t>(Refs.size());
  }

  /// Location of branch \p Id.
  const BranchRef &ref(int32_t Id) const {
    return Refs[static_cast<uint32_t>(Id)];
  }

  /// Loop classification of branch \p Id.
  const BranchClass &classOf(int32_t Id) const {
    return Classes[static_cast<uint32_t>(Id)];
  }

  /// The loops of the function owning branch \p Id.
  const LoopInfo &loopInfoFor(int32_t Id) const {
    return *Loops[Refs[static_cast<uint32_t>(Id)].FuncIdx];
  }

  const CFG &cfgFor(int32_t Id) const {
    return *CFGs[Refs[static_cast<uint32_t>(Id)].FuncIdx];
  }

  /// CFG-valid backward decision paths into the block of branch \p Id.
  /// \param ThroughJumps pass false to restrict to paths the correlated
  ///        replication can materialize (direct branch edges only).
  std::vector<BranchPath> backwardPaths(int32_t Id, unsigned MaxLen,
                                        bool ThroughJumps = true) const;

  /// True when \p FuncIdx can (transitively) call itself. Loop replication
  /// in recursive functions realizes a per-activation state that trace
  /// profiling cannot model, so strategy selection avoids loop machines
  /// there.
  bool isRecursive(uint32_t FuncIdx) const { return Recursive[FuncIdx]; }

  const Module &module() const { return M; }

private:
  const Module &M;
  std::vector<BranchRef> Refs;
  std::vector<BranchClass> Classes;
  std::vector<std::unique_ptr<CFG>> CFGs;
  std::vector<std::unique_ptr<Dominators>> Doms;
  std::vector<std::unique_ptr<LoopInfo>> Loops;
  std::vector<bool> Recursive;
};

} // namespace bpcr

#endif // BPCR_CORE_PROGRAMANALYSIS_H
