//===- core/BranchProfiles.cpp --------------------------------------------===//
//
// Part of the bpcr project (Krall, PLDI 1994 reproduction).
//
//===----------------------------------------------------------------------===//

#include "core/BranchProfiles.h"

#include "core/ScoreKernels.h"
#include "trace/ColumnarTrace.h"

#include <cassert>
#include <unordered_set>

using namespace bpcr;

DirCounts PatternTable::countsFor(uint32_t Bits, unsigned Len) const {
  DirCounts C;
  uint32_t M = (Len >= 32) ? ~0U : ((1U << Len) - 1U);
  for (const auto &[Pattern, Counts] : Full) {
    if ((Pattern & M) != (Bits & M))
      continue;
    C.Taken += Counts.Taken;
    C.NotTaken += Counts.NotTaken;
  }
  return C;
}

unsigned PatternTable::distinctPatterns(unsigned Bits) const {
  uint32_t M = (Bits >= 32) ? ~0U : ((1U << Bits) - 1U);
  std::unordered_set<uint32_t> Seen;
  for (const auto &[Pattern, Counts] : Full)
    Seen.insert(Pattern & M);
  return static_cast<unsigned>(Seen.size());
}

ProfileSet::ProfileSet(uint32_t NumBranches, unsigned MaxBits)
    : Profiles(NumBranches, BranchProfile(MaxBits)) {}

void ProfileSet::addTrace(const Trace &T) {
  // Counting pass first: each branch's outcome vector is reserved to its
  // final size, so the recording pass appends without reallocating. The
  // pattern table gets a capped hint — a branch sees at most 2^MaxBits
  // distinct patterns however long its stream is.
  std::vector<uint64_t> PerBranch(Profiles.size(), 0);
  for (const BranchEvent &E : T)
    if (static_cast<uint32_t>(E.BranchId) < Profiles.size())
      ++PerBranch[static_cast<uint32_t>(E.BranchId)];
  for (size_t Id = 0; Id < Profiles.size(); ++Id) {
    if (!PerBranch[Id])
      continue;
    BranchProfile &P = Profiles[Id];
    P.Outcomes.reserve(P.Outcomes.size() + PerBranch[Id]);
    P.Table.reserveHint(PerBranch[Id]);
  }
  for (const BranchEvent &E : T)
    record(E.BranchId, E.Taken);
}

void ProfileSet::addTrace(const ColumnarTrace &CT) {
  assert(CT.indexed() && "finalize() the columnar trace first");
  const uint32_t NumBranches = std::min<uint32_t>(
      static_cast<uint32_t>(Profiles.size()), CT.numBranches());

  // Whole-trace profiling never resets histories, so each branch's pattern
  // table is one continuous fill over its per-branch bitstream. The flat
  // count array is reused across branches (2^(MaxBits+1) words, 8 KB at
  // the paper's 9 bits).
  std::vector<uint64_t> Counts;
  for (uint32_t Id = 0; Id < NumBranches; ++Id) {
    BranchColumn Col = CT.branch(Id);
    if (!Col.Executions)
      continue;
    BranchProfile &P = Profiles[Id];
    size_t Old = P.Outcomes.size();
    P.Outcomes.resize(Old + Col.Executions);
    expandBitsToBytes(Col.Bits, P.Outcomes.data() + Old);
    P.DirBits.appendBits(Col.Bits);

    if (Old == 0) {
      unsigned MaxBits = P.Table.maxBits();
      Counts.assign(size_t(2) << MaxBits, 0);
      uint32_t FinalHist = fillPatternCounts(Col.Bits.data(), 0,
                                             Col.Executions, MaxBits,
                                             /*StartHist=*/0, Counts.data());
      P.Table.assignCounts(Counts.data(), FinalHist, Col.Executions);
    } else {
      // Appending to an already-filled profile: fall back to the
      // incremental path to preserve the running history.
      for (uint64_t I = 0; I < Col.Executions; ++I)
        P.Table.record(Col.Bits.bit(I));
    }
  }
}

uint32_t ProfileSet::executedBranches() const {
  uint32_t N = 0;
  for (const BranchProfile &P : Profiles)
    if (!P.Outcomes.empty())
      ++N;
  return N;
}

uint64_t ProfileSet::totalExecutions() const {
  uint64_t N = 0;
  for (const BranchProfile &P : Profiles)
    N += P.executions();
  return N;
}

double ProfileSet::fillRatePercent(unsigned Bits) const {
  uint64_t Used = 0;
  uint64_t Capacity = 0;
  for (const BranchProfile &P : Profiles) {
    if (P.Outcomes.empty())
      continue;
    Used += P.Table.distinctPatterns(Bits);
    Capacity += (1ULL << Bits);
  }
  if (Capacity == 0)
    return 0.0;
  return 100.0 * static_cast<double>(Used) / static_cast<double>(Capacity);
}
