//===- core/BranchProfiles.cpp --------------------------------------------===//
//
// Part of the bpcr project (Krall, PLDI 1994 reproduction).
//
//===----------------------------------------------------------------------===//

#include "core/BranchProfiles.h"

#include <unordered_set>

using namespace bpcr;

DirCounts PatternTable::countsFor(uint32_t Bits, unsigned Len) const {
  DirCounts C;
  uint32_t M = (Len >= 32) ? ~0U : ((1U << Len) - 1U);
  for (const auto &[Pattern, Counts] : Full) {
    if ((Pattern & M) != (Bits & M))
      continue;
    C.Taken += Counts.Taken;
    C.NotTaken += Counts.NotTaken;
  }
  return C;
}

unsigned PatternTable::distinctPatterns(unsigned Bits) const {
  uint32_t M = (Bits >= 32) ? ~0U : ((1U << Bits) - 1U);
  std::unordered_set<uint32_t> Seen;
  for (const auto &[Pattern, Counts] : Full)
    Seen.insert(Pattern & M);
  return static_cast<unsigned>(Seen.size());
}

ProfileSet::ProfileSet(uint32_t NumBranches, unsigned MaxBits)
    : Profiles(NumBranches, BranchProfile(MaxBits)) {}

void ProfileSet::addTrace(const Trace &T) {
  // Counting pass first: each branch's outcome vector is reserved to its
  // final size, so the recording pass appends without reallocating. The
  // pattern table gets a capped hint — a branch sees at most 2^MaxBits
  // distinct patterns however long its stream is.
  std::vector<uint64_t> PerBranch(Profiles.size(), 0);
  for (const BranchEvent &E : T)
    if (static_cast<uint32_t>(E.BranchId) < Profiles.size())
      ++PerBranch[static_cast<uint32_t>(E.BranchId)];
  for (size_t Id = 0; Id < Profiles.size(); ++Id) {
    if (!PerBranch[Id])
      continue;
    BranchProfile &P = Profiles[Id];
    P.Outcomes.reserve(P.Outcomes.size() + PerBranch[Id]);
    P.Table.reserveHint(PerBranch[Id]);
  }
  for (const BranchEvent &E : T)
    record(E.BranchId, E.Taken);
}

uint32_t ProfileSet::executedBranches() const {
  uint32_t N = 0;
  for (const BranchProfile &P : Profiles)
    if (!P.Outcomes.empty())
      ++N;
  return N;
}

uint64_t ProfileSet::totalExecutions() const {
  uint64_t N = 0;
  for (const BranchProfile &P : Profiles)
    N += P.executions();
  return N;
}

double ProfileSet::fillRatePercent(unsigned Bits) const {
  uint64_t Used = 0;
  uint64_t Capacity = 0;
  for (const BranchProfile &P : Profiles) {
    if (P.Outcomes.empty())
      continue;
    Used += P.Table.distinctPatterns(Bits);
    Capacity += (1ULL << Bits);
  }
  if (Capacity == 0)
    return 0.0;
  return 100.0 * static_cast<double>(Used) / static_cast<double>(Capacity);
}
