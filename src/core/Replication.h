//===- core/Replication.h - Code replication transforms ---------*- C++ -*-===//
//
// Part of the bpcr project (Krall, PLDI 1994 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's central contribution: transforms that encode a branch
/// prediction state machine into the program counter by replicating code.
///
///  - Loop replication (figure 1): one copy of the loop body per machine
///    state; the improved branch's edges switch between copies according to
///    the machine transitions, and each copy of the branch carries a single
///    static prediction. Copies unreachable from the initial state are
///    discarded, exactly as the paper discards blocks "2b" and "3a".
///
///  - Correlated replication (sec. 4.3, after Mueller/Whalley): the
///    selected decision paths into the branch's block are materialized by
///    tail-duplicating the blocks along each path, so that arriving through
///    a given path reaches a dedicated copy of the branch with its own
///    prediction; all other arrivals reach the original copy (the
///    catch-all state).
///
/// Both transforms preserve program behavior exactly — replicated blocks
/// are instruction-identical and only control-flow targets are remapped —
/// which the property tests verify by co-executing original and transformed
/// modules.
///
//===----------------------------------------------------------------------===//

#ifndef BPCR_CORE_REPLICATION_H
#define BPCR_CORE_REPLICATION_H

#include "core/CorrelatedMachine.h"
#include "core/Machines.h"
#include "interp/Interpreter.h"
#include "ir/Module.h"
#include "trace/TraceStats.h"

#include <cstdint>

namespace bpcr {

/// Outcome of one replication transform.
struct ReplicationStats {
  bool Applied = false;
  uint32_t BlocksAdded = 0;
  uint32_t BlocksPruned = 0;
  /// Machine states that received a copy (reachable states).
  unsigned StatesMaterialized = 0;
};

/// Replicates the natural loop \p LoopBlocks (header \p Header) of \p F so
/// that every instance of the branch with original id \p TargetOrigId
/// switches between one loop copy per state of \p M.
///
/// The original blocks serve as the initial-state copy, so edges entering
/// the loop need no rewiring (natural loops are only entered through their
/// header). Unreachable copies are pruned afterwards.
ReplicationStats applyLoopReplication(Function &F,
                                      const std::vector<uint32_t> &LoopBlocks,
                                      uint32_t Header, int32_t TargetOrigId,
                                      const BranchMachine &M);

/// Materializes the correlated machine \p M for the branch with original id
/// \p TargetOrigId by tail-duplicating the blocks along each selected path,
/// including any jump-only pass-through blocks between the path decisions
/// (Mueller/Whalley-style). Skips (without modifying \p F) when a path
/// branch cannot be located uniquely or a jump cycle intervenes.
ReplicationStats applyCorrelatedReplication(Function &F,
                                            int32_t TargetOrigId,
                                            const CorrelatedMachine &M);

/// Removes blocks unreachable from the entry block and remaps all targets.
/// \returns the number of removed blocks.
uint32_t pruneUnreachableBlocks(Function &F);

/// Fills the Predicted annotation of every still-unannotated conditional
/// branch with the majority direction of its *original* branch from
/// \p Stats (indexed by OrigBranchId). Replicated copies that already carry
/// a state prediction are left alone.
void annotateProfilePredictions(Module &M, const TraceStats &Stats);

/// Executes \p M and scores its Predicted annotations against the actual
/// outcomes: the realized semi-static misprediction rate of a replicated
/// program. Unknown annotations count as predict-taken.
PredictionStats measureAnnotatedPredictions(const Module &M,
                                            const ExecOptions &Opts);

/// Measured outcome of one branch copy during a per-replica run.
struct ReplicaMeasurement {
  /// Original branch the copy descends from.
  int32_t OrigBranchId = -1;
  /// BranchId of the copy in the transformed module.
  int32_t ReplicaId = -1;
  uint64_t Executions = 0;
  uint64_t Mispredictions = 0;
};

/// Like measureAnnotatedPredictions, but broken down per branch copy so the
/// attribution ledger can fold replicated copies back onto their original
/// branch ids. Requires assignBranchIds() to have run on \p M. Entries with
/// zero executions are omitted; output is sorted by (OrigBranchId,
/// ReplicaId). \p Extra, when non-null, additionally receives every branch
/// event of the measurement run — the timeline recorder rides along here so
/// per-replica scoring and windowed telemetry share one execution.
std::vector<ReplicaMeasurement>
measureAnnotatedPerReplica(const Module &M, const ExecOptions &Opts,
                           TraceSink *Extra = nullptr);

} // namespace bpcr

#endif // BPCR_CORE_REPLICATION_H
