//===- core/SuffixSelect.cpp ----------------------------------------------===//
//
// Part of the bpcr project (Krall, PLDI 1994 reproduction).
//
//===----------------------------------------------------------------------===//
//
// Implementation notes. All suffixes of the observed patterns are interned
// once; every pattern precomputes its suffix-id list (longest first), so one
// assignment-score evaluation is a few integer ops per (pattern, length)
// pair. The exact search is DFS over include/exclude decisions per
// candidate with an admissible bound (score of the current set plus every
// remaining candidate — the assignment score is monotone in the set because
// adding states only refines the pattern partition).
//
//===----------------------------------------------------------------------===//

#include "core/SuffixSelect.h"

#include <algorithm>
#include <cassert>
#include <map>

using namespace bpcr;

namespace {

bool stringLess(const SymbolString &A, const SymbolString &B) {
  if (A.size() != B.size())
    return A.size() < B.size();
  return A < B;
}

SymbolString suffixOf(const SymbolString &S, size_t Len) {
  assert(Len <= S.size() && "suffix longer than string");
  return SymbolString(S.end() - static_cast<long>(Len), S.end());
}

/// Interned-suffix search context.
class Search {
public:
  Search(const std::vector<ObservedPattern> &Patterns,
         const std::vector<SymbolString> &Forced, const SelectOptions &Opts)
      : Patterns(Patterns), Opts(Opts) {
    // Intern forced states and every candidate suffix.
    for (const SymbolString &F : Forced) {
      int Id = intern(F);
      IsForced[static_cast<size_t>(Id)] = true;
    }
    for (const ObservedPattern &P : Patterns) {
      size_t MaxL = std::min<size_t>(P.Syms.size(), Opts.MaxLen);
      for (size_t L = Opts.MinLen; L <= MaxL; ++L)
        intern(suffixOf(P.Syms, L));
      if (Opts.SubstringClosure) {
        // Also make every contiguous substring available, so a long state
        // can always be reached through its prefixes.
        for (size_t Start = 0; Start < P.Syms.size(); ++Start)
          for (size_t L = Opts.MinLen;
               L <= Opts.MaxLen && Start + L <= P.Syms.size(); ++L)
            intern(SymbolString(P.Syms.begin() + static_cast<long>(Start),
                                P.Syms.begin() +
                                    static_cast<long>(Start + L)));
      }
    }

    // Parent links: suffix parent (drop oldest) and, for substring
    // closure, the init parent (drop newest).
    Parent.assign(Strings.size(), -1);
    InitParent.assign(Strings.size(), -1);
    for (size_t Id = 0; Id < Strings.size(); ++Id) {
      const SymbolString &S = Strings[Id];
      if (S.size() <= Opts.MinLen)
        continue;
      auto It = Ids.find(suffixOf(S, S.size() - 1));
      if (It != Ids.end())
        Parent[Id] = It->second;
      auto It2 = Ids.find(SymbolString(S.begin(), S.end() - 1));
      if (It2 != Ids.end())
        InitParent[Id] = It2->second;
    }

    // Per-pattern suffix-id lists, longest first.
    PatternSuffixes.resize(Patterns.size());
    for (size_t PI = 0; PI < Patterns.size(); ++PI) {
      const SymbolString &S = Patterns[PI].Syms;
      size_t MaxL = std::min<size_t>(S.size(), Opts.MaxLen);
      for (size_t L = MaxL; L >= 1 && L + 1 > 0; --L) {
        auto It = Ids.find(suffixOf(S, L));
        if (It != Ids.end())
          PatternSuffixes[PI].push_back(It->second);
        if (L == 1)
          break;
      }
    }

    // Candidate order: by (length, content) so parents precede children.
    for (size_t Id = 0; Id < Strings.size(); ++Id)
      if (!IsForced[Id])
        Candidates.push_back(static_cast<int>(Id));
    std::sort(Candidates.begin(), Candidates.end(), [this](int A, int B) {
      return stringLess(Strings[static_cast<size_t>(A)],
                        Strings[static_cast<size_t>(B)]);
    });

    InSet.assign(Strings.size(), 0);
    for (size_t Id = 0; Id < Strings.size(); ++Id)
      if (IsForced[Id])
        InSet[Id] = 1;
    NumForced = Forced.size();

    AccTaken.assign(Strings.size(), 0);
    AccNotTaken.assign(Strings.size(), 0);
    Stamp.assign(Strings.size(), 0);
  }

  /// Runs greedy then (optionally) exact search; returns the best set.
  std::vector<SymbolString> run(bool &BudgetExhaustedOut) {
    greedy();
    if (Opts.Exhaustive) {
      SelectedCount = 0;
      for (int C : Candidates)
        InSet[static_cast<size_t>(C)] = 0;
      dfs(0);
    }
    BudgetExhaustedOut = BudgetExhausted;
    std::vector<SymbolString> Out;
    for (size_t Id : BestIds)
      Out.push_back(Strings[Id]);
    return Out;
  }

private:
  int intern(const SymbolString &S) {
    auto [It, Inserted] = Ids.emplace(S, static_cast<int>(Strings.size()));
    if (Inserted) {
      Strings.push_back(S);
      IsForced.push_back(false);
    }
    return It->second;
  }

  /// Assignment score of the current InSet.
  uint64_t score() {
    ++Epoch;
    Touched.clear();
    uint64_t DefT = 0, DefN = 0;
    for (size_t PI = 0; PI < Patterns.size(); ++PI) {
      int Assigned = -1;
      for (int Id : PatternSuffixes[PI])
        if (InSet[static_cast<size_t>(Id)]) {
          Assigned = Id;
          break;
        }
      const DirCounts &C = Patterns[PI].Counts;
      if (Assigned < 0) {
        DefT += C.Taken;
        DefN += C.NotTaken;
        continue;
      }
      size_t Id = static_cast<size_t>(Assigned);
      if (Stamp[Id] != Epoch) {
        Stamp[Id] = Epoch;
        AccTaken[Id] = 0;
        AccNotTaken[Id] = 0;
        Touched.push_back(Id);
      }
      AccTaken[Id] += C.Taken;
      AccNotTaken[Id] += C.NotTaken;
    }
    uint64_t S = std::max(DefT, DefN);
    for (size_t Id : Touched)
      S += std::max(AccTaken[Id], AccNotTaken[Id]);
    return S;
  }

  /// Score with every candidate at position >= From temporarily included.
  uint64_t scoreWithRest(size_t From) {
    std::vector<size_t> Flipped;
    for (size_t I = From; I < Candidates.size(); ++I) {
      size_t Id = static_cast<size_t>(Candidates[I]);
      if (!InSet[Id]) {
        InSet[Id] = 1;
        Flipped.push_back(Id);
      }
    }
    uint64_t S = score();
    for (size_t Id : Flipped)
      InSet[Id] = 0;
    return S;
  }

  bool isLegal(int CandId) const {
    const SymbolString &S = Strings[static_cast<size_t>(CandId)];
    if (S.size() <= Opts.MinLen)
      return true;
    int P = Parent[static_cast<size_t>(CandId)];
    if (P < 0 || !InSet[static_cast<size_t>(P)])
      return false;
    if (Opts.SubstringClosure) {
      int IP = InitParent[static_cast<size_t>(CandId)];
      if (IP < 0 || !InSet[static_cast<size_t>(IP)])
        return false;
    }
    return true;
  }

  unsigned budgetLeft() const {
    size_t Used = SelectedCount + NumForced;
    return Opts.MaxSelected > Used
               ? static_cast<unsigned>(Opts.MaxSelected - Used)
               : 0;
  }

  void consider() {
    uint64_t S = score();
    if (S > BestScore || BestIds.empty()) {
      BestScore = S;
      BestIds.clear();
      for (size_t Id = 0; Id < Strings.size(); ++Id)
        if (InSet[Id])
          BestIds.push_back(Id);
    }
  }

  void dfs(size_t Idx) {
    if (BudgetExhausted)
      return;
    if (++Nodes > Opts.NodeBudget) {
      BudgetExhausted = true;
      return;
    }
    consider();
    if (Idx >= Candidates.size() || budgetLeft() == 0)
      return;
    if (scoreWithRest(Idx) <= BestScore)
      return;

    int Id = Candidates[Idx];
    if (isLegal(Id)) {
      InSet[static_cast<size_t>(Id)] = 1;
      ++SelectedCount;
      dfs(Idx + 1);
      InSet[static_cast<size_t>(Id)] = 0;
      --SelectedCount;
      if (BudgetExhausted)
        return;
    }
    dfs(Idx + 1);
  }

  void greedy() {
    consider();
    while (budgetLeft() > 0) {
      uint64_t Base = score();
      uint64_t BestGain = 0;
      int BestCand = -1;
      for (int C : Candidates) {
        size_t Id = static_cast<size_t>(C);
        if (InSet[Id] || !isLegal(C))
          continue;
        InSet[Id] = 1;
        uint64_t S = score();
        InSet[Id] = 0;
        if (S > Base && S - Base > BestGain) {
          BestGain = S - Base;
          BestCand = C;
        }
      }
      if (BestCand < 0)
        break;
      InSet[static_cast<size_t>(BestCand)] = 1;
      ++SelectedCount;
      consider();
    }
    // Reset selection state (greedy shares InSet with the exact phase).
    for (int C : Candidates)
      InSet[static_cast<size_t>(C)] = 0;
    SelectedCount = 0;
  }

  const std::vector<ObservedPattern> &Patterns;
  const SelectOptions &Opts;

  std::map<SymbolString, int> Ids;
  std::vector<SymbolString> Strings;
  std::vector<bool> IsForced;
  std::vector<int> Parent;
  std::vector<int> InitParent;
  std::vector<std::vector<int>> PatternSuffixes;
  std::vector<int> Candidates;

  std::vector<uint8_t> InSet;
  size_t SelectedCount = 0;
  size_t NumForced = 0;

  std::vector<uint64_t> AccTaken, AccNotTaken;
  std::vector<uint32_t> Stamp;
  std::vector<size_t> Touched;
  uint32_t Epoch = 0;

  uint64_t BestScore = 0;
  std::vector<size_t> BestIds;
  uint64_t Nodes = 0;
  bool BudgetExhausted = false;
};

} // namespace

SuffixSelection
bpcr::scoreStateSet(const std::vector<ObservedPattern> &Patterns,
                    const std::vector<SymbolString> &States) {
  SuffixSelection Out;
  Out.States = States;
  std::sort(Out.States.begin(), Out.States.end(), stringLess);
  Out.States.erase(std::unique(Out.States.begin(), Out.States.end()),
                   Out.States.end());

  auto FindAssigned = [&Out](const SymbolString &Syms) -> long {
    // Longest selected suffix.
    for (size_t L = Syms.size(); L >= 1; --L) {
      SymbolString Probe = suffixOf(Syms, L);
      auto It = std::lower_bound(Out.States.begin(), Out.States.end(), Probe,
                                 stringLess);
      if (It != Out.States.end() && *It == Probe)
        return It - Out.States.begin();
      if (L == 1)
        break;
    }
    return -1;
  };

  Out.StateCounts.assign(Out.States.size(), DirCounts());
  for (const ObservedPattern &P : Patterns) {
    long Idx = P.Syms.empty() ? -1 : FindAssigned(P.Syms);
    DirCounts &G =
        Idx < 0 ? Out.DefaultCounts : Out.StateCounts[static_cast<size_t>(Idx)];
    G.Taken += P.Counts.Taken;
    G.NotTaken += P.Counts.NotTaken;
  }

  Out.StatePred.resize(Out.States.size());
  for (size_t I = 0; I < Out.States.size(); ++I) {
    Out.StatePred[I] = Out.StateCounts[I].majorityTaken() ? 1 : 0;
    Out.Correct +=
        std::max(Out.StateCounts[I].Taken, Out.StateCounts[I].NotTaken);
    Out.Total += Out.StateCounts[I].total();
  }
  Out.DefaultPred = Out.DefaultCounts.majorityTaken() ? 1 : 0;
  Out.Correct += std::max(Out.DefaultCounts.Taken, Out.DefaultCounts.NotTaken);
  Out.Total += Out.DefaultCounts.total();
  return Out;
}

SuffixSelection
bpcr::selectSuffixStates(const std::vector<ObservedPattern> &Patterns,
                         const std::vector<SymbolString> &Forced,
                         const SelectOptions &Opts) {
  Search S(Patterns, Forced, Opts);
  bool BudgetExhausted = false;
  std::vector<SymbolString> Best = S.run(BudgetExhausted);

  SuffixSelection Out = scoreStateSet(Patterns, Best);
  Out.BudgetExhausted = BudgetExhausted;
  return Out;
}
