//===- core/SizeSweep.cpp -------------------------------------------------===//
//
// Part of the bpcr project (Krall, PLDI 1994 reproduction).
//
//===----------------------------------------------------------------------===//

#include "core/SizeSweep.h"

#include "core/CorrelatedMachine.h"
#include "core/MachineSearch.h"
#include "core/SearchCache.h"
#include "obs/Metrics.h"
#include "obs/TraceSpans.h"
#include "sa/Dataflow.h"
#include "support/ThreadPool.h"
#include "trace/ColumnarTrace.h"

#include <algorithm>
#include <map>

using namespace bpcr;

namespace {

/// Identifies a natural loop across functions.
using LoopKey = std::pair<uint32_t, int32_t>; // (function, loop index)

/// One branch's machine ladder: best training-correct per state count, the
/// family it uses, and the per-size correlated cost.
struct Ladder {
  int32_t BranchId = -1;
  StrategyKind Kind = StrategyKind::Profile;
  /// Correct[n] for n states, n = 1..MaxStates (index 0 unused).
  std::vector<uint64_t> Correct;
  /// For the Correlated family: estimated added instructions per size.
  std::vector<uint64_t> CorrCost;
  /// For loop families: the loop this branch's copies multiply.
  LoopKey Loop{UINT32_MAX, -1};
  uint64_t LoopSize = 0;
  unsigned CurStates = 1;
};

uint64_t loopInstructionCount(const Function &F, const Loop &L) {
  uint64_t N = 0;
  for (uint32_t B : L.Blocks)
    N += F.Blocks[B].Insts.size();
  return N;
}

/// Estimated instructions added by materializing \p M: duplicated blocks
/// along every selected path plus one branch-block copy per path.
uint64_t estimateCorrelatedCost(const CorrelatedMachine &M,
                                const ProgramAnalysis &PA) {
  const Module &Mod = PA.module();
  uint64_t Cost = 0;
  for (const BranchPath &P : M.Paths) {
    // One copy of the target block per path.
    const BranchRef &XR = PA.ref(M.BranchId);
    Cost += Mod.Functions[XR.FuncIdx].Blocks[XR.BlockIdx].Insts.size();
    // Copies of the intermediate decision blocks (steps 2..len).
    for (size_t I = 1; I < P.Steps.size(); ++I) {
      const BranchRef &R = PA.ref(P.Steps[I].BranchId);
      Cost += Mod.Functions[R.FuncIdx].Blocks[R.BlockIdx].Insts.size();
    }
  }
  return Cost;
}

} // namespace

namespace {

/// Shared body; \p T is either the legacy Trace or a ColumnarTrace (the
/// only trace use is the single profilePaths pass, overloaded for both).
template <class TraceT>
std::vector<SweepPoint> computeSizeSweepImpl(const ProgramAnalysis &PA,
                                             const ProfileSet &Profiles,
                                             const TraceT &T,
                                             const SweepOptions &Opts) {
  Span SweepSpan("sweep.compute", "sweep");
  const Module &Mod = PA.module();
  const uint64_t OrigSize = Mod.instructionCount();
  const uint64_t TotalExec = Profiles.totalExecutions();
  SweepSpan.arg("branches", static_cast<uint64_t>(PA.numBranches()));

  unsigned PathLen = std::min<unsigned>(4, Opts.MaxStates);

  // Batch path profiles for the correlated family.
  std::vector<std::vector<BranchPath>> Candidates(PA.numBranches());
  for (uint32_t Id = 0; Id < PA.numBranches(); ++Id) {
    const BranchProfile &P = Profiles.branch(static_cast<int32_t>(Id));
    if (P.executions() < Opts.MinExecutions)
      continue;
    if (Opts.Proofs && Opts.Proofs->proven(static_cast<int32_t>(Id)))
      continue;
    const BranchClass &C = PA.classOf(static_cast<int32_t>(Id));
    if (C.Kind != BranchKind::NonLoop && !Opts.CorrelatedForLoopBranches)
      continue;
    Candidates[Id] = PA.backwardPaths(static_cast<int32_t>(Id), PathLen,
                                      /*ThroughJumps=*/true);
  }
  std::vector<PathProfile> Paths = profilePaths(Candidates, T, PathLen);

  // Build ladders, one independent task per branch. Each branch's whole
  // ladder comes from the memoized downward-fill search (one deep run
  // fills every rung its winner covers), replacing the old probe-then-
  // re-search-per-rung loop; results land in slots indexed by branch id,
  // so the outcome is identical for any worker count.
  std::vector<Ladder> Ladders(PA.numBranches());
  SearchCache &Cache = SearchCache::global();
  auto BuildLadder = [&](size_t Idx) {
    uint32_t Id = static_cast<uint32_t>(Idx);
    const BranchProfile &P = Profiles.branch(static_cast<int32_t>(Id));
    Ladder &L = Ladders[Idx];
    L.BranchId = static_cast<int32_t>(Id);
    L.Correct.assign(Opts.MaxStates + 1, 0);
    L.Correct[1] = P.executions() - P.profileMispredictions();
    L.CorrCost.assign(Opts.MaxStates + 1, 0);

    // Proven-unidirectional branches keep a flat ladder: the profile rung
    // already predicts every execution, so deeper rungs cannot gain and
    // the ladder search (SearchCache stays untouched) is skipped.
    if (Opts.Proofs && Opts.Proofs->proven(static_cast<int32_t>(Id))) {
      if (Registry::global().enabled())
        Registry::global().counter("search.pruned_by_proof").inc();
      for (unsigned N = 2; N <= Opts.MaxStates; ++N)
        L.Correct[N] = L.Correct[1];
      return;
    }

    if (P.executions() < Opts.MinExecutions) {
      for (unsigned N = 2; N <= Opts.MaxStates; ++N)
        L.Correct[N] = L.Correct[1];
      return;
    }

    const BranchClass &C = PA.classOf(static_cast<int32_t>(Id));

    // Full ladders for every applicable family; the deepest rung doubles
    // as the family-decision probe.
    std::shared_ptr<const IntraLoopLadder> IL;
    std::shared_ptr<const ExitLadder> EL;
    std::shared_ptr<const CorrelatedLadder> CL;
    uint64_t BestLoopCorrect = 0;
    uint64_t BestCorrCorrect = 0;
    if (C.Kind == BranchKind::IntraLoop) {
      MachineOptions MO;
      MO.MaxStates = Opts.MaxStates;
      MO.Exhaustive = Opts.Exhaustive;
      MO.NodeBudget = Opts.NodeBudget;
      IL = Cache.intraLoopLadder(P.Table, MO, /*MinBudget=*/2);
      BestLoopCorrect = IL->at(Opts.MaxStates).Correct;
    } else if (C.Kind == BranchKind::LoopExit) {
      EL = Cache.exitLadder(P.Table, Opts.MaxStates, !C.TakenExits);
      BestLoopCorrect = EL->at(Opts.MaxStates).Correct;
    }
    if (!Candidates[Id].empty()) {
      CorrelatedOptions CO;
      CO.MaxStates = Opts.MaxStates;
      CO.MaxPathLen = PathLen;
      CO.Exhaustive = Opts.Exhaustive;
      CO.NodeBudget = Opts.NodeBudget;
      CL = Cache.correlatedLadder(L.BranchId, Paths[Id], CO, /*MinBudget=*/2);
      BestCorrCorrect = CL->at(Opts.MaxStates).Correct;
    }

    bool UseLoopFamily = (C.Kind != BranchKind::NonLoop) &&
                         BestLoopCorrect >= BestCorrCorrect &&
                         BestLoopCorrect > L.Correct[1];
    bool UseCorrFamily =
        !UseLoopFamily && BestCorrCorrect > L.Correct[1];

    if (UseLoopFamily) {
      L.Kind = (C.Kind == BranchKind::IntraLoop) ? StrategyKind::IntraLoop
                                                 : StrategyKind::LoopExit;
      const BranchRef &R = PA.ref(L.BranchId);
      L.Loop = {R.FuncIdx, C.LoopIdx};
      L.LoopSize = loopInstructionCount(
          Mod.Functions[R.FuncIdx],
          PA.loopInfoFor(L.BranchId).loops()[static_cast<size_t>(C.LoopIdx)]);
      for (unsigned N = 2; N <= Opts.MaxStates; ++N) {
        uint64_t Corr = C.Kind == BranchKind::IntraLoop
                            ? IL->at(N).Correct
                            : EL->at(N).Correct;
        L.Correct[N] = std::max(Corr, L.Correct[N - 1]);
      }
    } else if (UseCorrFamily) {
      L.Kind = StrategyKind::Correlated;
      for (unsigned N = 2; N <= Opts.MaxStates; ++N) {
        const CorrelatedMachine &CM = CL->at(N);
        L.Correct[N] = std::max(CM.Correct, L.Correct[N - 1]);
        L.CorrCost[N] = estimateCorrelatedCost(CM, PA);
      }
    } else {
      for (unsigned N = 2; N <= Opts.MaxStates; ++N)
        L.Correct[N] = L.Correct[1];
    }
  };
  parallelForJobs(Opts.Jobs, Ladders.size(), BuildLadder);

  // Greedy sweep.
  std::map<LoopKey, std::vector<size_t>> LoopMembers;
  for (size_t I = 0; I < Ladders.size(); ++I)
    if (Ladders[I].Kind == StrategyKind::IntraLoop ||
        Ladders[I].Kind == StrategyKind::LoopExit)
      LoopMembers[Ladders[I].Loop].push_back(I);

  auto LoopStateProduct = [&](const LoopKey &K, size_t Exclude,
                              unsigned Override) -> uint64_t {
    uint64_t Prod = 1;
    for (size_t I : LoopMembers[K])
      Prod *= (I == Exclude) ? Override : Ladders[I].CurStates;
    return Prod;
  };

  auto CurrentSize = [&]() -> double {
    uint64_t Size = OrigSize;
    for (const auto &[K, Members] : LoopMembers) {
      uint64_t Prod = 1;
      for (size_t I : Members)
        Prod *= Ladders[I].CurStates;
      Size += Ladders[Members.front()].LoopSize * (Prod - 1);
    }
    for (const Ladder &L : Ladders)
      if (L.Kind == StrategyKind::Correlated)
        Size += L.CorrCost[L.CurStates];
    return static_cast<double>(Size) / static_cast<double>(OrigSize);
  };

  auto CurrentMispredict = [&]() -> double {
    uint64_t Correct = 0;
    for (const Ladder &L : Ladders)
      Correct += L.Correct[L.CurStates];
    if (TotalExec == 0)
      return 0.0;
    return 100.0 * static_cast<double>(TotalExec - Correct) /
           static_cast<double>(TotalExec);
  };

  std::vector<SweepPoint> Points;
  Points.push_back({CurrentSize(), CurrentMispredict(), -1, 1});

  for (unsigned Step = 0; Step < Opts.MaxSteps; ++Step) {
    Span StepSpan("sweep.point", "sweep");
    StepSpan.arg("step", static_cast<uint64_t>(Step));
    double BestRatio = 0.0;
    size_t BestIdx = SIZE_MAX;
    unsigned BestTarget = 0;
    for (size_t I = 0; I < Ladders.size(); ++I) {
      Ladder &L = Ladders[I];
      // The next level with a strict gain.
      for (unsigned Target = L.CurStates + 1; Target <= Opts.MaxStates;
           ++Target) {
        uint64_t Gain = L.Correct[Target] - L.Correct[L.CurStates];
        if (Gain == 0)
          continue;
        double Cost = 1.0;
        if (L.Kind == StrategyKind::IntraLoop ||
            L.Kind == StrategyKind::LoopExit) {
          uint64_t Before = LoopStateProduct(L.Loop, I, L.CurStates);
          uint64_t After = LoopStateProduct(L.Loop, I, Target);
          Cost = static_cast<double>(L.LoopSize) *
                 static_cast<double>(After - Before);
        } else if (L.Kind == StrategyKind::Correlated) {
          Cost = static_cast<double>(L.CorrCost[Target] -
                                     L.CorrCost[L.CurStates]);
        }
        Cost = std::max(Cost, 1.0);
        double Ratio = static_cast<double>(Gain) / Cost;
        if (Ratio > BestRatio) {
          BestRatio = Ratio;
          BestIdx = I;
          BestTarget = Target;
        }
        break; // evaluate only the next beneficial level per branch
      }
    }
    if (BestIdx == SIZE_MAX)
      break;

    Ladders[BestIdx].CurStates = BestTarget;
    double Size = CurrentSize();
    StepSpan.arg("branch", static_cast<int64_t>(Ladders[BestIdx].BranchId));
    StepSpan.arg("states", static_cast<uint64_t>(BestTarget));
    StepSpan.arg("size_factor", Size);
    Points.push_back(
        {Size, CurrentMispredict(), Ladders[BestIdx].BranchId, BestTarget});
    if (Size > Opts.MaxSizeFactor)
      break;
  }
  SweepSpan.arg("points", static_cast<uint64_t>(Points.size()));
  return Points;
}

} // namespace

std::vector<SweepPoint> bpcr::computeSizeSweep(const ProgramAnalysis &PA,
                                               const ProfileSet &Profiles,
                                               const Trace &T,
                                               const SweepOptions &Opts) {
  return computeSizeSweepImpl(PA, Profiles, T, Opts);
}

std::vector<SweepPoint> bpcr::computeSizeSweep(const ProgramAnalysis &PA,
                                               const ProfileSet &Profiles,
                                               const ColumnarTrace &CT,
                                               const SweepOptions &Opts) {
  return computeSizeSweepImpl(PA, Profiles, CT, Opts);
}
