//===- core/SearchCache.cpp -----------------------------------------------===//
//
// Part of the bpcr project (Krall, PLDI 1994 reproduction).
//
//===----------------------------------------------------------------------===//

#include "core/SearchCache.h"

#include "obs/Metrics.h"
#include "obs/TraceSpans.h"

#include <algorithm>

using namespace bpcr;

//===----------------------------------------------------------------------===//
// Ladder construction
//===----------------------------------------------------------------------===//

namespace {

/// True when dropping States[Idx] keeps the set substring-closed: the state
/// is longer than the forced base and no other state extends it by one
/// symbol (older symbol prepended — suffix parent — or newer appended —
/// init parent).
bool canRemoveState(const std::vector<SymbolString> &States, size_t Idx,
                    size_t BaseLen) {
  const SymbolString &S = States[Idx];
  if (S.size() <= BaseLen)
    return false;
  for (const SymbolString &X : States) {
    if (X.size() != S.size() + 1)
      continue;
    if (std::equal(S.begin(), S.end(), X.begin() + 1) ||
        std::equal(S.begin(), S.end(), X.begin()))
      return false;
  }
  return true;
}

/// Fills rungs [L.MinBudget, Top] by truncating \p M: repeatedly drop the
/// closure-preserving leaf state whose removal keeps the most correct
/// predictions (first wins ties). Used when the search that produced \p M
/// exhausted its node budget — the result is greedy-quality either way, so
/// re-running a full exhausted search per rung buys nothing but the node
/// budget's cost again at every level. Returns the first budget the
/// truncation could not reach (it cannot shrink past the forced base), or
/// L.MinBudget - 1 when every rung was filled.
unsigned fillRungsByTruncation(IntraLoopLadder &L, const PatternTable &Table,
                               const SuffixMachine &M, unsigned Top) {
  std::vector<ObservedPattern> Patterns = patternsFromTable(Table);
  std::vector<SymbolString> States = M.states();
  size_t BaseLen = SIZE_MAX;
  for (const SymbolString &S : States)
    BaseLen = std::min(BaseLen, S.size());

  uint64_t Filled = 0;
  unsigned B = Top;
  for (; B >= L.MinBudget; --B) {
    while (States.size() > B) {
      long BestIdx = -1;
      uint64_t BestCorrect = 0;
      for (size_t I = 0; I < States.size(); ++I) {
        if (!canRemoveState(States, I, BaseLen))
          continue;
        std::vector<SymbolString> Next = States;
        Next.erase(Next.begin() + static_cast<long>(I));
        uint64_t C = scoreStateSet(Patterns, Next).Correct;
        if (BestIdx < 0 || C > BestCorrect) {
          BestIdx = static_cast<long>(I);
          BestCorrect = C;
        }
      }
      if (BestIdx < 0)
        break; // only the forced base is left; lower rungs need a search
      States.erase(States.begin() + BestIdx);
    }
    if (States.size() > B)
      break;
    SuffixSelection Sel = scoreStateSet(Patterns, States);
    Sel.BudgetExhausted = true;
    L.ByBudget[B] = SuffixMachine::fromSelection(Sel);
    ++Filled;
    if (B == L.MinBudget) {
      --B;
      break;
    }
  }
  if (Filled && Registry::global().enabled())
    Registry::global().counter("search.intra_loop.truncated_rungs").add(Filled);
  return B;
}

} // namespace

IntraLoopLadder bpcr::buildIntraLoopLadder(const PatternTable &Table,
                                           const MachineOptions &Opts,
                                           unsigned MinBudget) {
  Span S("search.intra_loop.ladder", "search");
  S.arg("max_states", static_cast<uint64_t>(Opts.MaxStates));

  IntraLoopLadder L;
  L.MaxStates = Opts.MaxStates;
  L.MinBudget = std::max(2u, std::min(MinBudget, Opts.MaxStates));
  L.ByBudget.resize(Opts.MaxStates + 1);

  // Downward fill: the winner at budget N is optimal for every budget down
  // to its own state count (suffix closure means a machine's size bounds
  // its pattern lengths, so smaller budgets admit strict subsets). Repeat
  // just below the filled range until the ladder floor is reached. When a
  // search exhausts its node budget the remaining rungs are filled by
  // truncating its winner instead — every further search would exhaust too,
  // paying the full node budget per rung for another greedy-quality answer.
  unsigned N = Opts.MaxStates;
  while (N >= L.MinBudget) {
    MachineOptions MO = Opts;
    MO.MaxStates = N;
    bool Exhausted = false;
    SuffixMachine M = buildIntraLoopMachine(Table, MO, &Exhausted);
    unsigned Floor = std::max(L.MinBudget, std::max(2u, M.numStates()));
    for (unsigned B = N; B >= Floor; --B)
      L.ByBudget[B] = M;
    if (Floor <= L.MinBudget)
      break;
    if (Exhausted) {
      N = fillRungsByTruncation(L, Table, M, Floor - 1);
      if (N < L.MinBudget)
        break;
      continue; // resume searching at the rung truncation could not reach
    }
    N = Floor - 1;
  }
  return L;
}

ExitLadder bpcr::buildExitLadder(const PatternTable &Table, unsigned MaxStates,
                                 bool StayOnTaken) {
  assert(MaxStates >= 2 && "exit ladder needs at least two states");
  Span S("search.exit.ladder", "search");
  S.arg("max_states", static_cast<uint64_t>(MaxStates));

  ExitLadder L;
  L.MaxStates = MaxStates;
  L.MinBudget = 2;
  L.ByBudget.resize(MaxStates + 1);

  // The chain family is small enough to enumerate: budget N admits chains
  // up to N-1 and parity tails up to chain N-2. Candidates arrive in the
  // same order buildExitMachine probes them — (N-2) parity before (N-1)
  // plain — so the running best (strict improvement, first wins ties)
  // reproduces its per-budget results with one fit per shape.
  uint64_t Fits = 1;
  ExitChainMachine Best =
      ExitChainMachine::fit(Table, /*ChainLen=*/1, /*Parity=*/false,
                            StayOnTaken);
  L.ByBudget[2] = Best;
  for (unsigned N = 3; N <= MaxStates; ++N) {
    ExitChainMachine P = ExitChainMachine::fit(Table, N - 2, /*Parity=*/true,
                                               StayOnTaken);
    if (P.Correct > Best.Correct)
      Best = std::move(P);
    ExitChainMachine F = ExitChainMachine::fit(Table, N - 1, /*Parity=*/false,
                                               StayOnTaken);
    if (F.Correct > Best.Correct)
      Best = std::move(F);
    Fits += 2;
    L.ByBudget[N] = Best;
  }

  Registry &Obs = Registry::global();
  if (Obs.enabled())
    Obs.counter("search.exit.machines").add(Fits);
  return L;
}

CorrelatedLadder bpcr::buildCorrelatedLadder(int32_t BranchId,
                                             const PathProfile &Profile,
                                             const CorrelatedOptions &Opts,
                                             unsigned MinBudget) {
  Span S("search.correlated.ladder", "search");
  S.arg("branch", static_cast<int64_t>(BranchId));
  S.arg("max_states", static_cast<uint64_t>(Opts.MaxStates));

  CorrelatedLadder L;
  L.MaxStates = Opts.MaxStates;
  L.MinBudget = std::max(2u, std::min(MinBudget, Opts.MaxStates));
  L.ByBudget.resize(Opts.MaxStates + 1);

  // Same downward fill as the intra-loop ladder; path states are
  // independent, so a machine with K states (paths plus catch-all) is
  // feasible — and optimal — at every budget in [K, N].
  unsigned N = Opts.MaxStates;
  while (N >= L.MinBudget) {
    CorrelatedOptions CO = Opts;
    CO.MaxStates = N;
    CorrelatedMachine M =
        buildCorrelatedMachineFromProfile(BranchId, Profile, CO);
    unsigned Floor = std::max(L.MinBudget, std::max(2u, M.numStates()));
    for (unsigned B = N; B >= Floor; --B)
      L.ByBudget[B] = M;
    if (Floor <= L.MinBudget)
      break;
    N = Floor - 1;
  }
  return L;
}

//===----------------------------------------------------------------------===//
// Cache
//===----------------------------------------------------------------------===//

namespace {

/// splitmix64 finalizer: a cheap, well-distributed 64-bit mixer.
uint64_t mix64(uint64_t X) {
  X += 0x9E3779B97F4A7C15ull;
  X = (X ^ (X >> 30)) * 0xBF58476D1CE4E5B9ull;
  X = (X ^ (X >> 27)) * 0x94D049BB133111EBull;
  return X ^ (X >> 31);
}

struct CacheKey {
  uint64_t H1 = 0;
  uint64_t H2 = 0;
  bool operator==(const CacheKey &O) const {
    return H1 == O.H1 && H2 == O.H2;
  }
};

struct CacheKeyHash {
  size_t operator()(const CacheKey &K) const {
    return static_cast<size_t>(K.H1);
  }
};

/// Order-sensitive 128-bit fingerprint accumulator with an
/// order-independent entry point for unordered containers.
struct Fingerprint {
  uint64_t H1 = 0x243F6A8885A308D3ull;
  uint64_t H2 = 0x13198A2E03707344ull;

  void word(uint64_t W) {
    H1 = mix64(H1 ^ W);
    H2 = mix64(H2 + W);
  }

  /// Commutative accumulation: each entry is mixed into two independent
  /// sums, so iteration order of an unordered_map cannot change the key.
  void unorderedEntry(uint64_t A, uint64_t B, uint64_t C) {
    uint64_t E = mix64(mix64(A) ^ mix64(B + 0x452821E638D01377ull) ^
                       mix64(C + 0xBE5466CF34E90C6Cull));
    H1 += E;
    H2 += mix64(E ^ 0xC0AC29B7C97C50DDull);
  }

  CacheKey key() const { return {H1, H2}; }
};

void hashTable(Fingerprint &F, const PatternTable &Table) {
  F.word(Table.maxBits());
  F.word(Table.full().size());
  for (const auto &[Pattern, Counts] : Table.full())
    F.unorderedEntry(Pattern, Counts.Taken, Counts.NotTaken);
}

void hashProfile(Fingerprint &F, const PathProfile &Profile) {
  // PerPath is built from a std::map walk, so its order is deterministic
  // and plain sequential hashing is sound.
  F.word(Profile.PerPath.size());
  for (const auto &[Key, Counts] : Profile.PerPath) {
    F.word(Key.size());
    for (uint32_t Sym : Key)
      F.word(Sym);
    F.word(Counts.Taken);
    F.word(Counts.NotTaken);
  }
  F.word(Profile.Unmatched.Taken);
  F.word(Profile.Unmatched.NotTaken);
}

/// One cache slot; the first requester fills Value, everyone else blocks on
/// the condition variable. Ready/Failed transitions happen under M.
template <typename T> struct Slot {
  std::mutex M;
  std::condition_variable CV;
  std::shared_ptr<const T> Value;
  bool Failed = false;
};

template <typename T> struct Shard {
  struct Entry {
    std::shared_ptr<Slot<T>> S;
    std::list<CacheKey>::iterator LruIt;
  };
  std::unordered_map<CacheKey, Entry, CacheKeyHash> Map;
  /// Front = least recently used.
  std::list<CacheKey> Lru;

  void clear() {
    Map.clear();
    Lru.clear();
  }
};

} // namespace

struct SearchCache::Impl {
  std::mutex Mu;
  Shard<IntraLoopLadder> Intra;
  Shard<ExitLadder> Exit;
  Shard<CorrelatedLadder> Corr;
  /// Per-shard entry cap. Generous on purpose: eviction order depends on
  /// thread timing, so normal runs must never reach it (a full sweep uses
  /// a few entries per branch).
  size_t Capacity = 65536;
  std::atomic<uint64_t> Hits{0};
  std::atomic<uint64_t> Misses{0};
  std::atomic<uint64_t> Evictions{0};

  /// Called under Mu after an insert.
  template <typename T> void maybeEvict(Shard<T> &S) {
    uint64_t Evicted = 0;
    while (S.Map.size() > Capacity && !S.Lru.empty()) {
      // Never evict an in-flight entry: a waiter holds its slot.
      auto VictimIt = S.Lru.begin();
      bool Found = false;
      for (; VictimIt != S.Lru.end(); ++VictimIt) {
        auto MapIt = S.Map.find(*VictimIt);
        bool InFlight;
        {
          std::lock_guard<std::mutex> SlotLock(MapIt->second.S->M);
          InFlight = !MapIt->second.S->Value && !MapIt->second.S->Failed;
        }
        if (!InFlight) {
          S.Map.erase(MapIt);
          S.Lru.erase(VictimIt);
          ++Evicted;
          Found = true;
          break;
        }
      }
      if (!Found)
        break;
    }
    if (Evicted) {
      Evictions.fetch_add(Evicted, std::memory_order_relaxed);
      Registry &Obs = Registry::global();
      if (Obs.enabled())
        Obs.counter("search.cache.evictions").add(Evicted);
    }
  }

  template <typename T, typename BuildFn>
  std::shared_ptr<const T> get(Shard<T> &S, const CacheKey &K,
                               const BuildFn &Build) {
    std::shared_ptr<Slot<T>> SlotPtr;
    bool IsMiss = false;
    Registry &Obs = Registry::global();
    {
      std::lock_guard<std::mutex> Lock(Mu);
      auto It = S.Map.find(K);
      if (It == S.Map.end()) {
        IsMiss = true;
        SlotPtr = std::make_shared<Slot<T>>();
        auto LruIt = S.Lru.insert(S.Lru.end(), K);
        S.Map.emplace(K, typename Shard<T>::Entry{SlotPtr, LruIt});
        maybeEvict(S);
        Misses.fetch_add(1, std::memory_order_relaxed);
      } else {
        // Touch for LRU.
        S.Lru.splice(S.Lru.end(), S.Lru, It->second.LruIt);
        SlotPtr = It->second.S;
        Hits.fetch_add(1, std::memory_order_relaxed);
      }
    }
    if (Obs.enabled())
      Obs.counter(IsMiss ? "search.cache.misses" : "search.cache.hits").inc();

    if (IsMiss) {
      try {
        auto Value = std::make_shared<const T>(Build());
        std::lock_guard<std::mutex> SlotLock(SlotPtr->M);
        SlotPtr->Value = Value;
        SlotPtr->CV.notify_all();
        return Value;
      } catch (...) {
        {
          std::lock_guard<std::mutex> SlotLock(SlotPtr->M);
          SlotPtr->Failed = true;
          SlotPtr->CV.notify_all();
        }
        std::lock_guard<std::mutex> Lock(Mu);
        auto It = S.Map.find(K);
        if (It != S.Map.end() && It->second.S == SlotPtr) {
          S.Lru.erase(It->second.LruIt);
          S.Map.erase(It);
        }
        throw;
      }
    }

    std::unique_lock<std::mutex> SlotLock(SlotPtr->M);
    SlotPtr->CV.wait(SlotLock, [&] { return SlotPtr->Value || SlotPtr->Failed; });
    if (SlotPtr->Value)
      return SlotPtr->Value;
    // The computing thread failed (allocation); fall back to building
    // locally rather than surfacing its exception here.
    SlotLock.unlock();
    return std::make_shared<const T>(Build());
  }
};

SearchCache::SearchCache() : P(std::make_unique<Impl>()) {}
SearchCache::~SearchCache() = default;

SearchCache &SearchCache::global() {
  static SearchCache C;
  return C;
}

std::shared_ptr<const IntraLoopLadder>
SearchCache::intraLoopLadder(const PatternTable &Table,
                             const MachineOptions &Opts, unsigned MinBudget) {
  auto Build = [&] { return buildIntraLoopLadder(Table, Opts, MinBudget); };
  if (!enabled())
    return std::make_shared<const IntraLoopLadder>(Build());
  Fingerprint F;
  F.word(0xA11); // family tag
  F.word(Opts.MaxStates);
  F.word(Opts.MaxPatternLen);
  F.word(Opts.TryTwoBitBase);
  F.word(Opts.Exhaustive);
  F.word(Opts.NodeBudget);
  F.word(MinBudget);
  hashTable(F, Table);
  return P->get(P->Intra, F.key(), Build);
}

std::shared_ptr<const ExitLadder>
SearchCache::exitLadder(const PatternTable &Table, unsigned MaxStates,
                        bool StayOnTaken) {
  auto Build = [&] { return buildExitLadder(Table, MaxStates, StayOnTaken); };
  if (!enabled())
    return std::make_shared<const ExitLadder>(Build());
  Fingerprint F;
  F.word(0xB22); // family tag
  F.word(MaxStates);
  F.word(StayOnTaken);
  hashTable(F, Table);
  return P->get(P->Exit, F.key(), Build);
}

std::shared_ptr<const CorrelatedLadder>
SearchCache::correlatedLadder(int32_t BranchId, const PathProfile &Profile,
                              const CorrelatedOptions &Opts,
                              unsigned MinBudget) {
  auto Build = [&] {
    return buildCorrelatedLadder(BranchId, Profile, Opts, MinBudget);
  };
  if (!enabled())
    return std::make_shared<const CorrelatedLadder>(Build());
  Fingerprint F;
  F.word(0xC33); // family tag
  F.word(static_cast<uint64_t>(static_cast<int64_t>(BranchId)));
  F.word(Opts.MaxStates);
  F.word(Opts.MaxPathLen);
  F.word(Opts.Exhaustive);
  F.word(Opts.NodeBudget);
  F.word(MinBudget);
  hashProfile(F, Profile);
  return P->get(P->Corr, F.key(), Build);
}

void SearchCache::setCapacity(size_t PerShard) {
  std::lock_guard<std::mutex> Lock(P->Mu);
  P->Capacity = std::max<size_t>(1, PerShard);
}

SearchCache::Stats SearchCache::stats() const {
  Stats S;
  S.Hits = P->Hits.load(std::memory_order_relaxed);
  S.Misses = P->Misses.load(std::memory_order_relaxed);
  S.Evictions = P->Evictions.load(std::memory_order_relaxed);
  return S;
}

size_t SearchCache::size() const {
  std::lock_guard<std::mutex> Lock(P->Mu);
  return P->Intra.Map.size() + P->Exit.Map.size() + P->Corr.Map.size();
}

void SearchCache::clear() {
  std::lock_guard<std::mutex> Lock(P->Mu);
  P->Intra.clear();
  P->Exit.clear();
  P->Corr.clear();
  P->Hits.store(0, std::memory_order_relaxed);
  P->Misses.store(0, std::memory_order_relaxed);
  P->Evictions.store(0, std::memory_order_relaxed);
}
