//===- ir/Module.h - IR modules ---------------------------------*- C++ -*-===//
//
// Part of the bpcr project (Krall, PLDI 1994 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A module: the unit the profiler traces and the replicator transforms. It
/// owns the functions, the initial memory image, and the assignment of
/// stable branch ids.
///
//===----------------------------------------------------------------------===//

#ifndef BPCR_IR_MODULE_H
#define BPCR_IR_MODULE_H

#include "ir/Function.h"

#include <cstdint>
#include <string>
#include <vector>

namespace bpcr {

/// Addresses a single conditional branch instruction inside a module.
struct BranchRef {
  uint32_t FuncIdx = 0;
  uint32_t BlockIdx = 0;
  uint32_t InstIdx = 0;
};

/// A whole program: functions, entry point and data memory image.
struct Module {
  std::string Name;
  std::vector<Function> Functions;
  uint32_t EntryFunction = 0;

  /// Words of data memory available to the program.
  uint64_t MemWords = 0;
  /// Initial contents of the low words of memory (rest is zero).
  std::vector<int64_t> InitialMemory;

  /// Adds an empty function; \returns its index.
  uint32_t addFunction(std::string Name, uint32_t NumParams) {
    Function F;
    F.Name = std::move(Name);
    F.NumParams = NumParams;
    F.NumRegs = NumParams;
    Functions.push_back(std::move(F));
    return static_cast<uint32_t>(Functions.size() - 1);
  }

  /// Assigns sequential BranchIds to every conditional branch (in function,
  /// block, instruction order) and mirrors them into OrigBranchId when the
  /// latter is unset. \returns the number of conditional branches.
  uint32_t assignBranchIds();

  /// \returns the location of every conditional branch, indexed by BranchId.
  /// Only meaningful after assignBranchIds().
  std::vector<BranchRef> branchLocations() const;

  /// Total static instruction count across all functions.
  uint64_t instructionCount() const {
    uint64_t N = 0;
    for (const Function &F : Functions)
      N += F.instructionCount();
    return N;
  }

  /// Total static conditional branch count.
  uint64_t conditionalBranchCount() const {
    uint64_t N = 0;
    for (const Function &F : Functions)
      N += F.conditionalBranchCount();
    return N;
  }
};

} // namespace bpcr

#endif // BPCR_IR_MODULE_H
