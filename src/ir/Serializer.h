//===- ir/Serializer.h - Textual module format ------------------*- C++ -*-===//
//
// Part of the bpcr project (Krall, PLDI 1994 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A parseable textual format for modules, so programs (and their
/// replicated transforms) can be saved and reloaded — the file-based
/// workflow of the paper's tooling. The format is line-based:
///
/// \code
/// module compress
/// mem 12384
/// entry 1
/// data 0 100000
/// data 1 4 4 11 ...
/// func verify params 0 regs 6
/// block entry
///   mov r0, 0
///   jmp 1
/// block outer
///   cmpge r3, r0, 99992
///   br r3, 5, 2 predict N id 7
/// ...
/// endfunc
/// \endcode
///
/// Blocks are referenced by index within their function; `data` lines give
/// runs of initial memory words starting at an address. parseModuleText
/// reports the first error with its line number.
///
//===----------------------------------------------------------------------===//

#ifndef BPCR_IR_SERIALIZER_H
#define BPCR_IR_SERIALIZER_H

#include "ir/Module.h"

#include <string>

namespace bpcr {

/// Renders \p M in the textual module format.
std::string writeModuleText(const Module &M);

/// Parses a module from the textual format.
/// \param[out] Error on failure, a message prefixed with the line number.
/// \returns true on success (and \p Out is fully populated).
bool parseModuleText(const std::string &Text, Module &Out,
                     std::string &Error);

/// Convenience file wrappers. \returns false on I/O or parse failure.
bool writeModuleFile(const std::string &Path, const Module &M);
bool readModuleFile(const std::string &Path, Module &Out,
                    std::string &Error);

} // namespace bpcr

#endif // BPCR_IR_SERIALIZER_H
