//===- ir/Instruction.h - IR instructions and operands ----------*- C++ -*-===//
//
// Part of the bpcr project (Krall, PLDI 1994 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A single IR instruction. Instructions are plain values (copyable), which
/// keeps the code-replication transform — the heart of the paper — a matter
/// of copying vectors and remapping block targets.
///
//===----------------------------------------------------------------------===//

#ifndef BPCR_IR_INSTRUCTION_H
#define BPCR_IR_INSTRUCTION_H

#include "ir/Opcode.h"

#include <cassert>
#include <cstdint>
#include <vector>

namespace bpcr {

/// Virtual register index within a function.
using Reg = uint16_t;

/// A register or immediate operand.
struct Operand {
  enum class Kind : uint8_t { None, Reg, Imm };

  Kind K = Kind::None;
  int64_t Val = 0;

  static Operand reg(Reg R) { return {Kind::Reg, static_cast<int64_t>(R)}; }
  static Operand imm(int64_t V) { return {Kind::Imm, V}; }
  static Operand none() { return {}; }

  bool isReg() const { return K == Kind::Reg; }
  bool isImm() const { return K == Kind::Imm; }
  bool isNone() const { return K == Kind::None; }

  Reg asReg() const {
    assert(isReg() && "operand is not a register");
    return static_cast<Reg>(Val);
  }

  bool operator==(const Operand &O) const { return K == O.K && Val == O.Val; }
};

/// Marker for an unassigned branch id.
inline constexpr int32_t NoBranchId = -1;

/// Static prediction attached to a conditional branch.
enum class Prediction : int8_t { Unknown = -1, NotTaken = 0, Taken = 1 };

/// One IR instruction. Field use by opcode:
///  - ALU/compare:  Dst = A op B
///  - Mov:          Dst = A
///  - Load:         Dst = Mem[A + B]
///  - Store:        Mem[A + B] = C
///  - Call:         Dst = Functions[Callee](Args...)
///  - Br:           if (A) goto TrueTarget else FalseTarget
///  - Jmp:          goto TrueTarget
///  - Ret:          return A (0 when A is None)
struct Instruction {
  Opcode Op = Opcode::Mov;
  Reg Dst = 0;
  Operand A, B, C;

  /// Block indexes within the parent function.
  uint32_t TrueTarget = 0;
  uint32_t FalseTarget = 0;

  /// Function index within the module (Call only).
  uint32_t Callee = 0;
  std::vector<Operand> Args;

  /// Stable module-wide id of a conditional branch; NoBranchId otherwise.
  int32_t BranchId = NoBranchId;

  /// For branches created by code replication: the id of the branch in the
  /// original program this one is a copy of. Equal to BranchId for
  /// unreplicated branches once ids are assigned.
  int32_t OrigBranchId = NoBranchId;

  /// Semi-static prediction annotation consumed by the evaluation harness.
  Prediction Predicted = Prediction::Unknown;

  /// True on comparisons whose operands are pointers; drives the Ball-Larus
  /// "pointer" heuristic.
  bool PtrCmp = false;

  bool isTerminator() const { return bpcr::isTerminator(Op); }
  bool isConditionalBranch() const { return Op == Opcode::Br; }
};

} // namespace bpcr

#endif // BPCR_IR_INSTRUCTION_H
