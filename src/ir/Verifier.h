//===- ir/Verifier.h - IR well-formedness checks ----------------*- C++ -*-===//
//
// Part of the bpcr project (Krall, PLDI 1994 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Structural checks run by tests after every construction and after every
/// replication transform: complete blocks, in-range targets/registers,
/// consistent call signatures, valid entry points, and predecessor shape
/// (an entry block with predecessors or a non-entry block with none is
/// rejected — the interpreter never falls through past a terminator, so
/// such blocks either break loop replication's reset assumptions or can
/// never execute at all).
///
/// Findings use the structured sa::Diagnostic schema (PassId "ir-verify")
/// shared with the static-analysis passes in src/sa; verifyModule renders
/// them to strings for the existing call sites. Diagnostic.h is
/// header-only, so this adds no link dependency.
///
//===----------------------------------------------------------------------===//

#ifndef BPCR_IR_VERIFIER_H
#define BPCR_IR_VERIFIER_H

#include "ir/Module.h"
#include "sa/Diagnostic.h"

#include <string>
#include <vector>

namespace bpcr {

/// Checks \p M for structural validity.
/// \returns one structured diagnostic per violation; empty when valid.
std::vector<sa::Diagnostic> verifyModuleDiags(const Module &M);

/// Checks \p M for structural validity.
/// \returns a human-readable message per violation; empty when valid.
std::vector<std::string> verifyModule(const Module &M);

/// Convenience wrapper: true when verifyModule reports nothing.
inline bool isModuleValid(const Module &M) { return verifyModule(M).empty(); }

} // namespace bpcr

#endif // BPCR_IR_VERIFIER_H
