//===- ir/Verifier.h - IR well-formedness checks ----------------*- C++ -*-===//
//
// Part of the bpcr project (Krall, PLDI 1994 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Structural checks run by tests after every construction and after every
/// replication transform: complete blocks, in-range targets/registers,
/// consistent call signatures, valid entry points.
///
//===----------------------------------------------------------------------===//

#ifndef BPCR_IR_VERIFIER_H
#define BPCR_IR_VERIFIER_H

#include "ir/Module.h"

#include <string>
#include <vector>

namespace bpcr {

/// Checks \p M for structural validity.
/// \returns a human-readable message per violation; empty when valid.
std::vector<std::string> verifyModule(const Module &M);

/// Convenience wrapper: true when verifyModule reports nothing.
inline bool isModuleValid(const Module &M) { return verifyModule(M).empty(); }

} // namespace bpcr

#endif // BPCR_IR_VERIFIER_H
