//===- ir/Module.cpp ------------------------------------------------------===//
//
// Part of the bpcr project (Krall, PLDI 1994 reproduction).
//
//===----------------------------------------------------------------------===//

#include "ir/Module.h"

using namespace bpcr;

uint32_t Module::assignBranchIds() {
  int32_t Next = 0;
  for (Function &F : Functions)
    for (BasicBlock &BB : F.Blocks)
      for (Instruction &I : BB.Insts)
        if (I.isConditionalBranch()) {
          I.BranchId = Next;
          if (I.OrigBranchId == NoBranchId)
            I.OrigBranchId = Next;
          ++Next;
        }
  return static_cast<uint32_t>(Next);
}

std::vector<BranchRef> Module::branchLocations() const {
  std::vector<BranchRef> Refs;
  for (uint32_t FI = 0; FI < Functions.size(); ++FI) {
    const Function &F = Functions[FI];
    for (uint32_t BI = 0; BI < F.Blocks.size(); ++BI) {
      const BasicBlock &BB = F.Blocks[BI];
      for (uint32_t II = 0; II < BB.Insts.size(); ++II) {
        const Instruction &I = BB.Insts[II];
        if (!I.isConditionalBranch())
          continue;
        assert(I.BranchId >= 0 && "branch ids not assigned");
        if (static_cast<size_t>(I.BranchId) >= Refs.size())
          Refs.resize(I.BranchId + 1);
        Refs[I.BranchId] = {FI, BI, II};
      }
    }
  }
  return Refs;
}
