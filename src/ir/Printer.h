//===- ir/Printer.h - Textual IR dump ---------------------------*- C++ -*-===//
//
// Part of the bpcr project (Krall, PLDI 1994 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Renders functions and modules as readable text. The examples print small
/// flow graphs (like the paper's figure 1) before and after replication.
///
//===----------------------------------------------------------------------===//

#ifndef BPCR_IR_PRINTER_H
#define BPCR_IR_PRINTER_H

#include "ir/Module.h"

#include <functional>
#include <string>

namespace bpcr {

/// Optional per-instruction annotation hook: whatever it returns (empty =
/// nothing) is appended to the instruction's printed line as a trailing
/// comment. `bpcr explain --annotate` uses it to mark each branch with its
/// strategy and measured miss rate.
using InstrAnnotator = std::function<std::string(const Instruction &)>;

/// Renders a single instruction (no trailing newline).
std::string printInstruction(const Instruction &I, const Function &F,
                             const Module *M = nullptr);

/// Renders a function: one header line, then blocks with indexed labels.
std::string printFunction(const Function &F, const Module *M = nullptr,
                          const InstrAnnotator &Annotate = nullptr);

/// Renders every function in the module.
std::string printModule(const Module &M,
                        const InstrAnnotator &Annotate = nullptr);

} // namespace bpcr

#endif // BPCR_IR_PRINTER_H
