//===- ir/IRBuilder.h - Convenience IR construction -------------*- C++ -*-===//
//
// Part of the bpcr project (Krall, PLDI 1994 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A builder that appends instructions to a function's blocks. The synthetic
/// workloads and all tests construct their programs through this interface.
///
/// Typical usage:
/// \code
///   Module M;
///   uint32_t FIdx = M.addFunction("main", 0);
///   IRBuilder B(M, FIdx);
///   uint32_t Entry = B.newBlock("entry");
///   uint32_t Loop = B.newBlock("loop");
///   B.setInsertPoint(Entry);
///   Reg I = B.newReg();
///   B.movImm(I, 0);
///   B.jmp(Loop);
///   ...
/// \endcode
///
//===----------------------------------------------------------------------===//

#ifndef BPCR_IR_IRBUILDER_H
#define BPCR_IR_IRBUILDER_H

#include "ir/Module.h"

#include <cassert>
#include <string>

namespace bpcr {

/// Appends instructions into one function of a module.
class IRBuilder {
public:
  IRBuilder(Module &M, uint32_t FuncIdx) : M(M), FuncIdx(FuncIdx) {
    assert(FuncIdx < M.Functions.size() && "no such function");
  }

  Function &func() { return M.Functions[FuncIdx]; }
  uint32_t funcIdx() const { return FuncIdx; }

  /// Allocates a fresh virtual register.
  Reg newReg() {
    assert(func().NumRegs < 65535 && "register space exhausted");
    return static_cast<Reg>(func().NumRegs++);
  }

  /// Appends an empty block; \returns its index.
  uint32_t newBlock(std::string Name) {
    BasicBlock BB;
    BB.Name = std::move(Name);
    func().Blocks.push_back(std::move(BB));
    return static_cast<uint32_t>(func().Blocks.size() - 1);
  }

  /// Directs subsequent instructions into \p BlockIdx.
  void setInsertPoint(uint32_t BlockIdx) {
    assert(BlockIdx < func().Blocks.size() && "no such block");
    Cur = BlockIdx;
  }

  uint32_t insertPoint() const { return Cur; }

  // -- Data movement -------------------------------------------------------

  void mov(Reg Dst, Operand Src) { emitAB(Opcode::Mov, Dst, Src, {}); }
  void movImm(Reg Dst, int64_t V) { mov(Dst, Operand::imm(V)); }
  void movReg(Reg Dst, Reg Src) { mov(Dst, Operand::reg(Src)); }

  // -- Arithmetic / logic ----------------------------------------------------

  void add(Reg Dst, Operand A, Operand B) { emitAB(Opcode::Add, Dst, A, B); }
  void sub(Reg Dst, Operand A, Operand B) { emitAB(Opcode::Sub, Dst, A, B); }
  void mul(Reg Dst, Operand A, Operand B) { emitAB(Opcode::Mul, Dst, A, B); }
  void div(Reg Dst, Operand A, Operand B) { emitAB(Opcode::Div, Dst, A, B); }
  void rem(Reg Dst, Operand A, Operand B) { emitAB(Opcode::Rem, Dst, A, B); }
  void band(Reg Dst, Operand A, Operand B) { emitAB(Opcode::And, Dst, A, B); }
  void bor(Reg Dst, Operand A, Operand B) { emitAB(Opcode::Or, Dst, A, B); }
  void bxor(Reg Dst, Operand A, Operand B) { emitAB(Opcode::Xor, Dst, A, B); }
  void shl(Reg Dst, Operand A, Operand B) { emitAB(Opcode::Shl, Dst, A, B); }
  void shr(Reg Dst, Operand A, Operand B) { emitAB(Opcode::Shr, Dst, A, B); }

  // -- Comparisons -----------------------------------------------------------

  void cmp(Opcode CmpOp, Reg Dst, Operand A, Operand B, bool PtrCmp = false) {
    assert(isCompare(CmpOp) && "not a comparison opcode");
    Instruction I;
    I.Op = CmpOp;
    I.Dst = Dst;
    I.A = A;
    I.B = B;
    I.PtrCmp = PtrCmp;
    append(std::move(I));
  }

  void cmpEq(Reg Dst, Operand A, Operand B) { cmp(Opcode::CmpEq, Dst, A, B); }
  void cmpNe(Reg Dst, Operand A, Operand B) { cmp(Opcode::CmpNe, Dst, A, B); }
  void cmpLt(Reg Dst, Operand A, Operand B) { cmp(Opcode::CmpLt, Dst, A, B); }
  void cmpLe(Reg Dst, Operand A, Operand B) { cmp(Opcode::CmpLe, Dst, A, B); }
  void cmpGt(Reg Dst, Operand A, Operand B) { cmp(Opcode::CmpGt, Dst, A, B); }
  void cmpGe(Reg Dst, Operand A, Operand B) { cmp(Opcode::CmpGe, Dst, A, B); }

  // -- Memory ----------------------------------------------------------------

  /// Dst = Mem[Base + Off].
  void load(Reg Dst, Operand Base, Operand Off) {
    emitAB(Opcode::Load, Dst, Base, Off);
  }

  /// Mem[Base + Off] = Val.
  void store(Operand Base, Operand Off, Operand Val) {
    Instruction I;
    I.Op = Opcode::Store;
    I.A = Base;
    I.B = Off;
    I.C = Val;
    append(std::move(I));
  }

  // -- Calls -----------------------------------------------------------------

  void call(Reg Dst, uint32_t Callee, std::vector<Operand> Args) {
    Instruction I;
    I.Op = Opcode::Call;
    I.Dst = Dst;
    I.Callee = Callee;
    I.Args = std::move(Args);
    append(std::move(I));
  }

  // -- Terminators -----------------------------------------------------------

  /// if (Cond != 0) goto TrueBlock else FalseBlock.
  void br(Operand Cond, uint32_t TrueBlock, uint32_t FalseBlock) {
    Instruction I;
    I.Op = Opcode::Br;
    I.A = Cond;
    I.TrueTarget = TrueBlock;
    I.FalseTarget = FalseBlock;
    append(std::move(I));
  }

  void jmp(uint32_t Target) {
    Instruction I;
    I.Op = Opcode::Jmp;
    I.TrueTarget = Target;
    append(std::move(I));
  }

  void ret(Operand Val = Operand::none()) {
    Instruction I;
    I.Op = Opcode::Ret;
    I.A = Val;
    append(std::move(I));
  }

private:
  void emitAB(Opcode Op, Reg Dst, Operand A, Operand B) {
    Instruction I;
    I.Op = Op;
    I.Dst = Dst;
    I.A = A;
    I.B = B;
    append(std::move(I));
  }

  void append(Instruction I) {
    assert(Cur < func().Blocks.size() && "no insertion point set");
    BasicBlock &BB = func().Blocks[Cur];
    assert(!BB.isComplete() && "appending past a terminator");
    BB.Insts.push_back(std::move(I));
  }

  Module &M;
  uint32_t FuncIdx;
  uint32_t Cur = ~0U;
};

} // namespace bpcr

#endif // BPCR_IR_IRBUILDER_H
