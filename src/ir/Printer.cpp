//===- ir/Printer.cpp -----------------------------------------------------===//
//
// Part of the bpcr project (Krall, PLDI 1994 reproduction).
//
//===----------------------------------------------------------------------===//

#include "ir/Printer.h"

#include <cstdio>

using namespace bpcr;

namespace {

std::string printOperand(const Operand &O) {
  char Buf[32];
  switch (O.K) {
  case Operand::Kind::None:
    return "_";
  case Operand::Kind::Reg:
    std::snprintf(Buf, sizeof(Buf), "r%lld", static_cast<long long>(O.Val));
    return Buf;
  case Operand::Kind::Imm:
    std::snprintf(Buf, sizeof(Buf), "%lld", static_cast<long long>(O.Val));
    return Buf;
  }
  return "?";
}

std::string blockLabel(const Function &F, uint32_t Idx) {
  char Buf[64];
  if (Idx < F.Blocks.size() && !F.Blocks[Idx].Name.empty()) {
    std::snprintf(Buf, sizeof(Buf), "%%%u(%s)", Idx,
                  F.Blocks[Idx].Name.c_str());
    return Buf;
  }
  std::snprintf(Buf, sizeof(Buf), "%%%u", Idx);
  return Buf;
}

} // namespace

std::string bpcr::printInstruction(const Instruction &I, const Function &F,
                                   const Module *M) {
  std::string S;
  char Buf[64];

  switch (I.Op) {
  case Opcode::Br:
    S = "br ";
    S += printOperand(I.A);
    S += " ? " + blockLabel(F, I.TrueTarget);
    S += " : " + blockLabel(F, I.FalseTarget);
    if (I.BranchId != NoBranchId) {
      std::snprintf(Buf, sizeof(Buf), "  ; id=%d", I.BranchId);
      S += Buf;
      if (I.OrigBranchId != I.BranchId) {
        std::snprintf(Buf, sizeof(Buf), " orig=%d", I.OrigBranchId);
        S += Buf;
      }
    }
    if (I.Predicted != Prediction::Unknown)
      S += (I.Predicted == Prediction::Taken) ? " predict=T" : " predict=N";
    return S;
  case Opcode::Jmp:
    return "jmp " + blockLabel(F, I.TrueTarget);
  case Opcode::Ret:
    return "ret " + printOperand(I.A);
  case Opcode::Store:
    return "store [" + printOperand(I.A) + " + " + printOperand(I.B) +
           "] = " + printOperand(I.C);
  case Opcode::Load:
    std::snprintf(Buf, sizeof(Buf), "r%u = load [", I.Dst);
    return Buf + printOperand(I.A) + " + " + printOperand(I.B) + "]";
  case Opcode::Call: {
    const char *Callee = "?";
    if (M && I.Callee < M->Functions.size())
      Callee = M->Functions[I.Callee].Name.c_str();
    std::snprintf(Buf, sizeof(Buf), "r%u = call %s(", I.Dst, Callee);
    S = Buf;
    for (size_t AI = 0; AI < I.Args.size(); ++AI) {
      if (AI)
        S += ", ";
      S += printOperand(I.Args[AI]);
    }
    S += ")";
    return S;
  }
  case Opcode::Mov:
    std::snprintf(Buf, sizeof(Buf), "r%u = ", I.Dst);
    return Buf + printOperand(I.A);
  default:
    std::snprintf(Buf, sizeof(Buf), "r%u = %s ", I.Dst, opcodeName(I.Op));
    S = Buf + printOperand(I.A) + ", " + printOperand(I.B);
    if (I.PtrCmp)
      S += "  ; ptr";
    return S;
  }
}

std::string bpcr::printFunction(const Function &F, const Module *M,
                                const InstrAnnotator &Annotate) {
  std::string S;
  char Buf[128];
  std::snprintf(Buf, sizeof(Buf), "func %s(params=%u, regs=%u) {\n",
                F.Name.c_str(), F.NumParams, F.NumRegs);
  S = Buf;
  for (uint32_t BI = 0; BI < F.Blocks.size(); ++BI) {
    const BasicBlock &BB = F.Blocks[BI];
    std::snprintf(Buf, sizeof(Buf), "%%%u %s:\n", BI, BB.Name.c_str());
    S += Buf;
    for (const Instruction &I : BB.Insts) {
      S += "  ";
      S += printInstruction(I, F, M);
      if (Annotate) {
        std::string Note = Annotate(I);
        if (!Note.empty()) {
          S += "  ; ";
          S += Note;
        }
      }
      S += '\n';
    }
  }
  S += "}\n";
  return S;
}

std::string bpcr::printModule(const Module &M, const InstrAnnotator &Annotate) {
  std::string S = "module " + M.Name + "\n";
  for (const Function &F : M.Functions)
    S += printFunction(F, &M, Annotate);
  return S;
}
