//===- ir/Function.h - IR functions -----------------------------*- C++ -*-===//
//
// Part of the bpcr project (Krall, PLDI 1994 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A function: a register count, a parameter count and a vector of basic
/// blocks. Block 0 is the entry. Registers are mutable locals (the IR is not
/// SSA), which keeps block cloning for code replication free of phi rewiring.
///
//===----------------------------------------------------------------------===//

#ifndef BPCR_IR_FUNCTION_H
#define BPCR_IR_FUNCTION_H

#include "ir/BasicBlock.h"

#include <cstdint>
#include <string>
#include <vector>

namespace bpcr {

/// A function with entry block 0. Arguments arrive in registers
/// 0..NumParams-1.
struct Function {
  std::string Name;
  uint32_t NumParams = 0;
  uint32_t NumRegs = 0;
  std::vector<BasicBlock> Blocks;

  /// Total static instruction count: the paper's code-size measure.
  uint64_t instructionCount() const {
    uint64_t N = 0;
    for (const BasicBlock &BB : Blocks)
      N += BB.Insts.size();
    return N;
  }

  /// Number of static conditional branches.
  uint64_t conditionalBranchCount() const {
    uint64_t N = 0;
    for (const BasicBlock &BB : Blocks)
      for (const Instruction &I : BB.Insts)
        if (I.isConditionalBranch())
          ++N;
    return N;
  }
};

} // namespace bpcr

#endif // BPCR_IR_FUNCTION_H
