//===- ir/Serializer.cpp --------------------------------------------------===//
//
// Part of the bpcr project (Krall, PLDI 1994 reproduction).
//
//===----------------------------------------------------------------------===//

#include "ir/Serializer.h"

#include <cctype>
#include <cstdio>
#include <cstring>
#include <vector>

using namespace bpcr;

// -- Writing -----------------------------------------------------------------

namespace {

void writeOperand(std::string &Out, const Operand &O) {
  char Buf[32];
  switch (O.K) {
  case Operand::Kind::None:
    Out += '_';
    return;
  case Operand::Kind::Reg:
    std::snprintf(Buf, sizeof(Buf), "r%lld", static_cast<long long>(O.Val));
    Out += Buf;
    return;
  case Operand::Kind::Imm:
    std::snprintf(Buf, sizeof(Buf), "%lld", static_cast<long long>(O.Val));
    Out += Buf;
    return;
  }
}

void writeInstruction(std::string &Out, const Instruction &I) {
  char Buf[64];
  Out += "  ";
  Out += opcodeName(I.Op);
  Out += ' ';
  switch (I.Op) {
  case Opcode::Br:
    writeOperand(Out, I.A);
    std::snprintf(Buf, sizeof(Buf), ", %u, %u", I.TrueTarget, I.FalseTarget);
    Out += Buf;
    if (I.Predicted != Prediction::Unknown) {
      Out += " predict ";
      Out += (I.Predicted == Prediction::Taken) ? 'T' : 'N';
    }
    if (I.BranchId != NoBranchId) {
      std::snprintf(Buf, sizeof(Buf), " id %d", I.BranchId);
      Out += Buf;
    }
    if (I.OrigBranchId != NoBranchId && I.OrigBranchId != I.BranchId) {
      std::snprintf(Buf, sizeof(Buf), " orig %d", I.OrigBranchId);
      Out += Buf;
    }
    break;
  case Opcode::Jmp:
    std::snprintf(Buf, sizeof(Buf), "%u", I.TrueTarget);
    Out += Buf;
    break;
  case Opcode::Ret:
    writeOperand(Out, I.A);
    break;
  case Opcode::Store:
    writeOperand(Out, I.A);
    Out += ", ";
    writeOperand(Out, I.B);
    Out += ", ";
    writeOperand(Out, I.C);
    break;
  case Opcode::Call: {
    std::snprintf(Buf, sizeof(Buf), "r%u, %u", I.Dst, I.Callee);
    Out += Buf;
    for (const Operand &Arg : I.Args) {
      Out += ", ";
      writeOperand(Out, Arg);
    }
    break;
  }
  case Opcode::Mov:
    std::snprintf(Buf, sizeof(Buf), "r%u, ", I.Dst);
    Out += Buf;
    writeOperand(Out, I.A);
    break;
  default: // ALU, compares, Load
    std::snprintf(Buf, sizeof(Buf), "r%u, ", I.Dst);
    Out += Buf;
    writeOperand(Out, I.A);
    Out += ", ";
    writeOperand(Out, I.B);
    if (isCompare(I.Op) && I.PtrCmp)
      Out += " ptr";
    break;
  }
  Out += '\n';
}

} // namespace

std::string bpcr::writeModuleText(const Module &M) {
  std::string Out;
  char Buf[96];
  Out += "module " + (M.Name.empty() ? std::string("unnamed") : M.Name) +
         "\n";
  std::snprintf(Buf, sizeof(Buf), "mem %llu\n",
                static_cast<unsigned long long>(M.MemWords));
  Out += Buf;
  std::snprintf(Buf, sizeof(Buf), "entry %u\n", M.EntryFunction);
  Out += Buf;

  // Initial memory as runs of up to 16 words, skipping zero runs.
  size_t I = 0;
  while (I < M.InitialMemory.size()) {
    if (M.InitialMemory[I] == 0) {
      ++I;
      continue;
    }
    size_t End = I;
    while (End < M.InitialMemory.size() && End - I < 16 &&
           M.InitialMemory[End] != 0)
      ++End;
    std::snprintf(Buf, sizeof(Buf), "data %zu", I);
    Out += Buf;
    for (size_t J = I; J < End; ++J) {
      std::snprintf(Buf, sizeof(Buf), " %lld",
                    static_cast<long long>(M.InitialMemory[J]));
      Out += Buf;
    }
    Out += '\n';
    I = End;
  }

  for (const Function &F : M.Functions) {
    std::snprintf(Buf, sizeof(Buf), "func %s params %u regs %u\n",
                  F.Name.empty() ? "unnamed" : F.Name.c_str(), F.NumParams,
                  F.NumRegs);
    Out += Buf;
    for (const BasicBlock &BB : F.Blocks) {
      Out += "block " + (BB.Name.empty() ? std::string("b") : BB.Name) +
             "\n";
      for (const Instruction &Ins : BB.Insts)
        writeInstruction(Out, Ins);
    }
    Out += "endfunc\n";
  }
  return Out;
}

// -- Parsing -----------------------------------------------------------------

namespace {

/// Splits a line into whitespace/comma separated tokens.
std::vector<std::string> tokenize(const std::string &Line) {
  std::vector<std::string> Out;
  std::string Cur;
  for (char C : Line) {
    if (std::isspace(static_cast<unsigned char>(C)) || C == ',') {
      if (!Cur.empty()) {
        Out.push_back(Cur);
        Cur.clear();
      }
      continue;
    }
    Cur += C;
  }
  if (!Cur.empty())
    Out.push_back(Cur);
  return Out;
}

bool parseInt(const std::string &Tok, int64_t &V) {
  if (Tok.empty())
    return false;
  char *End = nullptr;
  V = std::strtoll(Tok.c_str(), &End, 10);
  return End && *End == '\0';
}

bool parseOperand(const std::string &Tok, Operand &O) {
  if (Tok == "_") {
    O = Operand::none();
    return true;
  }
  if (Tok.size() >= 2 && Tok[0] == 'r') {
    int64_t R = 0;
    if (!parseInt(Tok.substr(1), R) || R < 0 || R > 65535)
      return false;
    O = Operand::reg(static_cast<Reg>(R));
    return true;
  }
  int64_t V = 0;
  if (!parseInt(Tok, V))
    return false;
  O = Operand::imm(V);
  return true;
}

bool parseReg(const std::string &Tok, Reg &R) {
  Operand O;
  if (!parseOperand(Tok, O) || !O.isReg())
    return false;
  R = O.asReg();
  return true;
}

Opcode opcodeByName(const std::string &Name, bool &Ok) {
  static const struct {
    const char *Name;
    Opcode Op;
  } Table[] = {
      {"mov", Opcode::Mov},     {"add", Opcode::Add},
      {"sub", Opcode::Sub},     {"mul", Opcode::Mul},
      {"div", Opcode::Div},     {"rem", Opcode::Rem},
      {"and", Opcode::And},     {"or", Opcode::Or},
      {"xor", Opcode::Xor},     {"shl", Opcode::Shl},
      {"shr", Opcode::Shr},     {"cmpeq", Opcode::CmpEq},
      {"cmpne", Opcode::CmpNe}, {"cmplt", Opcode::CmpLt},
      {"cmple", Opcode::CmpLe}, {"cmpgt", Opcode::CmpGt},
      {"cmpge", Opcode::CmpGe}, {"load", Opcode::Load},
      {"store", Opcode::Store}, {"call", Opcode::Call},
      {"br", Opcode::Br},       {"jmp", Opcode::Jmp},
      {"ret", Opcode::Ret},
  };
  for (const auto &E : Table)
    if (Name == E.Name) {
      Ok = true;
      return E.Op;
    }
  Ok = false;
  return Opcode::Mov;
}

} // namespace

bool bpcr::parseModuleText(const std::string &Text, Module &Out,
                           std::string &Error) {
  Out = Module();
  Function *CurFunc = nullptr;
  BasicBlock *CurBlock = nullptr;

  size_t LineNo = 0;
  size_t Pos = 0;
  auto Fail = [&](const std::string &Msg) {
    Error = "line " + std::to_string(LineNo) + ": " + Msg;
    return false;
  };

  while (Pos < Text.size()) {
    size_t Eol = Text.find('\n', Pos);
    if (Eol == std::string::npos)
      Eol = Text.size();
    std::string Line = Text.substr(Pos, Eol - Pos);
    Pos = Eol + 1;
    ++LineNo;

    // Strip comments.
    size_t Hash = Line.find('#');
    if (Hash != std::string::npos)
      Line.resize(Hash);
    std::vector<std::string> Tok = tokenize(Line);
    if (Tok.empty())
      continue;

    const std::string &Kw = Tok[0];
    if (Kw == "module") {
      if (Tok.size() != 2)
        return Fail("expected 'module <name>'");
      Out.Name = Tok[1];
      continue;
    }
    if (Kw == "mem") {
      int64_t V = 0;
      if (Tok.size() != 2 || !parseInt(Tok[1], V) || V < 0)
        return Fail("expected 'mem <words>'");
      Out.MemWords = static_cast<uint64_t>(V);
      continue;
    }
    if (Kw == "entry") {
      int64_t V = 0;
      if (Tok.size() != 2 || !parseInt(Tok[1], V) || V < 0)
        return Fail("expected 'entry <funcIdx>'");
      Out.EntryFunction = static_cast<uint32_t>(V);
      continue;
    }
    if (Kw == "data") {
      int64_t Start = 0;
      if (Tok.size() < 3 || !parseInt(Tok[1], Start) || Start < 0)
        return Fail("expected 'data <addr> <words...>'");
      size_t Need = static_cast<size_t>(Start) + Tok.size() - 2;
      if (Out.InitialMemory.size() < Need)
        Out.InitialMemory.resize(Need, 0);
      for (size_t I = 2; I < Tok.size(); ++I) {
        int64_t V = 0;
        if (!parseInt(Tok[I], V))
          return Fail("bad data word '" + Tok[I] + "'");
        Out.InitialMemory[static_cast<size_t>(Start) + I - 2] = V;
      }
      continue;
    }
    if (Kw == "func") {
      if (Tok.size() != 6 || Tok[2] != "params" || Tok[4] != "regs")
        return Fail("expected 'func <name> params <n> regs <n>'");
      int64_t Params = 0, Regs = 0;
      if (!parseInt(Tok[3], Params) || !parseInt(Tok[5], Regs) ||
          Params < 0 || Regs < 0 || Regs > 65535 || Params > Regs)
        return Fail("bad func header counts");
      Function F;
      F.Name = Tok[1];
      F.NumParams = static_cast<uint32_t>(Params);
      F.NumRegs = static_cast<uint32_t>(Regs);
      Out.Functions.push_back(std::move(F));
      CurFunc = &Out.Functions.back();
      CurBlock = nullptr;
      continue;
    }
    if (Kw == "endfunc") {
      if (!CurFunc)
        return Fail("'endfunc' outside a function");
      CurFunc = nullptr;
      CurBlock = nullptr;
      continue;
    }
    if (Kw == "block") {
      if (!CurFunc)
        return Fail("'block' outside a function");
      if (Tok.size() != 2)
        return Fail("expected 'block <name>'");
      BasicBlock BB;
      BB.Name = Tok[1];
      CurFunc->Blocks.push_back(std::move(BB));
      CurBlock = &CurFunc->Blocks.back();
      continue;
    }

    // An instruction line.
    if (!CurBlock)
      return Fail("instruction outside a block");
    bool Ok = false;
    Instruction I;
    I.Op = opcodeByName(Kw, Ok);
    if (!Ok)
      return Fail("unknown opcode '" + Kw + "'");

    auto NeedTokens = [&](size_t N) {
      return Tok.size() >= N;
    };

    switch (I.Op) {
    case Opcode::Br: {
      int64_t TT = 0, FT = 0;
      if (!NeedTokens(4) || !parseOperand(Tok[1], I.A) ||
          !parseInt(Tok[2], TT) || !parseInt(Tok[3], FT) || TT < 0 || FT < 0)
        return Fail("expected 'br <cond>, <trueBlk>, <falseBlk> ...'");
      I.TrueTarget = static_cast<uint32_t>(TT);
      I.FalseTarget = static_cast<uint32_t>(FT);
      // Optional annotations in any order: predict T|N, id N, orig N.
      for (size_t T = 4; T < Tok.size();) {
        if (Tok[T] == "predict" && T + 1 < Tok.size()) {
          if (Tok[T + 1] == "T")
            I.Predicted = Prediction::Taken;
          else if (Tok[T + 1] == "N")
            I.Predicted = Prediction::NotTaken;
          else
            return Fail("bad predict annotation");
          T += 2;
        } else if ((Tok[T] == "id" || Tok[T] == "orig") &&
                   T + 1 < Tok.size()) {
          int64_t V = 0;
          if (!parseInt(Tok[T + 1], V))
            return Fail("bad branch id");
          if (Tok[T] == "id")
            I.BranchId = static_cast<int32_t>(V);
          else
            I.OrigBranchId = static_cast<int32_t>(V);
          T += 2;
        } else {
          return Fail("bad branch annotation '" + Tok[T] + "'");
        }
      }
      if (I.OrigBranchId == NoBranchId)
        I.OrigBranchId = I.BranchId;
      break;
    }
    case Opcode::Jmp: {
      int64_t T = 0;
      if (!NeedTokens(2) || !parseInt(Tok[1], T) || T < 0)
        return Fail("expected 'jmp <blk>'");
      I.TrueTarget = static_cast<uint32_t>(T);
      break;
    }
    case Opcode::Ret:
      if (!NeedTokens(2) || !parseOperand(Tok[1], I.A))
        return Fail("expected 'ret <val>'");
      break;
    case Opcode::Store:
      if (!NeedTokens(4) || !parseOperand(Tok[1], I.A) ||
          !parseOperand(Tok[2], I.B) || !parseOperand(Tok[3], I.C))
        return Fail("expected 'store <base>, <off>, <val>'");
      break;
    case Opcode::Call: {
      int64_t Callee = 0;
      if (!NeedTokens(3) || !parseReg(Tok[1], I.Dst) ||
          !parseInt(Tok[2], Callee) || Callee < 0)
        return Fail("expected 'call r<dst>, <funcIdx>, <args...>'");
      I.Callee = static_cast<uint32_t>(Callee);
      for (size_t T = 3; T < Tok.size(); ++T) {
        Operand Arg;
        if (!parseOperand(Tok[T], Arg))
          return Fail("bad call argument '" + Tok[T] + "'");
        I.Args.push_back(Arg);
      }
      break;
    }
    case Opcode::Mov:
      if (!NeedTokens(3) || !parseReg(Tok[1], I.Dst) ||
          !parseOperand(Tok[2], I.A))
        return Fail("expected 'mov r<dst>, <src>'");
      break;
    default: // ALU / compares / Load
      if (!NeedTokens(4) || !parseReg(Tok[1], I.Dst) ||
          !parseOperand(Tok[2], I.A) || !parseOperand(Tok[3], I.B))
        return Fail("expected '<op> r<dst>, <a>, <b>'");
      if (Tok.size() == 5 && Tok[4] == "ptr" && isCompare(I.Op))
        I.PtrCmp = true;
      else if (Tok.size() > 4)
        return Fail("trailing tokens after instruction");
      break;
    }

    CurBlock->Insts.push_back(std::move(I));
  }

  if (CurFunc)
    return Fail("missing 'endfunc' at end of input");
  if (Out.Functions.empty())
    return Fail("module has no functions");
  if (Out.InitialMemory.size() > Out.MemWords)
    return Fail("data section exceeds declared memory size");
  Error.clear();
  return true;
}

bool bpcr::writeModuleFile(const std::string &Path, const Module &M) {
  std::string Text = writeModuleText(M);
  std::FILE *F = std::fopen(Path.c_str(), "w");
  if (!F)
    return false;
  size_t Written = std::fwrite(Text.data(), 1, Text.size(), F);
  bool Ok = Written == Text.size();
  Ok &= std::fclose(F) == 0;
  return Ok;
}

bool bpcr::readModuleFile(const std::string &Path, Module &Out,
                          std::string &Error) {
  std::FILE *F = std::fopen(Path.c_str(), "r");
  if (!F) {
    Error = "cannot open " + Path;
    return false;
  }
  std::string Text;
  char Chunk[65536];
  size_t N;
  while ((N = std::fread(Chunk, 1, sizeof(Chunk), F)) > 0)
    Text.append(Chunk, N);
  std::fclose(F);
  return parseModuleText(Text, Out, Error);
}
