//===- ir/Opcode.h - IR operation codes -------------------------*- C++ -*-===//
//
// Part of the bpcr project (Krall, PLDI 1994 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The operation set of the small register-machine IR used as the substrate
/// for the paper's profiling and code-replication experiments. The set is
/// deliberately close to what the paper's MIPS-level tool saw: ALU ops,
/// comparisons, memory, calls and the three terminators.
///
//===----------------------------------------------------------------------===//

#ifndef BPCR_IR_OPCODE_H
#define BPCR_IR_OPCODE_H

#include <cstdint>

namespace bpcr {

/// IR operation codes.
enum class Opcode : uint8_t {
  // Dst = A.
  Mov,
  // Dst = A op B (signed 64-bit; Div/Rem by zero yield 0).
  Add,
  Sub,
  Mul,
  Div,
  Rem,
  And,
  Or,
  Xor,
  Shl,
  Shr,
  // Dst = (A cmp B) ? 1 : 0 (signed).
  CmpEq,
  CmpNe,
  CmpLt,
  CmpLe,
  CmpGt,
  CmpGe,
  // Dst = Mem[A + B].
  Load,
  // Mem[A + B] = C.
  Store,
  // Dst = call Callee(Args...).
  Call,
  // Terminators: if (A != 0) goto TrueTarget else goto FalseTarget.
  Br,
  // goto TrueTarget.
  Jmp,
  // return A.
  Ret,
};

/// \returns a short mnemonic for \p Op ("add", "br", ...).
const char *opcodeName(Opcode Op);

/// \returns true for Br/Jmp/Ret, the instructions that end a basic block.
inline bool isTerminator(Opcode Op) {
  return Op == Opcode::Br || Op == Opcode::Jmp || Op == Opcode::Ret;
}

/// \returns true for the six comparison opcodes.
inline bool isCompare(Opcode Op) {
  return Op >= Opcode::CmpEq && Op <= Opcode::CmpGe;
}

/// \returns true for opcodes that write a destination register.
inline bool writesRegister(Opcode Op) {
  return Op == Opcode::Mov || (Op >= Opcode::Add && Op <= Opcode::CmpGe) ||
         Op == Opcode::Load || Op == Opcode::Call;
}

} // namespace bpcr

#endif // BPCR_IR_OPCODE_H
