//===- ir/BasicBlock.h - IR basic blocks ------------------------*- C++ -*-===//
//
// Part of the bpcr project (Krall, PLDI 1994 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A basic block: a named straight-line instruction sequence ending in a
/// terminator. Blocks are indexed by position within their function; all
/// control-flow targets are such indexes.
///
//===----------------------------------------------------------------------===//

#ifndef BPCR_IR_BASICBLOCK_H
#define BPCR_IR_BASICBLOCK_H

#include "ir/Instruction.h"

#include <string>
#include <vector>

namespace bpcr {

/// A straight-line sequence of instructions ending in Br/Jmp/Ret.
struct BasicBlock {
  std::string Name;
  std::vector<Instruction> Insts;

  /// The block terminator. Only valid once the block is complete.
  const Instruction &terminator() const {
    assert(!Insts.empty() && "block has no instructions");
    assert(Insts.back().isTerminator() && "block lacks a terminator");
    return Insts.back();
  }

  Instruction &terminator() {
    assert(!Insts.empty() && Insts.back().isTerminator() &&
           "block lacks a terminator");
    return Insts.back();
  }

  /// True once the block ends in a terminator.
  bool isComplete() const {
    return !Insts.empty() && Insts.back().isTerminator();
  }

  /// Successor block indexes in (true, false) order; empty for Ret.
  std::vector<uint32_t> successors() const {
    const Instruction &T = terminator();
    switch (T.Op) {
    case Opcode::Br:
      return {T.TrueTarget, T.FalseTarget};
    case Opcode::Jmp:
      return {T.TrueTarget};
    default:
      return {};
    }
  }
};

} // namespace bpcr

#endif // BPCR_IR_BASICBLOCK_H
