//===- ir/Opcode.cpp ------------------------------------------------------===//
//
// Part of the bpcr project (Krall, PLDI 1994 reproduction).
//
//===----------------------------------------------------------------------===//

#include "ir/Opcode.h"

#include <cassert>

using namespace bpcr;

const char *bpcr::opcodeName(Opcode Op) {
  switch (Op) {
  case Opcode::Mov:
    return "mov";
  case Opcode::Add:
    return "add";
  case Opcode::Sub:
    return "sub";
  case Opcode::Mul:
    return "mul";
  case Opcode::Div:
    return "div";
  case Opcode::Rem:
    return "rem";
  case Opcode::And:
    return "and";
  case Opcode::Or:
    return "or";
  case Opcode::Xor:
    return "xor";
  case Opcode::Shl:
    return "shl";
  case Opcode::Shr:
    return "shr";
  case Opcode::CmpEq:
    return "cmpeq";
  case Opcode::CmpNe:
    return "cmpne";
  case Opcode::CmpLt:
    return "cmplt";
  case Opcode::CmpLe:
    return "cmple";
  case Opcode::CmpGt:
    return "cmpgt";
  case Opcode::CmpGe:
    return "cmpge";
  case Opcode::Load:
    return "load";
  case Opcode::Store:
    return "store";
  case Opcode::Call:
    return "call";
  case Opcode::Br:
    return "br";
  case Opcode::Jmp:
    return "jmp";
  case Opcode::Ret:
    return "ret";
  }
  assert(false && "unknown opcode");
  return "<bad>";
}
