//===- ir/Verifier.cpp ----------------------------------------------------===//
//
// Part of the bpcr project (Krall, PLDI 1994 reproduction).
//
//===----------------------------------------------------------------------===//

#include "ir/Verifier.h"

using namespace bpcr;
using sa::Diagnostic;
using sa::Location;
using sa::Severity;

namespace {

/// Accumulates diagnostics under the fixed "ir-verify" pass id.
class Diags {
public:
  std::vector<Diagnostic> All;

  Diagnostic &error(const char *Rule, Location Loc, std::string Msg) {
    All.push_back(sa::makeDiag(Severity::Error, "ir-verify", Rule,
                               std::move(Loc), std::move(Msg)));
    return All.back();
  }
};

Location moduleLoc() { return Location{}; }

Location funcLoc(const Function &F, uint32_t FI) {
  Location Loc;
  Loc.FuncIdx = static_cast<int32_t>(FI);
  Loc.FuncName = F.Name;
  return Loc;
}

Location blockLoc(const Function &F, uint32_t FI, size_t BI,
                  int32_t II = -1) {
  Location Loc = funcLoc(F, FI);
  Loc.BlockIdx = static_cast<int32_t>(BI);
  Loc.BlockName = F.Blocks[BI].Name;
  Loc.InstIdx = II;
  return Loc;
}

void checkOperand(Diags &D, const Function &F, uint32_t FI, const Operand &O,
                  const char *Role, size_t BI, size_t II) {
  if (O.isReg() && O.Val >= static_cast<int64_t>(F.NumRegs))
    D.error("operand-range", blockLoc(F, FI, BI, static_cast<int32_t>(II)),
            std::string(Role) + " register r" + std::to_string(O.Val) +
                " out of range (" + std::to_string(F.NumRegs) + " regs)");
}

void checkFunction(Diags &D, const Module &M, uint32_t FI) {
  const Function &F = M.Functions[FI];
  if (F.Blocks.empty()) {
    D.error("no-blocks", funcLoc(F, FI), "function has no blocks");
    return;
  }
  if (F.NumParams > F.NumRegs)
    D.error("param-regs", funcLoc(F, FI),
            std::to_string(F.NumParams) + " params but only " +
                std::to_string(F.NumRegs) + " registers");

  for (size_t BI = 0; BI < F.Blocks.size(); ++BI) {
    const BasicBlock &BB = F.Blocks[BI];
    if (BB.Insts.empty()) {
      D.error("empty-block", blockLoc(F, FI, BI), "block is empty");
      continue;
    }
    if (!BB.Insts.back().isTerminator())
      D.error("no-terminator", blockLoc(F, FI, BI),
              "block does not end in a terminator");

    for (size_t II = 0; II < BB.Insts.size(); ++II) {
      const Instruction &I = BB.Insts[II];
      if (I.isTerminator() && II + 1 != BB.Insts.size())
        D.error("mid-block-terminator",
                blockLoc(F, FI, BI, static_cast<int32_t>(II)),
                "terminator in mid-block");

      checkOperand(D, F, FI, I.A, "A", BI, II);
      checkOperand(D, F, FI, I.B, "B", BI, II);
      checkOperand(D, F, FI, I.C, "C", BI, II);
      if (writesRegister(I.Op) && I.Dst >= F.NumRegs)
        D.error("dst-range", blockLoc(F, FI, BI, static_cast<int32_t>(II)),
                "dst register r" + std::to_string(I.Dst) + " out of range");

      switch (I.Op) {
      case Opcode::Br:
        if (I.TrueTarget >= F.Blocks.size() ||
            I.FalseTarget >= F.Blocks.size())
          D.error("branch-target",
                  blockLoc(F, FI, BI, static_cast<int32_t>(II)),
                  "branch target out of range");
        if (I.A.isNone())
          D.error("branch-condition",
                  blockLoc(F, FI, BI, static_cast<int32_t>(II)),
                  "branch without a condition");
        break;
      case Opcode::Jmp:
        if (I.TrueTarget >= F.Blocks.size())
          D.error("jump-target",
                  blockLoc(F, FI, BI, static_cast<int32_t>(II)),
                  "jump target out of range");
        break;
      case Opcode::Call: {
        if (I.Callee >= M.Functions.size()) {
          D.error("callee-range",
                  blockLoc(F, FI, BI, static_cast<int32_t>(II)),
                  "callee index " + std::to_string(I.Callee) +
                      " out of range");
          break;
        }
        const Function &Callee = M.Functions[I.Callee];
        if (I.Args.size() != Callee.NumParams)
          D.error("call-arity",
                  blockLoc(F, FI, BI, static_cast<int32_t>(II)),
                  "call to " + Callee.Name + " passes " +
                      std::to_string(I.Args.size()) + " args, expected " +
                      std::to_string(Callee.NumParams));
        for (const Operand &Arg : I.Args)
          checkOperand(D, F, FI, Arg, "arg", BI, II);
        break;
      }
      default:
        break;
      }
    }
  }

  // Predecessor shape: count explicit edges from in-range terminators. The
  // entry block is the function's reset point — loop replication and the
  // interpreter both assume nothing jumps back to it — and a non-entry
  // block with no incoming edge would be "reachable" only by falling
  // through past the previous block's terminator, which never happens.
  std::vector<uint32_t> PredCount(F.Blocks.size(), 0);
  for (const BasicBlock &BB : F.Blocks) {
    if (BB.Insts.empty() || !BB.Insts.back().isTerminator())
      continue;
    const Instruction &T = BB.Insts.back();
    if (T.Op == Opcode::Br) {
      if (T.TrueTarget < F.Blocks.size())
        ++PredCount[T.TrueTarget];
      if (T.FalseTarget < F.Blocks.size())
        ++PredCount[T.FalseTarget];
    } else if (T.Op == Opcode::Jmp && T.TrueTarget < F.Blocks.size()) {
      ++PredCount[T.TrueTarget];
    }
  }
  if (PredCount[0] > 0)
    D.error("entry-has-preds", blockLoc(F, FI, 0),
            "entry block has " + std::to_string(PredCount[0]) +
                " predecessor edge(s); the entry must be a pure reset "
                "point — give loops their own header block");
  for (size_t BI = 1; BI < F.Blocks.size(); ++BI)
    if (PredCount[BI] == 0)
      D.error("no-predecessors", blockLoc(F, FI, BI),
              "block has no predecessor edges; it could only run by "
              "falling through past a terminator, which this IR never "
              "does");
}

} // namespace

std::vector<Diagnostic> bpcr::verifyModuleDiags(const Module &M) {
  Diags D;

  if (M.Functions.empty())
    D.error("no-functions", moduleLoc(), "module has no functions");
  if (M.EntryFunction >= M.Functions.size())
    D.error("entry-function", moduleLoc(),
            "entry function index " + std::to_string(M.EntryFunction) +
                " out of range");
  if (M.InitialMemory.size() > M.MemWords)
    D.error("memory-image", moduleLoc(),
            "initial memory image (" +
                std::to_string(M.InitialMemory.size()) +
                " words) exceeds MemWords (" + std::to_string(M.MemWords) +
                ")");

  for (uint32_t FI = 0; FI < M.Functions.size(); ++FI)
    checkFunction(D, M, FI);

  return std::move(D.All);
}

std::vector<std::string> bpcr::verifyModule(const Module &M) {
  std::vector<std::string> Out;
  for (const Diagnostic &D : verifyModuleDiags(M))
    Out.push_back(D.render());
  return Out;
}
