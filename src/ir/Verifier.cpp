//===- ir/Verifier.cpp ----------------------------------------------------===//
//
// Part of the bpcr project (Krall, PLDI 1994 reproduction).
//
//===----------------------------------------------------------------------===//

#include "ir/Verifier.h"

#include <cstdarg>
#include <cstdio>

using namespace bpcr;

namespace {

/// Collects verifier diagnostics with printf-style formatting.
class Diag {
public:
  std::vector<std::string> Messages;

  void error(const char *Fmt, ...) __attribute__((format(printf, 2, 3))) {
    va_list Ap;
    va_start(Ap, Fmt);
    char Buf[512];
    std::vsnprintf(Buf, sizeof(Buf), Fmt, Ap);
    va_end(Ap);
    Messages.push_back(Buf);
  }
};

void checkOperand(Diag &D, const Function &F, const char *FName,
                  const Operand &O, const char *Role, size_t BI, size_t II) {
  if (O.isReg() && O.Val >= static_cast<int64_t>(F.NumRegs))
    D.error("%s: block %zu inst %zu: %s register r%lld out of range (%u regs)",
            FName, BI, II, Role, static_cast<long long>(O.Val), F.NumRegs);
}

} // namespace

std::vector<std::string> bpcr::verifyModule(const Module &M) {
  Diag D;

  if (M.Functions.empty())
    D.error("module has no functions");
  if (M.EntryFunction >= M.Functions.size())
    D.error("entry function index %u out of range", M.EntryFunction);
  if (M.InitialMemory.size() > M.MemWords)
    D.error("initial memory image (%zu words) exceeds MemWords (%llu)",
            M.InitialMemory.size(),
            static_cast<unsigned long long>(M.MemWords));

  for (const Function &F : M.Functions) {
    const char *FName = F.Name.c_str();
    if (F.Blocks.empty()) {
      D.error("%s: function has no blocks", FName);
      continue;
    }
    if (F.NumParams > F.NumRegs)
      D.error("%s: %u params but only %u registers", FName, F.NumParams,
              F.NumRegs);

    for (size_t BI = 0; BI < F.Blocks.size(); ++BI) {
      const BasicBlock &BB = F.Blocks[BI];
      if (BB.Insts.empty()) {
        D.error("%s: block %zu (%s) is empty", FName, BI, BB.Name.c_str());
        continue;
      }
      if (!BB.Insts.back().isTerminator())
        D.error("%s: block %zu (%s) does not end in a terminator", FName, BI,
                BB.Name.c_str());

      for (size_t II = 0; II < BB.Insts.size(); ++II) {
        const Instruction &I = BB.Insts[II];
        if (I.isTerminator() && II + 1 != BB.Insts.size())
          D.error("%s: block %zu inst %zu: terminator in mid-block", FName, BI,
                  II);

        checkOperand(D, F, FName, I.A, "A", BI, II);
        checkOperand(D, F, FName, I.B, "B", BI, II);
        checkOperand(D, F, FName, I.C, "C", BI, II);
        if (writesRegister(I.Op) && I.Dst >= F.NumRegs)
          D.error("%s: block %zu inst %zu: dst register r%u out of range",
                  FName, BI, II, I.Dst);

        switch (I.Op) {
        case Opcode::Br:
          if (I.TrueTarget >= F.Blocks.size() ||
              I.FalseTarget >= F.Blocks.size())
            D.error("%s: block %zu: branch target out of range", FName, BI);
          if (I.A.isNone())
            D.error("%s: block %zu: branch without a condition", FName, BI);
          break;
        case Opcode::Jmp:
          if (I.TrueTarget >= F.Blocks.size())
            D.error("%s: block %zu: jump target out of range", FName, BI);
          break;
        case Opcode::Call: {
          if (I.Callee >= M.Functions.size()) {
            D.error("%s: block %zu inst %zu: callee index %u out of range",
                    FName, BI, II, I.Callee);
            break;
          }
          const Function &Callee = M.Functions[I.Callee];
          if (I.Args.size() != Callee.NumParams)
            D.error("%s: block %zu inst %zu: call to %s passes %zu args, "
                    "expected %u",
                    FName, BI, II, Callee.Name.c_str(), I.Args.size(),
                    Callee.NumParams);
          for (const Operand &Arg : I.Args)
            checkOperand(D, F, FName, Arg, "arg", BI, II);
          break;
        }
        default:
          break;
        }
      }
    }
  }

  return std::move(D.Messages);
}
