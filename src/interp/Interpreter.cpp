//===- interp/Interpreter.cpp ---------------------------------------------===//
//
// Part of the bpcr project (Krall, PLDI 1994 reproduction).
//
//===----------------------------------------------------------------------===//

#include "interp/Interpreter.h"

#include "obs/Metrics.h"
#include "obs/TraceSpans.h"

#include <chrono>
#include <cstdio>
#include <limits>

using namespace bpcr;

TraceSink::~TraceSink() = default;
InstrListener::~InstrListener() = default;

namespace {

/// One activation record. The interpreter keeps an explicit stack so deep
/// recursion in workloads (the prolog-style backtracking search) cannot
/// overflow the host stack.
struct Frame {
  uint32_t FuncIdx;
  uint32_t Block = 0;
  uint32_t Inst = 0;
  Reg RetDst = 0;
  std::vector<int64_t> Regs;
};

int64_t shiftLeft(int64_t A, int64_t B) {
  // Shift in the unsigned domain to avoid signed-overflow UB; the shift
  // amount wraps at 64 like on common hardware.
  return static_cast<int64_t>(static_cast<uint64_t>(A)
                              << (static_cast<uint64_t>(B) & 63));
}

int64_t shiftRight(int64_t A, int64_t B) {
  // Arithmetic shift; C++20 defines >> on signed as arithmetic.
  return A >> (static_cast<uint64_t>(B) & 63);
}

} // namespace

namespace {

/// Emitter policies for the templated execution loop. The interpreter is
/// instantiated once per policy, so the no-sink run pays nothing per
/// branch and the sink run pays one buffered store per event plus one
/// virtual onBatch per flush — never a virtual call per event.
struct NullEmitter {
  static constexpr bool HasSink = false;
  void emit(const Instruction &, bool) {}
  void flush() {}
};

struct BatchEmitter {
  static constexpr bool HasSink = true;
  static constexpr size_t BatchSize = 256;

  explicit BatchEmitter(TraceSink *Sink) : Sink(Sink) {}

  void emit(const Instruction &Br, bool Taken) {
    Buf[N].Br = &Br;
    Buf[N].Taken = Taken;
    if (++N == BatchSize)
      flush();
  }

  void flush() {
    if (N) {
      Sink->onBatch(Buf, N);
      N = 0;
    }
  }

  TraceSink *Sink;
  BranchBatchEvent Buf[BatchSize];
  size_t N = 0;
};

template <class Emitter>
ExecResult executeImpl(const Module &M, Emitter &Emit,
                       const ExecOptions &Opts) {
  ExecResult R;

  // Observability is sampled at run granularity only: one enabled() check
  // and two clock reads per execution, nothing per instruction or event,
  // so the disabled path costs one predictable branch. The span follows
  // the same rule (one guard in its constructor).
  Span ExecSpan("interp.execute", "interp");
  Registry &Obs = Registry::global();
  const bool ObsOn = Obs.enabled();
  std::chrono::steady_clock::time_point ObsStart;
  if (ObsOn)
    ObsStart = std::chrono::steady_clock::now();

  if (M.EntryFunction >= M.Functions.size()) {
    R.Error = "entry function index out of range";
    return R;
  }

  std::vector<int64_t> Mem(M.MemWords, 0);
  for (size_t I = 0; I < M.InitialMemory.size() && I < Mem.size(); ++I)
    Mem[I] = M.InitialMemory[I];

  std::vector<Frame> Stack;
  {
    Frame F;
    F.FuncIdx = M.EntryFunction;
    F.Regs.assign(M.Functions[M.EntryFunction].NumRegs, 0);
    for (size_t I = 0;
         I < Opts.EntryArgs.size() && I < F.Regs.size(); ++I)
      F.Regs[I] = Opts.EntryArgs[I];
    Stack.push_back(std::move(F));
  }

  auto Fail = [&R](const char *Fmt, long long V = 0) {
    char Buf[128];
    std::snprintf(Buf, sizeof(Buf), Fmt, V);
    R.Error = Buf;
    return false;
  };

  int64_t RetVal = 0;
  bool Running = true;
  bool Errored = false;

  while (Running) {
    Frame &F = Stack.back();
    const Function &Fn = M.Functions[F.FuncIdx];

    if (F.Block >= Fn.Blocks.size() ||
        F.Inst >= Fn.Blocks[F.Block].Insts.size()) {
      Errored = !Fail("control fell off a block in function %lld",
                      static_cast<long long>(F.FuncIdx));
      break;
    }

    const Instruction &I = Fn.Blocks[F.Block].Insts[F.Inst];

    if (Opts.Listener)
      Opts.Listener->onInstruction(F.FuncIdx, F.Block, F.Inst);

    if (++R.InstructionsExecuted > Opts.MaxInstructions) {
      Errored = !Fail("instruction budget exhausted (%lld)",
                      static_cast<long long>(Opts.MaxInstructions));
      break;
    }

    auto Eval = [&F](const Operand &O) -> int64_t {
      if (O.isImm())
        return O.Val;
      if (O.isReg())
        return F.Regs[O.asReg()];
      return 0;
    };

    switch (I.Op) {
    case Opcode::Mov:
      F.Regs[I.Dst] = Eval(I.A);
      ++F.Inst;
      break;

    case Opcode::Add:
    case Opcode::Sub:
    case Opcode::Mul:
    case Opcode::Div:
    case Opcode::Rem:
    case Opcode::And:
    case Opcode::Or:
    case Opcode::Xor:
    case Opcode::Shl:
    case Opcode::Shr: {
      int64_t A = Eval(I.A), B = Eval(I.B), V = 0;
      uint64_t UA = static_cast<uint64_t>(A), UB = static_cast<uint64_t>(B);
      switch (I.Op) {
      case Opcode::Add:
        V = static_cast<int64_t>(UA + UB);
        break;
      case Opcode::Sub:
        V = static_cast<int64_t>(UA - UB);
        break;
      case Opcode::Mul:
        V = static_cast<int64_t>(UA * UB);
        break;
      case Opcode::Div:
        if (B == 0)
          V = 0;
        else if (A == std::numeric_limits<int64_t>::min() && B == -1)
          V = A;
        else
          V = A / B;
        break;
      case Opcode::Rem:
        if (B == 0)
          V = 0;
        else if (A == std::numeric_limits<int64_t>::min() && B == -1)
          V = 0;
        else
          V = A % B;
        break;
      case Opcode::And:
        V = A & B;
        break;
      case Opcode::Or:
        V = A | B;
        break;
      case Opcode::Xor:
        V = A ^ B;
        break;
      case Opcode::Shl:
        V = shiftLeft(A, B);
        break;
      case Opcode::Shr:
        V = shiftRight(A, B);
        break;
      default:
        break;
      }
      F.Regs[I.Dst] = V;
      ++F.Inst;
      break;
    }

    case Opcode::CmpEq:
    case Opcode::CmpNe:
    case Opcode::CmpLt:
    case Opcode::CmpLe:
    case Opcode::CmpGt:
    case Opcode::CmpGe: {
      int64_t A = Eval(I.A), B = Eval(I.B);
      bool V = false;
      switch (I.Op) {
      case Opcode::CmpEq:
        V = A == B;
        break;
      case Opcode::CmpNe:
        V = A != B;
        break;
      case Opcode::CmpLt:
        V = A < B;
        break;
      case Opcode::CmpLe:
        V = A <= B;
        break;
      case Opcode::CmpGt:
        V = A > B;
        break;
      case Opcode::CmpGe:
        V = A >= B;
        break;
      default:
        break;
      }
      F.Regs[I.Dst] = V ? 1 : 0;
      ++F.Inst;
      break;
    }

    case Opcode::Load: {
      int64_t Addr = Eval(I.A) + Eval(I.B);
      if (Addr < 0 || static_cast<uint64_t>(Addr) >= Mem.size()) {
        Errored = !Fail("load from address %lld out of bounds",
                        static_cast<long long>(Addr));
        Running = false;
        break;
      }
      F.Regs[I.Dst] = Mem[static_cast<size_t>(Addr)];
      ++F.Inst;
      break;
    }

    case Opcode::Store: {
      int64_t Addr = Eval(I.A) + Eval(I.B);
      if (Addr < 0 || static_cast<uint64_t>(Addr) >= Mem.size()) {
        Errored = !Fail("store to address %lld out of bounds",
                        static_cast<long long>(Addr));
        Running = false;
        break;
      }
      Mem[static_cast<size_t>(Addr)] = Eval(I.C);
      ++F.Inst;
      break;
    }

    case Opcode::Call: {
      if (Stack.size() >= Opts.MaxCallDepth) {
        Errored = !Fail("call depth limit exceeded (%lld)",
                        static_cast<long long>(Opts.MaxCallDepth));
        Running = false;
        break;
      }
      // Evaluate arguments in the caller frame before pushing.
      std::vector<int64_t> ArgVals;
      ArgVals.reserve(I.Args.size());
      for (const Operand &Arg : I.Args)
        ArgVals.push_back(Eval(Arg));

      Frame NF;
      NF.FuncIdx = I.Callee;
      NF.RetDst = I.Dst;
      NF.Regs.assign(M.Functions[I.Callee].NumRegs, 0);
      for (size_t AI = 0; AI < ArgVals.size(); ++AI)
        NF.Regs[AI] = ArgVals[AI];
      // Return resumes after the call.
      ++F.Inst;
      Stack.push_back(std::move(NF));
      break;
    }

    case Opcode::Br: {
      bool Taken = Eval(I.A) != 0;
      Emit.emit(I, Taken);
      ++R.BranchEvents;
      F.Block = Taken ? I.TrueTarget : I.FalseTarget;
      F.Inst = 0;
      if (R.BranchEvents >= Opts.MaxBranchEvents) {
        R.HitBranchLimit = true;
        Running = false;
      }
      break;
    }

    case Opcode::Jmp:
      F.Block = I.TrueTarget;
      F.Inst = 0;
      break;

    case Opcode::Ret: {
      int64_t V = Eval(I.A);
      Stack.pop_back();
      if (Stack.empty()) {
        RetVal = V;
        Running = false;
        break;
      }
      // The caller's Inst was advanced at call time; the call instruction
      // sits just before it.
      Frame &Caller = Stack.back();
      const Function &CallerFn = M.Functions[Caller.FuncIdx];
      const Instruction &CallI =
          CallerFn.Blocks[Caller.Block].Insts[Caller.Inst - 1];
      Caller.Regs[CallI.Dst] = V;
      break;
    }
    }
  }

  // Deliver any buffered events before the run result is observable —
  // every exit path (return, error, branch limit) funnels through here.
  Emit.flush();

  R.Ok = !Errored;
  R.ReturnValue = RetVal;
  R.Memory = std::move(Mem);

  ExecSpan.arg("instructions", R.InstructionsExecuted);
  ExecSpan.arg("branch_events", R.BranchEvents);
  if (Errored)
    ExecSpan.arg("error", R.Error);

  if (ObsOn) {
    double Ns = static_cast<double>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - ObsStart)
            .count());
    Obs.timer("interp.run_ns").record(Ns);
    Obs.counter("interp.runs").inc();
    Obs.counter("interp.instructions").add(R.InstructionsExecuted);
    Obs.counter("interp.branch_events").add(R.BranchEvents);
    if (!Emitter::HasSink)
      // Events that were produced but had no sink to receive them.
      Obs.counter("interp.events_dropped").add(R.BranchEvents);
    if (R.HitBranchLimit)
      Obs.counter("interp.truncated_runs").inc();
    if (Errored)
      Obs.counter("interp.errors").inc();
    if (Ns > 0.0) {
      Obs.gauge("interp.events_per_sec")
          .set(static_cast<double>(R.BranchEvents) * 1e9 / Ns);
      Obs.gauge("interp.instructions_per_sec")
          .set(static_cast<double>(R.InstructionsExecuted) * 1e9 / Ns);
    }
  }
  return R;
}

} // namespace

ExecResult bpcr::execute(const Module &M, TraceSink *Sink,
                         const ExecOptions &Opts) {
  if (!Sink) {
    NullEmitter E;
    return executeImpl(M, E, Opts);
  }
  BatchEmitter E(Sink);
  return executeImpl(M, E, Opts);
}
