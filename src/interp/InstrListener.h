//===- interp/InstrListener.h - Per-instruction hook ------------*- C++ -*-===//
//
// Part of the bpcr project (Krall, PLDI 1994 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// An optional per-instruction callback from the interpreter, used by the
/// instruction-cache simulation to observe the fetch stream. Unlike
/// TraceSink (branches only), this hook fires for every executed
/// instruction and therefore costs real time — only the cache ablation
/// enables it.
///
//===----------------------------------------------------------------------===//

#ifndef BPCR_INTERP_INSTRLISTENER_H
#define BPCR_INTERP_INSTRLISTENER_H

#include <cstdint>

namespace bpcr {

/// Receives one callback per executed instruction.
class InstrListener {
public:
  virtual ~InstrListener();

  /// Called before instruction \p InstIdx of block \p BlockIdx in function
  /// \p FuncIdx executes.
  virtual void onInstruction(uint32_t FuncIdx, uint32_t BlockIdx,
                             uint32_t InstIdx) = 0;
};

} // namespace bpcr

#endif // BPCR_INTERP_INSTRLISTENER_H
