//===- interp/Interpreter.h - IR execution engine ---------------*- C++ -*-===//
//
// Part of the bpcr project (Krall, PLDI 1994 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Executes a module and streams branch events to a TraceSink. This replaces
/// the paper's assembly-level instrumentation of native binaries: the
/// evaluation consumes only the branch event stream, which the interpreter
/// produces exactly.
///
//===----------------------------------------------------------------------===//

#ifndef BPCR_INTERP_INTERPRETER_H
#define BPCR_INTERP_INTERPRETER_H

#include "interp/InstrListener.h"
#include "interp/TraceSink.h"
#include "ir/Module.h"

#include <cstdint>
#include <string>
#include <vector>

namespace bpcr {

/// Execution limits. The branch-event cap mirrors the paper: "We traced the
/// whole program up to a maximum of [1] million branch instructions."
struct ExecOptions {
  uint64_t MaxInstructions = 500'000'000;
  uint64_t MaxBranchEvents = UINT64_MAX;
  uint32_t MaxCallDepth = 4096;
  /// Arguments passed to the entry function.
  std::vector<int64_t> EntryArgs;
  /// Optional per-instruction hook (instruction-cache simulation); slows
  /// execution down noticeably when set.
  InstrListener *Listener = nullptr;
};

/// Outcome of one execution.
struct ExecResult {
  /// False on a runtime error (bad memory access, fuel exhaustion, ...).
  bool Ok = false;
  std::string Error;
  /// Entry function return value (meaningful when Ok).
  int64_t ReturnValue = 0;
  uint64_t InstructionsExecuted = 0;
  uint64_t BranchEvents = 0;
  /// True when execution stopped early because MaxBranchEvents was reached;
  /// the run still counts as Ok (the paper truncates traces the same way).
  bool HitBranchLimit = false;
  /// Final data memory image (for output comparison in tests).
  std::vector<int64_t> Memory;
};

/// Runs \p M from its entry function.
///
/// \param Sink receives every conditional branch outcome; may be null.
/// \returns the execution outcome; on error, Error describes the failure and
///          the partially executed state is still reported.
ExecResult execute(const Module &M, TraceSink *Sink = nullptr,
                   const ExecOptions &Opts = ExecOptions());

} // namespace bpcr

#endif // BPCR_INTERP_INTERPRETER_H
