//===- interp/TimelineSink.h - Windowed telemetry trace sink ----*- C++ -*-===//
//
// Part of the bpcr project (Krall, PLDI 1994 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// TraceSink adapter that streams the interpreter's branch events into a
/// TimeSeries recorder: one window cell update per executed branch, keyed by
/// the event's position in the trace and the branch's *original* id (so a
/// replicated program's series lines up with attribution, which also folds
/// replicas back onto their source branch).
///
/// A static prediction is scored exactly like the measurement sinks in
/// core/Replication.cpp (anything but an explicit NotTaken annotation
/// predicts taken), so per-window misprediction counts sum to the same
/// totals attribution reports. When the span tracer is live, the sink
/// stamps a wall-clock
/// sample every 256 events so windows can anchor Chrome Trace counter
/// curves; the samples never reach deterministic output.
///
//===----------------------------------------------------------------------===//

#ifndef BPCR_INTERP_TIMELINESINK_H
#define BPCR_INTERP_TIMELINESINK_H

#include "interp/TraceSink.h"
#include "obs/TimeSeries.h"
#include "obs/TraceSpans.h"

namespace bpcr {

/// Fills a TimeSeries from a single interpreter run. Not itself re-entrant
/// (the event index is sink-local state), but several sinks may share one
/// recorder: TimeSeries::record is thread-safe and order-independent.
class TimelineSink : public TraceSink {
public:
  explicit TimelineSink(TimeSeries &TS,
                        SpanTracer &Tracer = SpanTracer::global())
      : TS(TS), Tracer(Tracer), WallOn(Tracer.enabled()) {}

  void onBranch(const Instruction &Br, bool Taken) override {
    bool Predicted = Br.Predicted != Prediction::NotTaken;
    uint64_t WallNs = 0;
    if (WallOn && (Index & 255) == 0)
      WallNs = Tracer.elapsedNs();
    TS.record(Index, Br.OrigBranchId, Taken, Predicted != Taken, WallNs);
    ++Index;
  }

  uint64_t eventCount() const { return Index; }

private:
  TimeSeries &TS;
  SpanTracer &Tracer;
  bool WallOn;
  uint64_t Index = 0;
};

} // namespace bpcr

#endif // BPCR_INTERP_TIMELINESINK_H
