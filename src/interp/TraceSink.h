//===- interp/TraceSink.h - Branch event consumer ---------------*- C++ -*-===//
//
// Part of the bpcr project (Krall, PLDI 1994 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The hook through which the interpreter reports every executed conditional
/// branch, mirroring the paper's inserted trace code that "writes trace
/// information to a file ... the branch number and the branch direction".
///
//===----------------------------------------------------------------------===//

#ifndef BPCR_INTERP_TRACESINK_H
#define BPCR_INTERP_TRACESINK_H

#include "ir/Instruction.h"

#include <cstddef>

namespace bpcr {

/// One buffered branch event: the interpreter batches these and flushes a
/// block at a time instead of paying a virtual call per event.
struct BranchBatchEvent {
  const Instruction *Br;
  bool Taken;
};

/// Receives executed conditional branches, either one at a time or in
/// batches.
class TraceSink {
public:
  virtual ~TraceSink();

  /// Called after the branch condition of \p Br was evaluated to \p Taken.
  /// The instruction carries BranchId, OrigBranchId and any static
  /// prediction annotation.
  virtual void onBranch(const Instruction &Br, bool Taken) = 0;

  /// Batched delivery: \p N events in execution order. The interpreter
  /// calls only this (one virtual call per buffer flush); the default
  /// forwards event-at-a-time so existing sinks observe the exact legacy
  /// stream. Columnar/bulk sinks override it to append whole batches.
  virtual void onBatch(const BranchBatchEvent *Events, size_t N) {
    for (size_t I = 0; I < N; ++I)
      onBranch(*Events[I].Br, Events[I].Taken);
  }
};

} // namespace bpcr

#endif // BPCR_INTERP_TRACESINK_H
