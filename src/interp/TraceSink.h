//===- interp/TraceSink.h - Branch event consumer ---------------*- C++ -*-===//
//
// Part of the bpcr project (Krall, PLDI 1994 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The hook through which the interpreter reports every executed conditional
/// branch, mirroring the paper's inserted trace code that "writes trace
/// information to a file ... the branch number and the branch direction".
///
//===----------------------------------------------------------------------===//

#ifndef BPCR_INTERP_TRACESINK_H
#define BPCR_INTERP_TRACESINK_H

#include "ir/Instruction.h"

namespace bpcr {

/// Receives one callback per executed conditional branch.
class TraceSink {
public:
  virtual ~TraceSink();

  /// Called after the branch condition of \p Br was evaluated to \p Taken.
  /// The instruction carries BranchId, OrigBranchId and any static
  /// prediction annotation.
  virtual void onBranch(const Instruction &Br, bool Taken) = 0;
};

} // namespace bpcr

#endif // BPCR_INTERP_TRACESINK_H
