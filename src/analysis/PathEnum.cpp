//===- analysis/PathEnum.cpp ----------------------------------------------===//
//
// Part of the bpcr project (Krall, PLDI 1994 reproduction).
//
//===----------------------------------------------------------------------===//

#include "analysis/PathEnum.h"

#include <algorithm>

using namespace bpcr;

namespace {

/// Recursive backward walk. \p Suffix accumulates steps newest-first; on
/// emission it is reversed into oldest-first order.
void walk(const Function &F, const CFG &G, uint32_t Block, unsigned Remaining,
          unsigned JumpBudget, std::vector<PathStep> &Suffix,
          std::vector<BranchPath> &Out) {
  if (!Suffix.empty()) {
    BranchPath P;
    P.Steps.assign(Suffix.rbegin(), Suffix.rend());
    Out.push_back(std::move(P));
  }
  if (Remaining == 0)
    return;

  for (uint32_t Pred : G.predecessors(Block)) {
    if (!G.isReachable(Pred))
      continue;
    const Instruction &T = F.Blocks[Pred].terminator();
    if (T.isConditionalBranch()) {
      // The edge direction is determined by which target equals Block; a
      // degenerate branch with both targets equal contributes both.
      if (T.TrueTarget == Block) {
        Suffix.push_back({T.BranchId, true});
        walk(F, G, Pred, Remaining - 1, JumpBudget, Suffix, Out);
        Suffix.pop_back();
      }
      if (T.FalseTarget == Block) {
        Suffix.push_back({T.BranchId, false});
        walk(F, G, Pred, Remaining - 1, JumpBudget, Suffix, Out);
        Suffix.pop_back();
      }
    } else if (T.Op == Opcode::Jmp && JumpBudget > 0) {
      // Jumps carry no decision; pass through without consuming length but
      // bound the pass-through depth so jump cycles terminate.
      walk(F, G, Pred, Remaining, JumpBudget - 1, Suffix, Out);
    }
  }
}

} // namespace

std::vector<BranchPath> bpcr::enumerateBackwardPaths(const Function &F,
                                                     const CFG &G,
                                                     uint32_t Block,
                                                     unsigned MaxLen,
                                                     bool ThroughJumps) {
  std::vector<BranchPath> Out;
  std::vector<PathStep> Suffix;
  walk(F, G, Block, MaxLen, /*JumpBudget=*/ThroughJumps ? 64 : 0, Suffix,
       Out);

  // Deduplicate (jump pass-throughs can produce the same decision list via
  // different block sequences).
  std::sort(Out.begin(), Out.end(), [](const BranchPath &A,
                                       const BranchPath &B) {
    return std::lexicographical_compare(
        A.Steps.begin(), A.Steps.end(), B.Steps.begin(), B.Steps.end(),
        [](const PathStep &X, const PathStep &Y) {
          if (X.BranchId != Y.BranchId)
            return X.BranchId < Y.BranchId;
          return X.Taken < Y.Taken;
        });
  });
  Out.erase(std::unique(Out.begin(), Out.end()), Out.end());
  return Out;
}
