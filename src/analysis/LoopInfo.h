//===- analysis/LoopInfo.h - Natural loop detection -------------*- C++ -*-===//
//
// Part of the bpcr project (Krall, PLDI 1994 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Natural loop analysis per Aho/Sethi/Ullman, the paper's cited method:
/// back edges (u -> h with h dominating u) induce loops; loops with the same
/// header merge; nesting follows containment. The paper divides loop
/// branches into "intra loop branches that occur inside a loop, and exit
/// loop branches which may leave the loop" — BranchClass captures that.
///
//===----------------------------------------------------------------------===//

#ifndef BPCR_ANALYSIS_LOOPINFO_H
#define BPCR_ANALYSIS_LOOPINFO_H

#include "analysis/CFG.h"
#include "analysis/Dominators.h"

#include <cstdint>
#include <vector>

namespace bpcr {

/// One natural loop.
struct Loop {
  uint32_t Header = 0;
  /// Member blocks, sorted ascending; includes the header.
  std::vector<uint32_t> Blocks;
  /// Index of the innermost enclosing loop, or -1 at top level.
  int32_t Parent = -1;
  /// Nesting depth; outermost loops have depth 1.
  uint32_t Depth = 1;

  bool contains(uint32_t Block) const;
};

/// All natural loops of one function.
class LoopInfo {
public:
  LoopInfo(const CFG &G, const Dominators &D);

  const std::vector<Loop> &loops() const { return Loops; }

  /// Index of the innermost loop containing \p Block, or -1.
  int32_t innermostLoop(uint32_t Block) const { return Innermost[Block]; }

private:
  std::vector<Loop> Loops;
  std::vector<int32_t> Innermost;
};

/// How a conditional branch relates to the loop structure (paper sec. 4).
enum class BranchKind : uint8_t {
  /// Not inside any loop: candidate for the correlated-branch machines.
  NonLoop,
  /// Both successors stay inside the innermost loop.
  IntraLoop,
  /// At least one successor leaves the innermost loop.
  LoopExit,
};

/// Classification of one static branch.
struct BranchClass {
  BranchKind Kind = BranchKind::NonLoop;
  /// Innermost loop index for IntraLoop/LoopExit; -1 otherwise.
  int32_t LoopIdx = -1;
  /// For LoopExit with the branch's *taken* edge leaving the loop this is
  /// true; the exit machines need to know which direction means "exit".
  bool TakenExits = false;
};

/// Classifies every conditional branch of \p F by BranchId.
/// \returns a vector indexed by BranchId (ids must be assigned); branches
/// belonging to other functions keep default entries.
void classifyBranches(const Function &F, const CFG &G, const LoopInfo &LI,
                      std::vector<BranchClass> &ByBranchId);

} // namespace bpcr

#endif // BPCR_ANALYSIS_LOOPINFO_H
