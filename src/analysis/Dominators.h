//===- analysis/Dominators.h - Dominator tree -------------------*- C++ -*-===//
//
// Part of the bpcr project (Krall, PLDI 1994 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Immediate dominators via the Cooper-Harvey-Kennedy iterative algorithm.
/// Needed to find back edges for natural loop detection (ASU86), the basis
/// of the paper's loop-branch classification.
///
//===----------------------------------------------------------------------===//

#ifndef BPCR_ANALYSIS_DOMINATORS_H
#define BPCR_ANALYSIS_DOMINATORS_H

#include "analysis/CFG.h"

#include <cstdint>
#include <vector>

namespace bpcr {

/// Dominator tree over a CFG's reachable blocks.
class Dominators {
public:
  explicit Dominators(const CFG &G);

  /// Immediate dominator of \p Block; the entry dominates itself.
  /// UINT32_MAX for unreachable blocks.
  uint32_t immediateDominator(uint32_t Block) const { return IDom[Block]; }

  /// True when \p A dominates \p B (reflexive). False when either block is
  /// unreachable.
  bool dominates(uint32_t A, uint32_t B) const;

private:
  const CFG &G;
  std::vector<uint32_t> IDom;
};

} // namespace bpcr

#endif // BPCR_ANALYSIS_DOMINATORS_H
