//===- analysis/Dominators.cpp --------------------------------------------===//
//
// Part of the bpcr project (Krall, PLDI 1994 reproduction).
//
// Cooper, Harvey, Kennedy: "A Simple, Fast Dominance Algorithm" (2001).
//
//===----------------------------------------------------------------------===//

#include "analysis/Dominators.h"

using namespace bpcr;

Dominators::Dominators(const CFG &G) : G(G) {
  uint32_t N = G.numBlocks();
  IDom.assign(N, UINT32_MAX);
  if (N == 0)
    return;

  const std::vector<uint32_t> &RPO = G.reversePostOrder();
  if (RPO.empty())
    return;

  uint32_t Entry = RPO.front();
  IDom[Entry] = Entry;

  auto Intersect = [this, &G = this->G](uint32_t A, uint32_t B) {
    while (A != B) {
      while (G.rpoIndex(A) > G.rpoIndex(B))
        A = IDom[A];
      while (G.rpoIndex(B) > G.rpoIndex(A))
        B = IDom[B];
    }
    return A;
  };

  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (uint32_t B : RPO) {
      if (B == Entry)
        continue;
      uint32_t NewIDom = UINT32_MAX;
      for (uint32_t P : G.predecessors(B)) {
        if (IDom[P] == UINT32_MAX)
          continue; // unprocessed or unreachable
        NewIDom = (NewIDom == UINT32_MAX) ? P : Intersect(P, NewIDom);
      }
      if (NewIDom != UINT32_MAX && IDom[B] != NewIDom) {
        IDom[B] = NewIDom;
        Changed = true;
      }
    }
  }
}

bool Dominators::dominates(uint32_t A, uint32_t B) const {
  if (A >= IDom.size() || B >= IDom.size())
    return false;
  if (IDom[A] == UINT32_MAX || IDom[B] == UINT32_MAX)
    return false;
  // Walk the dominator tree upward from B.
  uint32_t Entry = G.reversePostOrder().front();
  for (uint32_t Cur = B;; Cur = IDom[Cur]) {
    if (Cur == A)
      return true;
    if (Cur == Entry)
      return false;
  }
}
