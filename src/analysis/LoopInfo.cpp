//===- analysis/LoopInfo.cpp ----------------------------------------------===//
//
// Part of the bpcr project (Krall, PLDI 1994 reproduction).
//
//===----------------------------------------------------------------------===//

#include "analysis/LoopInfo.h"

#include <algorithm>
#include <cassert>

using namespace bpcr;

bool Loop::contains(uint32_t Block) const {
  return std::binary_search(Blocks.begin(), Blocks.end(), Block);
}

LoopInfo::LoopInfo(const CFG &G, const Dominators &D) {
  uint32_t N = G.numBlocks();
  Innermost.assign(N, -1);

  // Find back edges and build one natural loop per header (merging the
  // bodies of multiple back edges to the same header, per ASU86).
  std::vector<int32_t> LoopOfHeader(N, -1);
  for (uint32_t U = 0; U < N; ++U) {
    if (!G.isReachable(U))
      continue;
    for (uint32_t H : G.successors(U)) {
      if (!D.dominates(H, U))
        continue;
      // Back edge U -> H: the natural loop is H plus all blocks that reach
      // U without passing through H.
      int32_t LoopIdx = LoopOfHeader[H];
      if (LoopIdx < 0) {
        Loop L;
        L.Header = H;
        L.Blocks.push_back(H);
        Loops.push_back(std::move(L));
        LoopIdx = static_cast<int32_t>(Loops.size() - 1);
        LoopOfHeader[H] = LoopIdx;
      }
      Loop &L = Loops[static_cast<size_t>(LoopIdx)];

      std::vector<bool> InLoop(N, false);
      for (uint32_t B : L.Blocks)
        InLoop[B] = true;
      std::vector<uint32_t> Work;
      if (!InLoop[U]) {
        InLoop[U] = true;
        Work.push_back(U);
      }
      while (!Work.empty()) {
        uint32_t B = Work.back();
        Work.pop_back();
        for (uint32_t P : G.predecessors(B)) {
          if (!G.isReachable(P) || InLoop[P])
            continue;
          InLoop[P] = true;
          Work.push_back(P);
        }
      }
      L.Blocks.clear();
      for (uint32_t B = 0; B < N; ++B)
        if (InLoop[B])
          L.Blocks.push_back(B);
    }
  }

  // Establish nesting: parent = smallest strictly containing loop.
  for (size_t I = 0; I < Loops.size(); ++I) {
    size_t BestSize = SIZE_MAX;
    for (size_t J = 0; J < Loops.size(); ++J) {
      if (I == J || Loops[J].Blocks.size() <= Loops[I].Blocks.size())
        continue;
      if (!Loops[J].contains(Loops[I].Header))
        continue;
      if (Loops[J].Blocks.size() < BestSize) {
        BestSize = Loops[J].Blocks.size();
        Loops[I].Parent = static_cast<int32_t>(J);
      }
    }
  }
  for (Loop &L : Loops) {
    uint32_t Depth = 1;
    for (int32_t P = L.Parent; P >= 0; P = Loops[static_cast<size_t>(P)].Parent)
      ++Depth;
    L.Depth = Depth;
  }

  // Innermost loop per block: deepest loop containing it.
  for (size_t I = 0; I < Loops.size(); ++I)
    for (uint32_t B : Loops[I].Blocks) {
      int32_t Cur = Innermost[B];
      if (Cur < 0 || Loops[static_cast<size_t>(Cur)].Depth < Loops[I].Depth)
        Innermost[B] = static_cast<int32_t>(I);
    }
}

void bpcr::classifyBranches(const Function &F, const CFG &G,
                            const LoopInfo &LI,
                            std::vector<BranchClass> &ByBranchId) {
  for (uint32_t BI = 0; BI < F.Blocks.size(); ++BI) {
    const BasicBlock &BB = F.Blocks[BI];
    if (!BB.isComplete())
      continue;
    const Instruction &T = BB.terminator();
    if (!T.isConditionalBranch())
      continue;
    assert(T.BranchId >= 0 && "branch ids not assigned");
    if (static_cast<size_t>(T.BranchId) >= ByBranchId.size())
      ByBranchId.resize(T.BranchId + 1);
    BranchClass &C = ByBranchId[T.BranchId];

    if (!G.isReachable(BI)) {
      C = BranchClass();
      continue;
    }
    int32_t L = LI.innermostLoop(BI);
    if (L < 0) {
      C.Kind = BranchKind::NonLoop;
      C.LoopIdx = -1;
      continue;
    }
    const Loop &Lp = LI.loops()[static_cast<size_t>(L)];
    bool TrueIn = Lp.contains(T.TrueTarget);
    bool FalseIn = Lp.contains(T.FalseTarget);
    C.LoopIdx = L;
    if (TrueIn && FalseIn) {
      C.Kind = BranchKind::IntraLoop;
    } else {
      C.Kind = BranchKind::LoopExit;
      C.TakenExits = !TrueIn;
    }
  }
}
