//===- analysis/CFG.h - Control flow graph ----------------------*- C++ -*-===//
//
// Part of the bpcr project (Krall, PLDI 1994 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Successor/predecessor lists and traversal orders for one function. The
/// paper's tool "does a control flow analysis and saves the description of
/// branches, a control flow graph and loop information"; this and LoopInfo
/// are that analysis.
///
//===----------------------------------------------------------------------===//

#ifndef BPCR_ANALYSIS_CFG_H
#define BPCR_ANALYSIS_CFG_H

#include "ir/Function.h"

#include <cstdint>
#include <vector>

namespace bpcr {

/// Immutable CFG view over a function. Invalidated by any block mutation.
class CFG {
public:
  explicit CFG(const Function &F);

  uint32_t numBlocks() const {
    return static_cast<uint32_t>(Succs.size());
  }

  const std::vector<uint32_t> &successors(uint32_t Block) const {
    return Succs[Block];
  }

  const std::vector<uint32_t> &predecessors(uint32_t Block) const {
    return Preds[Block];
  }

  /// True when \p Block is reachable from the entry block.
  bool isReachable(uint32_t Block) const { return Reachable[Block]; }

  /// Blocks in reverse post order from the entry; unreachable blocks are
  /// omitted.
  const std::vector<uint32_t> &reversePostOrder() const { return RPO; }

  /// Position of \p Block in the RPO, or UINT32_MAX if unreachable.
  uint32_t rpoIndex(uint32_t Block) const { return RPOIndex[Block]; }

private:
  std::vector<std::vector<uint32_t>> Succs;
  std::vector<std::vector<uint32_t>> Preds;
  std::vector<bool> Reachable;
  std::vector<uint32_t> RPO;
  std::vector<uint32_t> RPOIndex;
};

} // namespace bpcr

#endif // BPCR_ANALYSIS_CFG_H
