//===- analysis/PathEnum.h - Backward branch path enumeration ---*- C++ -*-===//
//
// Part of the bpcr project (Krall, PLDI 1994 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Enumerates CFG paths of conditional-branch decisions leading into a
/// block: "for all branches all predecessors with a path length less than
/// the size of the state machine are collected" (paper sec. 5). These paths
/// are the states of the correlated-branch machines and the shapes the
/// correlated replication duplicates.
///
//===----------------------------------------------------------------------===//

#ifndef BPCR_ANALYSIS_PATHENUM_H
#define BPCR_ANALYSIS_PATHENUM_H

#include "analysis/CFG.h"
#include "ir/Function.h"

#include <cstdint>
#include <vector>

namespace bpcr {

/// One decision along a path: branch \p BranchId went in direction \p Taken.
struct PathStep {
  int32_t BranchId = 0;
  bool Taken = false;

  bool operator==(const PathStep &O) const {
    return BranchId == O.BranchId && Taken == O.Taken;
  }
};

/// A sequence of decisions, oldest first, whose last step jumps into the
/// target block.
struct BranchPath {
  std::vector<PathStep> Steps;

  bool operator==(const BranchPath &O) const { return Steps == O.Steps; }
};

/// Enumerates distinct backward paths of up to \p MaxLen conditional-branch
/// decisions that reach \p Block. With \p ThroughJumps, jump-only edges are
/// traversed without consuming length; without it, only direct branch-edge
/// chains are returned — the form the correlated replication transform can
/// materialize. Paths that reach the function entry before collecting
/// MaxLen decisions are returned shorter. Cyclic walks are cut off at
/// MaxLen decisions, so the enumeration always terminates.
///
/// \returns all paths of length 1..MaxLen, deduplicated.
std::vector<BranchPath> enumerateBackwardPaths(const Function &F, const CFG &G,
                                               uint32_t Block, unsigned MaxLen,
                                               bool ThroughJumps = true);

} // namespace bpcr

#endif // BPCR_ANALYSIS_PATHENUM_H
