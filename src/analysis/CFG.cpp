//===- analysis/CFG.cpp ---------------------------------------------------===//
//
// Part of the bpcr project (Krall, PLDI 1994 reproduction).
//
//===----------------------------------------------------------------------===//

#include "analysis/CFG.h"

#include <algorithm>

using namespace bpcr;

CFG::CFG(const Function &F) {
  uint32_t N = static_cast<uint32_t>(F.Blocks.size());
  Succs.resize(N);
  Preds.resize(N);
  Reachable.assign(N, false);
  RPOIndex.assign(N, UINT32_MAX);

  for (uint32_t B = 0; B < N; ++B) {
    Succs[B] = F.Blocks[B].successors();
    for (uint32_t S : Succs[B])
      Preds[S].push_back(B);
  }

  if (N == 0)
    return;

  // Iterative post-order DFS from the entry block.
  std::vector<uint32_t> Post;
  Post.reserve(N);
  // Stack of (block, next successor index).
  std::vector<std::pair<uint32_t, uint32_t>> Stack;
  Stack.push_back({0, 0});
  Reachable[0] = true;
  while (!Stack.empty()) {
    auto &[B, NextSucc] = Stack.back();
    if (NextSucc < Succs[B].size()) {
      uint32_t S = Succs[B][NextSucc++];
      if (!Reachable[S]) {
        Reachable[S] = true;
        Stack.push_back({S, 0});
      }
      continue;
    }
    Post.push_back(B);
    Stack.pop_back();
  }

  RPO.assign(Post.rbegin(), Post.rend());
  for (uint32_t I = 0; I < RPO.size(); ++I)
    RPOIndex[RPO[I]] = I;
}
