//===- support/SaturatingCounter.h - n-bit saturating counter ---*- C++ -*-===//
//
// Part of the bpcr project (Krall, PLDI 1994 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The classic n-bit saturating up/down counter used by Smith-style dynamic
/// branch predictors: increment on taken, decrement on not taken, predict
/// taken while the value is in the upper half of the range.
///
//===----------------------------------------------------------------------===//

#ifndef BPCR_SUPPORT_SATURATINGCOUNTER_H
#define BPCR_SUPPORT_SATURATINGCOUNTER_H

#include <cassert>
#include <cstdint>

namespace bpcr {

/// An n-bit saturating counter (1 <= n <= 8).
class SaturatingCounter {
public:
  /// \param Bits counter width; a 2-bit counter gives the paper's best
  ///        single-counter predictor.
  /// \param Initial starting value; defaults to the weakly-not-taken middle.
  explicit SaturatingCounter(unsigned Bits = 2, int Initial = -1)
      : Bits(Bits) {
    assert(Bits >= 1 && Bits <= 8 && "counter width out of range");
    Value = (Initial < 0) ? (max() / 2) : static_cast<uint8_t>(Initial);
    assert(Value <= max() && "initial value exceeds counter range");
  }

  /// Updates the counter with one branch outcome, saturating at the ends.
  void update(bool Taken) {
    if (Taken && Value < max())
      ++Value;
    else if (!Taken && Value > 0)
      --Value;
  }

  /// True when the counter value lies in the upper half of its range.
  bool predictTaken() const { return Value > max() / 2; }

  uint8_t value() const { return Value; }
  unsigned bits() const { return Bits; }
  uint8_t max() const { return static_cast<uint8_t>((1U << Bits) - 1U); }

private:
  uint8_t Value;
  unsigned Bits;
};

} // namespace bpcr

#endif // BPCR_SUPPORT_SATURATINGCOUNTER_H
