//===- support/ThreadPool.h - Fixed worker pool -----------------*- C++ -*-===//
//
// Part of the bpcr project (Krall, PLDI 1994 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A fixed-size worker pool for the machine-search hot paths. Tasks are
/// plain std::function thunks; submit() hands back a future per task and
/// tasks start in submission order, so callers that write results into
/// pre-sized slots indexed by submission position get deterministic output
/// regardless of which worker finishes first.
///
/// parallelFor() is the primary entry point: it dispatches loop indices
/// 0..N-1 over the workers through a shared atomic cursor. Every index runs
/// exactly once; exceptions are captured and the first one (by index order)
/// is rethrown on the calling thread after all work drains.
///
/// The pool deliberately has no work stealing, priorities, or dynamic
/// sizing: per-branch machine searches are coarse, independent tasks and a
/// queue plus condition variable saturates every core. Callers that want
/// today's serial behaviour simply do not construct a pool (the convention
/// used by the `Jobs` knobs: a resolved job count of 1 never touches this
/// class).
///
//===----------------------------------------------------------------------===//

#ifndef BPCR_SUPPORT_THREADPOOL_H
#define BPCR_SUPPORT_THREADPOOL_H

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace bpcr {

/// A quiesced snapshot of a pool's utilization telemetry. Valid once every
/// submitted future has been waited on (or after the pool is destroyed —
/// callers keeping a copy): per-worker slots are written lock-free by their
/// owning worker, so sampling mid-task reads whatever has been flushed.
struct PoolStats {
  uint64_t TasksSubmitted = 0;
  /// Deepest the queue ever got (measured at each enqueue).
  uint64_t QueueDepthHwm = 0;
  /// Per-worker nanoseconds spent running tasks / waiting for work.
  std::vector<uint64_t> WorkerBusyNs;
  std::vector<uint64_t> WorkerIdleNs;
  /// Submission-to-start latency: time tasks sat in the queue.
  uint64_t SubmitLatencyCount = 0;
  uint64_t SubmitLatencyTotalNs = 0;
  uint64_t SubmitLatencyMaxNs = 0;
};

class ThreadPool {
public:
  /// Spawns \p Threads workers; 0 means one per hardware core.
  explicit ThreadPool(unsigned Threads = 0);

  ThreadPool(const ThreadPool &) = delete;
  ThreadPool &operator=(const ThreadPool &) = delete;

  /// Drains the queue and joins every worker.
  ~ThreadPool();

  unsigned size() const { return static_cast<unsigned>(Workers.size()); }

  /// Enqueues one task. Tasks are started in submission order.
  std::future<void> submit(std::function<void()> Task);

  /// Runs Body(0..N-1), each index exactly once, across the workers. The
  /// calling thread blocks until every index completed. The first exception
  /// (lowest index) is rethrown here.
  void parallelFor(size_t N, const std::function<void(size_t)> &Body);

  /// Utilization telemetry so far; see PoolStats for when it is exact.
  PoolStats stats() const;

  /// std::thread::hardware_concurrency() clamped to at least 1.
  static unsigned hardwareThreads();

  /// Resolves a user-facing jobs knob: 0 (auto) becomes the hardware
  /// thread count, anything else passes through.
  static unsigned resolveJobs(unsigned Jobs) {
    return Jobs == 0 ? hardwareThreads() : Jobs;
  }

private:
  /// Queued task plus its enqueue timestamp, for submit-to-start latency.
  struct QueueItem {
    std::packaged_task<void()> Task;
    std::chrono::steady_clock::time_point EnqueuedAt;
  };

  /// One worker's telemetry slot. The owning worker writes with relaxed
  /// atomics (tearing-free for concurrent stats() readers); LatencySamples
  /// is owner-written and only read after join, in the destructor's
  /// metrics flush.
  struct WorkerTelemetry {
    std::atomic<uint64_t> BusyNs{0};
    std::atomic<uint64_t> IdleNs{0};
    std::atomic<uint64_t> LatCount{0};
    std::atomic<uint64_t> LatTotalNs{0};
    std::atomic<uint64_t> LatMaxNs{0};
    std::vector<uint64_t> LatencySamples;
  };

  void workerLoop(unsigned WorkerIndex);
  void flushMetrics();

  std::vector<std::thread> Workers;
  std::deque<QueueItem> Queue;
  mutable std::mutex Mu;
  std::condition_variable CV;
  bool Stopping = false;
  uint64_t QueueDepthHwm = 0; // guarded by Mu
  std::atomic<uint64_t> TasksSubmitted{0};
  std::unique_ptr<WorkerTelemetry[]> WorkerTel;
};

/// Runs Body(0..N-1) on \p Jobs resolved workers. Jobs <= 1 (or N <= 1)
/// runs inline on the calling thread — the serial path, bit-for-bit what a
/// plain loop does — so `--jobs 1` never constructs a pool.
void parallelForJobs(unsigned Jobs, size_t N,
                     const std::function<void(size_t)> &Body);

} // namespace bpcr

#endif // BPCR_SUPPORT_THREADPOOL_H
