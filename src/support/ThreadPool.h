//===- support/ThreadPool.h - Fixed worker pool -----------------*- C++ -*-===//
//
// Part of the bpcr project (Krall, PLDI 1994 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A fixed-size worker pool for the machine-search hot paths. Tasks are
/// plain std::function thunks; submit() hands back a future per task and
/// tasks start in submission order, so callers that write results into
/// pre-sized slots indexed by submission position get deterministic output
/// regardless of which worker finishes first.
///
/// parallelFor() is the primary entry point: it dispatches loop indices
/// 0..N-1 over the workers through a shared atomic cursor. Every index runs
/// exactly once; exceptions are captured and the first one (by index order)
/// is rethrown on the calling thread after all work drains.
///
/// The pool deliberately has no work stealing, priorities, or dynamic
/// sizing: per-branch machine searches are coarse, independent tasks and a
/// queue plus condition variable saturates every core. Callers that want
/// today's serial behaviour simply do not construct a pool (the convention
/// used by the `Jobs` knobs: a resolved job count of 1 never touches this
/// class).
///
//===----------------------------------------------------------------------===//

#ifndef BPCR_SUPPORT_THREADPOOL_H
#define BPCR_SUPPORT_THREADPOOL_H

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace bpcr {

class ThreadPool {
public:
  /// Spawns \p Threads workers; 0 means one per hardware core.
  explicit ThreadPool(unsigned Threads = 0);

  ThreadPool(const ThreadPool &) = delete;
  ThreadPool &operator=(const ThreadPool &) = delete;

  /// Drains the queue and joins every worker.
  ~ThreadPool();

  unsigned size() const { return static_cast<unsigned>(Workers.size()); }

  /// Enqueues one task. Tasks are started in submission order.
  std::future<void> submit(std::function<void()> Task);

  /// Runs Body(0..N-1), each index exactly once, across the workers. The
  /// calling thread blocks until every index completed. The first exception
  /// (lowest index) is rethrown here.
  void parallelFor(size_t N, const std::function<void(size_t)> &Body);

  /// std::thread::hardware_concurrency() clamped to at least 1.
  static unsigned hardwareThreads();

  /// Resolves a user-facing jobs knob: 0 (auto) becomes the hardware
  /// thread count, anything else passes through.
  static unsigned resolveJobs(unsigned Jobs) {
    return Jobs == 0 ? hardwareThreads() : Jobs;
  }

private:
  void workerLoop();

  std::vector<std::thread> Workers;
  std::deque<std::packaged_task<void()>> Queue;
  std::mutex Mu;
  std::condition_variable CV;
  bool Stopping = false;
};

/// Runs Body(0..N-1) on \p Jobs resolved workers. Jobs <= 1 (or N <= 1)
/// runs inline on the calling thread — the serial path, bit-for-bit what a
/// plain loop does — so `--jobs 1` never constructs a pool.
void parallelForJobs(unsigned Jobs, size_t N,
                     const std::function<void(size_t)> &Body);

} // namespace bpcr

#endif // BPCR_SUPPORT_THREADPOOL_H
