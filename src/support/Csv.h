//===- support/Csv.h - CSV emission for plotting ----------------*- C++ -*-===//
//
// Part of the bpcr project (Krall, PLDI 1994 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Minimal CSV writer used to dump the figure series (misprediction rate vs
/// code size) in a form that gnuplot or a spreadsheet can consume directly.
///
//===----------------------------------------------------------------------===//

#ifndef BPCR_SUPPORT_CSV_H
#define BPCR_SUPPORT_CSV_H

#include <string>
#include <vector>

namespace bpcr {

/// Builds a CSV document in memory; writeFile() persists it.
class CsvWriter {
public:
  void addRow(const std::vector<std::string> &Cells);

  /// The document rendered with RFC-4180 style quoting where needed.
  std::string str() const { return Body; }

  /// Writes the document to \p Path. \returns false on I/O failure.
  bool writeFile(const std::string &Path) const;

private:
  std::string Body;
};

} // namespace bpcr

#endif // BPCR_SUPPORT_CSV_H
