//===- support/BitHistory.h - Shift-register branch history ----*- C++ -*-===//
//
// Part of the bpcr project: a reproduction of Krall, "Improving Semi-static
// Branch Prediction by Code Replication", PLDI 1994.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A fixed-width shift register recording the most recent branch outcomes.
/// The most recent outcome occupies the least significant bit, matching the
/// paper's convention that "the rightmost digit represents the direction of
/// the last iteration".
///
//===----------------------------------------------------------------------===//

#ifndef BPCR_SUPPORT_BITHISTORY_H
#define BPCR_SUPPORT_BITHISTORY_H

#include <cassert>
#include <cstdint>

namespace bpcr {

/// A shift register of branch outcomes, at most 31 bits wide.
///
/// After fewer than width() outcomes have been pushed the register is "cold";
/// callers that must not consult partially filled histories should check
/// isWarm() first.
class BitHistory {
public:
  static constexpr unsigned MaxWidth = 31;

  explicit BitHistory(unsigned Width) : Width(Width) {
    assert(Width >= 1 && Width <= MaxWidth && "history width out of range");
  }

  /// Records one branch outcome; the previous outcomes shift left.
  void push(bool Taken) {
    Bits = ((Bits << 1) | (Taken ? 1U : 0U)) & mask();
    if (Filled < Width)
      ++Filled;
  }

  /// The last width() outcomes packed with the most recent in bit 0.
  uint32_t value() const { return Bits; }

  /// The last \p Len outcomes (Len <= width()).
  uint32_t lowBits(unsigned Len) const {
    assert(Len <= Width && "requested more bits than the history holds");
    return Bits & ((Len >= 32) ? ~0U : ((1U << Len) - 1U));
  }

  unsigned width() const { return Width; }

  /// Number of outcomes recorded so far, saturating at width().
  unsigned filled() const { return Filled; }

  /// True once width() outcomes have been recorded.
  bool isWarm() const { return Filled == Width; }

  void clear() {
    Bits = 0;
    Filled = 0;
  }

private:
  uint32_t mask() const { return (Width >= 32) ? ~0U : ((1U << Width) - 1U); }

  uint32_t Bits = 0;
  unsigned Width;
  unsigned Filled = 0;
};

} // namespace bpcr

#endif // BPCR_SUPPORT_BITHISTORY_H
