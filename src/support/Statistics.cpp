//===- support/Statistics.cpp ---------------------------------------------===//
//
// Part of the bpcr project (Krall, PLDI 1994 reproduction).
//
//===----------------------------------------------------------------------===//

#include "support/Statistics.h"

#include <cstdio>

using namespace bpcr;

std::string bpcr::formatPercent(double Percent) {
  char Buf[32];
  std::snprintf(Buf, sizeof(Buf), "%.1f", Percent);
  return std::string(Buf);
}
