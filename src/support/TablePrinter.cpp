//===- support/TablePrinter.cpp -------------------------------------------===//
//
// Part of the bpcr project (Krall, PLDI 1994 reproduction).
//
//===----------------------------------------------------------------------===//

#include "support/TablePrinter.h"

#include <algorithm>

using namespace bpcr;

void TablePrinter::setHeader(std::vector<std::string> Cells) {
  Header = std::move(Cells);
}

void TablePrinter::addRow(std::vector<std::string> Cells) {
  Rows.push_back({std::move(Cells), false});
}

void TablePrinter::addSeparator() {
  Row R;
  R.Separator = true;
  Rows.push_back(std::move(R));
}

std::string TablePrinter::renderCsv() const {
  auto EmitCell = [](std::string &Out, const std::string &Cell) {
    if (Cell.find_first_of(",\"\n\r") == std::string::npos) {
      Out += Cell;
      return;
    }
    Out += '"';
    for (char C : Cell) {
      if (C == '"')
        Out += '"';
      Out += C;
    }
    Out += '"';
  };
  auto EmitRow = [&EmitCell](std::string &Out,
                             const std::vector<std::string> &Cells) {
    for (size_t I = 0; I < Cells.size(); ++I) {
      if (I)
        Out += ',';
      EmitCell(Out, Cells[I]);
    }
    Out += '\n';
  };

  std::string Out;
  if (!Header.empty())
    EmitRow(Out, Header);
  for (const Row &R : Rows)
    if (!R.Separator)
      EmitRow(Out, R.Cells);
  return Out;
}

std::string TablePrinter::render() const {
  // Column widths over the header and every row.
  std::vector<size_t> Widths;
  auto Grow = [&Widths](const std::vector<std::string> &Cells) {
    if (Cells.size() > Widths.size())
      Widths.resize(Cells.size(), 0);
    for (size_t I = 0; I < Cells.size(); ++I)
      Widths[I] = std::max(Widths[I], Cells[I].size());
  };
  Grow(Header);
  for (const Row &R : Rows)
    Grow(R.Cells);

  size_t Total = 0;
  for (size_t W : Widths)
    Total += W + 2;

  std::string Out;
  Out += Title;
  Out += '\n';
  Out.append(Total, '=');
  Out += '\n';

  auto Emit = [&](const std::vector<std::string> &Cells, bool AlignLeftFirst) {
    for (size_t I = 0; I < Widths.size(); ++I) {
      const std::string Cell = I < Cells.size() ? Cells[I] : std::string();
      // Row labels flush left, numeric cells flush right.
      if (I == 0 && AlignLeftFirst) {
        Out += Cell;
        Out.append(Widths[I] - Cell.size() + 2, ' ');
      } else {
        Out.append(Widths[I] - Cell.size(), ' ');
        Out += Cell;
        Out.append(2, ' ');
      }
    }
    while (!Out.empty() && Out.back() == ' ')
      Out.pop_back();
    Out += '\n';
  };

  if (!Header.empty()) {
    Emit(Header, true);
    Out.append(Total, '-');
    Out += '\n';
  }
  for (const Row &R : Rows) {
    if (R.Separator) {
      Out.append(Total, '-');
      Out += '\n';
      continue;
    }
    Emit(R.Cells, true);
  }
  Out.append(Total, '=');
  Out += '\n';
  return Out;
}
