//===- support/ThreadPool.cpp ---------------------------------------------===//
//
// Part of the bpcr project (Krall, PLDI 1994 reproduction).
//
//===----------------------------------------------------------------------===//

#include "support/ThreadPool.h"

#include "obs/Metrics.h"

#include <algorithm>
#include <atomic>

using namespace bpcr;

unsigned ThreadPool::hardwareThreads() {
  unsigned N = std::thread::hardware_concurrency();
  return N == 0 ? 1 : N;
}

ThreadPool::ThreadPool(unsigned Threads) {
  unsigned N = resolveJobs(Threads);
  WorkerTel = std::make_unique<WorkerTelemetry[]>(N);
  Workers.reserve(N);
  for (unsigned I = 0; I < N; ++I)
    Workers.emplace_back([this, I] { workerLoop(I); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> Lock(Mu);
    Stopping = true;
  }
  CV.notify_all();
  for (std::thread &W : Workers)
    W.join();
  flushMetrics();
}

void ThreadPool::workerLoop(unsigned WorkerIndex) {
  using Clock = std::chrono::steady_clock;
  WorkerTelemetry &Tel = WorkerTel[WorkerIndex];
  auto ElapsedNs = [](Clock::time_point From, Clock::time_point To) {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(To - From)
            .count());
  };
  for (;;) {
    QueueItem Item;
    Clock::time_point DequeuedAt;
    {
      Clock::time_point WaitStart = Clock::now();
      std::unique_lock<std::mutex> Lock(Mu);
      CV.wait(Lock, [this] { return Stopping || !Queue.empty(); });
      DequeuedAt = Clock::now();
      Tel.IdleNs.fetch_add(ElapsedNs(WaitStart, DequeuedAt),
                           std::memory_order_relaxed);
      if (Queue.empty())
        return; // Stopping and drained.
      Item = std::move(Queue.front());
      Queue.pop_front();
    }
    uint64_t LatNs = ElapsedNs(Item.EnqueuedAt, DequeuedAt);
    Tel.LatCount.fetch_add(1, std::memory_order_relaxed);
    Tel.LatTotalNs.fetch_add(LatNs, std::memory_order_relaxed);
    uint64_t Max = Tel.LatMaxNs.load(std::memory_order_relaxed);
    while (LatNs > Max && !Tel.LatMaxNs.compare_exchange_weak(
                              Max, LatNs, std::memory_order_relaxed))
      ;
    Tel.LatencySamples.push_back(LatNs);
    Item.Task();
    Tel.BusyNs.fetch_add(ElapsedNs(DequeuedAt, Clock::now()),
                         std::memory_order_relaxed);
  }
}

std::future<void> ThreadPool::submit(std::function<void()> Task) {
  QueueItem Item;
  Item.Task = std::packaged_task<void()>(std::move(Task));
  Item.EnqueuedAt = std::chrono::steady_clock::now();
  std::future<void> F = Item.Task.get_future();
  {
    std::lock_guard<std::mutex> Lock(Mu);
    Queue.push_back(std::move(Item));
    if (Queue.size() > QueueDepthHwm)
      QueueDepthHwm = Queue.size();
  }
  CV.notify_one();
  TasksSubmitted.fetch_add(1, std::memory_order_relaxed);
  Registry &Obs = Registry::global();
  if (Obs.enabled())
    Obs.counter("pool.tasks").inc();
  return F;
}

PoolStats ThreadPool::stats() const {
  PoolStats Out;
  Out.TasksSubmitted = TasksSubmitted.load(std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> Lock(Mu);
    Out.QueueDepthHwm = QueueDepthHwm;
  }
  for (unsigned I = 0; I < size(); ++I) {
    const WorkerTelemetry &Tel = WorkerTel[I];
    Out.WorkerBusyNs.push_back(Tel.BusyNs.load(std::memory_order_relaxed));
    Out.WorkerIdleNs.push_back(Tel.IdleNs.load(std::memory_order_relaxed));
    Out.SubmitLatencyCount += Tel.LatCount.load(std::memory_order_relaxed);
    Out.SubmitLatencyTotalNs +=
        Tel.LatTotalNs.load(std::memory_order_relaxed);
    Out.SubmitLatencyMaxNs =
        std::max(Out.SubmitLatencyMaxNs,
                 Tel.LatMaxNs.load(std::memory_order_relaxed));
  }
  return Out;
}

void ThreadPool::flushMetrics() {
  Registry &Obs = Registry::global();
  if (!Obs.enabled())
    return;
  Gauge &Hwm = Obs.gauge("pool.queue_depth_hwm");
  Hwm.set(std::max(Hwm.value(), static_cast<double>(QueueDepthHwm)));
  Histogram &Busy = Obs.histogram("pool.worker.busy_ns");
  Histogram &Idle = Obs.histogram("pool.worker.idle_ns");
  Histogram &Lat = Obs.histogram("pool.submit_latency_ns");
  uint64_t TotalBusy = 0, TotalIdle = 0;
  for (unsigned I = 0; I < size(); ++I) {
    WorkerTelemetry &Tel = WorkerTel[I];
    uint64_t B = Tel.BusyNs.load(std::memory_order_relaxed);
    uint64_t Id = Tel.IdleNs.load(std::memory_order_relaxed);
    TotalBusy += B;
    TotalIdle += Id;
    Busy.record(static_cast<double>(B));
    Idle.record(static_cast<double>(Id));
    for (uint64_t Sample : Tel.LatencySamples)
      Lat.record(static_cast<double>(Sample));
  }
  if (TotalBusy + TotalIdle > 0)
    Obs.gauge("pool.utilization_percent")
        .set(100.0 * static_cast<double>(TotalBusy) /
             static_cast<double>(TotalBusy + TotalIdle));
}

void ThreadPool::parallelFor(size_t N,
                             const std::function<void(size_t)> &Body) {
  if (N == 0)
    return;
  if (N == 1 || size() <= 1) {
    for (size_t I = 0; I < N; ++I)
      Body(I);
    return;
  }

  // One shared cursor, one runner task per worker (capped by N). Exceptions
  // are kept per index so the rethrow is deterministic: the lowest failing
  // index wins no matter which worker hit it.
  auto Next = std::make_shared<std::atomic<size_t>>(0);
  std::mutex ErrMu;
  size_t ErrIndex = SIZE_MAX;
  std::exception_ptr Err;

  auto Runner = [&, Next] {
    for (;;) {
      size_t I = Next->fetch_add(1, std::memory_order_relaxed);
      if (I >= N)
        return;
      try {
        Body(I);
      } catch (...) {
        std::lock_guard<std::mutex> Lock(ErrMu);
        if (I < ErrIndex) {
          ErrIndex = I;
          Err = std::current_exception();
        }
      }
    }
  };

  size_t Runners = std::min<size_t>(size(), N);
  std::vector<std::future<void>> Futures;
  Futures.reserve(Runners);
  for (size_t R = 0; R < Runners; ++R)
    Futures.push_back(submit(Runner));
  for (std::future<void> &F : Futures)
    F.get();
  if (Err)
    std::rethrow_exception(Err);
}

void bpcr::parallelForJobs(unsigned Jobs, size_t N,
                           const std::function<void(size_t)> &Body) {
  unsigned Resolved = ThreadPool::resolveJobs(Jobs);
  if (Resolved <= 1 || N <= 1) {
    for (size_t I = 0; I < N; ++I)
      Body(I);
    return;
  }
  ThreadPool Pool(std::min<unsigned>(Resolved, static_cast<unsigned>(N)));
  Registry &Obs = Registry::global();
  if (Obs.enabled())
    Obs.gauge("pool.threads").set(static_cast<double>(Pool.size()));
  Pool.parallelFor(N, Body);
}
