//===- support/ThreadPool.cpp ---------------------------------------------===//
//
// Part of the bpcr project (Krall, PLDI 1994 reproduction).
//
//===----------------------------------------------------------------------===//

#include "support/ThreadPool.h"

#include "obs/Metrics.h"

#include <algorithm>
#include <atomic>

using namespace bpcr;

unsigned ThreadPool::hardwareThreads() {
  unsigned N = std::thread::hardware_concurrency();
  return N == 0 ? 1 : N;
}

ThreadPool::ThreadPool(unsigned Threads) {
  unsigned N = resolveJobs(Threads);
  Workers.reserve(N);
  for (unsigned I = 0; I < N; ++I)
    Workers.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> Lock(Mu);
    Stopping = true;
  }
  CV.notify_all();
  for (std::thread &W : Workers)
    W.join();
}

void ThreadPool::workerLoop() {
  for (;;) {
    std::packaged_task<void()> Task;
    {
      std::unique_lock<std::mutex> Lock(Mu);
      CV.wait(Lock, [this] { return Stopping || !Queue.empty(); });
      if (Queue.empty())
        return; // Stopping and drained.
      Task = std::move(Queue.front());
      Queue.pop_front();
    }
    Task();
  }
}

std::future<void> ThreadPool::submit(std::function<void()> Task) {
  std::packaged_task<void()> PT(std::move(Task));
  std::future<void> F = PT.get_future();
  {
    std::lock_guard<std::mutex> Lock(Mu);
    Queue.push_back(std::move(PT));
  }
  CV.notify_one();
  Registry &Obs = Registry::global();
  if (Obs.enabled())
    Obs.counter("pool.tasks").inc();
  return F;
}

void ThreadPool::parallelFor(size_t N,
                             const std::function<void(size_t)> &Body) {
  if (N == 0)
    return;
  if (N == 1 || size() <= 1) {
    for (size_t I = 0; I < N; ++I)
      Body(I);
    return;
  }

  // One shared cursor, one runner task per worker (capped by N). Exceptions
  // are kept per index so the rethrow is deterministic: the lowest failing
  // index wins no matter which worker hit it.
  auto Next = std::make_shared<std::atomic<size_t>>(0);
  std::mutex ErrMu;
  size_t ErrIndex = SIZE_MAX;
  std::exception_ptr Err;

  auto Runner = [&, Next] {
    for (;;) {
      size_t I = Next->fetch_add(1, std::memory_order_relaxed);
      if (I >= N)
        return;
      try {
        Body(I);
      } catch (...) {
        std::lock_guard<std::mutex> Lock(ErrMu);
        if (I < ErrIndex) {
          ErrIndex = I;
          Err = std::current_exception();
        }
      }
    }
  };

  size_t Runners = std::min<size_t>(size(), N);
  std::vector<std::future<void>> Futures;
  Futures.reserve(Runners);
  for (size_t R = 0; R < Runners; ++R)
    Futures.push_back(submit(Runner));
  for (std::future<void> &F : Futures)
    F.get();
  if (Err)
    std::rethrow_exception(Err);
}

void bpcr::parallelForJobs(unsigned Jobs, size_t N,
                           const std::function<void(size_t)> &Body) {
  unsigned Resolved = ThreadPool::resolveJobs(Jobs);
  if (Resolved <= 1 || N <= 1) {
    for (size_t I = 0; I < N; ++I)
      Body(I);
    return;
  }
  ThreadPool Pool(std::min<unsigned>(Resolved, static_cast<unsigned>(N)));
  Registry &Obs = Registry::global();
  if (Obs.enabled())
    Obs.gauge("pool.threads").set(static_cast<double>(Pool.size()));
  Pool.parallelFor(N, Body);
}
