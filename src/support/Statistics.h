//===- support/Statistics.h - Prediction accounting ------------*- C++ -*-===//
//
// Part of the bpcr project (Krall, PLDI 1994 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Accumulators for prediction outcomes. Every table in the paper reports
/// misprediction rates in percent; PredictionStats is the common currency all
/// predictors and state machines report in.
///
//===----------------------------------------------------------------------===//

#ifndef BPCR_SUPPORT_STATISTICS_H
#define BPCR_SUPPORT_STATISTICS_H

#include <cstdint>
#include <string>

namespace bpcr {

/// Counts of predicted branch executions and how many were wrong.
struct PredictionStats {
  uint64_t Predictions = 0;
  uint64_t Mispredictions = 0;

  void record(bool Correct) {
    ++Predictions;
    if (!Correct)
      ++Mispredictions;
  }

  /// Merges another accumulator into this one.
  PredictionStats &operator+=(const PredictionStats &Other) {
    Predictions += Other.Predictions;
    Mispredictions += Other.Mispredictions;
    return *this;
  }

  /// Misprediction rate in percent; 0 when nothing was predicted.
  double mispredictionPercent() const {
    if (Predictions == 0)
      return 0.0;
    return 100.0 * static_cast<double>(Mispredictions) /
           static_cast<double>(Predictions);
  }

  uint64_t correct() const { return Predictions - Mispredictions; }
};

/// Formats a rate like the paper's tables: one decimal place.
std::string formatPercent(double Percent);

} // namespace bpcr

#endif // BPCR_SUPPORT_STATISTICS_H
