//===- support/Rng.h - Deterministic random number generator ---*- C++ -*-===//
//
// Part of the bpcr project (Krall, PLDI 1994 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small, fast, deterministic generator (splitmix64) used by the synthetic
/// workloads so that every experiment is exactly reproducible from a seed.
/// std::mt19937 is avoided deliberately: its state is large and its exact
/// stream is easy to perturb accidentally across standard library versions
/// when combined with distribution objects.
///
//===----------------------------------------------------------------------===//

#ifndef BPCR_SUPPORT_RNG_H
#define BPCR_SUPPORT_RNG_H

#include <cstdint>

namespace bpcr {

/// splitmix64: passes BigCrush, two ops per word, trivially seedable.
class Rng {
public:
  explicit Rng(uint64_t Seed = 0x9e3779b97f4a7c15ULL) : State(Seed) {}

  uint64_t next() {
    State += 0x9e3779b97f4a7c15ULL;
    uint64_t Z = State;
    Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebULL;
    return Z ^ (Z >> 31);
  }

  /// Uniform value in [0, Bound); Bound must be nonzero.
  uint64_t below(uint64_t Bound) { return next() % Bound; }

  /// Uniform value in [Lo, Hi] inclusive.
  int64_t range(int64_t Lo, int64_t Hi) {
    return Lo + static_cast<int64_t>(below(static_cast<uint64_t>(Hi - Lo + 1)));
  }

  /// True with probability Num/Den.
  bool chance(uint64_t Num, uint64_t Den) { return below(Den) < Num; }

  /// Uniform double in [0, 1).
  double unit() {
    return static_cast<double>(next() >> 11) * (1.0 / 9007199254740992.0);
  }

private:
  uint64_t State;
};

} // namespace bpcr

#endif // BPCR_SUPPORT_RNG_H
