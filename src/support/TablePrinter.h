//===- support/TablePrinter.h - Aligned text tables -------------*- C++ -*-===//
//
// Part of the bpcr project (Krall, PLDI 1994 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Renders the paper-style tables (benchmarks as columns, strategies as rows)
/// as aligned monospaced text. The bench binaries print these so that each
/// table in the paper has a directly comparable textual twin.
///
//===----------------------------------------------------------------------===//

#ifndef BPCR_SUPPORT_TABLEPRINTER_H
#define BPCR_SUPPORT_TABLEPRINTER_H

#include <string>
#include <vector>

namespace bpcr {

/// Accumulates rows of cells and renders them with aligned columns.
class TablePrinter {
public:
  /// \param Title caption printed above the table.
  explicit TablePrinter(std::string Title) : Title(std::move(Title)) {}

  /// Sets the header row (first cell labels the row-name column).
  void setHeader(std::vector<std::string> Cells);

  /// Appends one data row; the first cell is the row label.
  void addRow(std::vector<std::string> Cells);

  /// Inserts a horizontal separator before the next row.
  void addSeparator();

  /// Renders the table; every column is padded to its widest cell.
  std::string render() const;

  /// Renders the table as CSV (header row first, separators dropped, cells
  /// quoted per RFC 4180 when they contain commas/quotes/newlines). Shared
  /// by `bpcr report --format csv` and `bpcr explain --format csv`.
  std::string renderCsv() const;

private:
  struct Row {
    std::vector<std::string> Cells;
    bool Separator = false;
  };

  std::string Title;
  std::vector<std::string> Header;
  std::vector<Row> Rows;
};

} // namespace bpcr

#endif // BPCR_SUPPORT_TABLEPRINTER_H
