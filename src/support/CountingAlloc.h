//===- support/CountingAlloc.h - Tagged allocation accounting ---*- C++ -*-===//
//
// Part of the bpcr project (Krall, PLDI 1994 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// An opt-in counting allocator for the hot containers (trace buffers,
/// SearchCache ladders, pattern tables). Each container names its pool via
/// an AllocTag; a process-global AllocTracker accumulates per-tag
/// allocation/free counts and bytes with relaxed atomics.
///
/// The tracker follows the observability overhead rule: disabled by
/// default, and when disabled every allocation pays exactly one relaxed
/// load and a predictable branch. CountingAllocator is a thin shim over
/// std::allocator, so container behaviour (growth policy, element layout)
/// is unchanged — only the accounting is added.
///
/// Counts for a fixed workload are deterministic for a given binary (the
/// standard library decides growth factors and bucket counts), which makes
/// them byte-identical across --jobs but NOT across compilers or stdlib
/// versions. Gates that span machines must stick to span-open counts; see
/// docs/OBSERVABILITY.md.
///
//===----------------------------------------------------------------------===//

#ifndef BPCR_SUPPORT_COUNTINGALLOC_H
#define BPCR_SUPPORT_COUNTINGALLOC_H

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>

namespace bpcr {

/// The instrumented pools. Order is the report/profile emission order.
enum class AllocTag : unsigned {
  TraceBuffer = 0, ///< trace::Trace event vectors
  Ladder,          ///< SearchCache MachineLadder rung vectors
  PatternTable,    ///< BranchProfiles pattern-table hash maps
};

constexpr unsigned NumAllocTags = 3;

/// \returns the stable lower_snake name used in profile output and metrics.
inline const char *allocTagName(AllocTag Tag) {
  switch (Tag) {
  case AllocTag::TraceBuffer:
    return "trace_buffer";
  case AllocTag::Ladder:
    return "ladder";
  case AllocTag::PatternTable:
    return "pattern_table";
  }
  return "unknown";
}

/// Process-global per-tag allocation accounting. All mutation is relaxed
/// atomics: totals are exact whenever the counted containers have quiesced
/// (the only time anyone snapshots them), and no ordering is implied.
class AllocTracker {
public:
  struct TagStats {
    uint64_t Allocs = 0;
    uint64_t Frees = 0;
    uint64_t BytesAllocated = 0;
    uint64_t BytesFreed = 0;
    /// High-water mark of BytesAllocated - BytesFreed.
    uint64_t PeakLiveBytes = 0;
  };

  static AllocTracker &global() {
    static AllocTracker T;
    return T;
  }

  bool enabled() const { return Enabled.load(std::memory_order_relaxed); }
  void setEnabled(bool On) { Enabled.store(On, std::memory_order_relaxed); }

  void recordAlloc(AllocTag Tag, size_t Bytes) {
    Slot &S = Slots[static_cast<unsigned>(Tag)];
    S.Allocs.fetch_add(1, std::memory_order_relaxed);
    uint64_t Prev = S.BytesAllocated.fetch_add(Bytes, std::memory_order_relaxed);
    // Saturate at zero: enabling the tracker mid-run can observe frees of
    // memory allocated while it was off.
    uint64_t Freed = S.BytesFreed.load(std::memory_order_relaxed);
    uint64_t Live = Prev + Bytes > Freed ? Prev + Bytes - Freed : 0;
    uint64_t Peak = S.PeakLiveBytes.load(std::memory_order_relaxed);
    while (Live > Peak &&
           !S.PeakLiveBytes.compare_exchange_weak(Peak, Live,
                                                  std::memory_order_relaxed))
      ;
  }

  void recordFree(AllocTag Tag, size_t Bytes) {
    Slot &S = Slots[static_cast<unsigned>(Tag)];
    S.Frees.fetch_add(1, std::memory_order_relaxed);
    S.BytesFreed.fetch_add(Bytes, std::memory_order_relaxed);
  }

  TagStats stats(AllocTag Tag) const {
    const Slot &S = Slots[static_cast<unsigned>(Tag)];
    TagStats Out;
    Out.Allocs = S.Allocs.load(std::memory_order_relaxed);
    Out.Frees = S.Frees.load(std::memory_order_relaxed);
    Out.BytesAllocated = S.BytesAllocated.load(std::memory_order_relaxed);
    Out.BytesFreed = S.BytesFreed.load(std::memory_order_relaxed);
    Out.PeakLiveBytes = S.PeakLiveBytes.load(std::memory_order_relaxed);
    return Out;
  }

  /// Zeroes every tag's totals; the enabled flag is left alone.
  void reset() {
    for (Slot &S : Slots) {
      S.Allocs.store(0, std::memory_order_relaxed);
      S.Frees.store(0, std::memory_order_relaxed);
      S.BytesAllocated.store(0, std::memory_order_relaxed);
      S.BytesFreed.store(0, std::memory_order_relaxed);
      S.PeakLiveBytes.store(0, std::memory_order_relaxed);
    }
  }

private:
  struct Slot {
    std::atomic<uint64_t> Allocs{0};
    std::atomic<uint64_t> Frees{0};
    std::atomic<uint64_t> BytesAllocated{0};
    std::atomic<uint64_t> BytesFreed{0};
    std::atomic<uint64_t> PeakLiveBytes{0};
  };

  std::atomic<bool> Enabled{false};
  Slot Slots[NumAllocTags];
};

/// std::allocator shim that reports to AllocTracker under \p Tag. Stateless;
/// all instances are interchangeable, so containers swap/move freely.
template <typename T, AllocTag Tag> class CountingAllocator {
public:
  using value_type = T;
  using size_type = size_t;
  using difference_type = ptrdiff_t;
  using propagate_on_container_move_assignment = std::true_type;
  using is_always_equal = std::true_type;

  template <typename U> struct rebind {
    using other = CountingAllocator<U, Tag>;
  };

  CountingAllocator() noexcept = default;
  template <typename U>
  CountingAllocator(const CountingAllocator<U, Tag> &) noexcept {}

  T *allocate(size_t N) {
    AllocTracker &Tr = AllocTracker::global();
    if (Tr.enabled())
      Tr.recordAlloc(Tag, N * sizeof(T));
    return std::allocator<T>{}.allocate(N);
  }

  void deallocate(T *P, size_t N) noexcept {
    AllocTracker &Tr = AllocTracker::global();
    if (Tr.enabled())
      Tr.recordFree(Tag, N * sizeof(T));
    std::allocator<T>{}.deallocate(P, N);
  }

  friend bool operator==(const CountingAllocator &,
                         const CountingAllocator &) noexcept {
    return true;
  }
  friend bool operator!=(const CountingAllocator &,
                         const CountingAllocator &) noexcept {
    return false;
  }
};

} // namespace bpcr

#endif // BPCR_SUPPORT_COUNTINGALLOC_H
