//===- support/Csv.cpp ----------------------------------------------------===//
//
// Part of the bpcr project (Krall, PLDI 1994 reproduction).
//
//===----------------------------------------------------------------------===//

#include "support/Csv.h"

#include <cstdio>

using namespace bpcr;

static bool needsQuoting(const std::string &Cell) {
  for (char C : Cell)
    if (C == ',' || C == '"' || C == '\n')
      return true;
  return false;
}

void CsvWriter::addRow(const std::vector<std::string> &Cells) {
  for (size_t I = 0; I < Cells.size(); ++I) {
    if (I)
      Body += ',';
    if (!needsQuoting(Cells[I])) {
      Body += Cells[I];
      continue;
    }
    Body += '"';
    for (char C : Cells[I]) {
      if (C == '"')
        Body += '"';
      Body += C;
    }
    Body += '"';
  }
  Body += '\n';
}

bool CsvWriter::writeFile(const std::string &Path) const {
  std::FILE *F = std::fopen(Path.c_str(), "w");
  if (!F)
    return false;
  size_t Written = std::fwrite(Body.data(), 1, Body.size(), F);
  bool Ok = (Written == Body.size()) && (std::fclose(F) == 0);
  if (!Ok)
    return false;
  return true;
}
