//===- sa/ReplicationSoundness.cpp ----------------------------------------===//
//
// Part of the bpcr project (Krall, PLDI 1994 reproduction).
//
//===----------------------------------------------------------------------===//

#include "sa/ReplicationSoundness.h"

#include "sa/Passes.h"

#include <algorithm>
#include <deque>
#include <iterator>
#include <utility>

using namespace bpcr;
using namespace bpcr::sa;

namespace {

constexpr const char *PassId = "replication-soundness";

Location locOf(const Module &M, int32_t FI, int32_t Block, int32_t Inst) {
  Location Loc;
  Loc.FuncIdx = FI;
  if (FI >= 0) {
    Loc.FuncName = M.Functions[static_cast<size_t>(FI)].Name;
    Loc.BlockIdx = Block;
    if (Block >= 0)
      Loc.BlockName = M.Functions[static_cast<size_t>(FI)]
                          .Blocks[static_cast<size_t>(Block)]
                          .Name;
    Loc.InstIdx = Inst;
  }
  return Loc;
}

/// Field-by-field equality over everything replication must preserve:
/// opcode, registers, immediates, callee and arguments. Block targets,
/// branch ids and prediction annotations are exactly what the transform is
/// licensed to rewrite, so they are excluded.
bool sameComputation(const Instruction &A, const Instruction &B) {
  return A.Op == B.Op && A.Dst == B.Dst && A.A == B.A && A.B == B.B &&
         A.C == B.C && A.Callee == B.Callee && A.Args == B.Args &&
         A.PtrCmp == B.PtrCmp;
}

void checkFunction(const Module &Orig, const Module &Repl, uint32_t FI,
                   int32_t OrigBranchCount,
                   const std::vector<int32_t> *CopyToOrig,
                   std::vector<Diagnostic> &Out) {
  const Function &OF = Orig.Functions[FI];
  const Function &RF = Repl.Functions[FI];
  const int32_t SFI = static_cast<int32_t>(FI);

  if (OF.NumParams != RF.NumParams || RF.NumRegs < OF.NumRegs) {
    Out.push_back(makeDiag(
        Severity::Error, PassId, "function-shape", locOf(Repl, SFI, -1, -1),
        "replicated function signature diverged from the original "
        "(params " +
            std::to_string(RF.NumParams) + " vs " +
            std::to_string(OF.NumParams) + ", regs " +
            std::to_string(RF.NumRegs) + " vs " +
            std::to_string(OF.NumRegs) + ")"));
    return;
  }
  if (!isCfgBuildable(OF) || !isCfgBuildable(RF)) {
    if (!isCfgBuildable(RF))
      Out.push_back(makeDiag(Severity::Error, PassId, "function-shape",
                             locOf(Repl, SFI, -1, -1),
                             "replicated function is structurally invalid "
                             "(incomplete block or out-of-range target); "
                             "simulation cannot be checked"));
    return;
  }

  // Lockstep BFS over (original block, replicated block) pairs. MapRB
  // remembers which original each replicated block simulates; a conflict
  // means the replicated CFG merged two distinct original program points.
  std::vector<int32_t> MapRB(RF.Blocks.size(), -1);
  std::deque<std::pair<uint32_t, uint32_t>> Work;
  Work.push_back({0, 0});
  while (!Work.empty()) {
    auto [OB, RB] = Work.front();
    Work.pop_front();
    if (MapRB[RB] != -1) {
      if (MapRB[RB] != static_cast<int32_t>(OB)) {
        Diagnostic D = makeDiag(
            Severity::Error, PassId, "fold-conflict",
            locOf(Repl, SFI, static_cast<int32_t>(RB), -1),
            "replicated block simulates two different original blocks (" +
                std::to_string(MapRB[RB]) + " and " + std::to_string(OB) +
                "); the state-in-PC encoding collapsed distinct program "
                "points");
        D.note(locOf(Orig, SFI, static_cast<int32_t>(OB), -1),
               "second original block reached through this pairing");
        Out.push_back(std::move(D));
      }
      continue;
    }
    MapRB[RB] = static_cast<int32_t>(OB);

    const BasicBlock &OBB = OF.Blocks[OB];
    const BasicBlock &RBB = RF.Blocks[RB];
    if (OBB.Insts.size() != RBB.Insts.size()) {
      Diagnostic D = makeDiag(
          Severity::Error, PassId, "block-mismatch",
          locOf(Repl, SFI, static_cast<int32_t>(RB), -1),
          "replicated block has " + std::to_string(RBB.Insts.size()) +
              " instructions where its original has " +
              std::to_string(OBB.Insts.size()));
      D.note(locOf(Orig, SFI, static_cast<int32_t>(OB), -1),
             "original block it should simulate");
      Out.push_back(std::move(D));
      continue; // cannot align successors past a length mismatch
    }

    bool TerminatorOk = true;
    for (size_t II = 0; II < RBB.Insts.size(); ++II) {
      const Instruction &OI = OBB.Insts[II];
      const Instruction &RI = RBB.Insts[II];
      if (!sameComputation(OI, RI)) {
        Diagnostic D = makeDiag(
            Severity::Error, PassId, "instruction-mismatch",
            locOf(Repl, SFI, static_cast<int32_t>(RB),
                  static_cast<int32_t>(II)),
            std::string("instruction diverged from its original (") +
                opcodeName(RI.Op) + " vs " + opcodeName(OI.Op) +
                "); replication may only rewrite targets, ids and "
                "predictions");
        D.note(locOf(Orig, SFI, static_cast<int32_t>(OB),
                     static_cast<int32_t>(II)),
               "original instruction");
        Out.push_back(std::move(D));
        if (II + 1 == RBB.Insts.size())
          TerminatorOk = false;
      }
    }
    if (!TerminatorOk)
      continue; // successor shapes are not comparable

    const Instruction &OT = OBB.terminator();
    const Instruction &RT = RBB.terminator();
    if (RT.isConditionalBranch()) {
      // Fold check: the copy must fold onto the original branch it
      // simulates.
      const int32_t WantId = OT.BranchId;
      if (RT.OrigBranchId < 0 || RT.OrigBranchId >= OrigBranchCount) {
        Out.push_back(makeDiag(
            Severity::Error, PassId, "orphan-copy",
            locOf(Repl, SFI, static_cast<int32_t>(RB),
                  static_cast<int32_t>(RBB.Insts.size() - 1)),
            "replicated branch folds onto original id " +
                std::to_string(RT.OrigBranchId) +
                ", which is outside the original module's id range [0, " +
                std::to_string(OrigBranchCount) + ")"));
      } else if (RT.OrigBranchId != WantId) {
        Diagnostic D = makeDiag(
            Severity::Error, PassId, "wrong-fold",
            locOf(Repl, SFI, static_cast<int32_t>(RB),
                  static_cast<int32_t>(RBB.Insts.size() - 1)),
            "replicated branch folds onto original id " +
                std::to_string(RT.OrigBranchId) +
                " but the simulation relation pairs it with original id " +
                std::to_string(WantId) +
                "; its mispredictions would be charged to the wrong "
                "branch");
        D.note(locOf(Orig, SFI, static_cast<int32_t>(OB),
                     static_cast<int32_t>(OBB.Insts.size() - 1)),
               "original branch this copy simulates");
        Out.push_back(std::move(D));
      }
      if (CopyToOrig && RT.BranchId >= 0) {
        const size_t Idx = static_cast<size_t>(RT.BranchId);
        const int32_t MapSays =
            Idx < CopyToOrig->size() ? (*CopyToOrig)[Idx] : NoBranchId;
        if (MapSays != WantId)
          Out.push_back(makeDiag(
              Severity::Error, PassId, "map-mismatch",
              locOf(Repl, SFI, static_cast<int32_t>(RB),
                    static_cast<int32_t>(RBB.Insts.size() - 1)),
              "copy→original map sends replica id " +
                  std::to_string(RT.BranchId) + " to original id " +
                  std::to_string(MapSays) +
                  " but the simulation relation requires " +
                  std::to_string(WantId)));
      }
    }

    // Out-edge projection: both terminators have the same opcode (checked
    // above), so their successor lists align positionally.
    switch (RT.Op) {
    case Opcode::Br:
      Work.push_back({OT.TrueTarget, RT.TrueTarget});
      Work.push_back({OT.FalseTarget, RT.FalseTarget});
      break;
    case Opcode::Jmp:
      Work.push_back({OT.TrueTarget, RT.TrueTarget});
      break;
    default:
      break;
    }
  }
}

/// Pass adapter: captures the original module and checks that the module
/// the manager runs it over simulates it.
class ReplicationSoundnessPass : public Pass {
public:
  explicit ReplicationSoundnessPass(Module Original)
      : Original(std::move(Original)) {}
  const char *id() const override { return PassId; }
  const char *description() const override {
    return "the replicated module simulates its original: paired blocks "
           "run identical computations, out-edges project onto the "
           "original's, and every copy folds onto the branch it simulates";
  }
  void run(const Module &M, std::vector<Diagnostic> &Out) const override {
    std::vector<Diagnostic> Diags = checkReplicationSoundness(Original, M);
    Out.insert(Out.end(), std::make_move_iterator(Diags.begin()),
               std::make_move_iterator(Diags.end()));
  }

private:
  Module Original;
};

} // namespace

std::unique_ptr<Pass> sa::createReplicationSoundnessPass(Module Original) {
  return std::make_unique<ReplicationSoundnessPass>(std::move(Original));
}

std::vector<Diagnostic>
sa::checkReplicationSoundness(const Module &Original, const Module &Replicated,
                              const std::vector<int32_t> *CopyToOrig) {
  std::vector<Diagnostic> Out;

  if (Original.Functions.size() != Replicated.Functions.size() ||
      Original.EntryFunction != Replicated.EntryFunction)
    Out.push_back(makeDiag(
        Severity::Error, PassId, "module-shape", Location{},
        "replicated module changed the function list or entry point "
        "(functions " +
            std::to_string(Replicated.Functions.size()) + " vs " +
            std::to_string(Original.Functions.size()) + ", entry " +
            std::to_string(Replicated.EntryFunction) + " vs " +
            std::to_string(Original.EntryFunction) + ")"));
  if (Original.MemWords != Replicated.MemWords ||
      Original.InitialMemory != Replicated.InitialMemory)
    Out.push_back(makeDiag(Severity::Error, PassId, "module-shape",
                           Location{},
                           "replicated module changed the data memory "
                           "image; replication must not touch data"));

  const int32_t OrigBranchCount =
      static_cast<int32_t>(Original.conditionalBranchCount());
  const size_t NumFuncs =
      std::min(Original.Functions.size(), Replicated.Functions.size());
  for (uint32_t FI = 0; FI < NumFuncs; ++FI)
    checkFunction(Original, Replicated, FI, OrigBranchCount, CopyToOrig,
                  Out);
  return Out;
}
