//===- sa/LoopShape.cpp - CFG shapes that defeat loop replication ---------===//
//
// Part of the bpcr project (Krall, PLDI 1994 reproduction).
//
//===----------------------------------------------------------------------===//
//
// LoopAwareProfiles and the loop replication transform both assume the
// classical natural-loop model: every cycle has a single dominating header,
// entry resets the per-loop machine state, and exits are where state is
// discarded. Three shapes break that model:
//
//   irreducible-loop       a cycle that survives after all dominator back
//                          edges are removed, i.e. a cycle with no
//                          dominating header. Natural-loop detection cannot
//                          see it, so its branches are classified NonLoop
//                          and the first-iteration/rest split never applies.
//   no-preheader           a loop header entered by more than one outside
//                          edge (or by an edge whose source does not
//                          dominate the header). Each entry is a separate
//                          "reset" context; replication would have to clone
//                          per entry to keep iteration counts honest.
//   scattered-exits        exit edges leaving from blocks other than the
//                          header or a latch. Each such mid-body exit is a
//                          path on which the exit-machine's "rest of loop"
//                          prediction is never consulted.
//
// Irreducibility is decided by removing genuine back edges (u -> v with v
// dominating u) and cycle-checking the residual graph. The naive "edge to
// an earlier RPO block that is not a dominator" test is wrong: a cross edge
// in a reducible DAG (a->b, a->c, b->d, c->b) trips it.
//
//===----------------------------------------------------------------------===//

#include "analysis/Dominators.h"
#include "analysis/LoopInfo.h"
#include "sa/Passes.h"

#include <algorithm>

using namespace bpcr;
using namespace bpcr::sa;

namespace {

constexpr const char *PassId = "loop-shape";

class LoopShapePass : public FunctionPass {
public:
  const char *id() const override { return PassId; }
  const char *description() const override {
    return "irreducible loops, loop headers without a dominating preheader, "
           "and loops whose exits leave from mid-body blocks — the shapes "
           "that break LoopAwareProfiles' reset model";
  }

  void runOnFunction(const Module &M, uint32_t FI,
                     std::vector<Diagnostic> &Out) const override {
    const Function &F = M.Functions[FI];
    if (!isCfgBuildable(F))
      return;
    CFG G(F);
    Dominators Dom(G);

    auto LocOf = [&](uint32_t Block) {
      Location Loc;
      Loc.FuncIdx = static_cast<int32_t>(FI);
      Loc.FuncName = F.Name;
      Loc.BlockIdx = static_cast<int32_t>(Block);
      Loc.BlockName = F.Blocks[Block].Name;
      return Loc;
    };

    checkIrreducible(G, Dom, LocOf, Out);

    LoopInfo LI(G, Dom);
    for (size_t L = 0; L < LI.loops().size(); ++L)
      checkLoop(G, Dom, LI.loops()[L], LocOf, Out);
  }

  /// Reports one irreducible-loop error per residual cycle found after
  /// deleting all dominator back edges from the reachable subgraph.
  template <typename LocFn>
  void checkIrreducible(const CFG &G, const Dominators &Dom, LocFn LocOf,
                        std::vector<Diagnostic> &Out) const {
    const uint32_t N = G.numBlocks();
    // Iterative DFS coloring over the residual graph: 0 white, 1 on the
    // current path, 2 done. A residual edge into color 1 closes a cycle
    // that has no dominating header.
    std::vector<uint8_t> Color(N, 0);
    std::vector<std::pair<uint32_t, size_t>> Stack;
    for (uint32_t Root : G.reversePostOrder()) {
      if (Color[Root] != 0)
        continue;
      Stack.push_back({Root, 0});
      Color[Root] = 1;
      while (!Stack.empty()) {
        uint32_t B = Stack.back().first;
        const std::vector<uint32_t> &Succs = G.successors(B);
        if (Stack.back().second >= Succs.size()) {
          Color[B] = 2;
          Stack.pop_back();
          continue;
        }
        uint32_t S = Succs[Stack.back().second++];
        if (Dom.dominates(S, B))
          continue; // genuine natural-loop back edge: removed
        if (Color[S] == 1) {
          // Recover the offending cycle from the DFS path for the report.
          std::vector<uint32_t> Cycle;
          for (auto It = Stack.rbegin(); It != Stack.rend(); ++It) {
            Cycle.push_back(It->first);
            if (It->first == S)
              break;
          }
          std::reverse(Cycle.begin(), Cycle.end());
          std::string Members;
          for (uint32_t C : Cycle)
            Members +=
                (Members.empty() ? "block" : ", block") + std::to_string(C);
          Diagnostic D = makeDiag(
              Severity::Error, PassId, "irreducible-loop", LocOf(S),
              "cycle through " + Members +
                  " has no dominating header (irreducible loop): "
                  "natural-loop analysis cannot see it, so its branches "
                  "are profiled as non-loop and loop replication never "
                  "applies");
          D.note(LocOf(B), "cycle-closing edge starts here");
          Out.push_back(std::move(D));
          continue; // report once, keep scanning remaining edges
        }
        if (Color[S] == 0) {
          Color[S] = 1;
          Stack.push_back({S, 0});
        }
      }
    }
  }

  template <typename LocFn>
  void checkLoop(const CFG &G, const Dominators &Dom, const Loop &L,
                 LocFn LocOf, std::vector<Diagnostic> &Out) const {
    // Entry edges: predecessors of the header from outside the loop.
    std::vector<uint32_t> OutsidePreds;
    for (uint32_t P : G.predecessors(L.Header))
      if (!L.contains(P))
        OutsidePreds.push_back(P);

    if (OutsidePreds.size() > 1) {
      Diagnostic D = makeDiag(
          Severity::Warning, PassId, "no-preheader", LocOf(L.Header),
          "loop header has " + std::to_string(OutsidePreds.size()) +
              " entry edges from outside the loop; without a unique "
              "dominating preheader every entry is a separate reset point "
              "for LoopAwareProfiles' first-iteration machine");
      for (uint32_t P : OutsidePreds)
        D.note(LocOf(P), "enters the loop from here");
      Out.push_back(std::move(D));
    } else if (OutsidePreds.size() == 1 &&
               !Dom.dominates(OutsidePreds[0], L.Header)) {
      Diagnostic D = makeDiag(
          Severity::Warning, PassId, "no-preheader", LocOf(L.Header),
          "the loop's only outside predecessor does not dominate the "
          "header, so it is not a true preheader; some path reaches the "
          "loop without passing the reset point LoopAwareProfiles assumes");
      D.note(LocOf(OutsidePreds[0]), "non-dominating entry block");
      Out.push_back(std::move(D));
    }

    // Latches: in-loop predecessors of the header.
    std::vector<uint32_t> Latches;
    for (uint32_t P : G.predecessors(L.Header))
      if (L.contains(P))
        Latches.push_back(P);

    // Abnormal exits: exit edges whose source is neither the header nor a
    // latch. One is routine (a break); several mean the loop's exit
    // behaviour is spread over blocks the exit machines never model well.
    std::vector<std::pair<uint32_t, uint32_t>> Abnormal;
    for (uint32_t B : L.Blocks) {
      if (B == L.Header ||
          std::find(Latches.begin(), Latches.end(), B) != Latches.end())
        continue;
      for (uint32_t S : G.successors(B))
        if (!L.contains(S))
          Abnormal.push_back({B, S});
    }
    if (Abnormal.size() >= 2) {
      Diagnostic D = makeDiag(
          Severity::Warning, PassId, "scattered-exits", LocOf(L.Header),
          "loop has " + std::to_string(Abnormal.size()) +
              " exit edges leaving from mid-body blocks (neither header "
              "nor latch); on each such path the loop-exit machine's "
              "prediction is never consulted, diluting the profile the "
              "replication planner optimizes against");
      for (const auto &[From, To] : Abnormal)
        D.note(LocOf(From), "exits the loop to block" + std::to_string(To));
      Out.push_back(std::move(D));
    }
  }
};

} // namespace

std::unique_ptr<Pass> sa::createLoopShapePass() {
  return std::make_unique<LoopShapePass>();
}
