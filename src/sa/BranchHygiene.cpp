//===- sa/BranchHygiene.cpp - Branch id and reachability hygiene ----------===//
//
// Part of the bpcr project (Krall, PLDI 1994 reproduction).
//
//===----------------------------------------------------------------------===//
//
// Branch ids are the join key of the whole system: profiles, machine search,
// the replication planner, annotation and attribution all index by them.
// Four things go wrong with them in practice:
//
//   ids-unassigned     no conditional branch has an id at all — the module
//                      was never run through assignBranchIds(). One
//                      module-level error instead of one per branch.
//   missing-id         some branches have ids and this one does not; it is
//                      invisible to profiling and annotation.
//   duplicate-id       two branches share a BranchId; their profile counts
//                      merge and the planner optimizes a chimera.
//   unreachable-branch a conditional branch in a block (or whole function)
//                      no execution can reach. It still owns a profile slot
//                      that will forever read zero, silently skewing any
//                      "fraction of branches predicted" style statistic.
//
//===----------------------------------------------------------------------===//

#include "analysis/CFG.h"
#include "sa/Passes.h"

#include <map>

using namespace bpcr;
using namespace bpcr::sa;

namespace {

constexpr const char *PassId = "branch-hygiene";

class BranchHygienePass : public Pass {
public:
  const char *id() const override { return PassId; }
  const char *description() const override {
    return "duplicate or missing branch ids, and conditional branches that "
           "can never execute but still own a profile slot";
  }

  void run(const Module &M, std::vector<Diagnostic> &Out) const override {
    // Functions reachable through the call graph from the entry function.
    std::vector<uint8_t> FuncReachable(M.Functions.size(), 0);
    if (M.EntryFunction < M.Functions.size()) {
      std::vector<uint32_t> Work{M.EntryFunction};
      FuncReachable[M.EntryFunction] = 1;
      while (!Work.empty()) {
        uint32_t FI = Work.back();
        Work.pop_back();
        for (const BasicBlock &BB : M.Functions[FI].Blocks)
          for (const Instruction &I : BB.Insts)
            if (I.Op == Opcode::Call && I.Callee < M.Functions.size() &&
                !FuncReachable[I.Callee]) {
              FuncReachable[I.Callee] = 1;
              Work.push_back(I.Callee);
            }
      }
    }

    auto LocOf = [&](uint32_t FI, int32_t Block, int32_t Inst) {
      Location Loc;
      Loc.FuncIdx = static_cast<int32_t>(FI);
      Loc.FuncName = M.Functions[FI].Name;
      Loc.BlockIdx = Block;
      if (Block >= 0)
        Loc.BlockName =
            M.Functions[FI].Blocks[static_cast<size_t>(Block)].Name;
      Loc.InstIdx = Inst;
      return Loc;
    };

    uint64_t Branches = 0, WithId = 0;
    for (const Function &F : M.Functions)
      for (const BasicBlock &BB : F.Blocks)
        for (const Instruction &I : BB.Insts)
          if (I.isConditionalBranch()) {
            ++Branches;
            WithId += I.BranchId != NoBranchId ? 1 : 0;
          }

    if (Branches > 0 && WithId == 0) {
      Out.push_back(makeDiag(
          Severity::Error, PassId, "ids-unassigned", Location{},
          "none of the module's " + std::to_string(Branches) +
              " conditional branches has a branch id; run "
              "Module::assignBranchIds() before profiling or replication"));
      // Per-branch missing-id reports would just repeat this N times.
      return;
    }

    std::map<int32_t, Location> FirstSeen;
    for (uint32_t FI = 0; FI < M.Functions.size(); ++FI) {
      const Function &F = M.Functions[FI];
      const bool HasCfg = isCfgBuildable(F);
      // Build lazily: CFG(F) asserts on incomplete blocks.
      std::unique_ptr<CFG> G;
      if (HasCfg)
        G = std::make_unique<CFG>(F);

      for (uint32_t B = 0; B < F.Blocks.size(); ++B) {
        for (uint32_t II = 0; II < F.Blocks[B].Insts.size(); ++II) {
          const Instruction &I = F.Blocks[B].Insts[II];
          if (!I.isConditionalBranch())
            continue;
          Location Loc = LocOf(FI, static_cast<int32_t>(B),
                               static_cast<int32_t>(II));

          if (I.BranchId == NoBranchId) {
            Out.push_back(makeDiag(
                Severity::Error, PassId, "missing-id", Loc,
                "conditional branch has no branch id while other branches "
                "do; it is invisible to profiling and annotation"));
          } else {
            auto [It, Inserted] = FirstSeen.insert({I.BranchId, Loc});
            if (!Inserted) {
              Diagnostic D = makeDiag(
                  Severity::Error, PassId, "duplicate-id", Loc,
                  "branch id " + std::to_string(I.BranchId) +
                      " is already used by another branch; their profile "
                      "counts would merge into one slot");
              D.note(It->second, "first branch with this id");
              Out.push_back(std::move(D));
            }
          }

          if (!FuncReachable[FI]) {
            Out.push_back(makeDiag(
                Severity::Warning, PassId, "unreachable-branch", Loc,
                "branch lives in a function never called from the entry "
                "function; its profile slot will always read zero"));
          } else if (HasCfg && !G->isReachable(B)) {
            Out.push_back(makeDiag(
                Severity::Warning, PassId, "unreachable-branch", Loc,
                "branch lives in an unreachable block; its profile slot "
                "will always read zero"));
          }
        }
      }
    }
  }
};

} // namespace

std::unique_ptr<Pass> sa::createBranchHygienePass() {
  return std::make_unique<BranchHygienePass>();
}
