//===- sa/Passes.h - Static analysis passes over the IR ---------*- C++ -*-===//
//
// Part of the bpcr project (Krall, PLDI 1994 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The pass framework behind `bpcr lint` and the pipeline's self-checks: a
/// Pass analyzes one Module and appends Diagnostics; a PassManager runs a
/// registered sequence and aggregates the findings (recording `sa.*`
/// diagnostic-count gauges in the observability registry when it is
/// enabled). The standard passes:
///
///   ir-verify        structural validity (wraps ir/Verifier)
///   use-before-def   reaching-definitions dataflow: registers read on some
///                    path before any write (the interpreter zero-fills, so
///                    this is a warning, not an error)
///   dead-code        blocks unreachable from the entry and register writes
///                    no path ever reads
///   loop-shape       irreducible loops, headers without a dominating
///                    preheader, loops whose exits scatter over many blocks
///                    — the shapes that undermine LoopAwareProfiles' reset
///                    model and the loop replication transform
///   branch-hygiene   duplicate/missing branch ids and branches that can
///                    never execute but still own a profile slot
///
/// The replication soundness checker (sa/ReplicationSoundness.h) is the one
/// analysis that needs two modules; createReplicationSoundnessPass adapts
/// it to the single-module interface by capturing the original.
///
//===----------------------------------------------------------------------===//

#ifndef BPCR_SA_PASSES_H
#define BPCR_SA_PASSES_H

#include "ir/Module.h"
#include "sa/Diagnostic.h"

#include <memory>
#include <vector>

namespace bpcr {
namespace sa {

/// One static analysis over a module.
class Pass {
public:
  virtual ~Pass() = default;

  /// Stable pass id; the PassId member of every diagnostic it emits.
  virtual const char *id() const = 0;

  /// One-line human description (SARIF rule metadata, docs).
  virtual const char *description() const = 0;

  /// Appends findings for \p M to \p Out. Must not mutate the module.
  virtual void run(const Module &M, std::vector<Diagnostic> &Out) const = 0;
};

/// Runs a pass sequence and aggregates diagnostics.
class PassManager {
public:
  void add(std::unique_ptr<Pass> P) { Passes.push_back(std::move(P)); }

  const std::vector<std::unique_ptr<Pass>> &passes() const { return Passes; }

  /// Runs every pass over \p M in registration order. When the global
  /// observability registry is enabled, records per-severity gauges
  /// (sa.diags.errors/warnings/notes) and one sa.pass.<id> gauge per pass.
  std::vector<Diagnostic> run(const Module &M) const;

private:
  std::vector<std::unique_ptr<Pass>> Passes;
};

// -- Standard pass factories -------------------------------------------------

std::unique_ptr<Pass> createVerifyPass();
std::unique_ptr<Pass> createUseBeforeDefPass();
std::unique_ptr<Pass> createDeadCodePass();
std::unique_ptr<Pass> createLoopShapePass();
std::unique_ptr<Pass> createBranchHygienePass();

/// Adapts the two-module replication soundness checker to the Pass
/// interface by capturing a copy of \p Original; running it over a module M
/// checks that M simulates Original.
std::unique_ptr<Pass> createReplicationSoundnessPass(Module Original);

/// Registers the standard single-module passes in canonical order.
void addStandardPasses(PassManager &PM);

/// True when every block of \p F is complete (ends in a terminator) with
/// in-range targets — the precondition for building a CFG. Passes that need
/// a CFG skip functions failing this; the ir-verify pass reports them.
bool isCfgBuildable(const Function &F);

} // namespace sa
} // namespace bpcr

#endif // BPCR_SA_PASSES_H
