//===- sa/Passes.h - Static analysis passes over the IR ---------*- C++ -*-===//
//
// Part of the bpcr project (Krall, PLDI 1994 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The pass framework behind `bpcr lint` and the pipeline's self-checks: a
/// Pass analyzes one Module and appends Diagnostics; a PassManager runs a
/// registered sequence and aggregates the findings (recording `sa.*`
/// diagnostic-count gauges in the observability registry when it is
/// enabled). The standard passes:
///
///   ir-verify        structural validity (wraps ir/Verifier)
///   use-before-def   reaching-definitions dataflow: registers read on some
///                    path before any write (the interpreter zero-fills, so
///                    this is a warning, not an error)
///   dead-code        blocks unreachable from the entry and register writes
///                    no path ever reads
///   loop-shape       irreducible loops, headers without a dominating
///                    preheader, loops whose exits scatter over many blocks
///                    — the shapes that undermine LoopAwareProfiles' reset
///                    model and the loop replication transform
///   branch-hygiene   duplicate/missing branch ids and branches that can
///                    never execute but still own a profile slot
///   const-prop       interval propagation (sa/Dataflow.h): branches whose
///                    condition range excludes zero (or is exactly zero)
///                    are provably unidirectional; the pipeline folds the
///                    prediction and prunes them from the machine search
///   predictability   per-branch predictability class (proved /
///                    loop-exit-bounded / alternating / data-dependent)
///                    cross-checked against predict/StaticHeuristics
///   profile-verify   Kirchhoff flow conservation of an uploaded per-branch
///                    profile against the CFG (sa/ProfileVerify.h); needs
///                    counts, so it is registered explicitly, not standard
///
/// The replication soundness checker (sa/ReplicationSoundness.h) is the one
/// analysis that needs two modules; createReplicationSoundnessPass adapts
/// it to the single-module interface by capturing the original.
///
/// Function-local passes subclass FunctionPass; PassManager::run fans their
/// per-function work out over support/ThreadPool when given a jobs count,
/// writing diagnostics into per-function slots that are concatenated in
/// function order — the output is byte-identical to the serial run.
///
//===----------------------------------------------------------------------===//

#ifndef BPCR_SA_PASSES_H
#define BPCR_SA_PASSES_H

#include "ir/Module.h"
#include "sa/Diagnostic.h"

#include <memory>
#include <vector>

namespace bpcr {
namespace sa {

class FunctionPass;

/// One static analysis over a module.
class Pass {
public:
  virtual ~Pass() = default;

  /// Stable pass id; the PassId member of every diagnostic it emits.
  virtual const char *id() const = 0;

  /// One-line human description (SARIF rule metadata, docs).
  virtual const char *description() const = 0;

  /// Appends findings for \p M to \p Out. Must not mutate the module.
  virtual void run(const Module &M, std::vector<Diagnostic> &Out) const = 0;

  /// Non-null when the pass analyzes one function at a time and may be
  /// parallelized over functions (no RTTI in this codebase).
  virtual const FunctionPass *asFunctionPass() const { return nullptr; }
};

/// A pass whose work decomposes per function with no cross-function state.
/// run() is final: it iterates functions in index order, which is exactly
/// the order PassManager reassembles parallel per-function slots in.
class FunctionPass : public Pass {
public:
  void run(const Module &M, std::vector<Diagnostic> &Out) const final {
    for (uint32_t F = 0; F < M.Functions.size(); ++F)
      runOnFunction(M, F, Out);
  }

  /// Appends findings for function \p FuncIdx of \p M.
  virtual void runOnFunction(const Module &M, uint32_t FuncIdx,
                             std::vector<Diagnostic> &Out) const = 0;

  const FunctionPass *asFunctionPass() const override { return this; }
};

/// Runs a pass sequence and aggregates diagnostics.
class PassManager {
public:
  void add(std::unique_ptr<Pass> P) { Passes.push_back(std::move(P)); }

  const std::vector<std::unique_ptr<Pass>> &passes() const { return Passes; }

  /// Runs every pass over \p M in registration order. When the global
  /// observability registry is enabled, records per-severity gauges
  /// (sa.diags.errors/warnings/notes) and one sa.pass.<id> gauge per pass,
  /// and emits one "sa.pass"-category trace span per pass.
  ///
  /// \p Jobs is the shared --jobs knob: 0 = one worker per hardware core,
  /// 1 = serial. Function passes fan out over functions; diagnostics are
  /// reassembled in function order, so output is identical for every value.
  std::vector<Diagnostic> run(const Module &M, unsigned Jobs = 1) const;

private:
  std::vector<std::unique_ptr<Pass>> Passes;
};

// -- Standard pass factories -------------------------------------------------

std::unique_ptr<Pass> createVerifyPass();
std::unique_ptr<Pass> createUseBeforeDefPass();
std::unique_ptr<Pass> createDeadCodePass();
std::unique_ptr<Pass> createLoopShapePass();
std::unique_ptr<Pass> createBranchHygienePass();
std::unique_ptr<Pass> createConstPropPass();
std::unique_ptr<Pass> createPredictabilityPass();

/// Adapts the two-module replication soundness checker to the Pass
/// interface by capturing a copy of \p Original; running it over a module M
/// checks that M simulates Original.
std::unique_ptr<Pass> createReplicationSoundnessPass(Module Original);

/// Registers the standard single-module passes in canonical order.
void addStandardPasses(PassManager &PM);

/// True when every block of \p F is complete (ends in a terminator) with
/// in-range targets — the precondition for building a CFG. Passes that need
/// a CFG skip functions failing this; the ir-verify pass reports them.
bool isCfgBuildable(const Function &F);

} // namespace sa
} // namespace bpcr

#endif // BPCR_SA_PASSES_H
