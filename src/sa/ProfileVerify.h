//===- sa/ProfileVerify.h - Profile realizability checking ------*- C++ -*-===//
//
// Part of the bpcr project (Krall, PLDI 1994 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The profile admission gate for the streaming-ingestion north star: given
/// a module and a per-branch taken/not-taken profile, decide whether the
/// profile is *realizable* on the module's CFG before any accumulator
/// trusts it. The check is Kirchhoff flow conservation: every block is
/// entered as many times as it is left, branch counts must agree with the
/// entry counts of their successors, and the module entry function begins
/// and ends exactly EntryExecutions times.
///
/// The verifier infers block execution and edge counts from the branch
/// profile by a deterministic round-based fixpoint and reports structured
/// diagnostics (PassId "profile-verify") for every inconsistency:
///
///   count-shape            profile vector does not match the module's
///                          branch count, or events referenced unknown ids
///   unknown-branch         counts recorded for a branch id outside the
///                          module
///   unreachable-execution  a CFG-unreachable branch has nonzero counts
///   flow-mismatch          a block's inferred in-flow contradicts its
///                          branch execution count
///   entry-flow-mismatch    the entry function's entry block count is
///                          inconsistent with EntryExecutions
///   exit-flow-mismatch     the entry function returns a different number
///                          of times than it is entered
///   truncated-tail         (note) in-flow exceeds a block's branch count,
///                          which a trace cut off mid-run legitimately
///                          produces; an error instead in strict mode
///
/// Surfaced as `bpcr lint --profile TRACE` and designed to be called per
/// session by the future `bpcr serve` ingestion path.
///
//===----------------------------------------------------------------------===//

#ifndef BPCR_SA_PROFILEVERIFY_H
#define BPCR_SA_PROFILEVERIFY_H

#include "ir/Module.h"
#include "sa/Diagnostic.h"
#include "trace/Trace.h"

#include <cstdint>
#include <memory>
#include <vector>

namespace bpcr {

class ColumnarTrace;

namespace sa {

class Pass;

/// Executions of one conditional branch.
struct BranchCounts {
  uint64_t Taken = 0;
  uint64_t NotTaken = 0;
  uint64_t total() const { return Taken + NotTaken; }
};

/// A per-branch profile, indexed by BranchId.
struct BranchProfileCounts {
  std::vector<BranchCounts> Counts;
  /// Events whose branch id was negative or >= NumBranches.
  uint64_t OutOfRange = 0;

  /// Aggregates a trace into counts for a module with \p NumBranches
  /// conditional branches.
  static BranchProfileCounts fromTrace(size_t NumBranches, const Trace &T) {
    BranchProfileCounts P;
    P.Counts.assign(NumBranches, BranchCounts{});
    for (const BranchEvent &E : T) {
      if (E.BranchId < 0 || static_cast<size_t>(E.BranchId) >= NumBranches) {
        ++P.OutOfRange;
        continue;
      }
      BranchCounts &C = P.Counts[static_cast<size_t>(E.BranchId)];
      if (E.Taken)
        ++C.Taken;
      else
        ++C.NotTaken;
    }
    return P;
  }

  /// Columnar equivalent of fromTrace: walks the id column plus packed
  /// direction words, so `bpcr lint --profile` never materializes an
  /// event-of-structs copy of the trace. Identical counts (including
  /// OutOfRange) to fromTrace on the same event stream; works on
  /// unfinalized traces.
  static BranchProfileCounts fromColumnar(size_t NumBranches,
                                          const ColumnarTrace &CT);
};

struct ProfileVerifyOptions {
  /// Times the module entry function is expected to run (one per recorded
  /// trace).
  uint64_t EntryExecutions = 1;
  /// Traces are capped (the paper's 1M-branch traces); a run cut off
  /// mid-flight leaves blocks entered but not yet exited, so in-flow
  /// exceeding a block's branch count is a note by default. Strict mode
  /// turns those into flow-mismatch errors for provably complete traces.
  bool Strict = false;
};

/// Checks flow conservation of \p P against \p M. Branch ids must be
/// assigned on the module.
std::vector<Diagnostic>
verifyProfileRealizability(const Module &M, const BranchProfileCounts &P,
                           const ProfileVerifyOptions &Opts = {});

/// Pass adapter capturing the profile, for PassManager/`bpcr lint
/// --profile` integration.
std::unique_ptr<Pass> createProfileVerifyPass(BranchProfileCounts P,
                                              ProfileVerifyOptions Opts = {});

} // namespace sa
} // namespace bpcr

#endif // BPCR_SA_PROFILEVERIFY_H
