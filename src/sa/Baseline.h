//===- sa/Baseline.h - Lint finding baselines -------------------*- C++ -*-===//
//
// Part of the bpcr project (Krall, PLDI 1994 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Known-findings baselines for `bpcr lint --baseline FILE`. A baseline is
/// a plain-text ledger of accepted findings, one per line:
///
///   # bpcr lint baseline v1
///   loop-shape.scattered-exits main.block7
///   use-before-def.read-before-def lex.block2.inst4
///
/// Keys are `fullRuleId() qualifiedName()` — stable across diagnostic
/// message wording changes but strict enough that a finding moving to a
/// different block resurfaces. Applying a baseline removes matching
/// findings from the diagnostic stream; entries that match nothing produce
/// a `lint-baseline.stale-entry` warning so fixed findings get purged from
/// the ledger instead of silently rotting.
///
//===----------------------------------------------------------------------===//

#ifndef BPCR_SA_BASELINE_H
#define BPCR_SA_BASELINE_H

#include "sa/Diagnostic.h"

#include <string>
#include <vector>

namespace bpcr {
namespace sa {

/// Parsed baseline file: an ordered list of suppression keys.
struct LintBaseline {
  std::vector<std::string> Keys;

  /// Suppression key of one diagnostic.
  static std::string keyFor(const Diagnostic &D) {
    return D.fullRuleId() + " " + D.Loc.qualifiedName();
  }

  /// Records every diagnostic in \p Diags as a key, deduplicated,
  /// preserving first-seen order.
  static LintBaseline fromDiagnostics(const std::vector<Diagnostic> &Diags);

  /// Serializes to the `# bpcr lint baseline v1` text format.
  std::string serialize() const;

  /// Parses the text format. Returns false (and sets \p Error) on a
  /// missing/unknown header or a malformed line; blank lines and `#`
  /// comments are ignored.
  static bool parse(const std::string &Text, LintBaseline &Out,
                    std::string &Error);

  /// Filters \p Diags in place: findings matching a key are dropped.
  /// Returns the surviving diagnostics plus one
  /// `lint-baseline.stale-entry` warning per key that matched nothing,
  /// appended in baseline order.
  std::vector<Diagnostic> apply(std::vector<Diagnostic> Diags) const;
};

} // namespace sa
} // namespace bpcr

#endif // BPCR_SA_BASELINE_H
