//===- sa/DeadCode.cpp - Unreachable blocks and dead stores ---------------===//
//
// Part of the bpcr project (Krall, PLDI 1994 reproduction).
//
//===----------------------------------------------------------------------===//
//
// Two related rules built on analysis/CFG:
//
//   unreachable-block  a block no path from the entry reaches. Cold regions
//                      waste replication budget accounting and hold branches
//                      the profiler can never observe.
//   dead-store        a register write (Mov/ALU/compare only — Load can
//                     trap on a bad address and Call has side effects) that
//                     no path ever reads before the next write.
//
// Dead-store liveness is a backward may-analysis at block granularity
// followed by an in-block backward scan; only reachable blocks are scanned
// (unreachable ones are already reported wholesale).
//
//===----------------------------------------------------------------------===//

#include "analysis/CFG.h"
#include "sa/Passes.h"

#include <functional>

using namespace bpcr;
using namespace bpcr::sa;

namespace {

constexpr const char *PassId = "dead-code";

using RegSet = std::vector<uint8_t>;

/// True for defs it is always safe to call dead: pure register-to-register
/// computation. Load may fault, Call has arbitrary effects, Store writes
/// memory not a register.
bool isPureDef(Opcode Op) {
  return Op == Opcode::Mov || (Op >= Opcode::Add && Op <= Opcode::CmpGe);
}

void forEachRead(const Instruction &I, size_t NumRegs,
                 const std::function<void(Reg)> &Fn) {
  auto Read = [&](const Operand &O) {
    if (O.isReg() && O.Val >= 0 && static_cast<size_t>(O.Val) < NumRegs)
      Fn(O.asReg());
  };
  Read(I.A);
  Read(I.B);
  Read(I.C);
  for (const Operand &Arg : I.Args)
    Read(Arg);
}

class DeadCodePass : public FunctionPass {
public:
  const char *id() const override { return PassId; }
  const char *description() const override {
    return "blocks unreachable from the entry and register writes no path "
           "ever reads before the next write";
  }

  void runOnFunction(const Module &M, uint32_t FI,
                     std::vector<Diagnostic> &Out) const override {
    const Function &F = M.Functions[FI];
    if (!isCfgBuildable(F))
      return;
    CFG G(F);

    auto LocOf = [&](int32_t Block, int32_t Inst) {
      Location Loc;
      Loc.FuncIdx = static_cast<int32_t>(FI);
      Loc.FuncName = F.Name;
      Loc.BlockIdx = Block;
      if (Block >= 0)
        Loc.BlockName = F.Blocks[static_cast<size_t>(Block)].Name;
      Loc.InstIdx = Inst;
      return Loc;
    };

    for (uint32_t B = 0; B < F.Blocks.size(); ++B)
      if (!G.isReachable(B))
        Out.push_back(makeDiag(
            Severity::Warning, PassId, "unreachable-block",
            LocOf(static_cast<int32_t>(B), -1),
            "block is unreachable from the entry; its " +
                std::to_string(F.Blocks[B].Insts.size()) +
                " instructions (and any branch ids they own) are dead code"));

    // Block-level backward liveness over reachable blocks.
    const size_t NumRegs = F.NumRegs;
    std::vector<RegSet> LiveIn(F.Blocks.size(), RegSet(NumRegs, 0));
    bool Changed = true;
    while (Changed) {
      Changed = false;
      const std::vector<uint32_t> &RPO = G.reversePostOrder();
      for (auto It = RPO.rbegin(); It != RPO.rend(); ++It) {
        uint32_t B = *It;
        RegSet Live(NumRegs, 0);
        for (uint32_t S : G.successors(B))
          for (size_t R = 0; R < NumRegs; ++R)
            Live[R] |= LiveIn[S][R];
        const std::vector<Instruction> &Insts = F.Blocks[B].Insts;
        for (auto II = Insts.rbegin(); II != Insts.rend(); ++II) {
          if (writesRegister(II->Op) && II->Dst < NumRegs)
            Live[II->Dst] = 0;
          forEachRead(*II, NumRegs, [&](Reg R) { Live[R] = 1; });
        }
        for (size_t R = 0; R < NumRegs; ++R)
          if (Live[R] && !LiveIn[B][R]) {
            LiveIn[B][R] = 1;
            Changed = true;
          }
      }
    }

    // In-block backward scan flagging pure defs whose value is never read.
    for (uint32_t B : G.reversePostOrder()) {
      RegSet Live(NumRegs, 0);
      for (uint32_t S : G.successors(B))
        for (size_t R = 0; R < NumRegs; ++R)
          Live[R] |= LiveIn[S][R];
      const std::vector<Instruction> &Insts = F.Blocks[B].Insts;
      for (size_t II = Insts.size(); II-- > 0;) {
        const Instruction &I = Insts[II];
        if (writesRegister(I.Op) && I.Dst < NumRegs) {
          if (isPureDef(I.Op) && !Live[I.Dst])
            Out.push_back(makeDiag(
                Severity::Warning, PassId, "dead-store",
                LocOf(static_cast<int32_t>(B), static_cast<int32_t>(II)),
                "value written to r" + std::to_string(I.Dst) +
                    " is never read before the next write"));
          Live[I.Dst] = 0;
        }
        forEachRead(I, NumRegs, [&](Reg R) { Live[R] = 1; });
      }
    }
  }
};

} // namespace

std::unique_ptr<Pass> sa::createDeadCodePass() {
  return std::make_unique<DeadCodePass>();
}
