//===- sa/Baseline.cpp ----------------------------------------------------===//
//
// Part of the bpcr project (Krall, PLDI 1994 reproduction).
//
//===----------------------------------------------------------------------===//

#include "sa/Baseline.h"

#include <algorithm>
#include <sstream>
#include <unordered_set>

using namespace bpcr;
using namespace bpcr::sa;

static constexpr const char *kHeader = "# bpcr lint baseline v1";

LintBaseline
LintBaseline::fromDiagnostics(const std::vector<Diagnostic> &Diags) {
  LintBaseline B;
  std::unordered_set<std::string> Seen;
  for (const Diagnostic &D : Diags) {
    std::string Key = keyFor(D);
    if (Seen.insert(Key).second)
      B.Keys.push_back(std::move(Key));
  }
  return B;
}

std::string LintBaseline::serialize() const {
  std::string Out = kHeader;
  Out += "\n# one accepted finding per line: <pass.rule> <qualified-name>\n";
  for (const std::string &K : Keys) {
    Out += K;
    Out += '\n';
  }
  return Out;
}

bool LintBaseline::parse(const std::string &Text, LintBaseline &Out,
                         std::string &Error) {
  Out.Keys.clear();
  std::istringstream In(Text);
  std::string Line;
  bool SawHeader = false;
  size_t LineNo = 0;
  while (std::getline(In, Line)) {
    ++LineNo;
    if (!Line.empty() && Line.back() == '\r')
      Line.pop_back();
    if (!SawHeader) {
      if (Line != kHeader) {
        Error = "line 1: expected header \"" + std::string(kHeader) + "\"";
        return false;
      }
      SawHeader = true;
      continue;
    }
    // Strip comments and surrounding whitespace.
    size_t Hash = Line.find('#');
    if (Hash != std::string::npos)
      Line.resize(Hash);
    size_t Begin = Line.find_first_not_of(" \t");
    if (Begin == std::string::npos)
      continue;
    size_t End = Line.find_last_not_of(" \t");
    Line = Line.substr(Begin, End - Begin + 1);
    // A key is exactly "<pass.rule> <qualified-name>".
    size_t Space = Line.find(' ');
    if (Space == std::string::npos || Space == 0 ||
        Space + 1 >= Line.size() ||
        Line.find(' ', Space + 1) != std::string::npos) {
      Error = "line " + std::to_string(LineNo) +
              ": expected \"<pass.rule> <qualified-name>\", got \"" + Line +
              "\"";
      return false;
    }
    Out.Keys.push_back(Line);
  }
  if (!SawHeader) {
    Error = "empty file: expected header \"" + std::string(kHeader) + "\"";
    return false;
  }
  return true;
}

std::vector<Diagnostic>
LintBaseline::apply(std::vector<Diagnostic> Diags) const {
  std::unordered_set<std::string> KeySet(Keys.begin(), Keys.end());
  std::unordered_set<std::string> Used;
  std::vector<Diagnostic> Out;
  Out.reserve(Diags.size());
  for (Diagnostic &D : Diags) {
    std::string Key = keyFor(D);
    if (KeySet.count(Key)) {
      Used.insert(std::move(Key));
      continue;
    }
    Out.push_back(std::move(D));
  }
  // Stale entries in baseline order keep output deterministic.
  for (const std::string &K : Keys) {
    if (Used.count(K))
      continue;
    Location Loc;
    Out.push_back(makeDiag(Severity::Warning, "lint-baseline", "stale-entry",
                           Loc,
                           "baseline entry \"" + K +
                               "\" matched no finding; the underlying "
                               "issue is fixed — remove the line"));
  }
  return Out;
}
