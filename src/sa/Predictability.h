//===- sa/Predictability.h - Per-branch predictability classes --*- C++ -*-===//
//
// Part of the bpcr project (Krall, PLDI 1994 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Classifies every conditional branch by how predictable it is before any
/// profile exists — the framing of "Branch Prediction Is Not a Solved
/// Problem": separate the trivially-predictable branches from the ones
/// that need history. Classes, in decreasing order of static confidence:
///
///   ProvenUnidirectional  const-prop proved one direction; expected
///                         mispredict rate 0
///   LoopExitBounded       loop exit compare over a recognized induction
///                         register with constant init/step/bound; the trip
///                         count is inferable and a backward-taken
///                         prediction mispredicts about once per trip
///   Alternating           condition is the parity of an induction
///                         register; a profile majority mispredicts ~1/2,
///                         a 2-state intra-loop machine removes it
///   DataDependent         the condition's def chain reaches a Load or
///                         Call: nothing static bounds it
///   Mixed                 everything else
///
/// The pass (createPredictabilityPass) reports only the actionable facts as
/// notes — proofs the Ball-Larus heuristic chain would get wrong, and
/// alternating branches — while this header's API exposes the full
/// classification for tests, docs tables and `bpcr explain`-style tooling.
///
//===----------------------------------------------------------------------===//

#ifndef BPCR_SA_PREDICTABILITY_H
#define BPCR_SA_PREDICTABILITY_H

#include "ir/Module.h"
#include "sa/Dataflow.h"

#include <vector>

namespace bpcr {
namespace sa {

enum class PredictabilityClass : uint8_t {
  ProvenUnidirectional,
  LoopExitBounded,
  Alternating,
  DataDependent,
  Mixed,
};

const char *predictabilityClassName(PredictabilityClass C);

/// One branch's classification. ExpectedMispredictBound is an upper bound
/// on the per-execution misprediction rate of the best semi-static
/// strategy the class admits (profile majority, or the paper's machines
/// for Alternating).
struct BranchPredictability {
  int32_t BranchId = -1;
  uint32_t FuncIdx = 0;
  uint32_t BlockIdx = 0;
  PredictabilityClass Class = PredictabilityClass::Mixed;
  Prediction ProvedDir = Prediction::Unknown;
  /// Inferred loop trip bound for LoopExitBounded; -1 otherwise.
  int64_t TripBound = -1;
  double ExpectedMispredictBound = 0.5;
  /// Ball-Larus chain prediction for the same branch.
  Prediction Heuristic = Prediction::Unknown;
  /// True when the branch is proven and the heuristic picked the wrong
  /// direction (it would mispredict every execution).
  bool HeuristicDisagrees = false;
};

/// Classifies every conditional branch of \p M (branch ids must be
/// assigned). Entries are indexed by BranchId. \p Proofs may be shared
/// with the pipeline to avoid re-running the interval analysis; pass the
/// result of computeBranchProofs(M).
std::vector<BranchPredictability>
classifyPredictability(const Module &M, const BranchProofs &Proofs);

/// Convenience overload that computes the proofs itself.
std::vector<BranchPredictability> classifyPredictability(const Module &M);

} // namespace sa
} // namespace bpcr

#endif // BPCR_SA_PREDICTABILITY_H
