//===- sa/Diagnostic.h - Structured analysis diagnostics --------*- C++ -*-===//
//
// Part of the bpcr project (Krall, PLDI 1994 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The one diagnostic schema shared by the IR verifier and every static
/// analysis pass: a severity, a stable rule id, a structured IR location
/// (function/block/instruction indexes plus names) and an optional chain of
/// notes pointing at related locations. Header-only so low layers (ir) can
/// produce diagnostics without linking the pass framework; the renderers
/// (table, JSON, SARIF) live in obs/Sarif.{h,cpp} and tools/bpcr.cpp.
///
/// Rule ids are dot-separated and stable across releases
/// ("use-before-def.read-before-def"); tests and CI gates key on them, so
/// renaming one is a breaking change. The full taxonomy is documented in
/// docs/STATIC_ANALYSIS.md.
///
//===----------------------------------------------------------------------===//

#ifndef BPCR_SA_DIAGNOSTIC_H
#define BPCR_SA_DIAGNOSTIC_H

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace bpcr {
namespace sa {

/// Finding severity, ordered so thresholds can compare (`>= Warning`).
enum class Severity : uint8_t { Note = 0, Warning = 1, Error = 2 };

inline const char *severityName(Severity S) {
  switch (S) {
  case Severity::Note:
    return "note";
  case Severity::Warning:
    return "warning";
  case Severity::Error:
    return "error";
  }
  return "error";
}

/// Where in a module a finding points. Any level may be absent (-1): a
/// module-shape finding has no function, a function-shape finding no block.
struct Location {
  int32_t FuncIdx = -1;
  std::string FuncName;
  int32_t BlockIdx = -1;
  std::string BlockName;
  int32_t InstIdx = -1;

  /// Dotted logical name ("main.block3.inst2", "main.block3", "main", or
  /// "module"), the form SARIF logicalLocations and the table renderer use.
  std::string qualifiedName() const {
    if (FuncIdx < 0)
      return "module";
    std::string Out = FuncName.empty() ? ("func" + std::to_string(FuncIdx))
                                       : FuncName;
    if (BlockIdx >= 0) {
      Out += ".block" + std::to_string(BlockIdx);
      if (InstIdx >= 0)
        Out += ".inst" + std::to_string(InstIdx);
    }
    return Out;
  }
};

/// A secondary message attached to a Diagnostic ("first definition was
/// here", "loop header is block 4").
struct DiagNote {
  Location Loc;
  std::string Message;
};

/// One finding from the verifier or a lint pass.
struct Diagnostic {
  Severity Sev = Severity::Error;
  /// Id of the producing pass ("use-before-def", "ir-verify", ...).
  std::string PassId;
  /// Stable rule id within the pass ("read-before-def"). The fully
  /// qualified id tests assert is PassId + "." + RuleId.
  std::string RuleId;
  Location Loc;
  std::string Message;
  std::vector<DiagNote> Notes;

  std::string fullRuleId() const { return PassId + "." + RuleId; }

  Diagnostic &note(Location L, std::string Msg) {
    Notes.push_back({std::move(L), std::move(Msg)});
    return *this;
  }

  /// "error: [use-before-def.read-before-def] main.block2.inst0: ..." plus
  /// one indented line per note — the format `bpcr lint`'s table view and
  /// verifyModule's string compatibility shim both build on.
  std::string render() const {
    std::string Out = std::string(severityName(Sev)) + ": [" + fullRuleId() +
                      "] " + Loc.qualifiedName() + ": " + Message;
    for (const DiagNote &N : Notes)
      Out += "\n  note: " + N.Loc.qualifiedName() + ": " + N.Message;
    return Out;
  }
};

/// Convenience constructor used by every pass.
inline Diagnostic makeDiag(Severity Sev, std::string PassId,
                           std::string RuleId, Location Loc,
                           std::string Message) {
  Diagnostic D;
  D.Sev = Sev;
  D.PassId = std::move(PassId);
  D.RuleId = std::move(RuleId);
  D.Loc = std::move(Loc);
  D.Message = std::move(Message);
  return D;
}

/// Counts findings at exactly severity \p S.
inline size_t countSeverity(const std::vector<Diagnostic> &Diags,
                            Severity S) {
  size_t N = 0;
  for (const Diagnostic &D : Diags)
    N += D.Sev == S ? 1 : 0;
  return N;
}

/// True when any finding is at or above \p Threshold.
inline bool anyAtOrAbove(const std::vector<Diagnostic> &Diags,
                         Severity Threshold) {
  for (const Diagnostic &D : Diags)
    if (D.Sev >= Threshold)
      return true;
  return false;
}

} // namespace sa
} // namespace bpcr

#endif // BPCR_SA_DIAGNOSTIC_H
