//===- sa/ReplicationSoundness.h - Replication simulation check -*- C++ -*-===//
//
// Part of the bpcr project (Krall, PLDI 1994 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Static verification that a replicated module simulates its original —
/// the invariant the paper's whole gain rests on. Code replication encodes
/// predictor state in the program counter: a replicated block IS an
/// (original block, machine state) pair. The checker recovers that pairing
/// by walking both CFGs in lockstep from the entry and demands:
///
///   - paired blocks run identical instruction sequences (ignoring block
///     targets, branch ids and prediction annotations — exactly the fields
///     replication is licensed to rewrite),
///   - the pairing is a function: one replicated block never simulates two
///     different original blocks,
///   - every replicated out-edge projects onto the matching original
///     out-edge (same terminator opcode, positionally aligned targets),
///   - every replicated conditional branch folds onto the original branch
///     it simulates: OrigBranchId equals the original's id and lies in the
///     original's id range,
///   - when the explicit copy→original map is supplied, it agrees with the
///     pairing the simulation derives.
///
/// All findings carry PassId "replication-soundness" at Error severity;
/// locations point into the replicated module, notes into the original.
///
//===----------------------------------------------------------------------===//

#ifndef BPCR_SA_REPLICATIONSOUNDNESS_H
#define BPCR_SA_REPLICATIONSOUNDNESS_H

#include "ir/Module.h"
#include "sa/Diagnostic.h"

#include <vector>

namespace bpcr {
namespace sa {

/// Checks that \p Replicated simulates \p Original. \p Original must have
/// branch ids assigned (it is the module the pipeline profiled).
///
/// \p CopyToOrig, when non-null, is the explicit copy→original branch map:
/// indexed by replicated BranchId, holding the original BranchId each copy
/// folds onto (what Module::branchLocations-over-OrigBranchId flattens to
/// after the final assignBranchIds). The checker cross-validates it against
/// the simulation-derived pairing; pass null mid-pipeline where replica ids
/// have not been renumbered yet.
std::vector<Diagnostic>
checkReplicationSoundness(const Module &Original, const Module &Replicated,
                          const std::vector<int32_t> *CopyToOrig = nullptr);

} // namespace sa
} // namespace bpcr

#endif // BPCR_SA_REPLICATIONSOUNDNESS_H
