//===- sa/Dataflow.cpp ----------------------------------------------------===//
//
// Part of the bpcr project (Krall, PLDI 1994 reproduction).
//
//===----------------------------------------------------------------------===//

#include "sa/Dataflow.h"

#include "sa/Passes.h"

#include <algorithm>
#include <cassert>

using namespace bpcr;
using namespace bpcr::sa;

namespace {

constexpr int64_t kMin = std::numeric_limits<int64_t>::min();
constexpr int64_t kMax = std::numeric_limits<int64_t>::max();

bool finite(Interval A) { return A.Lo != kMin && A.Hi != kMax; }

/// Smallest (2^k - 1) >= V, for V >= 0. Upper bound of Or/Xor over
/// non-negative operands.
int64_t bitCeilMask(int64_t V) {
  int64_t M = 0;
  while (M < V && M != kMax)
    M = (M << 1) | 1;
  return M;
}

/// The interpreter's exact semantics for singleton operands: wrapping
/// unsigned arithmetic, masked shift counts, Div/Rem guarded against zero
/// and the INT64_MIN / -1 overflow.
int64_t exactBinop(Opcode Op, int64_t A, int64_t B) {
  uint64_t UA = static_cast<uint64_t>(A), UB = static_cast<uint64_t>(B);
  switch (Op) {
  case Opcode::Add:
    return static_cast<int64_t>(UA + UB);
  case Opcode::Sub:
    return static_cast<int64_t>(UA - UB);
  case Opcode::Mul:
    return static_cast<int64_t>(UA * UB);
  case Opcode::Div:
    if (B == 0)
      return 0;
    if (A == kMin && B == -1)
      return kMin;
    return A / B;
  case Opcode::Rem:
    if (B == 0)
      return 0;
    if (A == kMin && B == -1)
      return 0;
    return A % B;
  case Opcode::And:
    return A & B;
  case Opcode::Or:
    return A | B;
  case Opcode::Xor:
    return A ^ B;
  case Opcode::Shl:
    return static_cast<int64_t>(UA << (UB & 63));
  case Opcode::Shr:
    return A >> (UB & 63);
  case Opcode::CmpEq:
    return A == B ? 1 : 0;
  case Opcode::CmpNe:
    return A != B ? 1 : 0;
  case Opcode::CmpLt:
    return A < B ? 1 : 0;
  case Opcode::CmpLe:
    return A <= B ? 1 : 0;
  case Opcode::CmpGt:
    return A > B ? 1 : 0;
  case Opcode::CmpGe:
    return A >= B ? 1 : 0;
  default:
    return 0;
  }
}

Interval evalCompare(Opcode Op, Interval A, Interval B) {
  // Intervals are ordinary signed ranges here, so bound comparisons are
  // conservative even when a bound is the "unbounded" sentinel.
  bool True = false, False = false;
  switch (Op) {
  case Opcode::CmpEq:
    True = A.isConstant() && B.isConstant() && A.Lo == B.Lo;
    False = A.Hi < B.Lo || A.Lo > B.Hi;
    break;
  case Opcode::CmpNe:
    True = A.Hi < B.Lo || A.Lo > B.Hi;
    False = A.isConstant() && B.isConstant() && A.Lo == B.Lo;
    break;
  case Opcode::CmpLt:
    True = A.Hi < B.Lo;
    False = A.Lo >= B.Hi;
    break;
  case Opcode::CmpLe:
    True = A.Hi <= B.Lo;
    False = A.Lo > B.Hi;
    break;
  case Opcode::CmpGt:
    True = A.Lo > B.Hi;
    False = A.Hi <= B.Lo;
    break;
  case Opcode::CmpGe:
    True = A.Lo >= B.Hi;
    False = A.Hi < B.Lo;
    break;
  default:
    break;
  }
  if (True)
    return Interval::constant(1);
  if (False)
    return Interval::constant(0);
  return Interval::range(0, 1);
}

} // namespace

Interval bpcr::sa::hull(Interval A, Interval B) {
  if (A.isBottom())
    return B;
  if (B.isBottom())
    return A;
  return Interval::range(std::min(A.Lo, B.Lo), std::max(A.Hi, B.Hi));
}

Interval bpcr::sa::evalBinop(Opcode Op, Interval A, Interval B) {
  if (A.isBottom() || B.isBottom())
    return Interval::bottom();
  if (isCompare(Op))
    return evalCompare(Op, A, B);
  if (A.isConstant() && B.isConstant())
    return Interval::constant(exactBinop(Op, A.Lo, B.Lo));

  switch (Op) {
  case Opcode::Add: {
    // Wrap-around semantics: any possible overflow jumps to the far end of
    // the range, so only the overflow-free finite case stays an interval.
    int64_t Lo, Hi;
    if (finite(A) && finite(B) && !__builtin_add_overflow(A.Lo, B.Lo, &Lo) &&
        !__builtin_add_overflow(A.Hi, B.Hi, &Hi))
      return Interval::range(Lo, Hi);
    return Interval::top();
  }
  case Opcode::Sub: {
    int64_t Lo, Hi;
    if (finite(A) && finite(B) && !__builtin_sub_overflow(A.Lo, B.Hi, &Lo) &&
        !__builtin_sub_overflow(A.Hi, B.Lo, &Hi))
      return Interval::range(Lo, Hi);
    return Interval::top();
  }
  case Opcode::Mul:
    if ((A.isConstant() && A.Lo == 0) || (B.isConstant() && B.Lo == 0))
      return Interval::constant(0);
    return Interval::top();
  case Opcode::Div:
    // Truncating division is monotone in the dividend for a fixed nonzero
    // divisor.
    if (B.isConstant() && B.Lo != 0 && finite(A) && A.Lo != kMin) {
      int64_t D = B.Lo;
      if (D > 0)
        return Interval::range(A.Lo / D, A.Hi / D);
      if (D != -1)
        return Interval::range(A.Hi / D, A.Lo / D);
    }
    return Interval::top();
  case Opcode::Rem:
    if (B.isConstant() && B.Lo != 0) {
      // |a % m| <= |m| - 1 and the result keeps the dividend's sign.
      uint64_t MagU = B.Lo == kMin
                          ? static_cast<uint64_t>(kMax)
                          : static_cast<uint64_t>(B.Lo < 0 ? -B.Lo : B.Lo) - 1;
      int64_t Mag = static_cast<int64_t>(MagU);
      int64_t Lo = A.Lo >= 0 ? 0 : -Mag;
      int64_t Hi = A.Hi <= 0 ? 0 : Mag;
      return Interval::range(Lo, Hi);
    }
    return Interval::top();
  case Opcode::And:
    // For a non-negative operand x, (x & y) is within [0, x]: AND never
    // sets a bit the operand lacks, and the sign bit of the result is the
    // AND of both sign bits.
    if (A.nonNegative() && B.nonNegative())
      return Interval::range(0, std::min(A.Hi, B.Hi));
    if (A.nonNegative())
      return Interval::range(0, A.Hi);
    if (B.nonNegative())
      return Interval::range(0, B.Hi);
    return Interval::top();
  case Opcode::Or:
  case Opcode::Xor:
    // For non-negative operands the result stays under the smallest
    // all-ones mask covering both.
    if (A.nonNegative() && B.nonNegative()) {
      if (A.Hi == kMax || B.Hi == kMax)
        return Interval::range(0, kMax);
      return Interval::range(0, bitCeilMask(std::max(A.Hi, B.Hi)));
    }
    return Interval::top();
  case Opcode::Shl:
    return Interval::top();
  case Opcode::Shr:
    // Arithmetic right shift by a fixed masked count is monotone.
    if (B.isConstant()) {
      int64_t S = static_cast<int64_t>(static_cast<uint64_t>(B.Lo) & 63);
      int64_t Lo = A.Lo == kMin ? kMin : (A.Lo >> S);
      int64_t Hi = A.Hi == kMax ? kMax : (A.Hi >> S);
      return Interval::range(Lo, Hi);
    }
    return Interval::top();
  default:
    return Interval::top();
  }
}

// -- Interval client ---------------------------------------------------------

namespace {

class IntervalClient {
public:
  using State = IntervalState;

  explicit IntervalClient(const Function &F) : F(F) {}

  DataflowDirection direction() const { return DataflowDirection::Forward; }

  State boundaryState() const {
    State S;
    S.Defined = true;
    S.Regs.assign(F.NumRegs, Interval::constant(0));
    for (uint32_t P = 0; P < F.NumParams && P < F.NumRegs; ++P)
      S.Regs[P] = Interval::top();
    return S;
  }

  State initialState() const { return State(); }

  bool join(State &Dst, const State &Src, bool Widen) const {
    if (!Src.Defined)
      return false;
    if (!Dst.Defined) {
      Dst = Src;
      return true;
    }
    bool Changed = false;
    for (size_t R = 0; R < Dst.Regs.size() && R < Src.Regs.size(); ++R) {
      Interval H = hull(Dst.Regs[R], Src.Regs[R]);
      if (H != Dst.Regs[R]) {
        if (Widen) {
          // Accelerate: any bound that grew goes straight to unbounded.
          if (H.Lo < Dst.Regs[R].Lo)
            H.Lo = kMin;
          if (H.Hi > Dst.Regs[R].Hi)
            H.Hi = kMax;
        }
        Dst.Regs[R] = H;
        Changed = true;
      }
    }
    return Changed;
  }

  State transfer(uint32_t Block, const State &In) const {
    State S = In;
    if (!S.Defined)
      return S;
    for (const Instruction &I : F.Blocks[Block].Insts)
      transferInst(I, S);
    return S;
  }

  static void transferInst(const Instruction &I, State &S) {
    auto Ev = [&S](const Operand &O) {
      if (O.isImm())
        return Interval::constant(O.Val);
      if (O.isReg() && O.asReg() < S.Regs.size())
        return S.Regs[O.asReg()];
      return Interval::top();
    };
    if (!writesRegister(I.Op) || I.Dst >= S.Regs.size())
      return;
    Interval V = Interval::top();
    if (I.Op == Opcode::Mov)
      V = Ev(I.A);
    else if (I.Op >= Opcode::Add && I.Op <= Opcode::CmpGe)
      V = evalBinop(I.Op, Ev(I.A), Ev(I.B));
    S.Regs[I.Dst] = V;
  }

  unsigned widenAfter() const { return 4; }
  unsigned maxVisitsPerBlock() const {
    // After widening each register bound can only step to the sentinel
    // once, so convergence is bounded by 2 bounds per register.
    return widenAfter() + 2u * static_cast<unsigned>(F.NumRegs) + 4u;
  }
  void forceTop(State &S) const {
    S.Defined = true;
    S.Regs.assign(F.NumRegs, Interval::top());
  }

private:
  const Function &F;
};

} // namespace

IntervalAnalysis::IntervalAnalysis(const Function &F) : F(F) {
  CFG G(F);
  IntervalClient C(F);
  DataflowSolver<IntervalClient> Solver(G, C);
  Stats = Solver.solve();
  Entry.reserve(G.numBlocks());
  for (uint32_t B = 0; B < G.numBlocks(); ++B)
    Entry.push_back(Solver.before(B));
}

Interval IntervalAnalysis::operandBefore(uint32_t Block, uint32_t InstIdx,
                                         const Operand &Op) const {
  if (Op.isImm())
    return Interval::constant(Op.Val);
  if (!Op.isReg())
    return Interval::top();
  return valueBefore(Block, InstIdx, Op.asReg());
}

Interval IntervalAnalysis::valueBefore(uint32_t Block, uint32_t InstIdx,
                                       Reg R) const {
  if (Block >= Entry.size())
    return Interval::top();
  IntervalState S = Entry[Block];
  if (!S.Defined)
    return Interval::bottom();
  const std::vector<Instruction> &Insts = F.Blocks[Block].Insts;
  for (uint32_t I = 0; I < InstIdx && I < Insts.size(); ++I)
    IntervalClient::transferInst(Insts[I], S);
  if (R >= S.Regs.size())
    return Interval::top();
  return S.Regs[R];
}

// -- Liveness client ---------------------------------------------------------

LivenessClient::State LivenessClient::boundaryState() const {
  return State(F.NumRegs, 0);
}

LivenessClient::State LivenessClient::initialState() const {
  return State(F.NumRegs, 0);
}

bool LivenessClient::join(State &Dst, const State &Src, bool) const {
  bool Changed = false;
  for (size_t R = 0; R < Dst.size() && R < Src.size(); ++R)
    if (Src[R] && !Dst[R]) {
      Dst[R] = 1;
      Changed = true;
    }
  return Changed;
}

LivenessClient::State LivenessClient::transfer(uint32_t Block,
                                               const State &In) const {
  State S = In;
  const std::vector<Instruction> &Insts = F.Blocks[Block].Insts;
  for (size_t I = Insts.size(); I-- > 0;) {
    const Instruction &Inst = Insts[I];
    if (writesRegister(Inst.Op) && Inst.Dst < S.size())
      S[Inst.Dst] = 0;
    forEachReadRegister(Inst, [&S](Reg R) {
      if (R < S.size())
        S[R] = 1;
    });
  }
  return S;
}

void LivenessClient::forceTop(State &S) const {
  S.assign(F.NumRegs, 1);
}

// -- Branch proofs -----------------------------------------------------------

BranchProofs bpcr::sa::computeBranchProofs(const Module &M) {
  BranchProofs Proofs;
  size_t NumBranches = M.conditionalBranchCount();
  Proofs.Dir.assign(NumBranches, Prediction::Unknown);
  if (NumBranches == 0)
    return Proofs;

  for (const Function &F : M.Functions) {
    if (!isCfgBuildable(F))
      continue;
    IntervalAnalysis IA(F);
    for (uint32_t B = 0; B < F.Blocks.size(); ++B) {
      const BasicBlock &BB = F.Blocks[B];
      const Instruction &T = BB.terminator();
      if (T.Op != Opcode::Br || T.BranchId < 0 ||
          static_cast<size_t>(T.BranchId) >= NumBranches)
        continue;
      Interval Cond = IA.operandBefore(
          B, static_cast<uint32_t>(BB.Insts.size() - 1), T.A);
      if (Cond.isBottom())
        continue; // Unreachable: never executes, nothing to prove.
      if (!Cond.contains(0))
        Proofs.Dir[static_cast<size_t>(T.BranchId)] = Prediction::Taken;
      else if (Cond.isConstant())
        Proofs.Dir[static_cast<size_t>(T.BranchId)] = Prediction::NotTaken;
    }
  }
  return Proofs;
}
