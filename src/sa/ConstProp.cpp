//===- sa/ConstProp.cpp - Interval propagation and branch proofs ----------===//
//
// Part of the bpcr project (Krall, PLDI 1994 reproduction).
//
//===----------------------------------------------------------------------===//
//
// Constant/interval propagation over each function (sa/Dataflow.h). The
// pass reports every conditional branch whose condition interval proves a
// single direction: `const-prop.always-taken` when the range excludes zero,
// `const-prop.never-taken` when the range is exactly [0, 0]. These are
// Note-severity facts, not defects — a defensive bounds check that can
// never fire is normal code — but the pipeline consumes the same proofs
// (computeBranchProofs) to fold static predictions and prune the machine
// search, so the lint output doubles as the audit trail for that pruning.
//
//===----------------------------------------------------------------------===//

#include "analysis/CFG.h"
#include "sa/Dataflow.h"
#include "sa/Passes.h"

#include <string>

using namespace bpcr;
using namespace bpcr::sa;

namespace {

constexpr const char *PassId = "const-prop";

std::string intervalText(Interval V) {
  constexpr int64_t kMin = std::numeric_limits<int64_t>::min();
  constexpr int64_t kMax = std::numeric_limits<int64_t>::max();
  std::string Lo = V.Lo == kMin ? "-inf" : std::to_string(V.Lo);
  std::string Hi = V.Hi == kMax ? "+inf" : std::to_string(V.Hi);
  return "[" + Lo + ", " + Hi + "]";
}

class ConstPropPass : public FunctionPass {
public:
  const char *id() const override { return PassId; }
  const char *description() const override {
    return "interval propagation over registers; branches whose condition "
           "range excludes zero (always-taken) or is exactly zero "
           "(never-taken) are provably unidirectional and are pruned from "
           "the pattern-table fill and machine search";
  }

  void runOnFunction(const Module &M, uint32_t FI,
                     std::vector<Diagnostic> &Out) const override {
    const Function &F = M.Functions[FI];
    if (!isCfgBuildable(F))
      return; // ir-verify reports the structural problem
    CFG G(F);
    IntervalAnalysis IA(F);

    if (!IA.stats().Converged) {
      Location Loc;
      Loc.FuncIdx = static_cast<int32_t>(FI);
      Loc.FuncName = F.Name;
      Out.push_back(makeDiag(Severity::Warning, PassId, "solver-diverged",
                             Loc,
                             "interval solver hit its hard visit bound; "
                             "results were widened to top"));
      return;
    }

    for (uint32_t B = 0; B < F.Blocks.size(); ++B) {
      if (!G.isReachable(B))
        continue; // dead-code reports unreachable blocks
      const BasicBlock &BB = F.Blocks[B];
      const Instruction &T = BB.terminator();
      if (T.Op != Opcode::Br)
        continue;
      Interval Cond = IA.operandBefore(
          B, static_cast<uint32_t>(BB.Insts.size() - 1), T.A);
      if (Cond.isBottom())
        continue;
      bool Always = !Cond.contains(0);
      bool Never = Cond.isConstant() && Cond.Lo == 0;
      if (!Always && !Never)
        continue;
      Location Loc;
      Loc.FuncIdx = static_cast<int32_t>(FI);
      Loc.FuncName = F.Name;
      Loc.BlockIdx = static_cast<int32_t>(B);
      Loc.BlockName = BB.Name;
      Loc.InstIdx = static_cast<int32_t>(BB.Insts.size() - 1);
      Out.push_back(makeDiag(
          Severity::Note, PassId, Always ? "always-taken" : "never-taken",
          Loc,
          std::string("branch condition interval ") + intervalText(Cond) +
              (Always ? " excludes 0: every execution is taken"
                      : " is exactly 0: no execution is taken") +
              "; the pipeline folds the prediction and skips profiling "
              "and machine search for this branch"));
    }
  }
};

} // namespace

std::unique_ptr<Pass> sa::createConstPropPass() {
  return std::make_unique<ConstPropPass>();
}
